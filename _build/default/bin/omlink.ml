(* omlink — the command-line face of the system: a minic compiler, a
   standard linker, the OM optimizing linker, a disassembler and the
   machine simulator, in one binary. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Inputs may be minic sources (.mc) or serialized objects (.o). *)
let load_unit path =
  if Filename.check_suffix path ".mc" then
    Minic.Driver.compile_module ~prelude:Runtime.prelude
      ~name:(Filename.remove_extension (Filename.basename path) ^ ".o")
      (read_file path)
  else
    match Objfile.Obj_io.load path with
    | Ok u -> u
    | Error m -> failwith (Printf.sprintf "%s: %s" path m)

let level_conv =
  let parse = function
    | "std" -> Ok `Std
    | "noopt" -> Ok (`Om Om.No_opt)
    | "simple" -> Ok (`Om Om.Simple)
    | "full" -> Ok (`Om Om.Full)
    | "sched" | "full+sched" -> Ok (`Om Om.Full_sched)
    | s -> Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print ppf = function
    | `Std -> Format.pp_print_string ppf "std"
    | `Om l -> Format.pp_print_string ppf (Om.level_name l)
  in
  Arg.conv (parse, print)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input files (.mc sources or .o objects).")

let level_arg =
  Arg.(
    value
    & opt level_conv (`Om Om.Full)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Link level: std, noopt, simple, full, sched.")

let handle_errors f = try f () with Failure m | Invalid_argument m ->
  Printf.eprintf "omlink: %s\n" m;
  exit 1

(* --- compile --- *)

let compile_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output object file.")
  in
  let merged =
    Arg.(value & flag & info [ "merged" ] ~doc:"Compile all sources as one unit (compile-all style).")
  in
  let o0 = Arg.(value & flag & info [ "O0" ] ~doc:"Disable optimization.") in
  let optimistic =
    Arg.(value & flag
         & info [ "G"; "optimistic" ]
             ~doc:"Optimistic compilation: address scalar globals directly \
                   GP-relative; the link fails if they don't fit the window.")
  in
  let run files out merged o0 optimistic =
    handle_errors @@ fun () ->
    let opt = if o0 then Minic.Driver.O0 else Minic.Driver.O2 in
    let units =
      if merged then
        [ Minic.Driver.compile_merged ~opt ~optimistic ~prelude:Runtime.prelude
            ~name:"merged.o"
            (List.map (fun f -> (f, read_file f)) files) ]
      else
        List.map
          (fun f ->
            Minic.Driver.compile_module ~opt ~optimistic
              ~prelude:Runtime.prelude
              ~name:(Filename.remove_extension (Filename.basename f) ^ ".o")
              (read_file f))
          files
    in
    List.iter
      (fun (u : Objfile.Cunit.t) ->
        let path = Option.value out ~default:u.name in
        Objfile.Obj_io.save path u;
        Printf.printf "wrote %s (%d instructions, %d GAT entries)\n" path
          (Objfile.Cunit.insn_count u)
          (Array.length u.gat))
      units
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile minic sources to object modules.")
    Term.(const run $ files_arg $ out $ merged $ o0 $ optimistic)

(* --- dis --- *)

let dis_cmd =
  let run files =
    handle_errors @@ fun () ->
    List.iter
      (fun f -> Format.printf "%a@." Objfile.Cunit.pp (load_unit f))
      files
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Disassemble object modules with their relocations.")
    Term.(const run $ files_arg)

(* --- link / run --- *)

let link_images level files =
  let units = List.map load_unit files in
  let archives = [ Runtime.libstd () ] in
  match level with
  | `Std -> (
      match Linker.Link.link units ~archives with
      | Ok image -> (image, None)
      | Error m -> failwith m)
  | `Om l -> (
      match Om.link ~level:l units ~archives with
      | Ok { Om.image; stats } -> (image, Some stats)
      | Error m -> failwith m)

let run_cmd =
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print optimizer statistics.")
  in
  let show_timing =
    Arg.(value & flag & info [ "timing" ] ~doc:"Print simulated cycle counts.")
  in
  let run files level show_stats show_timing =
    handle_errors @@ fun () ->
    let image, stats = link_images level files in
    (match (show_stats, stats) with
    | true, Some s -> Format.printf "%a@." Om.Stats.pp s
    | true, None -> Format.printf "(standard link: no optimizer statistics)@."
    | false, _ -> ());
    match Machine.Cpu.run image with
    | Ok o ->
        print_string o.Machine.Cpu.output;
        if show_timing then
          Printf.eprintf
            "[%d instructions, %d cycles, %d i$ misses, %d d$ misses]\n"
            o.Machine.Cpu.stats.Machine.Cpu.insns
            o.Machine.Cpu.stats.Machine.Cpu.cycles
            o.Machine.Cpu.stats.Machine.Cpu.icache_misses
            o.Machine.Cpu.stats.Machine.Cpu.dcache_misses;
        exit (Int64.to_int o.Machine.Cpu.exit_code land 0xff)
    | Error e ->
        Format.eprintf "omlink: simulation fault: %a@." Machine.Cpu.pp_error e;
        exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Link (with libstd) and execute on the machine simulator.")
    Term.(const run $ files_arg $ level_arg $ show_stats $ show_timing)

(* --- text dump of the linked image --- *)

let image_cmd =
  let run files level =
    handle_errors @@ fun () ->
    let image, _ = link_images level files in
    Format.printf "%a@." Linker.Image.pp_disassembly image
  in
  Cmd.v
    (Cmd.info "image" ~doc:"Print the disassembled linked image.")
    Term.(const run $ files_arg $ level_arg)

(* --- stats: compare every level for the given program --- *)

let stats_cmd =
  let run files =
    handle_errors @@ fun () ->
    let units = List.map load_unit files in
    let archives = [ Runtime.libstd () ] in
    let world =
      match Linker.Resolve.run units ~archives with
      | Ok w -> w
      | Error m -> failwith m
    in
    let std =
      match Linker.Link.link_resolved world with
      | Ok i -> i
      | Error m -> failwith m
    in
    let run_cycles image =
      match Machine.Cpu.run image with
      | Ok o -> o.Machine.Cpu.stats.Machine.Cpu.cycles
      | Error _ -> -1
    in
    let base = run_cycles std in
    Printf.printf "%-14s %10s %10s %8s\n" "level" "text insns" "cycles" "vs std";
    Printf.printf "%-14s %10d %10d %8s\n" "standard"
      (Linker.Image.insn_count std) base "-";
    List.iter
      (fun level ->
        match Om.optimize_resolved level world with
        | Ok { Om.image; stats } ->
            let c = run_cycles image in
            Printf.printf "%-14s %10d %10d %+7.2f%%\n" (Om.level_name level)
              (Linker.Image.insn_count image) c
              (100. *. float_of_int (base - c) /. float_of_int base);
            if level = Om.Full then
              Format.printf "  %a@." Om.Stats.pp stats
        | Error m -> Printf.printf "%-14s failed: %s\n" (Om.level_name level) m)
      Om.all_levels
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Link at every optimization level and compare size and cycles.")
    Term.(const run $ files_arg)

(* --- suite --- *)

let suite_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME" ~doc:"Run a single benchmark.")
  in
  let run bench =
    handle_errors @@ fun () ->
    let benches =
      match bench with
      | Some n -> (
          match Workloads.Programs.find n with
          | Some b -> [ b ]
          | None ->
              failwith
                (Printf.sprintf "unknown benchmark %s (know: %s)" n
                   (String.concat ", " Workloads.Programs.names)))
      | None -> Workloads.Programs.all
    in
    List.iter
      (fun (b : Workloads.Programs.benchmark) ->
        List.iter
          (fun build ->
            match Reports.Measure.run_benchmark build b with
            | Ok r ->
                Printf.printf "%-10s %-12s std=%d %s agree=%b\n%!" b.name
                  (Workloads.Suite.build_name build)
                  r.Reports.Measure.std_cycles
                  (String.concat " "
                     (List.map
                        (fun (run : Reports.Measure.run) ->
                          Printf.sprintf "%s=%+.1f%%"
                            (Om.level_name run.level)
                            (Reports.Measure.improvement r run.level))
                        r.Reports.Measure.runs))
                  r.Reports.Measure.outputs_agree
            | Error m ->
                Printf.printf "%-10s %-12s ERROR %s\n%!" b.name
                  (Workloads.Suite.build_name build) m)
          Workloads.Suite.all_builds)
      benches
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the SPEC92-analogue benchmark matrix.")
    Term.(const run $ bench)

let main =
  Cmd.group
    (Cmd.info "omlink" ~version:"1.0"
       ~doc:
         "Link-time optimization of address calculation on a 64-bit \
          architecture (Srivastava & Wall, PLDI 1994), reproduced.")
    [ compile_cmd; dis_cmd; run_cmd; image_cmd; stats_cmd; suite_cmd ]

let () = exit (Cmd.eval main)
