examples/address_audit.ml: Array Format Hashtbl Linker List Minic Om Option Printf Result Runtime
