examples/address_audit.mli:
