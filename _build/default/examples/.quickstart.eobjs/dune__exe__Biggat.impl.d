examples/biggat.ml: Array Buffer Format Linker List Machine Minic Objfile Om Printf Result Runtime
