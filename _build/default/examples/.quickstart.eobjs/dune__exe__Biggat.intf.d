examples/biggat.mli:
