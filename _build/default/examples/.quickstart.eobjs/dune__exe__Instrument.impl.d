examples/instrument.ml: Array Format Isa Linker Machine Minic Om Printf Result Runtime
