examples/instrument.mli:
