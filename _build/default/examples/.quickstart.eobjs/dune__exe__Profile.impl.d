examples/profile.ml: Array Format Hashtbl Linker List Machine Om Option Printf Result Sys Workloads
