examples/profile.mli:
