examples/quickstart.ml: Format Linker List Machine Minic Om Printf Result Runtime String
