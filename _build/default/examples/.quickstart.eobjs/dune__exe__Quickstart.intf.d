examples/quickstart.mli:
