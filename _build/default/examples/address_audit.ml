(* Address audit: use the optimizer's symbolic form as a *library* to
   inspect how a program computes global addresses — every GAT load, its
   LITUSE consumers, every call site and its bookkeeping code. This is the
   kind of whole-program visibility the paper argues only the linker has.

     dune exec examples/address_audit.exe *)

module S = Om.Symbolic

let src = {|
var small = 3;
var table[2000];          // too big for the sdata threshold
var fptr = 0;

func work(x) { return x * small; }

func main() {
  fptr = &work;
  var i = 0;
  while (i < 10) {
    table[i] = fptr(i) + work(i);
    i = i + 1;
  }
  io_putint(table[9]);
  return 0;
}
|}

let () =
  let unit =
    Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"audit.o" src
  in
  let world =
    Result.get_ok (Linker.Resolve.run [ unit ] ~archives:[ Runtime.libstd () ])
  in
  let program = Result.get_ok (Om.Lift.run world) in
  let als = Om.Analysis.run program in

  print_endline "== address loads, per procedure ==";
  Array.iter
    (fun (proc : S.proc) ->
      let loads =
        List.filter_map
          (fun (n : S.node) ->
            match n.S.insn with
            | S.Gatload { key; _ } -> Some (n, key)
            | _ -> None)
          proc.S.body
      in
      if loads <> [] then begin
        Printf.printf "%s (%d instructions):\n" proc.S.sp_name
          (List.length proc.S.body);
        List.iter
          (fun ((n : S.node), key) ->
            let target =
              match key with
              | S.Paddr (t, 0) -> "&" ^ Linker.Resolve.target_name world t
              | S.Paddr (t, a) ->
                  Printf.sprintf "&%s+%d" (Linker.Resolve.target_name world t) a
              | S.Pconst c -> Printf.sprintf "constant %#Lx" c
            in
            let status =
              match Hashtbl.find_opt als.Om.Analysis.gatload_status n.S.nid with
              | Some (Om.Analysis.All_marked us) ->
                  Printf.sprintf "%d linked use(s), foldable" (List.length us)
              | Some Om.Analysis.Escapes -> "value escapes (convert only)"
              | None -> "not analyzed"
            in
            Printf.printf "  n%-4d load %-22s %s\n" n.S.nid target status)
          loads
      end)
    program.S.procs;

  print_endline "\n== call sites ==";
  List.iter
    (fun (cs : Om.Analysis.callsite) ->
      let caller = program.S.procs.(cs.cs_proc).S.sp_name in
      let kind =
        match cs.cs_kind with
        | Om.Analysis.Direct { callee; via = `Jsr _ } ->
            Printf.sprintf "jsr via GAT -> %s"
              world.Linker.Resolve.procs.(callee).p_name
        | Om.Analysis.Direct { callee; via = `Bsr } ->
            Printf.sprintf "bsr (compile-time optimized) -> %s"
              world.Linker.Resolve.procs.(callee).p_name
        | Om.Analysis.Indirect -> "indirect (procedure variable)"
      in
      Printf.printf "  in %-12s %-42s gp-reset: %s\n" caller kind
        (if Option.is_some cs.cs_reset then "present" else "none"))
    als.Om.Analysis.callsites;

  print_endline "\n== address-taken procedures ==";
  Array.iteri
    (fun i taken ->
      if taken then
        Printf.printf "  %s\n" world.Linker.Resolve.procs.(i).p_name)
    als.Om.Analysis.address_taken;

  (* now watch what OM-full makes of it *)
  print_endline "\n== after OM-full ==";
  match Om.optimize_resolved Om.Full world with
  | Ok { Om.stats; _ } -> Format.printf "%a@." Om.Stats.pp stats
  | Error m -> print_endline ("failed: " ^ m)
