(* Big-GAT demo: the reason the conventions exist at all.

   A program whose global address table overflows one GP window needs
   multiple GATs, and procedures in different GAT groups really do need
   the full calling convention: each procedure must establish its own GP,
   and callers must reset theirs after the call. This example builds such
   a program (by brute force: thousands of distinct globals spread over
   many modules), links it with a deliberately small group capacity, and
   shows that (a) it still runs correctly everywhere and (b) OM keeps the
   cross-group bookkeeping while still removing the same-group kind.

     dune exec examples/biggat.exe *)

let module_src m nglobals =
  let buf = Buffer.create 4096 in
  for g = 0 to nglobals - 1 do
    Buffer.add_string buf (Printf.sprintf "var g_%d_%d = %d;\n" m g ((m * 1000) + g))
  done;
  Buffer.add_string buf (Printf.sprintf "func sum_%d() {\n  var s = 0;\n" m);
  for g = 0 to nglobals - 1 do
    Buffer.add_string buf (Printf.sprintf "  s = s + g_%d_%d;\n" m g)
  done;
  Buffer.add_string buf "  return s;\n}\n";
  Buffer.contents buf

let nmodules = 6
let globals_per_module = 40

let main_src =
  let buf = Buffer.create 1024 in
  for m = 0 to nmodules - 1 do
    Buffer.add_string buf (Printf.sprintf "extern func sum_%d();\n" m)
  done;
  Buffer.add_string buf "func main() {\n  var total = 0;\n";
  for m = 0 to nmodules - 1 do
    Buffer.add_string buf (Printf.sprintf "  total = total + sum_%d();\n" m)
  done;
  Buffer.add_string buf "  io_put_labeled(\"total\", total);\n  return 0;\n}\n";
  Buffer.contents buf

let () =
  let units =
    List.init nmodules (fun m ->
        Minic.Driver.compile_module ~prelude:Runtime.prelude
          ~name:(Printf.sprintf "mod%d.o" m)
          (module_src m globals_per_module))
    @ [ Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"main.o"
          main_src ]
  in
  let archives = [ Runtime.libstd () ] in
  let world = Result.get_ok (Linker.Resolve.run units ~archives) in

  (* force tiny GAT groups so the program needs several GPs *)
  let capacity = 64 in
  let gat = Linker.Gat.merge ~capacity world in
  Printf.printf "modules: %d   merged GAT slots: %d   groups of <=%d: %d\n"
    (Array.length world.Linker.Resolve.modules)
    (Array.length gat.Linker.Gat.slots)
    capacity gat.Linker.Gat.ngroups;
  Array.iteri
    (fun m g ->
      if g > 0 && gat.Linker.Gat.group_of_module.(m - 1) <> g then
        Printf.printf "  group %d starts at module %s\n" g
          world.Linker.Resolve.modules.(m).Objfile.Cunit.name)
    gat.Linker.Gat.group_of_module;

  (* multi-group standard link runs fine *)
  (match Linker.Link.link_resolved ~gat_capacity:capacity world with
  | Ok image -> (
      Printf.printf "standard multi-GAT link: %d groups\n"
        image.Linker.Image.ngroups;
      match Machine.Cpu.run image with
      | Ok o -> Printf.printf "  runs: %s" o.Machine.Cpu.output
      | Error e -> Format.printf "  FAULT %a@." Machine.Cpu.pp_error e)
  | Error m -> Printf.printf "link failed: %s\n" m);

  (* under the default capacity everything merges into one GAT and OM-full
     erases nearly all of the bookkeeping *)
  match Om.optimize_resolved Om.Full world with
  | Ok { Om.image; stats } -> (
      Printf.printf
        "OM-full (default capacity): groups=%d, resets %d -> %d, GAT %d -> %d bytes\n"
        image.Linker.Image.ngroups stats.Om.Stats.calls_reset_before
        stats.Om.Stats.calls_reset_after stats.Om.Stats.gat_bytes_before
        stats.Om.Stats.gat_bytes_after;
      match Machine.Cpu.run image with
      | Ok o -> Printf.printf "  runs: %s" o.Machine.Cpu.output
      | Error e -> Format.printf "  FAULT %a@." Machine.Cpu.pp_error e)
  | Error m -> Printf.printf "om failed: %s\n" m
