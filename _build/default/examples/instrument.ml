(* ATOM-lite: link-time instrumentation through the symbolic form.

   The paper closes by noting that OM's machinery "opens the door to other
   link-time transformations, such as ... flexible program instrumentation
   tools" — the ATOM system, built on the same substrate. This example
   plays that card: it inserts a procedure-entry counter into every
   GP-using user procedure at link time, without recompiling anything.

   The injected sequence uses only the assembler temporary [at] and a
   GP-relative slot (the program donates a global named __prof), so no
   program register is disturbed:

       ldq  at, __prof(gp)
       addq at, 1, at
       stq  at, __prof(gp)

     dune exec examples/instrument.exe *)

module S = Om.Symbolic
module I = Isa.Insn
module R = Isa.Reg

let src = {|
var __prof = 0;

func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

func main() {
  io_put_labeled("fib", fib(15));
  io_put_labeled("calls_counted", __prof);
  return 0;
}
|}

let instrument (program : S.program) (world : Linker.Resolve.t) =
  let prof =
    match Linker.Resolve.resolve world 0 "__prof" with
    | Some (Linker.Resolve.Tobj _ as t) -> t
    | _ -> failwith "program must define a scalar global __prof"
  in
  let counter part = S.Gprel { insn = part; target = prof; addend = 0; part = S.Pfull } in
  let instrumented = ref 0 in
  Array.iter
    (fun (proc : S.proc) ->
      (* only instrument user procedures that establish a GP *)
      match Om.Transform.setup_at_entry proc with
      | Some (_, lo) when proc.S.sp_name <> "__start" ->
          let seq =
            [ S.make_node program (counter (I.Ldq { ra = R.at; rb = R.gp; disp = 0 }));
              S.make_node program
                (S.Raw (I.Op { op = I.Addq; ra = R.at; rb = I.Imm 1; rc = R.at }));
              S.make_node program (counter (I.Stq { ra = R.at; rb = R.gp; disp = 0 })) ]
          in
          (* splice right after the GP setup *)
          let rec insert = function
            | [] -> []
            | n :: rest when n == lo -> n :: (seq @ rest)
            | n :: rest -> n :: insert rest
          in
          proc.S.body <- insert proc.S.body;
          incr instrumented
      | _ -> ())
    program.S.procs;
  !instrumented

let () =
  let unit =
    Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"fib.o" src
  in
  let world =
    Result.get_ok (Linker.Resolve.run [ unit ] ~archives:[ Runtime.libstd () ])
  in
  (* uninstrumented baseline *)
  (match Linker.Link.link_resolved world with
  | Ok image -> (
      match Machine.Cpu.run image with
      | Ok o -> Printf.printf "baseline:\n%s" o.Machine.Cpu.output
      | Error e -> Format.printf "FAULT %a@." Machine.Cpu.pp_error e)
  | Error m -> print_endline m);
  (* lift, move GP setups to entry (so the splice point exists), insert
     counters, lower — the OM pipeline with a custom transformation *)
  let program = Result.get_ok (Om.Lift.run world) in
  Om.Transform.move_setups_to_entry program;
  let n = instrument program world in
  Printf.printf "\ninstrumented %d procedure(s) at link time\n\n" n;
  let merged = Linker.Gat.merge world in
  let plan =
    Om.Datalayout.plan world
      ~group_of_module:merged.Linker.Gat.group_of_module
      ~ngroups:merged.Linker.Gat.ngroups
      ~group_gat_bytes:
        (Array.init merged.Linker.Gat.ngroups (fun g ->
             let first = merged.Linker.Gat.group_first_slot.(g) in
             let next =
               if g + 1 < merged.Linker.Gat.ngroups then
                 merged.Linker.Gat.group_first_slot.(g + 1)
               else Array.length merged.Linker.Gat.slots
             in
             8 * (next - first)))
  in
  match Om.Lower.run program plan with
  | Ok (image, _) -> (
      match Machine.Cpu.run image with
      | Ok o -> Printf.printf "instrumented:\n%s" o.Machine.Cpu.output
      | Error e -> Format.printf "FAULT %a@." Machine.Cpu.pp_error e)
  | Error m -> print_endline ("lower failed: " ^ m)
