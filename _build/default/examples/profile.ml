(* Profile: per-procedure dynamic instruction counts via the simulator's
   trace hook, before and after OM-full — showing where the removed
   address-calculation overhead actually lived.

     dune exec examples/profile.exe [benchmark]   (default: li) *)

let profile image =
  let counts = Hashtbl.create 32 in
  let bump name n =
    Hashtbl.replace counts name (n + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  (* procedure lookup by sorted entry addresses *)
  let procs =
    Array.copy image.Linker.Image.procs |> fun a ->
    Array.sort (fun (x : Linker.Image.proc_info) y -> compare x.entry y.entry) a;
    a
  in
  let find pc =
    let rec bs lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let p = procs.(mid) in
        if pc < p.entry then bs lo (mid - 1)
        else if pc >= p.entry + p.size then bs (mid + 1) hi
        else Some p
    in
    bs 0 (Array.length procs - 1)
  in
  match
    Machine.Cpu.run
      ~trace:(fun ~pc _ ->
        match find pc with
        | Some p -> bump p.name 1
        | None -> bump "?" 1)
      image
  with
  | Ok o ->
      ( o.Machine.Cpu.stats.Machine.Cpu.insns,
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
        |> List.sort (fun (_, a) (_, b) -> compare b a) )
  | Error e ->
      Format.printf "FAULT %a@." Machine.Cpu.pp_error e;
      (0, [])

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "li" in
  let b =
    match Workloads.Programs.find bench with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %s\n" bench;
        exit 1
  in
  let world = Workloads.Suite.compile_cached Workloads.Suite.Compile_each b in
  let std = Result.get_ok (Linker.Link.link_resolved world) in
  let full =
    match Om.optimize_resolved Om.Full world with
    | Ok { Om.image; _ } -> image
    | Error m -> failwith m
  in
  let std_total, std_counts = profile std in
  let full_total, full_counts = profile full in
  Printf.printf
    "%s: dynamic instructions per procedure, standard link vs OM-full\n\n"
    bench;
  Printf.printf "%-16s %12s %12s %9s\n" "procedure" "standard" "om-full" "saved";
  List.iteri
    (fun i (name, n) ->
      if i < 12 then begin
        let after = Option.value ~default:0 (List.assoc_opt name full_counts) in
        Printf.printf "%-16s %12d %12d %8.1f%%\n" name n after
          (100. *. float_of_int (n - after) /. float_of_int (max 1 n))
      end)
    std_counts;
  Printf.printf "%-16s %12d %12d %8.1f%%\n" "TOTAL" std_total full_total
    (100. *. float_of_int (std_total - full_total) /. float_of_int (max 1 std_total))
