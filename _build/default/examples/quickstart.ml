(* Quickstart: compile a two-module program, link it four ways, run each
   on the simulated machine, and watch the paper's effect appear.

     dune exec examples/quickstart.exe *)

let kernel_src = {|
// histogram.mc — a little COMMON-style kernel
extern var data[];
extern var hist[];

func histogram(n, nbins) {
  var i = 0;
  while (i < nbins) { hist[i] = 0; i = i + 1; }
  i = 0;
  while (i < n) {
    var b = data[i] % nbins;
    hist[b] = hist[b] + 1;
    i = i + 1;
  }
  return 0;
}
|}

let main_src = {|
// main.mc
extern func histogram(n, nbins);

var data[500];
var hist[16];

func main() {
  srand(2024);
  var i = 0;
  while (i < 500) { data[i] = rand_range(10000); i = i + 1; }
  histogram(500, 16);
  var mx = 0;
  i = 0;
  while (i < 16) { mx = imax(mx, hist[i]); i = i + 1; }
  io_put_labeled("bins", 16);
  io_put_labeled("max", mx);
  return 0;
}
|}

let () =
  print_endline "== quickstart: compile, link four ways, simulate ==";
  (* 1. compile each module separately, exactly like `cc -c` *)
  let units =
    [ Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"histogram.o"
        kernel_src;
      Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"main.o"
        main_src ]
  in
  let archives = [ Runtime.libstd () ] in
  (* 2. the baseline: a standard link *)
  let world = Result.get_ok (Linker.Resolve.run units ~archives) in
  let std = Result.get_ok (Linker.Link.link_resolved world) in
  let run name image =
    match Machine.Cpu.run image with
    | Ok o ->
        Printf.printf "%-14s text=%5d insns  cycles=%7d  output=%s\n" name
          (Linker.Image.insn_count image)
          o.Machine.Cpu.stats.Machine.Cpu.cycles
          (String.concat "; " (String.split_on_char '\n' (String.trim o.Machine.Cpu.output)));
        o.Machine.Cpu.stats.Machine.Cpu.cycles
    | Error e ->
        Format.printf "%s: FAULT %a@." name Machine.Cpu.pp_error e;
        max_int
  in
  let base = run "standard" std in
  (* 3. OM at each level *)
  List.iter
    (fun level ->
      match Om.optimize_resolved level world with
      | Ok { Om.image; stats } ->
          let c = run (Om.level_name level) image in
          Printf.printf "  improvement over standard link: %+.2f%%\n"
            (100. *. float_of_int (base - c) /. float_of_int base);
          if level = Om.Full then
            Format.printf "  what OM-full did: %a@." Om.Stats.pp stats
      | Error m -> Printf.printf "%s failed: %s\n" (Om.level_name level) m)
    Om.all_levels
