lib/isa/decode.ml: Bytes Format Insn Int32 List Reg
