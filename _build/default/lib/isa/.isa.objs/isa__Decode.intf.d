lib/isa/decode.mli: Bytes Format Insn
