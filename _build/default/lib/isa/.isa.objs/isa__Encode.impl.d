lib/isa/encode.ml: Bytes Insn Int32 List Printf Reg
