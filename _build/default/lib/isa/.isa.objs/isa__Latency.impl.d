lib/isa/latency.ml: Insn List Reg
