lib/isa/latency.mli: Insn
