lib/isa/reg.ml: Array Format Int List Printf
