lib/isa/schedule.ml: Array Insn Latency List Reg
