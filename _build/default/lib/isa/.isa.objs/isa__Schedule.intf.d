lib/isa/schedule.mli: Insn Latency Reg
