let opcode = function
  | Insn.Lda _ -> 0x08
  | Insn.Ldah _ -> 0x09
  | Insn.Ldq _ -> 0x29
  | Insn.Stq _ -> 0x2d
  | Insn.Br _ -> 0x30
  | Insn.Bsr _ -> 0x34
  | Insn.Bcond { cond; _ } -> (
      match cond with
      | Blbc -> 0x38 | Beq -> 0x39 | Blt -> 0x3a | Ble -> 0x3b
      | Blbs -> 0x3c | Bne -> 0x3d | Bge -> 0x3e | Bgt -> 0x3f)
  | Insn.Jump _ -> 0x1a
  | Insn.Op { op; _ } -> (
      match op with
      | Addq | Subq | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule -> 0x10
      | And_ | Bis | Xor | Ornot -> 0x11
      | Sll | Srl | Sra -> 0x12
      | Mulq -> 0x13)
  | Insn.Call_pal _ -> 0x00

let funct : Insn.binop -> int = function
  | Addq -> 0x20 | Subq -> 0x29
  | Cmpeq -> 0x2d | Cmplt -> 0x4d | Cmple -> 0x6d
  | Cmpult -> 0x1d | Cmpule -> 0x3d
  | And_ -> 0x00 | Bis -> 0x20 | Xor -> 0x40 | Ornot -> 0x28
  | Sll -> 0x39 | Srl -> 0x34 | Sra -> 0x3c
  | Mulq -> 0x20

let check_disp16 d =
  if not (Insn.fits_disp16 d) then
    invalid_arg (Printf.sprintf "Encode: displacement %d exceeds 16 bits" d)

let check_disp21 d =
  if not (Insn.fits_disp21 d) then
    invalid_arg (Printf.sprintf "Encode: branch displacement %d exceeds 21 bits" d)

let r = Reg.to_int

let memory op ra rb disp =
  check_disp16 disp;
  (op lsl 26) lor (r ra lsl 21) lor (r rb lsl 16) lor (disp land 0xffff)

let branch op ra disp =
  check_disp21 disp;
  (op lsl 26) lor (r ra lsl 21) lor (disp land 0x1fffff)

let insn i =
  let op = opcode i in
  match i with
  | Insn.Lda { ra; rb; disp }
  | Insn.Ldah { ra; rb; disp }
  | Insn.Ldq { ra; rb; disp }
  | Insn.Stq { ra; rb; disp } -> memory op ra rb disp
  | Insn.Br { ra; disp } | Insn.Bsr { ra; disp } -> branch op ra disp
  | Insn.Bcond { ra; disp; _ } -> branch op ra disp
  | Insn.Jump { kind; ra; rb; hint } ->
      if hint < 0 || hint > 0x3fff then
        invalid_arg (Printf.sprintf "Encode: jump hint %d exceeds 14 bits" hint);
      let k = match kind with Jmp -> 0 | Jsr -> 1 | Ret -> 2 in
      (op lsl 26) lor (r ra lsl 21) lor (r rb lsl 16) lor (k lsl 14) lor hint
  | Insn.Op { op = bop; ra; rb; rc } -> (
      let base = (op lsl 26) lor (r ra lsl 21) lor (funct bop lsl 5) lor r rc in
      match rb with
      | Rb rb -> base lor (r rb lsl 16)
      | Imm n ->
          if n < 0 || n > 255 then
            invalid_arg (Printf.sprintf "Encode: literal %d exceeds 8 bits" n);
          base lor (n lsl 13) lor (1 lsl 12))
  | Insn.Call_pal f ->
      if f < 0 || f > 0x3ffffff then
        invalid_arg (Printf.sprintf "Encode: PAL function %#x exceeds 26 bits" f);
      f

let to_bytes insns =
  let buf = Bytes.create (4 * List.length insns) in
  List.iteri
    (fun idx i ->
      Bytes.set_int32_le buf (4 * idx) (Int32.of_int (insn i)))
    insns;
  buf
