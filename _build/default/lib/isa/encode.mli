(** Encoding instructions into 32-bit instruction words.

    The word layouts follow the Alpha AXP formats:

    - memory format: [op(6) ra(5) rb(5) disp(16)];
    - branch format: [op(6) ra(5) disp(21)];
    - memory-format jumps: opcode [0x1a] with the jump kind in bits 15:14 of
      the displacement field and a 14-bit hint below it;
    - operate format: [op(6) ra(5) rb(5) 000 0 func(7) rc(5)] for the
      register form and [op(6) ra(5) lit(8) 1 func(7) rc(5)] for the 8-bit
      literal form;
    - PALcode format: [op(6) func(26)].

    Words are returned as non-negative OCaml ints in [0, 2^32). *)

val insn : Insn.t -> int
(** [insn i] is the instruction word for [i]. Raises [Invalid_argument] if a
    displacement or literal does not fit its field. *)

val to_bytes : Insn.t list -> Bytes.t
(** Little-endian concatenation of the encodings. *)
