type pipe = E | A

let pipe_of = function
  | Insn.Op _ | Insn.Lda _ | Insn.Ldah _ -> E
  | Insn.Ldq _ | Insn.Stq _ | Insn.Br _ | Insn.Bsr _ | Insn.Bcond _
  | Insn.Jump _ | Insn.Call_pal _ -> A

let latency = function
  | Insn.Ldq _ -> 3
  | Insn.Op { op = Mulq; _ } -> 8
  | _ -> 1

let intersects xs ys = List.exists (fun x -> List.exists (Reg.equal x) ys) xs

let can_pair a b =
  pipe_of a <> pipe_of b
  && (not (Insn.is_branch a))
  && (not (Insn.is_branch b && Insn.is_branch a))
  && (match a with Insn.Call_pal _ -> false | _ -> true)
  && (match b with Insn.Call_pal _ -> false | _ -> true)
  &&
  let da = Insn.defs a in
  (not (intersects da (Insn.uses b))) && not (intersects da (Insn.defs b))
