(** First-order timing model of the dual-issue implementation
    (21064-like).

    Two instructions can issue in the same cycle only when they sit in the
    same aligned quadword (this is why the optimizer quadword-aligns branch
    targets), go to different pipes, and have no register dependence between
    them. Pipe E handles integer operates; pipe A handles memory accesses,
    branches and PAL calls. *)

type pipe = E | A

val pipe_of : Insn.t -> pipe

val latency : Insn.t -> int
(** Result latency in cycles: cycles before a dependent instruction can
    issue. Loads are 3 (cache hit), integer multiply is 8, address
    arithmetic and everything else is 1. *)

val can_pair : Insn.t -> Insn.t -> bool
(** [can_pair a b] says whether [b] may issue in the same cycle as [a] when
    [b] immediately follows [a] in the same aligned quadword: requires
    different pipes, no register written by [a] and read or written by [b],
    and [a] must not be a taken-control-flow candidate (branches end an
    issue pair). *)
