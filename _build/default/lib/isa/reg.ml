type t = int

let of_int n =
  if n < 0 || n > 31 then
    invalid_arg (Printf.sprintf "Reg.of_int: %d out of range" n);
  n

let to_int r = r
let equal = Int.equal
let compare = Int.compare
let hash r = r

let v0 = 0
let t0 = 1
let t1 = 2
let t2 = 3
let t3 = 4
let t4 = 5
let t5 = 6
let t6 = 7
let t7 = 8
let s0 = 9
let s1 = 10
let s2 = 11
let s3 = 12
let s4 = 13
let s5 = 14
let fp = 15
let a0 = 16
let a1 = 17
let a2 = 18
let a3 = 19
let a4 = 20
let a5 = 21
let t8 = 22
let t9 = 23
let t10 = 24
let t11 = 25
let ra = 26
let pv = 27
let at = 28
let gp = 29
let sp = 30
let zero = 31

let names =
  [| "v0"; "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "s0"; "s1"; "s2";
     "s3"; "s4"; "s5"; "fp"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "t8"; "t9";
     "t10"; "t11"; "ra"; "pv"; "at"; "gp"; "sp"; "zero" |]

let name r = names.(r)
let pp ppf r = Format.pp_print_string ppf (name r)

let caller_saved =
  [ v0; t0; t1; t2; t3; t4; t5; t6; t7; a0; a1; a2; a3; a4; a5; t8; t9; t10;
    t11; ra; pv; at ]

let callee_saved = [ s0; s1; s2; s3; s4; s5; fp ]
let all = List.init 32 (fun i -> i)
