(** Integer registers of the AXP-like 64-bit architecture.

    The architecture has 32 integer registers. Register 31 always reads as
    zero and writes to it are discarded. The OSF/1 software conventions give
    several registers dedicated roles that the address-calculation machinery
    in this library depends on:

    - [gp] (r29) — the global pointer, addressing the current global address
      table (GAT) with a signed 16-bit displacement;
    - [pv] (r27) — the procedure value: at procedure entry it holds the entry
      address of the procedure, which the prologue uses to compute [gp];
    - [ra] (r26) — the return address, used after a call to recompute [gp];
    - [sp] (r30) — the stack pointer;
    - [zero] (r31) — always zero. *)

type t = private int
(** A register number in [0, 31]. *)

val of_int : int -> t
(** [of_int n] is register [n]. Raises [Invalid_argument] unless
    [0 <= n <= 31]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Conventional registers} *)

val v0 : t (* r0  — function result *)
val t0 : t (* r1 *)
val t1 : t (* r2 *)
val t2 : t (* r3 *)
val t3 : t (* r4 *)
val t4 : t (* r5 *)
val t5 : t (* r6 *)
val t6 : t (* r7 *)
val t7 : t (* r8 *)
val s0 : t (* r9  — callee-saved *)
val s1 : t (* r10 *)
val s2 : t (* r11 *)
val s3 : t (* r12 *)
val s4 : t (* r13 *)
val s5 : t (* r14 *)
val fp : t (* r15 *)
val a0 : t (* r16 — first argument *)
val a1 : t (* r17 *)
val a2 : t (* r18 *)
val a3 : t (* r19 *)
val a4 : t (* r20 *)
val a5 : t (* r21 *)
val t8 : t (* r22 *)
val t9 : t (* r23 *)
val t10 : t (* r24 *)
val t11 : t (* r25 *)
val ra : t (* r26 — return address *)
val pv : t (* r27 — procedure value *)
val at : t (* r28 — assembler temporary *)
val gp : t (* r29 — global pointer *)
val sp : t (* r30 — stack pointer *)
val zero : t (* r31 — wired zero *)

val name : t -> string
(** [name r] is the conventional assembler name, e.g. ["gp"], ["t3"]. *)

val pp : Format.formatter -> t -> unit
(** Prints the conventional name. *)

val caller_saved : t list
(** Temporaries and argument registers clobbered by a call (includes [v0],
    [t0]-[t11], [a0]-[a5], [ra], [pv], [at]). *)

val callee_saved : t list
(** [s0]-[s5] and [fp]: preserved across calls. *)

val all : t list
(** All 32 registers, in numeric order. *)
