type node = {
  defs : Reg.t list;
  uses : Reg.t list;
  reads_mem : bool;
  writes_mem : bool;
  barrier : bool;
  latency : int;
  pipe : Latency.pipe;
}

let node_of_insn ?barrier insn =
  let barrier =
    match barrier with
    | Some b -> b
    | None -> (
        Insn.is_branch insn
        || match insn with Insn.Call_pal _ -> true | _ -> false)
  in
  { defs = Insn.defs insn;
    uses = Insn.uses insn;
    reads_mem = Insn.is_load insn;
    writes_mem = Insn.is_store insn;
    barrier;
    latency = Latency.latency insn;
    pipe = Latency.pipe_of insn }

let intersects xs ys = List.exists (fun x -> List.exists (Reg.equal x) ys) xs

(* Must node [b] (later in program order) stay after node [a]?
   Returns the minimum issue-cycle separation, or None if independent. *)
let dep_weight ~(a : node) ~(b : node) =
  if intersects a.defs b.uses then Some a.latency (* RAW: wait for result *)
  else if
    a.barrier || b.barrier
    || intersects a.uses b.defs (* WAR *)
    || intersects a.defs b.defs (* WAW *)
    || (a.writes_mem && (b.reads_mem || b.writes_mem))
    || (b.writes_mem && a.reads_mem)
  then Some 1
  else None

let build_deps nodes =
  let n = Array.length nodes in
  let preds = Array.make n [] in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      match dep_weight ~a:nodes.(i) ~b:nodes.(j) with
      | Some w -> preds.(j) <- (i, w) :: preds.(j)
      | None -> ()
    done
  done;
  preds

(* Cycle-aware greedy list scheduling: at each machine cycle issue up to two
   ready nodes (different pipes), preferring the longest critical path.
   This mirrors what the production compilers of the era did — in
   particular it readily separates the two GP-setup instructions of a
   procedure prologue by pulling independent work between them, which is
   precisely the phenomenon the paper blames for OM-simple's missed
   prologue-skipping opportunities. *)
let order nodes =
  let n = Array.length nodes in
  let preds = build_deps nodes in
  let succs = Array.make n [] in
  Array.iteri
    (fun j ps -> List.iter (fun (i, w) -> succs.(i) <- (j, w) :: succs.(i)) ps)
    preds;
  let height = Array.make n 0 in
  for i = n - 1 downto 0 do
    height.(i) <-
      List.fold_left
        (fun acc (j, w) -> max acc (w + height.(j)))
        nodes.(i).latency succs.(i)
  done;
  let remaining = Array.map List.length preds in
  let ready_at = Array.make n 0 in
  let scheduled = Array.make n false in
  let result = Array.make n 0 in
  let filled = ref 0 in
  let cycle = ref 0 in
  let issued_pipe : Latency.pipe option ref = ref None in
  let issued_count = ref 0 in
  while !filled < n do
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if
        (not scheduled.(i))
        && remaining.(i) = 0
        && ready_at.(i) <= !cycle
        && (match !issued_pipe with
           | Some p -> nodes.(i).pipe <> p && not nodes.(i).barrier
           | None -> true)
        && (!best = -1
           || height.(i) > height.(!best)
           || (height.(i) = height.(!best) && i < !best))
      then best := i
    done;
    match !best with
    | -1 ->
        (* nothing can issue this cycle: advance the clock *)
        incr cycle;
        issued_pipe := None;
        issued_count := 0
    | i ->
        scheduled.(i) <- true;
        result.(!filled) <- i;
        incr filled;
        List.iter
          (fun (j, w) ->
            remaining.(j) <- remaining.(j) - 1;
            ready_at.(j) <- max ready_at.(j) (!cycle + w))
          succs.(i);
        incr issued_count;
        if !issued_count >= 2 || nodes.(i).barrier then begin
          incr cycle;
          issued_pipe := None;
          issued_count := 0
        end
        else issued_pipe := Some nodes.(i).pipe
  done;
  result

let is_valid_order nodes perm =
  let n = Array.length nodes in
  Array.length perm = n
  && (let seen = Array.make n false in
      Array.for_all
        (fun i -> i >= 0 && i < n && not seen.(i) && (seen.(i) <- true; true))
        perm)
  &&
  let position = Array.make n 0 in
  Array.iteri (fun slot i -> position.(i) <- slot) perm;
  let ok = ref true in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      match dep_weight ~a:nodes.(i) ~b:nodes.(j) with
      | Some _ -> if position.(i) >= position.(j) then ok := false
      | None -> ()
    done
  done;
  !ok
