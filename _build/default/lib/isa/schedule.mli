(** Generic basic-block list scheduling.

    Both the compiler's [-O2] pipeline scheduler and the optimizer's
    link-time rescheduling pass use this module; they differ only in how
    they describe their instruction-like nodes.

    Dependences considered: register RAW/WAR/WAW, conservative memory
    ordering (no alias analysis: store-load, load-store and store-store
    pairs are ordered), and [barrier] nodes, which stay ordered relative to
    {e every} other node. The scheduler is greedy critical-path list
    scheduling with a dual-issue awareness bonus: among ready nodes of equal
    height it prefers one that can pair with the previously chosen node. *)

type node = {
  defs : Reg.t list;
  uses : Reg.t list;
  reads_mem : bool;
  writes_mem : bool;
  barrier : bool;   (** e.g. calls, PAL gates, pinned instructions *)
  latency : int;
  pipe : Latency.pipe;
}

val node_of_insn : ?barrier:bool -> Insn.t -> node
(** Describe a plain instruction. Branches, jumps and PAL calls are
    automatically barriers. *)

val order : node array -> int array
(** [order nodes] returns a permutation [p] such that executing
    [nodes.(p.(0)), nodes.(p.(1)), ...] preserves all dependences.
    The permutation is a valid topological order of the dependence graph;
    ties favour earlier original positions, keeping the result
    deterministic. *)

val is_valid_order : node array -> int array -> bool
(** Whether a permutation respects every dependence — used by the tests and
    asserted internally. *)
