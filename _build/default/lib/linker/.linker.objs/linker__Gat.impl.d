lib/linker/gat.ml: Array Hashtbl Layout List Objfile Printf Resolve
