lib/linker/gat.mli: Resolve
