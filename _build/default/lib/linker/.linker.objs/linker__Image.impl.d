lib/linker/image.ml: Array Bytes Format Isa List Option Result String
