lib/linker/layout.ml:
