lib/linker/layout.mli:
