lib/linker/link.ml: Array Bytes Gat Hashtbl Image Int32 Int64 Isa Layout List Objfile Printf Resolve Result Seq
