lib/linker/link.mli: Gat Image Objfile Resolve
