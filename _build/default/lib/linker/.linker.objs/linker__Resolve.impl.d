lib/linker/resolve.ml: Array Format Hashtbl List Objfile Option Printf Result Seq
