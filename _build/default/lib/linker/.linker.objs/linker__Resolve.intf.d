lib/linker/resolve.mli: Hashtbl Objfile
