type key =
  | Kaddr of Resolve.target * int
  | Kconst of int64

type t = {
  slots : key array;
  group_of_module : int array;
  ngroups : int;
  group_first_slot : int array;
  module_slot : int array array;
}

let key_of_entry world m = function
  | Objfile.Gat_entry.Addr { symbol; addend } ->
      Kaddr (Resolve.resolve_exn world m symbol, addend)
  | Objfile.Gat_entry.Const c -> Kconst c

let merge ?(capacity = Layout.gat_group_capacity) (world : Resolve.t) =
  let nmods = Array.length world.Resolve.modules in
  let group_of_module = Array.make nmods 0 in
  let module_slot = Array.make nmods [||] in
  let slots = ref [] in
  let nslots = ref 0 in
  let group_first = ref [ 0 ] in
  let cur_group = ref 0 in
  let cur_index : (key, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun m (u : Objfile.Cunit.t) ->
      let keys = Array.map (key_of_entry world m) u.gat in
      let seen = Hashtbl.create 16 in
      let fresh =
        Array.fold_left
          (fun acc k ->
            if Hashtbl.mem cur_index k || Hashtbl.mem seen k then acc
            else (Hashtbl.replace seen k (); acc + 1))
          0 keys
      in
      let group_fill = !nslots - List.hd !group_first in
      if group_fill + fresh > capacity && group_fill > 0 then begin
        incr cur_group;
        group_first := !nslots :: !group_first;
        Hashtbl.reset cur_index
      end;
      if fresh > capacity then
        invalid_arg
          (Printf.sprintf "Gat.merge: module %s needs %d slots (> capacity %d)"
             u.name fresh capacity);
      group_of_module.(m) <- !cur_group;
      module_slot.(m) <-
        Array.map
          (fun k ->
            match Hashtbl.find_opt cur_index k with
            | Some s -> s
            | None ->
                let s = !nslots in
                incr nslots;
                slots := k :: !slots;
                Hashtbl.replace cur_index k s;
                s)
          keys)
    world.Resolve.modules;
  { slots = Array.of_list (List.rev !slots);
    group_of_module;
    ngroups = !cur_group + 1;
    group_first_slot = Array.of_list (List.rev !group_first);
    module_slot }

let slot_of t ~m ~local_index = t.module_slot.(m).(local_index)

let size_bytes t = 8 * Array.length t.slots
let group_base_offset t g = 8 * t.group_first_slot.(g)
