(** Merging per-module GATs into linked GAT groups.

    The linker treats module GATs as literal pools: duplicate entries are
    removed and the pools are merged into one big table when possible. A
    group may hold at most {!Layout.gat_group_capacity} slots (everything in
    a group must be reachable from that group's GP with a signed 16-bit
    displacement); when the program is too big, further groups are opened
    and every procedure records which group — hence which GP value — it
    uses. A module's entries always land in a single group, so procedures
    of one module share a GP value. *)

type key =
  | Kaddr of Resolve.target * int  (** address of target + addend *)
  | Kconst of int64

type t = {
  slots : key array;            (** the merged table, groups concatenated *)
  group_of_module : int array;  (** GAT group of each module *)
  ngroups : int;
  group_first_slot : int array; (** index of each group's first slot *)
  module_slot : int array array;
      (** merged slot of each module's local GAT index *)
}

val merge : ?capacity:int -> Resolve.t -> t
(** Merge the GATs of every module of the program. [capacity] defaults to
    {!Layout.gat_group_capacity}; smaller values are used by tests and by
    the [biggat] example to force multi-group programs. *)

val slot_of : t -> m:int -> local_index:int -> int
(** The merged slot holding module [m]'s GAT entry [local_index]. *)

val size_bytes : t -> int
val group_base_offset : t -> int -> int
(** Byte offset of a group's first slot within the merged table. *)
