type proc_info = {
  name : string;
  entry : int;
  size : int;
  gp_value : int;
  module_name : string;
  exported : bool;
  uses_gp : bool;
  gp_setup_at_entry : bool;
}

type t = {
  text_base : int;
  text : Bytes.t;
  data_base : int;
  data : Bytes.t;
  entry : int;
  procs : proc_info array;
  symbols : (string * int) list;
  heap_base : int;
  gat_base : int;
  gat_bytes : int;
  ngroups : int;
}

let find_proc t name =
  Array.find_opt (fun (p : proc_info) -> String.equal p.name name) t.procs

let proc_containing t addr =
  Array.find_opt
    (fun (p : proc_info) -> addr >= p.entry && addr < p.entry + p.size)
    t.procs

let symbol_address t name =
  Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) t.symbols)

let insn_count t = Bytes.length t.text / 4

let insns t =
  match Isa.Decode.of_bytes t.text with
  | Ok is -> Array.of_list is
  | Error e ->
      invalid_arg
        (Format.asprintf "Image.insns: undecodable text: %a" Isa.Decode.pp_error
           e)

let pp_disassembly ppf t =
  let is = insns t in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i insn ->
      let addr = t.text_base + (4 * i) in
      (match Array.find_opt (fun (p : proc_info) -> p.entry = addr) t.procs with
      | Some p -> Format.fprintf ppf "%s:  (gp=%#x)@," p.name p.gp_value
      | None -> ());
      Format.fprintf ppf "  %x:  %a@," addr Isa.Insn.pp insn)
    is;
  Format.fprintf ppf "@]"

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  let text_end = t.text_base + Bytes.length t.text in
  let* () =
    if t.entry < t.text_base || t.entry >= text_end then
      fail "entry %#x outside text [%#x, %#x)" t.entry t.text_base text_end
    else Ok ()
  in
  let* () =
    match Isa.Decode.of_bytes t.text with
    | Ok _ -> Ok ()
    | Error e -> fail "undecodable text: %a" Isa.Decode.pp_error e
  in
  let sorted =
    List.sort
      (fun (a : proc_info) (b : proc_info) -> compare a.entry b.entry)
      (Array.to_list t.procs)
  in
  let* _ =
    List.fold_left
      (fun acc (p : proc_info) ->
        let* prev_end = acc in
        if p.entry < prev_end then fail "procedure %s overlaps" p.name
        else if p.entry + p.size > text_end then
          fail "procedure %s extends past text" p.name
        else Ok (p.entry + p.size))
      (Ok t.text_base) sorted
  in
  let data_end = t.data_base + Bytes.length t.data in
  if t.gat_bytes > 0
     && (t.gat_base < t.data_base || t.gat_base + t.gat_bytes > data_end)
  then fail "GAT [%#x, %#x) outside data" t.gat_base (t.gat_base + t.gat_bytes)
  else Ok ()
