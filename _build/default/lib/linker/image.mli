(** Linked executable images.

    An image is what the machine simulator runs: a text segment, a data
    segment (initialized bytes followed by zero-filled space), the entry
    point, and the loader metadata the optimizer and the measurement
    harness care about — per-procedure descriptors with resolved GP values,
    a symbol map, and the extent of the linked GAT. *)

type proc_info = {
  name : string;
  entry : int;           (** absolute address *)
  size : int;            (** bytes *)
  gp_value : int;        (** the GP this procedure's code expects *)
  module_name : string;
  exported : bool;
  uses_gp : bool;
  gp_setup_at_entry : bool;
}

type t = {
  text_base : int;
  text : Bytes.t;
  data_base : int;
  data : Bytes.t;        (** includes zero-filled .bss tail *)
  entry : int;
  procs : proc_info array;
  symbols : (string * int) list;  (** resolved data/procedure addresses *)
  heap_base : int;
  gat_base : int;
  gat_bytes : int;
  ngroups : int;
}

val find_proc : t -> string -> proc_info option
val proc_containing : t -> int -> proc_info option
(** The procedure whose [entry, entry+size) range contains the address. *)

val symbol_address : t -> string -> int option

val insn_count : t -> int
(** Static number of instructions in the text segment. *)

val insns : t -> Isa.Insn.t array
(** Decoded text. Raises [Invalid_argument] on undecodable words. *)

val pp_disassembly : Format.formatter -> t -> unit
(** Text segment with procedure labels and addresses. *)

val validate : t -> (unit, string) result
(** Sanity checks: entry inside text, procedures non-overlapping and
    in-range, text decodable, GAT extent inside the data segment. *)
