let text_base = 0x1_2000_0000
let data_base = 0x1_4000_0000
let stack_top = 0x1_6000_0000
let stack_bytes = 1 lsl 20

let gp_window_offset = 0x7ff0

(* With GP at group base + 0x7ff0, slot [i] sits at displacement
   [8i - 0x7ff0]; the largest legal displacement is 32767, so the group may
   hold at most (32767 + 32752) / 8 = 8189 slots. Keep a margin. *)
let gat_group_capacity = 8000

let align n a = (n + a - 1) land lnot (a - 1)
let section_alignment = 16
