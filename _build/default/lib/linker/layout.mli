(** Memory-layout conventions of the simulated OSF/1-like system.

    Text and data live in separate regions ~512MB apart (well inside the
    32-bit span an [ldah]/[lda] pair can cover), the stack grows down from
    its own region, and the heap starts where the loaded data region ends. *)

val text_base : int    (* 0x1_2000_0000 *)
val data_base : int    (* 0x1_4000_0000 *)
val stack_top : int    (* 0x1_6000_0000 *)
val stack_bytes : int

val gp_window_offset : int
(** Offset of the GP from the base of its GAT group: [0x7ff0], so the
    signed 16-bit window reaches the whole group and some distance beyond
    it (where the optimizer likes to place small data). *)

val gat_group_capacity : int
(** Maximum 8-byte entries per GAT group such that every slot stays
    addressable from the group's GP. *)

val align : int -> int -> int
(** [align n a] rounds [n] up to a multiple of [a] (a power of two). *)

val section_alignment : int
(** Alignment applied between concatenated sections (16). *)
