(** The standard (non-optimizing) linker.

    Resolves symbols, merges GATs as literal pools, lays out the OSF/1-like
    address space, patches relocations and produces an executable
    {!Image.t}. This is the baseline every measurement in the paper
    compares against: it does no code transformation whatsoever — every
    conservative instruction the compilers emitted survives. *)

val link :
  ?entry:string -> ?gat_capacity:int -> Objfile.Cunit.t list ->
  archives:Objfile.Archive.t list -> (Image.t, string) result

val link_resolved :
  ?gat_capacity:int -> Resolve.t -> (Image.t, string) result
(** Link a program that has already been through {!Resolve.run}. *)

type layout_info = {
  text_off : int array;       (** per module *)
  data_off : int array;
  sdata_off : int array;
  sbss_off : int array;
  bss_off : int array;
  lita_off : int;             (** offset of the merged GAT in the data region *)
  common_off : (string * int) list;
  data_total : int;           (** data region size including zero fill *)
}

val layout_standard : Resolve.t -> Gat.t -> layout_info
(** The standard linker's data layout: [.data .lita .sdata .sbss .bss
    commons], commons in first-appearance order. Exposed for the optimizer
    (which replaces it with a smarter layout) and for tests. *)

val address_of_target : Resolve.t -> layout_info -> Resolve.target -> int
