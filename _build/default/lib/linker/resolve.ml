type proc_rec = {
  p_module : int;
  p_name : string;
  p_offset : int;
  p_size : int;
  p_exported : bool;
  p_uses_gp : bool;
  p_gp_at_entry : bool;
}

type placement =
  | In_section of { s_module : int; section : Objfile.Section.t; offset : int }
  | Common

type obj_rec = { o_name : string; o_placement : placement; o_size : int }

type target = Tproc of int | Tobj of int

type t = {
  modules : Objfile.Cunit.t array;
  procs : proc_rec array;
  objs : obj_rec array;
  entry_proc : int;
  locals : (string, target) Hashtbl.t array;  (* per-module local scopes *)
  globals : (string, target) Hashtbl.t;
}

let build_scopes (world : t) =
  let locals =
    Array.map (fun _ -> Hashtbl.create 8) world.modules
  in
  let globals = Hashtbl.create 64 in
  let add m (binding : Objfile.Symbol.binding) name tgt =
    match binding with
    | Objfile.Symbol.Local -> Hashtbl.replace locals.(m) name tgt
    | Objfile.Symbol.Global -> Hashtbl.replace globals name tgt
  in
  Array.iteri
    (fun i (p : proc_rec) ->
      let sym =
        Option.get (Objfile.Cunit.find_symbol world.modules.(p.p_module) p.p_name)
      in
      add p.p_module sym.Objfile.Symbol.binding p.p_name (Tproc i))
    world.procs;
  Array.iteri
    (fun i (o : obj_rec) ->
      match o.o_placement with
      | Common -> Hashtbl.replace globals o.o_name (Tobj i)
      | In_section { s_module; _ } ->
          let sym =
            Option.get (Objfile.Cunit.find_symbol world.modules.(s_module) o.o_name)
          in
          add s_module sym.Objfile.Symbol.binding o.o_name (Tobj i))
    world.objs;
  (locals, globals)

let resolve world m name =
  match Hashtbl.find_opt world.locals.(m) name with
  | Some t -> Some t
  | None -> Hashtbl.find_opt world.globals name

let resolve_exn world m name =
  match resolve world m name with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Resolve: unresolved symbol %s in %s" name
           world.modules.(m).Objfile.Cunit.name)

let target_name world = function
  | Tproc i -> world.procs.(i).p_name
  | Tobj i -> world.objs.(i).o_name

let proc_index_by_name world name =
  match Hashtbl.find_opt world.globals name with
  | Some (Tproc i) -> Some i
  | _ -> None

let run ?(entry = "__start") units ~archives =
  let ( let* ) = Result.bind in
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  (* archive selection *)
  let defined = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter (fun d -> Hashtbl.replace defined d ())
        (Objfile.Cunit.defined_symbols u))
    units;
  let undefined u =
    List.filter (fun n -> not (Hashtbl.mem defined n))
      (Objfile.Cunit.undefined_symbols u)
  in
  let modules =
    List.fold_left
      (fun mods archive ->
        let wanted = List.concat_map undefined mods in
        let wanted = if Hashtbl.mem defined entry then wanted else entry :: wanted in
        let pulled = Objfile.Archive.select archive ~undefined:wanted in
        List.iter
          (fun u ->
            List.iter (fun d -> Hashtbl.replace defined d ())
              (Objfile.Cunit.defined_symbols u))
          pulled;
        mods @ pulled)
      units archives
  in
  let modules = Array.of_list modules in
  (* module names must be distinct for diagnostics *)
  let* () =
    let seen = Hashtbl.create 16 in
    Array.fold_left
      (fun acc (u : Objfile.Cunit.t) ->
        let* () = acc in
        if Hashtbl.mem seen u.name then fail "duplicate module name %s" u.name
        else (Hashtbl.replace seen u.name (); Ok ()))
      (Ok ()) modules
  in
  (* collect procedures and objects; commons merge by max size *)
  let procs = ref [] and nprocs = ref 0 in
  let objs = ref [] and nobjs = ref 0 in
  let commons : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let common_order = ref [] in
  let strong : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let* () =
    Array.to_seqi modules
    |> Seq.fold_left
         (fun acc (m, (u : Objfile.Cunit.t)) ->
           let* () = acc in
           List.fold_left
             (fun acc (s : Objfile.Symbol.t) ->
               let* () = acc in
               let claim_strong () =
                 match s.binding with
                 | Objfile.Symbol.Local -> Ok ()
                 | Objfile.Symbol.Global -> (
                     match Hashtbl.find_opt strong s.name with
                     | Some prev ->
                         fail "duplicate definition of %s (in %s and %s)"
                           s.name prev u.name
                     | None ->
                         Hashtbl.replace strong s.name u.name;
                         Ok ())
               in
               match s.def with
               | Objfile.Symbol.Proc p ->
                   let* () = claim_strong () in
                   procs :=
                     { p_module = m;
                       p_name = s.name;
                       p_offset = p.offset;
                       p_size = p.size;
                       p_exported = p.exported;
                       p_uses_gp = p.uses_gp;
                       p_gp_at_entry = p.gp_setup_at_entry }
                     :: !procs;
                   incr nprocs;
                   Ok ()
               | Objfile.Symbol.Object o ->
                   let* () = claim_strong () in
                   objs :=
                     { o_name = s.name;
                       o_placement =
                         In_section
                           { s_module = m; section = o.section; offset = o.offset };
                       o_size = o.size }
                     :: !objs;
                   incr nobjs;
                   Ok ()
               | Objfile.Symbol.Common c ->
                   (match Hashtbl.find_opt commons s.name with
                   | None ->
                       common_order := s.name :: !common_order;
                       Hashtbl.replace commons s.name c.size
                   | Some prev ->
                       Hashtbl.replace commons s.name (max prev c.size));
                   Ok ())
             (Ok ()) u.symbols)
         (Ok ())
  in
  (* a common is only a real object if no strong definition exists;
     first-appearance order keeps layout deterministic *)
  List.iter
    (fun name ->
      if not (Hashtbl.mem strong name) then begin
        objs :=
          { o_name = name;
            o_placement = Common;
            o_size = Hashtbl.find commons name }
          :: !objs;
        incr nobjs
      end)
    (List.rev !common_order);
  let world =
    let base =
      { modules;
        procs = Array.of_list (List.rev !procs);
        objs = Array.of_list (List.rev !objs);
        entry_proc = 0;
        locals = [||];
        globals = Hashtbl.create 0 }
    in
    let locals, globals = build_scopes base in
    { base with locals; globals }
  in
  (* verify every reference resolves *)
  let* () =
    Array.to_seqi modules
    |> Seq.fold_left
         (fun acc (m, (u : Objfile.Cunit.t)) ->
           let* () = acc in
           List.fold_left
             (fun acc name ->
               let* () = acc in
               match resolve world m name with
               | Some _ -> Ok ()
               | None -> fail "undefined symbol %s (referenced from %s)" name u.name)
             (Ok ())
             (Objfile.Cunit.referenced_symbols u))
         (Ok ())
  in
  match proc_index_by_name world entry with
  | Some e -> Ok { world with entry_proc = e }
  | None -> fail "entry procedure %s is not defined" entry
