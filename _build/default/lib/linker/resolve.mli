(** Symbol resolution: the front half of linking, shared by the standard
    linker and the optimizer.

    Pulls needed archive members, merges common blocks, indexes every
    procedure and data object of the final module list, and provides
    per-module name resolution (local symbols shadow globals). *)

type proc_rec = {
  p_module : int;       (** index into {!field-modules} *)
  p_name : string;
  p_offset : int;       (** byte offset in its module's text *)
  p_size : int;
  p_exported : bool;
  p_uses_gp : bool;
  p_gp_at_entry : bool;
}

type placement =
  | In_section of { s_module : int; section : Objfile.Section.t; offset : int }
  | Common
      (** merged common block; its address is chosen by data layout *)

type obj_rec = { o_name : string; o_placement : placement; o_size : int }

type target =
  | Tproc of int  (** index into {!field-procs} *)
  | Tobj of int   (** index into {!field-objs} *)

type t = {
  modules : Objfile.Cunit.t array;
  procs : proc_rec array;
  objs : obj_rec array;
  entry_proc : int;  (** index of the program entry procedure *)
  locals : (string, target) Hashtbl.t array;
      (** per-module local symbol scopes (use {!resolve} instead) *)
  globals : (string, target) Hashtbl.t;
}

val run :
  ?entry:string -> Objfile.Cunit.t list ->
  archives:Objfile.Archive.t list -> (t, string) result
(** Resolve a program: the given units plus any archive members needed
    (transitively). Errors on duplicate strong definitions, unresolved
    references, a missing entry procedure (default ["__start"]), or a
    common block colliding with a procedure name. *)

val resolve : t -> int -> string -> target option
(** [resolve t m name] resolves [name] as seen from module [m]: local
    definitions of [m] first, then global ones. *)

val resolve_exn : t -> int -> string -> target

val target_name : t -> target -> string

val proc_index_by_name : t -> string -> int option
(** Global procedure lookup by name. *)
