lib/machine/cache.mli:
