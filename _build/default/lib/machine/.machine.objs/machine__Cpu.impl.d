lib/machine/cpu.ml: Array Buffer Bytes Cache Char Format Int64 Isa Linker List Option
