lib/machine/cpu.mli: Format Isa Linker
