(** A direct-mapped cache model (the 21064 had 8KB direct-mapped split
    instruction and data caches). Only hit/miss behaviour is modelled — no
    data is stored. *)

type t

val create : size_bytes:int -> line_bytes:int -> t
(** Both sizes must be powers of two. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr] and reports whether
    it was a hit. *)

val hits : t -> int
val misses : t -> int
val reset : t -> unit
