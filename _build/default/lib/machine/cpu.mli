(** The executing simulator: a first-order dual-issue in-order model of the
    21064-class implementation the paper measured on (DECstation 3000/400).

    Timing model:
    - up to two instructions issue per cycle when they sit in the same
      aligned quadword, go to different pipes and have no dependence
      (which is why the optimizer's quadword alignment of branch targets
      matters);
    - loads have a 3-cycle latency on a D-cache hit plus a miss penalty;
    - taken branches cost a fetch bubble;
    - 8KB direct-mapped split I/D caches.

    System calls go through [call_pal 0x83] with the code in [v0]:
    0 exit, 1 put integer, 2 put character, 3 put quad-string, 4 sbrk. *)

type config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

val default_config : config

type stats = {
  insns : int;              (** instructions executed *)
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
  | Bad_syscall of int64
  | Heap_exhausted
  | Insn_limit_reached

val pp_error : Format.formatter -> error -> unit

val run :
  ?config:config -> ?trace:(pc:int -> Isa.Insn.t -> unit) -> Linker.Image.t ->
  (outcome, error) result
(** Boot the image ([pc] and [pv] at the entry point, [sp] near the stack
    top) and run until the exit system call. [trace] is invoked before each
    instruction executes — the hook behind execution profiling and
    debugging tools. *)
