lib/minic/ast.ml: Format Printf String
