lib/minic/check.ml: Ast Format Hashtbl List Option String
