lib/minic/check.mli: Ast Format
