lib/minic/codegen.ml: Array Hashtbl Int64 Ir Isa List Masm Objfile Regalloc
