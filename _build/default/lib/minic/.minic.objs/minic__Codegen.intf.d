lib/minic/codegen.mli: Hashtbl Ir Masm Regalloc
