lib/minic/driver.ml: Array Ast Char Check Codegen Format Hashtbl Inline Int64 Ir Irgen List Masm Opt Parser Regalloc String
