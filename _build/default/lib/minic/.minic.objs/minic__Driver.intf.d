lib/minic/driver.mli: Ast Check Objfile
