lib/minic/inline.mli: Ir
