lib/minic/ir.ml: Array Format Hashtbl Isa List Option Result
