lib/minic/ir.mli: Format
