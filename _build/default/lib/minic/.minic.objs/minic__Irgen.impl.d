lib/minic/irgen.ml: Array Ast Check Format Hashtbl Int64 Ir Isa List Option Printf String
