lib/minic/irgen.mli: Ast Check Ir
