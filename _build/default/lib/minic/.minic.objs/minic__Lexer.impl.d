lib/minic/lexer.ml: Ast Buffer Char Int64 List Printf String
