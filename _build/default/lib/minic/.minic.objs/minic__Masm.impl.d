lib/minic/masm.ml: Array Buffer Format Hashtbl Isa List Objfile Option
