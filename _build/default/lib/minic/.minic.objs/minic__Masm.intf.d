lib/minic/masm.mli: Isa Objfile
