lib/minic/opt.ml: Hashtbl Int64 Ir List String
