lib/minic/regalloc.ml: Array Format Hashtbl Int Ir Isa List Set
