lib/minic/regalloc.mli: Format Ir Isa
