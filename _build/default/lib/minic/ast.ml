type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Ident of string
  | Str of string
  | Index of expr * expr
  | Addr_of of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type lvalue =
  | Lident of string
  | Lindex of expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr option
  | Decl_array of string * int
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr of expr

type global_init = Scalar_init of int64 | Array_init of int64 list

type top =
  | Extern of { name : string; arity : int; pos : pos }
  | Extern_var of { name : string; array : bool; pos : pos }
  | Global of {
      name : string;
      static : bool;
      size : int;
      init : global_init option;
      pos : pos;
    }
  | Const of { name : string; value : int64; pos : pos }
  | Func of {
      name : string;
      static : bool;
      params : string list;
      body : stmt list;
      pos : pos;
    }

type program = top list

let no_pos = { line = 0; col = 0 }
let mk_expr ?(pos = no_pos) desc = { desc; pos }
let mk_stmt ?(pos = no_pos) sdesc = { sdesc; spos = pos }

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let pp_binop ppf b = Format.pp_print_string ppf (binop_name b)

let rec pp_expr ppf e =
  match e.desc with
  | Int n -> Format.fprintf ppf "%Ld" n
  | Ident x -> Format.pp_print_string ppf x
  | Str s -> Format.fprintf ppf "%S" s
  | Index (a, i) -> Format.fprintf ppf "%a[%a]" pp_expr a pp_expr i
  | Addr_of x -> Format.fprintf ppf "&%s" x
  | Unary (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Unary (Lnot, e) -> Format.fprintf ppf "(!%a)" pp_expr e
  | Unary (Bnot, e) -> Format.fprintf ppf "(~%a)" pp_expr e
  | Binary (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args

let rec pp_stmt ppf s =
  let pp_block ppf body =
    Format.fprintf ppf "{@;<1 2>@[<v>%a@]@ }"
      (Format.pp_print_list pp_stmt) body
  in
  match s.sdesc with
  | Decl (x, None) -> Format.fprintf ppf "var %s;" x
  | Decl (x, Some e) -> Format.fprintf ppf "var %s = %a;" x pp_expr e
  | Decl_array (x, n) -> Format.fprintf ppf "var %s[%d];" x n
  | Assign (Lident x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | Assign (Lindex (a, i), e) ->
      Format.fprintf ppf "%a[%a] = %a;" pp_expr a pp_expr i pp_expr e
  | If (c, t, []) -> Format.fprintf ppf "if (%a) %a" pp_expr c pp_block t
  | If (c, t, f) ->
      Format.fprintf ppf "if (%a) %a else %a" pp_expr c pp_block t pp_block f
  | While (c, body) ->
      Format.fprintf ppf "while (%a) %a" pp_expr c pp_block body
  | For (init, cond, step, body) ->
      let pp_opt_stmt ppf = function
        | None -> ()
        | Some s -> pp_stmt ppf s
      in
      let pp_opt_expr ppf = function
        | None -> ()
        | Some e -> pp_expr ppf e
      in
      Format.fprintf ppf "for (%a %a; %a) %a" pp_opt_stmt init pp_opt_expr
        cond pp_opt_stmt step pp_block body
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Expr e -> Format.fprintf ppf "%a;" pp_expr e

let pp_top ppf = function
  | Extern { name; arity; _ } ->
      Format.fprintf ppf "extern func %s/%d;" name arity
  | Extern_var { name; array; _ } ->
      Format.fprintf ppf "extern var %s%s;" name (if array then "[]" else "")
  | Global { name; static; size; _ } ->
      Format.fprintf ppf "%svar %s%s;"
        (if static then "static " else "")
        name
        (if size = 1 then "" else Printf.sprintf "[%d]" size)
  | Const { name; value; _ } ->
      Format.fprintf ppf "const %s = %Ld;" name value
  | Func { name; static; params; body; _ } ->
      Format.fprintf ppf "@[<v>%sfunc %s(%s) {@;<1 2>@[<v>%a@]@ }@]"
        (if static then "static " else "")
        name
        (String.concat ", " params)
        (Format.pp_print_list pp_stmt) body
