(** Abstract syntax of minic, the small C-like language the benchmark suite
    is written in.

    Every value is a 64-bit integer. Globals are scalars or arrays of
    quadwords; string literals are arrays of one character per quadword.
    [&name] takes the address of a global or of a function (the latter is
    how procedure variables — and hence calls whose destination the
    optimizer cannot examine — arise). A call through a scalar variable is
    an indirect call. *)

type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr                      (* arithmetic right shift *)
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor                     (* short-circuit *)

type unop = Neg | Lnot | Bnot

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Ident of string               (* variable, or array decaying to address *)
  | Str of string                 (* string literal: address of a quad-per-char array *)
  | Index of expr * expr          (* e1[e2]: quadword load at e1 + 8*e2 *)
  | Addr_of of string             (* &global or &function *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list    (* direct, or indirect via scalar var *)

type lvalue =
  | Lident of string
  | Lindex of expr * expr         (* e1[e2] = ... *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr option          (* var x; / var x = e; *)
  | Decl_array of string * int            (* var x[n]; (stack array) *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Expr of expr                          (* expression statement *)

type global_init = Scalar_init of int64 | Array_init of int64 list

type top =
  | Extern of { name : string; arity : int; pos : pos }
  | Extern_var of { name : string; array : bool; pos : pos }
      (** declaration of a library routine defined elsewhere *)
  | Global of {
      name : string;
      static : bool;          (** [static] = local binding *)
      size : int;             (** element count; 1 for scalars *)
      init : global_init option;
      pos : pos;
    }
  | Const of { name : string; value : int64; pos : pos }
      (** compile-time integer constant *)
  | Func of {
      name : string;
      static : bool;
      params : string list;
      body : stmt list;
      pos : pos;
    }

type program = top list

val pp_binop : Format.formatter -> binop -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_top : Format.formatter -> top -> unit

val no_pos : pos
val mk_expr : ?pos:pos -> expr_desc -> expr
val mk_stmt : ?pos:pos -> stmt_desc -> stmt
