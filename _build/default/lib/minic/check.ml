type gkind = Gscalar | Garray of int

type global = {
  gname : string;
  gstatic : bool;
  gkind : gkind;
  ginit : Ast.global_init option;
  gextern : bool;
}

type func_sig = {
  fname : string;
  fstatic : bool;
  farity : int;
  fextern : bool;
}

type env = {
  consts : (string * int64) list;
  globals : global list;
  funcs : func_sig list;
}

let find_global env n = List.find_opt (fun g -> String.equal g.gname n) env.globals
let find_func env n = List.find_opt (fun f -> String.equal f.fname n) env.funcs
let find_const env n =
  Option.map snd (List.find_opt (fun (c, _) -> String.equal c n) env.consts)

type error = { msg : string; pos : Ast.pos }

let pp_error ppf e =
  Format.fprintf ppf "line %d, col %d: %s" e.pos.Ast.line e.pos.Ast.col e.msg

type ctx = {
  env : env;
  mutable errors : error list;
  mutable scopes : (string, gkind) Hashtbl.t list;  (* local scopes, innermost first *)
}

let err ctx pos fmt =
  Format.kasprintf (fun msg -> ctx.errors <- { msg; pos } :: ctx.errors) fmt

let find_local ctx n =
  List.find_map (fun tbl -> Hashtbl.find_opt tbl n) ctx.scopes

let declare_local ctx pos n kind =
  match ctx.scopes with
  | [] -> assert false
  | tbl :: _ ->
      if Hashtbl.mem tbl n then err ctx pos "redeclaration of '%s'" n
      else Hashtbl.replace tbl n kind

let in_scope ctx f =
  ctx.scopes <- Hashtbl.create 8 :: ctx.scopes;
  f ();
  ctx.scopes <- List.tl ctx.scopes

(* What an identifier denotes at an expression position. *)
type denote =
  | Dlocal of gkind
  | Dglobal of gkind
  | Dconst
  | Dfunc of func_sig
  | Dunknown

let denote ctx n =
  match find_local ctx n with
  | Some k -> Dlocal k
  | None -> (
      match find_const ctx.env n with
      | Some _ -> Dconst
      | None -> (
          match find_global ctx.env n with
          | Some g -> Dglobal g.gkind
          | None -> (
              match find_func ctx.env n with
              | Some f -> Dfunc f
              | None -> Dunknown)))

let rec check_expr ctx (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Str _ -> ()
  | Ast.Ident n -> (
      match denote ctx n with
      | Dunknown -> err ctx e.pos "undefined name '%s'" n
      | Dfunc _ ->
          err ctx e.pos "'%s' is a function; use &%s to take its address" n n
      | Dlocal _ | Dglobal _ | Dconst -> ())
  | Ast.Index (a, i) ->
      check_expr ctx a;
      check_expr ctx i
  | Ast.Addr_of n -> (
      match denote ctx n with
      | Dglobal _ | Dfunc _ -> ()
      | Dlocal _ -> err ctx e.pos "cannot take the address of local '%s'" n
      | Dconst -> err ctx e.pos "cannot take the address of constant '%s'" n
      | Dunknown -> err ctx e.pos "undefined name '%s'" n)
  | Ast.Unary (_, a) -> check_expr ctx a
  | Ast.Binary (_, a, b) ->
      check_expr ctx a;
      check_expr ctx b
  | Ast.Call (f, args) ->
      (match denote ctx f with
      | Dfunc fs ->
          if fs.farity <> List.length args then
            err ctx e.pos "'%s' expects %d argument(s), got %d" f fs.farity
              (List.length args)
      | Dlocal Gscalar | Dglobal Gscalar -> () (* indirect call *)
      | Dlocal (Garray _) | Dglobal (Garray _) ->
          err ctx e.pos "cannot call array '%s'" f
      | Dconst -> err ctx e.pos "cannot call constant '%s'" f
      | Dunknown -> err ctx e.pos "undefined function '%s'" f);
      if List.length args > 6 then
        err ctx e.pos "more than 6 arguments are not supported";
      List.iter (check_expr ctx) args

let check_lvalue ctx pos (lv : Ast.lvalue) =
  match lv with
  | Ast.Lident n -> (
      match denote ctx n with
      | Dlocal Gscalar | Dglobal Gscalar -> ()
      | Dlocal (Garray _) | Dglobal (Garray _) ->
          err ctx pos "cannot assign to array '%s'" n
      | Dconst -> err ctx pos "cannot assign to constant '%s'" n
      | Dfunc _ -> err ctx pos "cannot assign to function '%s'" n
      | Dunknown -> err ctx pos "undefined name '%s'" n)
  | Ast.Lindex (a, i) ->
      check_expr ctx a;
      check_expr ctx i

let rec check_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (n, init) ->
      Option.iter (check_expr ctx) init;
      declare_local ctx s.spos n Gscalar
  | Ast.Decl_array (n, sz) -> declare_local ctx s.spos n (Garray sz)
  | Ast.Assign (lv, e) ->
      check_lvalue ctx s.spos lv;
      check_expr ctx e
  | Ast.If (c, t, f) ->
      check_expr ctx c;
      in_scope ctx (fun () -> List.iter (check_stmt ctx) t);
      in_scope ctx (fun () -> List.iter (check_stmt ctx) f)
  | Ast.While (c, body) ->
      check_expr ctx c;
      in_scope ctx (fun () -> List.iter (check_stmt ctx) body)
  | Ast.For (init, cond, step, body) ->
      in_scope ctx (fun () ->
          Option.iter (check_stmt ctx) init;
          Option.iter (check_expr ctx) cond;
          Option.iter (check_stmt ctx) step;
          in_scope ctx (fun () -> List.iter (check_stmt ctx) body))
  | Ast.Return e -> Option.iter (check_expr ctx) e
  | Ast.Expr e -> check_expr ctx e

let build_env (prog : Ast.program) (errors : error list ref) : env =
  let consts = ref [] and globals = ref [] and funcs = ref [] in
  let err pos fmt =
    Format.kasprintf (fun msg -> errors := { msg; pos } :: !errors) fmt
  in
  let taken = Hashtbl.create 16 in
  let claim pos n =
    if Hashtbl.mem taken n then (err pos "redefinition of '%s'" n; false)
    else (Hashtbl.replace taken n (); true)
  in
  List.iter
    (fun (top : Ast.top) ->
      match top with
      | Ast.Extern { name; arity; pos } -> (
          (* repeated extern declarations are harmless if they agree *)
          match
            List.find_opt (fun f -> String.equal f.fname name) !funcs
          with
          | Some { farity; _ } when farity = arity ->
              (* redeclaration, possibly after the definition (merged
                 compilation concatenates modules): harmless *)
              ()
          | Some _ ->
              err pos "extern declaration of '%s' conflicts with its definition"
                name
          | None ->
              if claim pos name then
                funcs :=
                  { fname = name;
                    fstatic = false;
                    farity = arity;
                    fextern = true }
                  :: !funcs)
      | Ast.Extern_var { name; array; pos } -> (
          let kind = if array then Garray 0 else Gscalar in
          match
            List.find_opt (fun g -> String.equal g.gname name) !globals
          with
          | Some g ->
              let compatible =
                match (g.gkind, kind) with
                | Gscalar, Gscalar | Garray _, Garray _ -> true
                | _ -> false
              in
              if not compatible then
                err pos "extern var declaration of '%s' conflicts" name
          | None ->
              if claim pos name then
                globals :=
                  { gname = name;
                    gstatic = false;
                    gkind = kind;
                    ginit = None;
                    gextern = true }
                  :: !globals)
      | Ast.Const { name; value; pos } ->
          if claim pos name then consts := (name, value) :: !consts
      | Ast.Global { name; static; size; init; pos } ->
          (match init with
          | Some (Ast.Array_init vs) when List.length vs > size ->
              err pos "initializer for '%s' has %d elements but size is %d"
                name (List.length vs) size
          | Some (Ast.Array_init _) when size = 1 ->
              err pos "brace initializer on scalar '%s'" name
          | _ -> ());
          let kind = if size = 1 then Gscalar else Garray size in
          (* a definition may complete an earlier extern var declaration *)
          (match
             List.find_opt (fun g -> String.equal g.gname name) !globals
           with
          | Some { gextern = true; gkind; _ } ->
              let compatible =
                match (gkind, kind) with
                | Gscalar, Gscalar | Garray _, Garray _ -> true
                | _ -> false
              in
              if compatible && not static then
                globals :=
                  List.map
                    (fun g ->
                      if String.equal g.gname name then
                        { g with gextern = false; gkind = kind; ginit = init }
                      else g)
                    !globals
              else err pos "definition of '%s' conflicts with extern var" name
          | Some _ -> err pos "redefinition of '%s'" name
          | None ->
              if claim pos name then
                globals :=
                  { gname = name;
                    gstatic = static;
                    gkind = kind;
                    ginit = init;
                    gextern = false }
                  :: !globals)
      | Ast.Func { name; static; params; pos; _ } -> (
          if List.length params > 6 then
            err pos "'%s': more than 6 parameters are not supported" name;
          (* a definition may complete an earlier extern declaration of the
             same arity (e.g. a library module compiled with the standard
             prelude that declares it) *)
          match
            List.find_opt (fun f -> String.equal f.fname name) !funcs
          with
          | Some { fextern = true; farity; _ }
            when farity = List.length params && not static ->
              funcs :=
                List.map
                  (fun f ->
                    if String.equal f.fname name then { f with fextern = false }
                    else f)
                  !funcs
          | Some { fextern = true; _ } ->
              err pos "definition of '%s' conflicts with its extern declaration"
                name
          | _ ->
              if claim pos name then
                funcs :=
                  { fname = name;
                    fstatic = static;
                    farity = List.length params;
                    fextern = false }
                  :: !funcs))
    prog;
  { consts = List.rev !consts;
    globals = List.rev !globals;
    funcs = List.rev !funcs }

let run (prog : Ast.program) =
  let errors = ref [] in
  let env = build_env prog errors in
  let ctx = { env; errors = !errors; scopes = [] } in
  List.iter
    (fun (top : Ast.top) ->
      match top with
      | Ast.Func { params; body; pos; _ } ->
          ctx.scopes <- [ Hashtbl.create 8 ];
          List.iter (fun p -> declare_local ctx pos p Gscalar) params;
          in_scope ctx (fun () -> List.iter (check_stmt ctx) body);
          ctx.scopes <- []
      | _ -> ())
    prog;
  match ctx.errors with
  | [] -> Ok env
  | errs -> Error (List.rev errs)
