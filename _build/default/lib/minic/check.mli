(** Semantic analysis for minic.

    Resolves every identifier, checks arities and assignability, and
    produces the symbol environment the IR generator consumes. *)

type gkind =
  | Gscalar       (** a one-quadword global *)
  | Garray of int (** element count *)

type global = {
  gname : string;
  gstatic : bool;
  gkind : gkind;
  ginit : Ast.global_init option;
  gextern : bool;  (** declared [extern var]: defined in another module *)
}

type func_sig = {
  fname : string;
  fstatic : bool;
  farity : int;
  fextern : bool;  (** declared [extern]: defined in another module *)
}

type env = {
  consts : (string * int64) list;
  globals : global list;
  funcs : func_sig list;
}

val find_global : env -> string -> global option
val find_func : env -> string -> func_sig option
val find_const : env -> string -> int64 option

type error = { msg : string; pos : Ast.pos }

val pp_error : Format.formatter -> error -> unit

val run : Ast.program -> (env, error list) result
(** Check a whole module. On success the environment lists every constant,
    global and function (including externs) of the module. *)
