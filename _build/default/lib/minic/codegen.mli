(** Code generation: allocated {!Ir} functions to {!Masm} items.

    The generated code follows the conservative 64-bit conventions of the
    paper's §2:

    - every global-object reference starts with an {e address load} from
      the GAT ([ldq rX, lit(gp)] with a LITERAL relocation), followed by
      loads/stores through the loaded pointer (linked by LITUSE);
    - every procedure that touches the GAT establishes its own GP from [pv]
      on entry and re-establishes it from [ra] after every call;
    - calls load the destination address from the GAT into [pv] and use
      [jsr ra, (pv)];
    - 64-bit constants that no [ldah]/[lda] pair can build come from the
      literal pool.

    Exception to the conservatism (also per the paper): a call to a known
    non-exported procedure of the same unit may be compiled as a [bsr] that
    skips the callee's (pinned) GP setup, with no PV load and no GP reset —
    the compiler can prove both sides use the same GAT. The [compile-all]
    driver mode treats every user procedure except [main] this way. *)

type local_callee = {
  lc_postgp : Masm.label;
      (** branch target that skips the callee's GP setup *)
}

type ctx = {
  masm : Masm.t;
  o2 : bool;                (** schedule straight-line runs *)
  local_callees : (string, local_callee) Hashtbl.t;
      (** procedures of this unit whose calls may be optimized *)
  optimistic : string -> bool;
      (** globals compiled with a direct GP-relative reference (the
          paper's §6 "optimistic compilation" scheme, like the MIPS
          [-G] option); the final link fails if the bet is lost *)
}

val gen_func : ctx -> Ir.func -> Regalloc.allocation -> unit
(** Generate one procedure into [ctx.masm]. If the function's name is
    registered in [local_callees], its GP setup is pinned at entry and the
    registered [lc_postgp] label is placed after it. *)
