type opt_level = O0 | O2

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let parse_and_check ?(prelude = "") source =
  let full = if prelude = "" then source else prelude ^ "\n" ^ source in
  let prog =
    match Parser.parse_result full with
    | Ok p -> p
    | Error m -> fail "parse error: %s" m
  in
  match Check.run prog with
  | Ok env -> (prog, env)
  | Error errs ->
      fail "%s"
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" Check.pp_error e) errs))

(* Size threshold below which an initialized global goes to .sdata. *)
let sdata_threshold = 64

let emit_globals masm (env : Check.env) (strings : (string * string) list) =
  List.iter
    (fun (g : Check.global) ->
      if g.Check.gextern then ()
      else
      let size_bytes =
        match g.gkind with
        | Check.Gscalar -> 8
        | Check.Garray n -> 8 * n
      in
      let init =
        match g.ginit with
        | None -> None
        | Some (Ast.Scalar_init v) -> Some [| v |]
        | Some (Ast.Array_init vs) -> Some (Array.of_list vs)
      in
      match init with
      | Some init ->
          let section = if size_bytes <= sdata_threshold then `Sdata else `Data in
          Masm.add_global masm ~name:g.gname ~static:g.gstatic ~section
            ~size_bytes ~init ()
      | None ->
          if g.gstatic then
            let section = if size_bytes <= sdata_threshold then `Sbss else `Bss in
            Masm.add_global masm ~name:g.gname ~static:true ~section
              ~size_bytes ()
          else
            (* uninitialized externally-visible data: a common block, whose
               placement is up to the linker (or the optimizer) *)
            Masm.add_common masm ~name:g.gname ~size_bytes)
    env.Check.globals;
  List.iter
    (fun (sym, contents) ->
      let n = String.length contents in
      let init =
        Array.init (n + 1) (fun i ->
            if i < n then Int64.of_int (Char.code contents.[i]) else 0L)
      in
      Masm.add_global masm ~name:sym ~static:true ~section:`Data
        ~size_bytes:(8 * (n + 1)) ~init ())
    strings

let compile_funcs ~opt ~optimistic ~name ~local_callee_names
    (modir : Irgen.modir) =
  let masm = Masm.create name in
  let local_callees = Hashtbl.create 8 in
  List.iter
    (fun fname ->
      Hashtbl.replace local_callees fname
        { Codegen.lc_postgp = Masm.fresh_label masm })
    local_callee_names;
  let optimistic_pred =
    if not optimistic then fun _ -> false
    else
      (* the -G bet applies to scalar globals, including extern scalars *)
      fun sym ->
        match Check.find_global modir.Irgen.env sym with
        | Some { gkind = Check.Gscalar; _ } -> true
        | _ -> false
  in
  let ctx =
    { Codegen.masm;
      o2 = (opt = O2);
      local_callees;
      optimistic = optimistic_pred }
  in
  List.iter
    (fun (fn : Ir.func) ->
      (match opt with O2 -> Opt.run fn | O0 -> Opt.lower_div_only fn);
      (match Ir.validate fn with
      | Ok () -> ()
      | Error m -> fail "internal: invalid IR after optimization: %s" m);
      let alloc = Regalloc.allocate fn in
      Codegen.gen_func ctx fn alloc)
    modir.Irgen.funcs;
  emit_globals masm modir.Irgen.env modir.Irgen.strings;
  Masm.assemble masm

(* Procedures eligible for compile-time call optimization in a unit:
   [static] procedures (unexported by construction), plus — in merged
   whole-program mode — every defined procedure except [main]. *)
let local_callee_names ~merged (modir : Irgen.modir) =
  List.filter_map
    (fun (fn : Ir.func) ->
      if fn.Ir.fstatic then Some fn.Ir.fname
      else if merged && not (String.equal fn.Ir.fname "main") then
        Some fn.Ir.fname
      else None)
    modir.Irgen.funcs

let compile_module ?(opt = O2) ?(optimistic = false) ?prelude ~name source =
  let prog, env = parse_and_check ?prelude source in
  let modir = Irgen.lower env prog in
  compile_funcs ~opt ~optimistic ~name
    ~local_callee_names:(local_callee_names ~merged:false modir)
    modir

let compile_merged ?(opt = O2) ?(optimistic = false) ?(inline = true) ?prelude
    ~name sources =
  let source = String.concat "\n" (List.map snd sources) in
  let prog, env = parse_and_check ?prelude source in
  let modir = Irgen.lower env prog in
  if inline && opt = O2 then Inline.run modir.Irgen.funcs;
  compile_funcs ~opt ~optimistic ~name
    ~local_callee_names:(local_callee_names ~merged:true modir)
    modir
