(** The compiler driver: minic source text to relocatable object modules.

    Two build styles mirror the paper's §5 methodology:

    - {!compile_module} — "compile-each": one source file becomes one
      module, optimized intraprocedurally only. Every non-[static] procedure
      is exported (it could be interposed on by a shared library), so all
      calls to it are compiled conservatively.
    - {!compile_merged} — "compile-all": all the program's sources are
      merged and compiled as a single unit with interprocedural knowledge:
      every user procedure except [main] is internalized, so user-to-user
      calls become [bsr]s that skip GP setup, and small procedures are
      inlined. Calls into pre-compiled library modules remain conservative —
      the compiler cannot see them, which is the paper's point. *)

type opt_level = O0 | O2

exception Error of string
(** Raised on parse or semantic errors, with a formatted message. *)

val compile_module :
  ?opt:opt_level -> ?optimistic:bool -> ?prelude:string -> name:string ->
  string -> Objfile.Cunit.t
(** [compile_module ~name source] compiles one translation unit.
    [prelude] is prepended to the source (typically the standard library's
    [extern] declarations). Default [opt] is [O2].

    [optimistic] (default false) enables the paper's §6 "optimistic
    compilation" scheme (the MIPS [-G] option): scalar globals are
    addressed with a single direct GP-relative instruction instead of a
    GAT load, betting that the linker can place them inside the GP
    window. The final link fails with recompilation advice if the bet is
    lost — the usability burden the paper holds against this
    alternative. *)

val compile_merged :
  ?opt:opt_level -> ?optimistic:bool -> ?inline:bool -> ?prelude:string ->
  name:string -> (string * string) list -> Objfile.Cunit.t
(** [compile_merged ~name sources] compiles [(module_name, source)] pairs
    as one unit, internalizing all user procedures but [main].
    [inline] (default true) enables cross-module inlining of small
    procedures. *)

val parse_and_check : ?prelude:string -> string -> Ast.program * Check.env
(** Front-end only; raises {!Error} on bad input. *)
