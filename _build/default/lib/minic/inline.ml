let max_inline_instrs = 24

let func_size (fn : Ir.func) =
  List.fold_left (fun acc (b : Ir.block) -> acc + List.length b.body + 1) 0
    fn.Ir.blocks

let calls_self (fn : Ir.func) =
  List.exists
    (fun (b : Ir.block) ->
      List.exists
        (fun i ->
          match i with
          | Ir.Call { callee = Ir.Cdirect f; _ } -> String.equal f fn.Ir.fname
          | _ -> false)
        b.body)
    fn.Ir.blocks

(* Procedures whose address is taken anywhere in the unit. *)
let address_taken (funcs : Ir.func list) =
  let taken = Hashtbl.create 8 in
  let names = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace names f.Ir.fname ()) funcs;
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun i ->
              match i with
              | Ir.La { sym; _ } when Hashtbl.mem names sym ->
                  Hashtbl.replace taken sym ()
              | _ -> ())
            b.body)
        f.Ir.blocks)
    funcs;
  taken

let copy v = Ir.Bini { dst = fst v; op = Ir.Add; a = snd v; imm = 0 }

(* A copy of [callee]'s body grafted into [caller], jumping to [cont_label]
   in place of returning. Returns (setup instrs, entry label, new blocks). *)
let splice (caller : Ir.func) (callee : Ir.func) ~args ~dst ~cont_label
    ~fresh_label =
  let vmap = Hashtbl.create 32 in
  let fresh_vreg v =
    match Hashtbl.find_opt vmap v with
    | Some v' -> v'
    | None ->
        let v' = caller.Ir.nvregs in
        caller.Ir.nvregs <- v' + 1;
        Hashtbl.replace vmap v v';
        v'
  in
  let lmap = Hashtbl.create 8 in
  let map_label l =
    match Hashtbl.find_opt lmap l with
    | Some l' -> l'
    | None ->
        let l' = fresh_label () in
        Hashtbl.replace lmap l l';
        l'
  in
  let slot_base = Array.length caller.Ir.slots in
  caller.Ir.slots <-
    Array.append caller.Ir.slots callee.Ir.slots;
  let param_copies =
    List.map2 (fun p a -> copy (fresh_vreg p, a)) callee.Ir.params args
  in
  let copy_block (b : Ir.block) =
    let body =
      List.map
        (fun i ->
          match Ir.map_instr_regs fresh_vreg i with
          | Ir.Laslot { dst; slot } -> Ir.Laslot { dst; slot = slot + slot_base }
          | other -> other)
        b.Ir.body
    in
    let extra, term =
      match Ir.map_term_regs fresh_vreg b.Ir.term with
      | Ir.Ret v ->
          let out =
            match (dst, v) with
            | Some d, Some v -> [ copy (d, v) ]
            | Some d, None -> [ Ir.Li { dst = d; value = 0L } ]
            | None, _ -> []
          in
          (out, Ir.Jmp cont_label)
      | Ir.Jmp l -> ([], Ir.Jmp (map_label l))
      | Ir.Cbr { cond; ifso; ifnot } ->
          ([], Ir.Cbr { cond; ifso = map_label ifso; ifnot = map_label ifnot })
    in
    { Ir.label = map_label b.Ir.label; body = body @ extra; term }
  in
  let blocks = List.map copy_block callee.Ir.blocks in
  let entry =
    match callee.Ir.blocks with
    | b :: _ -> map_label b.Ir.label
    | [] -> invalid_arg "Inline.splice: empty callee"
  in
  (param_copies, entry, blocks)

let inline_pass (funcs : Ir.func list) =
  let taken = address_taken funcs in
  let by_name = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace by_name f.Ir.fname f) funcs;
  let eligible (f : Ir.func) =
    (not (String.equal f.Ir.fname "main"))
    && (not (Hashtbl.mem taken f.Ir.fname))
    && (not (calls_self f))
    && func_size f <= max_inline_instrs
  in
  List.iter
    (fun (caller : Ir.func) ->
      let next_label = ref 0 in
      List.iter
        (fun (b : Ir.block) -> next_label := max !next_label (b.label + 1))
        caller.Ir.blocks;
      let fresh_label () =
        let l = !next_label in
        incr next_label;
        l
      in
      let new_blocks = ref [] in
      let add_block b = new_blocks := b :: !new_blocks in
      let process (b : Ir.block) =
        let rec go cur_label acc_body instrs =
          match instrs with
          | [] ->
              add_block
                { Ir.label = cur_label;
                  body = List.rev acc_body;
                  term = b.Ir.term }
          | (Ir.Call { dst; callee = Ir.Cdirect f; args } as call) :: rest -> (
              match Hashtbl.find_opt by_name f with
              | Some callee
                when eligible callee
                     && not (String.equal callee.Ir.fname caller.Ir.fname) ->
                  let cont_label = fresh_label () in
                  let param_copies, entry, blocks =
                    splice caller callee ~args ~dst ~cont_label ~fresh_label
                  in
                  add_block
                    { Ir.label = cur_label;
                      body = List.rev_append acc_body param_copies;
                      term = Ir.Jmp entry };
                  List.iter add_block blocks;
                  go cont_label [] rest
              | _ -> go cur_label (call :: acc_body) rest)
          | i :: rest -> go cur_label (i :: acc_body) rest
        in
        go b.Ir.label [] b.Ir.body
      in
      List.iter process caller.Ir.blocks;
      caller.Ir.blocks <- List.rev !new_blocks)
    funcs

let run funcs =
  (* two passes: short call chains collapse, recursion cannot loop *)
  inline_pass funcs;
  inline_pass funcs
