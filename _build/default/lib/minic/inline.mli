(** Cross-procedure inlining for the "compile-all" build style.

    Replaces direct calls to small, non-recursive, non-address-taken
    procedures of the same unit by a copy of their body. Note what this does
    to the paper's static call measurements: a multiply-inlined user routine
    that contains library calls {e replicates} those call sites, which is
    one reason interprocedural compilation still leaves so much bookkeeping
    code for the link-time optimizer. *)

val max_inline_instrs : int
(** Size threshold (IR instructions) below which a procedure is an inline
    candidate. *)

val run : Ir.func list -> unit
(** Inline eligible calls in every function, in place. Address-taken
    procedures (their [La] appears outside a call) and [main] are never
    inlined; one level of inlining per pass, applied twice, so call chains
    collapse but recursion cannot loop. *)
