type vreg = int
type label = int

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Cmp of cmp

type callee = Cdirect of string | Cindirect of vreg

type instr =
  | Li of { dst : vreg; value : int64 }
  | Bin of { dst : vreg; op : binop; a : vreg; b : vreg }
  | Bini of { dst : vreg; op : binop; a : vreg; imm : int }
  | Ld of { dst : vreg; base : vreg; off : int }
  | St of { src : vreg; base : vreg; off : int }
  | La of { dst : vreg; sym : string; off : int }
  | Laslot of { dst : vreg; slot : int }
  | Call of { dst : vreg option; callee : callee; args : vreg list }

type term =
  | Ret of vreg option
  | Jmp of label
  | Cbr of { cond : vreg; ifso : label; ifnot : label }

type block = { label : label; mutable body : instr list; mutable term : term }

type func = {
  fname : string;
  fstatic : bool;
  params : vreg list;
  mutable blocks : block list;
  mutable nvregs : int;
  mutable slots : int array;
}

let defs = function
  | Li { dst; _ } | Bin { dst; _ } | Bini { dst; _ } | Ld { dst; _ }
  | La { dst; _ } | Laslot { dst; _ } -> [ dst ]
  | St _ -> []
  | Call { dst; _ } -> Option.to_list dst

let uses = function
  | Li _ | La _ | Laslot _ -> []
  | Bin { a; b; _ } -> [ a; b ]
  | Bini { a; _ } -> [ a ]
  | Ld { base; _ } -> [ base ]
  | St { src; base; _ } -> [ src; base ]
  | Call { callee; args; _ } -> (
      match callee with Cdirect _ -> args | Cindirect v -> v :: args)

let term_uses = function
  | Ret None | Jmp _ -> []
  | Ret (Some v) -> [ v ]
  | Cbr { cond; _ } -> [ cond ]

let successors = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Cbr { ifso; ifnot; _ } -> [ ifso; ifnot ]

let map_instr_regs f = function
  | Li { dst; value } -> Li { dst = f dst; value }
  | Bin { dst; op; a; b } -> Bin { dst = f dst; op; a = f a; b = f b }
  | Bini { dst; op; a; imm } -> Bini { dst = f dst; op; a = f a; imm }
  | Ld { dst; base; off } -> Ld { dst = f dst; base = f base; off }
  | St { src; base; off } -> St { src = f src; base = f base; off }
  | La { dst; sym; off } -> La { dst = f dst; sym; off }
  | Laslot { dst; slot } -> Laslot { dst = f dst; slot }
  | Call { dst; callee; args } ->
      let callee =
        match callee with
        | Cdirect _ as c -> c
        | Cindirect v -> Cindirect (f v)
      in
      Call { dst = Option.map f dst; callee; args = List.map f args }

let map_term_regs f = function
  | Ret v -> Ret (Option.map f v)
  | Jmp _ as t -> t
  | Cbr { cond; ifso; ifnot } -> Cbr { cond = f cond; ifso; ifnot }

let find_block fn l = List.find (fun b -> b.label = l) fn.blocks

let cmp_name = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt"
  | Cge -> "ge"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Cmp c -> "cmp" ^ cmp_name c

let pp_v ppf v = Format.fprintf ppf "v%d" v

let pp_instr ppf = function
  | Li { dst; value } -> Format.fprintf ppf "%a = %Ld" pp_v dst value
  | Bin { dst; op; a; b } ->
      Format.fprintf ppf "%a = %s %a, %a" pp_v dst (binop_name op) pp_v a pp_v b
  | Bini { dst; op; a; imm } ->
      Format.fprintf ppf "%a = %s %a, #%d" pp_v dst (binop_name op) pp_v a imm
  | Ld { dst; base; off } ->
      Format.fprintf ppf "%a = load %d(%a)" pp_v dst off pp_v base
  | St { src; base; off } ->
      Format.fprintf ppf "store %a, %d(%a)" pp_v src off pp_v base
  | La { dst; sym; off = 0 } -> Format.fprintf ppf "%a = &%s" pp_v dst sym
  | La { dst; sym; off } -> Format.fprintf ppf "%a = &%s+%d" pp_v dst sym off
  | Laslot { dst; slot } -> Format.fprintf ppf "%a = &slot%d" pp_v dst slot
  | Call { dst; callee; args } ->
      (match dst with
      | Some d -> Format.fprintf ppf "%a = call " pp_v d
      | None -> Format.fprintf ppf "call ");
      (match callee with
      | Cdirect f -> Format.fprintf ppf "%s" f
      | Cindirect v -> Format.fprintf ppf "*%a" pp_v v);
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_v)
        args

let pp_term ppf = function
  | Ret None -> Format.pp_print_string ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_v v
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Cbr { cond; ifso; ifnot } ->
      Format.fprintf ppf "cbr %a, L%d, L%d" pp_v cond ifso ifnot

let pp_func ppf fn =
  Format.fprintf ppf "@[<v>func %s(%a), %d vregs, %d slots@,"
    fn.fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_v)
    fn.params fn.nvregs (Array.length fn.slots);
  List.iter
    (fun b ->
      Format.fprintf ppf "L%d:@," b.label;
      List.iter (fun i -> Format.fprintf ppf "  %a@," pp_instr i) b.body;
      Format.fprintf ppf "  %a@," pp_term b.term)
    fn.blocks;
  Format.fprintf ppf "@]"

let validate fn =
  let ( let* ) = Result.bind in
  let fail fmt =
    Format.kasprintf (fun m -> Error (fn.fname ^ ": " ^ m)) fmt
  in
  let* () = if fn.blocks = [] then fail "no blocks" else Ok () in
  let labels = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc b ->
        let* () = acc in
        if Hashtbl.mem labels b.label then fail "duplicate label L%d" b.label
        else (Hashtbl.replace labels b.label (); Ok ()))
      (Ok ()) fn.blocks
  in
  let check_vreg v acc =
    let* () = acc in
    if v < 0 || v >= fn.nvregs then fail "vreg v%d out of range" v else Ok ()
  in
  let check_instr i acc =
    let* () = acc in
    let* () = List.fold_right check_vreg (defs i @ uses i) (Ok ()) in
    match i with
    | Bini { imm; _ } ->
        if imm < 0 || imm > 255 then fail "immediate %d out of range" imm
        else Ok ()
    | Laslot { slot; _ } ->
        if slot < 0 || slot >= Array.length fn.slots then
          fail "slot %d out of range" slot
        else Ok ()
    | Ld { off; _ } | St { off; _ } | La { off; _ } ->
        let off = match i with La { off; _ } -> off | _ -> off in
        if not (Isa.Insn.fits_disp16 off) then
          fail "offset %d out of range" off
        else Ok ()
    | _ -> Ok ()
  in
  List.fold_left
    (fun acc b ->
      let* () = acc in
      let* () = List.fold_right check_instr b.body (Ok ()) in
      let* () = List.fold_right check_vreg (term_uses b.term) (Ok ()) in
      List.fold_left
        (fun acc l ->
          let* () = acc in
          if Hashtbl.mem labels l then Ok ()
          else fail "jump to unknown label L%d" l)
        (Ok ()) (successors b.term))
    (Ok ()) fn.blocks
