(** The compiler's intermediate representation: three-address code on
    virtual registers over a control-flow graph.

    Scalar locals and temporaries live in virtual registers; local arrays
    get frame slots. Global accesses appear as [La] (address of a symbol)
    followed by [Ld]/[St] through the resulting value — the code generator
    turns each [La] into a GAT address load, which is exactly the
    conservative pattern the link-time optimizer attacks. *)

type vreg = int
type label = int

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Cmp of cmp  (** produces 0 or 1 *)

type callee =
  | Cdirect of string
  | Cindirect of vreg  (** call through a procedure variable *)

type instr =
  | Li of { dst : vreg; value : int64 }
  | Bin of { dst : vreg; op : binop; a : vreg; b : vreg }
  | Bini of { dst : vreg; op : binop; a : vreg; imm : int }
      (** [imm] in [0, 255] (the operate-format literal) *)
  | Ld of { dst : vreg; base : vreg; off : int }
  | St of { src : vreg; base : vreg; off : int }
  | La of { dst : vreg; sym : string; off : int }
      (** address of a global object or procedure *)
  | Laslot of { dst : vreg; slot : int }
      (** address of a local frame slot *)
  | Call of { dst : vreg option; callee : callee; args : vreg list }

type term =
  | Ret of vreg option
  | Jmp of label
  | Cbr of { cond : vreg; ifso : label; ifnot : label }
      (** branch to [ifso] when [cond] is nonzero *)

type block = { label : label; mutable body : instr list; mutable term : term }

type func = {
  fname : string;
  fstatic : bool;
  params : vreg list;
  mutable blocks : block list;  (** entry block first *)
  mutable nvregs : int;
  mutable slots : int array;            (** frame slot sizes in bytes *)
}

val defs : instr -> vreg list
val uses : instr -> vreg list
val term_uses : term -> vreg list
val successors : term -> label list

val map_instr_regs : (vreg -> vreg) -> instr -> instr
val map_term_regs : (vreg -> vreg) -> term -> term

val find_block : func -> label -> block
(** Raises [Not_found]. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_func : Format.formatter -> func -> unit

val validate : func -> (unit, string) result
(** Check structural invariants: entry block exists, every jump target is a
    block of the function, every used vreg is below [nvregs], slot and
    immediate references are in range. *)
