type modir = {
  funcs : Ir.func list;
  strings : (string * string) list;
  env : Check.env;
}

type ctx = {
  env : Check.env;
  mutable nvregs : int;
  mutable nlabels : int;
  mutable blocks : Ir.block list;          (* finished blocks, reversed *)
  mutable cur_label : Ir.label;
  mutable cur_body : Ir.instr list;        (* reversed *)
  mutable open_block : bool;
  mutable slots : int list;                (* reversed slot sizes *)
  mutable scopes : (string, binding) Hashtbl.t list;
  strings : (string * string) list ref;
  nstrings : int ref;
  module_name : string;
}

and binding = Bvreg of Ir.vreg | Bslot of int

let bug fmt = Format.kasprintf invalid_arg fmt

let fresh ctx =
  let v = ctx.nvregs in
  ctx.nvregs <- v + 1;
  v

let fresh_label ctx =
  let l = ctx.nlabels in
  ctx.nlabels <- l + 1;
  l

let emit ctx i =
  assert ctx.open_block;
  ctx.cur_body <- i :: ctx.cur_body

let terminate ctx term =
  assert ctx.open_block;
  ctx.blocks <-
    { Ir.label = ctx.cur_label; body = List.rev ctx.cur_body; term }
    :: ctx.blocks;
  ctx.open_block <- false;
  ctx.cur_body <- []

let start_block ctx label =
  if ctx.open_block then terminate ctx (Ir.Jmp label);
  ctx.cur_label <- label;
  ctx.cur_body <- [];
  ctx.open_block <- true

let find_binding ctx n =
  List.find_map (fun tbl -> Hashtbl.find_opt tbl n) ctx.scopes

let declare ctx n b =
  match ctx.scopes with
  | [] -> assert false
  | tbl :: _ -> Hashtbl.replace tbl n b

let in_scope ctx f =
  ctx.scopes <- Hashtbl.create 8 :: ctx.scopes;
  let r = f () in
  ctx.scopes <- List.tl ctx.scopes;
  r

let li ctx value =
  let dst = fresh ctx in
  emit ctx (Ir.Li { dst; value });
  dst

let copy_into ctx ~dst src = emit ctx (Ir.Bini { dst; op = Ir.Add; a = src; imm = 0 })

let binop_of_ast : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Add | Ast.Sub -> Ir.Sub | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div | Ast.Rem -> Ir.Rem
  | Ast.Shl -> Ir.Shl | Ast.Shr -> Ir.Shr
  | Ast.Band -> Ir.And | Ast.Bor -> Ir.Or | Ast.Bxor -> Ir.Xor
  | Ast.Eq -> Ir.Cmp Ir.Ceq | Ast.Ne -> Ir.Cmp Ir.Cne
  | Ast.Lt -> Ir.Cmp Ir.Clt | Ast.Le -> Ir.Cmp Ir.Cle
  | Ast.Gt -> Ir.Cmp Ir.Cgt | Ast.Ge -> Ir.Cmp Ir.Cge
  | Ast.Land | Ast.Lor -> assert false (* handled by control flow *)

let intern_string ctx s =
  match
    List.find_opt (fun (_, c) -> String.equal c s) !(ctx.strings)
  with
  | Some (sym, _) -> sym
  | None ->
      let sym = Printf.sprintf "$str%d$%s" !(ctx.nstrings) ctx.module_name in
      incr ctx.nstrings;
      ctx.strings := (sym, s) :: !(ctx.strings);
      sym

(* Address of the named object, for array decay / address-of. *)
let gen_addr_of ctx n =
  match find_binding ctx n with
  | Some (Bslot s) ->
      let dst = fresh ctx in
      emit ctx (Ir.Laslot { dst; slot = s });
      dst
  | Some (Bvreg _) -> bug "gen_addr_of: local scalar %s" n
  | None ->
      let dst = fresh ctx in
      emit ctx (Ir.La { dst; sym = n; off = 0 });
      dst

let rec gen_expr ctx (e : Ast.expr) : Ir.vreg =
  match e.desc with
  | Ast.Int n -> li ctx n
  | Ast.Str s -> gen_addr_of_global ctx (intern_string ctx s)
  | Ast.Ident n -> (
      match find_binding ctx n with
      | Some (Bvreg v) -> v
      | Some (Bslot _) -> gen_addr_of ctx n (* local array decays *)
      | None -> (
          match Check.find_const ctx.env n with
          | Some c -> li ctx c
          | None -> (
              match Check.find_global ctx.env n with
              | Some { gkind = Check.Garray _; _ } ->
                  gen_addr_of_global ctx n (* global array decays *)
              | Some { gkind = Check.Gscalar; _ } ->
                  let addr = gen_addr_of_global ctx n in
                  let dst = fresh ctx in
                  emit ctx (Ir.Ld { dst; base = addr; off = 0 });
                  dst
              | None -> bug "unbound identifier %s" n)))
  | Ast.Index (a, i) ->
      let base, off = gen_index_addr ctx a i in
      let dst = fresh ctx in
      emit ctx (Ir.Ld { dst; base; off });
      dst
  | Ast.Addr_of n -> (
      match find_binding ctx n with
      | Some (Bslot _) -> gen_addr_of ctx n
      | Some (Bvreg _) -> bug "address of local scalar %s" n
      | None -> gen_addr_of_global ctx n)
  | Ast.Unary (Ast.Neg, a) ->
      let va = gen_expr ctx a in
      let z = li ctx 0L in
      let dst = fresh ctx in
      emit ctx (Ir.Bin { dst; op = Ir.Sub; a = z; b = va });
      dst
  | Ast.Unary (Ast.Lnot, a) ->
      let va = gen_expr ctx a in
      let dst = fresh ctx in
      emit ctx (Ir.Bini { dst; op = Ir.Cmp Ir.Ceq; a = va; imm = 0 });
      dst
  | Ast.Unary (Ast.Bnot, a) ->
      let va = gen_expr ctx a in
      let m1 = li ctx (-1L) in
      let dst = fresh ctx in
      emit ctx (Ir.Bin { dst; op = Ir.Xor; a = va; b = m1 });
      dst
  | Ast.Binary (Ast.Land, a, b) ->
      let dst = fresh ctx in
      let lb = fresh_label ctx and lend = fresh_label ctx in
      let va = gen_expr ctx a in
      emit ctx (Ir.Li { dst; value = 0L });
      terminate ctx (Ir.Cbr { cond = va; ifso = lb; ifnot = lend });
      start_block ctx lb;
      let vb = gen_expr ctx b in
      emit ctx (Ir.Bini { dst; op = Ir.Cmp Ir.Cne; a = vb; imm = 0 });
      terminate ctx (Ir.Jmp lend);
      start_block ctx lend;
      dst
  | Ast.Binary (Ast.Lor, a, b) ->
      let dst = fresh ctx in
      let lb = fresh_label ctx and lend = fresh_label ctx in
      let va = gen_expr ctx a in
      emit ctx (Ir.Bini { dst; op = Ir.Cmp Ir.Cne; a = va; imm = 0 });
      terminate ctx (Ir.Cbr { cond = va; ifso = lend; ifnot = lb });
      start_block ctx lb;
      let vb = gen_expr ctx b in
      emit ctx (Ir.Bini { dst; op = Ir.Cmp Ir.Cne; a = vb; imm = 0 });
      terminate ctx (Ir.Jmp lend);
      start_block ctx lend;
      dst
  | Ast.Binary (op, a, b) -> (
      let irop = binop_of_ast op in
      let va = gen_expr ctx a in
      match b.desc with
      | Ast.Int n when n >= 0L && n <= 255L && commutes_with_imm irop ->
          let dst = fresh ctx in
          emit ctx (Ir.Bini { dst; op = irop; a = va; imm = Int64.to_int n });
          dst
      | _ ->
          let vb = gen_expr ctx b in
          let dst = fresh ctx in
          emit ctx (Ir.Bin { dst; op = irop; a = va; b = vb });
          dst)
  | Ast.Call (f, args) -> Option.get (gen_call ctx ~want_result:true f args)

and commutes_with_imm = function
  | Ir.Add | Ir.Sub | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr
  | Ir.Cmp _ -> true
  | Ir.Div | Ir.Rem -> false (* lowered to calls; keep operands in regs *)

and gen_addr_of_global ctx n =
  let dst = fresh ctx in
  emit ctx (Ir.La { dst; sym = n; off = 0 });
  dst

(* Compute (base vreg, byte offset) addressing e1[e2]. *)
and gen_index_addr ctx a i =
  let base = gen_expr ctx a in
  match i.Ast.desc with
  | Ast.Int n
    when Isa.Insn.fits_disp16 (Int64.to_int (Int64.mul 8L n))
         && Int64.abs n < 4096L ->
      (base, 8 * Int64.to_int n)
  | _ ->
      let vi = gen_expr ctx i in
      let scaled = fresh ctx in
      emit ctx (Ir.Bini { dst = scaled; op = Ir.Shl; a = vi; imm = 3 });
      let addr = fresh ctx in
      emit ctx (Ir.Bin { dst = addr; op = Ir.Add; a = base; b = scaled });
      (addr, 0)

and gen_call ctx ~want_result f args =
  let vargs = List.map (gen_expr ctx) args in
  let callee =
    match find_binding ctx f with
    | Some (Bvreg v) -> Ir.Cindirect v
    | Some (Bslot _) -> bug "call through array %s" f
    | None -> (
        match Check.find_func ctx.env f with
        | Some _ -> Ir.Cdirect f
        | None -> (
            match Check.find_global ctx.env f with
            | Some { gkind = Check.Gscalar; _ } ->
                let addr = gen_addr_of_global ctx f in
                let v = fresh ctx in
                emit ctx (Ir.Ld { dst = v; base = addr; off = 0 });
                Ir.Cindirect v
            | _ -> bug "unbound callee %s" f))
  in
  let dst = if want_result then Some (fresh ctx) else None in
  emit ctx (Ir.Call { dst; callee; args = vargs });
  dst

let gen_store_ident ctx n value =
  match find_binding ctx n with
  | Some (Bvreg v) -> copy_into ctx ~dst:v value
  | Some (Bslot _) -> bug "assignment to local array %s" n
  | None ->
      let addr = gen_addr_of_global ctx n in
      emit ctx (Ir.St { src = value; base = addr; off = 0 })

let rec gen_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (n, init) ->
      let v = fresh ctx in
      (match init with
      | Some e ->
          let ve = gen_expr ctx e in
          copy_into ctx ~dst:v ve
      | None -> emit ctx (Ir.Li { dst = v; value = 0L }));
      declare ctx n (Bvreg v)
  | Ast.Decl_array (n, count) ->
      let slot = List.length ctx.slots in
      ctx.slots <- (8 * count) :: ctx.slots;
      declare ctx n (Bslot slot)
  | Ast.Assign (Ast.Lident n, e) ->
      let v = gen_expr ctx e in
      gen_store_ident ctx n v
  | Ast.Assign (Ast.Lindex (a, i), e) ->
      let base, off = gen_index_addr ctx a i in
      let v = gen_expr ctx e in
      emit ctx (Ir.St { src = v; base; off })
  | Ast.If (c, t, f) ->
      let lt = fresh_label ctx and lf = fresh_label ctx in
      let lend = if f = [] then lf else fresh_label ctx in
      let vc = gen_expr ctx c in
      terminate ctx (Ir.Cbr { cond = vc; ifso = lt; ifnot = lf });
      start_block ctx lt;
      in_scope ctx (fun () -> List.iter (gen_stmt ctx) t);
      if ctx.open_block then terminate ctx (Ir.Jmp lend);
      if f <> [] then begin
        start_block ctx lf;
        in_scope ctx (fun () -> List.iter (gen_stmt ctx) f);
        if ctx.open_block then terminate ctx (Ir.Jmp lend)
      end;
      start_block ctx lend
  | Ast.While (c, body) ->
      let lhead = fresh_label ctx
      and lbody = fresh_label ctx
      and lend = fresh_label ctx in
      terminate ctx (Ir.Jmp lhead);
      start_block ctx lhead;
      let vc = gen_expr ctx c in
      terminate ctx (Ir.Cbr { cond = vc; ifso = lbody; ifnot = lend });
      start_block ctx lbody;
      in_scope ctx (fun () -> List.iter (gen_stmt ctx) body);
      if ctx.open_block then terminate ctx (Ir.Jmp lhead);
      start_block ctx lend
  | Ast.For (init, cond, step, body) ->
      in_scope ctx (fun () ->
          Option.iter (gen_stmt ctx) init;
          let lhead = fresh_label ctx
          and lbody = fresh_label ctx
          and lend = fresh_label ctx in
          terminate ctx (Ir.Jmp lhead);
          start_block ctx lhead;
          (match cond with
          | Some c ->
              let vc = gen_expr ctx c in
              terminate ctx (Ir.Cbr { cond = vc; ifso = lbody; ifnot = lend })
          | None -> terminate ctx (Ir.Jmp lbody));
          start_block ctx lbody;
          in_scope ctx (fun () -> List.iter (gen_stmt ctx) body);
          Option.iter (gen_stmt ctx) step;
          if ctx.open_block then terminate ctx (Ir.Jmp lhead);
          start_block ctx lend)
  | Ast.Return e ->
      let v = Option.map (gen_expr ctx) e in
      terminate ctx (Ir.Ret v);
      (* code after a return is unreachable but must go somewhere *)
      start_block ctx (fresh_label ctx)
  | Ast.Expr { desc = Ast.Call (f, args); _ } ->
      (* a statement call needs no result vreg *)
      ignore (gen_call ctx ~want_result:false f args)
  | Ast.Expr e -> ignore (gen_expr ctx e)

let lower_func ctx0 ~module_name env (name, static, params, body) =
  let ctx =
    { ctx0 with
      env;
      nvregs = 0;
      nlabels = 0;
      blocks = [];
      cur_label = 0;
      cur_body = [];
      open_block = false;
      slots = [];
      scopes = [ Hashtbl.create 8 ];
      module_name }
  in
  let entry = fresh_label ctx in
  start_block ctx entry;
  let param_vregs =
    List.map
      (fun p ->
        let v = fresh ctx in
        declare ctx p (Bvreg v);
        v)
      params
  in
  List.iter (gen_stmt ctx) body;
  if ctx.open_block then begin
    let z = li ctx 0L in
    terminate ctx (Ir.Ret (Some z))
  end;
  { Ir.fname = name;
    fstatic = static;
    params = param_vregs;
    blocks = List.rev ctx.blocks;
    nvregs = ctx.nvregs;
    slots = Array.of_list (List.rev ctx.slots) }

let lower env (prog : Ast.program) =
  let strings = ref [] in
  let base_ctx =
    { env;
      nvregs = 0;
      nlabels = 0;
      blocks = [];
      cur_label = 0;
      cur_body = [];
      open_block = false;
      slots = [];
      scopes = [];
      strings;
      nstrings = ref 0;
      module_name = "m" }
  in
  let funcs =
    List.filter_map
      (fun (top : Ast.top) ->
        match top with
        | Ast.Func { name; static; params; body; _ } ->
            Some
              (lower_func base_ctx ~module_name:"m" env
                 (name, static, params, body))
        | _ -> None)
      prog
  in
  { funcs; strings = List.rev !strings; env }
