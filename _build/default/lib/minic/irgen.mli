(** Lowering checked minic ASTs to {!Ir}. *)

type modir = {
  funcs : Ir.func list;
  strings : (string * string) list;
      (** hoisted string literals: (generated symbol, contents); stored as
          one character per quadword in the module's data section *)
  env : Check.env;
}

val lower : Check.env -> Ast.program -> modir
(** Lower every function of a checked module. The AST must have passed
    {!Check.run} with this environment; violations raise
    [Invalid_argument]. *)
