type token =
  | INT of int64
  | IDENT of string
  | STRING of string
  | KW_var | KW_func | KW_extern | KW_static | KW_const
  | KW_if | KW_else | KW_while | KW_for | KW_return
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE | BANG
  | AMPAMP | PIPEPIPE
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | EOF

type t = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

let keyword = function
  | "var" -> Some KW_var
  | "func" -> Some KW_func
  | "extern" -> Some KW_extern
  | "static" -> Some KW_static
  | "const" -> Some KW_const
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "for" -> Some KW_for
  | "return" -> Some KW_return
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let toks = ref [] in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let error i msg = raise (Error (msg, pos i)) in
  let emit i tok = toks := { tok; pos = pos i } :: !toks in
  let newline i = incr line; bol := i + 1 in
  let rec skip_block_comment i start =
    if i + 1 >= n then error start "unterminated comment"
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else begin
      if src.[i] = '\n' then newline i;
      skip_block_comment (i + 1) start
    end
  in
  let lex_escape i =
    (* [i] points after the backslash; returns (char value, next index). *)
    if i >= n then error (i - 1) "unterminated escape"
    else
      match src.[i] with
      | 'n' -> (10, i + 1)
      | 't' -> (9, i + 1)
      | '0' -> (0, i + 1)
      | '\\' -> (92, i + 1)
      | '\'' -> (39, i + 1)
      | '"' -> (34, i + 1)
      | c -> error i (Printf.sprintf "bad escape '\\%c'" c)
  in
  let rec go i =
    if i >= n then emit i EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' -> newline i; go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
          go (eol (i + 1))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          go (skip_block_comment (i + 2) i)
      | c when is_ident_start c ->
          let rec fin j = if j < n && is_ident_char src.[j] then fin (j + 1) else j in
          let j = fin i in
          let word = String.sub src i (j - i) in
          emit i (match keyword word with Some k -> k | None -> IDENT word);
          go j
      | '0' when i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X') ->
          let rec fin j = if j < n && is_hex src.[j] then fin (j + 1) else j in
          let j = fin (i + 2) in
          if j = i + 2 then error i "empty hex literal";
          (match Int64.of_string_opt (String.sub src i (j - i)) with
          | Some v -> emit i (INT v)
          | None -> error i "hex literal out of range");
          go j
      | c when is_digit c ->
          let rec fin j = if j < n && is_digit src.[j] then fin (j + 1) else j in
          let j = fin i in
          (match Int64.of_string_opt (String.sub src i (j - i)) with
          | Some v -> emit i (INT v)
          | None -> error i "integer literal out of range");
          go j
      | '\'' ->
          let value, j =
            if i + 1 >= n then error i "unterminated char literal"
            else if src.[i + 1] = '\\' then lex_escape (i + 2)
            else (Char.code src.[i + 1], i + 2)
          in
          if j >= n || src.[j] <> '\'' then error i "unterminated char literal";
          emit i (INT (Int64.of_int value));
          go (j + 1)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then error i "unterminated string literal"
            else
              match src.[j] with
              | '"' -> j + 1
              | '\\' ->
                  let v, j' = lex_escape (j + 1) in
                  Buffer.add_char buf (Char.chr v);
                  str j'
              | '\n' -> error i "newline in string literal"
              | c -> Buffer.add_char buf c; str (j + 1)
          in
          let j = str (i + 1) in
          emit i (STRING (Buffer.contents buf));
          go j
      | '(' -> emit i LPAREN; go (i + 1)
      | ')' -> emit i RPAREN; go (i + 1)
      | '{' -> emit i LBRACE; go (i + 1)
      | '}' -> emit i RBRACE; go (i + 1)
      | '[' -> emit i LBRACKET; go (i + 1)
      | ']' -> emit i RBRACKET; go (i + 1)
      | ',' -> emit i COMMA; go (i + 1)
      | ';' -> emit i SEMI; go (i + 1)
      | '+' -> emit i PLUS; go (i + 1)
      | '-' -> emit i MINUS; go (i + 1)
      | '*' -> emit i STAR; go (i + 1)
      | '/' -> emit i SLASH; go (i + 1)
      | '%' -> emit i PERCENT; go (i + 1)
      | '~' -> emit i TILDE; go (i + 1)
      | '^' -> emit i CARET; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit i AMPAMP; go (i + 2)
      | '&' -> emit i AMP; go (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit i PIPEPIPE; go (i + 2)
      | '|' -> emit i PIPE; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit i EQEQ; go (i + 2)
      | '=' -> emit i EQ; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit i NE; go (i + 2)
      | '!' -> emit i BANG; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> emit i SHL; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit i LE; go (i + 2)
      | '<' -> emit i LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> emit i SHR; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit i GE; go (i + 2)
      | '>' -> emit i GT; go (i + 1)
      | c -> error i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !toks

let token_name = function
  | INT _ -> "integer"
  | IDENT _ -> "identifier"
  | STRING _ -> "string"
  | KW_var -> "'var'" | KW_func -> "'func'" | KW_extern -> "'extern'"
  | KW_static -> "'static'" | KW_const -> "'const'"
  | KW_if -> "'if'" | KW_else -> "'else'" | KW_while -> "'while'"
  | KW_for -> "'for'" | KW_return -> "'return'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COMMA -> "','" | SEMI -> "';'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | SHL -> "'<<'" | SHR -> "'>>'" | AMP -> "'&'" | PIPE -> "'|'"
  | CARET -> "'^'" | TILDE -> "'~'" | BANG -> "'!'"
  | AMPAMP -> "'&&'" | PIPEPIPE -> "'||'"
  | EQ -> "'='" | EQEQ -> "'=='" | NE -> "'!='"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EOF -> "end of input"
