(** Hand-written lexer for minic. *)

type token =
  | INT of int64
  | IDENT of string
  | STRING of string          (* string literal, for quad-per-char data *)
  | KW_var | KW_func | KW_extern | KW_static | KW_const
  | KW_if | KW_else | KW_while | KW_for | KW_return
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE | BANG
  | AMPAMP | PIPEPIPE
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | EOF

type t = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

val tokenize : string -> t list
(** Tokenize a whole source buffer; the result always ends with [EOF].
    Raises {!Error} on an unexpected character or malformed literal.
    Comments are [//] to end of line and [/* ... */] (non-nesting). *)

val token_name : token -> string
