type label = int
type id = int

type item =
  | Label of label
  | Insn of Isa.Insn.t
  | Branch of { insn : Isa.Insn.t; target : label }
  | Gatload of { id : id; ra : Isa.Reg.t; entry : Objfile.Gat_entry.t }
  | Lituse of { insn : Isa.Insn.t; load : id; jsr : bool }
  | Gpsetup_hi of { base : Isa.Reg.t; anchor : label; lo : id }
  | Gpsetup_lo of { id : id }
  | Gpref of { insn : Isa.Insn.t; symbol : string; addend : int }

type proc = { pname : string; pstatic : bool; pexported : bool; items : item list }

type gobj = {
  gname : string;
  gstatic : bool;
  gsection : [ `Data | `Sdata | `Bss | `Sbss ];
  gsize : int;
  ginit : int64 array option;
  grefquads : (int * string * int) list;
}

type dsection = [ `Data | `Sdata | `Bss | `Sbss ]

type t = {
  name : string;
  mutable labels : int;
  mutable ids : int;
  mutable procs : proc list;    (* reversed *)
  mutable globals : gobj list;  (* reversed *)
  mutable commons : (string * int) list;  (* reversed *)
}

let create name =
  { name; labels = 0; ids = 0; procs = []; globals = []; commons = [] }

let fresh_label t =
  let l = t.labels in
  t.labels <- l + 1;
  l

let fresh_id t =
  let i = t.ids in
  t.ids <- i + 1;
  i

let add_proc t ~name ?(static = false) ?(exported = not static) items =
  t.procs <- { pname = name; pstatic = static; pexported = exported; items }
              :: t.procs

let add_global t ~name ?(static = false) ~section ~size_bytes ?init ?(refquads = [])
    () =
  (match (init, section) with
  | Some _, (`Bss | `Sbss) ->
      invalid_arg "Masm.add_global: initializer in a zero section"
  | _ -> ());
  t.globals <-
    { gname = name;
      gstatic = static;
      gsection = section;
      gsize = size_bytes;
      ginit = init;
      grefquads = refquads }
    :: t.globals

let add_common t ~name ~size_bytes =
  t.commons <- (name, (size_bytes + 7) land lnot 7) :: t.commons

(* --- assembly --- *)

let bug fmt = Format.kasprintf invalid_arg fmt

let item_width = function Label _ -> 0 | _ -> 4

let assemble t =
  let procs = List.rev t.procs in
  let globals = List.rev t.globals in
  (* pass 1: offsets *)
  let label_off = Hashtbl.create 64 in
  let id_off = Hashtbl.create 64 in
  let text_size =
    List.fold_left
      (fun off p ->
        List.fold_left
          (fun off item ->
            (match item with
            | Label l ->
                if Hashtbl.mem label_off l then bug "duplicate label %d" l;
                Hashtbl.replace label_off l off
            | Gatload { id; _ } | Gpsetup_lo { id } ->
                Hashtbl.replace id_off id off
            | _ -> ());
            off + item_width item)
          off p.items)
      0 procs
  in
  ignore text_size;
  (* GAT: deduplicated literal pool *)
  let gat_index = Hashtbl.create 32 in
  let gat_entries = ref [] in
  let ngat = ref 0 in
  let intern entry =
    match Hashtbl.find_opt gat_index entry with
    | Some i -> i
    | None ->
        let i = !ngat in
        incr ngat;
        Hashtbl.replace gat_index entry i;
        gat_entries := entry :: !gat_entries;
        i
  in
  (* pass 2: emit *)
  let insns = ref [] in
  let relocs = ref [] in
  let symbols = ref [] in
  let get_label l =
    match Hashtbl.find_opt label_off l with
    | Some o -> o
    | None -> bug "undefined label %d" l
  in
  let get_id i =
    match Hashtbl.find_opt id_off i with
    | Some o -> o
    | None -> bug "undefined item id %d" i
  in
  let emit_proc off p =
    let start = off in
    let uses_gp = ref false in
    let off =
      List.fold_left
        (fun off item ->
          let reloc kind =
            relocs :=
              Objfile.Reloc.v ~section:Objfile.Section.Text ~offset:off kind
              :: !relocs
          in
          (match item with
          | Label _ -> ()
          | Insn i -> insns := i :: !insns
          | Branch { insn; target } ->
              let dst = get_label target in
              let disp = (dst - (off + 4)) / 4 in
              if not (Isa.Insn.fits_disp21 disp) then
                bug "branch displacement %d out of range in %s" disp p.pname;
              insns := Isa.Insn.with_branch_disp insn disp :: !insns
          | Gatload { ra; entry; _ } ->
              uses_gp := true;
              let idx = intern entry in
              if 8 * idx > 32767 then
                bug "module GAT overflow in %s (%d entries)" t.name idx;
              insns :=
                Isa.Insn.Ldq { ra; rb = Isa.Reg.gp; disp = 8 * idx } :: !insns;
              reloc (Objfile.Reloc.Literal { gat_index = idx })
          | Lituse { insn; load; jsr } ->
              let load_offset = get_id load in
              insns := insn :: !insns;
              reloc
                (if jsr then Objfile.Reloc.Lituse_jsr { load_offset }
                 else Objfile.Reloc.Lituse_base { load_offset })
          | Gpsetup_hi { base; anchor; lo } ->
              uses_gp := true;
              insns :=
                Isa.Insn.Ldah { ra = Isa.Reg.gp; rb = base; disp = 0 }
                :: !insns;
              reloc
                (Objfile.Reloc.Gpdisp
                   { anchor = get_label anchor; pair = get_id lo })
          | Gpsetup_lo _ ->
              insns :=
                Isa.Insn.Lda { ra = Isa.Reg.gp; rb = Isa.Reg.gp; disp = 0 }
                :: !insns
          | Gpref { insn; symbol; addend } ->
              uses_gp := true;
              insns := insn :: !insns;
              reloc (Objfile.Reloc.Gprel16 { symbol; addend }));
          off + item_width item)
        off p.items
    in
    let gp_setup_at_entry =
      match List.filter (function Label _ -> false | _ -> true) p.items with
      | Gpsetup_hi { lo; _ } :: Gpsetup_lo { id } :: _ -> lo = id
      | _ -> false
    in
    symbols :=
      Objfile.Symbol.proc
        ~binding:(if p.pstatic then Objfile.Symbol.Local else Objfile.Symbol.Global)
        ~exported:p.pexported ~uses_gp:!uses_gp ~gp_setup_at_entry
        ~name:p.pname ~offset:start ~size:(off - start) ()
      :: !symbols;
    off
  in
  let _end = List.fold_left emit_proc 0 procs in
  (* data sections *)
  let data = Buffer.create 256 and sdata = Buffer.create 256 in
  let bss = ref 0 and sbss = ref 0 in
  List.iter
    (fun g ->
      let aligned_size = (g.gsize + 7) land lnot 7 in
      let sec, offset =
        match g.gsection with
        | `Data ->
            let o = Buffer.length data in
            (Objfile.Section.Data, o)
        | `Sdata ->
            let o = Buffer.length sdata in
            (Objfile.Section.Sdata, o)
        | `Bss ->
            let o = !bss in
            bss := o + aligned_size;
            (Objfile.Section.Bss, o)
        | `Sbss ->
            let o = !sbss in
            sbss := o + aligned_size;
            (Objfile.Section.Sbss, o)
      in
      (match (g.gsection, g.ginit) with
      | (`Data | `Sdata), init ->
          let buf = match g.gsection with `Data -> data | _ -> sdata in
          let words = aligned_size / 8 in
          let init = Option.value init ~default:[||] in
          if Array.length init > words then
            bug "initializer too long for %s" g.gname;
          for w = 0 to words - 1 do
            let v = if w < Array.length init then init.(w) else 0L in
            Buffer.add_int64_le buf v
          done
      | _ -> ());
      List.iter
        (fun (word, symbol, addend) ->
          if word * 8 >= aligned_size then
            bug "refquad index %d outside %s" word g.gname;
          relocs :=
            Objfile.Reloc.v ~section:sec ~offset:(offset + (8 * word))
              (Objfile.Reloc.Refquad { symbol; addend })
            :: !relocs)
        g.grefquads;
      symbols :=
        Objfile.Symbol.obj
          ~binding:(if g.gstatic then Objfile.Symbol.Local else Objfile.Symbol.Global)
          ~name:g.gname ~section:sec ~offset ~size:aligned_size ()
        :: !symbols)
    globals;
  List.iter
    (fun (name, size) ->
      symbols := Objfile.Symbol.common ~name ~size :: !symbols)
    (List.rev t.commons);
  let unit =
    Objfile.Cunit.make ~name:t.name
      ~data:(Buffer.to_bytes data)
      ~sdata:(Buffer.to_bytes sdata)
      ~bss_size:!bss ~sbss_size:!sbss
      ~gat:(Array.of_list (List.rev !gat_entries))
      ~symbols:(List.rev !symbols)
      ~relocs:(List.rev !relocs)
      (List.rev !insns)
  in
  (match Objfile.Cunit.validate unit with
  | Ok () -> ()
  | Error m -> bug "assembled module fails validation: %s" m);
  unit

(* --- scheduling support --- *)

let items_to_nodes items =
  let node_of = function
    | Label _ -> bug "items_to_nodes: Label in straight-line run"
    | Insn i -> Isa.Schedule.node_of_insn i
    | Branch { insn; _ } -> Isa.Schedule.node_of_insn insn
    | Gatload { ra; _ } ->
        Isa.Schedule.node_of_insn
          (Isa.Insn.Ldq { ra; rb = Isa.Reg.gp; disp = 0 })
    | Lituse { insn; _ } -> Isa.Schedule.node_of_insn insn
    | Gpsetup_hi { base; _ } ->
        Isa.Schedule.node_of_insn
          (Isa.Insn.Ldah { ra = Isa.Reg.gp; rb = base; disp = 0 })
    | Gpsetup_lo _ ->
        Isa.Schedule.node_of_insn
          (Isa.Insn.Lda { ra = Isa.Reg.gp; rb = Isa.Reg.gp; disp = 0 })
    | Gpref { insn; _ } -> Isa.Schedule.node_of_insn insn
  in
  Array.of_list (List.map node_of items)

let schedule_items items =
  match items with
  | [] | [ _ ] -> items
  | _ ->
      let arr = Array.of_list items in
      let nodes = items_to_nodes items in
      let perm = Isa.Schedule.order nodes in
      assert (Isa.Schedule.is_valid_order nodes perm);
      Array.to_list (Array.map (fun i -> arr.(i)) perm)
