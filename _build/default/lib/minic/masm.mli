(** The module assembler: turns per-procedure streams of pseudo-items into
    a relocatable {!Objfile.Cunit}.

    Code generation emits {!item} values, which keep branch targets, GAT
    references, load-use links and GP-setup pairs symbolic so that

    - the [-O2] pipeline scheduler can reorder them freely, and
    - assembly can produce the relocations ([LITERAL], [LITUSE], [GPDISP])
      that the link-time optimizer later consumes.

    GAT entries are deduplicated per module (a module's GAT is a literal
    pool), and the [Literal] displacement written into an address load is
    the slot's offset within the module GAT — the linker rewrites it after
    merging. *)

type label = int
type id = int

type item =
  | Label of label
  | Insn of Isa.Insn.t
      (** a finished instruction with no symbolic operands *)
  | Branch of { insn : Isa.Insn.t; target : label }
      (** a PC-relative branch; the displacement is patched at assembly *)
  | Gatload of { id : id; ra : Isa.Reg.t; entry : Objfile.Gat_entry.t }
      (** an address load: [ldq ra, slot(gp)] *)
  | Lituse of { insn : Isa.Insn.t; load : id; jsr : bool }
      (** an instruction consuming the value loaded by [Gatload load];
          assembly attaches the matching LITUSE relocation *)
  | Gpsetup_hi of { base : Isa.Reg.t; anchor : label; lo : id }
      (** [ldah gp, hi(base)] of a GP-setup pair; [anchor] labels the text
          position whose linked address equals the run-time value of
          [base]; [lo] identifies the paired [Gpsetup_lo] *)
  | Gpsetup_lo of { id : id }
      (** [lda gp, lo(gp)], the second half of a GP-setup pair *)
  | Gpref of { insn : Isa.Insn.t; symbol : string; addend : int }
      (** optimistic compilation: a gp-based memory op addressing
          [symbol]+[addend] directly; assembly attaches a GPREL16
          relocation and the final link verifies the datum landed inside
          the GP window *)

type t

val create : string -> t
(** [create module_name] *)

val fresh_label : t -> label
val fresh_id : t -> id

val add_proc :
  t -> name:string -> ?static:bool -> ?exported:bool -> item list -> unit
(** Append a procedure. Its entry point is the start of the item list.
    [static] procedures get [Local] binding. The [uses_gp] and
    [gp_setup_at_entry] descriptor flags are computed from the items. *)

type dsection = [ `Data | `Sdata | `Bss | `Sbss ]

val add_global :
  t -> name:string -> ?static:bool -> section:dsection -> size_bytes:int ->
  ?init:int64 array -> ?refquads:(int * string * int) list -> unit -> unit
(** Append a data object. [init] fills the first words of an initialized
    section (forbidden for [`Bss]/[`Sbss]); [refquads] lists
    [(word_index, symbol, addend)] address slots within the object. *)

val add_common : t -> name:string -> size_bytes:int -> unit
(** Append an uninitialized common block; the linker or optimizer chooses
    where it lives. *)

val assemble : t -> Objfile.Cunit.t
(** Produce the object module. Raises [Invalid_argument] on dangling
    labels/ids or branch displacements out of range. The result always
    satisfies {!Objfile.Cunit.validate}. *)

val items_to_nodes : item list -> Isa.Schedule.node array
(** Describe items for the scheduler. [Label]s must be removed first
    (scheduling operates on straight-line runs); raises otherwise. *)

val schedule_items : item list -> item list
(** Reorder a straight-line run of items (no [Label]s) with
    {!Isa.Schedule.order}. *)
