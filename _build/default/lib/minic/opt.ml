(* 64-bit two's-complement evaluation matching the machine's semantics. *)
let eval_binop (op : Ir.binop) (a : int64) (b : int64) : int64 option =
  let bool64 c = if c then 1L else 0L in
  match op with
  | Ir.Add -> Some (Int64.add a b)
  | Ir.Sub -> Some (Int64.sub a b)
  | Ir.Mul -> Some (Int64.mul a b)
  | Ir.Div | Ir.Rem -> None (* runtime routine defines the 0-divisor case *)
  | Ir.And -> Some (Int64.logand a b)
  | Ir.Or -> Some (Int64.logor a b)
  | Ir.Xor -> Some (Int64.logxor a b)
  | Ir.Shl -> Some (Int64.shift_left a (Int64.to_int (Int64.logand b 63L)))
  | Ir.Shr ->
      Some (Int64.shift_right a (Int64.to_int (Int64.logand b 63L)))
  | Ir.Cmp Ir.Ceq -> Some (bool64 (Int64.equal a b))
  | Ir.Cmp Ir.Cne -> Some (bool64 (not (Int64.equal a b)))
  | Ir.Cmp Ir.Clt -> Some (bool64 (Int64.compare a b < 0))
  | Ir.Cmp Ir.Cle -> Some (bool64 (Int64.compare a b <= 0))
  | Ir.Cmp Ir.Cgt -> Some (bool64 (Int64.compare a b > 0))
  | Ir.Cmp Ir.Cge -> Some (bool64 (Int64.compare a b >= 0))

type value = Vconst of int64 | Vcopy of Ir.vreg | Vaddr of string * int

(* --- local constant folding / copy propagation --- *)

let fold_block (_fn : Ir.func) (b : Ir.block) =
  let env : (Ir.vreg, value) Hashtbl.t = Hashtbl.create 16 in
  let kill v =
    Hashtbl.remove env v;
    (* any copy of v is now stale *)
    let stale =
      Hashtbl.fold
        (fun k value acc ->
          match value with Vcopy r when r = v -> k :: acc | _ -> acc)
        env []
    in
    List.iter (Hashtbl.remove env) stale
  in
  let subst u =
    match Hashtbl.find_opt env u with Some (Vcopy r) -> r | _ -> u
  in
  let const_of u =
    match Hashtbl.find_opt env u with Some (Vconst c) -> Some c | _ -> None
  in
  let rewrite (i : Ir.instr) : Ir.instr list =
    (* substitute copies in uses only *)
    let i =
      match i with
      | Ir.Li _ | Ir.La _ | Ir.Laslot _ -> i
      | Ir.Bin { dst; op; a; b } -> Ir.Bin { dst; op; a = subst a; b = subst b }
      | Ir.Bini { dst; op; a; imm } -> Ir.Bini { dst; op; a = subst a; imm }
      | Ir.Ld { dst; base; off } -> Ir.Ld { dst; base = subst base; off }
      | Ir.St { src; base; off } ->
          Ir.St { src = subst src; base = subst base; off }
      | Ir.Call { dst; callee; args } ->
          let callee =
            match callee with
            | Ir.Cdirect _ as c -> c
            | Ir.Cindirect v -> Ir.Cindirect (subst v)
          in
          Ir.Call { dst; callee; args = List.map subst args }
    in
    (* address-load CSE: reuse a register that already holds this
       global's address (one address load per block, several LITUSE
       uses — exactly the pattern the real compilers emitted) *)
    let i =
      match i with
      | Ir.La { dst; sym; off } -> (
          let existing =
            Hashtbl.fold
              (fun v value acc ->
                match value with
                | Vaddr (s, o) when String.equal s sym && o = off && v <> dst ->
                    Some v
                | _ -> acc)
              env None
          in
          match existing with
          | Some v -> Ir.Bini { dst; op = Ir.Add; a = v; imm = 0 }
          | None -> i)
      | _ -> i
    in
    (* fold *)
    let folded =
      match i with
      | Ir.Bin { dst; op; a; b } -> (
          match (const_of a, const_of b) with
          | Some ca, Some cb -> (
              match eval_binop op ca cb with
              | Some v -> Ir.Li { dst; value = v }
              | None -> i)
          | _, Some cb when cb >= 0L && cb <= 255L && op <> Ir.Div && op <> Ir.Rem
            -> Ir.Bini { dst; op; a; imm = Int64.to_int cb }
          | _ -> i)
      | Ir.Bini { dst; op; a; imm } -> (
          match const_of a with
          | Some ca -> (
              match eval_binop op ca (Int64.of_int imm) with
              | Some v -> Ir.Li { dst; value = v }
              | None -> i)
          | None -> i)
      | _ -> i
    in
    (* algebraic identities *)
    let simplified =
      match folded with
      | Ir.Bini { dst; op = Ir.Mul; a; imm = 1 } ->
          Ir.Bini { dst; op = Ir.Add; a; imm = 0 }
      | Ir.Bini { dst; op = Ir.Mul; a = _; imm = 0 } -> Ir.Li { dst; value = 0L }
      | Ir.Bini { dst; op = Ir.Mul; a; imm }
        when imm > 0 && imm land (imm - 1) = 0 ->
          (* multiply by a power of two: shift *)
          let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
          Ir.Bini { dst; op = Ir.Shl; a; imm = log2 imm }
      | Ir.Bini { dst; op = Ir.And; a = _; imm = 0 } -> Ir.Li { dst; value = 0L }
      | other -> other
    in
    (* update env *)
    (match Ir.defs simplified with
    | [] -> ()
    | ds -> List.iter kill ds);
    (match simplified with
    | Ir.Li { dst; value } -> Hashtbl.replace env dst (Vconst value)
    | Ir.Bini { dst; op = Ir.Add; a; imm = 0 } when dst <> a ->
        Hashtbl.replace env dst (Vcopy a)
    | Ir.La { dst; sym; off } -> Hashtbl.replace env dst (Vaddr (sym, off))
    | _ -> ());
    [ simplified ]
  in
  let body' = List.concat_map rewrite b.Ir.body in
  let term' =
    match b.Ir.term with
    | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
    | Ir.Cbr { cond; ifso; ifnot } -> (
        let cond = subst cond in
        match const_of cond with
        | Some 0L -> Ir.Jmp ifnot
        | Some _ -> Ir.Jmp ifso
        | None -> Ir.Cbr { cond; ifso; ifnot })
    | t -> t
  in
  b.Ir.body <- body';
  b.Ir.term <- term'

let fold_constants fn = List.iter (fold_block fn) fn.Ir.blocks

let fold_branches fn =
  (* thread jumps to empty blocks that only jump onward *)
  let target = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      match (b.body, b.term) with
      | [], Ir.Jmp l when l <> b.label -> Hashtbl.replace target b.label l
      | _ -> ())
    fn.Ir.blocks;
  let rec resolve seen l =
    if List.mem l seen then l
    else
      match Hashtbl.find_opt target l with
      | Some l' -> resolve (l :: seen) l'
      | None -> l
  in
  let resolve = resolve [] in
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Jmp l -> Ir.Jmp (resolve l)
        | Ir.Cbr { cond; ifso; ifnot } ->
            let ifso = resolve ifso and ifnot = resolve ifnot in
            if ifso = ifnot then Ir.Jmp ifso
            else Ir.Cbr { cond; ifso; ifnot }
        | t -> t))
    fn.Ir.blocks

let remove_unreachable fn =
  match fn.Ir.blocks with
  | [] -> ()
  | entry :: _ ->
      let reachable = Hashtbl.create 16 in
      let rec visit l =
        if not (Hashtbl.mem reachable l) then begin
          Hashtbl.replace reachable l ();
          match List.find_opt (fun (b : Ir.block) -> b.label = l) fn.Ir.blocks with
          | Some b -> List.iter visit (Ir.successors b.term)
          | None -> ()
        end
      in
      visit entry.label;
      fn.Ir.blocks <-
        List.filter (fun (b : Ir.block) -> Hashtbl.mem reachable b.label)
          fn.Ir.blocks

let dead_code fn =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 64 in
    let mark v = Hashtbl.replace used v () in
    List.iter
      (fun (b : Ir.block) ->
        List.iter (fun i -> List.iter mark (Ir.uses i)) b.Ir.body;
        List.iter mark (Ir.term_uses b.Ir.term))
      fn.Ir.blocks;
    let pure = function
      | Ir.Li _ | Ir.Bin _ | Ir.Bini _ | Ir.La _ | Ir.Laslot _ | Ir.Ld _ ->
          true
      | Ir.St _ | Ir.Call _ -> false
    in
    List.iter
      (fun (b : Ir.block) ->
        let keep i =
          match Ir.defs i with
          | [ d ] when pure i && not (Hashtbl.mem used d) ->
              changed := true;
              false
          | _ -> true
        in
        b.Ir.body <- List.filter keep b.Ir.body)
      fn.Ir.blocks
  done

let lower_div fn =
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.body <-
        List.map
          (fun (i : Ir.instr) ->
            match i with
            | Ir.Bin { dst; op = Ir.Div; a; b } ->
                Ir.Call
                  { dst = Some dst; callee = Ir.Cdirect "__divq"; args = [ a; b ] }
            | Ir.Bin { dst; op = Ir.Rem; a; b } ->
                Ir.Call
                  { dst = Some dst; callee = Ir.Cdirect "__remq"; args = [ a; b ] }
            | other -> other)
          b.Ir.body)
    fn.Ir.blocks

let run fn =
  for _round = 1 to 4 do
    fold_constants fn;
    fold_branches fn;
    remove_unreachable fn;
    dead_code fn
  done;
  lower_div fn;
  (* a final cleanup after division lowering *)
  fold_branches fn;
  remove_unreachable fn

let lower_div_only fn = lower_div fn
