(** Machine-independent IR optimizations (the [-O2] analogue).

    These are deliberately {e intraprocedural}: the compiler sees one module
    at a time, which is exactly the blindness the link-time optimizer
    exploits. Passes:

    - local constant folding and copy propagation (within basic blocks);
    - algebraic simplification (x+0, x*1, x*2^k, ...);
    - branch folding on constant conditions;
    - removal of unreachable blocks;
    - dead-definition elimination (pure instructions whose result is never
      used anywhere in the function). *)

val fold_constants : Ir.func -> unit
val fold_branches : Ir.func -> unit
val remove_unreachable : Ir.func -> unit
val dead_code : Ir.func -> unit

val lower_div : Ir.func -> unit
(** Replace remaining [Div]/[Rem] instructions by calls to the runtime
    routines [__divq]/[__remq] (the architecture has no integer divide),
    and divisions by constant powers of two by shifts. Run after
    {!fold_constants} so constant divisions are already gone. Must run
    before register allocation. *)

val run : Ir.func -> unit
(** The full [-O2] pipeline (iterated to a fixed point), including
    {!lower_div}. *)

val lower_div_only : Ir.func -> unit
(** The [-O0] pipeline: no optimization, but division still must be
    lowered. *)
