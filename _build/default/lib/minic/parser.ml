exception Error of string * Ast.pos

type state = { mutable toks : Lexer.t list }

let peek st =
  match st.toks with
  | [] -> { Lexer.tok = Lexer.EOF; pos = Ast.no_pos }
  | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let fail_at pos fmt = Format.kasprintf (fun m -> raise (Error (m, pos))) fmt

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else
    fail_at t.pos "expected %s, found %s" (Lexer.token_name tok)
      (Lexer.token_name t.Lexer.tok)

let expect_ident st =
  match next st with
  | { Lexer.tok = Lexer.IDENT x; _ } -> x
  | t -> fail_at t.pos "expected identifier, found %s" (Lexer.token_name t.tok)

let expect_int st =
  match next st with
  | { Lexer.tok = Lexer.INT n; _ } -> n
  | { Lexer.tok = Lexer.MINUS; _ } -> (
      match next st with
      | { Lexer.tok = Lexer.INT n; _ } -> Int64.neg n
      | t -> fail_at t.pos "expected integer, found %s" (Lexer.token_name t.tok))
  | t -> fail_at t.pos "expected integer, found %s" (Lexer.token_name t.tok)

(* --- expressions: precedence climbing --- *)

let binop_of_token : Lexer.token -> (Ast.binop * int) option = function
  | Lexer.PIPEPIPE -> Some (Ast.Lor, 1)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.EQEQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    match binop_of_token t.Lexer.tok with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (Ast.mk_expr ~pos:t.pos (Ast.Binary (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
      advance st;
      Ast.mk_expr ~pos:t.pos (Ast.Unary (Ast.Neg, parse_unary st))
  | Lexer.BANG ->
      advance st;
      Ast.mk_expr ~pos:t.pos (Ast.Unary (Ast.Lnot, parse_unary st))
  | Lexer.TILDE ->
      advance st;
      Ast.mk_expr ~pos:t.pos (Ast.Unary (Ast.Bnot, parse_unary st))
  | Lexer.AMP ->
      advance st;
      let name = expect_ident st in
      parse_postfix st (Ast.mk_expr ~pos:t.pos (Ast.Addr_of name))
  | _ -> parse_primary st

and parse_postfix st e =
  match (peek st).Lexer.tok with
  | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      parse_postfix st (Ast.mk_expr ~pos:e.Ast.pos (Ast.Index (e, idx)))
  | _ -> e

and parse_primary st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT n -> Ast.mk_expr ~pos:t.pos (Ast.Int n)
  | Lexer.STRING s -> parse_postfix st (Ast.mk_expr ~pos:t.pos (Ast.Str s))
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      parse_postfix st e
  | Lexer.IDENT x -> (
      match (peek st).Lexer.tok with
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          parse_postfix st (Ast.mk_expr ~pos:t.pos (Ast.Call (x, args)))
      | _ -> parse_postfix st (Ast.mk_expr ~pos:t.pos (Ast.Ident x)))
  | tok -> fail_at t.pos "expected expression, found %s" (Lexer.token_name tok)

and parse_args st =
  if (peek st).Lexer.tok = Lexer.RPAREN then (advance st; [])
  else
    let rec more acc =
      let e = parse_expr st in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> more (e :: acc)
      | Lexer.RPAREN -> List.rev (e :: acc)
      | tok ->
          fail_at (peek st).pos "expected ',' or ')', found %s"
            (Lexer.token_name tok)
    in
    more []

(* --- statements --- *)

let rec parse_stmt st : Ast.stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_var ->
      advance st;
      let name = expect_ident st in
      let s =
        match (peek st).Lexer.tok with
        | Lexer.LBRACKET ->
            advance st;
            let n = expect_int st in
            expect st Lexer.RBRACKET;
            if n <= 0L || n > 65536L then
              fail_at t.pos "array size %Ld out of range" n;
            Ast.Decl_array (name, Int64.to_int n)
        | Lexer.EQ ->
            advance st;
            Ast.Decl (name, Some (parse_expr st))
        | _ -> Ast.Decl (name, None)
      in
      expect st Lexer.SEMI;
      Ast.mk_stmt ~pos:t.pos s
  | Lexer.KW_if ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block st in
      let else_ =
        if (peek st).Lexer.tok = Lexer.KW_else then begin
          advance st;
          if (peek st).Lexer.tok = Lexer.KW_if then [ parse_stmt st ]
          else parse_block st
        end
        else []
      in
      Ast.mk_stmt ~pos:t.pos (Ast.If (cond, then_, else_))
  | Lexer.KW_while ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      Ast.mk_stmt ~pos:t.pos (Ast.While (cond, parse_block st))
  | Lexer.KW_for ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if (peek st).Lexer.tok = Lexer.SEMI then None
        else Some (parse_simple st)
      in
      expect st Lexer.SEMI;
      let cond =
        if (peek st).Lexer.tok = Lexer.SEMI then None else Some (parse_expr st)
      in
      expect st Lexer.SEMI;
      let step =
        if (peek st).Lexer.tok = Lexer.RPAREN then None
        else Some (parse_simple st)
      in
      expect st Lexer.RPAREN;
      Ast.mk_stmt ~pos:t.pos (Ast.For (init, cond, step, parse_block st))
  | Lexer.KW_return ->
      advance st;
      let e =
        if (peek st).Lexer.tok = Lexer.SEMI then None else Some (parse_expr st)
      in
      expect st Lexer.SEMI;
      Ast.mk_stmt ~pos:t.pos (Ast.Return e)
  | _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI;
      s

(* A "simple" statement: assignment or expression statement (no keyword). *)
and parse_simple st : Ast.stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_var ->
      (* allowed as for-init: var i = 0 *)
      advance st;
      let name = expect_ident st in
      expect st Lexer.EQ;
      Ast.mk_stmt ~pos:t.pos (Ast.Decl (name, Some (parse_expr st)))
  | _ -> (
      let e = parse_expr st in
      match (peek st).Lexer.tok with
      | Lexer.EQ -> (
          advance st;
          let rhs = parse_expr st in
          match e.Ast.desc with
          | Ast.Ident x ->
              Ast.mk_stmt ~pos:t.pos (Ast.Assign (Ast.Lident x, rhs))
          | Ast.Index (a, i) ->
              Ast.mk_stmt ~pos:t.pos (Ast.Assign (Ast.Lindex (a, i), rhs))
          | _ -> fail_at t.pos "left-hand side is not assignable")
      | _ -> Ast.mk_stmt ~pos:t.pos (Ast.Expr e))

and parse_block st =
  expect st Lexer.LBRACE;
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.RBRACE then (advance st; List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

(* --- top level --- *)

let parse_params st =
  expect st Lexer.LPAREN;
  if (peek st).Lexer.tok = Lexer.RPAREN then (advance st; [])
  else
    let rec more acc =
      let p = expect_ident st in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> more (p :: acc)
      | Lexer.RPAREN -> List.rev (p :: acc)
      | tok ->
          fail_at (peek st).pos "expected ',' or ')', found %s"
            (Lexer.token_name tok)
    in
    more []

let parse_global_init st : Ast.global_init =
  if (peek st).Lexer.tok = Lexer.LBRACE then begin
    advance st;
    let rec more acc =
      let v = expect_int st in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> more (v :: acc)
      | Lexer.RBRACE -> List.rev (v :: acc)
      | tok ->
          fail_at (peek st).pos "expected ',' or '}', found %s"
            (Lexer.token_name tok)
    in
    Ast.Array_init (more [])
  end
  else Ast.Scalar_init (expect_int st)

let parse_top st : Ast.top =
  let t = peek st in
  let static =
    if t.Lexer.tok = Lexer.KW_static then (advance st; true) else false
  in
  let t' = next st in
  match t'.Lexer.tok with
  | Lexer.KW_extern -> (
      if static then fail_at t.pos "'static extern' makes no sense";
      match (next st).Lexer.tok with
      | Lexer.KW_func ->
          let name = expect_ident st in
          let params = parse_params st in
          expect st Lexer.SEMI;
          Ast.Extern { name; arity = List.length params; pos = t.pos }
      | Lexer.KW_var ->
          let name = expect_ident st in
          let array =
            if (peek st).Lexer.tok = Lexer.LBRACKET then begin
              advance st;
              expect st Lexer.RBRACKET;
              true
            end
            else false
          in
          expect st Lexer.SEMI;
          Ast.Extern_var { name; array; pos = t.pos }
      | tok ->
          fail_at t.pos "expected 'func' or 'var' after 'extern', found %s"
            (Lexer.token_name tok))
  | Lexer.KW_const ->
      if static then fail_at t.pos "'static const' is not supported";
      let name = expect_ident st in
      expect st Lexer.EQ;
      let value = expect_int st in
      expect st Lexer.SEMI;
      Ast.Const { name; value; pos = t.pos }
  | Lexer.KW_var ->
      let name = expect_ident st in
      let size =
        if (peek st).Lexer.tok = Lexer.LBRACKET then begin
          advance st;
          let n = expect_int st in
          expect st Lexer.RBRACKET;
          if n <= 0L || n > 4194304L then
            fail_at t.pos "array size %Ld out of range" n;
          Int64.to_int n
        end
        else 1
      in
      let init =
        if (peek st).Lexer.tok = Lexer.EQ then begin
          advance st;
          Some (parse_global_init st)
        end
        else None
      in
      expect st Lexer.SEMI;
      Ast.Global { name; static; size; init; pos = t.pos }
  | Lexer.KW_func ->
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_block st in
      Ast.Func { name; static; params; body; pos = t.pos }
  | tok ->
      fail_at t'.pos "expected a top-level declaration, found %s"
        (Lexer.token_name tok)

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.EOF then List.rev acc
    else go (parse_top st :: acc)
  in
  go []

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Error (m, pos) | exception Lexer.Error (m, pos) ->
      Error (Printf.sprintf "line %d, col %d: %s" pos.Ast.line pos.Ast.col m)
