(** Recursive-descent parser for minic.

    Grammar sketch (see {!Ast} for semantics):
    {v
    program  ::= top*
    top      ::= 'extern' 'func' IDENT '(' IDENT,* ')' ';'
               | 'const' IDENT '=' INT ';'
               | 'static'? 'var' IDENT ('[' INT ']')? ('=' init)? ';'
               | 'static'? 'func' IDENT '(' IDENT,* ')' block
    init     ::= INT | '-' INT | '{' INT,* '}'
    block    ::= '{' stmt* '}'
    stmt     ::= 'var' IDENT ('[' INT ']' | '=' expr)? ';'
               | 'if' '(' expr ')' block ('else' (block | if-stmt))?
               | 'while' '(' expr ')' block
               | 'for' '(' simple? ';' expr? ';' simple? ')' block
               | 'return' expr? ';'
               | simple ';'
    simple   ::= lvalue '=' expr | expr
    v}
    Binary operators follow C precedence; [&&]/[||] short-circuit. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Parse a whole source buffer. Raises {!Error} (or {!Lexer.Error}) on
    malformed input. *)

val parse_result : string -> (Ast.program, string) result
(** Like {!parse} but formats lexing/parsing errors as
    ["line L, col C: message"]. *)
