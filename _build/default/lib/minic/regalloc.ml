type loc = Preg of Isa.Reg.t | Spill of int

type allocation = {
  loc : loc array;
  nspills : int;
  used_callee_saved : Isa.Reg.t list;
}

let caller_pool =
  Isa.Reg.[ t0; t1; t2; t3; t4; t5; t6; t7; t8; t9 ]

let callee_pool = Isa.Reg.[ s0; s1; s2; s3; s4; s5; fp ]

module ISet = Set.Make (Int)

type interval = {
  vreg : int;
  start : int;
  stop : int;
  crosses_call : bool;
}

(* Positions: instruction k of block b (in layout order) has position
   [block_start.(b) + 2k + 2]; the block's live-in touches
   [block_start.(b)] and its terminator sits two past the last body
   instruction. The stride of 2 (and the offset before the first
   instruction) guarantees that an interval whose endpoint coincides with a
   call still counts as crossing it only when the value is genuinely live
   across — parameters defined at position 0 are distinct from a call in
   the first instruction slot. *)
let intervals (fn : Ir.func) =
  let blocks = Array.of_list fn.Ir.blocks in
  let nb = Array.length blocks in
  let index_of_label = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Ir.block) -> Hashtbl.replace index_of_label b.label i)
    blocks;
  let block_start = Array.make nb 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      block_start.(i) <- !pos;
      pos := !pos + (2 * List.length b.body) + 4)
    blocks;
  let npos = !pos in
  (* liveness *)
  let live_in = Array.make nb ISet.empty in
  let live_out = Array.make nb ISet.empty in
  let use_def = Array.make nb (ISet.empty, ISet.empty) in
  Array.iteri
    (fun i (b : Ir.block) ->
      let use = ref ISet.empty and def = ref ISet.empty in
      List.iter
        (fun instr ->
          List.iter
            (fun u -> if not (ISet.mem u !def) then use := ISet.add u !use)
            (Ir.uses instr);
          List.iter (fun d -> def := ISet.add d !def) (Ir.defs instr))
        b.body;
      List.iter
        (fun u -> if not (ISet.mem u !def) then use := ISet.add u !use)
        (Ir.term_uses b.term);
      use_def.(i) <- (!use, !def))
    blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nb - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc l ->
            match Hashtbl.find_opt index_of_label l with
            | Some j -> ISet.union acc live_in.(j)
            | None -> acc)
          ISet.empty
          (Ir.successors blocks.(i).Ir.term)
      in
      let use, def = use_def.(i) in
      let inn = ISet.union use (ISet.diff out def) in
      if not (ISet.equal out live_out.(i) && ISet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (* interval construction *)
  let start = Array.make fn.Ir.nvregs max_int in
  let stop = Array.make fn.Ir.nvregs (-1) in
  let touch v p =
    if p < start.(v) then start.(v) <- p;
    if p > stop.(v) then stop.(v) <- p
  in
  (* parameters are defined at entry *)
  List.iter (fun v -> touch v 0) fn.Ir.params;
  let call_positions = ref [] in
  Array.iteri
    (fun i (b : Ir.block) ->
      let base = block_start.(i) in
      let last = base + (2 * List.length b.body) + 2 in
      ISet.iter (fun v -> touch v base) live_in.(i);
      ISet.iter (fun v -> touch v last) live_out.(i);
      List.iteri
        (fun k instr ->
          let p = base + (2 * k) + 2 in
          List.iter (fun v -> touch v p) (Ir.defs instr);
          List.iter (fun v -> touch v p) (Ir.uses instr);
          match instr with
          | Ir.Call _ -> call_positions := p :: !call_positions
          | _ -> ())
        b.body;
      List.iter (fun v -> touch v last) (Ir.term_uses b.term))
    blocks;
  let calls = List.sort compare !call_positions in
  let crosses v =
    List.exists (fun p -> start.(v) < p && p < stop.(v)) calls
  in
  let result = ref [] in
  for v = fn.Ir.nvregs - 1 downto 0 do
    if stop.(v) >= 0 && start.(v) <> max_int then
      result :=
        { vreg = v; start = start.(v); stop = stop.(v); crosses_call = crosses v }
        :: !result
  done;
  (!result, npos)

let allocate (fn : Ir.func) =
  let ivals, _npos = intervals fn in
  let ivals = List.sort (fun a b -> compare a.start b.start) ivals in
  let loc = Array.make (max fn.Ir.nvregs 1) (Spill (-1)) in
  let free_caller = ref caller_pool in
  let free_callee = ref callee_pool in
  let used_callee = ref [] in
  let nspills = ref 0 in
  (* active intervals, each with its register and pool *)
  let active : (interval * Isa.Reg.t * [ `Caller | `Callee ]) list ref =
    ref []
  in
  let expire p =
    let still, dead =
      List.partition (fun (iv, _, _) -> iv.stop >= p) !active
    in
    active := still;
    List.iter
      (fun (_, r, pool) ->
        match pool with
        | `Caller -> free_caller := r :: !free_caller
        | `Callee -> free_callee := r :: !free_callee)
      dead
  in
  let take_callee () =
    match !free_callee with
    | r :: rest ->
        free_callee := rest;
        if not (List.exists (Isa.Reg.equal r) !used_callee) then
          used_callee := r :: !used_callee;
        Some (r, `Callee)
    | [] -> None
  in
  let take_caller () =
    match !free_caller with
    | r :: rest ->
        free_caller := rest;
        Some (r, `Caller)
    | [] -> None
  in
  List.iter
    (fun iv ->
      expire iv.start;
      let assigned =
        if iv.crosses_call then take_callee ()
        else match take_caller () with Some x -> Some x | None -> take_callee ()
      in
      match assigned with
      | Some (r, pool) ->
          loc.(iv.vreg) <- Preg r;
          active := (iv, r, pool) :: !active
      | None ->
          (* spill the active interval that ends last, if it ends after us
             and is compatible with our pool needs *)
          let candidate =
            List.fold_left
              (fun best ((cand, _, pool) as entry) ->
                let ok = (not iv.crosses_call) || pool = `Callee in
                match best with
                | _ when not ok -> best
                | None -> Some entry
                | Some (b, _, _) ->
                    if cand.stop > b.stop then Some entry else best)
              None !active
          in
          (match candidate with
          | Some (victim, r, pool) when victim.stop > iv.stop ->
              loc.(victim.vreg) <- Spill !nspills;
              incr nspills;
              loc.(iv.vreg) <- Preg r;
              active :=
                (iv, r, pool)
                :: List.filter (fun (c, _, _) -> c.vreg <> victim.vreg) !active
          | _ ->
              loc.(iv.vreg) <- Spill !nspills;
              incr nspills))
    ivals;
  { loc; nspills = !nspills; used_callee_saved = List.rev !used_callee }

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun v l ->
      match l with
      | Preg r -> Format.fprintf ppf "v%d -> %a@," v Isa.Reg.pp r
      | Spill (-1) -> ()
      | Spill s -> Format.fprintf ppf "v%d -> spill[%d]@," v s)
    a.loc;
  Format.fprintf ppf "%d spill slot(s)@]" a.nspills
