(** Linear-scan register allocation.

    Virtual registers get either a physical register or a frame spill slot.
    Intervals that are live across a call are only given callee-saved
    registers, so the code generator never needs caller-save spill code
    around calls. Three scratch registers stay out of the pools:
    [at] (address formation in the code generator) and [t10]/[t11]
    (spill reloads). *)

type loc = Preg of Isa.Reg.t | Spill of int

type allocation = {
  loc : loc array;               (** indexed by vreg *)
  nspills : int;                 (** number of spill slots used *)
  used_callee_saved : Isa.Reg.t list;
      (** callee-saved registers the prologue must preserve *)
}

val caller_pool : Isa.Reg.t list
val callee_pool : Isa.Reg.t list

val allocate : Ir.func -> allocation

val pp : Format.formatter -> allocation -> unit
