lib/objfile/archive.ml: Cunit Hashtbl List
