lib/objfile/archive.mli: Cunit
