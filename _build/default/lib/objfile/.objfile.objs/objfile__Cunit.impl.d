lib/objfile/cunit.ml: Array Bytes Format Gat_entry Hashtbl Int32 Isa List Option Reloc Result Section String Symbol
