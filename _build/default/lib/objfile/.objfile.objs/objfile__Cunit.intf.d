lib/objfile/cunit.mli: Bytes Format Gat_entry Isa Reloc Symbol
