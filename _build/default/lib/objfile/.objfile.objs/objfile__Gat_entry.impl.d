lib/objfile/gat_entry.ml: Format Hashtbl Stdlib
