lib/objfile/gat_entry.mli: Format
