lib/objfile/obj_io.ml: Archive Array Bool Buffer Bytes Cunit Fun Gat_entry Int32 List Printf Reloc Section String Symbol
