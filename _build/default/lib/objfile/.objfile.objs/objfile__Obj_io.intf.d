lib/objfile/obj_io.mli: Archive Bytes Cunit
