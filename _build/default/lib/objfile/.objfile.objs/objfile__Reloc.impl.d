lib/objfile/reloc.ml: Format Section Stdlib
