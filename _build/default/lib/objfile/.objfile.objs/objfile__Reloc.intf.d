lib/objfile/reloc.mli: Format Section
