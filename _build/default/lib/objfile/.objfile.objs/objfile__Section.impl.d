lib/objfile/section.ml: Format Stdlib
