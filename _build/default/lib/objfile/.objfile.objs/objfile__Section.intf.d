lib/objfile/section.mli: Format
