lib/objfile/symbol.ml: Format Section
