lib/objfile/symbol.mli: Format Section
