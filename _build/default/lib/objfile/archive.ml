type t = { name : string; members : Cunit.t list }

let make ~name members = { name; members }

let select t ~undefined =
  let needed = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace needed n ()) undefined;
  let selected = Hashtbl.create 16 in
  (* Iterate to a fixed point: archive members may reference each other in
     either direction, so a single ordered sweep is not enough. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m : Cunit.t) ->
        if not (Hashtbl.mem selected m.name) then
          let resolves =
            List.exists (Hashtbl.mem needed) (Cunit.defined_symbols m)
          in
          if resolves then begin
            Hashtbl.replace selected m.name ();
            List.iter (fun d -> Hashtbl.remove needed d)
              (Cunit.defined_symbols m);
            List.iter
              (fun u -> Hashtbl.replace needed u ())
              (Cunit.undefined_symbols m);
            changed := true
          end)
      t.members
  done;
  List.filter (fun (m : Cunit.t) -> Hashtbl.mem selected m.name) t.members

let defined_symbols t =
  List.concat_map Cunit.defined_symbols t.members
