(** Static library archives.

    An archive is an ordered collection of pre-compiled units with classic
    [ar]-style link semantics: a member is pulled into the link only if it
    defines a symbol that is still undefined, and pulling a member may make
    further members needed. {!select} iterates to a fixed point. *)

type t = { name : string; members : Cunit.t list }

val make : name:string -> Cunit.t list -> t

val select : t -> undefined:string list -> Cunit.t list
(** [select archive ~undefined] returns the members (in archive order)
    needed to resolve [undefined], transitively: a member is selected when
    it defines a symbol undefined so far, and its own undefined references
    are added to the work set. *)

val defined_symbols : t -> string list
(** All global symbols defined by any member. *)
