type t = {
  name : string;
  text : Bytes.t;
  data : Bytes.t;
  sdata : Bytes.t;
  bss_size : int;
  sbss_size : int;
  gat : Gat_entry.t array;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
}

let make ~name ?(data = Bytes.empty) ?(sdata = Bytes.empty) ?(bss_size = 0)
    ?(sbss_size = 0) ?(gat = [||]) ?(symbols = []) ?(relocs = []) body =
  { name;
    text = Isa.Encode.to_bytes body;
    data;
    sdata;
    bss_size;
    sbss_size;
    gat;
    symbols;
    relocs }

let insns t =
  match Isa.Decode.of_bytes t.text with
  | Ok is -> Array.of_list is
  | Error e ->
      invalid_arg
        (Format.asprintf "Cunit.insns: undecodable text in %s: %a" t.name
           Isa.Decode.pp_error e)

let insn_count t = Bytes.length t.text / 4

let find_symbol t name =
  List.find_opt (fun (s : Symbol.t) -> String.equal s.name name) t.symbols

let defined_symbols t =
  List.filter_map
    (fun (s : Symbol.t) ->
      match s.binding with Global -> Some s.name | Local -> None)
    t.symbols

let referenced_symbols t =
  let names = Hashtbl.create 16 in
  let add n = if not (Hashtbl.mem names n) then Hashtbl.add names n () in
  Array.iter
    (function Gat_entry.Addr { symbol; _ } -> add symbol | Const _ -> ())
    t.gat;
  List.iter
    (fun (r : Reloc.t) ->
      match r.kind with
      | Refquad { symbol; _ } | Gprel16 { symbol; _ } -> add symbol
      | _ -> ())
    t.relocs;
  Hashtbl.fold (fun n () acc -> n :: acc) names []

let undefined_symbols t =
  List.filter (fun n -> Option.is_none (find_symbol t n))
    (referenced_symbols t)

(* --- validation --- *)

let section_size t = function
  | Section.Text -> Bytes.length t.text
  | Section.Data -> Bytes.length t.data
  | Section.Sdata -> Bytes.length t.sdata
  | Section.Bss -> t.bss_size
  | Section.Sbss -> t.sbss_size
  | Section.Gat -> 8 * Array.length t.gat

let text_insn t offset =
  if offset < 0 || offset mod 4 <> 0 || offset + 4 > Bytes.length t.text then
    None
  else
    let w = Int32.to_int (Bytes.get_int32_le t.text offset) land 0xffffffff in
    Result.to_option (Isa.Decode.decode w)

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Format.kasprintf (fun m -> Error (t.name ^ ": " ^ m)) fmt in
  let* () =
    if Bytes.length t.text mod 4 <> 0 then
      fail "text length %d not a multiple of 4" (Bytes.length t.text)
    else Ok ()
  in
  let* () =
    match Isa.Decode.of_bytes t.text with
    | Ok _ -> Ok ()
    | Error e -> fail "undecodable text: %a" Isa.Decode.pp_error e
  in
  let check_reloc (r : Reloc.t) acc =
    let* () = acc in
    let size = section_size t r.section in
    let* () =
      if r.offset < 0 || r.offset >= size then
        fail "reloc %a out of section bounds (size %d)" Reloc.pp r size
      else Ok ()
    in
    match r.kind with
    | Literal { gat_index } -> (
        if gat_index < 0 || gat_index >= Array.length t.gat then
          fail "reloc %a: GAT index out of range (%d entries)" Reloc.pp r
            (Array.length t.gat)
        else
          match text_insn t r.offset with
          | Some (Isa.Insn.Ldq { rb; _ }) when Isa.Reg.equal rb Isa.Reg.gp ->
              Ok ()
          | _ -> fail "reloc %a: not on an ldq rX, d(gp)" Reloc.pp r)
    | Lituse_base { load_offset } | Lituse_jsr { load_offset } ->
        let backs_literal =
          List.exists
            (fun (r' : Reloc.t) ->
              r'.offset = load_offset
              && Section.equal r'.section Section.Text
              && match r'.kind with Reloc.Literal _ -> true | _ -> false)
            t.relocs
        in
        if backs_literal then Ok ()
        else fail "reloc %a: back-link has no LITERAL" Reloc.pp r
    | Gpdisp { anchor; pair } -> (
        let* () =
          if anchor < 0 || anchor > Bytes.length t.text || anchor mod 4 <> 0
          then fail "reloc %a: bad anchor" Reloc.pp r
          else Ok ()
        in
        match (text_insn t r.offset, text_insn t pair) with
        | Some (Isa.Insn.Ldah { ra = r1; _ }), Some (Isa.Insn.Lda { ra = r2; rb; _ })
          when Isa.Reg.equal r1 Isa.Reg.gp && Isa.Reg.equal r2 Isa.Reg.gp
               && Isa.Reg.equal rb Isa.Reg.gp ->
            Ok ()
        | _ -> fail "reloc %a: not on an ldah gp/lda gp pair" Reloc.pp r)
    | Refquad _ ->
        if r.offset mod 8 <> 0 then
          fail "reloc %a: refquad not 8-aligned" Reloc.pp r
        else if Section.equal r.section Section.Text then
          fail "reloc %a: refquad in text" Reloc.pp r
        else Ok ()
    | Gprel16 _ -> (
        match text_insn t r.offset with
        | Some
            ( Isa.Insn.Lda { rb; _ } | Isa.Insn.Ldq { rb; _ }
            | Isa.Insn.Stq { rb; _ } )
          when Isa.Reg.equal rb Isa.Reg.gp -> Ok ()
        | _ -> fail "reloc %a: not on a gp-based memory op" Reloc.pp r)
  in
  let* () = List.fold_right check_reloc t.relocs (Ok ()) in
  let check_symbol (s : Symbol.t) acc =
    let* () = acc in
    match s.def with
    | Symbol.Proc p ->
        let tsz = Bytes.length t.text in
        if p.offset < 0 || p.offset mod 4 <> 0 || p.offset + p.size > tsz
           || p.size < 0 || p.size mod 4 <> 0
        then fail "symbol %s: bad procedure extent" s.name
        else Ok ()
    | Symbol.Object o ->
        if o.offset < 0 || o.size < 0
           || o.offset + o.size > section_size t o.section
        then fail "symbol %s: object outside %s" s.name (Section.name o.section)
        else Ok ()
    | Symbol.Common c ->
        if c.size <= 0 then fail "symbol %s: empty common" s.name else Ok ()
  in
  List.fold_right check_symbol t.symbols (Ok ())

(* --- printing --- *)

let pp ppf t =
  Format.fprintf ppf "@[<v>module %s@," t.name;
  let insns = insns t in
  let reloc_at off =
    List.filter
      (fun (r : Reloc.t) ->
        Section.equal r.section Section.Text && r.offset = off)
      t.relocs
  in
  let sym_at off =
    List.find_opt
      (fun (s : Symbol.t) ->
        match s.def with Symbol.Proc p -> p.offset = off | _ -> false)
      t.symbols
  in
  Format.fprintf ppf ".text (%d insns)@," (Array.length insns);
  Array.iteri
    (fun i insn ->
      let off = 4 * i in
      (match sym_at off with
      | Some s -> Format.fprintf ppf "%s:@," s.name
      | None -> ());
      Format.fprintf ppf "  %4x:  %a" off Isa.Insn.pp insn;
      List.iter (fun r -> Format.fprintf ppf "   ! %a" Reloc.pp r)
        (reloc_at off);
      Format.fprintf ppf "@,")
    insns;
  if Array.length t.gat > 0 then begin
    Format.fprintf ppf ".lita (%d entries)@," (Array.length t.gat);
    Array.iteri
      (fun i e -> Format.fprintf ppf "  [%3d] %a@," i Gat_entry.pp e)
      t.gat
  end;
  Format.fprintf ppf "symbols:@,";
  List.iter (fun s -> Format.fprintf ppf "  %a@," Symbol.pp s) t.symbols;
  Format.fprintf ppf "@]"
