(** Compilation units (relocatable object modules).

    A unit carries encoded instruction bytes for [Text] (always decodable by
    {!Isa.Decode}), raw bytes for the initialized data sections, sizes for
    the zero-initialized ones, the unit's GAT (literal pool), a symbol table
    and relocations. *)

type t = {
  name : string;             (** module name, e.g. ["tomcatv.o"] *)
  text : Bytes.t;            (** encoded instructions, length multiple of 4 *)
  data : Bytes.t;
  sdata : Bytes.t;
  bss_size : int;
  sbss_size : int;
  gat : Gat_entry.t array;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
}

val make :
  name:string -> ?data:Bytes.t -> ?sdata:Bytes.t -> ?bss_size:int ->
  ?sbss_size:int -> ?gat:Gat_entry.t array -> ?symbols:Symbol.t list ->
  ?relocs:Reloc.t list -> Isa.Insn.t list -> t
(** Build a unit from an instruction list (encoded on the spot). *)

val insns : t -> Isa.Insn.t array
(** Decode [Text] back to instructions. Raises [Invalid_argument] if the
    text bytes are not decodable (violating the unit invariant). *)

val insn_count : t -> int

val find_symbol : t -> string -> Symbol.t option

val defined_symbols : t -> string list
(** Names this unit defines with [Global] binding (including commons). *)

val referenced_symbols : t -> string list
(** Symbol names referenced by GAT entries and [Refquad] relocations,
    deduplicated. *)

val undefined_symbols : t -> string list
(** Referenced symbols with no definition in this unit (local or global). *)

val validate : t -> (unit, string) result
(** Check internal consistency: text length is a multiple of 4 and
    decodable; every relocation offset lies inside its section and is
    4-aligned (8-aligned for [Refquad]); [Literal] indices are in range;
    [Lituse] back-links point at an address load carrying a [Literal]
    relocation; [Gpdisp] pairs point at an [ldah]/[lda] pair targeting
    [gp]; symbol offsets lie inside their sections. *)

val pp : Format.formatter -> t -> unit
(** A human-readable disassembly-style dump (used by the [dis] command). *)
