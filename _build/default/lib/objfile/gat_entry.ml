type t =
  | Addr of { symbol : string; addend : int }
  | Const of int64

let equal = ( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp ppf = function
  | Addr { symbol; addend = 0 } -> Format.fprintf ppf ".quad %s" symbol
  | Addr { symbol; addend } -> Format.fprintf ppf ".quad %s%+d" symbol addend
  | Const c -> Format.fprintf ppf ".quad %#Lx" c

let addr ?(addend = 0) symbol = Addr { symbol; addend }
let const c = Const c
