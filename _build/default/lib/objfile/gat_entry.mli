(** Entries of a module's global address table (literal pool).

    Each entry is one 64-bit slot. Most slots hold the address of a program
    object — filled in by the linker — but the pool also holds 64-bit
    integer literals too wide to be built by an [LDAH]/[LDA] pair. The
    linker deduplicates entries when merging module GATs. *)

type t =
  | Addr of { symbol : string; addend : int }
      (** resolves to the address of [symbol] plus [addend] *)
  | Const of int64
      (** a raw 64-bit literal constant *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val addr : ?addend:int -> string -> t
val const : int64 -> t
