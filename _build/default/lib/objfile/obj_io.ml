let magic_unit = "WOF1"
let magic_archive = "WAR1"

(* --- writing --- *)

let w8 b n = Buffer.add_uint8 b (n land 0xff)
let w32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w64 b n = Buffer.add_int64_le b n

let wstr b s =
  w32 b (String.length s);
  Buffer.add_string b s

let wbytes b s =
  w32 b (Bytes.length s);
  Buffer.add_bytes b s

let section_tag = function
  | Section.Text -> 0 | Section.Data -> 1 | Section.Sdata -> 2
  | Section.Bss -> 3 | Section.Sbss -> 4 | Section.Gat -> 5

let section_of_tag = function
  | 0 -> Some Section.Text | 1 -> Some Section.Data | 2 -> Some Section.Sdata
  | 3 -> Some Section.Bss | 4 -> Some Section.Sbss | 5 -> Some Section.Gat
  | _ -> None

let write_gat_entry b = function
  | Gat_entry.Addr { symbol; addend } ->
      w8 b 0; wstr b symbol; w32 b addend
  | Gat_entry.Const c -> w8 b 1; w64 b c

let write_symbol b (s : Symbol.t) =
  wstr b s.name;
  w8 b (match s.binding with Symbol.Local -> 0 | Symbol.Global -> 1);
  match s.def with
  | Symbol.Proc p ->
      w8 b 0;
      w32 b p.offset;
      w32 b p.size;
      w8 b (Bool.to_int p.exported);
      w8 b (Bool.to_int p.uses_gp);
      w8 b (Bool.to_int p.gp_setup_at_entry)
  | Symbol.Object o ->
      w8 b 1;
      w8 b (section_tag o.section);
      w32 b o.offset;
      w32 b o.size
  | Symbol.Common c ->
      w8 b 2;
      w32 b c.size

let write_reloc b (r : Reloc.t) =
  w8 b (section_tag r.section);
  w32 b r.offset;
  match r.kind with
  | Reloc.Literal { gat_index } -> w8 b 0; w32 b gat_index
  | Reloc.Lituse_base { load_offset } -> w8 b 1; w32 b load_offset
  | Reloc.Lituse_jsr { load_offset } -> w8 b 2; w32 b load_offset
  | Reloc.Gpdisp { anchor; pair } -> w8 b 3; w32 b anchor; w32 b pair
  | Reloc.Refquad { symbol; addend } -> w8 b 4; wstr b symbol; w32 b addend
  | Reloc.Gprel16 { symbol; addend } -> w8 b 5; wstr b symbol; w32 b addend

let write_unit_body b (u : Cunit.t) =
  wstr b u.name;
  wbytes b u.text;
  wbytes b u.data;
  wbytes b u.sdata;
  w32 b u.bss_size;
  w32 b u.sbss_size;
  w32 b (Array.length u.gat);
  Array.iter (write_gat_entry b) u.gat;
  w32 b (List.length u.symbols);
  List.iter (write_symbol b) u.symbols;
  w32 b (List.length u.relocs);
  List.iter (write_reloc b) u.relocs

let write u =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic_unit;
  write_unit_body b u;
  Buffer.to_bytes b

let write_archive (a : Archive.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic_archive;
  wstr b a.name;
  w32 b (List.length a.members);
  List.iter (write_unit_body b) a.members;
  Buffer.to_bytes b

(* --- reading --- *)

exception Malformed of string

type reader = { buf : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.buf then
    raise (Malformed (Printf.sprintf "truncated at offset %d" r.pos))

let r8 r = need r 1; let v = Bytes.get_uint8 r.buf r.pos in r.pos <- r.pos + 1; v

let r32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let r64 r =
  need r 8;
  let v = Bytes.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = r32 r in
  if n < 0 then raise (Malformed "negative string length");
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let rbytes r =
  let n = r32 r in
  if n < 0 then raise (Malformed "negative byte length");
  need r n;
  let s = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let rsection r =
  match section_of_tag (r8 r) with
  | Some s -> s
  | None -> raise (Malformed "bad section tag")

let rcount r what =
  let n = r32 r in
  if n < 0 || n > 0x10000000 then
    raise (Malformed (Printf.sprintf "implausible %s count %d" what n));
  n

let read_gat_entry r =
  match r8 r with
  | 0 ->
      let symbol = rstr r in
      let addend = r32 r in
      Gat_entry.Addr { symbol; addend }
  | 1 -> Gat_entry.Const (r64 r)
  | _ -> raise (Malformed "bad GAT entry tag")

let read_symbol r : Symbol.t =
  let name = rstr r in
  let binding =
    match r8 r with
    | 0 -> Symbol.Local
    | 1 -> Symbol.Global
    | _ -> raise (Malformed "bad binding tag")
  in
  let def =
    match r8 r with
    | 0 ->
        let offset = r32 r in
        let size = r32 r in
        let exported = r8 r <> 0 in
        let uses_gp = r8 r <> 0 in
        let gp_setup_at_entry = r8 r <> 0 in
        Symbol.Proc { offset; size; exported; uses_gp; gp_setup_at_entry }
    | 1 ->
        let section = rsection r in
        let offset = r32 r in
        let size = r32 r in
        Symbol.Object { section; offset; size }
    | 2 -> Symbol.Common { size = r32 r }
    | _ -> raise (Malformed "bad symbol definition tag")
  in
  { name; binding; def }

let read_reloc r : Reloc.t =
  let section = rsection r in
  let offset = r32 r in
  let kind =
    match r8 r with
    | 0 -> Reloc.Literal { gat_index = r32 r }
    | 1 -> Reloc.Lituse_base { load_offset = r32 r }
    | 2 -> Reloc.Lituse_jsr { load_offset = r32 r }
    | 3 ->
        let anchor = r32 r in
        let pair = r32 r in
        Reloc.Gpdisp { anchor; pair }
    | 4 ->
        let symbol = rstr r in
        let addend = r32 r in
        Reloc.Refquad { symbol; addend }
    | 5 ->
        let symbol = rstr r in
        let addend = r32 r in
        Reloc.Gprel16 { symbol; addend }
    | _ -> raise (Malformed "bad relocation tag")
  in
  { section; offset; kind }

let read_list r what f =
  List.init (rcount r what) (fun _ -> f r)

let read_unit_body r : Cunit.t =
  let name = rstr r in
  let text = rbytes r in
  let data = rbytes r in
  let sdata = rbytes r in
  let bss_size = r32 r in
  let sbss_size = r32 r in
  let gat = Array.init (rcount r "gat") (fun _ -> read_gat_entry r) in
  let symbols = read_list r "symbol" read_symbol in
  let relocs = read_list r "reloc" read_reloc in
  { name; text; data; sdata; bss_size; sbss_size; gat; symbols; relocs }

let check_magic r expected =
  need r 4;
  let m = Bytes.sub_string r.buf r.pos 4 in
  r.pos <- r.pos + 4;
  if not (String.equal m expected) then
    raise (Malformed (Printf.sprintf "bad magic %S (want %S)" m expected))

let wrap f buf =
  let r = { buf; pos = 0 } in
  match f r with
  | v ->
      if r.pos <> Bytes.length buf then Error "trailing garbage" else Ok v
  | exception Malformed m -> Error m

let read = wrap (fun r -> check_magic r magic_unit; read_unit_body r)

let read_archive =
  wrap (fun r ->
      check_magic r magic_archive;
      let name = rstr r in
      let members = read_list r "member" read_unit_body in
      Archive.make ~name members)

let save path u =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_bytes oc (write u)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  with
  | s -> read (Bytes.of_string s)
  | exception Sys_error m -> Error m
