(** Binary serialization of compilation units and archives.

    The on-disk format is a simple little-endian tagged layout with the
    magic ["WOF1"] (["WAR1"] for archives). [read] is a total inverse of
    [write]; malformed input yields [Error] rather than an exception. *)

val write : Cunit.t -> Bytes.t
val read : Bytes.t -> (Cunit.t, string) result

val write_archive : Archive.t -> Bytes.t
val read_archive : Bytes.t -> (Archive.t, string) result

val save : string -> Cunit.t -> unit
(** [save path unit] writes the unit to a file. *)

val load : string -> (Cunit.t, string) result
