type kind =
  | Literal of { gat_index : int }
  | Lituse_base of { load_offset : int }
  | Lituse_jsr of { load_offset : int }
  | Gpdisp of { anchor : int; pair : int }
  | Refquad of { symbol : string; addend : int }
  | Gprel16 of { symbol : string; addend : int }

type t = { section : Section.t; offset : int; kind : kind }

let v ~section ~offset kind = { section; offset; kind }
let equal = ( = )
let compare = Stdlib.compare

let pp_kind ppf = function
  | Literal { gat_index } -> Format.fprintf ppf "LITERAL[%d]" gat_index
  | Lituse_base { load_offset } ->
      Format.fprintf ppf "LITUSE_BASE(load@%#x)" load_offset
  | Lituse_jsr { load_offset } ->
      Format.fprintf ppf "LITUSE_JSR(load@%#x)" load_offset
  | Gpdisp { anchor; pair } ->
      Format.fprintf ppf "GPDISP(anchor=%#x, pair=%#x)" anchor pair
  | Refquad { symbol; addend = 0 } -> Format.fprintf ppf "REFQUAD(%s)" symbol
  | Refquad { symbol; addend } ->
      Format.fprintf ppf "REFQUAD(%s%+d)" symbol addend
  | Gprel16 { symbol; addend = 0 } -> Format.fprintf ppf "GPREL16(%s)" symbol
  | Gprel16 { symbol; addend } ->
      Format.fprintf ppf "GPREL16(%s%+d)" symbol addend

let pp ppf r =
  Format.fprintf ppf "%a+%#x: %a" Section.pp r.section r.offset pp_kind r.kind

let is_lituse r =
  match r.kind with Lituse_base _ | Lituse_jsr _ -> true | _ -> false
