(** Relocations.

    Beyond making ordinary linking possible, these carry exactly the hints
    the paper says the optimizer leans on: references to the GAT are marked
    ([Literal]), instructions that consume the register loaded by an address
    load are linked back to it ([Lituse_base]/[Lituse_jsr]), and the
    GP-computation instruction pairs are identified ([Gpdisp]). *)

type kind =
  | Literal of { gat_index : int }
      (** On an [ldq rX, d(gp)] in [Text]: the displacement selects slot
          [gat_index] of this unit's GAT. The load is an {e address load}. *)
  | Lituse_base of { load_offset : int }
      (** On a memory instruction whose base register was produced by the
          address load at byte offset [load_offset] of this unit's [Text]. *)
  | Lituse_jsr of { load_offset : int }
      (** On a [jsr] whose target register ([pv]) was produced by the
          address load at [load_offset]. *)
  | Gpdisp of { anchor : int; pair : int }
      (** On the [ldah] of a GP-setup pair. [anchor] is the [Text] byte
          offset whose final linked address equals the run-time value of the
          pair's base register (the procedure entry for a prologue setup via
          [pv]; the return point for a post-call reset via [ra]). [pair] is
          the [Text] offset of the companion [lda]. The linker patches both
          displacements so that the pair computes the procedure's GP
          value. *)
  | Refquad of { symbol : string; addend : int }
      (** A 64-bit data slot holding the address of [symbol]+[addend]
          (e.g. an initialized procedure variable or pointer table). *)
  | Gprel16 of { symbol : string; addend : int }
      (** Optimistic compilation (the paper's §6, the MIPS [-G] scheme):
          the instruction addresses [symbol]+[addend] {e directly}
          GP-relative, betting that the linker can place it inside the GP
          window. If the bet fails, linking fails with advice to
          recompile — exactly the burden the paper holds against this
          alternative. *)

type t = { section : Section.t; offset : int; kind : kind }

val v : section:Section.t -> offset:int -> kind -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val is_lituse : t -> bool
