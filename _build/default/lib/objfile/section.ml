type t = Text | Data | Sdata | Bss | Sbss | Gat

let equal = ( = )
let compare = Stdlib.compare

let name = function
  | Text -> ".text"
  | Data -> ".data"
  | Sdata -> ".sdata"
  | Bss -> ".bss"
  | Sbss -> ".sbss"
  | Gat -> ".lita"

let pp ppf s = Format.pp_print_string ppf (name s)
let all = [ Text; Data; Sdata; Bss; Sbss; Gat ]

let is_data_like = function
  | Data | Sdata | Bss | Sbss | Gat -> true
  | Text -> false

let is_initialized = function
  | Text | Data | Sdata | Gat -> true
  | Bss | Sbss -> false
