(** Section identifiers of the object format.

    The format follows the OSF/1 ECOFF conventions that matter to
    address-calculation optimization:

    - [Text] — instructions;
    - [Data] — initialized data too large for GP-relative addressing;
    - [Sdata] — small initialized data, a candidate for placement inside the
      GP window (the paper notes segregating small data helps the
      optimizer);
    - [Bss] / [Sbss] — zero-initialized counterparts;
    - [Gat] — the module's global address table (the ECOFF [.lita] literal
      pool): an array of 64-bit slots holding addresses of program objects
      and large literal constants, addressed GP-relative. *)

type t = Text | Data | Sdata | Bss | Sbss | Gat

val equal : t -> t -> bool
val compare : t -> t -> int
val name : t -> string
(** The conventional section name, e.g. [".text"], [".lita"]. *)

val pp : Format.formatter -> t -> unit
val all : t list

val is_data_like : t -> bool
(** True for every section that lives in the data region ([Data], [Sdata],
    [Bss], [Sbss], [Gat]). *)

val is_initialized : t -> bool
(** Sections whose bytes are stored in the object file ([Text], [Data],
    [Sdata], [Gat]). *)
