type binding = Local | Global

type def =
  | Proc of proc_desc
  | Object of { section : Section.t; offset : int; size : int }
  | Common of { size : int }

and proc_desc = {
  offset : int;
  size : int;
  exported : bool;
  uses_gp : bool;
  gp_setup_at_entry : bool;
}

type t = { name : string; binding : binding; def : def }

let proc ?(binding = Global) ?(exported = true) ?(uses_gp = true)
    ?(gp_setup_at_entry = false) ~name ~offset ~size () =
  { name;
    binding;
    def = Proc { offset; size; exported; uses_gp; gp_setup_at_entry } }

let obj ?(binding = Global) ~name ~section ~offset ~size () =
  { name; binding; def = Object { section; offset; size } }

let common ~name ~size = { name; binding = Global; def = Common { size } }

let is_proc s = match s.def with Proc _ -> true | _ -> false
let equal = ( = )

let pp ppf s =
  let b = match s.binding with Local -> "local" | Global -> "global" in
  match s.def with
  | Proc p ->
      Format.fprintf ppf "%s %s: proc .text+%#x size=%d%s%s" b s.name p.offset
        p.size
        (if p.exported then " exported" else "")
        (if p.gp_setup_at_entry then " gp@entry" else "")
  | Object o ->
      Format.fprintf ppf "%s %s: %a+%#x size=%d" b s.name Section.pp o.section
        o.offset o.size
  | Common c -> Format.fprintf ppf "%s %s: common size=%d" b s.name c.size
