(** Symbols and procedure descriptors.

    The loader format "identifies procedure boundaries and specifies the
    correct value of GP for each procedure" — that information is what makes
    link-time lifting of the code tractable, so procedure symbols carry a
    descriptor here. *)

type binding =
  | Local   (** visible only inside its compilation unit *)
  | Global  (** participates in cross-unit symbol resolution *)

type def =
  | Proc of proc_desc
      (** a procedure in [Text] at [offset], occupying [size] bytes *)
  | Object of { section : Section.t; offset : int; size : int }
      (** a data object at a fixed offset of one of the unit's sections *)
  | Common of { size : int }
      (** an uninitialized common block; the linker chooses its home
          (the optimizer sorts commons by size to pack small ones into the
          GP window) *)

and proc_desc = {
  offset : int;       (** byte offset of the entry point in [Text] *)
  size : int;         (** byte length of the procedure body *)
  exported : bool;    (** could be interposed upon by a shared library, so
                          the compiler must treat even same-unit calls to it
                          conservatively *)
  uses_gp : bool;     (** whether the body establishes/uses GP at all *)
  gp_setup_at_entry : bool;
      (** whether the two GP-setup instructions are the first two
          instructions of the body (compile-time scheduling often moves
          them, which blocks the simplest link-time optimizations) *)
}

type t = { name : string; binding : binding; def : def }

val proc :
  ?binding:binding -> ?exported:bool -> ?uses_gp:bool ->
  ?gp_setup_at_entry:bool -> name:string -> offset:int -> size:int -> unit ->
  t

val obj :
  ?binding:binding -> name:string -> section:Section.t -> offset:int ->
  size:int -> unit -> t

val common : name:string -> size:int -> t

val is_proc : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
