lib/om/om.ml: Analysis Array Datalayout Hashtbl Lift Linker Lower Option Result Sched Stats Symbolic Transform Verify
