lib/om/om.mli: Analysis Datalayout Lift Linker Lower Objfile Sched Stats Symbolic Transform Verify
