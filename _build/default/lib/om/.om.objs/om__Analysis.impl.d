lib/om/analysis.ml: Array Hashtbl Isa Linker List Objfile Option Symbolic
