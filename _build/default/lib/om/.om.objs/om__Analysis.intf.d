lib/om/analysis.mli: Hashtbl Isa Symbolic
