lib/om/datalayout.ml: Array Bytes Isa Linker List Objfile
