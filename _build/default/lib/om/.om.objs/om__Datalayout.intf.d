lib/om/datalayout.mli: Linker
