lib/om/lift.ml: Array Bytes Format Hashtbl Isa Linker List Objfile Seq Symbolic
