lib/om/lift.mli: Linker Symbolic
