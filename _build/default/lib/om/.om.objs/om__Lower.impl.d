lib/om/lower.ml: Array Bytes Datalayout Format Hashtbl Int32 Int64 Isa Linker List Objfile Option Symbolic Transform
