lib/om/lower.mli: Datalayout Linker Symbolic
