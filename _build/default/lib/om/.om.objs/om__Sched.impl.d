lib/om/sched.ml: Array Isa List Symbolic
