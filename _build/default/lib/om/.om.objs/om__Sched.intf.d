lib/om/sched.mli: Symbolic
