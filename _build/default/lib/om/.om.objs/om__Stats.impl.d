lib/om/stats.ml: Analysis Format List Option Symbolic
