lib/om/stats.mli: Analysis Format Symbolic
