lib/om/symbolic.ml: Array Format Isa Linker List Printf
