lib/om/symbolic.mli: Format Isa Linker
