lib/om/transform.ml: Analysis Array Datalayout Hashtbl Isa Linker List Option Stats Symbolic
