lib/om/transform.mli: Analysis Datalayout Stats Symbolic
