lib/om/verify.ml: Array Bytes Format Isa Linker List String
