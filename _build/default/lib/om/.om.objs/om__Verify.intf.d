lib/om/verify.mli: Format Linker
