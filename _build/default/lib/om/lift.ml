module I = Isa.Insn
module S = Symbolic

exception Lift_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Lift_error m)) fmt

let run (world : Linker.Resolve.t) =
  try
    let program =
      { S.world;
        procs = [||];
        next_label = 0;
        next_node = 0;
        entry_name = world.Linker.Resolve.procs.(world.Linker.Resolve.entry_proc).p_name }
    in
    (* labels are addressed by (module, text offset) *)
    let label_table : (int * int, S.label) Hashtbl.t = Hashtbl.create 256 in
    let label_at m off =
      match Hashtbl.find_opt label_table (m, off) with
      | Some l -> l
      | None ->
          let l = S.fresh_label program in
          Hashtbl.replace label_table (m, off) l;
          l
    in
    (* per-module node tables, for LITUSE/GPDISP back-links *)
    let node_at : (int * int, S.node) Hashtbl.t = Hashtbl.create 1024 in
    let proc_of_node : (int, S.proc) Hashtbl.t = Hashtbl.create 1024 in
    let lift_proc m (u : Objfile.Cunit.t) insns (p : Linker.Resolve.proc_rec)
        pidx =
      let first = p.p_offset / 4 in
      let count = p.p_size / 4 in
      let nodes =
        List.init count (fun k ->
            let off = p.p_offset + (4 * k) in
            let insn = insns.(first + k) in
            let sinsn =
              match insn with
              | I.Br { disp; _ } | I.Bsr { disp; _ } | I.Bcond { disp; _ } ->
                  let target_off = off + 4 + (4 * disp) in
                  if target_off < 0 || target_off > Bytes.length u.Objfile.Cunit.text
                  then
                    fail "%s+%#x: branch target %#x outside module text"
                      u.Objfile.Cunit.name off target_off;
                  S.Branch { insn; target = label_at m target_off }
              | other -> S.Raw other
            in
            let node = S.make_node program sinsn in
            Hashtbl.replace node_at (m, off) node;
            node)
      in
      let proc =
        { S.sp_index = pidx;
          sp_name = p.Linker.Resolve.p_name;
          sp_module = m;
          entry_label = label_at m p.p_offset;
          body = nodes;
          sp_gp_group = 0 }
      in
      List.iter (fun (n : S.node) -> Hashtbl.replace proc_of_node n.S.nid proc)
        nodes;
      proc
    in
    (* procedures in text order per module *)
    let procs = ref [] in
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        let insns = Objfile.Cunit.insns u in
        let module_procs =
          world.Linker.Resolve.procs
          |> Array.to_seqi
          |> Seq.filter (fun (_, (p : Linker.Resolve.proc_rec)) ->
                 p.p_module = m)
          |> List.of_seq
          |> List.sort
               (fun (_, (a : Linker.Resolve.proc_rec)) (_, b) ->
                 compare a.p_offset b.p_offset)
        in
        (* coverage check *)
        let covered =
          List.fold_left
            (fun cursor (_, (p : Linker.Resolve.proc_rec)) ->
              if p.p_offset <> cursor then
                fail "%s: text gap before %s (at %#x, expected %#x)"
                  u.Objfile.Cunit.name p.p_name p.p_offset cursor;
              cursor + p.p_size)
            0 module_procs
        in
        if covered <> Bytes.length u.Objfile.Cunit.text then
          fail "%s: procedures cover %d of %d text bytes" u.Objfile.Cunit.name
            covered
            (Bytes.length u.Objfile.Cunit.text);
        List.iter
          (fun (pidx, p) -> procs := lift_proc m u insns p pidx :: !procs)
          module_procs)
      world.Linker.Resolve.modules;
    program.S.procs <- Array.of_list (List.rev !procs);
    (* apply relocations *)
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        List.iter
          (fun (r : Objfile.Reloc.t) ->
            if Objfile.Section.equal r.section Objfile.Section.Text then begin
              let node =
                match Hashtbl.find_opt node_at (m, r.offset) with
                | Some n -> n
                | None ->
                    fail "%s: relocation at %#x hits no instruction"
                      u.Objfile.Cunit.name r.offset
              in
              match r.kind with
              | Objfile.Reloc.Literal { gat_index } -> (
                  let entry = u.Objfile.Cunit.gat.(gat_index) in
                  let key =
                    match entry with
                    | Objfile.Gat_entry.Addr { symbol; addend } ->
                        S.Paddr
                          (Linker.Resolve.resolve_exn world m symbol, addend)
                    | Objfile.Gat_entry.Const c -> S.Pconst c
                  in
                  match node.S.insn with
                  | S.Raw (I.Ldq { ra; _ }) ->
                      node.S.insn <- S.Gatload { ra; key }
                  | _ ->
                      fail "%s+%#x: LITERAL not on an address load"
                        u.Objfile.Cunit.name r.offset)
              | Objfile.Reloc.Lituse_base { load_offset }
              | Objfile.Reloc.Lituse_jsr { load_offset } -> (
                  let jsr =
                    match r.kind with
                    | Objfile.Reloc.Lituse_jsr _ -> true
                    | _ -> false
                  in
                  let load =
                    match Hashtbl.find_opt node_at (m, load_offset) with
                    | Some n -> n
                    | None ->
                        fail "%s+%#x: dangling LITUSE" u.Objfile.Cunit.name
                          r.offset
                  in
                  match node.S.insn with
                  | S.Raw insn ->
                      node.S.insn <- S.Use { insn; load_id = load.S.nid; jsr }
                  | _ ->
                      fail "%s+%#x: LITUSE on a non-plain instruction"
                        u.Objfile.Cunit.name r.offset)
              | Objfile.Reloc.Gpdisp { anchor; pair } -> (
                  let lo =
                    match Hashtbl.find_opt node_at (m, pair) with
                    | Some n -> n
                    | None ->
                        fail "%s+%#x: dangling GPDISP pair" u.Objfile.Cunit.name
                          r.offset
                  in
                  (* is the anchor this node's enclosing procedure entry? *)
                  let is_entry =
                    match Hashtbl.find_opt proc_of_node node.S.nid with
                    | Some proc ->
                        let p = world.Linker.Resolve.procs.(proc.S.sp_index) in
                        p.Linker.Resolve.p_offset = anchor
                    | None -> false
                  in
                  let a =
                    if is_entry then S.Aentry else S.Alocal (label_at m anchor)
                  in
                  match (node.S.insn, lo.S.insn) with
                  | S.Raw (I.Ldah { rb; _ }), S.Raw (I.Lda _) ->
                      node.S.insn <-
                        S.Gpsetup_hi { base = rb; anchor = a; lo_id = lo.S.nid };
                      lo.S.insn <- S.Gpsetup_lo
                  | _ ->
                      fail "%s+%#x: GPDISP not on an ldah/lda pair"
                        u.Objfile.Cunit.name r.offset)
              | Objfile.Reloc.Refquad _ ->
                  fail "%s+%#x: REFQUAD in text" u.Objfile.Cunit.name r.offset
              | Objfile.Reloc.Gprel16 { symbol; addend } -> (
                  (* optimistically-compiled direct GP-relative access *)
                  let target = Linker.Resolve.resolve_exn world m symbol in
                  match node.S.insn with
                  | S.Raw
                      (( I.Lda { rb; _ } | I.Ldq { rb; _ } | I.Stq { rb; _ } ) as
                       insn)
                    when Isa.Reg.equal rb Isa.Reg.gp ->
                      node.S.insn <-
                        S.Gprel { insn; target; addend; part = S.Pfull }
                  | _ ->
                      fail "%s+%#x: GPREL16 not on a gp-based memory op"
                        u.Objfile.Cunit.name r.offset)
            end)
          u.Objfile.Cunit.relocs)
      world.Linker.Resolve.modules;
    (* attach labels to nodes *)
    Hashtbl.iter
      (fun (m, off) label ->
        match Hashtbl.find_opt node_at (m, off) with
        | Some n -> n.S.labels <- label :: n.S.labels
        | None ->
            fail "label target %#x in module %d hits no instruction" off m)
      label_table;
    Ok program
  with Lift_error m -> Error m
