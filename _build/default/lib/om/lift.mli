(** Translating linked object code into the symbolic form.

    The lifter leans on exactly the loader hints the paper names: LITERAL
    relocations mark the address loads, LITUSE relocations link each use
    back to its address load, GPDISP relocations identify the GP-setup
    pairs and their anchor addresses, and procedure descriptors give
    boundaries. Everything else decodes to concrete instructions, with
    PC-relative branches re-expressed against labels so that code can move
    without breaking displacements. *)

val run : Linker.Resolve.t -> (Symbolic.program, string) result
(** Lift every procedure of the resolved program. Fails if a module's text
    is not fully covered by procedure symbols, a relocation is
    inconsistent, or a branch leaves the program text. *)
