(** Generating an executable image from the (transformed) symbolic form.

    Lowering assigns final text offsets (optionally quadword-aligning
    instructions that are the targets of backward branches, which helps the
    dual-issue hardware), allocates the final GAT from the address loads
    that actually survive (GAT reduction becomes visible here), patches
    every symbolic operand, lays out the data region per the
    {!Datalayout.plan}, and fills in the loader metadata. *)

type options = { align_branch_targets : bool }

val default_options : options

val run :
  ?options:options -> Symbolic.program -> Datalayout.plan ->
  (Linker.Image.t * int, string) result
(** Returns the image and the final GAT size in bytes (the number of slots
    actually allocated, before padding to the plan's reservation). *)
