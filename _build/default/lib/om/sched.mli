(** Link-time rescheduling (the optional final step of OM-full).

    The code OM starts with was pipeline-scheduled at compile time in the
    presence of a large number of address loads that OM has since removed;
    rescheduling each basic block afterwards may recover latency slots.
    Straight-line runs are re-ordered with the same list scheduler the
    compiler uses; a node carrying a label leads its run and never moves
    (branches into a run must still land on the instruction they named). *)

val run : Symbolic.program -> unit
