lib/reports/figures.ml: Array Float Format List Measure Om String Workloads
