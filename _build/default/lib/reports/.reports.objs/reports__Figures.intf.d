lib/reports/figures.mli: Format Measure Workloads
