lib/reports/measure.ml: Format Linker List Machine Minic Om Option Result Runtime String Sys Workloads
