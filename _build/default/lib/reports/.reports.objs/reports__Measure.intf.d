lib/reports/measure.mli: Om Stdlib Workloads
