(** Rendering the paper's figures and tables from measured results.

    Each function prints an ASCII reproduction of one exhibit from §5 of
    the paper, with per-program rows and the unweighted arithmetic mean
    (the paper's "Mean of 19 pgms" key). *)

type matrix = Measure.result list
(** results for any set of (benchmark, build) pairs *)

val find :
  matrix -> bench:string -> build:Workloads.Suite.build -> Measure.result option

val fig3 : Format.formatter -> matrix -> unit
(** Static fraction of address loads removed, converted vs. nullified,
    OM-simple and OM-full, compile-each and compile-all. *)

val fig4 : Format.formatter -> matrix -> unit
(** Static fraction of calls requiring PV loads (top) and GP-reset code
    (bottom): no OM / OM-simple / OM-full. *)

val fig5 : Format.formatter -> matrix -> unit
(** Static fraction of instructions nullified or deleted. *)

val fig6 : Format.formatter -> matrix -> unit
(** Dynamic performance improvement over the standard link (simulated
    cycles), OM-simple and OM-full; the scheduling variant is shown as a
    separate column, as §5.2 discusses it. *)

val gat_table : Format.formatter -> matrix -> unit
(** GAT size before and after OM-full (§5.1: "reduced ... to between 3%
    and 15% of its original size"). *)

val fig7 : Format.formatter -> (string * Measure.timing) list -> unit
(** Build times in milliseconds for the six build paths. *)

val summary : Format.formatter -> matrix -> unit
(** The headline numbers next to the paper's claims. *)
