module R = Isa.Reg
module I = Isa.Insn

(* --- hand-assembled modules --- *)

(* Program startup: establish GP, call main through the GAT (it is in
   another module, so the general convention applies), then exit with
   main's return value. *)
let build_crt0 () =
  let m = Minic.Masm.create "crt0.o" in
  let entry = Minic.Masm.fresh_label m in
  let lo = Minic.Masm.fresh_id m in
  let gl = Minic.Masm.fresh_id m in
  let items =
    [ Minic.Masm.Label entry;
      Minic.Masm.Gpsetup_hi { base = R.pv; anchor = entry; lo };
      Minic.Masm.Gpsetup_lo { id = lo };
      Minic.Masm.Gatload { id = gl; ra = R.pv; entry = Objfile.Gat_entry.addr "main" };
      Minic.Masm.Lituse
        { insn = I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 };
          load = gl;
          jsr = true };
      Minic.Masm.Insn (I.mov R.v0 R.a0);
      Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
      Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  Minic.Masm.add_proc m ~name:"__start" items;
  Minic.Masm.assemble m

(* System-call stubs: tiny leaf procedures that never touch the GP. *)
let build_sys () =
  let m = Minic.Masm.create "sys.o" in
  let stub name code =
    Minic.Masm.add_proc m ~name
      [ Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = code });
        Minic.Masm.Insn (I.Call_pal 0x83);
        Minic.Masm.Insn (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 }) ]
  in
  stub "io_putint" 1;
  stub "io_putchar" 2;
  stub "sys_puts" 3;
  stub "__sbrk" 4;
  Minic.Masm.assemble m

(* --- minic library modules --- *)

let div_src = {|
// Integer division and remainder, C semantics (truncation toward zero);
// division by zero yields 0 (and remainder yields the dividend).
// Shift-and-subtract long division; the scan compares (a >> sh) >= b
// rather than shifting b up, so no intermediate value can overflow.
func __divq(a, b) {
  if (b == 0) { return 0; }
  var neg = 0;
  if (a < 0) { a = 0 - a; neg = 1 - neg; }
  if (b < 0) { b = 0 - b; neg = 1 - neg; }
  var sh = 0;
  while ((a >> (sh + 1)) >= b) { sh = sh + 1; }
  var q = 0;
  while (sh >= 0) {
    if ((a >> sh) >= b) {
      a = a - (b << sh);
      q = q + (1 << sh);
    }
    sh = sh - 1;
  }
  if (neg) { q = 0 - q; }
  return q;
}

func __remq(a, b) {
  if (b == 0) { return a; }
  var neg = 0;
  if (a < 0) { a = 0 - a; neg = 1; }
  if (b < 0) { b = 0 - b; }
  var sh = 0;
  while ((a >> (sh + 1)) >= b) { sh = sh + 1; }
  while (sh >= 0) {
    if ((a >> sh) >= b) { a = a - (b << sh); }
    sh = sh - 1;
  }
  if (neg) { a = 0 - a; }
  return a;
}
|}

let io_src = {|
extern func io_putchar(c);
extern func io_putint(x);

// Quad-strings: one character per quadword, zero-terminated.
func io_puts(p) {
  var i = 0;
  while (p[i] != 0) {
    io_putchar(p[i]);
    i = i + 1;
  }
  return i;
}

func io_newline() {
  io_putchar(10);
  return 0;
}

func io_putint_nl(x) {
  io_putint(x);
  io_putchar(10);
  return 0;
}

// label, value, newline — the workhorse of benchmark output
func io_put_labeled(p, x) {
  io_puts(p);
  io_putchar(61);  // '='
  io_putint(x);
  io_putchar(10);
  return 0;
}
|}

let str_src = {|
func qlen(p) {
  var i = 0;
  while (p[i] != 0) { i = i + 1; }
  return i;
}

func qcmp(a, b) {
  var i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

func qcpy(dst, src) {
  var i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

func qset(p, v, n) {
  var i = 0;
  while (i < n) {
    p[i] = v;
    i = i + 1;
  }
  return n;
}

func qmove(dst, src, n) {
  var i = 0;
  while (i < n) {
    dst[i] = src[i];
    i = i + 1;
  }
  return n;
}
|}

let math_src = {|
extern func __divq(a, b);

func iabs(x) {
  if (x < 0) { return 0 - x; }
  return x;
}

func imin(a, b) { if (a < b) { return a; } return b; }
func imax(a, b) { if (a > b) { return a; } return b; }

func ipow(base, e) {
  var r = 1;
  while (e > 0) {
    if (e & 1) { r = r * base; }
    base = base * base;
    e = e >> 1;
  }
  return r;
}

func isqrt(x) {
  if (x < 2) { return x; }
  // Newton iteration with the standard monotone stopping rule
  var r = x;
  var y = (r + 1) >> 1;
  while (y < r) {
    r = y;
    y = (r + x / r) >> 1;
  }
  return r;
}

func gcd(a, b) {
  a = iabs(a);
  b = iabs(b);
  while (b != 0) {
    var t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// 16.16 fixed point
const FXONE = 65536;

func fx_of_int(x) { return x << 16; }
func fx_to_int(x) { return x >> 16; }
func fx_mul(a, b) { return (a * b) >> 16; }
func fx_div(a, b) { return __divq(a << 16, b); }

func fx_sqrt(x) {
  if (x <= 0) { return 0; }
  return isqrt(x) << 8;
}

// exp(x) by 8-term Taylor series around 0 (x in fixed point)
func fx_exp(x) {
  var term = FXONE;
  var sum = FXONE;
  var k = 1;
  while (k <= 8) {
    term = fx_mul(term, fx_div(x, k << 16));
    sum = sum + term;
    k = k + 1;
  }
  return sum;
}

// sin(x) by 5-term alternating series
func fx_sin(x) {
  var x2 = fx_mul(x, x);
  var term = x;
  var sum = x;
  var k = 1;
  while (k <= 5) {
    term = 0 - fx_mul(term, fx_div(x2, ((2 * k) * (2 * k + 1)) << 16));
    sum = sum + term;
    k = k + 1;
  }
  return sum;
}

func fx_cos(x) {
  var x2 = fx_mul(x, x);
  var term = FXONE;
  var sum = FXONE;
  var k = 1;
  while (k <= 5) {
    term = 0 - fx_mul(term, fx_div(x2, ((2 * k - 1) * (2 * k)) << 16));
    sum = sum + term;
    k = k + 1;
  }
  return sum;
}
|}

let rand_src = {|
var __rand_state = 88172645463325252;

func srand(s) {
  if (s == 0) { s = 1; }
  __rand_state = s;
  return 0;
}

// xorshift64* — the multiplier is a 64-bit literal, so it lives in the
// literal pool next to the global addresses.
func randq() {
  var x = __rand_state;
  x = x ^ (x << 13);
  x = x ^ ((x >> 7) & 0x1FFFFFFFFFFFFFF);
  x = x ^ (x << 17);
  __rand_state = x;
  var r = x * 0x2545F4914F6CDD1D;
  return (r >> 1) & 0x3FFFFFFFFFFFFFFF;
}

func rand_range(n) {
  if (n <= 0) { return 0; }
  return randq() % n;
}
|}

let alloc_src = {|
extern func __sbrk(n);

var __alloc_total = 0;

// Bump allocation of n quadwords; storage is never reclaimed.
func alloc(nwords) {
  if (nwords < 1) { nwords = 1; }
  __alloc_total = __alloc_total + nwords;
  return __sbrk(nwords * 8);
}

func alloc_bytes(n) {
  return alloc((n + 7) >> 3);
}

func alloc_total() {
  return __alloc_total;
}
|}

let sort_src = {|
func sort_quads(a, n) {
  var i = 1;
  while (i < n) {
    var key = a[i];
    var j = i - 1;
    var moving = 1;
    while (moving) {
      if (j >= 0) {
        if (a[j] > key) {
          a[j + 1] = a[j];
          j = j - 1;
        } else { moving = 0; }
      } else { moving = 0; }
    }
    a[j + 1] = key;
    i = i + 1;
  }
  return n;
}

func bsearch_quads(a, n, key) {
  var lo = 0;
  var hi = n - 1;
  while (lo <= hi) {
    var mid = (lo + hi) >> 1;
    if (a[mid] == key) { return mid; }
    if (a[mid] < key) { lo = mid + 1; }
    else { hi = mid - 1; }
  }
  return 0 - 1;
}

// map a procedure over an array: calls through a procedure variable,
// which the link-time optimizer cannot see through
func apply_fn(a, n, f) {
  var i = 0;
  while (i < n) {
    a[i] = f(a[i]);
    i = i + 1;
  }
  return n;
}

func fold_fn(a, n, f, acc) {
  var i = 0;
  while (i < n) {
    acc = f(acc, a[i]);
    i = i + 1;
  }
  return acc;
}
|}

let module_sources =
  [ ("div.o", div_src);
    ("io.o", io_src);
    ("str.o", str_src);
    ("math.o", math_src);
    ("rand.o", rand_src);
    ("alloc.o", alloc_src);
    ("sort.o", sort_src) ]

let prelude = {|
extern func io_putint(x);
extern func io_putchar(c);
extern func io_puts(p);
extern func io_newline();
extern func io_putint_nl(x);
extern func io_put_labeled(p, x);
extern func sys_puts(p);
extern func __sbrk(n);
extern func __divq(a, b);
extern func __remq(a, b);
extern func qlen(p);
extern func qcmp(a, b);
extern func qcpy(dst, src);
extern func qset(p, v, n);
extern func qmove(dst, src, n);
extern func iabs(x);
extern func imin(a, b);
extern func imax(a, b);
extern func ipow(b, e);
extern func isqrt(x);
extern func gcd(a, b);
extern func fx_of_int(x);
extern func fx_to_int(x);
extern func fx_mul(a, b);
extern func fx_div(a, b);
extern func fx_sqrt(x);
extern func fx_exp(x);
extern func fx_sin(x);
extern func fx_cos(x);
extern func srand(s);
extern func randq();
extern func rand_range(n);
extern func alloc(n);
extern func alloc_bytes(n);
extern func alloc_total();
extern func sort_quads(a, n);
extern func bsearch_quads(a, n, key);
extern func apply_fn(a, n, f);
extern func fold_fn(a, n, f, acc);
|}

let crt0 = build_crt0

let build_libstd () =
  let compiled =
    List.map
      (fun (name, src) ->
        Minic.Driver.compile_module ~opt:Minic.Driver.O2 ~prelude ~name src)
      module_sources
  in
  Objfile.Archive.make ~name:"libstd.a"
    ((build_crt0 () :: build_sys () :: compiled))

let libstd_cache = lazy (build_libstd ())
let libstd () = Lazy.force libstd_cache
