(** The statically-linked runtime library ([libstd.a]) and program startup.

    These modules play the role of the pre-compiled system libraries in the
    paper's experiments: they were "compiled long before a particular
    application", so even a monolithic interprocedural compilation of the
    application cannot optimize calls into them — only the link-time
    optimizer can.

    The archive contains two hand-assembled modules (program startup and
    the system-call stubs) and several modules written in minic and built
    with the ordinary [-O2] compiler: integer division (the architecture
    has no divide instruction, so [/] and [%] become calls to [__divq] and
    [__remq]), quad-string output, string/block utilities, fixed-point
    math, a PRNG (whose 64-bit constants live in the literal pool), a bump
    allocator over [__sbrk], and sorting helpers that call through
    procedure variables. *)

val prelude : string
(** [extern] declarations for every public library routine; prepend to
    benchmark sources. *)

val libstd : unit -> Objfile.Archive.t
(** The library archive (compiled once per process and cached). *)

val crt0 : unit -> Objfile.Cunit.t
(** Just the startup module, for tests that want a minimal program. *)

val module_sources : (string * string) list
(** The minic sources of the library's compiled members, [(module, source)]
    — exposed so tests can compile them in other ways. *)
