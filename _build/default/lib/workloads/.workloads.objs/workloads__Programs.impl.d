lib/workloads/programs.ml: List Progs_fp Progs_int String
