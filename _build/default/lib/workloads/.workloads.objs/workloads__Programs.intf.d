lib/workloads/programs.mli:
