lib/workloads/progs_fp.ml:
