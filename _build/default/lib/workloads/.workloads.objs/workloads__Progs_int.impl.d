lib/workloads/progs_int.ml:
