lib/workloads/suite.ml: Hashtbl Linker List Minic Printf Programs Runtime
