lib/workloads/suite.mli: Linker Objfile Programs
