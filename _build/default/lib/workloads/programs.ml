type benchmark = {
  name : string;
  sources : (string * string) list;
}

let mk (name, sources) = { name; sources }

let all =
  List.map mk
    [ Progs_fp.alvinn;
      Progs_int.compress;
      Progs_fp.doduc;
      Progs_fp.ear;
      Progs_int.eqntott;
      Progs_int.espresso;
      Progs_fp.fpppp;
      Progs_fp.hydro2d;
      Progs_int.li;
      Progs_fp.mdljdp2;
      Progs_fp.mdljsp2;
      Progs_fp.nasa7;
      Progs_fp.ora;
      Progs_int.sc;
      Progs_int.spice;
      Progs_fp.su2cor;
      Progs_fp.swm256;
      Progs_fp.tomcatv;
      Progs_fp.wave5 ]

let find name = List.find_opt (fun b -> String.equal b.name name) all
let names = List.map (fun b -> b.name) all
