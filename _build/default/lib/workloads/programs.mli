(** The benchmark suite: 19 synthetic programs named after the SPEC92
    benchmarks the paper measured (all of SPEC92 except [gcc], which the
    authors could obtain only in 32-bit mode).

    Each program is written in minic as several source modules — so the
    "compile-each" and "compile-all" build styles genuinely differ — and
    leans on the pre-compiled [libstd] runtime for division, fixed-point
    math, random numbers, I/O and allocation, reproducing the library-call
    density the paper's analysis highlights. Every program prints a small
    deterministic checksum; the test suite requires the output to be
    identical across every link/optimization configuration. *)

type benchmark = {
  name : string;
  sources : (string * string) list;  (** (module name, minic source) *)
}

val all : benchmark list
(** In the paper's figure order: alvinn, compress, doduc, ear, eqntott,
    espresso, fpppp, hydro2d, li, mdljdp2, mdljsp2, nasa7, ora, sc, spice,
    su2cor, swm256, tomcatv, wave5. *)

val find : string -> benchmark option
val names : string list
