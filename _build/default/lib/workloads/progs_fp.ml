(* The floating-point half of the suite, in 16.16 fixed point: loop-heavy
   numeric codes with dense library-call traffic (fx_mul/fx_div/fx_sin/...
   are pre-compiled library routines, exactly the calls the paper says
   interprocedural compilation cannot improve). Like the Fortran originals,
   the kernels address their arrays as global COMMON-style data, so every
   access is compiled through the global address table. *)

let alvinn =
  ( "alvinn",
    [ ( "alvinn_net.mc",
        {|
// single hidden layer forward passes, fixed-point
extern var input[];
extern var w1[];
extern var hidden[];
extern var w2[];
extern var output[];

var act_sum = 0;

static func sigmoid(x) {
  // 1 / (1 + exp(-x)) in 16.16
  var e = fx_exp(0 - x);
  return fx_div(65536, 65536 + e);
}

func net_forward() {
  var h = 0;
  while (h < 16) {
    var s = 0;
    var i = 0;
    while (i < 32) {
      s = s + fx_mul(input[i], w1[h * 32 + i]);
      i = i + 1;
    }
    hidden[h] = sigmoid(s);
    h = h + 1;
  }
  var o = 0;
  while (o < 8) {
    var s2 = 0;
    var j = 0;
    while (j < 16) {
      s2 = s2 + fx_mul(hidden[j], w2[o * 16 + j]);
      j = j + 1;
    }
    output[o] = sigmoid(s2);
    act_sum = act_sum + output[o];
    o = o + 1;
  }
  return act_sum;
}
|}
      );
      ( "alvinn_main.mc",
        {|
extern func net_forward();

var input[32];
var w1[512];
var hidden[16];
var w2[128];
var output[8];

func main() {
  srand(42);
  var i = 0;
  while (i < 32) { input[i] = rand_range(131072) - 65536; i = i + 1; }
  i = 0;
  while (i < 512) { w1[i] = rand_range(32768) - 16384; i = i + 1; }
  i = 0;
  while (i < 128) { w2[i] = rand_range(32768) - 16384; i = i + 1; }
  var epoch = 0;
  var last = 0;
  while (epoch < 8) {
    last = net_forward();
    // drift the inputs a little
    input[epoch % 32] = input[epoch % 32] + 1024;
    epoch = epoch + 1;
  }
  io_put_labeled("acts", last);
  io_put_labeled("out0", output[0]);
  io_put_labeled("out7", output[7]);
  return 0;
}
|}
      )
    ] )

let doduc =
  ( "doduc",
    [ ( "doduc_mc.mc",
        {|
// Monte Carlo nuclear reactor kernel: lots of small procedures
static func collide(e, mu) {
  return fx_mul(e, 58982 + fx_mul(mu, 3277));  // lose ~10% per collision
}

static func scatter_angle(s) {
  return fx_sin(s % 205887);  // s mod ~pi in 16.16
}

func track_one(e0) {
  var e = e0;
  var steps = 0;
  while (e > 6553) {  // until below 0.1
    var mu = scatter_angle(e);
    e = collide(e, mu);
    steps = steps + 1;
    if (steps > 40) { e = 0; }
  }
  return steps;
}
|}
      );
      ( "doduc_main.mc",
        {|
extern func track_one(e0);

var histogram[64];

func main() {
  srand(7);
  var total = 0;
  var n = 0;
  while (n < 80) {
    var e0 = 6553600 + rand_range(655360);
    var steps = track_one(e0);
    var bin = steps % 64;
    histogram[bin] = histogram[bin] + 1;
    total = total + steps;
    n = n + 1;
  }
  io_put_labeled("total", total);
  io_put_labeled("h20", histogram[20]);
  io_put_labeled("h31", histogram[31]);
  return 0;
}
|}
      )
    ] )

let ear =
  ( "ear",
    [ ( "ear_filter.mc",
        {|
// cochlea model: a bank of second-order filters over a synthetic signal
extern var signal[];
extern var state[];
extern var coeff[];
extern var energy[];

func filter_bank(n) {
  var ch = 0;
  while (ch < 16) {
    var a = coeff[ch * 2];
    var b = coeff[ch * 2 + 1];
    var y1 = state[ch * 2];
    var y2 = state[ch * 2 + 1];
    var acc = 0;
    var i = 0;
    while (i < n) {
      var y = fx_mul(a, y1) - fx_mul(b, y2) + signal[i];
      y2 = y1;
      y1 = y;
      if (y < 0) { acc = acc - y; } else { acc = acc + y; }
      i = i + 1;
    }
    state[ch * 2] = y1;
    state[ch * 2 + 1] = y2;
    energy[ch] = acc >> 8;
    ch = ch + 1;
  }
  return 0;
}
|}
      );
      ( "ear_main.mc",
        {|
extern func filter_bank(n);

var signal[256];
var state[32];
var coeff[32];
var energy[16];

func main() {
  var ch = 0;
  while (ch < 16) {
    coeff[ch * 2] = 49152 + ch * 512;      // a
    coeff[ch * 2 + 1] = 16384 + ch * 256;  // b
    ch = ch + 1;
  }
  var frame = 0;
  var sum = 0;
  while (frame < 6) {
    var i = 0;
    while (i < 256) {
      signal[i] = fx_sin((frame * 256 + i) * 1608 % 411774);
      i = i + 1;
    }
    filter_bank(256);
    sum = sum + energy[3] + energy[11];
    frame = frame + 1;
  }
  io_put_labeled("sum", sum);
  io_put_labeled("e0", energy[0]);
  io_put_labeled("e15", energy[15]);
  return 0;
}
|}
      )
    ] )

let fpppp =
  ( "fpppp",
    [ ( "fpppp_kern.mc",
        {|
// two-electron integral kernel: very large basic blocks of fx arithmetic
extern var fock[];

var acc = 0;

func quartet(a, b, c, d) {
  var p1 = fx_mul(a, b);
  var p2 = fx_mul(c, d);
  var p3 = fx_mul(a, c);
  var p4 = fx_mul(b, d);
  var p5 = fx_mul(a, d);
  var p6 = fx_mul(b, c);
  var s1 = p1 + p2 - p3;
  var s2 = p4 + p5 - p6;
  var s3 = fx_mul(s1, s2);
  var s4 = fx_mul(p1 - p4, p2 - p5);
  var s5 = fx_mul(p3 + p6, s1 + s2);
  var t1 = s3 + (s4 >> 1) - (s5 >> 2);
  var t2 = fx_mul(t1, 60293);
  var t3 = t2 + fx_mul(s3, 3411) - fx_mul(s4, 1229);
  var t4 = t3 + (p1 >> 3) + (p2 >> 3) - (p3 >> 4);
  var t5 = fx_mul(t4, 65011) + fx_mul(s5, 509);
  return t5;
}

func sweep_shell(a, b, ia, ib) {
  var g = quartet(a, b, a + 327, b + 721);
  fock[(ia + ib) % 64] = fock[(ia + ib) % 64] + (g >> 4);
  acc = acc + (g >> 8);
  return acc;
}
|}
      );
      ( "fpppp_main.mc",
        {|
extern func quartet(a, b, c, d);
extern func sweep_shell(a, b, ia, ib);

var basis[40];
var fock[64];

func main() {
  var i = 0;
  while (i < 40) { basis[i] = 32768 + i * 771; i = i + 1; }
  var pass = 0;
  var last = 0;
  while (pass < 3) {
    var a = 0;
    while (a < 20) {
      var b = 0;
      while (b < 20) {
        last = sweep_shell(basis[a], basis[b], a, b);
        b = b + 1;
      }
      a = a + 1;
    }
    pass = pass + 1;
  }
  io_put_labeled("acc", last);
  io_put_labeled("f0", fock[0]);
  io_put_labeled("f63", fock[63]);
  return 0;
}
|}
      )
    ] )

let hydro2d =
  ( "hydro2d",
    [ ( "hydro_step.mc",
        {|
// Navier-Stokes-ish 2D stencil relaxation on a 34x34 grid (flattened)
extern var ga[];
extern var gb[];

func relax_ab(w) {
  var r = 1;
  while (r < 33) {
    var c = 1;
    while (c < 33) {
      var k = r * 34 + c;
      var nb = ga[k - 1] + ga[k + 1] + ga[k - 34] + ga[k + 34];
      gb[k] = ga[k] + fx_mul(w, (nb >> 2) - ga[k]);
      c = c + 1;
    }
    r = r + 1;
  }
  return 0;
}

func relax_ba(w) {
  var r = 1;
  while (r < 33) {
    var c = 1;
    while (c < 33) {
      var k = r * 34 + c;
      var nb = gb[k - 1] + gb[k + 1] + gb[k - 34] + gb[k + 34];
      ga[k] = gb[k] + fx_mul(w, (nb >> 2) - gb[k]);
      c = c + 1;
    }
    r = r + 1;
  }
  return 0;
}

func grid_checksum() {
  var s = 0;
  var i = 0;
  while (i < 1156) {
    s = s + (ga[i] >> 6);
    i = i + 1;
  }
  return s;
}
|}
      );
      ( "hydro_main.mc",
        {|
extern func relax_ab(w);
extern func relax_ba(w);
extern func grid_checksum();

var ga[1156];
var gb[1156];

func main() {
  var i = 0;
  while (i < 1156) {
    ga[i] = ((i * 2654435761) >> 8) & 65535;
    i = i + 1;
  }
  var it = 0;
  while (it < 30) {
    relax_ab(45875);
    relax_ba(45875);
    it = it + 1;
  }
  io_put_labeled("sum", grid_checksum());
  io_put_labeled("mid", ga[17 * 34 + 17]);
  return 0;
}
|}
      )
    ] )

let mdljdp2 =
  ( "mdljdp2",
    [ ( "mdl_force.mc",
        {|
// molecular dynamics pair forces (double-precision analogue)
extern var px[];
extern var py[];
extern var pf[];

static func pair_force(d2) {
  // Lennard-Jones-ish: 1/d^4 - 1/d^2 in fixed point, clamped
  if (d2 < 1024) { d2 = 1024; }
  var inv2 = fx_div(65536, d2);
  var inv4 = fx_mul(inv2, inv2);
  return inv4 - (inv2 >> 2);
}

func forces(n) {
  var i = 0;
  while (i < n) { pf[i] = 0; i = i + 1; }
  i = 0;
  var virial = 0;
  while (i < n) {
    var j = i + 1;
    while (j < n) {
      var dx = px[i] - px[j];
      var dy = py[i] - py[j];
      var d2 = fx_mul(dx, dx) + fx_mul(dy, dy);
      var fm = pair_force(d2);
      pf[i] = pf[i] + fm;
      pf[j] = pf[j] - fm;
      virial = virial + fx_mul(fm, d2);
      j = j + 1;
    }
    i = i + 1;
  }
  return virial;
}
|}
      );
      ( "mdl_main_dp.mc",
        {|
extern func forces(n);

var px[36];
var py[36];
var pf[36];

func main() {
  srand(1234);
  var i = 0;
  while (i < 36) {
    px[i] = rand_range(655360);
    py[i] = rand_range(655360);
    i = i + 1;
  }
  var step = 0;
  var v = 0;
  while (step < 10) {
    v = forces(36);
    i = 0;
    while (i < 36) { px[i] = px[i] + (pf[i] >> 6); i = i + 1; }
    step = step + 1;
  }
  io_put_labeled("virial", v);
  io_put_labeled("x0", px[0]);
  io_put_labeled("x35", px[35]);
  return 0;
}
|}
      )
    ] )

let mdljsp2 =
  ( "mdljsp2",
    [ ( "mdl_spring.mc",
        {|
// molecular dynamics, single-precision analogue: springs on a chain
extern var cx[];
extern var cv[];

func spring_step(n, k) {
  var e = 0;
  var i = 1;
  while (i < n - 1) {
    var stretch = cx[i + 1] - (2 * cx[i]) + cx[i - 1];
    var force = fx_mul(k, stretch);
    cv[i] = cv[i] + (force >> 4);
    e = e + iabs(force);
    i = i + 1;
  }
  i = 1;
  while (i < n - 1) {
    cx[i] = cx[i] + (cv[i] >> 4);
    i = i + 1;
  }
  return e;
}
|}
      );
      ( "mdl_main_sp.mc",
        {|
extern func spring_step(n, k);

var cx[200];
var cv[200];

func main() {
  var i = 0;
  while (i < 200) {
    cx[i] = (i << 16) + fx_sin(i * 6434);
    i = i + 1;
  }
  var step = 0;
  var e = 0;
  while (step < 220) {
    e = spring_step(200, 49152);
    step = step + 1;
  }
  io_put_labeled("energy", e);
  io_put_labeled("x100", cx[100]);
  return 0;
}
|}
      )
    ] )

let nasa7 =
  ( "nasa7",
    [ ( "nasa_mm.mc",
        {|
// kernel 1: matrix multiply (24x24) over COMMON-style matrices
extern var ma[];
extern var mb[];
extern var mc[];

func matmul(n) {
  var i = 0;
  while (i < n) {
    var j = 0;
    while (j < n) {
      var s = 0;
      var k = 0;
      while (k < n) {
        s = s + fx_mul(ma[i * n + k], mb[k * n + j]);
        k = k + 1;
      }
      mc[i * n + j] = s;
      j = j + 1;
    }
    i = i + 1;
  }
  return 0;
}
|}
      );
      ( "nasa_chol.mc",
        {|
// kernel 2: Cholesky-like column sweep
extern var mc[];

func colsweep(n) {
  var j = 0;
  var s = 0;
  while (j < n) {
    var d = mc[j * n + j];
    if (d < 256) { d = 256; }
    var i = j + 1;
    while (i < n) {
      mc[i * n + j] = fx_div(mc[i * n + j], d);
      s = s + (mc[i * n + j] >> 8);
      i = i + 1;
    }
    j = j + 1;
  }
  return s;
}
|}
      );
      ( "nasa_main.mc",
        {|
extern func matmul(n);
extern func colsweep(n);

var ma[576];
var mb[576];
var mc[576];

func main() {
  var i = 0;
  while (i < 576) {
    ma[i] = 65536 + ((i * 37) % 513) * 64;
    mb[i] = 32768 + ((i * 61) % 301) * 128;
    i = i + 1;
  }
  var r = 0;
  while (r < 4) {
    matmul(24);
    r = r + 1;
  }
  var s = colsweep(24);
  io_put_labeled("sweep", s);
  io_put_labeled("c0", mc[0]);
  io_put_labeled("clast", mc[575]);
  return 0;
}
|}
      )
    ] )

let ora =
  ( "ora",
    [ ( "ora_trace.mc",
        {|
// optical ray tracing through spherical surfaces: sqrt-heavy
static func refract(h, r) {
  var t = fx_div(h, r);
  return fx_mul(t, 65536 - (fx_mul(t, t) >> 1));
}

func trace_ray(x, dirx, diry) {
  var h = x;
  var surf = 0;
  while (surf < 8) {
    var r = 131072 + surf * 16384;
    var bend = refract(h, r);
    diry = diry - bend;
    h = h + fx_mul(diry, 32768);
    var d2 = fx_mul(h, h) + fx_mul(dirx, dirx);
    h = fx_sqrt(d2);
    surf = surf + 1;
  }
  return h;
}
|}
      );
      ( "ora_main.mc",
        {|
extern func trace_ray(x, dirx, diry);

var heights[80];

func main() {
  var i = 0;
  var sum = 0;
  while (i < 80) {
    var h = trace_ray((i % 40) * 3277, 49152, ((i * 7) % 64) * 1024);
    heights[i] = h;
    sum = sum + (h >> 6);
    i = i + 1;
  }
  io_put_labeled("sum", sum);
  io_put_labeled("h0", heights[0]);
  io_put_labeled("h79", heights[79]);
  return 0;
}
|}
      )
    ] )

let su2cor =
  ( "su2cor",
    [ ( "su2_lattice.mc",
        {|
// quark-gluon lattice sweep: gauge links updated with random kicks
extern var links[];

func sweep(n, beta) {
  var action = 0;
  var i = 0;
  while (i < n) {
    var staple = links[(i + 1) & 127] + links[(i + n - 1) & 127];
    var kick = rand_range(8192) - 4096;
    var trial = links[i] + kick;
    var dS = fx_mul(beta, fx_mul(trial, staple) - fx_mul(links[i], staple)) >> 8;
    if (dS < 0) {
      links[i] = trial;
    } else {
      if (rand_range(65536) < fx_exp(0 - (dS % 131072)) ) {
        links[i] = trial;
      }
    }
    action = action + (fx_mul(links[i], staple) >> 8);
    i = i + 1;
  }
  return action;
}
|}
      );
      ( "su2_main.mc",
        {|
extern func sweep(n, beta);

var links[128];

func main() {
  srand(271828);
  var i = 0;
  while (i < 128) { links[i] = 65536; i = i + 1; }
  var s = 0;
  var it = 0;
  while (it < 12) {
    s = sweep(128, 19661);
    it = it + 1;
  }
  io_put_labeled("action", s);
  io_put_labeled("l0", links[0]);
  io_put_labeled("l127", links[127]);
  return 0;
}
|}
      )
    ] )

let swm256 =
  ( "swm256",
    [ ( "swm_update.mc",
        {|
// shallow water equations on a 26x26 grid: three-field stencil update
extern var wu[];
extern var wv[];
extern var wp[];

func step_uv(n) {
  var r = 1;
  while (r < n - 1) {
    var c = 1;
    while (c < n - 1) {
      var k = r * n + c;
      wu[k] = wu[k] + ((wp[k - 1] - wp[k + 1]) >> 3);
      wv[k] = wv[k] + ((wp[k - n] - wp[k + n]) >> 3);
      c = c + 1;
    }
    r = r + 1;
  }
  return 0;
}

func step_p(n) {
  var s = 0;
  var r = 1;
  while (r < n - 1) {
    var c = 1;
    while (c < n - 1) {
      var k = r * n + c;
      wp[k] = wp[k] - ((wu[k + 1] - wu[k - 1] + wv[k + n] - wv[k - n]) >> 3);
      s = s + (wp[k] >> 10);
      c = c + 1;
    }
    r = r + 1;
  }
  return s;
}
|}
      );
      ( "swm_main.mc",
        {|
extern func step_uv(n);
extern func step_p(n);

var wu[676];
var wv[676];
var wp[676];

func main() {
  var i = 0;
  while (i < 676) {
    wp[i] = 6553600 + fx_sin((i * 1608) % 411774);
    i = i + 1;
  }
  var t = 0;
  var s = 0;
  while (t < 45) {
    step_uv(26);
    s = step_p(26);
    t = t + 1;
  }
  io_put_labeled("psum", s);
  io_put_labeled("u50", wu[50]);
  io_put_labeled("p300", wp[300]);
  return 0;
}
|}
      )
    ] )

let tomcatv =
  ( "tomcatv",
    [ ( "tomcatv_mesh.mc",
        {|
// vectorized mesh generation: coordinate relaxation with residuals
extern var mx[];
extern var my[];
extern var mrx[];
extern var mry[];

func mesh_pass(n) {
  var maxr = 0;
  var r = 1;
  while (r < n - 1) {
    var c = 1;
    while (c < n - 1) {
      var k = r * n + c;
      var xx = mx[k - 1] + mx[k + 1] + mx[k - n] + mx[k + n] - (4 * mx[k]);
      var yy = my[k - 1] + my[k + 1] + my[k - n] + my[k + n] - (4 * my[k]);
      mrx[k] = xx;
      mry[k] = yy;
      var m = iabs(xx) + iabs(yy);
      if (m > maxr) { maxr = m; }
      c = c + 1;
    }
    r = r + 1;
  }
  return maxr;
}

func apply_residual(n, w) {
  var i = 0;
  var total = n * n;
  while (i < total) {
    mx[i] = mx[i] + fx_mul(w, mrx[i]);
    my[i] = my[i] + fx_mul(w, mry[i]);
    i = i + 1;
  }
  return 0;
}
|}
      );
      ( "tomcatv_main.mc",
        {|
extern func mesh_pass(n);
extern func apply_residual(n, w);

var mx[676];
var my[676];
var mrx[676];
var mry[676];

func main() {
  var r = 0;
  while (r < 26) {
    var c = 0;
    while (c < 26) {
      mx[r * 26 + c] = (c << 16) + ((r * c) << 8);
      my[r * 26 + c] = (r << 16) + ((r + c) << 7);
      c = c + 1;
    }
    r = r + 1;
  }
  var it = 0;
  var res = 0;
  while (it < 30) {
    res = mesh_pass(26);
    apply_residual(26, 13107);
    it = it + 1;
  }
  io_put_labeled("res", res);
  io_put_labeled("x338", mx[338]);
  io_put_labeled("y338", my[338]);
  return 0;
}
|}
      )
    ] )

let wave5 =
  ( "wave5",
    [ ( "wave_particles.mc",
        {|
// particle-in-cell: scatter charge, field solve, gather forces
extern var pos[];
extern var vel[];
extern var field[];

func scatter(q, np, n) {
  var i = 0;
  while (i < n) { field[i] = 0; i = i + 1; }
  i = 0;
  while (i < np) {
    var cell = (pos[i] >> 16) & 63;
    field[cell] = field[cell] + q;
    i = i + 1;
  }
  return 0;
}

func gather(np, n) {
  var ke = 0;
  var i = 0;
  while (i < np) {
    var cell = (pos[i] >> 16) & 63;
    var e = field[(cell + 1) & 63] - field[(cell + n - 1) & 63];
    vel[i] = vel[i] + (e << 6);
    pos[i] = pos[i] + (vel[i] >> 4);
    ke = ke + (iabs(vel[i]) >> 4);
    i = i + 1;
  }
  return ke;
}
|}
      );
      ( "wave_main.mc",
        {|
extern func scatter(q, np, n);
extern func gather(np, n);

var pos[300];
var vel[300];
var field[64];

func main() {
  srand(5150);
  var i = 0;
  while (i < 300) {
    pos[i] = rand_range(64 << 16);
    vel[i] = rand_range(2048) - 1024;
    i = i + 1;
  }
  var t = 0;
  var ke = 0;
  while (t < 40) {
    scatter(3, 300, 64);
    ke = gather(300, 64);
    t = t + 1;
  }
  io_put_labeled("ke", ke);
  io_put_labeled("f10", field[10]);
  io_put_labeled("p0", pos[0]);
  return 0;
}
|}
      )
    ] )

let all =
  [ alvinn; doduc; ear; fpppp; hydro2d; mdljdp2; mdljsp2; nasa7; ora; su2cor;
    swm256; tomcatv; wave5 ]
