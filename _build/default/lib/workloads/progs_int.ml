(* The integer half of the suite: call-dense, pointer- and hash-heavy
   codes, several calling through procedure variables (destinations the
   link-time optimizer cannot examine). *)

let compress =
  ( "compress",
    [ ( "comp_hash.mc",
        {|
// LZW-style code table with open-addressing hash
extern func table_reset();
extern func table_lookup(prefix, ch);
extern func table_insert(prefix, ch);

var htab[4096];
var codetab[4096];
var next_code = 0;

func table_reset() {
  var i = 0;
  while (i < 4096) { htab[i] = 0 - 1; codetab[i] = 0; i = i + 1; }
  next_code = 256;
  return 0;
}

static func hash_key(prefix, ch) {
  var k = (prefix << 8) ^ ch;
  return ((k * 2654435761) >> 12) & 4095;
}

func table_lookup(prefix, ch) {
  var key = (prefix << 8) | ch;
  var h = hash_key(prefix, ch);
  var probes = 0;
  while (probes < 4096) {
    if (htab[h] == key) { return codetab[h]; }
    if (htab[h] == 0 - 1) { return 0 - 1; }
    h = (h + 1) & 4095;
    probes = probes + 1;
  }
  return 0 - 1;
}

func table_insert(prefix, ch) {
  var key = (prefix << 8) | ch;
  var h = hash_key(prefix, ch);
  while (htab[h] != 0 - 1) { h = (h + 1) & 4095; }
  htab[h] = key;
  codetab[h] = next_code;
  next_code = next_code + 1;
  return next_code;
}
|}
      );
      ( "comp_main.mc",
        {|
extern func table_reset();
extern func table_lookup(prefix, ch);
extern func table_insert(prefix, ch);
extern var next_code;

var text[2000];
var out_codes = 0;
var out_sum = 0;

static func emit(code) {
  out_codes = out_codes + 1;
  out_sum = (out_sum + code) & 0xFFFFFF;
  return 0;
}

func main() {
  srand(99);
  // synthetic text with repetition
  var i = 0;
  while (i < 2000) {
    if (rand_range(4) == 0) { text[i] = rand_range(64) + 32; }
    else { text[i] = ((i * 11) % 48) + 64; }
    i = i + 1;
  }
  table_reset();
  var prefix = text[0];
  i = 1;
  while (i < 2000) {
    var ch = text[i];
    var code = table_lookup(prefix, ch);
    if (code >= 0) {
      prefix = code;
    } else {
      emit(prefix);
      if (next_code < 4000) { table_insert(prefix, ch); }
      prefix = ch;
    }
    i = i + 1;
  }
  emit(prefix);
  io_put_labeled("codes", out_codes);
  io_put_labeled("sum", out_sum);
  return 0;
}
|}
      )
    ] )

let eqntott =
  ( "eqntott",
    [ ( "eqn_terms.mc",
        {|
// truth-table term generation and comparison-driven sorting
extern func cmp_terms(a, b);
extern var terms[];

func gen_terms(n, vars) {
  var i = 0;
  while (i < n) {
    // evaluate a fixed boolean function on the bits of i
    var x = i & ((1 << vars) - 1);
    var f = ((x >> 2) & (x >> 1)) ^ (x & 1) ^ ((x >> 5) & 1);
    terms[i] = (x << 4) | (f & 1);
    i = i + 1;
  }
  return n;
}

func cmp_terms(a, b) {
  var pa = a & 15;
  var pb = b & 15;
  if (pa != pb) { return pa - pb; }
  return (a >> 4) - (b >> 4);
}

// insertion sort through a comparison procedure variable
var cmp_fn = 0;

func sort_terms(n) {
  cmp_fn = &cmp_terms;
  var i = 1;
  while (i < n) {
    var key = terms[i];
    var j = i - 1;
    var on = 1;
    while (on) {
      if (j >= 0) {
        if (cmp_fn(terms[j], key) > 0) {
          terms[j + 1] = terms[j];
          j = j - 1;
        } else { on = 0; }
      } else { on = 0; }
    }
    terms[j + 1] = key;
    i = i + 1;
  }
  return n;
}
|}
      );
      ( "eqn_main.mc",
        {|
extern func gen_terms(n, vars);
extern func cmp_terms(a, b);
extern func sort_terms(n);

var terms[512];

func main() {
  gen_terms(512, 9);
  // shuffle deterministically, then sort back
  srand(31337);
  var i = 0;
  while (i < 511) {
    var j = i + rand_range(512 - i);
    var t = terms[i];
    terms[i] = terms[j];
    terms[j] = t;
    i = i + 1;
  }
  sort_terms(512);
  var sum = 0;
  i = 0;
  while (i < 512) { sum = sum + terms[i] * (i + 1); i = i + 1; }
  io_put_labeled("sum", sum & 0xFFFFFFF);
  io_put_labeled("t0", terms[0]);
  io_put_labeled("t511", terms[511]);
  return 0;
}
|}
      )
    ] )

let espresso =
  ( "espresso",
    [ ( "esp_cubes.mc",
        {|
// two-level boolean minimization over bit-vector cubes
extern var onset[];

func cube_count(n) {
  var ones = 0;
  var i = 0;
  while (i < n) {
    var w = onset[i];
    while (w != 0) {
      ones = ones + (w & 1);
      w = (w >> 1) & 0x7FFFFFFFFFFFFFF;
    }
    i = i + 1;
  }
  return ones;
}

func expand(n, care) {
  var changed = 0;
  var i = 0;
  while (i < n) {
    var grown = onset[i] | ((onset[i] << 1) & care);
    if (grown != onset[i]) { changed = changed + 1; }
    onset[i] = grown;
    i = i + 1;
  }
  return changed;
}

func irredundant(n) {
  var removed = 0;
  var i = 0;
  while (i < n) {
    var j = 0;
    var covered = 0;
    while (j < n) {
      if (i != j) {
        if ((onset[i] & onset[j]) == onset[i]) {
          if (onset[j] != 0) { covered = 1; }
        }
      }
      j = j + 1;
    }
    if (covered) {
      if (onset[i] != 0) { onset[i] = 0; removed = removed + 1; }
    }
    i = i + 1;
  }
  return removed;
}
|}
      );
      ( "esp_main.mc",
        {|
extern func cube_count(n);
extern func expand(n, care);
extern func irredundant(n);

var onset[160];

func main() {
  var i = 0;
  while (i < 160) {
    onset[i] = ((i * 2654435761) ^ (i << 17)) & 0xFFFFFFFFFF;
    i = i + 1;
  }
  var pass = 0;
  var removed = 0;
  while (pass < 12) {
    expand(160, 0xAAAAAAAAAA);
    removed = removed + irredundant(160);
    pass = pass + 1;
  }
  io_put_labeled("ones", cube_count(160));
  io_put_labeled("removed", removed);
  return 0;
}
|}
      )
    ] )

let li =
  ( "li",
    [ ( "li_cells.mc",
        {|
// a tiny lisp-ish evaluator over cons cells in allocated storage
extern func cons(car, cdr);
extern func car_of(c);
extern func cdr_of(c);
extern func make_list(n, step);

var cell_count = 0;

func cons(car, cdr) {
  var c = alloc(2);
  c[0] = car;
  c[1] = cdr;
  cell_count = cell_count + 1;
  return c;
}

func car_of(c) { return c[0]; }
func cdr_of(c) { return c[1]; }

func make_list(n, step) {
  var lst = 0;
  var i = n;
  while (i > 0) {
    lst = cons(i * step, lst);
    i = i - 1;
  }
  return lst;
}
|}
      );
      ( "li_eval.mc",
        {|
extern func cons(car, cdr);
extern func car_of(c);
extern func cdr_of(c);
extern func make_list(n, step);

// fold a list through a procedure variable (an "apply")
func reduce(lst, f, acc) {
  while (lst != 0) {
    acc = f(acc, car_of(lst));
    lst = cdr_of(lst);
  }
  return acc;
}

func add_op(a, b) { return a + b; }
func mix_op(a, b) { return ((a * 31) + b) & 0xFFFFFFF; }

func map_list(lst, f) {
  if (lst == 0) { return 0; }
  return cons(f(0, car_of(lst)), map_list(cdr_of(lst), f));
}
|}
      );
      ( "li_main.mc",
        {|
extern func cons(car, cdr);
extern func make_list(n, step);
extern func reduce(lst, f, acc);
extern func add_op(a, b);
extern func mix_op(a, b);
extern func map_list(lst, f);

var total = 0;

func main() {
  var round = 0;
  while (round < 30) {
    var lst = make_list(60, round + 1);
    var doubled = map_list(lst, &add_op);
    var s = reduce(lst, &add_op, 0);
    var m = reduce(doubled, &mix_op, 1);
    total = (total + s + m) & 0xFFFFFFF;
    round = round + 1;
  }
  io_put_labeled("total", total);
  io_put_labeled("allocs", alloc_total());
  return 0;
}
|}
      )
    ] )

let sc =
  ( "sc",
    [ ( "sc_cells.mc",
        {|
// spreadsheet recalculation: a grid of cells with formula kinds
extern var vals[];
extern var kind[];
extern var arg1[];
extern var arg2[];

static func eval_cell(k, a, b) {
  if (k == 0) { return a; }                 // constant
  if (k == 1) { return a + b; }             // sum of two cells
  if (k == 2) { return a * 2 - b; }
  if (k == 3) { return imax(a, b); }
  return imin(a, b);
}

func recalc(n) {
  var changed = 0;
  var i = 0;
  while (i < n) {
    var a = vals[arg1[i]];
    var b = vals[arg2[i]];
    var v = eval_cell(kind[i], a, b);
    if (v != vals[i]) { changed = changed + 1; }
    vals[i] = v;
    i = i + 1;
  }
  return changed;
}

func sheet_sum(n) {
  var s = 0;
  var i = 0;
  while (i < n) { s = (s + vals[i]) & 0xFFFFFFFF; i = i + 1; }
  return s;
}
|}
      );
      ( "sc_main.mc",
        {|
extern func recalc(n);
extern func sheet_sum(n);

var vals[600];
var kind[600];
var arg1[600];
var arg2[600];

func main() {
  srand(2001);
  var i = 0;
  while (i < 600) {
    vals[i] = rand_range(1000);
    kind[i] = rand_range(5);
    // reference earlier cells only, so recalculation converges
    if (i > 0) { arg1[i] = rand_range(i); arg2[i] = rand_range(i); }
    i = i + 1;
  }
  kind[0] = 0;
  var rounds = 0;
  var changed = 1;
  while (changed > 0 && rounds < 40) {
    changed = recalc(600);
    rounds = rounds + 1;
  }
  io_put_labeled("rounds", rounds);
  io_put_labeled("sum", sheet_sum(600));
  return 0;
}
|}
      )
    ] )

let spice =
  ( "spice",
    [ ( "spice_stamp.mc",
        {|
// circuit simulation: stamp a conductance matrix and relax it
extern var cg[];
extern var crhs[];
extern var cx[];

func stamp(n, a, b, cond) {
  cg[a * n + a] = cg[a * n + a] + cond;
  cg[b * n + b] = cg[b * n + b] + cond;
  cg[a * n + b] = cg[a * n + b] - cond;
  cg[b * n + a] = cg[b * n + a] - cond;
  crhs[a] = crhs[a] + (cond >> 4);
  return 0;
}

func gauss_seidel(n) {
  var sweep = 0;
  while (sweep < 12) {
    var i = 0;
    while (i < n) {
      var s = crhs[i];
      var j = 0;
      while (j < n) {
        if (j != i) { s = s - fx_mul(cg[i * n + j], cx[j]); }
        j = j + 1;
      }
      var d = cg[i * n + i];
      if (d < 256) { d = 256; }
      cx[i] = fx_div(s, d);
      i = i + 1;
    }
    sweep = sweep + 1;
  }
  return cx[0];
}
|}
      );
      ( "spice_main.mc",
        {|
extern func stamp(n, a, b, cond);
extern func gauss_seidel(n);

var cg[400];
var crhs[20];
var cx[20];

func main() {
  srand(777);
  var e = 0;
  while (e < 60) {
    var a = rand_range(20);
    var b = rand_range(20);
    if (a != b) { stamp(20, a, b, 32768 + rand_range(65536)); }
    e = e + 1;
  }
  var v0 = gauss_seidel(20);
  var s = 0;
  var i = 0;
  while (i < 20) { s = s + iabs(cx[i]); i = i + 1; }
  io_put_labeled("v0", v0);
  io_put_labeled("vsum", s);
  return 0;
}
|}
      )
    ] )

let all = [ compress; eqntott; espresso; li; sc; spice ]
