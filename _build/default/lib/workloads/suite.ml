type build = Compile_each | Compile_all

let build_name = function
  | Compile_each -> "compile-each"
  | Compile_all -> "compile-all"

let all_builds = [ Compile_each; Compile_all ]

let compile build (b : Programs.benchmark) =
  match build with
  | Compile_each ->
      List.map
        (fun (name, src) ->
          Minic.Driver.compile_module ~opt:Minic.Driver.O2
            ~prelude:Runtime.prelude ~name src)
        b.Programs.sources
  | Compile_all ->
      [ Minic.Driver.compile_merged ~opt:Minic.Driver.O2
          ~prelude:Runtime.prelude
          ~name:(b.Programs.name ^ "_all.o")
          b.Programs.sources ]

let resolve build b =
  let units = compile build b in
  Linker.Resolve.run units ~archives:[ Runtime.libstd () ]

let cache : (build * string, Linker.Resolve.t) Hashtbl.t = Hashtbl.create 64

let compile_cached build b =
  match Hashtbl.find_opt cache (build, b.Programs.name) with
  | Some w -> w
  | None -> (
      match resolve build b with
      | Ok w ->
          Hashtbl.replace cache (build, b.Programs.name) w;
          w
      | Error m ->
          failwith (Printf.sprintf "suite: %s (%s): %s" b.Programs.name
                      (build_name build) m))
