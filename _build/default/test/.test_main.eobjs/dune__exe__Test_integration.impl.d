test/test_integration.ml: Alcotest Linker List Machine Om Printf Reports Result String Workloads
