test/test_linker.ml: Alcotest Array Isa Linker List Machine Objfile Option Result Runtime String Testutil
