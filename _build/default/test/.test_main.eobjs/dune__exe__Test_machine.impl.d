test/test_machine.ml: Alcotest Isa Linker Machine Minic Result Testutil
