test/test_main.ml: Alcotest Test_integration Test_isa Test_linker Test_machine Test_minic Test_more Test_objfile Test_om Test_runtime
