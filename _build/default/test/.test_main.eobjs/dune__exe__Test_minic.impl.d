test/test_minic.ml: Alcotest Array Int64 Isa Linker List Machine Minic Objfile Om Printf QCheck Runtime String Testutil
