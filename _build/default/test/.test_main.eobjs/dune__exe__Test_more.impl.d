test/test_more.ml: Alcotest Array Bytes Format Hashtbl Int64 Isa Linker List Minic Om Option Printf Reports Result Runtime String Testutil Workloads
