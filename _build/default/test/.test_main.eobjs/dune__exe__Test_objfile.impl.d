test/test_objfile.ml: Alcotest Array Bytes Char Isa List Minic Objfile Option QCheck Result Testutil
