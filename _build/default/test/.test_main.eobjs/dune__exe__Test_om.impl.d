test/test_om.ml: Alcotest Array Bytes Fun Int32 Isa Linker List Machine Objfile Om Option Printf QCheck Result Runtime Seq String Testutil
