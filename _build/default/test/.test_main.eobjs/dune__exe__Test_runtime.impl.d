test/test_runtime.ml: Alcotest Array Int64 Linker List Objfile Printf QCheck Runtime String Testutil
