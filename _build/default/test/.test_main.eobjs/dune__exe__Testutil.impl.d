test/testutil.ml: Alcotest Linker List Machine Minic Om Printf QCheck_alcotest Runtime
