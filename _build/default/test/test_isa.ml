module I = Isa.Insn
module R = Isa.Reg

let insn = Alcotest.testable (fun ppf i -> I.pp ppf i) I.equal

(* --- generators --- *)

let gen_reg = QCheck.Gen.map R.of_int (QCheck.Gen.int_range 0 31)
let gen_disp16 = QCheck.Gen.int_range (-32768) 32767
let gen_disp21 = QCheck.Gen.int_range (-1048576) 1048575

let gen_cond =
  QCheck.Gen.oneofl
    I.[ Beq; Bne; Blt; Ble; Bge; Bgt; Blbc; Blbs ]

let gen_binop =
  QCheck.Gen.oneofl
    I.[ Addq; Subq; Mulq; Cmpeq; Cmplt; Cmple; Cmpult; Cmpule; And_; Bis;
        Xor; Ornot; Sll; Srl; Sra ]

let gen_operand =
  QCheck.Gen.(
    oneof
      [ map (fun r -> I.Rb r) gen_reg;
        map (fun n -> I.Imm n) (int_range 0 255) ])

let gen_insn =
  QCheck.Gen.(
    oneof
      [ map3 (fun ra rb disp -> I.Lda { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map3 (fun ra rb disp -> I.Ldah { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map3 (fun ra rb disp -> I.Ldq { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map3 (fun ra rb disp -> I.Stq { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map2 (fun ra disp -> I.Br { ra; disp }) gen_reg gen_disp21;
        map2 (fun ra disp -> I.Bsr { ra; disp }) gen_reg gen_disp21;
        map3 (fun cond ra disp -> I.Bcond { cond; ra; disp }) gen_cond gen_reg
          gen_disp21;
        (let* kind = oneofl I.[ Jmp; Jsr; Ret ] in
         let* ra = gen_reg and* rb = gen_reg and* hint = int_range 0 0x3fff in
         return (I.Jump { kind; ra; rb; hint }));
        (let* op = gen_binop in
         let* ra = gen_reg and* rb = gen_operand and* rc = gen_reg in
         return (I.Op { op; ra; rb; rc }));
        map (fun f -> I.Call_pal f) (int_range 0 0x3ffffff) ])

let arb_insn = QCheck.make ~print:I.to_string gen_insn

(* --- unit tests --- *)

let test_roundtrip_examples () =
  let samples =
    [ I.Lda { ra = R.gp; rb = R.pv; disp = 28576 };
      I.Ldah { ra = R.gp; rb = R.ra; disp = 8192 };
      I.Ldq { ra = R.t0; rb = R.gp; disp = 188 };
      I.Stq { ra = R.v0; rb = R.sp; disp = -8 };
      I.Br { ra = R.zero; disp = -17 };
      I.Bsr { ra = R.ra; disp = 1048575 };
      I.Bcond { cond = I.Bne; ra = R.t3; disp = -1048576 };
      I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 };
      I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Rb R.t1; rc = R.t2 };
      I.Op { op = I.Sll; ra = R.s0; rb = I.Imm 63; rc = R.s1 };
      I.nop;
      I.Call_pal 0x83 ]
  in
  List.iter
    (fun i ->
      Alcotest.check insn "roundtrip" i (Isa.Decode.decode_exn (Isa.Encode.insn i)))
    samples

let test_known_encodings () =
  (* spot-check against hand-computed Alpha-format words *)
  Alcotest.(check int) "lda r1, 1(r31)"
    ((0x08 lsl 26) lor (1 lsl 21) lor (31 lsl 16) lor 1)
    (Isa.Encode.insn (I.Lda { ra = R.t0; rb = R.zero; disp = 1 }));
  Alcotest.(check int) "nop is bis r31,r31,r31"
    ((0x11 lsl 26) lor (31 lsl 21) lor (31 lsl 16) lor (0x20 lsl 5) lor 31)
    (Isa.Encode.insn I.nop)

let test_nop_detection () =
  Alcotest.(check bool) "canonical nop" true (I.is_nop I.nop);
  Alcotest.(check bool) "lda r31 is a nop" true
    (I.is_nop (I.Lda { ra = R.zero; rb = R.t0; disp = 4 }));
  Alcotest.(check bool) "addq to r0 is not a nop" false
    (I.is_nop (I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 1; rc = R.v0 }))

let test_defs_uses () =
  let l = I.Ldq { ra = R.t0; rb = R.gp; disp = 8 } in
  Alcotest.(check (list string)) "ldq defs" [ "t0" ]
    (List.map R.name (I.defs l));
  Alcotest.(check (list string)) "ldq uses" [ "gp" ]
    (List.map R.name (I.uses l));
  let s = I.Stq { ra = R.t1; rb = R.sp; disp = 0 } in
  Alcotest.(check (list string)) "stq defs" [] (List.map R.name (I.defs s));
  let z = I.Op { op = I.Addq; ra = R.zero; rb = I.Rb R.zero; rc = R.zero } in
  Alcotest.(check (list string)) "zero never reported" []
    (List.map R.name (I.defs z @ I.uses z))

let test_split32 () =
  List.iter
    (fun d ->
      let hi, lo = I.split32 d in
      Alcotest.(check int) (Printf.sprintf "split32 %d recombines" d) d
        ((hi * 65536) + lo);
      Alcotest.(check bool) "lo fits" true (I.fits_disp16 lo);
      Alcotest.(check bool) "hi fits" true (I.fits_disp16 hi))
    [ 0; 1; -1; 32767; 32768; -32768; -32769; 0x12345678; -0x12345678;
      0x7fff7fff; -0x7fff8000 ]

let test_branch_disp () =
  let b = I.Bsr { ra = R.ra; disp = 42 } in
  Alcotest.(check (option int)) "branch_disp" (Some 42) (I.branch_disp b);
  Alcotest.check insn "with_branch_disp"
    (I.Bsr { ra = R.ra; disp = -1 })
    (I.with_branch_disp b (-1));
  Alcotest.check_raises "with_branch_disp on non-branch"
    (Invalid_argument "Insn.with_branch_disp: not a PC-relative branch")
    (fun () -> ignore (I.with_branch_disp I.nop 0))

let test_falls_through () =
  Alcotest.(check bool) "br does not fall through" false
    (I.falls_through (I.Br { ra = R.zero; disp = 0 }));
  Alcotest.(check bool) "ret does not fall through" false
    (I.falls_through (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 }));
  Alcotest.(check bool) "jsr falls through" true
    (I.falls_through (I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 }));
  Alcotest.(check bool) "bcond falls through" true
    (I.falls_through (I.Bcond { cond = I.Beq; ra = R.t0; disp = 3 }))

(* --- properties --- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_insn
    (fun i -> I.equal i (Isa.Decode.decode_exn (Isa.Encode.insn i)))

let prop_encode_32bit =
  QCheck.Test.make ~name:"encodings fit 32 bits" ~count:2000 arb_insn
    (fun i ->
      let w = Isa.Encode.insn i in
      w >= 0 && w < 1 lsl 32)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary words" ~count:2000
    QCheck.(int_bound ((1 lsl 32) - 1))
    (fun w ->
      match Isa.Decode.decode w with Ok _ | Error _ -> true)

let prop_split32 =
  QCheck.Test.make ~name:"split32 recombines" ~count:1000
    QCheck.(int_range (-2147450880) 2147450879)
    (fun d ->
      QCheck.assume (I.fits_disp32 d);
      let hi, lo = I.split32 d in
      (hi * 65536) + lo = d && I.fits_disp16 lo && I.fits_disp16 hi)

(* --- scheduling --- *)

let gen_sched_insn =
  (* straight-line instructions only *)
  QCheck.Gen.(
    oneof
      [ map3 (fun ra rb disp -> I.Lda { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map3 (fun ra rb disp -> I.Ldq { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        map3 (fun ra rb disp -> I.Stq { ra; rb; disp }) gen_reg gen_reg gen_disp16;
        (let* op = gen_binop in
         let* ra = gen_reg and* rb = gen_operand and* rc = gen_reg in
         return (I.Op { op; ra; rb; rc })) ])

let prop_schedule_valid =
  QCheck.Test.make ~name:"list scheduling yields a valid order" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 0 20) gen_sched_insn))
    (fun insns ->
      let nodes =
        Array.of_list (List.map (fun i -> Isa.Schedule.node_of_insn i) insns)
      in
      let perm = Isa.Schedule.order nodes in
      Isa.Schedule.is_valid_order nodes perm)

let test_schedule_dependent_chain () =
  (* a fully dependent chain cannot be reordered *)
  let chain =
    [ I.Lda { ra = R.t0; rb = R.zero; disp = 1 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 1; rc = R.t0 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 2; rc = R.t0 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 3; rc = R.t0 } ]
  in
  let nodes = Array.of_list (List.map Isa.Schedule.node_of_insn chain) in
  let perm = Isa.Schedule.order nodes in
  Alcotest.(check (array int)) "identity order" [| 0; 1; 2; 3 |] perm

let test_schedule_fills_load_latency () =
  (* independent work should move between a load and its use *)
  let block =
    [ I.Ldq { ra = R.t0; rb = R.sp; disp = 0 };
      I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 1; rc = R.t1 };
      I.Op { op = I.Addq; ra = R.t2; rb = I.Imm 1; rc = R.t3 };
      I.Op { op = I.Addq; ra = R.t4; rb = I.Imm 1; rc = R.t5 } ]
  in
  let nodes = Array.of_list (List.map Isa.Schedule.node_of_insn block) in
  let perm = Isa.Schedule.order nodes in
  let pos = Array.make 4 0 in
  Array.iteri (fun slot i -> pos.(i) <- slot) perm;
  Alcotest.(check bool) "use of load is not immediately after it" true
    (pos.(1) > pos.(0) + 1)

let test_pairing () =
  let op = I.Op { op = I.Addq; ra = R.t0; rb = I.Imm 1; rc = R.t1 } in
  let ld = I.Ldq { ra = R.t2; rb = R.sp; disp = 0 } in
  Alcotest.(check bool) "op pairs with independent load" true
    (Isa.Latency.can_pair op ld);
  let dependent_ld = I.Ldq { ra = R.t2; rb = R.t1; disp = 0 } in
  Alcotest.(check bool) "no pairing on RAW dependence" false
    (Isa.Latency.can_pair op dependent_ld);
  Alcotest.(check bool) "two ops do not pair (same pipe)" false
    (Isa.Latency.can_pair op (I.Op { op = I.Subq; ra = R.t3; rb = I.Imm 1; rc = R.t4 }))

let suite =
  ( "isa",
    [ Alcotest.test_case "roundtrip examples" `Quick test_roundtrip_examples;
      Alcotest.test_case "known encodings" `Quick test_known_encodings;
      Alcotest.test_case "nop detection" `Quick test_nop_detection;
      Alcotest.test_case "defs and uses" `Quick test_defs_uses;
      Alcotest.test_case "split32" `Quick test_split32;
      Alcotest.test_case "branch displacement" `Quick test_branch_disp;
      Alcotest.test_case "fall-through" `Quick test_falls_through;
      Alcotest.test_case "dependent chain order" `Quick
        test_schedule_dependent_chain;
      Alcotest.test_case "load latency filling" `Quick
        test_schedule_fills_load_latency;
      Alcotest.test_case "dual-issue pairing" `Quick test_pairing;
      Testutil.qtest prop_roundtrip;
      Testutil.qtest prop_encode_32bit;
      Testutil.qtest prop_decode_total;
      Testutil.qtest prop_split32;
      Testutil.qtest prop_schedule_valid ] )
