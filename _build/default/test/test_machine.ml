module I = Isa.Insn
module R = Isa.Reg

(* Build a runnable image from raw instructions via the normal pipeline,
   so the machine tests exercise real linked code. *)
let image_of_insns insns =
  let m = Minic.Masm.create "m.o" in
  Minic.Masm.add_proc m ~name:"__start" insns;
  let unit = Minic.Masm.assemble m in
  match Linker.Link.link [ unit ] ~archives:[] with
  | Ok image -> image
  | Error msg -> Alcotest.failf "link: %s" msg

let exit_with code =
  [ Minic.Masm.Insn (I.Lda { ra = R.a0; rb = code; disp = 0 });
    Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
    Minic.Masm.Insn (I.Call_pal 0x83) ]

let run insns =
  match Machine.Cpu.run (image_of_insns insns) with
  | Ok o -> o
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e

let test_cache () =
  let c = Machine.Cache.create ~size_bytes:64 ~line_bytes:32 in
  Alcotest.(check bool) "first access misses" false (Machine.Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Machine.Cache.access c 24);
  Alcotest.(check bool) "second line misses" false (Machine.Cache.access c 32);
  (* 64-byte direct-mapped: address 64 maps to line 0 again *)
  Alcotest.(check bool) "conflict evicts" false (Machine.Cache.access c 64);
  Alcotest.(check bool) "original line was evicted" false
    (Machine.Cache.access c 0);
  Alcotest.(check int) "misses counted" 4 (Machine.Cache.misses c);
  Machine.Cache.reset c;
  Alcotest.(check int) "reset clears" 0 (Machine.Cache.misses c)

let test_arithmetic () =
  (* v0=6*7 via mulq; exit with it *)
  let o =
    run
      ([ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 6 });
         Minic.Masm.Insn (I.Lda { ra = R.t1; rb = R.zero; disp = 7 });
         Minic.Masm.Insn (I.Op { op = I.Mulq; ra = R.t0; rb = I.Rb R.t1; rc = R.a0 });
         Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
         Minic.Masm.Insn (I.Call_pal 0x83) ])
  in
  Alcotest.(check int64) "6*7" 42L o.Machine.Cpu.exit_code

let test_memory () =
  (* store then load through sp *)
  let o =
    run
      [ Minic.Masm.Insn (I.Lda { ra = R.t0; rb = R.zero; disp = 1234 });
        Minic.Masm.Insn (I.Stq { ra = R.t0; rb = R.sp; disp = -16 });
        Minic.Masm.Insn (I.Ldq { ra = R.a0; rb = R.sp; disp = -16 });
        Minic.Masm.Insn (I.Lda { ra = R.v0; rb = R.zero; disp = 0 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  Alcotest.(check int64) "store/load" 1234L o.Machine.Cpu.exit_code

let test_unaligned_faults () =
  let image =
    image_of_insns
      [ Minic.Masm.Insn (I.Ldq { ra = R.t0; rb = R.sp; disp = -13 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Unaligned_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

let test_wild_address_faults () =
  let image =
    image_of_insns
      [ Minic.Masm.Insn (I.Ldq { ra = R.t0; rb = R.zero; disp = 16 });
        Minic.Masm.Insn (I.Call_pal 0x83) ]
  in
  match Machine.Cpu.run image with
  | Error (Machine.Cpu.Out_of_range_access _) -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected a fault"

let test_insn_limit () =
  let m = Minic.Masm.create "loop.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    [ Minic.Masm.Label l;
      Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l } ];
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let config = { Machine.Cpu.default_config with max_insns = 1000 } in
  match Machine.Cpu.run ~config image with
  | Error Machine.Cpu.Insn_limit_reached -> ()
  | Error e -> Alcotest.failf "wrong fault: %a" Machine.Cpu.pp_error e
  | Ok _ -> Alcotest.fail "expected the limit to fire"

let test_output_syscalls () =
  let out = Testutil.run_src {|
func main() {
  io_putint(0 - 42);
  io_putchar(10);
  io_puts("hi");
  io_newline();
  return 0;
}
|} in
  Alcotest.(check string) "stdout" "-42\nhi\n" out

let test_sbrk () =
  let out = Testutil.run_src {|
func main() {
  var p = alloc(4);
  var q = alloc(4);
  p[0] = 5;
  q[0] = 7;
  io_putint(q - p);
  io_putchar(10);
  io_putint(p[0] + q[0]);
  return 0;
}
|} in
  Alcotest.(check string) "bump allocation" "32\n12" out

let test_branch_timing () =
  (* a taken branch must cost at least one extra cycle over fall-through *)
  let straight =
    run
      ([ Minic.Masm.Insn I.nop; Minic.Masm.Insn I.nop ] @ exit_with R.zero)
  in
  let m = Minic.Masm.create "b.o" in
  let l = Minic.Masm.fresh_label m in
  Minic.Masm.add_proc m ~name:"__start"
    ([ Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l };
       Minic.Masm.Insn I.nop;
       Minic.Masm.Label l ]
    @ exit_with R.zero);
  let unit = Minic.Masm.assemble m in
  let image = Result.get_ok (Linker.Link.link [ unit ] ~archives:[]) in
  let branchy =
    match Machine.Cpu.run image with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check bool) "taken branch costs a bubble" true
    (branchy.Machine.Cpu.stats.Machine.Cpu.cycles
     >= straight.Machine.Cpu.stats.Machine.Cpu.cycles)

let test_dual_issue_effect () =
  (* the same program runs in fewer cycles with dual issue enabled *)
  let src = {|
func main() {
  var s = 0;
  var i = 0;
  while (i < 1000) { s = s + i * 3; i = i + 1; }
  io_putint(s);
  return 0;
}
|} in
  let image = Testutil.link_std [ Testutil.compile src ] in
  let dual = Testutil.run_image image in
  let single =
    match
      Machine.Cpu.run
        ~config:{ Machine.Cpu.default_config with dual_issue = false }
        image
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e
  in
  Alcotest.(check string) "same output" dual.Machine.Cpu.output
    single.Machine.Cpu.output;
  Alcotest.(check bool) "dual issue is faster" true
    (dual.Machine.Cpu.stats.Machine.Cpu.cycles
     < single.Machine.Cpu.stats.Machine.Cpu.cycles)

let test_cycles_at_least_insns () =
  let o = run (exit_with R.zero) in
  Alcotest.(check bool) "cycles >= insns/2" true
    (o.Machine.Cpu.stats.Machine.Cpu.cycles
     >= o.Machine.Cpu.stats.Machine.Cpu.insns / 2)

let suite =
  ( "machine",
    [ Alcotest.test_case "direct-mapped cache" `Quick test_cache;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "memory" `Quick test_memory;
      Alcotest.test_case "unaligned access faults" `Quick test_unaligned_faults;
      Alcotest.test_case "wild address faults" `Quick test_wild_address_faults;
      Alcotest.test_case "instruction limit" `Quick test_insn_limit;
      Alcotest.test_case "output system calls" `Quick test_output_syscalls;
      Alcotest.test_case "sbrk allocation" `Quick test_sbrk;
      Alcotest.test_case "branch timing" `Quick test_branch_timing;
      Alcotest.test_case "dual issue speeds up" `Quick test_dual_issue_effect;
      Alcotest.test_case "cycle sanity" `Quick test_cycles_at_least_insns ] )

let test_trace_hook () =
  let image = Testutil.link_std [ Testutil.compile {|func main() { return 3; }|} ] in
  let traced = ref 0 in
  let calls = ref 0 in
  (match Machine.Cpu.run ~trace:(fun ~pc:_ insn ->
       incr traced;
       if Isa.Insn.is_call insn then incr calls)
       image with
  | Ok o ->
      Alcotest.(check int) "trace sees every instruction" o.Machine.Cpu.stats.Machine.Cpu.insns
        !traced;
      (* crt0 calls main: at least one call *)
      Alcotest.(check bool) "calls observed" true (!calls >= 1)
  | Error e -> Alcotest.failf "fault: %a" Machine.Cpu.pp_error e)

let suite =
  let name, cases = suite in
  (name, cases @ [ Alcotest.test_case "trace hook" `Quick test_trace_hook ])
