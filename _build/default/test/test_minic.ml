(* Front-end, optimizer and code-generation tests. Most are end-to-end:
   compile a small program, link with libstd, run on the simulator, check
   the printed output — every instruction actually executes. *)

let t = Testutil.check_output

let semantics_tests =
  [ t "arithmetic and precedence" "23"
      {|func main() { io_putint(1 + 2 * 10 + 4 / 2); return 0; }|};
    t "parenthesized" "22"
      {|func main() { io_putint((1 + 10) * 2); return 0; }|};
    t "division truncates toward zero" "-2 2 -2"
      {|func main() {
          io_putint((0 - 7) / 3); io_putchar(32);
          io_putint(7 / 3); io_putchar(32);
          io_putint(7 / (0 - 3));
          return 0; }|};
    t "remainder has the dividend's sign" "-1 1"
      {|func main() {
          io_putint((0 - 7) % 3); io_putchar(32);
          io_putint(7 % (0 - 3));
          return 0; }|};
    t "division by zero is defined as zero" "0 7"
      {|func main() { io_putint(5 / 0); io_putchar(32); io_putint(7 % 0);
          return 0; }|};
    t "shifts" "48 -2 3"
      {|func main() {
          io_putint(3 << 4); io_putchar(32);
          io_putint((0 - 8) >> 2); io_putchar(32);
          io_putint(12 >> 2);
          return 0; }|};
    t "bitwise" "8 14 6"
      {|func main() {
          io_putint(12 & 10); io_putchar(32);
          io_putint(12 | 10); io_putchar(32);
          io_putint(12 ^ 10);
          return 0; }|};
    t "comparisons produce 0 or 1" "1 0 1 1 0 1"
      {|func main() {
          io_putint(1 < 2); io_putchar(32);
          io_putint(2 < 1); io_putchar(32);
          io_putint(2 <= 2); io_putchar(32);
          io_putint(3 > 2); io_putchar(32);
          io_putint(3 == 4); io_putchar(32);
          io_putint(3 != 4);
          return 0; }|};
    t "unary operators" "-5 1 0 -13"
      {|func main() {
          io_putint(-5); io_putchar(32);
          io_putint(!0); io_putchar(32);
          io_putint(!7); io_putchar(32);
          io_putint(~12);
          return 0; }|};
    t "short-circuit and" "0"
      {|var touched = 0;
        func poke() { touched = 1; return 1; }
        func main() {
          var r = 0 && poke();
          io_putint(touched + r);
          return 0; }|};
    t "short-circuit or" "1"
      {|var touched = 0;
        func poke() { touched = 1; return 1; }
        func main() {
          var r = 1 || poke();
          io_putint(touched + r);
          return 0; }|};
    t "while loop" "45"
      {|func main() {
          var s = 0; var i = 0;
          while (i < 10) { s = s + i; i = i + 1; }
          io_putint(s); return 0; }|};
    t "for loop" "45"
      {|func main() {
          var s = 0;
          for (var i = 0; i < 10; i = i + 1) { s = s + i; }
          io_putint(s); return 0; }|};
    t "nested if/else chains" "small"
      {|func classify(x) {
          if (x < 10) { io_puts("small"); }
          else if (x < 100) { io_puts("medium"); }
          else { io_puts("large"); }
          return 0; }
        func main() { classify(3); return 0; }|};
    t "global scalars and arrays" "7 99"
      {|var g = 7;
        var arr[10];
        func main() {
          arr[3] = 99;
          io_putint(g); io_putchar(32); io_putint(arr[3]);
          return 0; }|};
    t "global initializers" "1 2 3 60"
      {|var xs[5] = { 1, 2, 3 };
        var y = 60;
        func main() {
          io_putint(xs[0]); io_putchar(32);
          io_putint(xs[1]); io_putchar(32);
          io_putint(xs[2]); io_putchar(32);
          io_putint(y + xs[4]);
          return 0; }|};
    t "negative initializers" "-9"
      {|var z = -9;
        func main() { io_putint(z); return 0; }|};
    t "local stack arrays" "30"
      {|func main() {
          var a[8];
          a[0] = 10; a[7] = 20;
          io_putint(a[0] + a[7]);
          return 0; }|};
    t "array decay and pointer indexing" "5"
      {|var data[4];
        func get(p, i) { return p[i]; }
        func main() {
          data[2] = 5;
          io_putint(get(&data, 2));
          return 0; }|};
    t "recursion" "720"
      {|func fact(n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1); }
        func main() { io_putint(fact(6)); return 0; }|};
    t "mutual recursion" "1 0"
      {|func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        func main() {
          io_putint(is_even(10)); io_putchar(32);
          io_putint(is_even(7));
          return 0; }|};
    t "static functions" "12"
      {|static func helper(x) { return x + 2; }
        func main() { io_putint(helper(10)); return 0; }|};
    t "procedure variables" "25"
      {|func sq(x) { return x * x; }
        var op = 0;
        func main() {
          op = &sq;
          io_putint(op(5));
          return 0; }|};
    t "procedure variable as parameter" "16"
      {|func twice(f, x) { return f(f(x)); }
        func dbl(x) { return x * 2; }
        func main() { io_putint(twice(&dbl, 4)); return 0; }|};
    t "six arguments" "21"
      {|func sum6(a, b, c, d, e, f) { return a + b + c + d + e + f; }
        func main() { io_putint(sum6(1, 2, 3, 4, 5, 6)); return 0; }|};
    t "64-bit literal pool constants" "81985529216486895"
      {|func main() { io_putint(0x123456789ABCDEF); return 0; }|};
    t "64-bit constant arithmetic survives" "-81985529216486895"
      {|func main() { io_putint(0 - 0x123456789ABCDEF); return 0; }|};
    t "32-bit constants via ldah/lda" "305419896"
      {|func main() { io_putint(0x12345678); return 0; }|};
    t "character literals and escapes" "65 10 92"
      {|func main() {
          io_putint('A'); io_putchar(32);
          io_putint('\n'); io_putchar(32);
          io_putint('\\');
          return 0; }|};
    t "string literals are interned" "1"
      {|func main() {
          // same contents must be the same object
          io_putint("abc" == "abc");
          return 0; }|};
    t "uninitialized locals are zero" "0"
      {|func main() { var x; io_putint(x); return 0; }|};
    t "implicit return value is zero" "0"
      {|func noret(x) { x = x + 1; }
        func main() { io_putint(noret(5)); return 0; }|};
    t "comments are skipped" "3"
      {|// line comment
        /* block
           comment */
        func main() { io_putint(3); /* inline */ return 0; }|};
    t "exit code is main's return" ""
      {|func main() { return 0; }|};
    t "shadowing in nested scopes" "1 2 1"
      {|func main() {
          var x = 1;
          io_putint(x); io_putchar(32);
          if (1) { var x = 2; io_putint(x); io_putchar(32); }
          io_putint(x);
          return 0; }|}
  ]

let exit_code_test =
  Alcotest.test_case "exit code propagates" `Quick (fun () ->
      Alcotest.(check int64) "main returns 42" 42L
        (Testutil.run_src_exit {|func main() { return 42; }|}))

(* --- front-end error reporting --- *)

let expect_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"e.o" src with
      | exception Minic.Driver.Error _ -> ()
      | _ -> Alcotest.fail "expected a compile error")

let error_tests =
  [ expect_error "undefined variable" {|func main() { return nope; }|};
    expect_error "undefined function" {|func main() { return nope(); }|};
    expect_error "arity mismatch" {|func f(a, b) { return a + b; }
                                    func main() { return f(1); }|};
    expect_error "redefinition" {|var x = 1; var x = 2;
                                  func main() { return 0; }|};
    expect_error "assign to array" {|var a[4];
                                     func main() { a = 3; return 0; }|};
    expect_error "assign to function" {|func f() { return 0; }
                                        func main() { f = 3; return 0; }|};
    expect_error "address of local" {|func main() { var x; return &x; }|};
    expect_error "call an array" {|var a[4];
                                   func main() { return a(); }|};
    expect_error "too many parameters"
      {|func f(a, b, c, d, e, g, h) { return 0; }
        func main() { return 0; }|};
    expect_error "syntax error" {|func main( { return 0; }|};
    expect_error "unterminated comment" {|func main() { return 0; } /* oops|};
    expect_error "local redeclaration in one scope"
      {|func main() { var x = 1; var x = 2; return x; }|};
    expect_error "conflicting extern arity"
      {|extern func io_putint(a, b);
        func main() { return 0; }|}
  ]

(* --- optimizer unit tests --- *)

let ir_of src =
  let prog, env = Minic.Driver.parse_and_check ~prelude:Runtime.prelude src in
  (Minic.Irgen.lower env prog).Minic.Irgen.funcs

let count_instrs (fn : Minic.Ir.func) =
  List.fold_left
    (fun acc (b : Minic.Ir.block) -> acc + List.length b.body)
    0 fn.Minic.Ir.blocks

let test_constant_folding () =
  let fns = ir_of {|func main() { return 2 * 3 + 4; }|} in
  let fn = List.hd fns in
  Minic.Opt.run fn;
  (* everything folds to a single Li *)
  let lis =
    List.concat_map
      (fun (b : Minic.Ir.block) ->
        List.filter_map
          (fun i -> match i with Minic.Ir.Li { value; _ } -> Some value | _ -> None)
          b.body)
      fn.Minic.Ir.blocks
  in
  Alcotest.(check bool) "folded to 10" true (List.mem 10L lis);
  Alcotest.(check bool) "no arithmetic remains" true
    (List.for_all
       (fun (b : Minic.Ir.block) ->
         List.for_all
           (fun i ->
             match i with Minic.Ir.Bin _ | Minic.Ir.Bini _ -> false | _ -> true)
           b.body)
       fn.Minic.Ir.blocks)

let test_dead_code () =
  let fns =
    ir_of {|func main() { var unused = 3 * 14; return 7; }|}
  in
  let fn = List.hd fns in
  let before = count_instrs fn in
  Minic.Opt.run fn;
  Alcotest.(check bool) "dead definitions removed" true
    (count_instrs fn < before)

let test_branch_folding () =
  let fns = ir_of {|func main() { if (0) { io_putint(1); } return 2; }|} in
  let fn = List.hd fns in
  Minic.Opt.run fn;
  let has_call =
    List.exists
      (fun (b : Minic.Ir.block) ->
        List.exists
          (fun i -> match i with Minic.Ir.Call _ -> true | _ -> false)
          b.body)
      fn.Minic.Ir.blocks
  in
  Alcotest.(check bool) "unreachable call removed" false has_call

let test_la_cse () =
  (* two accesses to the same global in one block share one address load *)
  let fns = ir_of {|var g = 0;
                    func main() { g = g + 1; return g; }|} in
  let fn = List.hd fns in
  Minic.Opt.run fn;
  let las =
    List.concat_map
      (fun (b : Minic.Ir.block) ->
        List.filter
          (fun i -> match i with Minic.Ir.La _ -> true | _ -> false)
          b.body)
      fn.Minic.Ir.blocks
  in
  Alcotest.(check int) "one address load per block" 1 (List.length las)

let test_div_lowering () =
  let fns = ir_of {|func main() { var a = 100; return a / 7; }|} in
  let fn = List.hd fns in
  Minic.Opt.run fn;
  let calls_divq =
    List.exists
      (fun (b : Minic.Ir.block) ->
        List.exists
          (fun i ->
            match i with
            | Minic.Ir.Call { callee = Minic.Ir.Cdirect "__divq"; _ } -> true
            | _ -> false)
          b.body)
      fn.Minic.Ir.blocks
  in
  Alcotest.(check bool) "division becomes a __divq call" true calls_divq

let test_mul_pow2_strength () =
  let fns = ir_of {|func f(x) { return x * 8; } func main() { return f(3); }|} in
  let fn = List.find (fun (f : Minic.Ir.func) -> f.fname = "f") fns in
  Minic.Opt.run fn;
  let has_shift =
    List.exists
      (fun (b : Minic.Ir.block) ->
        List.exists
          (fun i ->
            match i with
            | Minic.Ir.Bini { op = Minic.Ir.Shl; imm = 3; _ } -> true
            | _ -> false)
          b.body)
      fn.Minic.Ir.blocks
  in
  Alcotest.(check bool) "multiply by 8 becomes a shift" true has_shift

(* --- IR validation --- *)

let test_ir_validate () =
  let fns = ir_of {|func main() { var s = 0; var i = 0;
                     while (i < 5) { s = s + i; i = i + 1; }
                     return s; }|} in
  List.iter
    (fun fn ->
      Minic.Opt.run fn;
      match Minic.Ir.validate fn with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid IR: %s" m)
    fns

(* --- register allocation --- *)

let test_regalloc_call_crossing () =
  (* regression: a value live across a call must not sit in a
     caller-saved register (this once broke indirect calls) *)
  let fns =
    ir_of {|func g(x) { return x + 1; }
            func f(a, b) { return g(a) + g(b) + a + b; }
            func main() { return f(1, 2); }|}
  in
  let fn = List.find (fun (f : Minic.Ir.func) -> f.fname = "f") fns in
  Minic.Opt.run fn;
  let alloc = Minic.Regalloc.allocate fn in
  (* both parameters are live across the first call *)
  List.iter
    (fun p ->
      match alloc.Minic.Regalloc.loc.(p) with
      | Minic.Regalloc.Preg r ->
          Alcotest.(check bool)
            (Printf.sprintf "param in callee-saved or spilled, got %s"
               (Isa.Reg.name r))
            true
            (List.exists (Isa.Reg.equal r) Minic.Regalloc.callee_pool)
      | Minic.Regalloc.Spill _ -> ())
    fn.Minic.Ir.params

let test_regalloc_spilling () =
  (* force more simultaneously-live values than there are registers *)
  let src = {|
func main() {
  var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
  var f = 6; var g = 7; var h = 8; var i = 9; var j = 10;
  var k = 11; var l = 12; var m = 13; var n = 14; var o = 15;
  var p = 16; var q = 17; var r = 18; var s = 19; var t = 20;
  var sum1 = a + b + c + d + e + f + g + h + i + j;
  var sum2 = k + l + m + n + o + p + q + r + s + t;
  io_putint(sum1 * 1000 + sum2 + a + k + t);
  return 0;
}
|} in
  Alcotest.(check string) "spilled program is correct" "55187"
    (Testutil.run_src src)

(* O0 and O2 agree *)
let test_opt_levels_agree () =
  let src = {|
var acc = 0;
static func mix(x) { acc = (acc * 31 + x) % 1000003; return acc; }
func main() {
  var i = 0;
  while (i < 50) { mix(i * i + 7); i = i + 1; }
  io_putint(acc);
  return 0;
}
|} in
  Alcotest.(check string) "O0 = O2"
    (Testutil.run_src ~opt:Minic.Driver.O0 src)
    (Testutil.run_src ~opt:Minic.Driver.O2 src)

(* --- inlining (compile-all) --- *)

let test_merged_compile () =
  let sources =
    [ ("a.mc", {|func helper(x) { return x * 3; }|});
      ("b.mc", {|extern func helper(x);
                 func main() { io_putint(helper(14)); return 0; }|}) ]
  in
  let merged =
    Minic.Driver.compile_merged ~prelude:Runtime.prelude ~name:"m.o" sources
  in
  let image = Testutil.link_std [ merged ] in
  Alcotest.(check string) "merged output" "42"
    (Testutil.run_image image).Machine.Cpu.output

let test_merged_equals_separate () =
  let sources =
    [ ("a.mc", {|var shared = 5;
                 func bump(x) { shared = shared + x; return shared; }|});
      ("b.mc", {|extern func bump(x);
                 extern var shared;
                 func main() {
                   bump(10);
                   bump(100);
                   io_putint(shared);
                   return 0; }|}) ]
  in
  let separate =
    List.map
      (fun (n, s) ->
        Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:n s)
      sources
  in
  let merged =
    Minic.Driver.compile_merged ~prelude:Runtime.prelude ~name:"m.o" sources
  in
  let out_sep = (Testutil.run_image (Testutil.link_std separate)).Machine.Cpu.output in
  let out_mer = (Testutil.run_image (Testutil.link_std [ merged ])).Machine.Cpu.output in
  Alcotest.(check string) "same behavior" out_sep out_mer;
  Alcotest.(check string) "expected value" "115" out_mer

let test_inlining_happens () =
  let sources =
    [ ("a.mc", {|func tiny(x) { return x + 1; }
                 func main() { io_putint(tiny(41)); return 0; }|}) ]
  in
  let with_inline =
    Minic.Driver.compile_merged ~inline:true ~prelude:Runtime.prelude
      ~name:"m.o" sources
  in
  let without =
    Minic.Driver.compile_merged ~inline:false ~prelude:Runtime.prelude
      ~name:"m.o" sources
  in
  (* out of line there is a bsr to tiny from main; inlined there is none *)
  let count_bsr u =
    Array.fold_left
      (fun acc i -> match i with Isa.Insn.Bsr _ -> acc + 1 | _ -> acc)
      0 (Objfile.Cunit.insns u)
  in
  Alcotest.(check bool) "inlining removes the call" true
    (count_bsr with_inline < count_bsr without);
  Alcotest.(check string) "inlined program still correct" "42"
    (Testutil.run_image (Testutil.link_std [ with_inline ])).Machine.Cpu.output

(* --- property: random expression evaluation matches OCaml --- *)

let gen_expr_value =
  (* build a random expression tree and its expected value, using only
     well-defined operations *)
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      let* n = int_range (-1000) 1000 in
      return (Printf.sprintf "(%d)" n, Int64.of_int n)
    else
      let* a, va = gen (depth - 1) in
      let* b, vb = gen (depth - 1) in
      oneofl
        [ (Printf.sprintf "(%s + %s)" a b, Int64.add va vb);
          (Printf.sprintf "(%s - %s)" a b, Int64.sub va vb);
          (Printf.sprintf "(%s * %s)" a b, Int64.mul va vb);
          (Printf.sprintf "(%s & %s)" a b, Int64.logand va vb);
          (Printf.sprintf "(%s | %s)" a b, Int64.logor va vb);
          (Printf.sprintf "(%s ^ %s)" a b, Int64.logxor va vb) ]
  in
  gen 3

let prop_expr_eval =
  QCheck.Test.make ~name:"random expressions evaluate like OCaml" ~count:60
    (QCheck.make ~print:fst gen_expr_value)
    (fun (expr, expected) ->
      let src =
        Printf.sprintf {|func main() { io_putint(%s); return 0; }|} expr
      in
      String.equal (Int64.to_string expected) (Testutil.run_src src))

let prop_divmod =
  QCheck.Test.make ~name:"div/rem match C semantics" ~count:40
    QCheck.(pair (int_range (-100000) 100000) (int_range (-500) 500))
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let src =
        Printf.sprintf
          {|func main() { io_putint((%d) / (%d)); io_putchar(32);
             io_putint((%d) %% (%d)); return 0; }|}
          a b a b
      in
      let expected =
        Printf.sprintf "%Ld %Ld"
          (Int64.div (Int64.of_int a) (Int64.of_int b))
          (Int64.rem (Int64.of_int a) (Int64.of_int b))
      in
      String.equal expected (Testutil.run_src src))

let suite =
  ( "minic",
    semantics_tests @ error_tests
    @ [ exit_code_test;
        Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "dead code elimination" `Quick test_dead_code;
        Alcotest.test_case "branch folding" `Quick test_branch_folding;
        Alcotest.test_case "address-load CSE" `Quick test_la_cse;
        Alcotest.test_case "division lowering" `Quick test_div_lowering;
        Alcotest.test_case "strength reduction" `Quick test_mul_pow2_strength;
        Alcotest.test_case "IR validates after opt" `Quick test_ir_validate;
        Alcotest.test_case "regalloc call-crossing" `Quick
          test_regalloc_call_crossing;
        Alcotest.test_case "regalloc spilling" `Quick test_regalloc_spilling;
        Alcotest.test_case "O0 and O2 agree" `Quick test_opt_levels_agree;
        Alcotest.test_case "merged compile" `Quick test_merged_compile;
        Alcotest.test_case "merged equals separate" `Quick
          test_merged_equals_separate;
        Alcotest.test_case "inlining" `Quick test_inlining_happens;
        Testutil.qtest prop_expr_eval;
        Testutil.qtest prop_divmod ] )

(* --- optimistic compilation (the paper's §6 / MIPS -G scheme) --- *)

let optimistic_src = {|
var a = 5;
var b = 7;
var big[100];
func main() {
  big[3] = a * b;
  io_putint(big[3] + a);
  return 0;
}
|}

let test_optimistic_works () =
  let plain =
    Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"p.o"
      optimistic_src
  in
  let optim =
    Minic.Driver.compile_module ~optimistic:true ~prelude:Runtime.prelude
      ~name:"g.o" optimistic_src
  in
  (* the optimistic unit needs fewer GAT entries and fewer instructions *)
  Alcotest.(check bool) "smaller GAT" true
    (Array.length optim.Objfile.Cunit.gat < Array.length plain.Objfile.Cunit.gat);
  (* same count per access (one lda replaces one ldq); never more *)
  Alcotest.(check bool) "no more instructions" true
    (Objfile.Cunit.insn_count optim <= Objfile.Cunit.insn_count plain);
  let out_plain =
    (Testutil.run_image (Testutil.link_std [ plain ])).Machine.Cpu.output
  in
  let out_optim =
    (Testutil.run_image (Testutil.link_std [ optim ])).Machine.Cpu.output
  in
  Alcotest.(check string) "same behavior" out_plain out_optim;
  Alcotest.(check string) "expected output" "40" out_optim

let test_optimistic_bet_can_fail () =
  (* a common scalar lands after a huge .bss: outside the GP window, so
     the optimistic link must fail with recompilation advice *)
  let src = {|
var huge1[30000];
var huge2[30000];
var unlucky;
func main() {
  unlucky = 1;
  huge1[0] = unlucky;
  io_putint(huge1[0]);
  return 0;
}
|} in
  let optim =
    Minic.Driver.compile_module ~optimistic:true ~prelude:Runtime.prelude
      ~name:"g.o" src
  in
  (match Linker.Link.link [ optim ] ~archives:[ Runtime.libstd () ] with
  | Error m ->
      Alcotest.(check bool) "error advises recompilation" true
        (let affix = "recompile" in
         let n = String.length affix and l = String.length m in
         let rec go i = i + n <= l && (String.sub m i n = affix || go (i + 1)) in
         go 0)
  | Ok _ -> Alcotest.fail "expected the optimistic link to fail");
  (* the conservative compile of the same program links fine *)
  let plain =
    Minic.Driver.compile_module ~prelude:Runtime.prelude ~name:"p.o" src
  in
  Alcotest.(check string) "conservative version runs" "1"
    (Testutil.run_image (Testutil.link_std [ plain ])).Machine.Cpu.output

let test_optimistic_through_om () =
  (* OM accepts optimistically-compiled objects: the GPREL16 reference
     lifts into the symbolic form and survives every level *)
  let optim =
    Minic.Driver.compile_module ~optimistic:true ~prelude:Runtime.prelude
      ~name:"g.o" optimistic_src
  in
  let world =
    match Linker.Resolve.run [ optim ] ~archives:[ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  List.iter
    (fun level ->
      match Om.optimize_resolved level world with
      | Ok { Om.image; _ } ->
          Alcotest.(check string)
            (Om.level_name level ^ " preserves optimistic code")
            "40"
            (Testutil.run_image image).Machine.Cpu.output
      | Error m -> Alcotest.failf "%s: %s" (Om.level_name level) m)
    Om.all_levels

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "optimistic compilation works" `Quick
          test_optimistic_works;
        Alcotest.test_case "optimistic bet can fail at link time" `Quick
          test_optimistic_bet_can_fail;
        Alcotest.test_case "optimistic objects through OM" `Quick
          test_optimistic_through_om ] )
