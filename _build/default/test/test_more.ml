(* Additional coverage: data layout, figure rendering, lexer details, and
   whole-pipeline invariants that no other suite pins down. *)

module I = Isa.Insn
module R = Isa.Reg

(* --- lexer details --- *)

let test_lexer_tokens () =
  let toks = Minic.Lexer.tokenize "x<<=>>=&&&|||" in
  let kinds = List.map (fun (t : Minic.Lexer.t) -> t.tok) toks in
  Alcotest.(check bool) "maximal munch" true
    (kinds
    = [ Minic.Lexer.IDENT "x"; Minic.Lexer.SHL; Minic.Lexer.EQ;
        Minic.Lexer.SHR; Minic.Lexer.EQ; Minic.Lexer.AMPAMP; Minic.Lexer.AMP;
        Minic.Lexer.PIPEPIPE; Minic.Lexer.PIPE; Minic.Lexer.EOF ])

let test_lexer_positions () =
  let toks = Minic.Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "a line" 1 a.Minic.Lexer.pos.Minic.Ast.line;
      Alcotest.(check int) "b line" 2 b.Minic.Lexer.pos.Minic.Ast.line;
      Alcotest.(check int) "b col" 3 b.Minic.Lexer.pos.Minic.Ast.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_rejects () =
  Alcotest.(check bool) "bad char" true
    (match Minic.Lexer.tokenize "a $ b" with
    | exception Minic.Lexer.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "huge int" true
    (match Minic.Lexer.tokenize "99999999999999999999999" with
    | exception Minic.Lexer.Error _ -> true
    | _ -> false)

(* --- parser precedence details --- *)

let parse_one_expr src =
  match Minic.Parser.parse (Printf.sprintf "func main() { return %s; }" src) with
  | [ Minic.Ast.Func { body = [ { sdesc = Minic.Ast.Return (Some e); _ } ]; _ } ]
    -> e
  | _ -> Alcotest.fail "unexpected parse shape"

let rec expr_str (e : Minic.Ast.expr) =
  match e.desc with
  | Minic.Ast.Int n -> Int64.to_string n
  | Minic.Ast.Binary (op, a, b) ->
      Printf.sprintf "(%s%s%s)" (expr_str a)
        (Format.asprintf "%a" Minic.Ast.pp_binop op)
        (expr_str b)
  | _ -> "?"

let test_precedence () =
  Alcotest.(check string) "mul binds tighter" "(1+(2*3))"
    (expr_str (parse_one_expr "1 + 2 * 3"));
  Alcotest.(check string) "shift vs plus" "((1+2)<<3)"
    (expr_str (parse_one_expr "1 + 2 << 3"));
  Alcotest.(check string) "and-or" "((1&&2)||3)"
    (expr_str (parse_one_expr "1 && 2 || 3"));
  Alcotest.(check string) "left associativity" "((7-3)-2)"
    (expr_str (parse_one_expr "7 - 3 - 2"))

(* --- data layout --- *)

let world_of src =
  match
    Linker.Resolve.run [ Testutil.compile src ] ~archives:[ Runtime.libstd () ]
  with
  | Ok w -> w
  | Error m -> Alcotest.failf "resolve: %s" m

let test_datalayout_windows () =
  let world =
    world_of
      {|var near = 1;
        var far[9000];
        func main() { io_putint(near + far[0]); return 0; }|}
  in
  let merged = Linker.Gat.merge world in
  let sizes =
    Array.init merged.Linker.Gat.ngroups (fun g ->
        let first = merged.Linker.Gat.group_first_slot.(g) in
        let next =
          if g + 1 < merged.Linker.Gat.ngroups then
            merged.Linker.Gat.group_first_slot.(g + 1)
          else Array.length merged.Linker.Gat.slots
        in
        8 * (next - first))
  in
  let plan =
    Om.Datalayout.plan world ~group_of_module:merged.Linker.Gat.group_of_module
      ~ngroups:merged.Linker.Gat.ngroups ~group_gat_bytes:sizes
  in
  let addr_of name =
    match Hashtbl.find_opt world.Linker.Resolve.globals name with
    | Some (Linker.Resolve.Tobj _ as t) -> Om.Datalayout.address_of world plan t
    | _ -> Alcotest.failf "no global %s" name
  in
  (* the small scalar must be inside the GP window; the huge array cannot
     fit entirely *)
  Alcotest.(check bool) "near datum in window" true
    (Om.Datalayout.in_window plan ~group:0 (addr_of "near"));
  Alcotest.(check bool) "end of far array outside window" false
    (Om.Datalayout.in_window plan ~group:0 (addr_of "far" + (8 * 8999)));
  (* commons are sorted by size: 'near' (a common scalar) precedes 'far' *)
  Alcotest.(check bool) "smaller common placed first" true
    (addr_of "near" < addr_of "far")

let test_gp_heuristic () =
  let world = world_of {|var g = 1; func main() { return g; }|} in
  let merged = Linker.Gat.merge world in
  let plan =
    Om.Datalayout.plan world ~group_of_module:merged.Linker.Gat.group_of_module
      ~ngroups:1
      ~group_gat_bytes:[| 8 * Array.length merged.Linker.Gat.slots |]
  in
  let gp = plan.Om.Datalayout.gp_of_group.(0) in
  (* every reserved GAT slot must be reachable *)
  Array.iteri
    (fun i _ ->
      let slot =
        Linker.Layout.data_base + plan.Om.Datalayout.group_gat_off.(0) + (8 * i)
      in
      Alcotest.(check bool) "slot reachable" true
        (Isa.Insn.fits_disp16 (slot - gp)))
    merged.Linker.Gat.slots

(* --- figures rendering (smoke + mean arithmetic) --- *)

let test_figures_render () =
  let b = Option.get (Workloads.Programs.find "li") in
  let results =
    List.filter_map
      (fun build -> Result.to_option (Reports.Measure.run_benchmark build b))
      Workloads.Suite.all_builds
  in
  Alcotest.(check int) "both builds measured" 2 (List.length results);
  let render f = Format.asprintf "%a" f results in
  List.iter
    (fun (name, f) ->
      let s = render f in
      Alcotest.(check bool) (name ^ " mentions li") true
        (let affix = "li" in
         let n = String.length affix and l = String.length s in
         let rec go i = i + n <= l && (String.sub s i n = affix || go (i + 1)) in
         go 0);
      Alcotest.(check bool) (name ^ " has a MEAN row") true
        (let affix = "MEAN" in
         let n = String.length affix and l = String.length s in
         let rec go i = i + n <= l && (String.sub s i n = affix || go (i + 1)) in
         go 0))
    [ ("fig3", Reports.Figures.fig3);
      ("fig5", Reports.Figures.fig5);
      ("fig6", Reports.Figures.fig6);
      ("gat", Reports.Figures.gat_table) ]

(* --- whole-pipeline invariants --- *)

let test_om_idempotent_outputs () =
  (* running the optimizer twice from the same resolved world gives
     byte-identical images (the pipeline is deterministic) *)
  let world =
    world_of {|var g = 3; func main() { io_putint(g * 2); return 0; }|}
  in
  let once = Result.get_ok (Om.optimize_resolved Om.Full world) in
  let twice = Result.get_ok (Om.optimize_resolved Om.Full world) in
  Alcotest.(check bool) "text identical" true
    (Bytes.equal once.Om.image.Linker.Image.text twice.Om.image.Linker.Image.text);
  Alcotest.(check bool) "data identical" true
    (Bytes.equal once.Om.image.Linker.Image.data twice.Om.image.Linker.Image.data)

let test_gat_slots_disjoint_after_om () =
  (* every literal displacement in the optimized image addresses a slot
     that holds either a constant or a valid program address *)
  let world =
    world_of
      {|var fp = 0;
        func f(x) { return x + 0x123456789ABCDEF; }
        func main() { fp = &f; io_putint(fp(1)); return 0; }|}
  in
  let { Om.image; _ } = Result.get_ok (Om.optimize_resolved Om.Full world) in
  let insns = Linker.Image.insns image in
  Array.iter
    (fun (p : Linker.Image.proc_info) ->
      let first = (p.entry - image.Linker.Image.text_base) / 4 in
      for k = first to first + (p.size / 4) - 1 do
        match insns.(k) with
        | I.Ldq { rb; disp; _ } when R.equal rb R.gp ->
            let a = p.gp_value + disp in
            if
              a >= image.Linker.Image.gat_base
              && a < image.Linker.Image.gat_base + image.Linker.Image.gat_bytes
            then begin
              let v =
                Bytes.get_int64_le image.Linker.Image.data
                  (a - image.Linker.Image.data_base)
              in
              let iv = Int64.to_int v in
              let is_text_addr =
                iv >= image.Linker.Image.text_base
                && iv < image.Linker.Image.text_base
                        + Bytes.length image.Linker.Image.text
              in
              Alcotest.(check bool) "slot holds constant or code address" true
                (is_text_addr || Int64.equal v 0x123456789ABCDEFL)
            end
        | _ -> ()
      done)
    image.Linker.Image.procs

let suite =
  ( "more",
    [ Alcotest.test_case "lexer maximal munch" `Quick test_lexer_tokens;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer rejections" `Quick test_lexer_rejects;
      Alcotest.test_case "operator precedence" `Quick test_precedence;
      Alcotest.test_case "data layout windows" `Quick test_datalayout_windows;
      Alcotest.test_case "GP heuristic reaches all slots" `Quick
        test_gp_heuristic;
      Alcotest.test_case "figure rendering" `Slow test_figures_render;
      Alcotest.test_case "optimizer determinism" `Quick
        test_om_idempotent_outputs;
      Alcotest.test_case "surviving GAT slots" `Quick
        test_gat_slots_disjoint_after_om ] )
