module I = Isa.Insn
module R = Isa.Reg
module O = Objfile

(* A small hand-built unit exercising every record kind. *)
let sample_unit () =
  let m = Minic.Masm.create "sample.o" in
  let entry = Minic.Masm.fresh_label m in
  let lo = Minic.Masm.fresh_id m in
  let gl = Minic.Masm.fresh_id m in
  Minic.Masm.add_proc m ~name:"f"
    [ Minic.Masm.Label entry;
      Minic.Masm.Gpsetup_hi { base = R.pv; anchor = entry; lo };
      Minic.Masm.Gpsetup_lo { id = lo };
      Minic.Masm.Gatload { id = gl; ra = R.t0; entry = O.Gat_entry.addr "g" };
      Minic.Masm.Lituse
        { insn = I.Ldq { ra = R.v0; rb = R.t0; disp = 0 }; load = gl; jsr = false };
      Minic.Masm.Insn (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 }) ];
  Minic.Masm.add_global m ~name:"g" ~section:`Sdata ~size_bytes:8
    ~init:[| 7L |] ();
  Minic.Masm.add_global m ~name:"ptr" ~section:`Data ~size_bytes:8
    ~refquads:[ (0, "f", 0) ] ();
  Minic.Masm.add_common m ~name:"blk" ~size_bytes:48;
  Minic.Masm.assemble m

let test_validate_ok () =
  match O.Cunit.validate (sample_unit ()) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "expected valid unit: %s" m

let test_symbols () =
  let u = sample_unit () in
  Alcotest.(check bool) "finds f" true (Option.is_some (O.Cunit.find_symbol u "f"));
  Alcotest.(check bool) "f is a proc" true
    (O.Symbol.is_proc (Option.get (O.Cunit.find_symbol u "f")));
  Alcotest.(check (list string)) "defined" [ "f"; "g"; "ptr"; "blk" ]
    (O.Cunit.defined_symbols u);
  Alcotest.(check (list string)) "undefined" [] (O.Cunit.undefined_symbols u)

let test_undefined_detection () =
  let m = Minic.Masm.create "u.o" in
  let gl = Minic.Masm.fresh_id m in
  Minic.Masm.add_proc m ~name:"f"
    [ Minic.Masm.Gatload { id = gl; ra = R.t0; entry = O.Gat_entry.addr "missing" };
      Minic.Masm.Insn (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 }) ];
  let u = Minic.Masm.assemble m in
  Alcotest.(check (list string)) "missing is undefined" [ "missing" ]
    (O.Cunit.undefined_symbols u)

let test_insn_roundtrip () =
  let u = sample_unit () in
  Alcotest.(check int) "insn count" 5 (O.Cunit.insn_count u);
  Alcotest.(check int) "decoded length" 5 (Array.length (O.Cunit.insns u))

let test_validate_rejects () =
  let u = sample_unit () in
  let bad_literal =
    { u with
      O.Cunit.relocs =
        O.Reloc.v ~section:O.Section.Text ~offset:20
          (O.Reloc.Literal { gat_index = 99 })
        :: u.O.Cunit.relocs }
  in
  Alcotest.(check bool) "bad GAT index rejected" true
    (Result.is_error (O.Cunit.validate bad_literal));
  let bad_offset =
    { u with
      O.Cunit.relocs =
        [ O.Reloc.v ~section:O.Section.Text ~offset:4096
            (O.Reloc.Literal { gat_index = 0 }) ] }
  in
  Alcotest.(check bool) "out-of-range reloc rejected" true
    (Result.is_error (O.Cunit.validate bad_offset));
  let bad_refquad =
    { u with
      O.Cunit.relocs =
        [ O.Reloc.v ~section:O.Section.Data ~offset:4
            (O.Reloc.Refquad { symbol = "f"; addend = 0 }) ] }
  in
  Alcotest.(check bool) "misaligned refquad rejected" true
    (Result.is_error (O.Cunit.validate bad_refquad))

let test_io_roundtrip () =
  let u = sample_unit () in
  match O.Obj_io.read (O.Obj_io.write u) with
  | Ok u' ->
      Alcotest.(check string) "name" u.O.Cunit.name u'.O.Cunit.name;
      Alcotest.(check bool) "text" true (Bytes.equal u.O.Cunit.text u'.O.Cunit.text);
      Alcotest.(check bool) "data" true (Bytes.equal u.O.Cunit.data u'.O.Cunit.data);
      Alcotest.(check int) "gat" (Array.length u.O.Cunit.gat)
        (Array.length u'.O.Cunit.gat);
      Alcotest.(check bool) "symbols" true (u.O.Cunit.symbols = u'.O.Cunit.symbols);
      Alcotest.(check bool) "relocs" true (u.O.Cunit.relocs = u'.O.Cunit.relocs)
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let test_io_rejects_garbage () =
  Alcotest.(check bool) "empty input" true
    (Result.is_error (O.Obj_io.read Bytes.empty));
  Alcotest.(check bool) "bad magic" true
    (Result.is_error (O.Obj_io.read (Bytes.of_string "XXXXGARBAGE")));
  let good = O.Obj_io.write (sample_unit ()) in
  let truncated = Bytes.sub good 0 (Bytes.length good - 3) in
  Alcotest.(check bool) "truncated input" true
    (Result.is_error (O.Obj_io.read truncated));
  let extended = Bytes.cat good (Bytes.of_string "xx") in
  Alcotest.(check bool) "trailing garbage" true
    (Result.is_error (O.Obj_io.read extended))

let prop_io_random_corruption =
  QCheck.Test.make ~name:"corrupted object files never crash the reader"
    ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, byte) ->
      let good = O.Obj_io.write (sample_unit ()) in
      let pos = pos_seed mod Bytes.length good in
      Bytes.set good pos (Char.chr (byte land 0xff));
      match O.Obj_io.read good with Ok _ | Error _ -> true)

let test_archive_select () =
  let mk name ~defines ~refs =
    let m = Minic.Masm.create name in
    let items =
      List.map
        (fun r ->
          let gl = Minic.Masm.fresh_id m in
          Minic.Masm.Gatload { id = gl; ra = R.t0; entry = O.Gat_entry.addr r })
        refs
      @ [ Minic.Masm.Insn (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 }) ]
    in
    Minic.Masm.add_proc m ~name:defines items;
    Minic.Masm.assemble m
  in
  let a = mk "a.o" ~defines:"fa" ~refs:[ "fb" ] in
  let b = mk "b.o" ~defines:"fb" ~refs:[] in
  let c = mk "c.o" ~defines:"fc" ~refs:[] in
  let archive = O.Archive.make ~name:"lib.a" [ a; b; c ] in
  let picked = O.Archive.select archive ~undefined:[ "fa" ] in
  Alcotest.(check (list string)) "pulls a and b transitively" [ "a.o"; "b.o" ]
    (List.map (fun (u : O.Cunit.t) -> u.name) picked);
  let none = O.Archive.select archive ~undefined:[ "zzz" ] in
  Alcotest.(check int) "nothing resolves zzz" 0 (List.length none)

let test_archive_io () =
  let archive =
    O.Archive.make ~name:"lib.a" [ sample_unit (); sample_unit () ]
  in
  match O.Obj_io.read_archive (O.Obj_io.write_archive archive) with
  | Ok a ->
      Alcotest.(check string) "name" "lib.a" a.O.Archive.name;
      Alcotest.(check int) "members" 2 (List.length a.O.Archive.members)
  | Error m -> Alcotest.failf "archive roundtrip failed: %s" m

let test_masm_rejects () =
  Alcotest.check_raises "dangling label"
    (Invalid_argument "undefined label 0") (fun () ->
      let m = Minic.Masm.create "bad.o" in
      let l = Minic.Masm.fresh_label m in
      Minic.Masm.add_proc m ~name:"f"
        [ Minic.Masm.Branch { insn = I.Br { ra = R.zero; disp = 0 }; target = l } ];
      ignore (Minic.Masm.assemble m));
  Alcotest.check_raises "initializer in bss"
    (Invalid_argument "Masm.add_global: initializer in a zero section")
    (fun () ->
      let m = Minic.Masm.create "bad.o" in
      Minic.Masm.add_global m ~name:"x" ~section:`Bss ~size_bytes:8
        ~init:[| 1L |] ())

let suite =
  ( "objfile",
    [ Alcotest.test_case "sample unit validates" `Quick test_validate_ok;
      Alcotest.test_case "symbol queries" `Quick test_symbols;
      Alcotest.test_case "undefined detection" `Quick test_undefined_detection;
      Alcotest.test_case "text decodes" `Quick test_insn_roundtrip;
      Alcotest.test_case "validation rejects bad relocs" `Quick
        test_validate_rejects;
      Alcotest.test_case "binary io roundtrip" `Quick test_io_roundtrip;
      Alcotest.test_case "reader rejects garbage" `Quick test_io_rejects_garbage;
      Alcotest.test_case "archive selection" `Quick test_archive_select;
      Alcotest.test_case "archive io" `Quick test_archive_io;
      Alcotest.test_case "masm rejects bad input" `Quick test_masm_rejects;
      Testutil.qtest prop_io_random_corruption ] )
