(* The runtime library's own behavior, exercised through compiled code. *)

let t = Testutil.check_output

let library_tests =
  [ t "iabs/imin/imax" "5 5 -3 7"
      {|func main() {
          io_putint(iabs(-5)); io_putchar(32);
          io_putint(iabs(5)); io_putchar(32);
          io_putint(imin(-3, 7)); io_putchar(32);
          io_putint(imax(-3, 7));
          return 0; }|};
    t "ipow" "1 8 1000000"
      {|func main() {
          io_putint(ipow(5, 0)); io_putchar(32);
          io_putint(ipow(2, 3)); io_putchar(32);
          io_putint(ipow(10, 6));
          return 0; }|};
    t "isqrt" "0 1 4 1000 759250124"
      {|func main() {
          io_putint(isqrt(0)); io_putchar(32);
          io_putint(isqrt(1)); io_putchar(32);
          io_putint(isqrt(16)); io_putchar(32);
          io_putint(isqrt(1000000)); io_putchar(32);
          io_putint(isqrt(0x7FFFFFFFFFFFFFF));
          return 0; }|};
    t "gcd" "6 1 42"
      {|func main() {
          io_putint(gcd(54, 24)); io_putchar(32);
          io_putint(gcd(17, 13)); io_putchar(32);
          io_putint(gcd(0, 42));
          return 0; }|};
    t "fixed-point basics" "196608 3 21845"
      {|func main() {
          io_putint(fx_of_int(3)); io_putchar(32);
          io_putint(fx_to_int(fx_mul(fx_of_int(2), 98304))); io_putchar(32);
          io_putint(fx_div(fx_of_int(1), fx_of_int(3)));
          return 0; }|};
    t "fx_sqrt is close" "2 9"
      {|func main() {
          io_putint(fx_to_int(fx_sqrt(fx_of_int(4)) + 32)); io_putchar(32);
          io_putint(fx_to_int(fx_sqrt(fx_of_int(81)) + 32));
          return 0; }|};
    t "fx_exp(1) near e" "173"
      {|func main() {
          // e*65536 = 178145 and the 8-term series gives ~177991;
          // >> 10 of either is 173
          io_putint(fx_exp(65536) >> 10);
          return 0; }|};
    t "fx_sin basics" "0"
      {|func main() { io_putint(fx_sin(0)); return 0; }|};
    t "string helpers" "3 0 -1 1"
      {|var buf[8];
        func main() {
          io_putint(qlen("abc")); io_putchar(32);
          io_putint(qcmp("abc", "abc")); io_putchar(32);
          var c = qcmp("abc", "abd");
          if (c < 0) { io_putint(-1); } else { io_putint(1); }
          io_putchar(32);
          qcpy(&buf, "zz");
          io_putint(qcmp(&buf, "zz") == 0);
          return 0; }|};
    t "qset and qmove" "7 7 7"
      {|var a[4];
        var b[4];
        func main() {
          qset(&a, 7, 4);
          qmove(&b, &a, 4);
          io_putint(b[0]); io_putchar(32);
          io_putint(b[1]); io_putchar(32);
          io_putint(b[3]);
          return 0; }|};
    t "sorting" "1 2 9"
      {|var xs[6] = { 9, 2, 5, 1, 7, 3 };
        func main() {
          sort_quads(&xs, 6);
          io_putint(xs[0]); io_putchar(32);
          io_putint(xs[1]); io_putchar(32);
          io_putint(xs[5]);
          return 0; }|};
    t "binary search" "3 -1"
      {|var xs[8] = { 1, 3, 5, 7, 9, 11, 13, 15 };
        func main() {
          io_putint(bsearch_quads(&xs, 8, 7)); io_putchar(32);
          io_putint(bsearch_quads(&xs, 8, 8));
          return 0; }|};
    t "apply_fn through a procedure variable" "2 4 6"
      {|var xs[3] = { 1, 2, 3 };
        func dbl(x) { return x * 2; }
        func main() {
          apply_fn(&xs, 3, &dbl);
          io_putint(xs[0]); io_putchar(32);
          io_putint(xs[1]); io_putchar(32);
          io_putint(xs[2]);
          return 0; }|};
    t "fold_fn" "10"
      {|var xs[4] = { 1, 2, 3, 4 };
        func add(acc, x) { return acc + x; }
        func main() {
          io_putint(fold_fn(&xs, 4, &add, 0));
          return 0; }|};
    t "prng is deterministic" "1"
      {|func main() {
          srand(12345);
          var a = randq();
          srand(12345);
          var b = randq();
          io_putint(a == b);
          return 0; }|};
    t "rand_range bounds" "1"
      {|func main() {
          srand(9);
          var ok = 1;
          var i = 0;
          while (i < 200) {
            var r = rand_range(17);
            if (r < 0 || r >= 17) { ok = 0; }
            i = i + 1;
          }
          io_putint(ok);
          return 0; }|};
    t "allocation accounting" "9"
      {|func main() {
          alloc(4);
          alloc(5);
          io_putint(alloc_total());
          return 0; }|};
    t "io_put_labeled format" "x=42\n"
      {|func main() { io_put_labeled("x", 42); return 0; }|}
  ]

(* Every library module passes Cunit validation. *)
let test_libstd_validates () =
  let archive = Runtime.libstd () in
  List.iter
    (fun (u : Objfile.Cunit.t) ->
      match Objfile.Cunit.validate u with
      | Ok () -> ()
      | Error m -> Alcotest.failf "libstd member invalid: %s" m)
    archive.Objfile.Archive.members

(* crt0 passes main's return through the exit system call. *)
let test_crt0_exit_path () =
  Alcotest.(check int64) "exit code" 7L
    (Testutil.run_src_exit {|func main() { return 7; }|})

(* library-to-library calls: io_put_labeled -> io_puts -> io_putchar *)
let test_library_call_chain () =
  let world =
    match
      Linker.Resolve.run
        [ Testutil.compile {|func main() { io_put_labeled("k", 1); return 0; }|} ]
        ~archives:[ Runtime.libstd () ]
    with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve: %s" m
  in
  let io_module =
    Array.to_list world.Linker.Resolve.modules
    |> List.exists (fun (u : Objfile.Cunit.t) -> u.name = "io.o")
  in
  Alcotest.(check bool) "io.o is linked in" true io_module

let prop_divq_random =
  QCheck.Test.make ~name:"__divq/__remq agree with Int64 division on extremes"
    ~count:25
    QCheck.(
      pair
        (oneofl
           [ 0L; 1L; -1L; 63L; -63L; 1000000007L; -987654321L;
             4611686018427387903L; -4611686018427387904L ])
        (oneofl [ 1L; -1L; 2L; -2L; 7L; -7L; 1000003L; -999983L ]))
    (fun (a, b) ->
      let src =
        Printf.sprintf
          {|func main() {
             io_putint(%Ld / (%Ld)); io_putchar(32);
             io_putint(%Ld %% (%Ld));
             return 0; }|}
          a b a b
      in
      let expected = Printf.sprintf "%Ld %Ld" (Int64.div a b) (Int64.rem a b) in
      String.equal expected (Testutil.run_src src))

let suite =
  ( "runtime",
    library_tests
    @ [ Alcotest.test_case "libstd members validate" `Quick
          test_libstd_validates;
        Alcotest.test_case "crt0 exit path" `Quick test_crt0_exit_path;
        Alcotest.test_case "library call chain" `Quick test_library_call_chain;
        Testutil.qtest prop_divq_random ] )
