(* Shared helpers for the test suites. *)

let compile ?(opt = Minic.Driver.O2) ?(name = "test.o") src =
  Minic.Driver.compile_module ~opt ~prelude:Runtime.prelude ~name src

let link_std ?(extra = []) units =
  match Linker.Link.link (units @ extra) ~archives:[ Runtime.libstd () ] with
  | Ok image -> image
  | Error m -> Alcotest.failf "link failed: %s" m

let run_image image =
  match Machine.Cpu.run image with
  | Ok o -> o
  | Error e -> Alcotest.failf "simulation fault: %a" Machine.Cpu.pp_error e

(* Compile one source module, link with libstd, run, return output. *)
let run_src ?opt src =
  let image = link_std [ compile ?opt src ] in
  (run_image image).Machine.Cpu.output

let run_src_exit ?opt src =
  let image = link_std [ compile ?opt src ] in
  (run_image image).Machine.Cpu.exit_code

(* Run a source at every OM level and assert all outputs equal the
   standard link's; returns (output, per-level outputs). *)
let run_all_levels ?opt src =
  let unit = compile ?opt src in
  let world =
    match Linker.Resolve.run [ unit ] ~archives:[ Runtime.libstd () ] with
    | Ok w -> w
    | Error m -> Alcotest.failf "resolve failed: %s" m
  in
  let std =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> Alcotest.failf "standard link failed: %s" m
  in
  let base = (run_image std).Machine.Cpu.output in
  List.iter
    (fun level ->
      match Om.optimize_resolved level world with
      | Error m -> Alcotest.failf "%s failed: %s" (Om.level_name level) m
      | Ok { Om.image; _ } ->
          let out = (run_image image).Machine.Cpu.output in
          Alcotest.(check string)
            (Printf.sprintf "output agrees under %s" (Om.level_name level))
            base out)
    Om.all_levels;
  base

let om_link ?(level = Om.Full) units =
  match Om.link ~level units ~archives:[ Runtime.libstd () ] with
  | Ok r -> r
  | Error m -> Alcotest.failf "om link failed: %s" m

let check_output name expected src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) "program output" expected (run_src src))

let qtest = QCheck_alcotest.to_alcotest
