(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), and carries one Bechamel micro-benchmark per
   exhibit measuring the machinery that produces it.

   Usage:
     bench/main.exe            regenerate all figures (the full matrix)
     bench/main.exe fig3       one figure: fig3 fig4 fig5 fig6 fig7 gat
     bench/main.exe summary    headline numbers vs. the paper
     bench/main.exe micro      run the Bechamel micro-benchmarks only
     bench/main.exe batch      full simulation matrix in parallel; MIPS +
                               block-cache summary, nonzero exit on failure
     bench/main.exe fuzz       differential-fuzzer throughput (cases/sec)
     bench/main.exe relink     cold vs warm link-service relink times
     bench/main.exe load       concurrent daemon load test (see --profile);
                               merges the result into BENCH_report.json
     bench/main.exe quick      figures from a 5-benchmark subset
     bench/main.exe check-report   validate BENCH_report.json parses
     bench/main.exe compare OLD NEW   perf-regression gate between reports

   A trailing "-j N" caps the measurement pool at N domains (default:
   the host's recommended count; OMLT_JOBS also overrides). Parallel
   runs produce bit-identical matrices — only wall clock changes.

   "quick" and "all" also write BENCH_report.json — the schema-versioned
   machine-readable form of the matrix (per-benchmark, per-level cycles,
   cycle-attribution buckets and host throughput; see Obs.Report). *)

let quick_subset = [ "alvinn"; "compress"; "li"; "tomcatv"; "spice" ]

let selected_benchmarks quick =
  if quick then
    List.filter_map Workloads.Programs.find quick_subset
  else Workloads.Programs.all

(* --- the measurement matrix --- *)

let jobs : int option ref = ref None

type rows =
  (Workloads.Programs.benchmark
  * Workloads.Suite.build
  * (Reports.Measure.result, string) result)
  list

let build_matrix quick : rows =
  let progress =
    { Reports.Runner.on_start =
        (fun b build ->
          Printf.eprintf "[bench] measuring %-10s %-12s\n%!" b.name
            (Workloads.Suite.build_name build));
      on_done =
        (fun b build r ->
          match r with
          | Ok r ->
              if not r.Reports.Measure.outputs_agree then
                Printf.eprintf "[bench] WARNING: %s/%s outputs disagree!\n%!"
                  b.name
                  (Workloads.Suite.build_name build)
          | Error m ->
              Printf.eprintf "[bench] %s/%s failed: %s\n%!" b.name
                (Workloads.Suite.build_name build) m) }
  in
  Reports.Runner.matrix ?jobs:!jobs ~progress (selected_benchmarks quick)

let matrix_cache : rows option ref = ref None

let rows quick =
  match !matrix_cache with
  | Some m -> m
  | None ->
      let m = build_matrix quick in
      matrix_cache := Some m;
      m

let matrix quick : Reports.Figures.matrix = Reports.Runner.results (rows quick)

let timings quick =
  List.filter_map
    (fun (b : Workloads.Programs.benchmark) ->
      Printf.eprintf "[bench] timing %-10s\r%!" b.name;
      match Reports.Measure.time_builds b with
      | Ok t -> Some (b.name, t)
      | Error m ->
          Printf.eprintf "[bench] timing %s failed: %s\n%!" b.name m;
          None)
    (selected_benchmarks quick)

(* bench wants the world or a failure message, not a result to thread *)
let world_of_exn build b =
  match Workloads.Suite.compile_cached build b with
  | Ok w -> w
  | Error m -> failwith m

(* --- Bechamel micro-benchmarks: one per table/figure --- *)

let micro () =
  let open Bechamel in
  let li = Option.get (Workloads.Programs.find "li") in
  let world = world_of_exn Workloads.Suite.Compile_each li in
  let om level () =
    match Om.optimize_resolved level world with
    | Ok _ -> ()
    | Error m -> failwith m
  in
  let std_image =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> failwith m
  in
  let tests =
    [ (* Figures 3-5 are produced by the static transformation passes *)
      Test.make ~name:"fig3/om-simple-pass" (Staged.stage (om Om.Simple));
      Test.make ~name:"fig4/om-full-pass" (Staged.stage (om Om.Full));
      Test.make ~name:"fig5/om-full-sched-pass" (Staged.stage (om Om.Full_sched));
      Test.make ~name:"gc/om-gc-pass" (Staged.stage (om Om.Gc));
      (* Figure 6 requires simulating the linked program: the fused
         superinstruction path (what the harness runs), the unfused
         per-instruction loop, and the symbolic reference *)
      Test.make ~name:"fig6/simulate-li-fused"
        (Staged.stage
           (let d =
              match Machine.Cpu.decode std_image with
              | Ok d -> d
              | Error _ -> failwith "decode"
            in
            let blocks = Machine.Blocks.create d in
            fun () ->
              match Machine.Cpu.run_decoded ~blocks d with
              | Ok _ -> ()
              | Error _ -> failwith "fault"));
      Test.make ~name:"fig6/simulate-li"
        (Staged.stage
           (let d =
              match Machine.Cpu.decode std_image with
              | Ok d -> d
              | Error _ -> failwith "decode"
            in
            fun () ->
              match Machine.Cpu.run_decoded_unfused d with
              | Ok _ -> ()
              | Error _ -> failwith "fault"));
      Test.make ~name:"fig6/simulate-li-reference"
        (Staged.stage (fun () ->
             match Machine.Cpu.run_reference std_image with
             | Ok _ -> ()
             | Error _ -> failwith "fault"));
      (* Figure 7's columns: the competing build paths *)
      Test.make ~name:"fig7/standard-link"
        (Staged.stage (fun () ->
             match Linker.Link.link_resolved world with
             | Ok _ -> ()
             | Error m -> failwith m));
      Test.make ~name:"fig7/om-noopt" (Staged.stage (om Om.No_opt));
      (* the GAT table comes from the same full pass over a merged build *)
      Test.make ~name:"gat/om-full-compile-all"
        (Staged.stage
           (let w = world_of_exn Workloads.Suite.Compile_all li in
            fun () ->
              match Om.optimize_resolved Om.Full w with
              | Ok _ -> ()
              | Error m -> failwith m)) ]
  in
  let grouped = Test.make_grouped ~name:"omlt" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Bechamel micro-benchmarks (monotonic clock, ns/run):\n";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "  %-28s %12.0f ns\n" name est
         | _ -> Printf.printf "  %-28s (no estimate)\n" name);
  (* host throughput of the two interpreters on the same image *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let insns_of = function
    | Ok (o : Machine.Cpu.outcome) -> o.Machine.Cpu.stats.Machine.Cpu.insns
    | Error _ -> 0
  in
  let mips insns t = if t > 0. then float_of_int insns /. t /. 1e6 else 0. in
  let d =
    match Machine.Cpu.decode std_image with
    | Ok d -> d
    | Error _ -> failwith "decode"
  in
  let blocks = Machine.Blocks.create d in
  ignore (Machine.Cpu.run_decoded ~blocks d) (* warm the executor cache *);
  let r_fused, t_fused =
    time (fun () -> Machine.Cpu.run_decoded ~blocks d)
  in
  let r_fast, t_fast = time (fun () -> Machine.Cpu.run_decoded_unfused d) in
  let r_ref, t_ref = time (fun () -> Machine.Cpu.run_reference std_image) in
  Printf.printf "\nHost throughput (li, standard image, simulated MIPS):\n";
  Printf.printf "  %-22s %8.2f MIPS  (%.3f s wall)\n" "fused (superinsn)"
    (mips (insns_of r_fused) t_fused) t_fused;
  Printf.printf "  %-22s %8.2f MIPS  (%.3f s wall)\n" "decoded (unfused)"
    (mips (insns_of r_fast) t_fast) t_fast;
  Printf.printf "  %-22s %8.2f MIPS  (%.3f s wall)\n" "reference interpreter"
    (mips (insns_of r_ref) t_ref) t_ref;
  if t_fused > 0. then begin
    Printf.printf "  fused vs decoded:    %8.2fx\n" (t_fast /. t_fused);
    Printf.printf "  fused vs reference:  %8.2fx\n" (t_ref /. t_fused)
  end

(* --- batch: the full simulation matrix as a parallel throughput suite ---

   Every benchmark x build x level simulation, spread over the
   measurement pool, with one fused-executor cache per distinct image
   (shared across domains through [Reports.Measure.decode_cached]).
   Prints per-row and aggregate simulated MIPS plus the block-cache and
   dispatch counters, and exits nonzero on any row failure or output
   disagreement — the CI smoke for the fused path under parallelism. *)

let batch () =
  let t0 = Unix.gettimeofday () in
  let rows = build_matrix false in
  let wall = Unix.gettimeofday () -. t0 in
  let failures = ref 0 and disagreements = ref 0 in
  let total_insns = ref 0 and total_sim_s = ref 0. and nruns = ref 0 in
  Printf.printf "%-10s %-12s %5s %10s %9s %6s\n" "program" "build" "runs"
    "Minsns" "MIPS" "agree";
  List.iter
    (fun ((b : Workloads.Programs.benchmark), build, r) ->
      match r with
      | Error m ->
          incr failures;
          Printf.printf "%-10s %-12s FAILED: %s\n" b.name
            (Workloads.Suite.build_name build) m
      | Ok (r : Reports.Measure.result) ->
          let walls =
            r.Reports.Measure.std_wall_s
            :: List.map
                 (fun (run : Reports.Measure.run) -> run.Reports.Measure.wall_s)
                 r.Reports.Measure.runs
          in
          let insns =
            r.Reports.Measure.std_insns
            + List.fold_left
                (fun a (run : Reports.Measure.run) ->
                  a + run.Reports.Measure.insns)
                0 r.Reports.Measure.runs
          in
          let sim_s = List.fold_left ( +. ) 0. walls in
          let mips =
            if sim_s > 0. then float_of_int insns /. sim_s /. 1e6 else 0.
          in
          if not r.Reports.Measure.outputs_agree then incr disagreements;
          total_insns := !total_insns + insns;
          total_sim_s := !total_sim_s +. sim_s;
          nruns := !nruns + List.length walls;
          Printf.printf "%-10s %-12s %5d %10.1f %9.1f %6s\n"
            r.Reports.Measure.bench
            (Workloads.Suite.build_name build)
            (List.length walls)
            (float_of_int insns /. 1e6)
            mips
            (if r.Reports.Measure.outputs_agree then "yes" else "NO"))
    rows;
  let agg =
    if !total_sim_s > 0. then float_of_int !total_insns /. !total_sim_s /. 1e6
    else 0.
  in
  Printf.printf
    "\n%d simulations, %.1f Minsns, %.1f s simulating (%.1f s wall): %.1f \
     MIPS aggregate\n"
    !nruns
    (float_of_int !total_insns /. 1e6)
    !total_sim_s wall agg;
  let c = Machine.Blocks.counters () in
  let fused, fallback = Machine.Cpu.dispatch_counts () in
  Printf.printf
    "block cache: %d hits, %d misses, %d executors fused; dispatch: %d \
     fused, %d fallback runs\n"
    c.Machine.Blocks.hits c.Machine.Blocks.misses c.Machine.Blocks.built fused
    fallback;
  if !failures > 0 || !disagreements > 0 then begin
    Printf.eprintf "[bench] batch: %d failure(s), %d output disagreement(s)\n%!"
      !failures !disagreements;
    exit 1
  end

(* --- fuzz throughput: how fast the differential fuzzer burns cases --- *)

let fuzz_throughput () =
  let seed = 7 and count = 40 in
  let t0 = Unix.gettimeofday () in
  let nodes = ref 0 in
  for index = 0 to count - 1 do
    let p = Fuzz.Gen.program (Fuzz.case_seed ~seed ~index) in
    nodes := !nodes + Fuzz.Prog.size p;
    ignore (Fuzz.Prog.render p)
  done;
  let t_gen = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let r = Fuzz.campaign ?jobs:!jobs ~out_dir:None ~seed ~count () in
  let t_all = Unix.gettimeofday () -. t0 in
  Printf.printf "Fuzz throughput (%d cases, seed %d, avg %d AST nodes):\n"
    count seed (!nodes / count);
  Printf.printf "  generate + render    %8.1f cases/s\n"
    (float_of_int count /. t_gen);
  Printf.printf "  all three oracles    %8.1f cases/s\n"
    (float_of_int count /. t_all);
  if r.Fuzz.failed <> [] then begin
    Printf.eprintf "[bench] fuzz found %d failure(s)!\n%!"
      (List.length r.Fuzz.failed);
    exit 1
  end

(* --- ablation: price each OM-full feature by turning it off --- *)

let ablation () =
  let benches = [ "li"; "compress"; "tomcatv"; "hydro2d"; "spice" ] in
  let variants =
    let d = Om.Transform.default_options in
    [ ("all-on", d);
      ("-calls", { d with Om.Transform.opt_calls = false });
      ("-addr", { d with Om.Transform.opt_addr = false });
      ("-setup-motion", { d with Om.Transform.opt_setup_motion = false });
      ("-setup-deletion", { d with Om.Transform.opt_setup_deletion = false }) ]
  in
  Printf.printf
    "Ablation: dynamic %% improvement of OM-full over a standard link,
     with one transformation disabled per column (compile-each):

";
  Printf.printf "%-10s" "program";
  List.iter (fun (n, _) -> Printf.printf " %15s" n) variants;
  print_newline ();
  List.iter
    (fun name ->
      match Workloads.Programs.find name with
      | None -> ()
      | Some b ->
          let world = world_of_exn Workloads.Suite.Compile_each b in
          let std = Result.get_ok (Linker.Link.link_resolved world) in
          let base =
            match Machine.Cpu.run std with
            | Ok o -> o.Machine.Cpu.stats.Machine.Cpu.cycles
            | Error _ -> failwith "baseline fault"
          in
          let std_out =
            match Machine.Cpu.run std with
            | Ok o -> o.Machine.Cpu.output
            | Error _ -> ""
          in
          Printf.printf "%-10s" name;
          List.iter
            (fun (_, opts) ->
              match Om.optimize_resolved ~transform_options:opts Om.Full world with
              | Ok { Om.image; _ } -> (
                  match Machine.Cpu.run image with
                  | Ok o ->
                      assert (String.equal o.Machine.Cpu.output std_out);
                      Printf.printf " %14.2f%%"
                        (100.
                        *. float_of_int (base - o.Machine.Cpu.stats.Machine.Cpu.cycles)
                        /. float_of_int base)
                  | Error _ -> Printf.printf " %15s" "FAULT")
              | Error m -> Printf.printf " %15s" m)
            variants;
          print_newline ())
    benches

(* --- cold vs warm relink through the link service (schema v3) --- *)

let relink_rows quick =
  List.filter_map
    (fun (b : Workloads.Programs.benchmark) ->
      Printf.eprintf "[bench] relink %-10s\r%!" b.name;
      match Server.Engine.relink_timings b with
      | Ok r -> Some (b.name, r)
      | Error m ->
          Printf.eprintf "[bench] relink %s failed: %s\n%!" b.name m;
          None)
    (selected_benchmarks quick)

let print_relink quick =
  let rows = relink_rows quick in
  Printf.printf
    "Link-service build times: cold (empty store) vs warm relink after a\n\
     one-module edit (every unchanged lift served from the artifact store):\n\n";
  Printf.printf "%-10s %10s %10s %8s\n" "program" "cold (ms)" "warm (ms)"
    "speedup";
  List.iter
    (fun (name, (r : Obs.Report.relink)) ->
      Printf.printf "%-10s %10.2f %10.2f %7.1fx\n" name (1e3 *. r.cold_s)
        (1e3 *. r.warm_s)
        (if r.warm_s > 0. then r.cold_s /. r.warm_s else 0.))
    rows

(* --- machine-readable report (the perf trajectory) --- *)

let report_path = "BENCH_report.json"

let write_report quick =
  let rows = rows quick in
  Printf.eprintf "[bench] profiling for cycle attribution...\n%!";
  let report =
    Reports.Runner.report ?jobs:!jobs ~attribution:true ~tool:"omlt-bench" rows
  in
  Printf.eprintf "[bench] timing cold vs warm relinks...\n%!";
  let relinks = relink_rows quick in
  let report =
    { report with
      Obs.Report.results =
        List.map
          (fun (b : Obs.Report.bench) ->
            match List.assoc_opt b.Obs.Report.bench relinks with
            | Some r -> { b with Obs.Report.relink = Some r }
            | None -> b)
          report.Obs.Report.results }
  in
  Obs.Report.write report_path report;
  Printf.eprintf "[bench] wrote %s (schema v%d, %d results)\n%!" report_path
    report.Obs.Report.version
    (List.length report.Obs.Report.results)

(* --- load: the concurrent link-service load test (schema v6) ---

   Spawns a hermetic daemon (in-memory store, its own registry) with the
   pool shape from -j, fires a seeded request mix at it from concurrent
   client threads, checks every reply byte-for-byte against a serial
   oracle, and merges the result into BENCH_report.json as the v6 [load]
   record. Exits nonzero on any hard failure, mismatch, or (with
   --p99-max-ms) a latency-ceiling breach — the CI smoke for the
   concurrent daemon. *)

let load_usage () =
  Printf.eprintf
    "usage: bench load [--profile cold|dup|mixed] [--clients N]\n\
    \        [--requests N] [--queue-limit N] [--seed N] [--retries N]\n\
    \        [--level L] [--p99-max-ms X] [--no-report] [-j N]\n";
  exit 2

let run_load args =
  let spec = ref { Load.default_spec with requests = 48; retries = 4 } in
  let queue_limit = ref None in
  let p99_max_ms = ref None in
  let write_report = ref true in
  let rec parse = function
    | [] -> ()
    | "--profile" :: v :: rest -> (
        match Load.profile_of_string v with
        | Ok p ->
            spec := { !spec with Load.profile = p };
            parse rest
        | Error m ->
            Printf.eprintf "%s\n" m;
            load_usage ())
    | "--clients" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            spec := { !spec with Load.clients = n };
            parse rest
        | _ -> load_usage ())
    | "--requests" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            spec := { !spec with Load.requests = n };
            parse rest
        | _ -> load_usage ())
    | "--queue-limit" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            queue_limit := Some n;
            parse rest
        | _ -> load_usage ())
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
            spec := { !spec with Load.seed = n };
            parse rest
        | _ -> load_usage ())
    | "--retries" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
            spec := { !spec with Load.retries = n };
            parse rest
        | _ -> load_usage ())
    | "--level" :: v :: rest ->
        spec := { !spec with Load.level = v };
        parse rest
    | "--p99-max-ms" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x when x > 0. ->
            p99_max_ms := Some x;
            parse rest
        | _ -> load_usage ())
    | "--no-report" :: rest ->
        write_report := false;
        parse rest
    | _ -> load_usage ()
  in
  parse args;
  let spec = !spec in
  Printf.eprintf "[bench] load: %s mix, %d requests, %d clients, -j %s\n%!"
    (Load.profile_name spec.Load.profile)
    spec.Load.requests spec.Load.clients
    (match !jobs with Some n -> string_of_int n | None -> "auto");
  match Load.run_selfhosted ?workers:!jobs ?queue_limit:!queue_limit spec with
  | Error m ->
      Printf.eprintf "[bench] load failed: %s\n%!" m;
      exit 1
  | Ok r ->
      List.iter print_endline (Load.summary_lines r);
      List.iter (Printf.printf "  failure: %s\n") r.Load.r_failures;
      if !write_report then begin
        (match Obs.Report.read report_path with
        | Ok report ->
            Obs.Report.write report_path
              { report with
                Obs.Report.version = Obs.Report.schema_version;
                load = Some (Load.to_report_load r) };
            Printf.eprintf "[bench] merged load result into %s (schema v%d)\n%!"
              report_path Obs.Report.schema_version
        | Error _ ->
            Printf.eprintf
              "[bench] no parseable %s to merge into (run \"bench quick\" \
               first)\n%!"
              report_path)
      end;
      let p99_ms = float_of_int (Load.quantile_us r 0.99) /. 1000. in
      let bad = ref false in
      if r.Load.r_ok <> r.Load.r_requests then begin
        Printf.eprintf "[bench] load: only %d of %d requests succeeded\n%!"
          r.Load.r_ok r.Load.r_requests;
        bad := true
      end;
      if r.Load.r_mismatched > 0 then begin
        Printf.eprintf "[bench] load: %d replies differ from the oracle!\n%!"
          r.Load.r_mismatched;
        bad := true
      end;
      (match !p99_max_ms with
      | Some ceiling when p99_ms > ceiling ->
          Printf.eprintf "[bench] load: p99 %.1f ms over the %.1f ms ceiling\n%!"
            p99_ms ceiling;
          bad := true
      | _ -> ());
      if !bad then exit 1

(* smoke check: does the written report parse back through the schema
   reader, and does it carry the v6 payload? (CI runs this after
   "quick" and "load".) *)
let check_report () =
  match Obs.Report.read report_path with
  | Ok r ->
      let hosted =
        List.for_all
          (fun (b : Obs.Report.bench) ->
            b.Obs.Report.std_host <> None
            && List.for_all
                 (fun (run : Obs.Report.run) -> run.Obs.Report.host <> None)
                 b.Obs.Report.runs)
          r.Obs.Report.results
      in
      let sized =
        List.for_all
          (fun (b : Obs.Report.bench) ->
            b.Obs.Report.std_size <> None
            && List.for_all
                 (fun (run : Obs.Report.run) -> run.Obs.Report.size <> None)
                 b.Obs.Report.runs)
          r.Obs.Report.results
      in
      let quantiled =
        match r.Obs.Report.latency with
        | Some q -> q.Obs.Report.q_count > 0
        | None -> false
      in
      let has_metrics = r.Obs.Report.metrics <> None in
      let loaded =
        match r.Obs.Report.load with
        | Some l ->
            l.Obs.Report.l_ok > 0 && l.Obs.Report.l_mismatched = 0
            && l.Obs.Report.l_latency.Obs.Report.q_count > 0
        | None -> false
      in
      Printf.printf
        "%s: OK (schema v%d, %d results, host throughput %s, latency \
         quantiles %s, metrics snapshot %s, image sizes %s, load result %s)\n"
        report_path r.Obs.Report.version
        (List.length r.Obs.Report.results)
        (if hosted then "present" else "MISSING")
        (if quantiled then "present" else "MISSING")
        (if has_metrics then "present" else "MISSING")
        (if sized then "present" else "MISSING")
        (if loaded then "present" else "MISSING");
      if r.Obs.Report.version < 6 then begin
        Printf.eprintf "%s: expected schema v6, found v%d\n" report_path
          r.Obs.Report.version;
        exit 1
      end;
      if not (hosted && quantiled && has_metrics && sized && loaded) then
        exit 1
  | Error m ->
      Printf.eprintf "%s: FAILED to parse: %s\n" report_path m;
      exit 1

(* --- compare: the perf-regression gate ---

   compare OLD.json NEW.json fails (exit 1) when NEW regresses past the
   thresholds: simulated cycles and om improvement gate by default;
   host-dependent MIPS/relink timings gate only when their flags are
   given. *)

let compare_usage () =
  Printf.eprintf
    "usage: bench compare OLD.json NEW.json [--max-cycle-pct X]\n\
    \        [--max-improvement-pts X] [--max-mips-pct X] [--min-mips X]\n\
    \        [--max-relink-pct X] [--max-size-pct X]\n";
  exit 2

let compare_reports args =
  let rec parse (t : Obs.Compare.thresholds) = function
    | [] -> t
    | "--max-cycle-pct" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x -> parse { t with Obs.Compare.max_cycle_regress_pct = x } rest
        | None -> compare_usage ())
    | "--max-improvement-pts" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x ->
            parse { t with Obs.Compare.max_improvement_drop_pts = x } rest
        | None -> compare_usage ())
    | "--max-mips-pct" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x -> parse { t with Obs.Compare.max_mips_drop_pct = Some x } rest
        | None -> compare_usage ())
    | "--min-mips" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x -> parse { t with Obs.Compare.min_mips = Some x } rest
        | None -> compare_usage ())
    | "--max-relink-pct" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x ->
            parse { t with Obs.Compare.max_relink_regress_pct = Some x } rest
        | None -> compare_usage ())
    | "--max-size-pct" :: v :: rest -> (
        match float_of_string_opt v with
        | Some x -> parse { t with Obs.Compare.max_size_regress_pct = x } rest
        | None -> compare_usage ())
    | _ -> compare_usage ()
  in
  match args with
  | old_path :: new_path :: rest -> (
      let thresholds = parse Obs.Compare.default_thresholds rest in
      let read path =
        match Obs.Report.read path with
        | Ok r -> r
        | Error m ->
            Printf.eprintf "%s: %s\n" path m;
            exit 2
      in
      let old_r = read old_path and new_r = read new_path in
      let outcome = Obs.Compare.compare ~thresholds ~old_r ~new_r () in
      Format.printf "%a@." Obs.Compare.pp_outcome outcome;
      if Obs.Compare.ok outcome then
        Printf.printf "PASS: no threshold-exceeding regressions\n"
      else begin
        Printf.printf "FAIL: %d regression(s) past thresholds\n"
          (List.length outcome.Obs.Compare.regressions);
        exit 1
      end)
  | _ -> compare_usage ()

(* --- driver --- *)

let print_figures quick which =
  let ppf = Format.std_formatter in
  let m = lazy (matrix quick) in
  let show name f =
    if which = "all" || which = name then begin
      f ppf (Lazy.force m);
      Format.fprintf ppf "@.@."
    end
  in
  show "fig3" Reports.Figures.fig3;
  show "fig4" Reports.Figures.fig4;
  show "fig5" Reports.Figures.fig5;
  show "fig6" Reports.Figures.fig6;
  show "gat" Reports.Figures.gat_table;
  if which = "all" || which = "fig7" then begin
    Reports.Figures.fig7 ppf (timings quick);
    Format.fprintf ppf "@.@."
  end;
  show "summary" Reports.Figures.summary

(* strip "-j N" (or "-jN") anywhere in argv; whatever remains is the
   command word *)
let parse_args () =
  let rec go acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := Some n;
            go acc rest
        | _ ->
            Printf.eprintf "bad -j argument %S (expected a positive int)\n" n;
            exit 2)
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" -> (
        match int_of_string_opt (String.sub a 2 (String.length a - 2)) with
        | Some n when n >= 1 ->
            jobs := Some n;
            go acc rest
        | _ ->
            Printf.eprintf "bad argument %S\n" a;
            exit 2)
    | a :: rest -> go (a :: acc) rest
  in
  go [] (List.tl (Array.to_list Sys.argv))

let () =
  let args = parse_args () in
  let cmd = match args with [] -> "all" | c :: _ -> c in
  match cmd with
  | "compare" -> compare_reports (List.tl args)
  | "load" -> run_load (List.tl args)
  | "batch" -> batch ()
  | "micro" -> micro ()
  | "fuzz" -> fuzz_throughput ()
  | "ablation" -> ablation ()
  | "relink" -> print_relink true
  | "check-report" -> check_report ()
  | "quick" ->
      print_figures true "all";
      write_report true
  | ("fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "gat" | "summary") as w ->
      print_figures false w
  | "all" ->
      print_figures false "all";
      write_report false;
      ablation ();
      print_newline ();
      micro ()
  | other ->
      Printf.eprintf
        "unknown argument %s (expected fig3..fig7, gat, summary, quick, batch, \
         micro, fuzz, ablation, relink, load, check-report, compare, all)\n"
        other;
      exit 2
