(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), and carries one Bechamel micro-benchmark per
   exhibit measuring the machinery that produces it.

   Usage:
     bench/main.exe            regenerate all figures (the full matrix)
     bench/main.exe fig3       one figure: fig3 fig4 fig5 fig6 fig7 gat
     bench/main.exe summary    headline numbers vs. the paper
     bench/main.exe micro      run the Bechamel micro-benchmarks only
     bench/main.exe quick      figures from a 5-benchmark subset

   "quick" and "all" also write BENCH_report.json — the schema-versioned
   machine-readable form of the matrix (per-benchmark, per-level cycles
   and cycle-attribution buckets; see Obs.Report). *)

let quick_subset = [ "alvinn"; "compress"; "li"; "tomcatv"; "spice" ]

let selected_benchmarks quick =
  if quick then
    List.filter_map Workloads.Programs.find quick_subset
  else Workloads.Programs.all

(* --- the measurement matrix --- *)

let build_matrix quick : Reports.Figures.matrix =
  let benches = selected_benchmarks quick in
  List.concat_map
    (fun (b : Workloads.Programs.benchmark) ->
      List.filter_map
        (fun build ->
          Printf.eprintf "[bench] measuring %-10s %-12s\r%!" b.name
            (Workloads.Suite.build_name build);
          match Reports.Measure.run_benchmark build b with
          | Ok r ->
              if not r.Reports.Measure.outputs_agree then
                Printf.eprintf "[bench] WARNING: %s/%s outputs disagree!\n%!"
                  b.name
                  (Workloads.Suite.build_name build);
              Some r
          | Error m ->
              Printf.eprintf "[bench] %s/%s failed: %s\n%!" b.name
                (Workloads.Suite.build_name build) m;
              None)
        Workloads.Suite.all_builds)
    benches

let matrix_cache : Reports.Figures.matrix option ref = ref None

let matrix quick =
  match !matrix_cache with
  | Some m -> m
  | None ->
      let m = build_matrix quick in
      Printf.eprintf "\n%!";
      matrix_cache := Some m;
      m

let timings quick =
  List.map
    (fun (b : Workloads.Programs.benchmark) ->
      Printf.eprintf "[bench] timing %-10s\r%!" b.name;
      (b.name, Reports.Measure.time_builds b))
    (selected_benchmarks quick)

(* --- Bechamel micro-benchmarks: one per table/figure --- *)

let micro () =
  let open Bechamel in
  let li = Option.get (Workloads.Programs.find "li") in
  let world = Workloads.Suite.compile_cached Workloads.Suite.Compile_each li in
  let om level () =
    match Om.optimize_resolved level world with
    | Ok _ -> ()
    | Error m -> failwith m
  in
  let std_image =
    match Linker.Link.link_resolved world with
    | Ok i -> i
    | Error m -> failwith m
  in
  let tests =
    [ (* Figures 3-5 are produced by the static transformation passes *)
      Test.make ~name:"fig3/om-simple-pass" (Staged.stage (om Om.Simple));
      Test.make ~name:"fig4/om-full-pass" (Staged.stage (om Om.Full));
      Test.make ~name:"fig5/om-full-sched-pass" (Staged.stage (om Om.Full_sched));
      (* Figure 6 requires simulating the linked program *)
      Test.make ~name:"fig6/simulate-li"
        (Staged.stage (fun () ->
             match Machine.Cpu.run std_image with
             | Ok _ -> ()
             | Error _ -> failwith "fault"));
      (* Figure 7's columns: the competing build paths *)
      Test.make ~name:"fig7/standard-link"
        (Staged.stage (fun () ->
             match Linker.Link.link_resolved world with
             | Ok _ -> ()
             | Error m -> failwith m));
      Test.make ~name:"fig7/om-noopt" (Staged.stage (om Om.No_opt));
      (* the GAT table comes from the same full pass over a merged build *)
      Test.make ~name:"gat/om-full-compile-all"
        (Staged.stage
           (let w =
              Workloads.Suite.compile_cached Workloads.Suite.Compile_all li
            in
            fun () ->
              match Om.optimize_resolved Om.Full w with
              | Ok _ -> ()
              | Error m -> failwith m)) ]
  in
  let grouped = Test.make_grouped ~name:"omlt" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Bechamel micro-benchmarks (monotonic clock, ns/run):\n";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "  %-28s %12.0f ns\n" name est
         | _ -> Printf.printf "  %-28s (no estimate)\n" name)

(* --- ablation: price each OM-full feature by turning it off --- *)

let ablation () =
  let benches = [ "li"; "compress"; "tomcatv"; "hydro2d"; "spice" ] in
  let variants =
    let d = Om.Transform.default_options in
    [ ("all-on", d);
      ("-calls", { d with Om.Transform.opt_calls = false });
      ("-addr", { d with Om.Transform.opt_addr = false });
      ("-setup-motion", { d with Om.Transform.opt_setup_motion = false });
      ("-setup-deletion", { d with Om.Transform.opt_setup_deletion = false }) ]
  in
  Printf.printf
    "Ablation: dynamic %% improvement of OM-full over a standard link,
     with one transformation disabled per column (compile-each):

";
  Printf.printf "%-10s" "program";
  List.iter (fun (n, _) -> Printf.printf " %15s" n) variants;
  print_newline ();
  List.iter
    (fun name ->
      match Workloads.Programs.find name with
      | None -> ()
      | Some b ->
          let world =
            Workloads.Suite.compile_cached Workloads.Suite.Compile_each b
          in
          let std = Result.get_ok (Linker.Link.link_resolved world) in
          let base =
            match Machine.Cpu.run std with
            | Ok o -> o.Machine.Cpu.stats.Machine.Cpu.cycles
            | Error _ -> failwith "baseline fault"
          in
          let std_out =
            match Machine.Cpu.run std with
            | Ok o -> o.Machine.Cpu.output
            | Error _ -> ""
          in
          Printf.printf "%-10s" name;
          List.iter
            (fun (_, opts) ->
              match Om.optimize_resolved ~transform_options:opts Om.Full world with
              | Ok { Om.image; _ } -> (
                  match Machine.Cpu.run image with
                  | Ok o ->
                      assert (String.equal o.Machine.Cpu.output std_out);
                      Printf.printf " %14.2f%%"
                        (100.
                        *. float_of_int (base - o.Machine.Cpu.stats.Machine.Cpu.cycles)
                        /. float_of_int base)
                  | Error _ -> Printf.printf " %15s" "FAULT")
              | Error m -> Printf.printf " %15s" m)
            variants;
          print_newline ())
    benches

(* --- machine-readable report (the perf trajectory) --- *)

let report_path = "BENCH_report.json"

let write_report quick =
  let m = matrix quick in
  Printf.eprintf "[bench] profiling for cycle attribution...\n%!";
  let report =
    Reports.Report_json.of_matrix ~attribution:true ~tool:"omlt-bench" m
  in
  Obs.Report.write report_path report;
  Printf.eprintf "[bench] wrote %s (schema v%d, %d results)\n%!" report_path
    report.Obs.Report.version
    (List.length report.Obs.Report.results)

(* --- driver --- *)

let print_figures quick which =
  let ppf = Format.std_formatter in
  let m = lazy (matrix quick) in
  let show name f =
    if which = "all" || which = name then begin
      f ppf (Lazy.force m);
      Format.fprintf ppf "@.@."
    end
  in
  show "fig3" Reports.Figures.fig3;
  show "fig4" Reports.Figures.fig4;
  show "fig5" Reports.Figures.fig5;
  show "fig6" Reports.Figures.fig6;
  show "gat" Reports.Figures.gat_table;
  if which = "all" || which = "fig7" then begin
    Reports.Figures.fig7 ppf (timings quick);
    Format.fprintf ppf "@.@."
  end;
  show "summary" Reports.Figures.summary

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "micro" -> micro ()
  | "ablation" -> ablation ()
  | "quick" ->
      print_figures true "all";
      write_report true
  | ("fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "gat" | "summary") as w ->
      print_figures false w
  | "all" ->
      print_figures false "all";
      write_report false;
      ablation ();
      print_newline ();
      micro ()
  | other ->
      Printf.eprintf
        "unknown argument %s (expected fig3..fig7, gat, summary, quick, micro, ablation, all)\n"
        other;
      exit 2
