(* omlink — the command-line face of the system: a minic compiler, a
   standard linker, the OM optimizing linker, a disassembler, the
   machine simulator, and the client/server halves of the persistent
   link service, in one binary. *)

open Cmdliner

(* The CLI's one error-handling seam: command bodies are thunks
   returning a [result]; stray exceptions from the toolchain layers are
   converted to [Error] here, and Cmdliner renders the message as
   [omlink: message] on stderr and exits with its error status instead
   of dumping an uncaught-exception backtrace. *)
let reporting term =
  Term.term_result'
    (Term.app
       (Term.const (fun thunk ->
            try thunk () with
            | Minic.Driver.Error m
            | Failure m
            | Sys_error m
            | Invalid_argument m ->
                Error m))
       term)

let ( let* ) = Result.bind

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Inputs may be minic sources (.mc) or serialized objects (.o). *)
let load_unit path =
  if Filename.check_suffix path ".mc" then
    Ok
      (Minic.Driver.compile_module ~prelude:Runtime.prelude
         ~name:(Filename.remove_extension (Filename.basename path) ^ ".o")
         (read_file path))
  else
    match Objfile.Obj_io.load path with
    | Ok u -> Ok u
    | Error m -> Error (Printf.sprintf "%s: %s" path m)

let load_units files =
  List.fold_left
    (fun acc f ->
      let* acc = acc in
      let* u = load_unit f in
      Ok (u :: acc))
    (Ok []) files
  |> Result.map List.rev

let level_conv =
  let parse = function
    | "std" -> Ok `Std
    | s -> (
        match Om.level_of_string s with
        | Some l -> Ok (`Om l)
        | None -> Error (`Msg (Printf.sprintf "unknown level %S" s)))
  in
  let print ppf = function
    | `Std -> Format.pp_print_string ppf "std"
    | `Om l -> Format.pp_print_string ppf (Om.level_name l)
  in
  Arg.conv (parse, print)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input files (.mc sources or .o objects).")

let level_arg =
  Arg.(
    value
    & opt level_conv (`Om Om.Full)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Link level: std, noopt, simple, full, sched, gc.")

(* --- pass tracing (shared by run/stats/profile) --- *)

let trace_term =
  let file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON of the link pipeline to \
                   $(docv) (load it at chrome://tracing).")
  in
  let summary =
    Arg.(value & flag
         & info [ "trace-summary" ]
             ~doc:"Print an ASCII pass-timing summary to stderr.")
  in
  Term.(const (fun file summary -> (file, summary)) $ file $ summary)

let with_tracing (file, summary) f =
  if file = None && not summary then f ()
  else begin
    let c, v = Obs.Trace.with_collector f in
    (match file with
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
        output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome_json c));
        output_char oc '\n'
    | None -> ());
    if summary then Format.eprintf "%a@." Obs.Trace.pp_summary c;
    v
  end

(* --- compile --- *)

let compile_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output object file.")
  in
  let merged =
    Arg.(value & flag & info [ "merged" ] ~doc:"Compile all sources as one unit (compile-all style).")
  in
  let o0 = Arg.(value & flag & info [ "O0" ] ~doc:"Disable optimization.") in
  let optimistic =
    Arg.(value & flag
         & info [ "G"; "optimistic" ]
             ~doc:"Optimistic compilation: address scalar globals directly \
                   GP-relative; the link fails if they don't fit the window.")
  in
  let run files out merged o0 optimistic () =
    let opt = if o0 then Minic.Driver.O0 else Minic.Driver.O2 in
    let units =
      if merged then
        [ Minic.Driver.compile_merged ~opt ~optimistic ~prelude:Runtime.prelude
            ~name:"merged.o"
            (List.map (fun f -> (f, read_file f)) files) ]
      else
        List.map
          (fun f ->
            Minic.Driver.compile_module ~opt ~optimistic
              ~prelude:Runtime.prelude
              ~name:(Filename.remove_extension (Filename.basename f) ^ ".o")
              (read_file f))
          files
    in
    List.iter
      (fun (u : Objfile.Cunit.t) ->
        let path = Option.value out ~default:u.name in
        Objfile.Obj_io.save path u;
        Printf.printf "wrote %s (%d instructions, %d GAT entries)\n" path
          (Objfile.Cunit.insn_count u)
          (Array.length u.gat))
      units;
    Ok ()
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile minic sources to object modules.")
    (reporting
       Term.(const run $ files_arg $ out $ merged $ o0 $ optimistic))

(* --- dis --- *)

let dis_cmd =
  let run files () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        let* u = load_unit f in
        Format.printf "%a@." Objfile.Cunit.pp u;
        Ok ())
      (Ok ()) files
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Disassemble object modules with their relocations.")
    (reporting Term.(const run $ files_arg))

(* --- link / run --- *)

let link_images level files =
  let* units = load_units files in
  let archives = [ Runtime.libstd () ] in
  match level with
  | `Std ->
      let* image = Linker.Link.link units ~archives in
      Ok (image, None)
  | `Om l ->
      let* { Om.image; stats } = Om.link ~level:l units ~archives in
      Ok (image, Some stats)

let run_cmd =
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print optimizer statistics.")
  in
  let show_timing =
    Arg.(value & flag & info [ "timing" ] ~doc:"Print simulated cycle counts.")
  in
  let run files level show_stats show_timing tr () =
    (* trace the link only: the command exits inside the simulation branch *)
    let* image, stats = with_tracing tr (fun () -> link_images level files) in
    (match (show_stats, stats) with
    | true, Some s -> Format.printf "%a@." Om.Stats.pp s
    | true, None -> Format.printf "(standard link: no optimizer statistics)@."
    | false, _ -> ());
    match Machine.Cpu.run image with
    | Ok o ->
        print_string o.Machine.Cpu.output;
        if show_timing then
          Printf.eprintf
            "[%d instructions, %d cycles, %d i$ misses, %d d$ misses]\n"
            o.Machine.Cpu.stats.Machine.Cpu.insns
            o.Machine.Cpu.stats.Machine.Cpu.cycles
            o.Machine.Cpu.stats.Machine.Cpu.icache_misses
            o.Machine.Cpu.stats.Machine.Cpu.dcache_misses;
        exit (Int64.to_int o.Machine.Cpu.exit_code land 0xff)
    | Error e ->
        Error (Format.asprintf "simulation fault: %a" Machine.Cpu.pp_error e)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Link (with libstd) and execute on the machine simulator.")
    (reporting
       Term.(const run $ files_arg $ level_arg $ show_stats $ show_timing
             $ trace_term))

(* --- text dump of the linked image --- *)

let image_cmd =
  let run files level () =
    let* image, _ = link_images level files in
    Format.printf "%a@." Linker.Image.pp_disassembly image;
    Ok ()
  in
  Cmd.v
    (Cmd.info "image" ~doc:"Print the disassembled linked image.")
    (reporting Term.(const run $ files_arg $ level_arg))

(* --- stats: compare every level for the given program --- *)

let stats_cmd =
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the comparison as schema-versioned JSON on stdout.")
  in
  let run files json tr () =
    with_tracing tr @@ fun () ->
    let* units = load_units files in
    let archives = [ Runtime.libstd () ] in
    let* world = Linker.Resolve.run units ~archives in
    let* std = Linker.Link.link_resolved world in
    (* a simulation fault is a result, not a number: carry the message *)
    let run_cycles image =
      match Machine.Cpu.run image with
      | Ok o -> Ok o.Machine.Cpu.stats.Machine.Cpu.cycles
      | Error e -> Error (Format.asprintf "%a" Machine.Cpu.pp_error e)
    in
    let base = run_cycles std in
    let levels =
      List.map
        (fun level ->
          match Om.optimize_resolved level world with
          | Ok { Om.image; stats } ->
              (level, Ok (image, stats, run_cycles image))
          | Error m -> (level, Error m))
        Om.all_levels
    in
    if json then begin
      let cycles_and_fault = function
        | Ok c -> (c, None)
        | Error m -> (0, Some m)
      in
      let std_cycles, std_fault = cycles_and_fault base in
      let runs =
        List.map
          (fun (level, r) ->
            match r with
            | Ok (image, stats, cycles) ->
                let cycles, fault = cycles_and_fault cycles in
                { Obs.Report.level = Om.level_name level;
                  cycles;
                  insns = Linker.Image.insn_count image;
                  improvement_pct =
                    (match (base, fault) with
                    | Ok b, None when b > 0 ->
                        100. *. float_of_int (b - cycles) /. float_of_int b
                    | _ -> 0.);
                  counters = Om.Stats.to_alist stats;
                  attribution = None;
                  fault;
                  host = None;
                  size =
                    Some
                      { Obs.Report.text_bytes =
                          Bytes.length image.Linker.Image.text;
                        data_bytes = Bytes.length image.Linker.Image.data;
                        gat_bytes = image.Linker.Image.gat_bytes } }
            | Error m ->
                { Obs.Report.level = Om.level_name level;
                  cycles = 0;
                  insns = 0;
                  improvement_pct = 0.;
                  counters = [];
                  attribution = None;
                  fault = Some m;
                  host = None;
                  size = None })
          levels
      in
      let report =
        Obs.Report.make
          [ { Obs.Report.bench = String.concat "," files;
              build = "files";
              std_cycles;
              std_insns = Linker.Image.insn_count std;
              std_attribution = None;
              std_fault;
              outputs_agree = true;
              runs;
              std_host = None;
              relink = None;
              std_size =
                Some
                  { Obs.Report.text_bytes = Bytes.length std.Linker.Image.text;
                    data_bytes = Bytes.length std.Linker.Image.data;
                    gat_bytes = std.Linker.Image.gat_bytes } } ]
      in
      print_endline (Obs.Json.to_string (Obs.Report.to_json report));
      Ok ()
    end
    else begin
      let cycles_cell = function
        | Ok c -> string_of_int c
        | Error m -> "FAULT: " ^ m
      in
      Printf.printf "%-14s %10s %10s %8s\n" "level" "text insns" "cycles"
        "vs std";
      Printf.printf "%-14s %10d %10s %8s\n" "standard"
        (Linker.Image.insn_count std) (cycles_cell base) "-";
      List.iter
        (fun (level, r) ->
          match r with
          | Ok (image, stats, cycles) ->
              let vs =
                match (base, cycles) with
                | Ok b, Ok c when b > 0 ->
                    Printf.sprintf "%+7.2f%%"
                      (100. *. float_of_int (b - c) /. float_of_int b)
                | _ -> "-"
              in
              Printf.printf "%-14s %10d %10s %8s\n" (Om.level_name level)
                (Linker.Image.insn_count image) (cycles_cell cycles) vs;
              if level = Om.Full then
                Format.printf "  %a@." Om.Stats.pp stats
          | Error m ->
              Printf.printf "%-14s failed: %s\n" (Om.level_name level) m)
        levels;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Link at every optimization level and compare size and cycles.")
    (reporting Term.(const run $ files_arg $ json_flag $ trace_term))

(* --- profile: per-procedure cycle attribution --- *)

let find_benchmark n =
  match Workloads.Programs.find n with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %s (know: %s)" n
           (String.concat ", " Workloads.Programs.names))

let profile_cmd =
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"Input files (.mc sources or .o objects).")
  in
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME"
             ~doc:"Profile a suite benchmark instead of input files.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the profiles as JSON on stdout.")
  in
  let top =
    Arg.(value & opt int 12
         & info [ "top" ] ~docv:"N" ~doc:"Procedure rows to print.")
  in
  let run files bench json top tr () =
    with_tracing tr @@ fun () ->
    let* what, world =
      match (bench, files) with
      | Some n, [] ->
          let* b = find_benchmark n in
          let* w = Workloads.Suite.resolve Workloads.Suite.Compile_each b in
          Ok (n, w)
      | None, (_ :: _ as files) ->
          let* units = load_units files in
          let* w =
            Linker.Resolve.run units ~archives:[ Runtime.libstd () ]
          in
          Ok (String.concat "," files, w)
      | Some _, _ :: _ ->
          Error "give either input files or --bench, not both"
      | None, [] -> Error "nothing to profile: give input files or --bench NAME"
    in
    let* std = Linker.Link.link_resolved world in
    let* full =
      Result.map (fun o -> o.Om.image) (Om.optimize_resolved Om.Full world)
    in
    let profile name image =
      match Obs.Attr.run image with
      | Ok p -> Ok p
      | Error e ->
          Error
            (Format.asprintf "%s: simulation fault: %a" name
               Machine.Cpu.pp_error e)
    in
    let* pstd = profile "standard" std in
    let* pfull = profile "om-full" full in
    if json then begin
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("schema_version", Obs.Json.Int Obs.Report.schema_version);
                ("program", Obs.Json.String what);
                ("standard", Obs.Attr.to_json pstd);
                ("om-full", Obs.Attr.to_json pfull) ]));
      Ok ()
    end
    else begin
      Format.printf "%s: standard link@.%a@.@." what (Obs.Attr.pp ~top) pstd;
      Format.printf "om-full@.%a@.@." (Obs.Attr.pp ~top) pfull;
      Format.printf "address-calculation overhead, cycles (standard -> om-full):@.";
      List.iter
        (fun c ->
          let b0 = (Obs.Attr.bucket pstd.Obs.Attr.totals c).Obs.Attr.b_cycles in
          let b1 = (Obs.Attr.bucket pfull.Obs.Attr.totals c).Obs.Attr.b_cycles in
          Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@."
            (Obs.Attr.category_name c) b0 b1
            (100. *. float_of_int (b1 - b0) /. float_of_int (max 1 b0)))
        Obs.Attr.all_categories;
      Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@." "TOTAL"
        pstd.Obs.Attr.totals.Obs.Attr.p_cycles
        pfull.Obs.Attr.totals.Obs.Attr.p_cycles
        (100.
        *. float_of_int
             (pfull.Obs.Attr.totals.Obs.Attr.p_cycles
             - pstd.Obs.Attr.totals.Obs.Attr.p_cycles)
        /. float_of_int (max 1 pstd.Obs.Attr.totals.Obs.Attr.p_cycles));
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate under the cycle-attribution profiler: per-procedure \
          cycles and the paper's address-calculation categories, standard \
          link vs OM-full.")
    (reporting
       Term.(const run $ files $ bench $ json_flag $ top $ trace_term))

(* --- suite --- *)

let suite_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME" ~doc:"Run a single benchmark.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit results as schema-versioned JSON instead of text.")
  in
  let attr_flag =
    Arg.(value & flag
         & info [ "attr" ]
             ~doc:"With --json: include dynamic cycle-attribution buckets \
                   (one extra simulation per image).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"With --json: write the report to $(docv) instead of stdout.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Measure with $(docv) parallel domains (default: the \
                   host's recommended domain count; the OMLT_JOBS \
                   environment variable also overrides it). Results are \
                   identical to a serial run.")
  in
  let run bench json attr out jobs () =
    let* benches =
      match bench with
      | Some n -> Result.map (fun b -> [ b ]) (find_benchmark n)
      | None -> Ok Workloads.Programs.all
    in
    (* progress (and failures) stream to stderr as tasks finish; result
       rows print to stdout afterwards, in task order, so the output is
       deterministic whatever the domain interleaving *)
    let progress =
      { Reports.Runner.silent with
        on_done =
          (fun b build r ->
            match r with
            | Ok _ -> ()
            | Error m ->
                Printf.eprintf "%-10s %-12s ERROR %s\n%!"
                  b.Workloads.Programs.name
                  (Workloads.Suite.build_name build) m) }
    in
    let rows = Reports.Runner.matrix ?jobs ~progress benches in
    if not json then begin
      List.iter
        (fun ((b : Workloads.Programs.benchmark), build, r) ->
          match r with
          | Error _ -> ()
          | Ok (r : Reports.Measure.result) ->
              Printf.printf "%-10s %-12s std=%d %s agree=%b\n%!" b.name
                (Workloads.Suite.build_name build)
                r.Reports.Measure.std_cycles
                (String.concat " "
                   (List.map
                      (fun (run : Reports.Measure.run) ->
                        Printf.sprintf "%s=%+.1f%%"
                          (Om.level_name run.level)
                          (Reports.Measure.improvement r run.level))
                      r.Reports.Measure.runs))
                r.Reports.Measure.outputs_agree)
        rows;
      Ok ()
    end
    else begin
      let report = Reports.Runner.report ?jobs ~attribution:attr rows in
      (match out with
      | Some path -> Obs.Report.write path report
      | None -> print_endline (Obs.Json.to_string (Obs.Report.to_json report)));
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the SPEC92-analogue benchmark matrix.")
    (reporting
       Term.(const run $ bench $ json_flag $ attr_flag $ out $ jobs))

(* --- fuzz: randomized differential testing of the pipeline --- *)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed. The same seed replays the same cases, \
                   whatever the job count.")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Run cases on $(docv) parallel domains (default: the \
                   host's recommended count; OMLT_JOBS also overrides). \
                   Results are identical to a serial run.")
  in
  let out =
    Arg.(value & opt string "_fuzz"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk reproducers of failing cases.")
  in
  let no_repro =
    Arg.(value & flag
         & info [ "no-repro" ] ~doc:"Do not write reproducer directories.")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"CASESEED"
             ~doc:"Re-run the single case with this derived seed (printed \
                   in failure reports and reproducer READMEs) instead of a \
                   campaign.")
  in
  let dump =
    Arg.(value & flag
         & info [ "dump" ]
             ~doc:"With --replay: print the generated minic modules before \
                   running the oracles.")
  in
  let span_stress =
    Arg.(value & flag
         & info [ "span-stress" ]
             ~doc:"Bias generation toward span boundaries: data straddling \
                   the GP window edge, padded procedures stretching branch \
                   spans, and ldah/lda pair-edge literals. Applies to \
                   campaigns and to --replay.")
  in
  let run seed count jobs out no_repro replay dump span_stress () =
    match replay with
    | Some cs -> (
        if dump then
          List.iter
            (fun (name, src) -> Printf.printf "// --- %s ---\n%s\n" name src)
            (Fuzz.Prog.render (Fuzz.Gen.program ~span_stress cs));
        match Fuzz.run_case ~span_stress cs with
        | Ok () ->
            Printf.printf "case seed %d: all oracles passed\n" cs;
            Ok ()
        | Error f ->
            Error (Format.asprintf "case seed %d: %a" cs Fuzz.Oracle.pp_failure f))
    | None ->
        let out_dir = if no_repro then None else Some out in
        let progress ~done_ ~total ~failed =
          Printf.eprintf "\rfuzz: %d/%d cases, %d failure(s)%!" done_ total
            failed
        in
        let r =
          Fuzz.campaign ?jobs ~out_dir ~progress ~span_stress ~seed ~count ()
        in
        Printf.eprintf "\n%!";
        Format.printf "%a@." Fuzz.pp_report r;
        if r.Fuzz.failed = [] then Ok ()
        else
          Error
            (Printf.sprintf "%d of %d cases failed"
               (List.length r.Fuzz.failed) count)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random minic programs, link them \
          at every level (plus a merged build), and require identical \
          observable behavior, a clean structural verification, and \
          agreement between the two simulators. Failures are shrunk to \
          minimal reproducers.")
    (reporting
       Term.(
         const run $ seed $ count $ jobs $ out $ no_repro $ replay $ dump
         $ span_stress))

(* --- serve: the persistent link daemon --- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path (default: \\$OMLT_SOCKET or \
                 omlinkd.sock).")

let serve_cmd =
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline; requests that exceed it get \
                   a structured timeout error. Clients may override per \
                   request.")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Artifact store directory (default: \\$OMLT_STORE or \
                   _omstore; $(b,none) keeps the store in memory only).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No startup/shutdown chatter.")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Structured-log threshold: debug, info, warn, error, or \
                   off. Overrides \\$OMLT_LOG. Default when serving: info \
                   (or off with $(b,--quiet)).")
  in
  let pool_jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains in the scheduling pool (default: \
                   max 2 and the host's recommended count; OMLT_JOBS \
                   also overrides).")
  in
  let queue_limit =
    Arg.(value & opt (some int) None
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Bounded request-queue depth; submissions past it get a \
                   structured overloaded error with retry_after_ms \
                   (default 64).")
  in
  let drain_ms =
    Arg.(value & opt (some int) None
         & info [ "drain-ms" ] ~docv:"MS"
             ~doc:"On shutdown, finish queued and in-flight requests for \
                   up to $(docv) before aborting the rest (default 2000).")
  in
  let run socket deadline store_dir quiet log_level pool_jobs queue_limit
      drain_ms () =
    (* daemon diagnostics are JSON-lines on stderr via Obs.Log; the old
       ad-hoc eprintf chatter is gone *)
    (match log_level with
    | Some s -> Obs.Log.set_level (Obs.Log.level_of_string s)
    | None ->
        if quiet then Obs.Log.set_level None
        else if Sys.getenv_opt "OMLT_LOG" = None then
          Obs.Log.set_level (Some Obs.Log.Info));
    let store =
      match store_dir with
      | None -> Store.create ()
      | Some "none" | Some "" -> Store.in_memory ()
      | Some d -> Store.create ~dir:(Some d) ()
    in
    let engine = Server.Engine.create ~store () in
    Server.Daemon.serve ~engine ?socket ?default_deadline_ms:deadline
      ?workers:pool_jobs ?queue_limit ?drain_ms ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run omlinkd, the persistent link service: an artifact store plus \
          incremental relinking behind a Unix-domain socket, serving many \
          clients concurrently through a worker-domain pool with in-flight \
          request coalescing and bounded-queue backpressure.")
    (reporting
       Term.(const run $ socket_arg $ deadline $ store_dir $ quiet $ log_level
             $ pool_jobs $ queue_limit $ drain_ms))

(* --- metrics: in-process registry dump --- *)

let metrics_cmd =
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Print the Prometheus text exposition instead of JSON.")
  in
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME"
             ~doc:"First measure $(docv) in-process so the registry holds \
                   pool/simulator/engine samples to dump.")
  in
  let run bench prometheus () =
    let* () =
      match bench with
      | None -> Ok ()
      | Some n -> (
          match Workloads.Programs.find n with
          | None ->
              Error
                (Printf.sprintf "unknown benchmark %s (know: %s)" n
                   (String.concat ", " Workloads.Programs.names))
          | Some b ->
              ignore (Reports.Runner.matrix [ b ]);
              Ok ())
    in
    let reg = Obs.Metrics.default in
    if prometheus then print_string (Obs.Metrics.to_prometheus reg)
    else print_endline (Obs.Json.to_string (Obs.Metrics.to_json reg));
    Ok ()
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump this process's metrics registry (use $(b,--bench) to populate \
          it first; for a running daemon's registry see $(b,omlink client \
          metrics)).")
    (reporting Term.(const run $ bench $ prometheus))

(* --- client: talk to a running omlinkd --- *)

let err_string (e : Server.Protocol.err) =
  Printf.sprintf "%s [%s]" e.Server.Protocol.message e.Server.Protocol.code

let with_daemon socket f =
  Result.join (Server.Client.with_connection ?socket f)

let retries_arg =
  Arg.(value & opt int 0
       & info [ "retries" ] ~docv:"N"
           ~doc:"Retry up to $(docv) times on a refused connection or an \
                 overloaded daemon, sleeping a jittered exponential backoff \
                 (or the server's retry_after_ms hint, whichever is larger) \
                 between attempts. Off by default.")

(* one seam for every client subcommand: plain connect when retries are
   off, [Server.Client.with_retries] otherwise, errors rendered as
   strings either way *)
let with_daemon_retries socket retries f =
  if retries = 0 then with_daemon socket (fun fd -> Result.map_error err_string (f fd))
  else
    Result.map_error err_string
      (Server.Client.with_retries ~retries ?socket f)

let deadline_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Fail the request with a timeout error after $(docv).")

let client_ping_cmd =
  let delay =
    Arg.(value & opt int 0
         & info [ "delay-ms" ] ~docv:"MS"
             ~doc:"Ask the server to sleep before replying (deadline \
                   testing).")
  in
  let run socket deadline delay retries () =
    with_daemon_retries socket retries @@ fun fd ->
    match Server.Client.ping fd ?deadline_ms:deadline ~delay_ms:delay () with
    | Ok _ -> print_endline "pong"; Ok ()
    | Error e -> Error e
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip a ping through the daemon.")
    (reporting
       Term.(const run $ socket_arg $ deadline_arg $ delay $ retries_arg))

let client_link_cmd =
  let level =
    Arg.(value & opt string "full"
         & info [ "l"; "level" ] ~docv:"LEVEL"
             ~doc:"Link level: std, noopt, simple, full, sched, gc.")
  in
  let entry =
    Arg.(value & opt (some string) None
         & info [ "entry" ] ~docv:"SYM" ~doc:"Entry procedure.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o" ] ~docv:"OUT" ~doc:"Write the serialized image to $(docv).")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Ask for pass spans and print them.")
  in
  let run files socket deadline level entry out trace retries () =
    (* the daemon resolves paths itself, so hand it absolute ones *)
    let files =
      List.map
        (fun f ->
          if Filename.is_relative f then Filename.concat (Sys.getcwd ()) f
          else f)
        files
    in
    with_daemon_retries socket retries @@ fun fd ->
    match
      Server.Client.link fd ?deadline_ms:deadline ~trace ?entry ~level files
    with
    | Error e -> Error e
    | Ok (bytes, fields) ->
        let get name conv =
          Option.bind (Server.Client.field name fields) conv
        in
        Printf.printf "linked %s: %d insns in %.3fs (%s, image %s)\n"
          (Option.value ~default:"?" (get "level" Obs.Json.get_string))
          (Option.value ~default:0 (get "insns" Obs.Json.get_int))
          (Option.value ~default:0. (get "elapsed_s" Obs.Json.get_float))
          (if Option.value ~default:false (get "image_hit" Obs.Json.get_bool)
           then "cache hit" else "cache miss")
          (Option.value ~default:"?" (get "image_digest" Obs.Json.get_string));
        (match Server.Client.field "trace" fields with
        | Some (Obs.Json.List spans) ->
            List.iter
              (fun s ->
                match
                  ( Option.bind (Obs.Json.member "name" s) Obs.Json.get_string,
                    Option.bind (Obs.Json.member "dur_us" s)
                      Obs.Json.get_float )
                with
                | Some name, Some dur ->
                    Printf.printf "  %-24s %10.0f us\n" name dur
                | _ -> ())
              spans
        | _ -> ());
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out_bin path in
            Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
            output_string oc bytes;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length bytes));
        Ok ()
  in
  Cmd.v
    (Cmd.info "link" ~doc:"Link through the daemon (warm caches and all).")
    (reporting
       Term.(const run $ files_arg $ socket_arg $ deadline_arg $ level $ entry
             $ out $ trace $ retries_arg))

let client_stats_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the raw JSON reply instead of a table.")
  in
  let run socket json () =
    with_daemon socket @@ fun fd ->
    match Server.Client.stats fd with
    | Error e -> Error (err_string e)
    | Ok fields ->
        if json then begin
          print_endline (Obs.Json.to_string (Obs.Json.Obj fields));
          Ok ()
        end
        else begin
          let get name conv =
            Option.bind (Server.Client.field name fields) conv
          in
          Printf.printf "uptime   %.1f s\nrequests %d\n"
            (Option.value ~default:0. (get "uptime_s" Obs.Json.get_float))
            (Option.value ~default:0 (get "requests" Obs.Json.get_int));
          (match Server.Client.field "sched" fields with
          | Some sched ->
              let s name =
                Option.value ~default:0
                  (Option.bind (Obs.Json.member name sched) Obs.Json.get_int)
              in
              Printf.printf
                "sched    %d workers, queue %d/%d, busy %d; submitted=%d \
                 completed=%d coalesced=%d shed=%d abandoned=%d\n"
                (s "workers") (s "queue_depth") (s "queue_limit") (s "busy")
                (s "submitted") (s "completed") (s "coalesced") (s "shed")
                (s "abandoned")
          | None -> ());
          (match Server.Client.field "store" fields with
          | Some store ->
              let m name conv = Option.bind (Obs.Json.member name store) conv in
              Printf.printf "store    %s (%d entries, %d bytes in memory)\n"
                (Option.value ~default:"memory" (m "dir" Obs.Json.get_string))
                (Option.value ~default:0 (m "mem_entries" Obs.Json.get_int))
                (Option.value ~default:0 (m "mem_bytes" Obs.Json.get_int));
              List.iter
                (fun kind ->
                  match Obs.Json.member kind store with
                  | Some (Obs.Json.Obj kv) ->
                      Printf.printf "  %-8s" kind;
                      List.iter
                        (fun (k, v) ->
                          match Obs.Json.get_int v with
                          | Some n -> Printf.printf " %s=%d" k n
                          | None -> ())
                        kv;
                      print_newline ()
                  | _ -> ())
                [ "cunit"; "lifted"; "image"; "total" ]
          | None -> ());
          Ok ()
        end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print daemon uptime, scheduling-pool counters (workers, queue, \
          coalesces, sheds) and artifact-store counters (hit/miss/eviction \
          per artifact kind); $(b,--json) for the raw reply.")
    (reporting Term.(const run $ socket_arg $ json))

let client_suite_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME" ~doc:"Run a single benchmark.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Parallel domains on the server.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the report JSON to $(docv) instead of stdout.")
  in
  let run socket deadline bench jobs out () =
    with_daemon socket @@ fun fd ->
    match
      Server.Client.roundtrip fd
        (Server.Protocol.request ?deadline_ms:deadline
           (Server.Protocol.Suite { bench; jobs }))
    with
    | Error e -> Error (err_string e)
    | Ok fields -> (
        match Server.Client.field "report" fields with
        | None -> Error "suite reply carries no report"
        | Some report ->
            let text = Obs.Json.to_string report in
            (match out with
            | None -> print_endline text
            | Some path ->
                let oc = open_out_bin path in
                Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
                output_string oc text;
                output_char oc '\n');
            Ok ())
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the benchmark matrix on the daemon.")
    (reporting
       Term.(const run $ socket_arg $ deadline_arg $ bench $ jobs $ out))

let client_metrics_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the JSON registry snapshot instead of the \
                   Prometheus text exposition.")
  in
  let run socket json () =
    with_daemon socket @@ fun fd ->
    match Server.Client.metrics fd with
    | Error e -> Error (err_string e)
    | Ok fields ->
        if json then
          match Server.Client.field "metrics" fields with
          | Some m -> print_endline (Obs.Json.to_string m); Ok ()
          | None -> Error "metrics reply carries no metrics field"
        else (
          match
            Option.bind
              (Server.Client.field "prometheus" fields)
              Obs.Json.get_string
          with
          | Some text -> print_string text; Ok ()
          | None -> Error "metrics reply carries no prometheus field")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Fetch the daemon's live metrics registry: per-request-type latency \
          histograms with p50/p95/p99, cache counters, in-flight gauge.")
    (reporting Term.(const run $ socket_arg $ json))

let client_load_cmd =
  let profile =
    let mix_conv =
      Arg.conv
        ( (fun s -> Result.map_error (fun m -> `Msg m) (Load.profile_of_string s)),
          fun ppf p -> Format.pp_print_string ppf (Load.profile_name p) )
    in
    Arg.(value & opt mix_conv Load.default_spec.Load.profile
         & info [ "profile" ] ~docv:"MIX"
             ~doc:"Request mix: $(b,cold) (every request a distinct \
                   program), $(b,dup) (all requests the same program), or \
                   $(b,mixed) (a seeded 70/30 hot/cold blend).")
  in
  let clients =
    Arg.(value & opt int Load.default_spec.Load.clients
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let requests =
    Arg.(value & opt int Load.default_spec.Load.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Total requests to offer.")
  in
  let seed =
    Arg.(value & opt int Load.default_spec.Load.seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Drives program generation and the mix; the same seed \
                   replays the same request stream.")
  in
  let level =
    Arg.(value & opt string Load.default_spec.Load.level
         & info [ "l"; "level" ] ~docv:"LEVEL" ~doc:"Link level.")
  in
  let run socket deadline profile clients requests seed level retries () =
    let spec =
      { Load.profile; clients; requests; seed; level;
        deadline_ms = deadline; retries }
    in
    match Load.run_against ?socket spec with
    | Error m -> Error m
    | Ok r ->
        List.iter print_endline (Load.summary_lines r);
        List.iter (Printf.printf "  failure: %s\n") r.Load.r_failures;
        if r.Load.r_mismatched > 0 then
          Error
            (Printf.sprintf "%d replies differ from the serial oracle"
               r.Load.r_mismatched)
        else Ok ()
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Fire a deterministic concurrent load at the daemon: N client \
          threads replaying a seeded hot/cold/duplicate request mix, every \
          reply checked bit-for-bit against a serial in-process oracle; \
          prints throughput, latency quantiles, and coalesce/shed counts.")
    (reporting
       Term.(const run $ socket_arg $ deadline_arg $ profile $ clients
             $ requests $ seed $ level $ retries_arg))

let client_shutdown_cmd =
  let run socket () =
    with_daemon socket @@ fun fd ->
    match Server.Client.shutdown fd with
    | Ok _ -> Ok ()
    | Error e -> Error (err_string e)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop the daemon.")
    (reporting Term.(const run $ socket_arg))

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running omlinkd (see $(b,omlink serve)).")
    [ client_ping_cmd; client_link_cmd; client_stats_cmd; client_metrics_cmd;
      client_suite_cmd; client_load_cmd; client_shutdown_cmd ]

let main =
  Cmd.group
    (Cmd.info "omlink" ~version:"1.0"
       ~doc:
         "Link-time optimization of address calculation on a 64-bit \
          architecture (Srivastava & Wall, PLDI 1994), reproduced.")
    [ compile_cmd; dis_cmd; run_cmd; image_cmd; stats_cmd; profile_cmd;
      suite_cmd; fuzz_cmd; metrics_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
