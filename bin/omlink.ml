(* omlink — the command-line face of the system: a minic compiler, a
   standard linker, the OM optimizing linker, a disassembler and the
   machine simulator, in one binary. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Inputs may be minic sources (.mc) or serialized objects (.o). *)
let load_unit path =
  if Filename.check_suffix path ".mc" then
    Minic.Driver.compile_module ~prelude:Runtime.prelude
      ~name:(Filename.remove_extension (Filename.basename path) ^ ".o")
      (read_file path)
  else
    match Objfile.Obj_io.load path with
    | Ok u -> u
    | Error m -> failwith (Printf.sprintf "%s: %s" path m)

let level_conv =
  let parse = function
    | "std" -> Ok `Std
    | "noopt" -> Ok (`Om Om.No_opt)
    | "simple" -> Ok (`Om Om.Simple)
    | "full" -> Ok (`Om Om.Full)
    | "sched" | "full+sched" -> Ok (`Om Om.Full_sched)
    | s -> Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print ppf = function
    | `Std -> Format.pp_print_string ppf "std"
    | `Om l -> Format.pp_print_string ppf (Om.level_name l)
  in
  Arg.conv (parse, print)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input files (.mc sources or .o objects).")

let level_arg =
  Arg.(
    value
    & opt level_conv (`Om Om.Full)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Link level: std, noopt, simple, full, sched.")

let handle_errors f =
  try f () with Failure m | Invalid_argument m | Sys_error m ->
    Printf.eprintf "omlink: %s\n" m;
    exit 1

(* --- pass tracing (shared by run/stats/profile) --- *)

let trace_term =
  let file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON of the link pipeline to \
                   $(docv) (load it at chrome://tracing).")
  in
  let summary =
    Arg.(value & flag
         & info [ "trace-summary" ]
             ~doc:"Print an ASCII pass-timing summary to stderr.")
  in
  Term.(const (fun file summary -> (file, summary)) $ file $ summary)

let with_tracing (file, summary) f =
  if file = None && not summary then f ()
  else begin
    let c, v = Obs.Trace.with_collector f in
    (match file with
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
        output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome_json c));
        output_char oc '\n'
    | None -> ());
    if summary then Format.eprintf "%a@." Obs.Trace.pp_summary c;
    v
  end

(* --- compile --- *)

let compile_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output object file.")
  in
  let merged =
    Arg.(value & flag & info [ "merged" ] ~doc:"Compile all sources as one unit (compile-all style).")
  in
  let o0 = Arg.(value & flag & info [ "O0" ] ~doc:"Disable optimization.") in
  let optimistic =
    Arg.(value & flag
         & info [ "G"; "optimistic" ]
             ~doc:"Optimistic compilation: address scalar globals directly \
                   GP-relative; the link fails if they don't fit the window.")
  in
  let run files out merged o0 optimistic =
    handle_errors @@ fun () ->
    let opt = if o0 then Minic.Driver.O0 else Minic.Driver.O2 in
    let units =
      if merged then
        [ Minic.Driver.compile_merged ~opt ~optimistic ~prelude:Runtime.prelude
            ~name:"merged.o"
            (List.map (fun f -> (f, read_file f)) files) ]
      else
        List.map
          (fun f ->
            Minic.Driver.compile_module ~opt ~optimistic
              ~prelude:Runtime.prelude
              ~name:(Filename.remove_extension (Filename.basename f) ^ ".o")
              (read_file f))
          files
    in
    List.iter
      (fun (u : Objfile.Cunit.t) ->
        let path = Option.value out ~default:u.name in
        Objfile.Obj_io.save path u;
        Printf.printf "wrote %s (%d instructions, %d GAT entries)\n" path
          (Objfile.Cunit.insn_count u)
          (Array.length u.gat))
      units
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile minic sources to object modules.")
    Term.(const run $ files_arg $ out $ merged $ o0 $ optimistic)

(* --- dis --- *)

let dis_cmd =
  let run files =
    handle_errors @@ fun () ->
    List.iter
      (fun f -> Format.printf "%a@." Objfile.Cunit.pp (load_unit f))
      files
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Disassemble object modules with their relocations.")
    Term.(const run $ files_arg)

(* --- link / run --- *)

let link_images level files =
  let units = List.map load_unit files in
  let archives = [ Runtime.libstd () ] in
  match level with
  | `Std -> (
      match Linker.Link.link units ~archives with
      | Ok image -> (image, None)
      | Error m -> failwith m)
  | `Om l -> (
      match Om.link ~level:l units ~archives with
      | Ok { Om.image; stats } -> (image, Some stats)
      | Error m -> failwith m)

let run_cmd =
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print optimizer statistics.")
  in
  let show_timing =
    Arg.(value & flag & info [ "timing" ] ~doc:"Print simulated cycle counts.")
  in
  let run files level show_stats show_timing tr =
    handle_errors @@ fun () ->
    (* trace the link only: the command exits inside the simulation branch *)
    let image, stats = with_tracing tr (fun () -> link_images level files) in
    (match (show_stats, stats) with
    | true, Some s -> Format.printf "%a@." Om.Stats.pp s
    | true, None -> Format.printf "(standard link: no optimizer statistics)@."
    | false, _ -> ());
    match Machine.Cpu.run image with
    | Ok o ->
        print_string o.Machine.Cpu.output;
        if show_timing then
          Printf.eprintf
            "[%d instructions, %d cycles, %d i$ misses, %d d$ misses]\n"
            o.Machine.Cpu.stats.Machine.Cpu.insns
            o.Machine.Cpu.stats.Machine.Cpu.cycles
            o.Machine.Cpu.stats.Machine.Cpu.icache_misses
            o.Machine.Cpu.stats.Machine.Cpu.dcache_misses;
        exit (Int64.to_int o.Machine.Cpu.exit_code land 0xff)
    | Error e ->
        Format.eprintf "omlink: simulation fault: %a@." Machine.Cpu.pp_error e;
        exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Link (with libstd) and execute on the machine simulator.")
    Term.(const run $ files_arg $ level_arg $ show_stats $ show_timing
          $ trace_term)

(* --- text dump of the linked image --- *)

let image_cmd =
  let run files level =
    handle_errors @@ fun () ->
    let image, _ = link_images level files in
    Format.printf "%a@." Linker.Image.pp_disassembly image
  in
  Cmd.v
    (Cmd.info "image" ~doc:"Print the disassembled linked image.")
    Term.(const run $ files_arg $ level_arg)

(* --- stats: compare every level for the given program --- *)

let stats_cmd =
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the comparison as schema-versioned JSON on stdout.")
  in
  let run files json tr =
    handle_errors @@ fun () ->
    with_tracing tr @@ fun () ->
    let units = List.map load_unit files in
    let archives = [ Runtime.libstd () ] in
    let world =
      match Linker.Resolve.run units ~archives with
      | Ok w -> w
      | Error m -> failwith m
    in
    let std =
      match Linker.Link.link_resolved world with
      | Ok i -> i
      | Error m -> failwith m
    in
    (* a simulation fault is a result, not a number: carry the message *)
    let run_cycles image =
      match Machine.Cpu.run image with
      | Ok o -> Ok o.Machine.Cpu.stats.Machine.Cpu.cycles
      | Error e -> Error (Format.asprintf "%a" Machine.Cpu.pp_error e)
    in
    let base = run_cycles std in
    let levels =
      List.map
        (fun level ->
          match Om.optimize_resolved level world with
          | Ok { Om.image; stats } ->
              (level, Ok (image, stats, run_cycles image))
          | Error m -> (level, Error m))
        Om.all_levels
    in
    if json then begin
      let cycles_and_fault = function
        | Ok c -> (c, None)
        | Error m -> (0, Some m)
      in
      let std_cycles, std_fault = cycles_and_fault base in
      let runs =
        List.map
          (fun (level, r) ->
            match r with
            | Ok (image, stats, cycles) ->
                let cycles, fault = cycles_and_fault cycles in
                { Obs.Report.level = Om.level_name level;
                  cycles;
                  insns = Linker.Image.insn_count image;
                  improvement_pct =
                    (match (base, fault) with
                    | Ok b, None when b > 0 ->
                        100. *. float_of_int (b - cycles) /. float_of_int b
                    | _ -> 0.);
                  counters = Om.Stats.to_alist stats;
                  attribution = None;
                  fault;
                  host = None }
            | Error m ->
                { Obs.Report.level = Om.level_name level;
                  cycles = 0;
                  insns = 0;
                  improvement_pct = 0.;
                  counters = [];
                  attribution = None;
                  fault = Some m;
                  host = None })
          levels
      in
      let report =
        Obs.Report.make
          [ { Obs.Report.bench = String.concat "," files;
              build = "files";
              std_cycles;
              std_insns = Linker.Image.insn_count std;
              std_attribution = None;
              std_fault;
              outputs_agree = true;
              runs;
              std_host = None } ]
      in
      print_endline (Obs.Json.to_string (Obs.Report.to_json report))
    end
    else begin
      let cycles_cell = function
        | Ok c -> string_of_int c
        | Error m -> "FAULT: " ^ m
      in
      Printf.printf "%-14s %10s %10s %8s\n" "level" "text insns" "cycles"
        "vs std";
      Printf.printf "%-14s %10d %10s %8s\n" "standard"
        (Linker.Image.insn_count std) (cycles_cell base) "-";
      List.iter
        (fun (level, r) ->
          match r with
          | Ok (image, stats, cycles) ->
              let vs =
                match (base, cycles) with
                | Ok b, Ok c when b > 0 ->
                    Printf.sprintf "%+7.2f%%"
                      (100. *. float_of_int (b - c) /. float_of_int b)
                | _ -> "-"
              in
              Printf.printf "%-14s %10d %10s %8s\n" (Om.level_name level)
                (Linker.Image.insn_count image) (cycles_cell cycles) vs;
              if level = Om.Full then
                Format.printf "  %a@." Om.Stats.pp stats
          | Error m ->
              Printf.printf "%-14s failed: %s\n" (Om.level_name level) m)
        levels
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Link at every optimization level and compare size and cycles.")
    Term.(const run $ files_arg $ json_flag $ trace_term)

(* --- profile: per-procedure cycle attribution --- *)

let find_benchmark n =
  match Workloads.Programs.find n with
  | Some b -> b
  | None ->
      failwith
        (Printf.sprintf "unknown benchmark %s (know: %s)" n
           (String.concat ", " Workloads.Programs.names))

let profile_cmd =
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"Input files (.mc sources or .o objects).")
  in
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME"
             ~doc:"Profile a suite benchmark instead of input files.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the profiles as JSON on stdout.")
  in
  let top =
    Arg.(value & opt int 12
         & info [ "top" ] ~docv:"N" ~doc:"Procedure rows to print.")
  in
  let run files bench json top tr =
    handle_errors @@ fun () ->
    with_tracing tr @@ fun () ->
    let what, world =
      match (bench, files) with
      | Some n, [] -> (
          let b = find_benchmark n in
          match Workloads.Suite.resolve Workloads.Suite.Compile_each b with
          | Ok w -> (n, w)
          | Error m -> failwith m)
      | None, (_ :: _ as files) -> (
          let units = List.map load_unit files in
          match Linker.Resolve.run units ~archives:[ Runtime.libstd () ] with
          | Ok w -> (String.concat "," files, w)
          | Error m -> failwith m)
      | Some _, _ :: _ -> failwith "give either input files or --bench, not both"
      | None, [] -> failwith "nothing to profile: give input files or --bench NAME"
    in
    let std =
      match Linker.Link.link_resolved world with
      | Ok i -> i
      | Error m -> failwith m
    in
    let full =
      match Om.optimize_resolved Om.Full world with
      | Ok { Om.image; _ } -> image
      | Error m -> failwith m
    in
    let profile name image =
      match Obs.Attr.run image with
      | Ok p -> p
      | Error e ->
          failwith
            (Format.asprintf "%s: simulation fault: %a" name
               Machine.Cpu.pp_error e)
    in
    let pstd = profile "standard" std in
    let pfull = profile "om-full" full in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("schema_version", Obs.Json.Int Obs.Report.schema_version);
                ("program", Obs.Json.String what);
                ("standard", Obs.Attr.to_json pstd);
                ("om-full", Obs.Attr.to_json pfull) ]))
    else begin
      Format.printf "%s: standard link@.%a@.@." what (Obs.Attr.pp ~top) pstd;
      Format.printf "om-full@.%a@.@." (Obs.Attr.pp ~top) pfull;
      Format.printf "address-calculation overhead, cycles (standard -> om-full):@.";
      List.iter
        (fun c ->
          let b0 = (Obs.Attr.bucket pstd.Obs.Attr.totals c).Obs.Attr.b_cycles in
          let b1 = (Obs.Attr.bucket pfull.Obs.Attr.totals c).Obs.Attr.b_cycles in
          Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@."
            (Obs.Attr.category_name c) b0 b1
            (100. *. float_of_int (b1 - b0) /. float_of_int (max 1 b0)))
        Obs.Attr.all_categories;
      Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@." "TOTAL"
        pstd.Obs.Attr.totals.Obs.Attr.p_cycles
        pfull.Obs.Attr.totals.Obs.Attr.p_cycles
        (100.
        *. float_of_int
             (pfull.Obs.Attr.totals.Obs.Attr.p_cycles
             - pstd.Obs.Attr.totals.Obs.Attr.p_cycles)
        /. float_of_int (max 1 pstd.Obs.Attr.totals.Obs.Attr.p_cycles))
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate under the cycle-attribution profiler: per-procedure \
          cycles and the paper's address-calculation categories, standard \
          link vs OM-full.")
    Term.(const run $ files $ bench $ json_flag $ top $ trace_term)

(* --- suite --- *)

let suite_cmd =
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench" ] ~docv:"NAME" ~doc:"Run a single benchmark.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit results as schema-versioned JSON instead of text.")
  in
  let attr_flag =
    Arg.(value & flag
         & info [ "attr" ]
             ~doc:"With --json: include dynamic cycle-attribution buckets \
                   (one extra simulation per image).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"With --json: write the report to $(docv) instead of stdout.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Measure with $(docv) parallel domains (default: the \
                   host's recommended domain count; the OMLT_JOBS \
                   environment variable also overrides it). Results are \
                   identical to a serial run.")
  in
  let run bench json attr out jobs =
    handle_errors @@ fun () ->
    let benches =
      match bench with
      | Some n -> [ find_benchmark n ]
      | None -> Workloads.Programs.all
    in
    (* progress (and failures) stream to stderr as tasks finish; result
       rows print to stdout afterwards, in task order, so the output is
       deterministic whatever the domain interleaving *)
    let progress =
      { Reports.Runner.silent with
        on_done =
          (fun b build r ->
            match r with
            | Ok _ -> ()
            | Error m ->
                Printf.eprintf "%-10s %-12s ERROR %s\n%!"
                  b.Workloads.Programs.name
                  (Workloads.Suite.build_name build) m) }
    in
    let rows = Reports.Runner.matrix ?jobs ~progress benches in
    if not json then
      List.iter
        (fun ((b : Workloads.Programs.benchmark), build, r) ->
          match r with
          | Error _ -> ()
          | Ok (r : Reports.Measure.result) ->
              Printf.printf "%-10s %-12s std=%d %s agree=%b\n%!" b.name
                (Workloads.Suite.build_name build)
                r.Reports.Measure.std_cycles
                (String.concat " "
                   (List.map
                      (fun (run : Reports.Measure.run) ->
                        Printf.sprintf "%s=%+.1f%%"
                          (Om.level_name run.level)
                          (Reports.Measure.improvement r run.level))
                      r.Reports.Measure.runs))
                r.Reports.Measure.outputs_agree)
        rows
    else begin
      let report = Reports.Runner.report ?jobs ~attribution:attr rows in
      match out with
      | Some path -> Obs.Report.write path report
      | None -> print_endline (Obs.Json.to_string (Obs.Report.to_json report))
    end
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the SPEC92-analogue benchmark matrix.")
    Term.(const run $ bench $ json_flag $ attr_flag $ out $ jobs)

let main =
  Cmd.group
    (Cmd.info "omlink" ~version:"1.0"
       ~doc:
         "Link-time optimization of address calculation on a 64-bit \
          architecture (Srivastava & Wall, PLDI 1994), reproduced.")
    [ compile_cmd; dis_cmd; run_cmd; image_cmd; stats_cmd; profile_cmd;
      suite_cmd ]

let () = exit (Cmd.eval main)
