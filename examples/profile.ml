(* Profile: per-procedure cycle attribution via Obs.Attr — where the
   removed address-calculation overhead actually lived, by procedure and
   by mechanism (GAT address loads, GP setups/resets, PV loads).

     dune exec examples/profile.exe [benchmark]   (default: li) *)

let profile what image =
  match Obs.Attr.run image with
  | Ok p -> p
  | Error e ->
      Format.eprintf "%s: simulation fault: %a@." what Machine.Cpu.pp_error e;
      exit 1

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "li" in
  let b =
    match Workloads.Programs.find bench with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %s\n" bench;
        exit 1
  in
  let world =
    match Workloads.Suite.compile_cached Workloads.Suite.Compile_each b with
    | Ok w -> w
    | Error m ->
        Printf.eprintf "%s\n" m;
        exit 1
  in
  let std = Result.get_ok (Linker.Link.link_resolved world) in
  let full =
    match Om.optimize_resolved Om.Full world with
    | Ok { Om.image; _ } -> image
    | Error m -> failwith m
  in
  let pstd = profile "standard" std in
  let pfull = profile "om-full" full in
  Printf.printf
    "%s: per-procedure cycle attribution, standard link vs OM-full\n\n" bench;
  Format.printf "standard link@.%a@.@." (Obs.Attr.pp ~top:12) pstd;
  Format.printf "om-full@.%a@.@." (Obs.Attr.pp ~top:12) pfull;
  (* the paper's story in four lines: which mechanism paid for what *)
  Format.printf "cycles by address-calculation mechanism:@.";
  List.iter
    (fun c ->
      let b0 = (Obs.Attr.bucket pstd.Obs.Attr.totals c).Obs.Attr.b_cycles in
      let b1 = (Obs.Attr.bucket pfull.Obs.Attr.totals c).Obs.Attr.b_cycles in
      Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@."
        (Obs.Attr.category_name c) b0 b1
        (100. *. float_of_int (b1 - b0) /. float_of_int (max 1 b0)))
    Obs.Attr.all_categories;
  let t0 = pstd.Obs.Attr.totals.Obs.Attr.p_cycles in
  let t1 = pfull.Obs.Attr.totals.Obs.Attr.p_cycles in
  Format.printf "  %-10s %12d -> %10d  (%+.1f%%)@." "TOTAL" t0 t1
    (100. *. float_of_int (t1 - t0) /. float_of_int (max 1 t0))
