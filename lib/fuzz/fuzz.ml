module Rng = Rng
module Prog = Prog
module Gen = Gen
module Oracle = Oracle

let case_seed ~seed ~index = Rng.derive seed index

let run_case ?(span_stress = false) cs =
  Oracle.check (Gen.program ~span_stress cs)

let shrink ?(max_checks = 2000) prog failure =
  let checks = ref 0 in
  let same_class f =
    Oracle.generated_failure f = Oracle.generated_failure failure
  in
  let rec go p pf =
    let rec walk seq =
      match seq () with
      | Seq.Nil -> (p, pf)
      | Seq.Cons (cand, rest) ->
          if !checks >= max_checks then (p, pf)
          else begin
            incr checks;
            match Oracle.check cand with
            | Error f when same_class f -> go cand f
            | _ -> walk rest
          end
    in
    walk (Prog.shrink_steps p)
  in
  go prog failure

type reproducer = {
  r_index : int;
  r_case_seed : int;
  r_failure : Oracle.failure;
  r_prog : Prog.t;
  r_shrunk : Prog.t;
  r_shrunk_failure : Oracle.failure;
  r_dir : string option;
}

type report = { seed : int; count : int; failed : reproducer list }

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let write_sources dir prog =
  ensure_dir dir;
  List.iter
    (fun (name, src) -> write_file (Filename.concat dir (name ^ ".mc")) src)
    (Prog.render prog)

let write_reproducer ~out_dir ~seed r =
  ensure_dir out_dir;
  let dir =
    Filename.concat out_dir (Printf.sprintf "case-%d-%d" seed r.r_index)
  in
  ensure_dir dir;
  write_sources (Filename.concat dir "original") r.r_prog;
  write_sources (Filename.concat dir "shrunk") r.r_shrunk;
  let readme =
    Format.asprintf
      "# fuzz reproducer: campaign seed %d, case %d\n\n\
       - case seed: `%d` (replay with `omlink fuzz --replay %d`)\n\
       - original failure: %a\n\
       - shrunk failure: %a\n\
       - size: %d nodes original, %d shrunk\n\n\
       `original/` holds the generated modules as the campaign saw them;\n\
       `shrunk/` is the greedy minimization that still fails. Each `.mc`\n\
       file is one minic module; compile them together (compile-each or\n\
       merged) against the standard prelude to reproduce.\n"
      seed r.r_index r.r_case_seed r.r_case_seed Oracle.pp_failure r.r_failure
      Oracle.pp_failure r.r_shrunk_failure (Prog.size r.r_prog)
      (Prog.size r.r_shrunk)
  in
  write_file (Filename.concat dir "README.md") readme;
  dir

let campaign ?jobs ?(out_dir = Some "_fuzz") ?progress ?(span_stress = false)
    ~seed ~count () =
  let jobs =
    match jobs with Some j -> j | None -> Reports.Pool.default_jobs ()
  in
  (* Force [Runtime.libstd]'s toplevel lazy before the first
     [Domain.spawn]; concurrent forcing raises CamlinternalLazy.Undefined
     (same hazard Reports.Runner.warm_up guards against). *)
  ignore (Runtime.libstd ());
  (* Chunked so long campaigns can report progress; chunking does not
     affect results — each case depends only on its derived seed. *)
  let chunk = max 1 (jobs * 8) in
  let failures = ref [] in
  let done_ = ref 0 in
  let rec sweep lo =
    if lo < count then begin
      let hi = min count (lo + chunk) in
      let indices = List.init (hi - lo) (fun k -> lo + k) in
      let results =
        Reports.Pool.map ~jobs
          (fun index ->
            let cs = case_seed ~seed ~index in
            match run_case ~span_stress cs with
            | Ok () -> None
            | Error f -> Some (index, cs, f))
          indices
      in
      List.iter
        (function Some r -> failures := r :: !failures | None -> ())
        results;
      done_ := hi;
      (match progress with
      | Some p -> p ~done_:hi ~total:count ~failed:(List.length !failures)
      | None -> ());
      sweep hi
    end
  in
  sweep 0;
  let failed =
    List.rev_map
      (fun (index, cs, f) ->
        let prog = Gen.program ~span_stress cs in
        let shrunk, shrunk_failure = shrink prog f in
        let r =
          {
            r_index = index;
            r_case_seed = cs;
            r_failure = f;
            r_prog = prog;
            r_shrunk = shrunk;
            r_shrunk_failure = shrunk_failure;
            r_dir = None;
          }
        in
        match out_dir with
        | None -> r
        | Some d -> { r with r_dir = Some (write_reproducer ~out_dir:d ~seed r) })
      !failures
  in
  { seed; count; failed }

let pp_report ppf r =
  if r.failed = [] then
    Format.fprintf ppf "fuzz: seed %d: %d/%d cases passed" r.seed r.count
      r.count
  else begin
    Format.fprintf ppf "fuzz: seed %d: %d failure(s) in %d cases" r.seed
      (List.length r.failed) r.count;
    List.iter
      (fun f ->
        Format.fprintf ppf "@\n  case %d (seed %d): %a" f.r_index f.r_case_seed
          Oracle.pp_failure f.r_shrunk_failure;
        match f.r_dir with
        | Some d -> Format.fprintf ppf "@\n    reproducer: %s" d
        | None -> ())
      r.failed
  end
