(** Submodules, re-exported. *)

module Rng : module type of Rng
module Prog : module type of Prog
module Gen : module type of Gen
module Oracle : module type of Oracle

(** Randomized differential testing of the whole link pipeline.

    A campaign draws [count] programs from {!Gen.program}, seeded
    per-case with {!case_seed} so the campaign is deterministic for a
    given [--seed] regardless of job count, and runs each through the
    three oracles in {!Oracle}. Failing cases are shrunk to a minimal
    reproducer and written under [out_dir] (default [_fuzz/]) together
    with a README recording the seed and the failure. *)

val case_seed : seed:int -> index:int -> int
(** The derived seed for case [index] of a campaign: mixing, not
    [seed + index], so neighbouring campaigns don't share cases. *)

val run_case : ?span_stress:bool -> int -> (unit, Oracle.failure) result
(** Generate the program for one derived case seed and run all oracles
    over it. [run_case (case_seed ~seed ~index)] replays exactly case
    [index] of campaign [seed]; pass the campaign's [span_stress] to
    replay a span-stress case. *)

val shrink :
  ?max_checks:int -> Prog.t -> Oracle.failure -> Prog.t * Oracle.failure
(** Greedy minimization: repeatedly take the first single-step reduction
    (from {!Prog.shrink_steps}) that still fails in the same class —
    pipeline failures never shrink into compile-stage ones, so the
    reproducer stays a valid program. Each candidate costs a full oracle
    run; [max_checks] (default 2000) bounds the effort. Returns the
    smallest program found and its failure. *)

type reproducer = {
  r_index : int;  (** case index within the campaign *)
  r_case_seed : int;
  r_failure : Oracle.failure;  (** as originally observed *)
  r_prog : Prog.t;  (** the unshrunk program *)
  r_shrunk : Prog.t;
  r_shrunk_failure : Oracle.failure;
  r_dir : string option;  (** reproducer directory, when written *)
}

type report = {
  seed : int;
  count : int;
  failed : reproducer list;  (** in case-index order; empty = clean *)
}

val write_reproducer : out_dir:string -> seed:int -> reproducer -> string
(** Write [original/] and [shrunk/] minic sources plus a [README.md] to
    [out_dir/case-<seed>-<index>/]; returns that directory. *)

val campaign :
  ?jobs:int ->
  ?out_dir:string option ->
  ?progress:(done_:int -> total:int -> failed:int -> unit) ->
  ?span_stress:bool ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run cases [0 .. count-1] across a domain pool ({!Reports.Pool.map};
    [jobs] defaults to it). The report — and any reproducer directories —
    are identical whatever [jobs] is. [out_dir] defaults to
    [Some "_fuzz"]; pass [None] to skip writing reproducers.
    [progress] is called between parallel chunks. Shrinking runs
    serially after the sweep (failures are expected to be rare).
    [span_stress] (default off) draws every case from {!Gen.program}'s
    span-boundary-biased mode. *)

val pp_report : Format.formatter -> report -> unit
