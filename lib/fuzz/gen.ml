module P = Prog

(* Budgets are estimated dynamic instruction counts: generation charges
   each construct (times its enclosing loop multiplier) against the
   function's budget, so no generated case can blow the simulation up.
   The numbers are loose upper bounds, not measurements. *)
let fn_budget = 20_000
let main_budget = 100_000
let pv_call_cost = fn_budget + 200

(* 64-bit-interesting literals: boundary values, values needing the
   literal pool, values that don't fit lda/ldah displacement windows. *)
let constants =
  [ 0L; 1L; 2L; 3L; 7L; 8L; 13L; 100L; 255L; 4095L; 32767L; 32768L;
    65535L; 1000000L; 2654435761L; 4294967295L; 123456789123L;
    0x7FFFFFFFFFFFFFFFL; -1L; -2L; -255L; -32768L; -123456789123L ]

(* Extra literals the span-stress mode mixes in: both sides of the
   ldah/lda pair span (materialized vs pooled) and the GP-window width
   itself. *)
let span_constants =
  [ 0x7fff7fffL; 0x7fff8000L; -0x80008000L; -0x80008001L; 0xffefL ]

(* globally-visible function metadata, decided before bodies exist *)
type fsig = {
  s_name : string;
  s_module : int;
  s_static : bool;
  s_params : P.param list;
  s_pv_free : bool;
      (* makes no pv calls, directly or transitively — the property a
         pv target needs so indirect dispatch can never recurse *)
  mutable s_cost : int; (* estimated cost of one call, set after body gen *)
}

type genv = {
  scalars : string list;          (* readable scalar names *)
  writables : string list;        (* assignable scalars (locals, data globals) *)
  arrays : (string * int) list;   (* (name, index mask) *)
  passable : string list;         (* arrays ≥ ptr_mask+1 elements *)
  loop_depth : int;
}

type fctx = {
  rng : Rng.t;
  mutable budget : int;
  mutable fresh : int;
  callables : fsig list;          (* direct-call candidates *)
  pvs : (string * int) list;      (* (pv global, arity) usable here *)
  consts : int64 list;            (* literal pool for leaves *)
}

let fresh c prefix =
  let n = c.fresh in
  c.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let charge c ~mult n =
  c.budget <- c.budget - (mult * n)

let affordable c ~mult n = c.budget >= mult * n

(* --- expressions --- *)

let gen_leaf c (env : genv) =
  let choices =
    [ (3, `Const); (1, `Zero) ]
    @ (if env.scalars <> [] then [ (4, `Var) ] else [])
    @ if env.arrays <> [] then [ (2, `Idx) ] else []
  in
  match Rng.weighted c.rng choices with
  | `Const -> P.Int (Rng.choose c.rng c.consts)
  | `Zero -> P.Int (Int64.of_int (Rng.int c.rng 16))
  | `Var -> P.Var (Rng.choose c.rng env.scalars)
  | `Idx ->
      let a, mask = Rng.choose c.rng env.arrays in
      let inner =
        if env.scalars <> [] && Rng.bool c.rng then
          P.Var (Rng.choose c.rng env.scalars)
        else P.Int (Int64.of_int (Rng.int c.rng (mask + 1)))
      in
      P.Idx (a, mask, inner)

let binops =
  [ (4, P.Add); (3, P.Sub); (2, P.Mul); (1, P.Div); (1, P.Rem);
    (1, P.Shl); (1, P.Shr); (2, P.Band); (2, P.Bor); (2, P.Bxor);
    (1, P.Eq); (1, P.Ne); (1, P.Lt); (1, P.Le); (1, P.Gt); (1, P.Ge);
    (1, P.Land); (1, P.Lor) ]

(* library routines safe for arbitrary arguments *)
let lib_calls = [ ("iabs", 1, 12); ("imin", 2, 12); ("imax", 2, 12); ("randq", 0, 25) ]

let rec gen_expr c env ~mult ~depth =
  if depth <= 0 then gen_leaf c env
  else begin
    let callables =
      List.filter
        (fun s ->
          affordable c ~mult s.s_cost
          && List.for_all
               (function P.Pptr _ -> env.passable <> [] | P.Pscalar _ -> true)
               s.s_params)
        c.callables
    in
    let pvs_ok = c.pvs <> [] && affordable c ~mult pv_call_cost in
    let choices =
      [ (5, `Bin); (1, `Un); (3, `Leaf); (2, `Lib) ]
      @ (if callables <> [] then [ (3, `Call) ] else [])
      @ if pvs_ok then [ (2, `Pv) ] else []
    in
    match Rng.weighted c.rng choices with
    | `Leaf -> gen_leaf c env
    | `Un ->
        P.Un
          (Rng.choose c.rng [ P.Neg; P.Lnot; P.Bnot ],
           gen_expr c env ~mult ~depth:(depth - 1))
    | `Bin ->
        let op = Rng.weighted c.rng binops in
        P.Bin
          (op,
           gen_expr c env ~mult ~depth:(depth - 1),
           gen_expr c env ~mult ~depth:(depth - 1))
    | `Lib ->
        let name, arity, cost = Rng.choose c.rng lib_calls in
        charge c ~mult cost;
        P.Call
          (name,
           List.init arity (fun _ ->
               P.Aexpr (gen_expr c env ~mult ~depth:(depth - 1))))
    | `Call ->
        let s = Rng.choose c.rng callables in
        charge c ~mult s.s_cost;
        P.Call
          (s.s_name,
           List.map
             (function
               | P.Pscalar _ ->
                   P.Aexpr (gen_expr c env ~mult ~depth:(depth - 1))
               | P.Pptr _ -> P.Aarr (Rng.choose c.rng env.passable))
             s.s_params)
    | `Pv ->
        let pv, arity = Rng.choose c.rng c.pvs in
        charge c ~mult pv_call_cost;
        P.Call
          (pv,
           List.init arity (fun _ ->
               P.Aexpr (gen_expr c env ~mult ~depth:(depth - 1))))
  end

(* --- statements --- *)

let rec gen_stmt c env ~mult : P.stmt list * genv =
  let depth = 1 + Rng.int c.rng 3 in
  let choices =
    [ (3, `Let); (2, `Print) ]
    @ (if env.writables <> [] then [ (4, `Assign) ] else [])
    @ (if env.arrays <> [] then [ (3, `AssignIdx) ] else [])
    @ (if env.loop_depth < 2 && affordable c ~mult 64 then [ (3, `Loop) ] else [])
    @ (if affordable c ~mult 16 then [ (2, `If) ] else [])
    @ if env.loop_depth = 0 && affordable c ~mult 120 then [ (1, `LetArr) ] else []
  in
  charge c ~mult 6;
  match Rng.weighted c.rng choices with
  | `Let ->
      let x = fresh c "x" in
      ( [ P.Let (x, gen_expr c env ~mult ~depth) ],
        { env with
          scalars = x :: env.scalars;
          writables = x :: env.writables } )
  | `Print -> ([ P.Print (gen_expr c env ~mult ~depth) ], env)
  | `Assign ->
      let x = Rng.choose c.rng env.writables in
      ([ P.Assign (x, gen_expr c env ~mult ~depth) ], env)
  | `AssignIdx ->
      let a, mask = Rng.choose c.rng env.arrays in
      ( [ P.AssignIdx
            (a, mask, gen_expr c env ~mult ~depth:1,
             gen_expr c env ~mult ~depth) ],
        env )
  | `LetArr ->
      let a = fresh c "la" in
      charge c ~mult 110;
      ( [ P.LetArr (a, 16) ],
        { env with
          arrays = (a, 15) :: env.arrays;
          passable = a :: env.passable } )
  | `If ->
      let cond = gen_expr c env ~mult ~depth:2 in
      let nthen = 1 + Rng.int c.rng 2 in
      let nelse = Rng.int c.rng 2 in
      let a = gen_block c env ~mult ~n:nthen in
      let b = gen_block c env ~mult ~n:nelse in
      (* a conditional early return, sometimes, in one branch only *)
      let a =
        if Rng.int c.rng 6 = 0 then
          a @ [ P.Ret (gen_expr c env ~mult ~depth:1) ]
        else a
      in
      ([ P.If (cond, a, b) ], env)
  | `Loop ->
      let v = fresh c "i" in
      let bound = Rng.choose c.rng [ 2; 3; 4; 5; 8; 16 ] in
      let inner =
        { env with
          scalars = v :: env.scalars;
          loop_depth = env.loop_depth + 1 }
      in
      let body =
        gen_block c inner ~mult:(mult * bound) ~n:(1 + Rng.int c.rng 3)
      in
      ([ P.Loop (v, bound, body) ], env)

and gen_block c env ~mult ~n : P.stmt list =
  let rec go env n acc =
    if n = 0 then List.rev acc
    else
      let stmts, env = gen_stmt c env ~mult in
      go env (n - 1) (List.rev_append stmts acc)
  in
  go env n []

(* --- whole programs --- *)

type gdecl = { d_name : string; d_module : int; d_static : bool; d_kind : [ `Scalar of int64 | `Array of int ] }

let program ?(span_stress = false) seed =
  let rng = Rng.create seed in
  let consts = if span_stress then constants @ span_constants else constants in
  let nmods = 1 + Rng.int rng 3 in
  (* data globals *)
  let gctr = ref 0 in
  let decls = ref [] in
  for m = 0 to nmods - 1 do
    for _ = 0 to Rng.int rng 3 do
      let name = Printf.sprintf "g%d" !gctr in
      incr gctr;
      decls :=
        { d_name = name; d_module = m; d_static = Rng.int rng 4 = 0;
          d_kind = `Scalar (Rng.choose rng consts) }
        :: !decls
    done;
    for _ = 1 to Rng.int rng 3 do
      let name = Printf.sprintf "ar%d" !gctr in
      incr gctr;
      let sz = Rng.choose rng [ 16; 16; 64; 256; 1024 ] in
      decls :=
        { d_name = name; d_module = m; d_static = Rng.int rng 5 = 0;
          d_kind = `Array sz }
        :: !decls
    done
  done;
  (* occasionally a big array that pushes later data out of the GP window *)
  if Rng.int rng 3 = 0 then begin
    let name = Printf.sprintf "ar%d" !gctr in
    incr gctr;
    decls :=
      { d_name = name; d_module = Rng.int rng nmods; d_static = false;
        d_kind = `Array (Rng.choose rng [ 4096; 8192 ]) }
      :: !decls
  end;
  if span_stress then begin
    (* Straddle the 16-bit GP window on purpose. A 64KB common lands at
       the end of the sorted commons and swallows the window edge; a few
       extra scalars jitter where (in bytes) the edge falls; small static
       arrays go to .sbss/.bss behind the commons, so their bases sit
       just past the edge. Span decisions then flip within a handful of
       bytes across seeds. *)
    let name = Printf.sprintf "ar%d" !gctr in
    incr gctr;
    decls :=
      { d_name = name; d_module = Rng.int rng nmods; d_static = false;
        d_kind = `Array 8192 }
      :: !decls;
    for _ = 1 to Rng.int rng 8 do
      let name = Printf.sprintf "g%d" !gctr in
      incr gctr;
      decls :=
        { d_name = name; d_module = Rng.int rng nmods; d_static = false;
          d_kind = `Scalar (Rng.choose rng consts) }
        :: !decls
    done;
    for _ = 1 to 3 + Rng.int rng 4 do
      let name = Printf.sprintf "ar%d" !gctr in
      incr gctr;
      decls :=
        { d_name = name; d_module = Rng.int rng nmods; d_static = true;
          d_kind = `Array (Rng.choose rng [ 2; 4; 16 ]) }
        :: !decls
    done
  end;
  let decls = List.rev !decls in
  (* function signatures; bodies come later, in index order *)
  let nf = 2 + Rng.int rng 6 in
  let sigs =
    List.init nf (fun i ->
        let nscalar = Rng.int rng 4 in
        let nptr = if Rng.int rng 3 = 0 then 1 else 0 in
        let params =
          List.init nscalar (fun k -> P.Pscalar (Printf.sprintf "p%d" k))
          @ List.init nptr (fun k -> P.Pptr (Printf.sprintf "q%d" k))
        in
        { s_name = Printf.sprintf "f%d" i;
          s_module = Rng.int rng nmods;
          s_static = Rng.int rng 4 = 0;
          s_params = params;
          s_pv_free = Rng.int rng 3 > 0;
          s_cost = fn_budget })
  in
  (* procedure variables: arities drawn from eligible targets *)
  let pv_targets =
    List.filter
      (fun s ->
        s.s_pv_free && (not s.s_static)
        && List.for_all (function P.Pscalar _ -> true | P.Pptr _ -> false)
             s.s_params)
      sigs
  in
  let npv = if pv_targets = [] then 0 else Rng.int rng 3 in
  let pvs =
    List.init npv (fun k ->
        let target = Rng.choose rng pv_targets in
        ( Printf.sprintf "pv%d" k,
          Rng.int rng nmods,
          List.length target.s_params ))
  in
  (* environment pieces visible from module [m] *)
  let visible_scalars m =
    List.filter_map
      (fun d ->
        match d.d_kind with
        | `Scalar _ when (not d.d_static) || d.d_module = m -> Some d.d_name
        | _ -> None)
      decls
  in
  let visible_arrays m =
    List.filter_map
      (fun d ->
        match d.d_kind with
        | `Array sz when (not d.d_static) || d.d_module = m ->
            Some (d.d_name, sz - 1)
        | _ -> None)
      decls
  in
  let base_env m params =
    let pscalars =
      List.filter_map
        (function P.Pscalar p -> Some p | P.Pptr _ -> None)
        params
    in
    let pptrs =
      List.filter_map
        (function P.Pptr p -> Some (p, P.ptr_mask) | P.Pscalar _ -> None)
        params
    in
    let globals = visible_scalars m in
    let arrays = visible_arrays m in
    { scalars = pscalars @ globals;
      writables = globals;
      arrays = pptrs @ arrays;
      passable =
        List.filter_map
          (fun (a, mask) -> if mask >= P.ptr_mask then Some a else None)
          arrays;
      loop_depth = 0 }
  in
  (* bodies, in index order so callee costs are known *)
  let bodies = Hashtbl.create 16 in
  List.iteri
    (fun i s ->
      let callables =
        List.filteri
          (fun j s' ->
            j < i
            && ((not s'.s_static) || s'.s_module = s.s_module)
            && ((not s.s_pv_free) || s'.s_pv_free))
          sigs
      in
      let fpvs =
        if s.s_pv_free then []
        else List.map (fun (pv, _, arity) -> (pv, arity)) pvs
      in
      let c =
        { rng; budget = fn_budget; fresh = 0; callables; pvs = fpvs; consts }
      in
      let env = base_env s.s_module s.s_params in
      let n = 1 + Rng.int rng 4 in
      let body = gen_block c env ~mult:1 ~n in
      (* span stress: pad the first function with a long straight line of
         cheap statements, stretching every branch and call span over it
         and pushing later procedures' entries (and so their GAT and
         GP-setup displacements) far from their optimistic guesses *)
      let body =
        if span_stress && i = 0 then begin
          let n = 300 + Rng.int rng 500 in
          charge c ~mult:1 (2 * n);
          let x = fresh c "pad" in
          P.Let (x, P.Int 1L)
          :: List.init n (fun k ->
                 P.Assign
                   ( x,
                     P.Bin
                       ( (if k land 1 = 0 then P.Add else P.Bxor),
                         P.Var x,
                         P.Int (Int64.of_int k) ) ))
          @ (P.Print (P.Var x) :: body)
        end
        else body
      in
      let body = body @ [ P.Ret (gen_expr c env ~mult:1 ~depth:2) ] in
      s.s_cost <- max 40 (fn_budget - c.budget + 40);
      Hashtbl.replace bodies s.s_name body)
    sigs;
  (* main: last module, last function *)
  let main_module = nmods - 1 in
  let main_body =
    let c =
      { rng;
        budget = main_budget;
        fresh = 0;
        callables =
          List.filter
            (fun s -> (not s.s_static) || s.s_module = main_module)
            sigs;
        pvs = List.map (fun (pv, _, arity) -> (pv, arity)) pvs;
        consts }
    in
    let env = base_env main_module [] in
    (* bind every procedure variable before anything can call it *)
    let assigns =
      List.map
        (fun (pv, _, arity) ->
          let cands =
            List.filter
              (fun s -> List.length s.s_params = arity)
              pv_targets
          in
          P.TakeAddr (pv, (Rng.choose rng cands).s_name))
        pvs
    in
    let body = gen_block c env ~mult:1 ~n:(2 + Rng.int rng 5) in
    (* sometimes retarget a pv mid-stream and compute some more *)
    let body =
      match pvs with
      | (pv, _, arity) :: _ when Rng.bool rng ->
          let cands =
            List.filter (fun s -> List.length s.s_params = arity) pv_targets
          in
          body
          @ [ P.TakeAddr (pv, (Rng.choose rng cands).s_name) ]
          @ gen_block c env ~mult:1 ~n:(1 + Rng.int rng 2)
      | _ -> body
    in
    (* epilogue: print every visible data global so layout bugs become
       observable output differences (pv globals hold addresses and are
       deliberately excluded) *)
    let epilogue =
      List.concat
        (List.mapi
           (fun k d ->
             if d.d_static && d.d_module <> main_module then []
             else
               match d.d_kind with
               | `Scalar _ -> [ P.Print (P.Var d.d_name) ]
               | `Array sz ->
                   let bound = min sz 256 in
                   let ck = Printf.sprintf "ck%d" k in
                   let ci = Printf.sprintf "ci%d" k in
                   [ P.Let (ck, P.Int 0L);
                     P.Loop
                       ( ci, bound,
                         [ P.Assign
                             ( ck,
                               P.Bin
                                 ( P.Bxor,
                                   P.Var ck,
                                   P.Bin
                                     ( P.Add,
                                       P.Idx (d.d_name, sz - 1, P.Var ci),
                                       P.Var ci ) ) ) ] );
                     P.Print (P.Var ck) ])
           decls)
    in
    assigns @ body @ epilogue @ [ P.Ret (gen_expr c env ~mult:1 ~depth:1) ]
  in
  (* assemble modules *)
  let modules =
    List.init nmods (fun m ->
        let globals =
          List.filter_map
            (fun d ->
              if d.d_module <> m then None
              else
                match d.d_kind with
                | `Scalar init ->
                    Some
                      (P.Gscalar
                         { name = d.d_name; static = d.d_static; init;
                           is_pv = false })
                | `Array size ->
                    Some
                      (P.Garray
                         { name = d.d_name; static = d.d_static; size }))
            decls
          @ List.filter_map
              (fun (pv, pm, _) ->
                if pm <> m then None
                else
                  Some
                    (P.Gscalar
                       { name = pv; static = false; init = 0L; is_pv = true }))
              pvs
        in
        let funcs =
          List.filteri (fun _ _ -> true) sigs
          |> List.filter (fun s -> s.s_module = m)
          |> List.map (fun s ->
                 { P.fname = s.s_name;
                   fstatic = s.s_static;
                   params = s.s_params;
                   body = Hashtbl.find bodies s.s_name })
        in
        let funcs =
          if m = main_module then
            funcs
            @ [ { P.fname = "main"; fstatic = false; params = [];
                  body = main_body } ]
          else funcs
        in
        { P.mname = Printf.sprintf "m%d" m; globals; funcs })
  in
  { P.modules }
