(** Seed-driven random program generation.

    [program seed] builds a multi-module {!Prog.t} exercising the whole
    OM surface: scalar and array globals spread across modules and
    sections (including occasional 32–64KB arrays that push data past
    the GP window), static vs exported symbols, direct and cross-module
    calls, calls through procedure variables, bounded loops, and the
    full expression grammar.

    Generation is pure in the seed: the same seed yields the same
    program on every host and domain count. Every generated program is
    deterministic and terminating by construction (see {!Prog}), with an
    estimated dynamic cost kept under a fixed instruction budget so
    simulation stays fast. The program prints a checksum of every
    reachable non-pointer global at exit, so silent data corruption
    becomes an observable behavioral difference.

    With [span_stress] the draw is biased toward span boundaries: a 64KB
    common array swallows the 16-bit GP-window edge (with scalar jitter
    deciding exactly where the edge falls) while small static arrays land
    past it, the first function is padded with hundreds of straight-line
    statements so branch and call spans stretch over it, and the literal
    mix includes both sides of the ldah/lda pair span. The same seed
    yields different (but still deterministic) programs with the knob on
    and off. *)

val program : ?span_stress:bool -> int -> Prog.t
