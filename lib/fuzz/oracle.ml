type failure = { stage : string; detail : string }

let pp_failure ppf f = Format.fprintf ppf "[%s] %s" f.stage f.detail
let generated_failure f = f.stage = "compile" || f.stage = "resolve"

let fail stage fmt =
  Format.kasprintf (fun detail -> Error { stage; detail }) fmt

let ( let* ) = Result.bind

(* Generated programs are budget-bounded to a couple hundred thousand
   instructions; a limit three orders of magnitude above that catches a
   divergent image in well under a second instead of minutes. *)
let config = { Machine.Cpu.default_config with Machine.Cpu.max_insns = 50_000_000 }

let check_stats what (fast : Machine.Cpu.outcome) (ref_ : Machine.Cpu.outcome)
    =
  let s_f = fast.Machine.Cpu.stats and s_r = ref_.Machine.Cpu.stats in
  let cmp name f =
    let a = f s_f and b = f s_r in
    if a = b then Ok () else fail ("interp " ^ what) "%s: fast %d, reference %d" name a b
  in
  if fast.Machine.Cpu.output <> ref_.Machine.Cpu.output then
    fail ("interp " ^ what) "output differs:\nfast     : %S\nreference: %S"
      fast.Machine.Cpu.output ref_.Machine.Cpu.output
  else if fast.Machine.Cpu.exit_code <> ref_.Machine.Cpu.exit_code then
    fail ("interp " ^ what) "exit code: fast %Ld, reference %Ld"
      fast.Machine.Cpu.exit_code ref_.Machine.Cpu.exit_code
  else
    let* () = cmp "insns" (fun s -> s.Machine.Cpu.insns) in
    let* () = cmp "cycles" (fun s -> s.Machine.Cpu.cycles) in
    let* () = cmp "loads" (fun s -> s.Machine.Cpu.loads) in
    let* () = cmp "stores" (fun s -> s.Machine.Cpu.stores) in
    let* () = cmp "icache misses" (fun s -> s.Machine.Cpu.icache_misses) in
    let* () = cmp "dcache misses" (fun s -> s.Machine.Cpu.dcache_misses) in
    cmp "nops" (fun s -> s.Machine.Cpu.nops_executed)

(* Oracle 2: the structural checker must come back clean. *)
let verify what image =
  match Om.Verify.image image with
  | [] -> Ok ()
  | issues ->
      fail ("verify " ^ what) "%d issue(s); first: %a" (List.length issues)
        Om.Verify.pp_issue (List.hd issues)

(* Oracle 3: the decoded fast path and the reference interpreter must
   agree on the outcome and on every counter. A fault from either is a
   failure outright — generated programs are well-defined by
   construction, so no image may trap. *)
let run_both what image =
  let* decoded =
    match Machine.Cpu.decode image with
    | Ok d -> Ok d
    | Error e -> fail ("run " ^ what) "decode: %a" Machine.Cpu.pp_error e
  in
  let* fast =
    match Machine.Cpu.run_decoded ~config decoded with
    | Ok o -> Ok o
    | Error e -> fail ("run " ^ what) "fast path: %a" Machine.Cpu.pp_error e
  in
  let* ref_ =
    match Machine.Cpu.run_reference ~config image with
    | Ok o -> Ok o
    | Error e ->
        fail ("interp " ^ what) "reference faulted (%a), fast path ran"
          Machine.Cpu.pp_error e
  in
  let* () = check_stats what fast ref_ in
  Ok fast

(* Oracle 1: observable behavior must not depend on the link
   configuration. Stats legitimately differ across levels; output and
   exit state may not. *)
let check_behavior what ~(baseline : Machine.Cpu.outcome)
    (o : Machine.Cpu.outcome) =
  if o.Machine.Cpu.output <> baseline.Machine.Cpu.output then
    fail ("behavior " ^ what) "output differs from std link:\nstd: %S\n%s: %S"
      baseline.Machine.Cpu.output what o.Machine.Cpu.output
  else if o.Machine.Cpu.exit_code <> baseline.Machine.Cpu.exit_code then
    fail ("behavior " ^ what) "exit code differs from std link: std %Ld, %s %Ld"
      baseline.Machine.Cpu.exit_code what o.Machine.Cpu.exit_code
  else Ok ()

let check_image what ?baseline image =
  let* () = verify what image in
  let* outcome = run_both what image in
  let* () =
    match baseline with
    | None -> Ok ()
    | Some b -> check_behavior what ~baseline:b outcome
  in
  Ok outcome

let std_link what world =
  match Linker.Link.link_resolved world with
  | Ok image -> Ok image
  | Error m -> fail ("link " ^ what) "%s" m

let om_link what level world =
  match Om.optimize_resolved level world with
  | Ok { Om.image; _ } -> Ok image
  | Error m -> fail (Printf.sprintf "link %s" what) "%s" m

let check_world tag world ?baseline () =
  let* std = std_link (tag ^ "std") world in
  let* base = check_image (tag ^ "std") ?baseline std in
  let baseline = Option.value baseline ~default:base in
  let rec levels = function
    | [] -> Ok baseline
    | level :: rest ->
        let what = tag ^ Om.level_name level in
        let* image = om_link what level world in
        let* _ = check_image what ~baseline image in
        levels rest
  in
  levels Om.all_levels

let check_sources_exn sources =
  (* Compile-each: the paper's conservative per-module build, the
     configuration with the most GAT and GP-setup pressure. *)
  let* units =
    try
      Ok
        (List.map
           (fun (name, src) ->
             Minic.Driver.compile_module ~opt:Minic.Driver.O2
               ~prelude:Runtime.prelude ~name src)
           sources)
    with Minic.Driver.Error m -> fail "compile" "%s" m
  in
  let* world =
    match Linker.Resolve.run units ~archives:[ Runtime.libstd () ] with
    | Ok w -> Ok w
    | Error m -> fail "resolve" "%s" m
  in
  let* baseline = check_world "" world () in
  (* Compile-all: merged with interprocedural knowledge and inlining —
     the other §5 build style; must still behave identically. *)
  let* merged =
    try
      Ok
        (Minic.Driver.compile_merged ~opt:Minic.Driver.O2
           ~prelude:Runtime.prelude ~name:"fuzz_all.o" sources)
    with Minic.Driver.Error m -> fail "compile" "merged: %s" m
  in
  let* world_all =
    match Linker.Resolve.run [ merged ] ~archives:[ Runtime.libstd () ] with
    | Ok w -> Ok w
    | Error m -> fail "resolve" "merged: %s" m
  in
  let* _ = check_world "merged " world_all ~baseline () in
  Ok ()

(* A stray exception anywhere in the pipeline — an [invalid_arg] deep in
   codegen, say — is itself a reportable finding, and must not take the
   whole campaign down through the domain pool. [Driver.Error] is already
   mapped to the "compile" stage above, so whatever reaches this handler
   is a crash, which the shrinker treats as a pipeline-class failure. *)
let check_sources sources =
  try check_sources_exn sources
  with e -> fail "exception" "%s" (Printexc.to_string e)

let check prog = check_sources (Prog.render prog)
