(** The fuzzer's oracles: everything that must hold of one generated
    program, whatever the link configuration.

    For each case the pipeline is run end to end — compile-each plus a
    merged compile-all build, a standard link, and every OM level — and
    three families of checks are applied to the results:

    + {b behavioral differential}: program output and exit state must be
      bit-identical across the standard link and every OM level, and
      across the merged build;
    + {b structural}: {!Om.Verify.image} must report zero issues on
      every linked image;
    + {b simulator differential}: the decoded fast path
      ({!Machine.Cpu.run_decoded}) and the reference interpreter
      ({!Machine.Cpu.run_reference}) must agree on output, exit code and
      every counter, for every image.

    A compile or resolve error is reported as stage ["compile"] /
    ["resolve"]: generated programs are valid by construction, so those
    indicate a generator (or front-end) bug rather than a link-time one,
    and the shrinker refuses to walk a failure into that territory. *)

type failure = {
  stage : string;
      (** where it broke: ["compile"], ["resolve"], ["link std"],
          ["link om-full"], ["verify om-simple"], ["run std"],
          ["behavior om-full"], ["interp std"], ...; ["exception"] means
          the pipeline crashed outright rather than failing an oracle *)
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

val generated_failure : failure -> bool
(** The failure indicts the generated program itself (compile/resolve
    stage), not the link pipeline. *)

val check_sources : (string * string) list -> (unit, failure) result
(** Run all oracles over [(module_name, source)] pairs. *)

val check : Prog.t -> (unit, failure) result
(** {!Prog.render} then {!check_sources}. *)
