type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int64
  | Var of string
  | Idx of string * int * expr
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Call of string * arg list

and arg =
  | Aexpr of expr
  | Aarr of string

type stmt =
  | Let of string * expr
  | LetArr of string * int
  | Assign of string * expr
  | AssignIdx of string * int * expr * expr
  | TakeAddr of string * string
  | If of expr * stmt list * stmt list
  | Loop of string * int * stmt list
  | Print of expr
  | Ret of expr

type param = Pscalar of string | Pptr of string

let ptr_mask = 15

type func = {
  fname : string;
  fstatic : bool;
  params : param list;
  body : stmt list;
}

type global =
  | Gscalar of { name : string; static : bool; init : int64; is_pv : bool }
  | Garray of { name : string; static : bool; size : int }

type modul = {
  mname : string;
  globals : global list;
  funcs : func list;
}

type t = { modules : modul list }

(* --- size --- *)

let rec expr_size = function
  | Int _ | Var _ -> 1
  | Idx (_, _, e) -> 1 + expr_size e
  | Un (_, e) -> 1 + expr_size e
  | Bin (_, a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) ->
      1
      + List.fold_left
          (fun acc -> function Aexpr e -> acc + expr_size e | Aarr _ -> acc + 1)
          0 args

let rec stmt_size = function
  | Let (_, e) | Assign (_, e) | Print e | Ret e -> 1 + expr_size e
  | LetArr _ | TakeAddr _ -> 1
  | AssignIdx (_, _, i, e) -> 1 + expr_size i + expr_size e
  | If (c, a, b) -> 1 + expr_size c + block_size a + block_size b
  | Loop (_, _, body) -> 2 + block_size body

and block_size stmts = List.fold_left (fun acc s -> acc + stmt_size s) 0 stmts

let size t =
  List.fold_left
    (fun acc m ->
      acc
      + List.length m.globals
      + List.fold_left (fun a f -> a + 1 + block_size f.body) 0 m.funcs)
    0 t.modules

(* --- rendering --- *)

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

(* Negative values render as two's-complement hex: the lexer takes the
   full unsigned 64-bit range there, so every constant — min_int
   included — has a literal spelling valid in any context, global
   initializers' [= integer] grammar in particular. *)
let int_str v =
  if Int64.compare v 0L < 0 then Printf.sprintf "0x%Lx" v
  else Int64.to_string v

let rec expr_str = function
  | Int v -> int_str v
  | Var x -> x
  | Idx (a, mask, e) -> Printf.sprintf "%s[(%s) & %d]" a (expr_str e) mask
  | Un (Neg, e) -> Printf.sprintf "(0 - %s)" (expr_str e)
  | Un (Lnot, e) -> Printf.sprintf "(!%s)" (expr_str e)
  | Un (Bnot, e) -> Printf.sprintf "(~%s)" (expr_str e)
  (* the sanitized operators: a well-defined result for every operand *)
  | Bin (Div, a, b) ->
      Printf.sprintf "(%s / (%s | 1))" (expr_str a) (expr_str b)
  | Bin (Rem, a, b) ->
      Printf.sprintf "(%s %% (%s | 1))" (expr_str a) (expr_str b)
  | Bin (Shl, a, b) ->
      Printf.sprintf "(%s << (%s & 63))" (expr_str a) (expr_str b)
  | Bin (Shr, a, b) ->
      Printf.sprintf "(%s >> (%s & 63))" (expr_str a) (expr_str b)
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", "
           (List.map
              (function Aexpr e -> expr_str e | Aarr a -> a)
              args))

let rec stmt_lines ind s =
  let pad = String.make (2 * ind) ' ' in
  match s with
  | Let (x, e) -> [ Printf.sprintf "%svar %s = %s;" pad x (expr_str e) ]
  | LetArr (a, n) ->
      (* a local array is filled before any use: reading undefined stack
         slots would make the differential oracles unsound *)
      [ Printf.sprintf "%svar %s[%d];" pad a n;
        Printf.sprintf "%svar %s_i = 0;" pad a;
        Printf.sprintf
          "%swhile (%s_i < %d) { %s[%s_i] = (%s_i * 2654435761) ^ 99991; %s_i \
           = %s_i + 1; }"
          pad a n a a a a a ]
  | Assign (x, e) -> [ Printf.sprintf "%s%s = %s;" pad x (expr_str e) ]
  | AssignIdx (a, mask, i, e) ->
      [ Printf.sprintf "%s%s[(%s) & %d] = %s;" pad a (expr_str i) mask
          (expr_str e) ]
  | TakeAddr (pv, f) -> [ Printf.sprintf "%s%s = &%s;" pad pv f ]
  | If (c, a, []) ->
      [ Printf.sprintf "%sif (%s) {" pad (expr_str c) ]
      @ block_lines (ind + 1) a
      @ [ pad ^ "}" ]
  | If (c, a, b) ->
      [ Printf.sprintf "%sif (%s) {" pad (expr_str c) ]
      @ block_lines (ind + 1) a
      @ [ pad ^ "} else {" ]
      @ block_lines (ind + 1) b
      @ [ pad ^ "}" ]
  | Loop (v, n, body) ->
      [ Printf.sprintf "%svar %s = 0;" pad v;
        Printf.sprintf "%swhile (%s < %d) {" pad v n ]
      @ block_lines (ind + 1) body
      @ [ Printf.sprintf "%s  %s = %s + 1;" pad v v; pad ^ "}" ]
  | Print e -> [ Printf.sprintf "%sio_putint_nl(%s);" pad (expr_str e) ]
  | Ret e -> [ Printf.sprintf "%sreturn %s;" pad (expr_str e) ]

and block_lines ind stmts = List.concat_map (stmt_lines ind) stmts

(* --- cross-module reference collection --- *)

module Sset = Set.Make (String)

let rec expr_refs acc = function
  | Int _ -> acc
  | Var x -> Sset.add x acc
  | Idx (a, _, e) -> expr_refs (Sset.add a acc) e
  | Un (_, e) -> expr_refs acc e
  | Bin (_, a, b) -> expr_refs (expr_refs acc a) b
  | Call (f, args) ->
      List.fold_left
        (fun acc -> function
          | Aexpr e -> expr_refs acc e
          | Aarr a -> Sset.add a acc)
        (Sset.add f acc) args

let rec stmt_refs acc = function
  | Let (_, e) | Print e | Ret e -> expr_refs acc e
  | LetArr _ -> acc
  | Assign (x, e) -> expr_refs (Sset.add x acc) e
  | AssignIdx (a, _, i, e) -> expr_refs (expr_refs (Sset.add a acc) i) e
  | TakeAddr (pv, f) -> Sset.add pv (Sset.add f acc)
  | If (c, a, b) -> block_refs (block_refs (expr_refs acc c) a) b
  | Loop (_, _, body) -> block_refs acc body

and block_refs acc stmts = List.fold_left stmt_refs acc stmts

type def =
  | Dfunc of { arity : int; static : bool; dmod : string }
  | Dscalar of { static : bool; dmod : string }
  | Darray of { static : bool; dmod : string }

let definitions t =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (function
          | Gscalar { name; static; _ } ->
              Hashtbl.replace defs name (Dscalar { static; dmod = m.mname })
          | Garray { name; static; _ } ->
              Hashtbl.replace defs name (Darray { static; dmod = m.mname }))
        m.globals;
      List.iter
        (fun f ->
          Hashtbl.replace defs f.fname
            (Dfunc
               { arity = List.length f.params;
                 static = f.fstatic;
                 dmod = m.mname }))
        m.funcs)
    t.modules;
  defs

let render t =
  let defs = definitions t in
  List.map
    (fun m ->
      let buf = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
      (* externs for everything referenced here but defined elsewhere;
         library routines are covered by the compiler prelude *)
      let refs =
        List.fold_left (fun acc f -> block_refs acc f.body) Sset.empty m.funcs
      in
      Sset.iter
        (fun name ->
          match Hashtbl.find_opt defs name with
          | Some (Dfunc { arity; static = false; dmod }) when dmod <> m.mname ->
              line "extern func %s(%s);" name
                (String.concat ", " (List.init arity (Printf.sprintf "x%d")))
          | Some (Dscalar { static = false; dmod }) when dmod <> m.mname ->
              line "extern var %s;" name
          | Some (Darray { static = false; dmod }) when dmod <> m.mname ->
              line "extern var %s[];" name
          | _ -> ())
        refs;
      List.iter
        (function
          | Gscalar { name; static; init; _ } ->
              line "%svar %s = %s;" (if static then "static " else "") name
                (int_str init)
          | Garray { name; static; size } ->
              line "%svar %s[%d];" (if static then "static " else "") name size)
        m.globals;
      List.iter
        (fun f ->
          line "%sfunc %s(%s) {"
            (if f.fstatic then "static " else "")
            f.fname
            (String.concat ", "
               (List.map (function Pscalar p | Pptr p -> p) f.params));
          List.iter (fun l -> line "%s" l) (block_lines 1 f.body);
          (* a function that falls off the end would return whatever the
             return register held — append an explicit return unless the
             body already ends on one *)
          (match List.rev f.body with
          | Ret _ :: _ -> ()
          | _ -> line "  return 0;");
          line "}")
        m.funcs;
      (m.mname, Buffer.contents buf))
    t.modules

(* --- shrinking --- *)

let is_int = function Int _ -> true | _ -> false

(* Candidate replacement blocks for one statement; every candidate is
   strictly smaller than the original under [size]. *)
let rec shrink_stmt (s : stmt) : stmt list list =
  match s with
  | Let (x, e) -> if is_int e then [] else [ [ Let (x, Int 1L) ] ]
  | LetArr _ -> []
  | Assign (x, e) -> if is_int e then [] else [ [ Assign (x, Int 1L) ] ]
  | AssignIdx (a, m, i, e) ->
      (if is_int i then [] else [ [ AssignIdx (a, m, Int 0L, e) ] ])
      @ if is_int e then [] else [ [ AssignIdx (a, m, i, Int 1L) ] ]
  | TakeAddr _ -> []
  | Print e -> if is_int e then [] else [ [ Print (Int 1L) ] ]
  | Ret e -> if is_int e then [] else [ [ Ret (Int 0L) ] ]
  | If (c, a, b) ->
      [ a; b ]
      @ List.map (fun a' -> [ If (c, a', b) ]) (shrink_block a)
      @ List.map (fun b' -> [ If (c, a, b') ]) (shrink_block b)
      @ if is_int c then [] else [ [ If (Int 1L, a, b) ] ]
  | Loop (v, n, body) ->
      (* [Let v] keeps the counter in scope for body references *)
      [ Let (v, Int 0L) :: body ]
      @ (if n > 1 then [ [ Loop (v, 1, body) ] ] else [])
      @ List.map (fun b' -> [ Loop (v, n, b') ]) (shrink_block body)

and shrink_block (stmts : stmt list) : stmt list list =
  let removals =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) stmts) stmts
  in
  let inplace =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun repl ->
               List.concat
                 (List.mapi (fun j s' -> if i = j then repl else [ s' ]) stmts))
             (shrink_stmt s))
         stmts)
  in
  removals @ inplace

let replace_nth xs i x = List.mapi (fun j y -> if i = j then x else y) xs

let remove_nth xs i = List.filteri (fun j _ -> j <> i) xs

let shrink_steps t : t Seq.t =
  let has_main m = List.exists (fun f -> String.equal f.fname "main") m.funcs in
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  (* finest first into the accumulator; we reverse at the end so the
     coarsest reductions are tried first *)
  List.iteri
    (fun mi m ->
      List.iteri
        (fun fi f ->
          List.iter
            (fun body' ->
              add
                { modules =
                    replace_nth t.modules mi
                      { m with funcs = replace_nth m.funcs fi { f with body = body' } } })
            (shrink_block f.body))
        m.funcs)
    t.modules;
  List.iteri
    (fun mi m ->
      List.iteri
        (fun gi _ ->
          add { modules = replace_nth t.modules mi { m with globals = remove_nth m.globals gi } })
        m.globals;
      List.iteri
        (fun fi f ->
          if f.body <> [] then
            add
              { modules =
                  replace_nth t.modules mi
                    { m with funcs = replace_nth m.funcs fi { f with body = [] } } };
          if not (String.equal f.fname "main") then
            add { modules = replace_nth t.modules mi { m with funcs = remove_nth m.funcs fi } })
        m.funcs)
    t.modules;
  List.iteri
    (fun mi m -> if not (has_main m) then add { modules = remove_nth t.modules mi })
    t.modules;
  List.to_seq !candidates
