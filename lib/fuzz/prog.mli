(** The fuzzer's own program representation.

    A deliberately small subset of minic, built so that {e every}
    representable program is well-defined and deterministic: division and
    shift operands are sanitized at render time, array indexing is masked
    to the array's (power-of-two) extent, loops have literal bounds, local
    arrays are zero-filled before use, and every function body ends with a
    [return]. That discipline is what makes the differential oracles
    sound — any divergence between link configurations is a pipeline bug,
    never latent undefined behavior in the generated program.

    Values of this type are what the shrinker reduces: {!shrink_steps}
    enumerates single-step reductions (drop a module / function / global /
    statement, splice an [if] branch, collapse a loop bound, replace an
    expression by a constant), each of which stays inside the same
    well-defined subset. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int64
  | Var of string                 (** scalar local, param, or global *)
  | Idx of string * int * expr    (** [Idx (a, mask, e)]: [a[(e) & mask]] *)
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Call of string * arg list     (** direct call, library call, or
                                      indirect call through a scalar *)

and arg =
  | Aexpr of expr
  | Aarr of string                (** array passed by name (decays to its
                                      address) into a pointer parameter *)

type stmt =
  | Let of string * expr          (** [var x = e;] — always initialized *)
  | LetArr of string * int        (** local array, rendered with a fill
                                      loop so it is never read undefined *)
  | Assign of string * expr
  | AssignIdx of string * int * expr * expr
  | TakeAddr of string * string   (** [pv = &f;] *)
  | If of expr * stmt list * stmt list
  | Loop of string * int * stmt list
      (** counter loop with a literal bound: [var i = 0; while (i < n) ...] *)
  | Print of expr                 (** [io_putint_nl(e);] *)
  | Ret of expr

type param = Pscalar of string | Pptr of string
(** Pointer parameters are only ever indexed (masked to {!ptr_mask});
    callers pass arrays of at least [ptr_mask + 1] elements. *)

val ptr_mask : int

type func = {
  fname : string;
  fstatic : bool;
  params : param list;
  body : stmt list;
}

type global =
  | Gscalar of { name : string; static : bool; init : int64; is_pv : bool }
      (** [is_pv]: holds a procedure address; never printed or used in
          arithmetic, so address-layout differences between link levels
          cannot leak into observable output *)
  | Garray of { name : string; static : bool; size : int }

type modul = {
  mname : string;
  globals : global list;
  funcs : func list;
}

type t = { modules : modul list }

val size : t -> int
(** Number of AST nodes — the measure the shrinker drives down. *)

val render : t -> (string * string) list
(** [(module_name, minic_source)] pairs, ready for the compiler. Emits
    [extern] declarations for every cross-module reference. *)

val shrink_steps : t -> t Seq.t
(** All single-step reductions, coarsest first. Every candidate is
    strictly smaller under {!size}. *)
