type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let derive seed index =
  let z = mix (Int64.add (mix (Int64.of_int seed)) (Int64.mul (Int64.of_int (index + 1)) golden)) in
  (* keep it positive and int-sized so it reads well in file names *)
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (int64 t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t xs =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 xs in
  if total <= 0 then invalid_arg "Rng.weighted";
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Rng.weighted"
    | (w, x) :: rest -> if k < w then x else go (k - w) rest
  in
  go k xs
