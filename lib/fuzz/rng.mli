(** A tiny deterministic PRNG (splitmix64) for the fuzzer.

    The stdlib [Random] is avoided on purpose: the fuzzer's campaigns
    must replay bit-identically from a seed, across OCaml versions and
    across [-j N] domain counts, and the generator must never share
    hidden mutable state between concurrently-generated cases. Every
    case gets its own generator, derived from (campaign seed, case
    index) by {!derive}. *)

type t

val create : int -> t
(** A generator seeded with the given integer. *)

val derive : int -> int -> int
(** [derive seed index] mixes a campaign seed and a case index into an
    independent per-case seed. Pure: same inputs, same output. *)

val int64 : t -> int64
(** The next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); requires [n > 0]. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform pick; requires a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick with the given relative integer weights (all > 0). *)
