type error = Bad_opcode of int | Bad_function of { opcode : int; funct : int }

let pp_error ppf = function
  | Bad_opcode op -> Format.fprintf ppf "unknown opcode %#x" op
  | Bad_function { opcode; funct } ->
      Format.fprintf ppf "unknown function %#x for opcode %#x" funct opcode

let sext16 v = ((v land 0xffff) lxor 0x8000) - 0x8000
let sext21 v = ((v land 0x1fffff) lxor 0x100000) - 0x100000

let binop_of ~opcode ~funct =
  match (opcode, funct) with
  | 0x10, 0x20 -> Some Insn.Addq
  | 0x10, 0x29 -> Some Insn.Subq
  | 0x10, 0x2d -> Some Insn.Cmpeq
  | 0x10, 0x4d -> Some Insn.Cmplt
  | 0x10, 0x6d -> Some Insn.Cmple
  | 0x10, 0x1d -> Some Insn.Cmpult
  | 0x10, 0x3d -> Some Insn.Cmpule
  | 0x11, 0x00 -> Some Insn.And_
  | 0x11, 0x20 -> Some Insn.Bis
  | 0x11, 0x40 -> Some Insn.Xor
  | 0x11, 0x28 -> Some Insn.Ornot
  | 0x12, 0x39 -> Some Insn.Sll
  | 0x12, 0x34 -> Some Insn.Srl
  | 0x12, 0x3c -> Some Insn.Sra
  | 0x13, 0x20 -> Some Insn.Mulq
  | _ -> None

let decode w =
  let w = w land 0xffffffff in
  let opcode = w lsr 26 in
  let ra = Reg.of_int ((w lsr 21) land 0x1f) in
  let rb = Reg.of_int ((w lsr 16) land 0x1f) in
  let disp16 = sext16 w in
  let disp21 = sext21 w in
  match opcode with
  | 0x00 -> Ok (Insn.Call_pal (w land 0x3ffffff))
  | 0x08 -> Ok (Insn.Lda { ra; rb; disp = disp16 })
  | 0x09 -> Ok (Insn.Ldah { ra; rb; disp = disp16 })
  | 0x29 -> Ok (Insn.Ldq { ra; rb; disp = disp16 })
  | 0x2d -> Ok (Insn.Stq { ra; rb; disp = disp16 })
  | 0x30 -> Ok (Insn.Br { ra; disp = disp21 })
  | 0x34 -> Ok (Insn.Bsr { ra; disp = disp21 })
  | 0x38 -> Ok (Insn.Bcond { cond = Blbc; ra; disp = disp21 })
  | 0x39 -> Ok (Insn.Bcond { cond = Beq; ra; disp = disp21 })
  | 0x3a -> Ok (Insn.Bcond { cond = Blt; ra; disp = disp21 })
  | 0x3b -> Ok (Insn.Bcond { cond = Ble; ra; disp = disp21 })
  | 0x3c -> Ok (Insn.Bcond { cond = Blbs; ra; disp = disp21 })
  | 0x3d -> Ok (Insn.Bcond { cond = Bne; ra; disp = disp21 })
  | 0x3e -> Ok (Insn.Bcond { cond = Bge; ra; disp = disp21 })
  | 0x3f -> Ok (Insn.Bcond { cond = Bgt; ra; disp = disp21 })
  | 0x1a -> (
      let hint = w land 0x3fff in
      match (w lsr 14) land 0x3 with
      | 0 -> Ok (Insn.Jump { kind = Jmp; ra; rb; hint })
      | 1 -> Ok (Insn.Jump { kind = Jsr; ra; rb; hint })
      | 2 -> Ok (Insn.Jump { kind = Ret; ra; rb; hint })
      | k -> Error (Bad_function { opcode; funct = k }))
  | 0x10 | 0x11 | 0x12 | 0x13 -> (
      let funct = (w lsr 5) land 0x7f in
      let rc = Reg.of_int (w land 0x1f) in
      match binop_of ~opcode ~funct with
      | None -> Error (Bad_function { opcode; funct })
      | Some op ->
          let rb =
            if (w lsr 12) land 1 = 1 then Insn.Imm ((w lsr 13) land 0xff)
            else Insn.Rb rb
          in
          Ok (Insn.Op { op; ra; rb; rc }))
  | _ -> Error (Bad_opcode opcode)

let decode_exn w =
  match decode w with
  | Ok i -> i
  | Error e -> invalid_arg (Format.asprintf "Decode.decode_exn: %a" pp_error e)

let of_bytes b =
  if Bytes.length b mod 4 <> 0 then
    invalid_arg "Decode.of_bytes: length not a multiple of 4";
  let n = Bytes.length b / 4 in
  let rec go idx acc =
    if idx = n then Ok (List.rev acc)
    else
      let w = Int32.to_int (Bytes.get_int32_le b (4 * idx)) land 0xffffffff in
      match decode w with Ok i -> go (idx + 1) (i :: acc) | Error e -> Error e
  in
  go 0 []

let of_bytes_loc b =
  if Bytes.length b mod 4 <> 0 then
    invalid_arg "Decode.of_bytes_loc: length not a multiple of 4";
  let n = Bytes.length b / 4 in
  let out = Array.make n Insn.nop in
  let rec go idx =
    if idx = n then Ok out
    else
      let w = Int32.to_int (Bytes.get_int32_le b (4 * idx)) land 0xffffffff in
      match decode w with
      | Ok i ->
          out.(idx) <- i;
          go (idx + 1)
      | Error e -> Error (4 * idx, e)
  in
  go 0
