(** Decoding 32-bit instruction words back into {!Insn.t}.

    [decode] is a left inverse of {!Encode.insn} on every encodable
    instruction (a property the test suite checks exhaustively by random
    round-trips). Words that do not correspond to any instruction in the
    modelled subset decode to [Error]. *)

type error = Bad_opcode of int | Bad_function of { opcode : int; funct : int }

val pp_error : Format.formatter -> error -> unit

val decode : int -> (Insn.t, error) result
(** [decode w] decodes the instruction word [w] (taken modulo 2^32). *)

val decode_exn : int -> Insn.t
(** Like {!decode} but raises [Invalid_argument] on undecodable words. *)

val of_bytes : Bytes.t -> (Insn.t list, error) result
(** Decode a little-endian instruction stream; the byte length must be a
    multiple of 4. *)

val of_bytes_loc : Bytes.t -> (Insn.t array, int * error) result
(** Like {!of_bytes} but into an array, and a failure carries the byte
    offset of the first undecodable word — so callers can report the real
    faulting address instead of the stream's base. *)
