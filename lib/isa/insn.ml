type cond = Beq | Bne | Blt | Ble | Bge | Bgt | Blbc | Blbs

type jump_kind = Jmp | Jsr | Ret

type operand = Rb of Reg.t | Imm of int

type binop =
  | Addq | Subq | Mulq
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule
  | And_ | Bis | Xor | Ornot
  | Sll | Srl | Sra

type t =
  | Lda of { ra : Reg.t; rb : Reg.t; disp : int }
  | Ldah of { ra : Reg.t; rb : Reg.t; disp : int }
  | Ldq of { ra : Reg.t; rb : Reg.t; disp : int }
  | Stq of { ra : Reg.t; rb : Reg.t; disp : int }
  | Br of { ra : Reg.t; disp : int }
  | Bsr of { ra : Reg.t; disp : int }
  | Bcond of { cond : cond; ra : Reg.t; disp : int }
  | Jump of { kind : jump_kind; ra : Reg.t; rb : Reg.t; hint : int }
  | Op of { op : binop; ra : Reg.t; rb : operand; rc : Reg.t }
  | Call_pal of int

let equal = ( = )
let compare = Stdlib.compare

let nop = Op { op = Bis; ra = Reg.zero; rb = Rb Reg.zero; rc = Reg.zero }

let is_nop = function
  | Op { rc; _ } -> Reg.equal rc Reg.zero
  | Lda { ra; _ } | Ldah { ra; _ } -> Reg.equal ra Reg.zero
  | _ -> false

let mov src dst = Op { op = Bis; ra = src; rb = Rb src; rc = dst }

let li n r =
  if n < -32768 || n > 32767 then
    invalid_arg (Printf.sprintf "Insn.li: %d out of 16-bit range" n);
  Lda { ra = r; rb = Reg.zero; disp = n }

let not_zero r = not (Reg.equal r Reg.zero)
let keep rs = List.filter not_zero rs

let defs = function
  | Lda { ra; _ } | Ldah { ra; _ } | Ldq { ra; _ } -> keep [ ra ]
  | Stq _ -> []
  | Br { ra; _ } | Bsr { ra; _ } -> keep [ ra ]
  | Bcond _ -> []
  | Jump { ra; _ } -> keep [ ra ]
  | Op { rc; _ } -> keep [ rc ]
  | Call_pal _ -> keep [ Reg.v0 ]

let uses = function
  | Lda { rb; _ } | Ldah { rb; _ } | Ldq { rb; _ } -> keep [ rb ]
  | Stq { ra; rb; _ } -> keep [ ra; rb ]
  | Br _ | Bsr _ -> []
  | Bcond { ra; _ } -> keep [ ra ]
  | Jump { rb; _ } -> keep [ rb ]
  | Op { ra; rb; _ } -> (
      match rb with Rb rb -> keep [ ra; rb ] | Imm _ -> keep [ ra ])
  | Call_pal _ -> keep [ Reg.v0; Reg.a0; Reg.a1; Reg.a2 ]

(* Bitmask forms of [defs]/[uses]: bit [i] set iff register [i] is
   written/read. [Reg.zero] never appears, mirroring the list forms. These
   are what the simulator's pre-decoded fast path consumes — computed
   directly (no lists) so the hot decode stays allocation-light; the test
   suite checks them against the list forms on every instruction shape. *)

let reg_bit r =
  let i = Reg.to_int r in
  if i = 31 then 0 else 1 lsl i

let defs_mask = function
  | Lda { ra; _ } | Ldah { ra; _ } | Ldq { ra; _ } -> reg_bit ra
  | Stq _ -> 0
  | Br { ra; _ } | Bsr { ra; _ } -> reg_bit ra
  | Bcond _ -> 0
  | Jump { ra; _ } -> reg_bit ra
  | Op { rc; _ } -> reg_bit rc
  | Call_pal _ -> reg_bit Reg.v0

let uses_mask = function
  | Lda { rb; _ } | Ldah { rb; _ } | Ldq { rb; _ } -> reg_bit rb
  | Stq { ra; rb; _ } -> reg_bit ra lor reg_bit rb
  | Br _ | Bsr _ -> 0
  | Bcond { ra; _ } -> reg_bit ra
  | Jump { rb; _ } -> reg_bit rb
  | Op { ra; rb; _ } ->
      reg_bit ra lor (match rb with Rb rb -> reg_bit rb | Imm _ -> 0)
  | Call_pal _ ->
      reg_bit Reg.v0 lor reg_bit Reg.a0 lor reg_bit Reg.a1 lor reg_bit Reg.a2

let is_load = function Ldq _ -> true | _ -> false
let is_store = function Stq _ -> true | _ -> false
let is_mem i = is_load i || is_store i

let is_branch = function
  | Br _ | Bsr _ | Bcond _ | Jump _ -> true
  | _ -> false

let is_call = function
  | Bsr _ | Jump { kind = Jsr; _ } -> true
  | _ -> false

let is_return = function Jump { kind = Ret; _ } -> true | _ -> false

let falls_through = function
  | Br _ | Jump { kind = Jmp | Ret; _ } -> false
  | _ -> true

let branch_disp = function
  | Br { disp; _ } | Bsr { disp; _ } | Bcond { disp; _ } -> Some disp
  | _ -> None

let with_branch_disp i disp =
  match i with
  | Br { ra; _ } -> Br { ra; disp }
  | Bsr { ra; _ } -> Bsr { ra; disp }
  | Bcond { cond; ra; _ } -> Bcond { cond; ra; disp }
  | _ -> invalid_arg "Insn.with_branch_disp: not a PC-relative branch"

let fits_disp16 d = d >= -32768 && d <= 32767
let fits_disp21 d = d >= -1048576 && d <= 1048575

let split32_opt d =
  let lo = ((d land 0xffff) lxor 0x8000) - 0x8000 in
  let hi = (d - lo) asr 16 in
  if fits_disp16 hi then Some (hi, lo) else None

let fits_disp32 d = Option.is_some (split32_opt d)

let split32 d =
  match split32_opt d with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Insn.split32: %d out of range" d)

let cond_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Ble -> "ble"
  | Bge -> "bge" | Bgt -> "bgt" | Blbc -> "blbc" | Blbs -> "blbs"

let binop_name = function
  | Addq -> "addq" | Subq -> "subq" | Mulq -> "mulq"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"
  | Cmpult -> "cmpult" | Cmpule -> "cmpule"
  | And_ -> "and" | Bis -> "bis" | Xor -> "xor" | Ornot -> "ornot"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"

let pp ppf i =
  let mem name ra rb disp =
    Format.fprintf ppf "%s %a, %d(%a)" name Reg.pp ra disp Reg.pp rb
  in
  match i with
  | _ when is_nop i && equal i nop -> Format.pp_print_string ppf "nop"
  | Lda { ra; rb; disp } -> mem "lda" ra rb disp
  | Ldah { ra; rb; disp } -> mem "ldah" ra rb disp
  | Ldq { ra; rb; disp } -> mem "ldq" ra rb disp
  | Stq { ra; rb; disp } -> mem "stq" ra rb disp
  | Br { ra; disp } when Reg.equal ra Reg.zero ->
      Format.fprintf ppf "br %+d" disp
  | Br { ra; disp } -> Format.fprintf ppf "br %a, %+d" Reg.pp ra disp
  | Bsr { ra; disp } -> Format.fprintf ppf "bsr %a, %+d" Reg.pp ra disp
  | Bcond { cond; ra; disp } ->
      Format.fprintf ppf "%s %a, %+d" (cond_name cond) Reg.pp ra disp
  | Jump { kind; ra; rb; hint } ->
      let name =
        match kind with Jmp -> "jmp" | Jsr -> "jsr" | Ret -> "ret"
      in
      Format.fprintf ppf "%s %a, (%a), %d" name Reg.pp ra Reg.pp rb hint
  | Op { op; ra; rb = Rb rb; rc } ->
      Format.fprintf ppf "%s %a, %a, %a" (binop_name op) Reg.pp ra Reg.pp rb
        Reg.pp rc
  | Op { op; ra; rb = Imm n; rc } ->
      Format.fprintf ppf "%s %a, #%d, %a" (binop_name op) Reg.pp ra n Reg.pp
        rc
  | Call_pal f -> Format.fprintf ppf "call_pal %#x" f

let to_string i = Format.asprintf "%a" pp i
