(** Instructions of the AXP-like 64-bit architecture.

    Instructions are 32 bits wide; there is no way to embed a 64-bit address
    (or even a 32-bit one) in a single instruction, which is the root cause of
    the global-address-table machinery this whole library is about.

    The subset modelled here is the integer subset the code generator and the
    optimizer need: load-address ([Lda]/[Ldah]), quadword memory access,
    conditional and unconditional branches, register-indirect jumps
    ([Jump] carrying the JSR/JMP/RET distinction), three-operand integer
    operates, and [Call_pal] (used for system calls). Displacements are kept
    as signed OCaml ints in this representation; {!Encode} masks them into
    the instruction word and {!Decode} sign-extends them back. *)

type cond =
  | Beq  (** branch if [ra] = 0 *)
  | Bne  (** branch if [ra] <> 0 *)
  | Blt  (** branch if [ra] < 0 (signed) *)
  | Ble  (** branch if [ra] <= 0 *)
  | Bge  (** branch if [ra] >= 0 *)
  | Bgt  (** branch if [ra] > 0 *)
  | Blbc (** branch if low bit of [ra] clear *)
  | Blbs (** branch if low bit of [ra] set *)

type jump_kind =
  | Jmp (** jump, no intent implied *)
  | Jsr (** subroutine call: [ra] receives the return address *)
  | Ret (** subroutine return *)

type operand =
  | Rb of Reg.t   (** register operand *)
  | Imm of int    (** 8-bit zero-extended literal in [0, 255] *)

type binop =
  | Addq | Subq | Mulq
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule
  | And_ | Bis | Xor | Ornot
  | Sll | Srl | Sra

type t =
  | Lda of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [ra <- rb + sext(disp)]; 16-bit signed displacement. No memory
          access: this is the Load-Address operation. *)
  | Ldah of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [ra <- rb + sext(disp) * 65536]: Load-Address-High. An
          [Ldah]/[Lda] pair adds any 32-bit displacement to a register. *)
  | Ldq of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [ra <- mem64\[rb + sext(disp)\]]. When [rb] is [gp] and the
          displacement is marked with a LITERAL relocation this is an
          {e address load} from the GAT. *)
  | Stq of { ra : Reg.t; rb : Reg.t; disp : int }
      (** [mem64\[rb + sext(disp)\] <- ra]. *)
  | Br of { ra : Reg.t; disp : int }
      (** Unconditional PC-relative branch; [disp] counts instructions from
          the updated PC (21-bit signed). [ra] receives the return address
          (conventionally [Reg.zero]). *)
  | Bsr of { ra : Reg.t; disp : int }
      (** Branch-to-subroutine: like [Br] but architecturally hints a call.
          Its limited 21-bit range is why general calls need [Jump Jsr]. *)
  | Bcond of { cond : cond; ra : Reg.t; disp : int }
      (** Conditional PC-relative branch on the value of [ra]. *)
  | Jump of { kind : jump_kind; ra : Reg.t; rb : Reg.t; hint : int }
      (** Register-indirect jump to [rb]; [ra] receives the return address.
          [hint] is a 14-bit branch-prediction hint with no semantic
          effect. *)
  | Op of { op : binop; ra : Reg.t; rb : operand; rc : Reg.t }
      (** [rc <- ra op rb]. *)
  | Call_pal of int
      (** PALcode call; this library uses function [0x83] (callsys) as its
          system-call gate. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val nop : t
(** The canonical no-op: [bis zero, zero, zero]. *)

val is_nop : t -> bool
(** Recognizes any operate instruction whose destination is [Reg.zero] and
    which cannot trap, as well as [Lda]/[Ldah] into [Reg.zero]. *)

val mov : Reg.t -> Reg.t -> t
(** [mov src dst] is [bis src, src, dst]. *)

val li : int -> Reg.t -> t
(** [li n r] loads a constant that fits in a signed 16-bit immediate via
    [lda r, n(zero)]. Raises [Invalid_argument] if [n] is out of range. *)

(** {1 Classification} *)

val defs : t -> Reg.t list
(** Registers written. Writes to [Reg.zero] are not reported. *)

val uses : t -> Reg.t list
(** Registers read. [Reg.zero] is never reported. *)

val defs_mask : t -> int
(** {!defs} as a register bitmask: bit [i] set iff register [i] is
    written. Agrees with [defs] exactly; the allocation-free form the
    simulator's pre-decoded fast path consumes. *)

val uses_mask : t -> int
(** {!uses} as a register bitmask. Agrees with [uses] exactly. *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

val is_branch : t -> bool
(** True for [Br], [Bsr], [Bcond], and [Jump]: anything that can redirect
    control. *)

val is_call : t -> bool
(** True for [Bsr] and [Jump Jsr]. *)

val is_return : t -> bool

val falls_through : t -> bool
(** Whether execution can continue at the next instruction: true for
    everything except [Br], [Jump Jmp] and [Jump Ret]. Calls fall through
    (control returns). *)

val branch_disp : t -> int option
(** The PC-relative word displacement of [Br]/[Bsr]/[Bcond]. *)

val with_branch_disp : t -> int -> t
(** Replace the displacement of a PC-relative branch. Raises
    [Invalid_argument] on other instructions. *)

val fits_disp16 : int -> bool
(** Whether a byte displacement fits the signed 16-bit field. *)

val fits_disp21 : int -> bool
(** Whether a word displacement fits the signed 21-bit branch field. *)

val fits_disp32 : int -> bool
(** Whether a byte displacement is reachable by an [Ldah]/[Lda] pair, i.e.
    fits in a signed 32-bit span (accounting for the low part's sign). *)

val split32_opt : int -> (int * int) option
(** [split32_opt d] is [Some (hi, lo)] with [d = hi * 65536 + lo],
    [-32768 <= lo < 32768], and [hi] fitting 16 signed bits — [None] if
    [not (fits_disp32 d)]. The total-function form every link-time fixup
    should use. *)

val split32 : int -> int * int
(** [split32 d] is [(hi, lo)] with [d = hi * 65536 + lo],
    [-32768 <= lo < 32768], and [hi] fitting 16 signed bits. Raises
    [Invalid_argument] if [not (fits_disp32 d)]. *)

val pp : Format.formatter -> t -> unit
(** Assembler-like rendering, e.g. [ldq t0, 188(gp)]. *)

val to_string : t -> string
