type layout_info = {
  text_off : int array;
  data_off : int array;
  sdata_off : int array;
  sbss_off : int array;
  bss_off : int array;
  lita_off : int;
  common_off : (string * int) list;
  data_total : int;
}

let layout_standard (world : Resolve.t) (gat : Gat.t) =
  let nmods = Array.length world.Resolve.modules in
  let text_off = Array.make nmods 0 in
  let _ =
    Array.to_seqi world.Resolve.modules
    |> Seq.fold_left
         (fun off (m, (u : Objfile.Cunit.t)) ->
           let off = Layout.align off 8 in
           text_off.(m) <- off;
           off + Bytes.length u.text)
         0
  in
  let data_off = Array.make nmods 0 in
  let sdata_off = Array.make nmods 0 in
  let sbss_off = Array.make nmods 0 in
  let bss_off = Array.make nmods 0 in
  let cursor = ref 0 in
  let place (per_module : int array) size_of =
    cursor := Layout.align !cursor Layout.section_alignment;
    Array.iteri
      (fun m u ->
        let sz = Layout.align (size_of u) 8 in
        per_module.(m) <- !cursor;
        cursor := !cursor + sz)
      world.Resolve.modules
  in
  place data_off (fun u -> Bytes.length u.Objfile.Cunit.data);
  cursor := Layout.align !cursor Layout.section_alignment;
  let lita_off = !cursor in
  cursor := !cursor + Gat.size_bytes gat;
  place sdata_off (fun u -> Bytes.length u.Objfile.Cunit.sdata);
  place sbss_off (fun u -> u.Objfile.Cunit.sbss_size);
  place bss_off (fun u -> u.Objfile.Cunit.bss_size);
  cursor := Layout.align !cursor Layout.section_alignment;
  let common_off =
    Array.to_list world.Resolve.objs
    |> List.filter_map (fun (o : Resolve.obj_rec) ->
           match o.o_placement with
           | Resolve.Common ->
               let off = !cursor in
               cursor := !cursor + Layout.align o.o_size 8;
               Some (o.o_name, off)
           | Resolve.In_section _ -> None)
  in
  { text_off;
    data_off;
    sdata_off;
    sbss_off;
    bss_off;
    lita_off;
    common_off;
    data_total = Layout.align !cursor 16 }

let section_off lay m = function
  | Objfile.Section.Data -> lay.data_off.(m)
  | Objfile.Section.Sdata -> lay.sdata_off.(m)
  | Objfile.Section.Sbss -> lay.sbss_off.(m)
  | Objfile.Section.Bss -> lay.bss_off.(m)
  | Objfile.Section.Gat -> lay.lita_off
  | Objfile.Section.Text ->
      invalid_arg "Link.section_off: text is not a data section"

let address_of_target (world : Resolve.t) lay = function
  | Resolve.Tproc i ->
      let p = world.Resolve.procs.(i) in
      Layout.text_base + lay.text_off.(p.p_module) + p.p_offset
  | Resolve.Tobj i -> (
      let o = world.Resolve.objs.(i) in
      match o.o_placement with
      | Resolve.In_section { s_module; section; offset } ->
          Layout.data_base + section_off lay s_module section + offset
      | Resolve.Common ->
          let off =
            List.assoc o.o_name lay.common_off
          in
          Layout.data_base + off)

let link_resolved ?gat_capacity (world : Resolve.t) =
  match
    let gat =
      match gat_capacity with
      | Some c -> Gat.merge ~capacity:c world
      | None -> Gat.merge world
    in
    let lay = layout_standard world gat in
    let nmods = Array.length world.Resolve.modules in
    (* text segment *)
    let text_total =
      if nmods = 0 then 0
      else
        let last = nmods - 1 in
        lay.text_off.(last)
        + Bytes.length world.Resolve.modules.(last).Objfile.Cunit.text
    in
    let text = Bytes.make (Layout.align text_total 8) '\000' in
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        Bytes.blit u.text 0 text lay.text_off.(m) (Bytes.length u.text))
      world.Resolve.modules;
    (* data segment, zero-filled through bss *)
    let data = Bytes.make lay.data_total '\000' in
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        Bytes.blit u.data 0 data lay.data_off.(m) (Bytes.length u.data);
        Bytes.blit u.sdata 0 data lay.sdata_off.(m) (Bytes.length u.sdata))
      world.Resolve.modules;
    (* GP values per group *)
    let gp_of_group g =
      Layout.data_base + lay.lita_off + Gat.group_base_offset gat g
      + Layout.gp_window_offset
    in
    (* fill GAT slots *)
    Array.iteri
      (fun s key ->
        let v =
          match key with
          | Gat.Kaddr (tgt, addend) ->
              Int64.of_int (address_of_target world lay tgt + addend)
          | Gat.Kconst c -> c
        in
        Bytes.set_int64_le data (lay.lita_off + (8 * s)) v)
      gat.Gat.slots;
    (* patch text relocations *)
    let patch16 ~text_pos value =
      if not (Isa.Insn.fits_disp16 value) then
        invalid_arg
          (Printf.sprintf "Link: displacement %d exceeds 16 bits at %#x" value
             (Layout.text_base + text_pos));
      let w = Int32.to_int (Bytes.get_int32_le text text_pos) land 0xffffffff in
      let w = w land lnot 0xffff lor (value land 0xffff) in
      Bytes.set_int32_le text text_pos (Int32.of_int w)
    in
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        let mbase = lay.text_off.(m) in
        let group = gat.Gat.group_of_module.(m) in
        let gp = gp_of_group group in
        List.iter
          (fun (r : Objfile.Reloc.t) ->
            match r.kind with
            | Objfile.Reloc.Literal { gat_index } ->
                let slot = Gat.slot_of gat ~m ~local_index:gat_index in
                let slot_addr = Layout.data_base + lay.lita_off + (8 * slot) in
                patch16 ~text_pos:(mbase + r.offset) (slot_addr - gp)
            | Objfile.Reloc.Gpdisp { anchor; pair } -> (
                let base_value = Layout.text_base + mbase + anchor in
                match Isa.Insn.split32_opt (gp - base_value) with
                | Some (hi, lo) ->
                    patch16 ~text_pos:(mbase + r.offset) hi;
                    patch16 ~text_pos:(mbase + pair) lo
                | None ->
                    (* a GP displacement only leaves the 32-bit split when
                       the relocation's anchor is corrupt — surface it as a
                       link error instead of crashing mid-patch *)
                    invalid_arg
                      (Printf.sprintf
                         "Link: GPDISP displacement %d out of range in %s \
                          (offset %d, anchor %d): corrupt relocation?"
                         (gp - base_value)
                         world.Resolve.modules.(m).Objfile.Cunit.name r.offset
                         anchor))
            | Objfile.Reloc.Lituse_base _ | Objfile.Reloc.Lituse_jsr _ -> ()
            | Objfile.Reloc.Refquad { symbol; addend } ->
                let addr =
                  address_of_target world lay (Resolve.resolve_exn world m symbol)
                  + addend
                in
                let pos = section_off lay m r.section + r.offset in
                Bytes.set_int64_le data pos (Int64.of_int addr)
            | Objfile.Reloc.Gprel16 { symbol; addend } ->
                (* optimistic compilation: the compiler bet that this datum
                   lands in the GP window; verify the bet *)
                let addr =
                  address_of_target world lay (Resolve.resolve_exn world m symbol)
                  + addend
                in
                let disp = addr - gp in
                if not (Isa.Insn.fits_disp16 disp) then
                  invalid_arg
                    (Printf.sprintf
                       "Link: %s is outside the GP window (optimistic \
                        compilation failed; recompile %s without -G)"
                       symbol
                       world.Resolve.modules.(m).Objfile.Cunit.name);
                patch16 ~text_pos:(mbase + r.offset) disp)
          u.relocs)
      world.Resolve.modules;
    (* metadata *)
    let procs =
      Array.map
        (fun (p : Resolve.proc_rec) ->
          { Image.name = p.p_name;
            entry = Layout.text_base + lay.text_off.(p.p_module) + p.p_offset;
            size = p.p_size;
            gp_value = gp_of_group gat.Gat.group_of_module.(p.p_module);
            module_name = world.Resolve.modules.(p.p_module).Objfile.Cunit.name;
            exported = p.p_exported;
            uses_gp = p.p_uses_gp;
            gp_setup_at_entry = p.p_gp_at_entry })
        world.Resolve.procs
    in
    let symbols =
      Hashtbl.fold
        (fun name tgt acc -> (name, address_of_target world lay tgt) :: acc)
        world.Resolve.globals []
      |> List.sort compare
    in
    let image =
      { Image.text_base = Layout.text_base;
        text;
        data_base = Layout.data_base;
        data;
        entry =
          (let p = world.Resolve.procs.(world.Resolve.entry_proc) in
           Layout.text_base + lay.text_off.(p.p_module) + p.p_offset);
        procs;
        symbols;
        heap_base = Layout.align (Layout.data_base + lay.data_total) 4096;
        gat_base = Layout.data_base + lay.lita_off;
        gat_bytes = Gat.size_bytes gat;
        ngroups = gat.Gat.ngroups }
    in
    (match Image.validate image with
    | Ok () -> ()
    | Error m -> invalid_arg ("Link: invalid image: " ^ m));
    image
  with
  | image -> Ok image
  | exception Invalid_argument m -> Error m

let link ?entry ?gat_capacity units ~archives =
  Result.bind (Resolve.run ?entry units ~archives) (fun world ->
      link_resolved ?gat_capacity world)
