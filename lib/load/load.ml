(* The load generator: seeded program mixes fired at the daemon from
   concurrent client threads, verified bit-for-bit against a serial
   in-process oracle. *)

module P = Server.Protocol
module Json = Obs.Json

type profile = Cold | Dup | Mixed

let profile_name = function Cold -> "cold" | Dup -> "dup" | Mixed -> "mixed"

let profile_of_string = function
  | "cold" -> Ok Cold
  | "dup" -> Ok Dup
  | "mixed" -> Ok Mixed
  | s -> Error (Printf.sprintf "unknown load profile %S (cold|dup|mixed)" s)

type spec = {
  profile : profile;
  clients : int;
  requests : int;
  level : string;
  seed : int;
  deadline_ms : int option;
  retries : int;
}

let default_spec =
  { profile = Mixed;
    clients = 4;
    requests = 64;
    level = "full";
    seed = 42;
    deadline_ms = None;
    retries = 0 }

(* --- deterministic program generation ---

   Program [id] under [seed] is always the same two-module minic
   program; distinct ids differ in their arithmetic constants (and so in
   source digest, image key and image bytes). The shape does real link
   work: two user modules, an extern call binding them, io from
   libstd. *)

let program ~seed id =
  let rng = Random.State.make [| 0x10ad; seed; id |] in
  let a = 3 + Random.State.int rng 93 in
  let b = 1 + Random.State.int rng 997 in
  let c = 2 + Random.State.int rng 89 in
  let iters = 8 + Random.State.int rng 56 in
  let util =
    Printf.sprintf
      "func churn(x) {\n\
      \  var acc = x;\n\
      \  var i = 0;\n\
      \  while (i < %d) {\n\
      \    acc = (acc * %d + %d) & 65535;\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return acc;\n\
       }\n"
      iters a b
  in
  let main =
    Printf.sprintf
      "extern func churn(x);\n\
       func main() {\n\
      \  io_putint_nl(churn(%d));\n\
      \  return 0;\n\
       }\n"
      c
  in
  [ { P.src_name = "util.mc"; src_text = util };
    { P.src_name = "main.mc"; src_text = main } ]

(* the seeded request mix: which program id does request [j] link? *)
let program_id spec j =
  match spec.profile with
  | Cold -> j
  | Dup -> 0
  | Mixed ->
      let rng = Random.State.make [| 0x3141; spec.seed; j |] in
      if Random.State.int rng 10 < 7 then Random.State.int rng 8
      else 100_000 + j

(* --- results --- *)

type result = {
  r_profile : string;
  r_level : string;
  r_clients : int;
  r_workers : int;
  r_requests : int;
  r_ok : int;
  r_failed : int;
  r_overloaded : int;
  r_timeouts : int;
  r_coalesced : int;
  r_image_hits : int;
  r_mismatched : int;
  r_wall_s : float;
  r_latencies_us : int array;
  r_failures : string list;
}

let quantile_us r p =
  let n = Array.length r.r_latencies_us in
  if n = 0 then 0
  else
    let rank = int_of_float (p *. float_of_int n) in
    r.r_latencies_us.(min (n - 1) rank)

let throughput_rps r =
  if r.r_wall_s <= 0. then 0. else float_of_int r.r_ok /. r.r_wall_s

(* --- the oracle: serial in-process links of every distinct program --- *)

let oracle_digests spec =
  let engine =
    Server.Engine.create ~store:(Store.in_memory ())
      ~metrics:(Obs.Metrics.create ()) ()
  in
  let tbl = Hashtbl.create 64 in
  let rec go j =
    if j >= spec.requests then Ok tbl
    else begin
      let id = program_id spec j in
      if Hashtbl.mem tbl id then go (j + 1)
      else
        let inputs =
          List.map
            (fun (s : P.source) ->
              Server.Engine.Source { name = s.P.src_name; text = s.P.src_text })
            (program ~seed:spec.seed id)
        in
        match Server.Engine.link engine ~level:spec.level inputs with
        | Error m -> Error (Printf.sprintf "oracle link of program %d: %s" id m)
        | Ok (image, _, _) ->
            Hashtbl.replace tbl id
              (Store.digest_string (Store.Codec.image_to_string image));
            go (j + 1)
    end
  in
  go 0

(* --- one client thread's shard --- *)

type tally = {
  mutable t_ok : int;
  mutable t_failed : int;
  mutable t_overloaded : int;
  mutable t_timeouts : int;
  mutable t_coalesced : int;
  mutable t_image_hits : int;
  mutable t_mismatched : int;
  mutable t_latencies : int list;
  mutable t_failures : string list;
}

let fresh_tally () =
  { t_ok = 0;
    t_failed = 0;
    t_overloaded = 0;
    t_timeouts = 0;
    t_coalesced = 0;
    t_image_hits = 0;
    t_mismatched = 0;
    t_latencies = [];
    t_failures = [] }

let bool_field name fields =
  match Option.bind (Server.Client.field name fields) Json.get_bool with
  | Some b -> b
  | None -> false

(* Open-loop within each connection: a sliding window of [pipeline]
   requests stays in flight at once (the daemon replies in request
   order), so duplicate links actually overlap and coalesce instead of
   arriving one reply apart. The window stays at the daemon's default
   per-connection in-flight cap — deeper would just park the excess in
   socket buffers. *)
let pipeline = 8

let client_shard ?socket spec oracle tally indices =
  match Server.Client.connect ?socket () with
  | Error m ->
      tally.t_failed <- tally.t_failed + List.length indices;
      tally.t_failures <- m :: tally.t_failures
  | Ok fd ->
      Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
      (* (request index, attempt, not-before time) still to send, and the
         FIFO of sent requests awaiting their in-order replies *)
      let to_send = Queue.create () and awaiting = Queue.create () in
      List.iter (fun j -> Queue.add (j, 0, 0.) to_send) indices;
      let t0 = Hashtbl.create 16 in
      let abandon m =
        tally.t_failed <-
          tally.t_failed + Queue.length to_send + Queue.length awaiting;
        tally.t_failures <- m :: tally.t_failures;
        Queue.clear to_send;
        Queue.clear awaiting
      in
      let send_one () =
        let j, attempt, not_before = Queue.pop to_send in
        let now = Unix.gettimeofday () in
        if not_before > now then Unix.sleepf (not_before -. now);
        if not (Hashtbl.mem t0 j) then
          Hashtbl.replace t0 j (Unix.gettimeofday ());
        let sources = program ~seed:spec.seed (program_id spec j) in
        match
          P.send fd
            (P.request_to_json
               (P.request ?deadline_ms:spec.deadline_ms
                  (P.Link
                     { files = []; sources; level = spec.level; entry = None })))
        with
        | () -> Queue.add (j, attempt) awaiting
        | exception Unix.Unix_error (e, _, _) ->
            Queue.add (j, attempt) awaiting;
            abandon ("send: " ^ Unix.error_message e)
      in
      let settle j =
        let us =
          int_of_float
            (1_000_000. *. (Unix.gettimeofday () -. Hashtbl.find t0 j))
        in
        tally.t_latencies <- us :: tally.t_latencies
      in
      let recv_one () =
        let j, attempt = Queue.pop awaiting in
        match P.recv fd with
        | P.Eof ->
            tally.t_failed <- tally.t_failed + 1;
            abandon "connection closed mid-reply"
        | P.Bad m ->
            tally.t_failed <- tally.t_failed + 1;
            abandon ("bad reply frame: " ^ m)
        | P.Frame reply -> (
            match P.response_result reply with
            | Ok fields -> (
                tally.t_ok <- tally.t_ok + 1;
                if bool_field "coalesced" fields then
                  tally.t_coalesced <- tally.t_coalesced + 1;
                if bool_field "image_hit" fields then
                  tally.t_image_hits <- tally.t_image_hits + 1;
                settle j;
                match
                  Option.bind (Server.Client.field "image" fields)
                    Json.get_string
                  |> Fun.flip Option.bind (fun hex ->
                         Result.to_option (P.hex_decode hex))
                with
                | None ->
                    tally.t_mismatched <- tally.t_mismatched + 1;
                    tally.t_failures <-
                      Printf.sprintf "request %d: reply carries no image" j
                      :: tally.t_failures
                | Some bytes ->
                    let got = Store.digest_string bytes in
                    if Hashtbl.find_opt oracle (program_id spec j) <> Some got
                    then begin
                      tally.t_mismatched <- tally.t_mismatched + 1;
                      (* whose image did we get? cross-wired replies name
                         the other program; corruption names nobody *)
                      let owner =
                        Hashtbl.fold
                          (fun id d acc -> if d = got then Some id else acc)
                          oracle None
                      in
                      tally.t_failures <-
                        (match owner with
                        | Some id ->
                            Printf.sprintf
                              "request %d (program %d): got program %d's image"
                              j (program_id spec j) id
                        | None ->
                            Printf.sprintf
                              "request %d (program %d): image matches no \
                               oracle program"
                              j (program_id spec j))
                        :: tally.t_failures
                    end)
            | Error e when e.P.code = "overloaded" ->
                tally.t_overloaded <- tally.t_overloaded + 1;
                if attempt < spec.retries then
                  let ms = Option.value e.P.retry_after_ms ~default:25 in
                  Queue.add
                    (j, attempt + 1,
                     Unix.gettimeofday () +. (float_of_int ms /. 1000.))
                    to_send
                else begin
                  settle j;
                  tally.t_failures <-
                    Printf.sprintf "request %d: %s" j e.P.message
                    :: tally.t_failures
                end
            | Error e when e.P.code = "timeout" ->
                tally.t_timeouts <- tally.t_timeouts + 1;
                settle j
            | Error e ->
                tally.t_failed <- tally.t_failed + 1;
                settle j;
                tally.t_failures <-
                  Printf.sprintf "request %d: [%s] %s" j e.P.code e.P.message
                  :: tally.t_failures)
      in
      while not (Queue.is_empty to_send && Queue.is_empty awaiting) do
        if
          (not (Queue.is_empty to_send)) && Queue.length awaiting < pipeline
        then send_one ()
        else recv_one ()
      done

let daemon_workers ?socket () =
  match
    Server.Client.with_connection ?socket (fun fd -> Server.Client.stats fd)
  with
  | Ok (Ok fields) ->
      Option.bind (Server.Client.field "sched" fields) (fun s ->
          Option.bind (Json.member "workers" s) Json.get_int)
      |> Option.value ~default:0
  | _ -> 0

let run_against ?socket spec =
  if spec.requests <= 0 then Error "load: requests must be positive"
  else if spec.clients <= 0 then Error "load: clients must be positive"
  else
    match oracle_digests spec with
    | Error m -> Error m
    | Ok oracle ->
        let workers = daemon_workers ?socket () in
        let clients = min spec.clients spec.requests in
        let shards =
          List.init clients (fun c ->
              List.filter
                (fun j -> j mod clients = c)
                (List.init spec.requests Fun.id))
        in
        let tallies = List.map (fun _ -> fresh_tally ()) shards in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.map2
            (fun tally indices ->
              Thread.create
                (fun () -> client_shard ?socket spec oracle tally indices)
                ())
            tallies shards
        in
        List.iter Thread.join threads;
        let wall_s = Unix.gettimeofday () -. t0 in
        let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
        let latencies =
          Array.of_list (List.concat_map (fun t -> t.t_latencies) tallies)
        in
        Array.sort compare latencies;
        Ok
          { r_profile = profile_name spec.profile;
            r_level = spec.level;
            r_clients = clients;
            r_workers = workers;
            r_requests = spec.requests;
            r_ok = sum (fun t -> t.t_ok);
            r_failed = sum (fun t -> t.t_failed);
            r_overloaded = sum (fun t -> t.t_overloaded);
            r_timeouts = sum (fun t -> t.t_timeouts);
            r_coalesced = sum (fun t -> t.t_coalesced);
            r_image_hits = sum (fun t -> t.t_image_hits);
            r_mismatched = sum (fun t -> t.t_mismatched);
            r_wall_s = wall_s;
            r_latencies_us = latencies;
            r_failures =
              (let all = List.concat_map (fun t -> t.t_failures) tallies in
               List.filteri (fun i _ -> i < 5) all) }

let run_selfhosted ?workers ?queue_limit spec =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "omlt_load_%d_%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "load.sock" in
  let cleanup () =
    (try Sys.remove socket with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let engine =
    Server.Engine.create ~store:(Store.in_memory ())
      ~metrics:(Obs.Metrics.create ()) ()
  in
  let server =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~engine ~socket ?workers ?queue_limit ())
  in
  let rec wait_ready tries =
    match Server.Client.with_connection ~socket (fun fd -> Server.Client.ping fd ()) with
    | Ok (Ok _) -> Ok ()
    | _ when tries > 0 ->
        Unix.sleepf 0.05;
        wait_ready (tries - 1)
    | Ok (Error e) -> Error ("load daemon never became ready: " ^ e.P.message)
    | Error m -> Error ("load daemon never became ready: " ^ m)
  in
  let shutdown () =
    (match
       Server.Client.with_connection ~socket (fun fd -> Server.Client.shutdown fd)
     with
    | _ -> ());
    match Domain.join server with
    | Ok () -> Ok ()
    | Error m -> Error ("load daemon exited with: " ^ m)
  in
  match wait_ready 100 with
  | Error m ->
      ignore (shutdown ());
      Error m
  | Ok () -> (
      let run = run_against ~socket spec in
      match (run, shutdown ()) with
      | Error m, _ -> Error m
      | Ok _, Error m -> Error m
      | Ok r, Ok () ->
          (* selfhosted knows its pool shape even if stats was shed *)
          let workers =
            match workers with
            | Some w -> max 1 w
            | None -> r.r_workers
          in
          Ok { r with r_workers = workers })

let to_report_load r =
  { Obs.Report.l_profile = r.r_profile;
    l_level = r.r_level;
    l_clients = r.r_clients;
    l_workers = r.r_workers;
    l_requests = r.r_requests;
    l_ok = r.r_ok;
    l_failed = r.r_failed;
    l_overloaded = r.r_overloaded;
    l_timeouts = r.r_timeouts;
    l_coalesced = r.r_coalesced;
    l_mismatched = r.r_mismatched;
    l_wall_s = r.r_wall_s;
    l_throughput_rps = throughput_rps r;
    l_latency =
      { Obs.Report.q_count = Array.length r.r_latencies_us;
        q_p50_us = quantile_us r 0.50;
        q_p95_us = quantile_us r 0.95;
        q_p99_us = quantile_us r 0.99;
        q_max_us = quantile_us r 1.0 } }

let summary_lines r =
  [ Printf.sprintf "profile=%s level=%s clients=%d workers=%d requests=%d"
      r.r_profile r.r_level r.r_clients r.r_workers r.r_requests;
    Printf.sprintf
      "ok=%d failed=%d overloaded=%d timeouts=%d coalesced=%d image_hits=%d \
       mismatched=%d"
      r.r_ok r.r_failed r.r_overloaded r.r_timeouts r.r_coalesced
      r.r_image_hits r.r_mismatched;
    Printf.sprintf
      "wall=%.3fs throughput=%.1f req/s p50=%dus p95=%dus p99=%dus max=%dus"
      r.r_wall_s (throughput_rps r) (quantile_us r 0.50) (quantile_us r 0.95)
      (quantile_us r 0.99) (quantile_us r 1.0) ]
