(** A deterministic load generator for the concurrent link service.

    Replays seeded mixes of link requests against a running daemon from
    N concurrent client threads, each over its own connection, with all
    sources travelling inline (the daemon's request→image path stays in
    memory). Every distinct program is first linked serially in-process
    to get an oracle image digest, so the harness asserts bit-identity
    of every concurrent reply — not just success.

    Three request mixes:
    - [Cold]: every request links a distinct program (image-cache miss
      each time) — the throughput-scaling story;
    - [Dup]: every request links the same program concurrently — the
      coalescing story;
    - [Mixed]: a seeded 70/30 blend of a small hot set and cold
      one-offs — the realistic story. *)

type profile = Cold | Dup | Mixed

val profile_of_string : string -> (profile, string) result
val profile_name : profile -> string

type spec = {
  profile : profile;
  clients : int;  (** concurrent client threads *)
  requests : int;  (** total requests, sharded round-robin *)
  level : string;  (** link level, e.g. ["full"] *)
  seed : int;  (** drives program generation and the mix *)
  deadline_ms : int option;  (** per-request deadline, if any *)
  retries : int;  (** per-request retries on [overloaded] *)
}

val default_spec : spec
(** [Mixed], 4 clients, 64 requests, level ["full"], seed 42, no
    deadline, no retries. *)

val program : seed:int -> int -> Server.Protocol.source list
(** The deterministic two-module minic program with identity [id] under
    [seed]: distinct ids differ in arithmetic constants (and so in
    digest and image bytes). Exposed for tests. *)

val program_id : spec -> int -> int
(** Which program the [j]th request of the mix links. *)

type result = {
  r_profile : string;
  r_level : string;
  r_clients : int;
  r_workers : int;  (** worker domains behind the daemon (0 = unknown) *)
  r_requests : int;
  r_ok : int;
  r_failed : int;  (** hard failures — error replies that are neither
                       [overloaded] nor [timeout], or broken connections *)
  r_overloaded : int;  (** [overloaded] replies seen (retries included) *)
  r_timeouts : int;
  r_coalesced : int;  (** ok replies marked [coalesced] by the daemon *)
  r_image_hits : int;  (** ok replies served from the image cache *)
  r_mismatched : int;  (** ok replies whose bytes differ from the oracle *)
  r_wall_s : float;
  r_latencies_us : int array;  (** per-request round trips, sorted *)
  r_failures : string list;  (** a small sample of failure messages *)
}

val quantile_us : result -> float -> int
(** [quantile_us r 0.99] — latency quantile by rank over the sorted
    samples; 0 when no request completed. *)

val throughput_rps : result -> float
(** Successful requests per wall-clock second. *)

val run_against : ?socket:string -> spec -> (result, string) Stdlib.result
(** Drive an already-running daemon. Builds the oracle serially first
    (in-process, hermetic store), then opens [clients] connections and
    fires. [r_workers] is read from the daemon's [stats] reply. *)

val run_selfhosted :
  ?workers:int -> ?queue_limit:int -> spec -> (result, string) Stdlib.result
(** Spawn a hermetic daemon (in-memory store, private metrics registry,
    temp socket) with the given pool shape, run {!run_against} on it,
    shut it down, and clean up. The workhorse behind [bench load]. *)

val to_report_load : result -> Obs.Report.load
(** The schema-v6 [load] record for {!Obs.Report.make}. *)

val summary_lines : result -> string list
(** Human-readable one-liners for CLI output. *)
