(* Trace superinstructions: the simulator's fused fast path.

   A [Decoded.t] image is carved — lazily, per entry point actually
   reached — into traces (superblocks): a run of instructions that
   follows fall-through edges, the fall-through side of conditional
   branches, and statically-targeted unconditional branches, ending at
   a register jump, a system call, a PAL trap, a branch that leaves the
   image, or the length cap. A loop body therefore fuses into one long
   trace that unrolls the loop up to [max_block_len] instructions — one
   dispatch per hundreds of retired instructions instead of one per
   basic block. A conditional branch inside a trace is a side exit:
   fall-through continues inside the trace at full speed, and the taken
   direction leaves the trace (setting a flag the executor loop
   checks). Each trace is fused once into an array of per-instruction
   executor closures with every static fact resolved at fuse time:

   - kind dispatch: the operator is selected when the closure is built
     (flat dispatch on the precomputed kind code) — one specialized
     closure per opcode, so the read-op-write chain compiles to direct
     unboxed int64 primitives (a closure-valued operator would force
     boxing both operands and the result at the call boundary);
   - issue timing threads through an unboxed int argument: a step takes
     the previous issue cycle and returns its own, so the hot loop never
     touches a mutable record between instructions — control-flow state
     is written only by the block's terminator;
   - register pressure: uses/defs bitmasks are decomposed into at most
     two scoreboard reads and one scoreboard write (slot 31 is the
     pinned-zero "no operands" read); instructions with no destination
     (stores, dead writes to r31) skip the scoreboard write entirely,
     and ops whose destination is r31 skip the value computation too —
     they cost issue slots but compute nothing;
   - dual-issue pairing: within a trace the previous instruction's PC,
     alignment, pipe and non-control status are compile-time constants
     (a not-taken conditional is not "control" for pairing, so its
     fall-through successor still pairs statically), so pairing drops
     from an 8-term test to [oready <= last_issue], with the full
     dynamic test kept only for the trace's first instruction (whose
     predecessor is whatever trace ran before);
   - instruction fetch: consecutive PCs share I-cache lines, so only
     line-crossing instructions, the trace's first, and the landing
     instruction after a followed branch touch the I-cache — same miss
     totals and tag state, a fraction of the accesses;
   - retirement counters: loads/stores/nops per trace are constants,
     added once at trace entry; a side exit refunds the suffix it
     skipped (constants captured in the exiting closure).

   Executors are cached by entry index, so a branch into the middle of
   an already-fused trace simply fuses (and caches) a second trace
   starting there — entry-indexed caching is what keeps fused execution
   exactly equivalent to instruction-at-a-time execution.

   Everything observable — cycles, cache misses, fault kinds and fault
   PCs, output, exit codes — is bit-identical to [Cpu.run_reference];
   the differential tests and the fuzzer's stats-agreement oracle
   enforce this. Probe/trace instrumentation is NOT supported here:
   [Cpu.run_decoded] transparently falls back to the per-instruction
   loop when a hook is present, keeping Obs.Attr attribution exact. *)

module D = Decoded
module S = State

(* Local copies of State's register-file and memory primitives. The
   build compiles libraries with [-opaque] (and without flambda), so a
   cross-module [S.rget] is an indirect call through State's module
   block — and because its argument and result are [int64], every such
   call boxes: measured at ~9 minor words allocated per simulated
   instruction, the single largest cost in the fused loop. Same-module
   definitions inline under any build profile and keep the whole
   read-op-write chain unboxed. Keep these in sync with State. *)
external reg_read : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external reg_write : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline always] rget m r = reg_read m.S.regs (r lsl 3)
let[@inline always] rset_u m r v = reg_write m.S.regs (r lsl 3) v
let[@inline always] bool64 c : int64 = if c then 1L else 0L

let[@inline always] read64 m addr =
  if addr land 7 <> 0 then raise (S.Fault (S.Unaligned_access addr));
  if addr >= m.S.data_base && addr < m.S.data_base + Bytes.length m.S.data
  then Bytes.get_int64_le m.S.data (addr - m.S.data_base)
  else if
    addr >= m.S.stack_base && addr < m.S.stack_base + Bytes.length m.S.stack
  then Bytes.get_int64_le m.S.stack (addr - m.S.stack_base)
  else raise (S.Fault (S.Out_of_range_access addr))

let[@inline always] write64 m addr v =
  if addr land 7 <> 0 then raise (S.Fault (S.Unaligned_access addr));
  if addr >= m.S.data_base && addr < m.S.data_base + Bytes.length m.S.data
  then Bytes.set_int64_le m.S.data (addr - m.S.data_base) v
  else if
    addr >= m.S.stack_base && addr < m.S.stack_base + Bytes.length m.S.stack
  then Bytes.set_int64_le m.S.stack (addr - m.S.stack_base) v
  else raise (S.Fault (S.Out_of_range_access addr))

let max_block_len = 512

type rstate = {
  mutable pc_next : int;
  mutable last_issue : int;
  mutable last_pc : int;
  mutable last_pipe : int; (* -1 = none *)
  mutable last_was_ctl : bool;
  mutable jumped : bool; (* a side exit fired inside the trace *)
  mutable exited : bool;
  mutable exit_code : int64;
}

(* A step takes the previous instruction's issue cycle and returns its
   own; only terminators (and the block seal) write [rstate]. *)
type step = S.machine -> rstate -> int -> int

type binfo = {
  b_len : int;
  b_loads : int;  (* static: every k_ldq retires one load *)
  b_stores : int;
  b_nops : int;
  b_has_exit : bool; (* a side-exit conditional lives inside the trace *)
  b_steps : step array;
  b_seal : (rstate -> unit) option;
      (* fall-through exit state for traces with no terminator
         (length-capped, or the image's text ran out) *)
}

type t = {
  decoded : D.t;
  config : S.config;
  execs : binfo option array; (* entry index -> fused executor *)
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let decoded t = t.decoded
let config t = t.config
let cache_stats t = (Atomic.get t.hits, Atomic.get t.misses)

let executors_cached t =
  Array.fold_left (fun n e -> if e = None then n else n + 1) 0 t.execs

(* process-wide totals, mirrored into the Obs.Metrics registry by
   Reports.Measure (this library carries no obs dependency) *)
let hits_total = Atomic.make 0
let misses_total = Atomic.make 0
let built_total = Atomic.make 0

type counters = { hits : int; misses : int; built : int }

let counters () =
  { hits = Atomic.get hits_total;
    misses = Atomic.get misses_total;
    built = Atomic.get built_total }

let is_terminator k =
  k = D.k_br || k = D.k_jump || k = D.k_bcond || k = D.k_syscall || k = D.k_pal

(* --- fuse-time decomposition helpers --- *)

(* uses masks carry at most two bits for every kind except Call_pal
   (handled generically); the empty mask reads the pinned-zero slot 31 *)
let two_of_mask mask =
  if mask = 0 then (31, 31)
  else
    let r1 = S.ntz (mask land (-mask)) in
    let rest = mask land (mask - 1) in
    if rest = 0 then (r1, r1) else (r1, S.ntz (rest land (-rest)))

(* The full issue equation, reached only by the block's first
   instruction (dynamic pairing against the previous block's exit
   state) and by cache-line-crossing ones (I-fetch check). Everything
   else takes the two-branch fast path in [issue_pre]. *)
let step_issue_slow m rs ~entry ~dual ~ipen ~pc ~pipe ~static_pair ~oready li
    =
  let fetch = if Cache.access m.S.icache pc then 0 else ipen in
  let pair =
    fetch = 0 && oready <= li
    && (if entry then
          dual
          && pc = rs.last_pc + 4
          && rs.last_pc land 7 = 0
          && (not rs.last_was_ctl)
          && rs.last_pipe >= 0
          && rs.last_pipe <> pipe
        else static_pair)
  in
  if pair then li
  else (let base = li + 1 in if oready > base then oready else base) + fetch

(* The hot-path prelude, fused into steps that are neither a trace
   entry, a line-crossing, nor a followed-branch landing: two scoreboard
   reads, then pairing reduced to [oready <= li]. Kept tiny so fast-arm
   closures compile frameless with no cold code inlined. *)
let[@inline always] pre_fast m li ~sp ~u1 ~u2 =
  let ready = m.S.ready in
  let a = Array.unsafe_get ready u1 in
  let b = Array.unsafe_get ready u2 in
  let oready = if a > b then a else b in
  if sp && oready <= li then li
  else
    let base = li + 1 in
    if oready > base then oready else base

(* Prelude for the remaining steps: scoreboard reads feeding the full
   issue equation (I-fetch plus, at the entry, dynamic pairing). *)
let[@inline always] pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
    =
  let ready = m.S.ready in
  let a = Array.unsafe_get ready u1 in
  let b = Array.unsafe_get ready u2 in
  let oready = if a > b then a else b in
  step_issue_slow m rs ~entry ~dual ~ipen ~pc ~pipe ~static_pair:sp ~oready li

(* Result writeback shared by every operate arm. *)
let[@inline always] fin m rc lat issue v =
  rset_u m rc v;
  Array.unsafe_set m.S.ready rc (issue + lat);
  issue

(* Branch conditions dispatch on a fuse-time-captured index: a jump
   table per execution, no closure boundary around the register value. *)
let[@inline always] cond ci v =
  match ci with
  | 0 -> Int64.equal v 0L
  | 1 -> not (Int64.equal v 0L)
  | 2 -> Int64.compare v 0L < 0
  | 3 -> Int64.compare v 0L <= 0
  | 4 -> Int64.compare v 0L >= 0
  | 5 -> Int64.compare v 0L > 0
  | 6 -> Int64.equal (Int64.logand v 1L) 0L
  | _ -> Int64.equal (Int64.logand v 1L) 1L

(* What precedes a step inside its trace — decides which issue path it
   fuses to:
   - [P_entry]: the trace's first instruction; its predecessor is
     whatever ran before, so pairing needs the full dynamic test;
   - [P_straight pc pipe]: the preceding trace position at [pc]
     (fall-through, including a not-taken conditional) — pairing is
     static, and the I-fetch is elided off line boundaries;
   - [P_jumped]: the landing point of a followed unconditional branch —
     never pairs (the branch was control), and must touch the I-cache
     because the PC just moved to a new line. *)
type prev = P_entry | P_straight of int * int | P_jumped

(* Build the executor closure for the trace position holding instruction
   [idx] at address [pc]. [mid] marks a branch fused *inside* the trace:
   a conditional whose fall-through continues in-trace (taken = side
   exit, refunding the [d_*] suffix counts), or an unconditional whose
   target is the next trace position.

   Every arm exists in a fast- and a slow-prelude variant selected at
   fuse time. The split is what keeps the hot arms lean: inlining the
   cold issue path into one shared closure body would force it to load
   the cold path's captures (pc, penalties, pipe, entry flag) and spill
   registers on every execution, tripling the fast path's prologue. *)
let build_step (d : D.t) (cfg : S.config) ~pc ~prev ~mid ~d_insns ~d_loads
    ~d_stores ~d_nops idx : step =
  let dual = cfg.S.dual_issue in
  let ipen = cfg.S.icache_miss_penalty in
  let dpen = cfg.S.dcache_miss_penalty in
  let bpen = cfg.S.branch_penalty in
  let pipe = d.D.pipe.(idx) in
  let entry = match prev with P_entry -> true | _ -> false in
  let sp =
    match prev with
    | P_straight (ppc, ppipe) -> dual && ppc land 7 = 0 && ppipe <> pipe
    | P_entry | P_jumped -> false
  in
  let fast =
    (match prev with P_straight _ -> true | P_entry | P_jumped -> false)
    && pc mod cfg.S.line_bytes <> 0
  in
  let uses = d.D.uses.(idx) in
  let u1, u2 = two_of_mask uses in
  let lat = d.D.lat.(idx) in
  let k = d.D.kind.(idx) in
  let ra = d.D.ra.(idx)
  and rb = d.D.rb.(idx)
  and rc = d.D.rc.(idx)
  and imm = d.D.imm.(idx)
  and target = d.D.target.(idx) in
  if k >= D.k_op_base && k < D.k_syscall then
    if rc = 31 then
      (* dead destination (scheduling nop): pure issue timing *)
      if fast then fun m _rs li -> pre_fast m li ~sp ~u1 ~u2
      else
        fun m rs li -> pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
    else if k < D.k_opi_base then begin
      (* register operand: one closure per opcode, the whole
         read-op-write chain syntactically direct so it stays unboxed *)
      if fast then
        match k - D.k_op_base with
        | 0 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.add (rget m ra) (rget m rb))
        | 1 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.sub (rget m ra) (rget m rb))
        | 2 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.mul (rget m ra) (rget m rb))
        | 3 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.equal (rget m ra) (rget m rb)))
        | 4 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.compare (rget m ra) (rget m rb) < 0))
        | 5 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.compare (rget m ra) (rget m rb) <= 0))
        | 6 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (S.bool64
                   (Int64.unsigned_compare (rget m ra) (rget m rb) < 0))
        | 7 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (S.bool64
                   (Int64.unsigned_compare (rget m ra) (rget m rb) <= 0))
        | 8 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logand (rget m ra) (rget m rb))
        | 9 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) (rget m rb))
        | 10 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logxor (rget m ra) (rget m rb))
        | 11 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.logor (rget m ra) (Int64.lognot (rget m rb)))
        | 12 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_left (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
        | 13 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_right_logical (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
        | _ ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_right (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
      else
        match k - D.k_op_base with
        | 0 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.add (rget m ra) (rget m rb))
        | 1 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.sub (rget m ra) (rget m rb))
        | 2 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.mul (rget m ra) (rget m rb))
        | 3 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.equal (rget m ra) (rget m rb)))
        | 4 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.compare (rget m ra) (rget m rb) < 0))
        | 5 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.compare (rget m ra) (rget m rb) <= 0))
        | 6 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (S.bool64
                   (Int64.unsigned_compare (rget m ra) (rget m rb) < 0))
        | 7 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (S.bool64
                   (Int64.unsigned_compare (rget m ra) (rget m rb) <= 0))
        | 8 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logand (rget m ra) (rget m rb))
        | 9 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) (rget m rb))
        | 10 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logxor (rget m ra) (rget m rb))
        | 11 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.logor (rget m ra) (Int64.lognot (rget m rb)))
        | 12 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_left (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
        | 13 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_right_logical (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
        | _ ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (Int64.shift_right (rget m ra)
                   (Int64.to_int (Int64.logand (rget m rb) 63L)))
    end
    else begin
      (* 8-bit literal operand, folded to a constant at fuse time *)
      let bI = Int64.of_int imm in
      let nbI = Int64.lognot bI in
      let bsh = imm land 63 in
      if fast then
        match k - D.k_opi_base with
        | 0 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.add (rget m ra) bI)
        | 1 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.sub (rget m ra) bI)
        | 2 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.mul (rget m ra) bI)
        | 3 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.equal (rget m ra) bI))
        | 4 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.compare (rget m ra) bI < 0))
        | 5 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.compare (rget m ra) bI <= 0))
        | 6 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.unsigned_compare (rget m ra) bI < 0))
        | 7 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.unsigned_compare (rget m ra) bI <= 0))
        | 8 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logand (rget m ra) bI)
        | 9 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) bI)
        | 10 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logxor (rget m ra) bI)
        | 11 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) nbI)
        | 12 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_left (rget m ra) bsh)
        | 13 ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_right_logical (rget m ra) bsh)
        | _ ->
            fun m _rs li ->
              let i = pre_fast m li ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_right (rget m ra) bsh)
      else
        match k - D.k_opi_base with
        | 0 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.add (rget m ra) bI)
        | 1 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.sub (rget m ra) bI)
        | 2 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.mul (rget m ra) bI)
        | 3 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.equal (rget m ra) bI))
        | 4 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.compare (rget m ra) bI < 0))
        | 5 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (bool64 (Int64.compare (rget m ra) bI <= 0))
        | 6 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.unsigned_compare (rget m ra) bI < 0))
        | 7 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i
                (bool64 (Int64.unsigned_compare (rget m ra) bI <= 0))
        | 8 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logand (rget m ra) bI)
        | 9 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) bI)
        | 10 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logxor (rget m ra) bI)
        | 11 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.logor (rget m ra) nbI)
        | 12 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_left (rget m ra) bsh)
        | 13 ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_right_logical (rget m ra) bsh)
        | _ ->
            fun m rs li ->
              let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
              fin m rc lat i (Int64.shift_right (rget m ra) bsh)
    end
  else if k = D.k_lda then begin
    let disp = Int64.of_int imm in
    if ra = 31 then
      (* the canonical nop *)
      if fast then fun m _rs li -> pre_fast m li ~sp ~u1 ~u2
      else
        fun m rs li -> pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
    else if fast then
      fun m _rs li ->
        let i = pre_fast m li ~sp ~u1 ~u2 in
        fin m ra lat i (Int64.add (rget m rb) disp)
    else
      fun m rs li ->
        let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
        fin m ra lat i (Int64.add (rget m rb) disp)
  end
  else if k = D.k_ldq then begin
    if ra = 31 then
      (* dead load: the access (cache state, faults) still happens *)
      if fast then
        fun m _rs li ->
          let i = pre_fast m li ~sp ~u1 ~u2 in
          let addr = Int64.to_int (rget m rb) + imm in
          ignore (Cache.access m.S.dcache addr);
          ignore (read64 m addr);
          i
      else
        fun m rs li ->
          let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
          let addr = Int64.to_int (rget m rb) + imm in
          ignore (Cache.access m.S.dcache addr);
          ignore (read64 m addr);
          i
    else if fast then
      fun m _rs li ->
        let i = pre_fast m li ~sp ~u1 ~u2 in
        let addr = Int64.to_int (rget m rb) + imm in
        let l = if Cache.access m.S.dcache addr then lat else lat + dpen in
        rset_u m ra (read64 m addr);
        Array.unsafe_set m.S.ready ra (i + l);
        i
    else
      fun m rs li ->
        let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
        let addr = Int64.to_int (rget m rb) + imm in
        let l = if Cache.access m.S.dcache addr then lat else lat + dpen in
        rset_u m ra (read64 m addr);
        Array.unsafe_set m.S.ready ra (i + l);
        i
  end
  else if k = D.k_stq then begin
    if fast then
      fun m _rs li ->
        let i = pre_fast m li ~sp ~u1 ~u2 in
        let addr = Int64.to_int (rget m rb) + imm in
        ignore (Cache.access m.S.dcache addr);
        write64 m addr (rget m ra);
        i
    else
      fun m rs li ->
        let i = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
        let addr = Int64.to_int (rget m rb) + imm in
        ignore (Cache.access m.S.dcache addr);
        write64 m addr (rget m ra);
        i
  end
  else if k = D.k_bcond then begin
    let ci = rc in
    if mid then
      (* side exit: fall-through continues inside the trace and writes
         nothing; taken leaves the trace, restoring the control state
         the next trace's entry step will read and refunding the
         retirement counters for the suffix it skipped *)
      if fast then
        fun m rs li ->
          let issue = pre_fast m li ~sp ~u1 ~u2 in
          if cond ci (rget m ra) then begin
            m.S.ninsns <- m.S.ninsns - d_insns;
            m.S.loads <- m.S.loads - d_loads;
            m.S.stores <- m.S.stores - d_stores;
            m.S.nops <- m.S.nops - d_nops;
            rs.last_pc <- pc;
            rs.last_pipe <- pipe;
            rs.last_was_ctl <- true;
            rs.pc_next <- target;
            rs.jumped <- true;
            issue + bpen
          end
          else issue
      else
        fun m rs li ->
          let issue =
            pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
          in
          if cond ci (rget m ra) then begin
            m.S.ninsns <- m.S.ninsns - d_insns;
            m.S.loads <- m.S.loads - d_loads;
            m.S.stores <- m.S.stores - d_stores;
            m.S.nops <- m.S.nops - d_nops;
            rs.last_pc <- pc;
            rs.last_pipe <- pipe;
            rs.last_was_ctl <- true;
            rs.pc_next <- target;
            rs.jumped <- true;
            issue + bpen
          end
          else issue
    else if fast then
      fun m rs li ->
        let issue = pre_fast m li ~sp ~u1 ~u2 in
        rs.last_pc <- pc;
        rs.last_pipe <- pipe;
        if cond ci (rget m ra) then begin
          rs.last_was_ctl <- true;
          rs.pc_next <- target;
          issue + bpen
        end
        else begin
          rs.last_was_ctl <- false;
          rs.pc_next <- pc + 4;
          issue
        end
    else
      fun m rs li ->
        let issue = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
        rs.last_pc <- pc;
        rs.last_pipe <- pipe;
        if cond ci (rget m ra) then begin
          rs.last_was_ctl <- true;
          rs.pc_next <- target;
          issue + bpen
        end
        else begin
          rs.last_was_ctl <- false;
          rs.pc_next <- pc + 4;
          issue
        end
  end
  else if k = D.k_br then begin
    let link = Int64.of_int (pc + 4) in
    if mid then
      (* followed at fuse time: the next trace position IS the target,
         so no control state needs writing — the landing step was fused
         as [P_jumped] and never consults it *)
      if ra = 31 then
        if fast then fun m _rs li -> pre_fast m li ~sp ~u1 ~u2 + bpen
        else
          fun m rs li ->
            pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 + bpen
      else if fast then
        fun m _rs li ->
          let issue = pre_fast m li ~sp ~u1 ~u2 in
          rset_u m ra link;
          Array.unsafe_set m.S.ready ra (issue + lat);
          issue + bpen
      else
        fun m rs li ->
          let issue =
            pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
          in
          rset_u m ra link;
          Array.unsafe_set m.S.ready ra (issue + lat);
          issue + bpen
    else
      fun m rs li ->
        let issue =
          if fast then pre_fast m li ~sp ~u1 ~u2
          else pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2
        in
        if ra <> 31 then begin
          rset_u m ra link;
          Array.unsafe_set m.S.ready ra (issue + lat)
        end;
        rs.last_pc <- pc;
        rs.last_pipe <- pipe;
        rs.last_was_ctl <- true;
        rs.pc_next <- target;
        issue + bpen
  end
  else if k = D.k_jump then begin
    let link = Int64.of_int (pc + 4) in
    if fast then
      fun m rs li ->
        let issue = pre_fast m li ~sp ~u1 ~u2 in
        let tgt = Int64.to_int (rget m rb) land lnot 3 in
        if ra <> 31 then begin
          rset_u m ra link;
          Array.unsafe_set m.S.ready ra (issue + lat)
        end;
        rs.last_pc <- pc;
        rs.last_pipe <- pipe;
        rs.last_was_ctl <- true;
        rs.pc_next <- tgt;
        issue + bpen
    else
      fun m rs li ->
        let issue = pre_slow m rs li ~entry ~dual ~ipen ~pc ~pipe ~sp ~u1 ~u2 in
        let tgt = Int64.to_int (rget m rb) land lnot 3 in
        if ra <> 31 then begin
          rset_u m ra link;
          Array.unsafe_set m.S.ready ra (issue + lat)
        end;
        rs.last_pc <- pc;
        rs.last_pipe <- pipe;
        rs.last_was_ctl <- true;
        rs.pc_next <- tgt;
        issue + bpen
  end
  else if k = D.k_syscall then begin
    (* Call_pal reads four argument registers: keep the general mask
       walk for this one (rare) kind *)
    let defs = d.D.defs.(idx) in
    fun m rs li ->
      let oready = S.max_ready m.S.ready uses in
      let issue =
        if fast then
          if sp && oready <= li then li
          else
            let base = li + 1 in
            if oready > base then oready else base
        else
          step_issue_slow m rs ~entry ~dual ~ipen ~pc ~pipe ~static_pair:sp
            ~oready li
      in
      (match S.syscall m with
      | Some code ->
          rs.exited <- true;
          rs.exit_code <- code
      | None -> ());
      S.set_ready m.S.ready defs (issue + lat);
      rs.last_pc <- pc;
      rs.last_pipe <- pipe;
      rs.last_was_ctl <- true;
      rs.pc_next <- pc + 4;
      issue
  end
  else fun _m _rs _li -> raise (S.Fault (S.Unknown_pal imm))
let fuse t e =
  let d = t.decoded in
  let kind = d.D.kind in
  let n = Array.length kind in
  let base = (D.image d).Linker.Image.text_base in
  (* Trace collection: walk forward from the entry, following
     fall-through edges, the fall-through side of conditionals (side
     exits), and statically-targeted unconditional branches (which
     re-enter the walk at their target — a loop backedge unrolls the
     loop into the trace until the cap). A branch is only fused [mid]
     when its continuation both exists in the image and fits under the
     cap; otherwise it terminates the trace and writes full control
     state like any basic-block terminator. *)
  let elems = ref [] in
  let count = ref 0 in
  let has_term = ref false in
  let rec collect prev i =
    let k = Array.unsafe_get kind i in
    let pc = base + (4 * i) in
    if k = D.k_bcond && !count + 1 < max_block_len && i + 1 < n then begin
      elems := (i, pc, prev, true) :: !elems;
      incr count;
      collect (P_straight (pc, d.D.pipe.(i))) (i + 1)
    end
    else if k = D.k_br then begin
      let tidx = (d.D.target.(i) - base) asr 2 in
      if !count + 1 < max_block_len && tidx >= 0 && tidx < n then begin
        elems := (i, pc, prev, true) :: !elems;
        incr count;
        collect P_jumped tidx
      end
      else begin
        elems := (i, pc, prev, false) :: !elems;
        has_term := true
      end
    end
    else if is_terminator k then begin
      elems := (i, pc, prev, false) :: !elems;
      has_term := true
    end
    else begin
      elems := (i, pc, prev, false) :: !elems;
      incr count;
      if !count < max_block_len && i + 1 < n then
        collect (P_straight (pc, d.D.pipe.(i))) (i + 1)
    end
  in
  collect P_entry e;
  let arr = Array.of_list (List.rev !elems) in
  let len = Array.length arr in
  let t_loads = ref 0 and t_stores = ref 0 and t_nops = ref 0 in
  Array.iter
    (fun (i, _, _, _) ->
      let k = Array.unsafe_get kind i in
      if k = D.k_ldq then incr t_loads
      else if k = D.k_stq then incr t_stores;
      if d.D.flags.(i) land D.flag_nop <> 0 then incr t_nops)
    arr;
  let t_loads = !t_loads and t_stores = !t_stores and t_nops = !t_nops in
  (* prefix counts walk along with the build so each side exit captures
     the exact suffix it must refund when taken *)
  let pl = ref 0 and ps = ref 0 and pn = ref 0 in
  let has_exit = ref false in
  let steps =
    Array.mapi
      (fun j (i, pc, prev, mid) ->
        let k = Array.unsafe_get kind i in
        if k = D.k_ldq then incr pl else if k = D.k_stq then incr ps;
        if d.D.flags.(i) land D.flag_nop <> 0 then incr pn;
        if mid && k = D.k_bcond then has_exit := true;
        build_step d t.config ~pc ~prev ~mid
          ~d_insns:(len - (j + 1))
          ~d_loads:(t_loads - !pl)
          ~d_stores:(t_stores - !ps)
          ~d_nops:(t_nops - !pn)
          i)
      arr
  in
  let seal =
    if !has_term then None
    else begin
      let li, lpc, _, _ = arr.(len - 1) in
      let lpipe = d.D.pipe.(li) in
      Some
        (fun rs ->
          rs.last_pc <- lpc;
          rs.last_pipe <- lpipe;
          rs.last_was_ctl <- false;
          rs.pc_next <- lpc + 4)
    end
  in
  Atomic.incr built_total;
  { b_len = len;
    b_loads = t_loads;
    b_stores = t_stores;
    b_nops = t_nops;
    b_has_exit = !has_exit;
    b_steps = steps;
    b_seal = seal }

let create ?(config = S.default_config) (d : D.t) =
  { decoded = d;
    config;
    execs = Array.make (Array.length d.D.kind) None;
    hits = Atomic.make 0;
    misses = Atomic.make 0 }

(* Cache fills are racy-but-idempotent across domains: a cell flips from
   [None] to a valid executor exactly once per domain that loses the
   race, and executors are pure functions of (decoded, config), so a
   duplicate build is wasted work, never wrong results. *)
let executor t idx =
  match Array.unsafe_get t.execs idx with
  | Some bi -> bi
  | None ->
      let bi = fuse t idx in
      Array.unsafe_set t.execs idx (Some bi);
      bi

let block_len t idx =
  if idx < 0 || idx >= Array.length t.decoded.D.kind then
    invalid_arg "Blocks.block_len";
  (executor t idx).b_len

(* The block body: issue cycles thread through [li] in a register; six
   arguments keep everything off the heap and the recursion compiles to
   a loop. *)
let rec exec_steps (steps : step array) len j m rs li =
  if j >= len then li
  else exec_steps steps len (j + 1) m rs ((Array.unsafe_get steps j) m rs li)

(* Variant for traces carrying side exits: one well-predicted flag test
   per instruction buys early exit when a fused conditional takes. *)
let rec exec_steps_chk (steps : step array) len j m rs li =
  if j >= len then li
  else
    let li' = (Array.unsafe_get steps j) m rs li in
    if rs.jumped then li' else exec_steps_chk steps len (j + 1) m rs li'

let run t =
  let config = t.config in
  let d = t.decoded in
  let image = D.image d in
  let m = S.create_machine config image in
  S.boot m image;
  let n = Array.length d.D.kind in
  let text_base = m.S.text_base in
  let max_insns = config.S.max_insns in
  let execs = t.execs in
  let rs =
    { pc_next = image.Linker.Image.entry;
      last_issue = -1;
      last_pc = min_int;
      last_pipe = -1;
      last_was_ctl = true;
      jumped = false;
      exited = false;
      exit_code = 0L }
  in
  let hits = ref 0 and misses = ref 0 in
  let result =
    try
      while not rs.exited do
        if m.S.ninsns >= max_insns then raise (S.Fault S.Insn_limit_reached);
        let pc = rs.pc_next in
        let idx = (pc - text_base) asr 2 in
        if idx < 0 || idx >= n then
          raise (S.Fault (S.Out_of_range_access pc));
        let bi =
          match Array.unsafe_get execs idx with
          | Some bi ->
              incr hits;
              bi
          | None ->
              let bi = fuse t idx in
              Array.unsafe_set execs idx (Some bi);
              incr misses;
              bi
        in
        let len = bi.b_len in
        let n0 = m.S.ninsns in
        m.S.ninsns <- n0 + len;
        m.S.loads <- m.S.loads + bi.b_loads;
        m.S.stores <- m.S.stores + bi.b_stores;
        m.S.nops <- m.S.nops + bi.b_nops;
        rs.jumped <- false;
        let li =
          if n0 + len <= max_insns then
            if bi.b_has_exit then
              exec_steps_chk bi.b_steps len 0 m rs rs.last_issue
            else exec_steps bi.b_steps len 0 m rs rs.last_issue
          else begin
            (* the limit fires inside this trace: re-check per
               instruction so the fault lands exactly where the
               per-instruction interpreters put it *)
            let steps = bi.b_steps in
            let li = ref rs.last_issue in
            let j = ref 0 in
            while !j < len && not rs.jumped do
              if n0 + !j >= max_insns then
                raise (S.Fault S.Insn_limit_reached);
              li := (Array.unsafe_get steps !j) m rs !li;
              incr j
            done;
            !li
          end
        in
        rs.last_issue <- li;
        match bi.b_seal with
        | Some f when not rs.jumped -> f rs
        | _ -> ()
      done;
      Ok (S.outcome_of m ~last_issue:rs.last_issue ~exit_code:rs.exit_code)
    with S.Fault e -> Error e
  in
  if !hits > 0 then begin
    ignore (Atomic.fetch_and_add t.hits !hits);
    ignore (Atomic.fetch_and_add hits_total !hits)
  end;
  if !misses > 0 then begin
    ignore (Atomic.fetch_and_add t.misses !misses);
    ignore (Atomic.fetch_and_add misses_total !misses)
  end;
  result
