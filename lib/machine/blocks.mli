(** Trace superinstructions: the simulator's fused fast path.

    A {!Decoded.t} image is carved lazily into traces: starting from an
    entry PC, the fuser follows straight-line code, the not-taken
    (fall-through) side of conditional branches, and statically-targeted
    unconditional [br] — so loop bodies and branch-over diamonds fuse
    into one superinstruction — stopping at jumps, calls, system calls,
    PAL traps, the end of text, or {!max_block_len}. Each trace fuses
    once into an array of per-step executor closures with kind dispatch,
    register read/write slots, dual-issue pairing preconditions, I-cache
    line crossings and retirement counters all resolved at fuse time;
    taken conditional branches are side exits that fix the counters up
    and leave the trace early. {!run} dispatches trace-to-trace through
    the entry-indexed executor cache; a branch into the middle of a
    fused trace just fuses a second, shorter executor at that entry —
    which is what keeps fused execution bit-identical to
    [Cpu.run_reference] (cycles, cache misses, output, exit codes, fault
    kinds and fault payloads). [test_blocks], the differential tests and
    the fuzzer's stats-agreement oracle enforce the equivalence.

    Probe/trace instrumentation is deliberately not supported here;
    [Cpu.run_decoded] falls back to the per-instruction loop when a hook
    is present so [Obs.Attr] attribution stays exact. *)

type t
(** A decoded image plus its (lazily filled) per-entry executor cache.
    Safe to share across domains: cache fills are racy but idempotent —
    executors are pure functions of (decoded image, config). *)

val max_block_len : int
(** Upper bound on instructions fused into one trace (runs longer than
    this split into chained fall-through traces). *)

val create : ?config:State.config -> Decoded.t -> t

val decoded : t -> Decoded.t
val config : t -> State.config

val run : t -> (State.outcome, State.error) result
(** Boot a fresh machine and execute through the fused executors until
    the exit system call, a fault, or the instruction limit. *)

val block_len : t -> int -> int
(** [block_len t idx] is the length of the trace entered at instruction
    index [idx], fusing (and caching) it if needed.
    @raise Invalid_argument when [idx] is outside the text. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of this image's executor cache: block dispatches
    served by an already-fused executor vs dispatches that fused one. *)

val executors_cached : t -> int
(** Number of entry points with a fused executor currently cached. *)

type counters = { hits : int; misses : int; built : int }

val counters : unit -> counters
(** Process-wide totals across every [t] (dispatch cache hits/misses and
    executors built), for mirroring into the [Obs.Metrics] registry. *)
