type t = {
  line_shift : int;
  index_mask : int;
  tags : int array;            (* -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~size_bytes ~line_bytes =
  if not (is_pow2 size_bytes && is_pow2 line_bytes && line_bytes <= size_bytes)
  then invalid_arg "Cache.create: sizes must be powers of two";
  let nlines = size_bytes / line_bytes in
  { line_shift = log2 line_bytes;
    index_mask = nlines - 1;
    tags = Array.make nlines (-1);
    hits = 0;
    misses = 0 }

(* [idx] is masked by [index_mask], so it is always within [tags]:
   the unsafe accesses keep the simulator's single hottest call free of
   bounds checks. *)
let access t addr =
  let line = addr lsr t.line_shift in
  let idx = line land t.index_mask in
  if Array.unsafe_get t.tags idx = line then (t.hits <- t.hits + 1; true)
  else begin
    Array.unsafe_set t.tags idx line;
    t.misses <- t.misses + 1;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0
