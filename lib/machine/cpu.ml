(* The executing simulator's front door. The machine state and its
   semantics live in {!State}; the fused block-superinstruction executor
   lives in {!Blocks}. This module re-exports the public types, keeps the
   per-instruction decoded loop ([run_decoded_unfused]) for trace/probe
   instrumentation, routes plain runs to the fused path, and retains the
   symbolic reference interpreter ([run_reference]) as the oracle. *)

open State

type config = State.config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

let default_config = State.default_config

type stats = State.stats = {
  insns : int;
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = State.outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error = State.error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
  | Bad_syscall of int64
  | Unknown_pal of int
  | Heap_exhausted
  | Insn_limit_reached

let pp_error = State.pp_error

type probe_event = {
  ev_pc : int;
  ev_insn : Isa.Insn.t;
  ev_cycles : int;
  ev_icache_miss : bool;
  ev_dcache_miss : bool;
}

module R = Isa.Reg
module I = Isa.Insn
module D = Decoded

(* --- the per-instruction decoded path ---

   The pre-superinstruction interpreter over {!Decoded}: one
   fetch/time/execute/writeback round per retired instruction. Kept as
   the instrumentation path — [trace] and [probe] hooks fire here with
   exact per-instruction attribution — and as a mid-fidelity rung for
   the differential tests ([run_reference] is still the root oracle). *)

let run_decoded_unfused ?(config = default_config) ?trace ?probe (d : D.t) =
  let image = d.D.image in
  let m = create_machine config image in
  boot m image;
  let kind = d.D.kind
  and ra_a = d.D.ra
  and rb_a = d.D.rb
  and rc_a = d.D.rc
  and imm_a = d.D.imm
  and uses_a = d.D.uses
  and defs_a = d.D.defs
  and lat_a = d.D.lat
  and pipe_a = d.D.pipe
  and flags_a = d.D.flags
  and target_a = d.D.target
  and insns_a = d.D.insns in
  let n = Array.length kind in
  let text_base = m.text_base in
  let ready = m.ready in
  let max_insns = config.max_insns in
  let dual_issue = config.dual_issue in
  let icache_miss_penalty = config.icache_miss_penalty in
  let dcache_miss_penalty = config.dcache_miss_penalty in
  let branch_penalty = config.branch_penalty in
  let pc = ref image.Linker.Image.entry in
  let last_issue = ref (-1) in
  let last_pc = ref min_int in
  let last_pipe = ref (-1) in            (* -1 = none *)
  let last_was_ctl = ref true in
  let finished = ref None in
  (try
     while Option.is_none !finished do
       if m.ninsns >= max_insns then raise (Fault Insn_limit_reached);
       let idx = (!pc - text_base) asr 2 in
       if idx < 0 || idx >= n then raise (Fault (Out_of_range_access !pc));
       (match trace with
       | Some f -> f ~pc:!pc (Array.unsafe_get insns_a idx)
       | None -> ());
       m.ninsns <- m.ninsns + 1;
       let fl = Array.unsafe_get flags_a idx in
       if fl land D.flag_nop <> 0 then m.nops <- m.nops + 1;
       let issue0 = !last_issue in
       let dmiss0 =
         match probe with Some _ -> Cache.misses m.dcache | None -> 0
       in
       (* --- timing --- *)
       let fetch_penalty =
         if Cache.access m.icache !pc then 0 else icache_miss_penalty
       in
       let operand_ready = max_ready ready (Array.unsafe_get uses_a idx) in
       let pipe = Array.unsafe_get pipe_a idx in
       let pairable =
         dual_issue && fetch_penalty = 0
         && !pc = !last_pc + 4
         && !last_pc land 7 = 0
         && (not !last_was_ctl)
         && !last_pipe >= 0 && !last_pipe <> pipe
         && operand_ready <= !last_issue
       in
       let issue =
         if pairable then !last_issue
         else max (!last_issue + 1) operand_ready + fetch_penalty
       in
       (* --- execute --- *)
       let next_pc = ref (!pc + 4) in
       let taken = ref false in
       let result_latency = ref (Array.unsafe_get lat_a idx) in
       let k = Array.unsafe_get kind idx in
       (if k >= D.k_op_base && k < D.k_syscall then begin
          (* binary operate: operator folded into the kind *)
          let a = rget m (Array.unsafe_get ra_a idx) in
          let op, b =
            if k < D.k_opi_base then
              (k - D.k_op_base, rget m (Array.unsafe_get rb_a idx))
            else (k - D.k_opi_base, Int64.of_int (Array.unsafe_get imm_a idx))
          in
          let v =
            match op with
            | 0 -> Int64.add a b
            | 1 -> Int64.sub a b
            | 2 -> Int64.mul a b
            | 3 -> bool64 (Int64.equal a b)
            | 4 -> bool64 (Int64.compare a b < 0)
            | 5 -> bool64 (Int64.compare a b <= 0)
            | 6 -> bool64 (Int64.unsigned_compare a b < 0)
            | 7 -> bool64 (Int64.unsigned_compare a b <= 0)
            | 8 -> Int64.logand a b
            | 9 -> Int64.logor a b
            | 10 -> Int64.logxor a b
            | 11 -> Int64.logor a (Int64.lognot b)
            | 12 -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
            | 13 ->
                Int64.shift_right_logical a
                  (Int64.to_int (Int64.logand b 63L))
            | _ -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
          in
          rset m (Array.unsafe_get rc_a idx) v
        end
        else if k = D.k_lda then
          rset m (Array.unsafe_get ra_a idx)
            (Int64.add
               (rget m (Array.unsafe_get rb_a idx))
               (Int64.of_int (Array.unsafe_get imm_a idx)))
        else if k = D.k_ldq then begin
          let addr =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx))
            + Array.unsafe_get imm_a idx
          in
          m.loads <- m.loads + 1;
          let hit = Cache.access m.dcache addr in
          if not hit then
            result_latency := !result_latency + dcache_miss_penalty;
          rset m (Array.unsafe_get ra_a idx) (read64 m addr)
        end
        else if k = D.k_stq then begin
          let addr =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx))
            + Array.unsafe_get imm_a idx
          in
          m.stores <- m.stores + 1;
          ignore (Cache.access m.dcache addr);
          write64 m addr (rget m (Array.unsafe_get ra_a idx))
        end
        else if k = D.k_bcond then begin
          let v = rget m (Array.unsafe_get ra_a idx) in
          let t =
            match Array.unsafe_get rc_a idx with
            | 0 -> Int64.equal v 0L
            | 1 -> not (Int64.equal v 0L)
            | 2 -> Int64.compare v 0L < 0
            | 3 -> Int64.compare v 0L <= 0
            | 4 -> Int64.compare v 0L >= 0
            | 5 -> Int64.compare v 0L > 0
            | 6 -> Int64.equal (Int64.logand v 1L) 0L
            | _ -> Int64.equal (Int64.logand v 1L) 1L
          in
          if t then begin
            next_pc := Array.unsafe_get target_a idx;
            taken := true
          end
        end
        else if k = D.k_br then begin
          rset m (Array.unsafe_get ra_a idx) (Int64.of_int (!pc + 4));
          next_pc := Array.unsafe_get target_a idx;
          taken := true
        end
        else if k = D.k_jump then begin
          let target =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx)) land lnot 3
          in
          rset m (Array.unsafe_get ra_a idx) (Int64.of_int (!pc + 4));
          next_pc := target;
          taken := true
        end
        else if k = D.k_syscall then finished := syscall m
        else raise (Fault (Unknown_pal (Array.unsafe_get imm_a idx))));
       (* --- writeback timing --- *)
       set_ready ready (Array.unsafe_get defs_a idx) (issue + !result_latency);
       last_pc := !pc;
       last_pipe := pipe;
       last_was_ctl :=
         (fl land (D.flag_branch lor D.flag_pal) <> 0 && !taken)
         || fl land D.flag_pal <> 0;
       last_issue := if !taken then issue + branch_penalty else issue;
       (match probe with
       | Some f ->
           f
             { ev_pc = !last_pc;
               ev_insn = Array.unsafe_get insns_a idx;
               ev_cycles = !last_issue - issue0;
               ev_icache_miss = fetch_penalty > 0;
               ev_dcache_miss = Cache.misses m.dcache > dmiss0 }
       | None -> ());
       pc := !next_pc
     done;
     Ok (outcome_of m ~last_issue:!last_issue ~exit_code:(Option.get !finished))
   with Fault e -> Error e)

(* --- dispatch between the fused and instrumentation paths --- *)

let fused_runs = Atomic.make 0
let fallback_runs = Atomic.make 0

let dispatch_counts () = (Atomic.get fused_runs, Atomic.get fallback_runs)

let run_decoded ?(config = default_config) ?trace ?probe ?blocks (d : D.t) =
  match (trace, probe) with
  | None, None ->
      Atomic.incr fused_runs;
      let b =
        match blocks with
        | Some b when Blocks.decoded b == d && Blocks.config b = config -> b
        | _ -> Blocks.create ~config d
      in
      Blocks.run b
  | _ ->
      (* instrumented: per-instruction hooks need the unfused loop *)
      Atomic.incr fallback_runs;
      run_decoded_unfused ~config ?trace ?probe d

let decode (image : Linker.Image.t) =
  match D.of_image image with
  | Ok d -> Ok d
  | Error (pc, _) -> Error (Undecodable pc)

let run ?config ?trace ?probe (image : Linker.Image.t) =
  match decode image with
  | Error e -> Error e
  | Ok d -> run_decoded ?config ?trace ?probe d

(* --- the reference interpreter ---

   The original symbolic-form interpreter, retained verbatim as the
   semantic oracle: it re-derives uses/defs/pipe/latency from [Isa.Insn]
   on every retired instruction. The differential tests require
   [run_decoded] to reproduce its stats, output and exit code exactly. *)

let operand m = function
  | I.Rb r -> rget m (R.to_int r)
  | I.Imm n -> Int64.of_int n

let eval_op m (op : I.binop) ra rb =
  let a = rget m (R.to_int ra) in
  let b = operand m rb in
  match op with
  | I.Addq -> Int64.add a b
  | I.Subq -> Int64.sub a b
  | I.Mulq -> Int64.mul a b
  | I.Cmpeq -> bool64 (Int64.equal a b)
  | I.Cmplt -> bool64 (Int64.compare a b < 0)
  | I.Cmple -> bool64 (Int64.compare a b <= 0)
  | I.Cmpult -> bool64 (Int64.unsigned_compare a b < 0)
  | I.Cmpule -> bool64 (Int64.unsigned_compare a b <= 0)
  | I.And_ -> Int64.logand a b
  | I.Bis -> Int64.logor a b
  | I.Xor -> Int64.logxor a b
  | I.Ornot -> Int64.logor a (Int64.lognot b)
  | I.Sll -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | I.Srl -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | I.Sra -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let cond_true (c : I.cond) v =
  match c with
  | I.Beq -> Int64.equal v 0L
  | I.Bne -> not (Int64.equal v 0L)
  | I.Blt -> Int64.compare v 0L < 0
  | I.Ble -> Int64.compare v 0L <= 0
  | I.Bge -> Int64.compare v 0L >= 0
  | I.Bgt -> Int64.compare v 0L > 0
  | I.Blbc -> Int64.equal (Int64.logand v 1L) 0L
  | I.Blbs -> Int64.equal (Int64.logand v 1L) 1L

let run_reference ?(config = default_config) ?trace ?probe
    (image : Linker.Image.t) =
  match Isa.Decode.of_bytes_loc image.Linker.Image.text with
  | Error (off, _) ->
      Error (Undecodable (image.Linker.Image.text_base + off))
  | Ok code ->
    let m = create_machine config image in
    boot m image;
    let pc = ref image.Linker.Image.entry in
    let last_issue = ref (-1) in
    let last_pc = ref min_int in
    let last_pipe = ref None in
    let last_was_ctl = ref true in
    let finished = ref None in
    (try
       while Option.is_none !finished do
         if m.ninsns >= config.max_insns then
           raise (Fault Insn_limit_reached);
         let idx = (!pc - m.text_base) asr 2 in
         if idx < 0 || idx >= Array.length code then
           raise (Fault (Out_of_range_access !pc));
         let insn = code.(idx) in
         (match trace with Some f -> f ~pc:!pc insn | None -> ());
         m.ninsns <- m.ninsns + 1;
         if I.is_nop insn then m.nops <- m.nops + 1;
         let issue0 = !last_issue in
         let dmiss0 =
           match probe with Some _ -> Cache.misses m.dcache | None -> 0
         in
         (* --- timing --- *)
         let fetch_penalty =
           if Cache.access m.icache !pc then 0 else config.icache_miss_penalty
         in
         let operand_ready =
           List.fold_left (fun acc r -> max acc m.ready.(R.to_int r)) 0
             (I.uses insn)
         in
         let pipe = Isa.Latency.pipe_of insn in
         let pairable =
           config.dual_issue && fetch_penalty = 0
           && !pc = !last_pc + 4
           && !last_pc land 7 = 0
           && (not !last_was_ctl)
           && (match !last_pipe with Some p -> p <> pipe | None -> false)
           && operand_ready <= !last_issue
         in
         let issue =
           if pairable then !last_issue
           else max (!last_issue + 1) operand_ready + fetch_penalty
         in
         (* --- execute --- *)
         let next_pc = ref (!pc + 4) in
         let taken = ref false in
         let result_latency = ref (Isa.Latency.latency insn) in
         (match insn with
         | I.Lda { ra; rb; disp } ->
             rset m (R.to_int ra)
               (Int64.add (rget m (R.to_int rb)) (Int64.of_int disp))
         | I.Ldah { ra; rb; disp } ->
             rset m (R.to_int ra)
               (Int64.add (rget m (R.to_int rb)) (Int64.of_int (disp * 65536)))
         | I.Ldq { ra; rb; disp } ->
             let addr = Int64.to_int (rget m (R.to_int rb)) + disp in
             m.loads <- m.loads + 1;
             let hit = Cache.access m.dcache addr in
             if not hit then
               result_latency := !result_latency + config.dcache_miss_penalty;
             rset m (R.to_int ra) (read64 m addr)
         | I.Stq { ra; rb; disp } ->
             let addr = Int64.to_int (rget m (R.to_int rb)) + disp in
             m.stores <- m.stores + 1;
             ignore (Cache.access m.dcache addr);
             write64 m addr (rget m (R.to_int ra))
         | I.Br { ra; disp } | I.Bsr { ra; disp } ->
             rset m (R.to_int ra) (Int64.of_int (!pc + 4));
             next_pc := !pc + 4 + (4 * disp);
             taken := true
         | I.Bcond { cond; ra; disp } ->
             if cond_true cond (rget m (R.to_int ra)) then begin
               next_pc := !pc + 4 + (4 * disp);
               taken := true
             end
         | I.Jump { ra; rb; _ } ->
             let target = Int64.to_int (rget m (R.to_int rb)) land lnot 3 in
             rset m (R.to_int ra) (Int64.of_int (!pc + 4));
             next_pc := target;
             taken := true
         | I.Op { op; ra; rb; rc } -> rset m (R.to_int rc) (eval_op m op ra rb)
         | I.Call_pal 0x83 -> finished := syscall m
         | I.Call_pal code -> raise (Fault (Unknown_pal code)));
         (* --- writeback timing --- *)
         List.iter
           (fun r -> m.ready.(R.to_int r) <- issue + !result_latency)
           (I.defs insn);
         last_pc := !pc;
         last_pipe := Some pipe;
         let is_ctl =
           I.is_branch insn || (match insn with I.Call_pal _ -> true | _ -> false)
         in
         last_was_ctl := is_ctl && !taken
           || (match insn with I.Call_pal _ -> true | _ -> false);
         last_issue :=
           if !taken then issue + config.branch_penalty else issue;
         (match probe with
         | Some f ->
             f
               { ev_pc = !last_pc;
                 ev_insn = insn;
                 ev_cycles = !last_issue - issue0;
                 ev_icache_miss = fetch_penalty > 0;
                 ev_dcache_miss = Cache.misses m.dcache > dmiss0 }
         | None -> ());
         pc := !next_pc
       done;
       Ok
         (outcome_of m ~last_issue:!last_issue
            ~exit_code:(Option.get !finished))
     with Fault e -> Error e)
