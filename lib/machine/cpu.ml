type config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

let default_config =
  { icache_bytes = 8192;
    dcache_bytes = 8192;
    line_bytes = 32;
    icache_miss_penalty = 8;
    dcache_miss_penalty = 10;
    branch_penalty = 1;
    dual_issue = true;
    heap_max = 1 lsl 24;
    max_insns = 400_000_000 }

type stats = {
  insns : int;
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
  | Bad_syscall of int64
  | Unknown_pal of int
  | Heap_exhausted
  | Insn_limit_reached

let pp_error ppf = function
  | Unaligned_access a -> Format.fprintf ppf "unaligned access at %#x" a
  | Out_of_range_access a -> Format.fprintf ppf "access out of range at %#x" a
  | Undecodable a -> Format.fprintf ppf "undecodable instruction at %#x" a
  | Bad_syscall v -> Format.fprintf ppf "unknown system call %Ld" v
  | Unknown_pal c -> Format.fprintf ppf "unknown PALcode function %#x" c
  | Heap_exhausted -> Format.fprintf ppf "heap exhausted"
  | Insn_limit_reached -> Format.fprintf ppf "instruction limit reached"

type probe_event = {
  ev_pc : int;
  ev_insn : Isa.Insn.t;
  ev_cycles : int;
  ev_icache_miss : bool;
  ev_dcache_miss : bool;
}

exception Fault of error

module R = Isa.Reg
module I = Isa.Insn
module D = Decoded

type machine = {
  cfg : config;
  text_base : int;
  data_base : int;
  data : Bytes.t;              (* data region + heap *)
  stack_base : int;
  stack : Bytes.t;
  regs : int64 array;
  mutable brk : int;
  heap_limit : int;
  out : Buffer.t;
  icache : Cache.t;
  dcache : Cache.t;
  ready : int array;           (* cycle at which each register is available *)
  mutable ninsns : int;
  mutable loads : int;
  mutable stores : int;
  mutable nops : int;
}

let create_machine config (image : Linker.Image.t) =
  let data_len =
    image.Linker.Image.heap_base - image.Linker.Image.data_base
    + config.heap_max
  in
  let data = Bytes.make data_len '\000' in
  Bytes.blit image.Linker.Image.data 0 data 0
    (Bytes.length image.Linker.Image.data);
  { cfg = config;
    text_base = image.Linker.Image.text_base;
    data_base = image.Linker.Image.data_base;
    data;
    stack_base = Linker.Layout.stack_top - Linker.Layout.stack_bytes;
    stack = Bytes.make Linker.Layout.stack_bytes '\000';
    regs = Array.make 32 0L;
    brk = image.Linker.Image.heap_base;
    heap_limit = image.Linker.Image.heap_base + config.heap_max - 16;
    out = Buffer.create 256;
    icache = Cache.create ~size_bytes:config.icache_bytes
               ~line_bytes:config.line_bytes;
    dcache = Cache.create ~size_bytes:config.dcache_bytes
               ~line_bytes:config.line_bytes;
    ready = Array.make 32 0;
    ninsns = 0;
    loads = 0;
    stores = 0;
    nops = 0 }

(* Writes to register 31 are discarded, so [regs.(31)] stays 0 forever and
   reads need no special case. *)
let rget m r = m.regs.(r)
let rset m r v = if r <> 31 then m.regs.(r) <- v

let mem m addr =
  (* returns (bytes, offset) *)
  if addr >= m.data_base && addr < m.data_base + Bytes.length m.data then
    (m.data, addr - m.data_base)
  else if addr >= m.stack_base && addr < m.stack_base + Bytes.length m.stack
  then (m.stack, addr - m.stack_base)
  else raise (Fault (Out_of_range_access addr))

let read64 m addr =
  if addr land 7 <> 0 then raise (Fault (Unaligned_access addr));
  let b, off = mem m addr in
  Bytes.get_int64_le b off

let write64 m addr v =
  if addr land 7 <> 0 then raise (Fault (Unaligned_access addr));
  let b, off = mem m addr in
  Bytes.set_int64_le b off v

let bool64 c = if c then 1L else 0L

(* System calls; returns [Some code] when the program exits. *)
let syscall m =
  let v0 = rget m (R.to_int R.v0) in
  let a0 = rget m (R.to_int R.a0) in
  match v0 with
  | 0L -> Some a0
  | 1L ->
      Buffer.add_string m.out (Int64.to_string a0);
      None
  | 2L ->
      Buffer.add_char m.out (Char.chr (Int64.to_int a0 land 0xff));
      None
  | 3L ->
      let rec go addr =
        let q = read64 m (Int64.to_int addr) in
        if not (Int64.equal q 0L) then begin
          Buffer.add_char m.out (Char.chr (Int64.to_int q land 0xff));
          go (Int64.add addr 8L)
        end
      in
      go a0;
      None
  | 4L ->
      let n = (Int64.to_int a0 + 15) land lnot 15 in
      if m.brk + n > m.heap_limit then raise (Fault Heap_exhausted);
      rset m (R.to_int R.v0) (Int64.of_int m.brk);
      m.brk <- m.brk + n;
      None
  | v -> raise (Fault (Bad_syscall v))

let boot m (image : Linker.Image.t) =
  rset m (R.to_int R.sp) (Int64.of_int (Linker.Layout.stack_top - 64));
  rset m (R.to_int R.pv) (Int64.of_int image.Linker.Image.entry)

let outcome_of m ~last_issue ~exit_code =
  { exit_code;
    output = Buffer.contents m.out;
    stats =
      { insns = m.ninsns;
        cycles = last_issue + 1;
        loads = m.loads;
        stores = m.stores;
        icache_misses = Cache.misses m.icache;
        dcache_misses = Cache.misses m.dcache;
        nops_executed = m.nops } }

(* --- bitmask iteration helpers (fast path) --- *)

(* number-of-trailing-zeros of an isolated bit below 2^32, by de Bruijn
   multiplication — the stdlib has no ctz intrinsic *)
let ntz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let[@inline] ntz b = Array.unsafe_get ntz_table ((b * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* max over [ready.(i)] for every bit [i] of [mask]; 0 on the empty mask *)
let[@inline] max_ready ready mask =
  if mask = 0 then 0
  else begin
    let acc = ref 0 and m = ref mask in
    while !m <> 0 do
      let b = !m land (- !m) in
      let r = Array.unsafe_get ready (ntz b) in
      if r > !acc then acc := r;
      m := !m land (!m - 1)
    done;
    !acc
  end

let[@inline] set_ready ready mask t =
  let m = ref mask in
  while !m <> 0 do
    let b = !m land (- !m) in
    Array.unsafe_set ready (ntz b) t;
    m := !m land (!m - 1)
  done

(* --- the pre-decoded fast path --- *)

let run_decoded ?(config = default_config) ?trace ?probe (d : D.t) =
  let image = d.D.image in
  let m = create_machine config image in
  boot m image;
  let kind = d.D.kind
  and ra_a = d.D.ra
  and rb_a = d.D.rb
  and rc_a = d.D.rc
  and imm_a = d.D.imm
  and uses_a = d.D.uses
  and defs_a = d.D.defs
  and lat_a = d.D.lat
  and pipe_a = d.D.pipe
  and flags_a = d.D.flags
  and target_a = d.D.target
  and insns_a = d.D.insns in
  let n = Array.length kind in
  let text_base = m.text_base in
  let ready = m.ready in
  let max_insns = config.max_insns in
  let dual_issue = config.dual_issue in
  let icache_miss_penalty = config.icache_miss_penalty in
  let dcache_miss_penalty = config.dcache_miss_penalty in
  let branch_penalty = config.branch_penalty in
  let pc = ref image.Linker.Image.entry in
  let last_issue = ref (-1) in
  let last_pc = ref min_int in
  let last_pipe = ref (-1) in            (* -1 = none *)
  let last_was_ctl = ref true in
  let finished = ref None in
  (try
     while Option.is_none !finished do
       if m.ninsns >= max_insns then raise (Fault Insn_limit_reached);
       let idx = (!pc - text_base) asr 2 in
       if idx < 0 || idx >= n then raise (Fault (Out_of_range_access !pc));
       (match trace with
       | Some f -> f ~pc:!pc (Array.unsafe_get insns_a idx)
       | None -> ());
       m.ninsns <- m.ninsns + 1;
       let fl = Array.unsafe_get flags_a idx in
       if fl land D.flag_nop <> 0 then m.nops <- m.nops + 1;
       let issue0 = !last_issue in
       let dmiss0 =
         match probe with Some _ -> Cache.misses m.dcache | None -> 0
       in
       (* --- timing --- *)
       let fetch_penalty =
         if Cache.access m.icache !pc then 0 else icache_miss_penalty
       in
       let operand_ready = max_ready ready (Array.unsafe_get uses_a idx) in
       let pipe = Array.unsafe_get pipe_a idx in
       let pairable =
         dual_issue && fetch_penalty = 0
         && !pc = !last_pc + 4
         && !last_pc land 7 = 0
         && (not !last_was_ctl)
         && !last_pipe >= 0 && !last_pipe <> pipe
         && operand_ready <= !last_issue
       in
       let issue =
         if pairable then !last_issue
         else max (!last_issue + 1) operand_ready + fetch_penalty
       in
       (* --- execute --- *)
       let next_pc = ref (!pc + 4) in
       let taken = ref false in
       let result_latency = ref (Array.unsafe_get lat_a idx) in
       let k = Array.unsafe_get kind idx in
       (if k >= D.k_op_base && k < D.k_syscall then begin
          (* binary operate: operator folded into the kind *)
          let a = rget m (Array.unsafe_get ra_a idx) in
          let op, b =
            if k < D.k_opi_base then
              (k - D.k_op_base, rget m (Array.unsafe_get rb_a idx))
            else (k - D.k_opi_base, Int64.of_int (Array.unsafe_get imm_a idx))
          in
          let v =
            match op with
            | 0 -> Int64.add a b
            | 1 -> Int64.sub a b
            | 2 -> Int64.mul a b
            | 3 -> bool64 (Int64.equal a b)
            | 4 -> bool64 (Int64.compare a b < 0)
            | 5 -> bool64 (Int64.compare a b <= 0)
            | 6 -> bool64 (Int64.unsigned_compare a b < 0)
            | 7 -> bool64 (Int64.unsigned_compare a b <= 0)
            | 8 -> Int64.logand a b
            | 9 -> Int64.logor a b
            | 10 -> Int64.logxor a b
            | 11 -> Int64.logor a (Int64.lognot b)
            | 12 -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
            | 13 ->
                Int64.shift_right_logical a
                  (Int64.to_int (Int64.logand b 63L))
            | _ -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
          in
          rset m (Array.unsafe_get rc_a idx) v
        end
        else if k = D.k_lda then
          rset m (Array.unsafe_get ra_a idx)
            (Int64.add
               (rget m (Array.unsafe_get rb_a idx))
               (Int64.of_int (Array.unsafe_get imm_a idx)))
        else if k = D.k_ldq then begin
          let addr =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx))
            + Array.unsafe_get imm_a idx
          in
          m.loads <- m.loads + 1;
          let hit = Cache.access m.dcache addr in
          if not hit then
            result_latency := !result_latency + dcache_miss_penalty;
          rset m (Array.unsafe_get ra_a idx) (read64 m addr)
        end
        else if k = D.k_stq then begin
          let addr =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx))
            + Array.unsafe_get imm_a idx
          in
          m.stores <- m.stores + 1;
          ignore (Cache.access m.dcache addr);
          write64 m addr (rget m (Array.unsafe_get ra_a idx))
        end
        else if k = D.k_bcond then begin
          let v = rget m (Array.unsafe_get ra_a idx) in
          let t =
            match Array.unsafe_get rc_a idx with
            | 0 -> Int64.equal v 0L
            | 1 -> not (Int64.equal v 0L)
            | 2 -> Int64.compare v 0L < 0
            | 3 -> Int64.compare v 0L <= 0
            | 4 -> Int64.compare v 0L >= 0
            | 5 -> Int64.compare v 0L > 0
            | 6 -> Int64.equal (Int64.logand v 1L) 0L
            | _ -> Int64.equal (Int64.logand v 1L) 1L
          in
          if t then begin
            next_pc := Array.unsafe_get target_a idx;
            taken := true
          end
        end
        else if k = D.k_br then begin
          rset m (Array.unsafe_get ra_a idx) (Int64.of_int (!pc + 4));
          next_pc := Array.unsafe_get target_a idx;
          taken := true
        end
        else if k = D.k_jump then begin
          let target =
            Int64.to_int (rget m (Array.unsafe_get rb_a idx)) land lnot 3
          in
          rset m (Array.unsafe_get ra_a idx) (Int64.of_int (!pc + 4));
          next_pc := target;
          taken := true
        end
        else if k = D.k_syscall then finished := syscall m
        else raise (Fault (Unknown_pal (Array.unsafe_get imm_a idx))));
       (* --- writeback timing --- *)
       set_ready ready (Array.unsafe_get defs_a idx) (issue + !result_latency);
       last_pc := !pc;
       last_pipe := pipe;
       last_was_ctl :=
         (fl land (D.flag_branch lor D.flag_pal) <> 0 && !taken)
         || fl land D.flag_pal <> 0;
       last_issue := if !taken then issue + branch_penalty else issue;
       (match probe with
       | Some f ->
           f
             { ev_pc = !last_pc;
               ev_insn = Array.unsafe_get insns_a idx;
               ev_cycles = !last_issue - issue0;
               ev_icache_miss = fetch_penalty > 0;
               ev_dcache_miss = Cache.misses m.dcache > dmiss0 }
       | None -> ());
       pc := !next_pc
     done;
     Ok (outcome_of m ~last_issue:!last_issue ~exit_code:(Option.get !finished))
   with Fault e -> Error e)

let decode (image : Linker.Image.t) =
  match D.of_image image with
  | Ok d -> Ok d
  | Error (pc, _) -> Error (Undecodable pc)

let run ?config ?trace ?probe (image : Linker.Image.t) =
  match decode image with
  | Error e -> Error e
  | Ok d -> run_decoded ?config ?trace ?probe d

(* --- the reference interpreter ---

   The original symbolic-form interpreter, retained verbatim as the
   semantic oracle: it re-derives uses/defs/pipe/latency from [Isa.Insn]
   on every retired instruction. The differential tests require
   [run_decoded] to reproduce its stats, output and exit code exactly. *)

let operand m = function
  | I.Rb r -> rget m (R.to_int r)
  | I.Imm n -> Int64.of_int n

let eval_op m (op : I.binop) ra rb =
  let a = rget m (R.to_int ra) in
  let b = operand m rb in
  match op with
  | I.Addq -> Int64.add a b
  | I.Subq -> Int64.sub a b
  | I.Mulq -> Int64.mul a b
  | I.Cmpeq -> bool64 (Int64.equal a b)
  | I.Cmplt -> bool64 (Int64.compare a b < 0)
  | I.Cmple -> bool64 (Int64.compare a b <= 0)
  | I.Cmpult -> bool64 (Int64.unsigned_compare a b < 0)
  | I.Cmpule -> bool64 (Int64.unsigned_compare a b <= 0)
  | I.And_ -> Int64.logand a b
  | I.Bis -> Int64.logor a b
  | I.Xor -> Int64.logxor a b
  | I.Ornot -> Int64.logor a (Int64.lognot b)
  | I.Sll -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | I.Srl -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | I.Sra -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let cond_true (c : I.cond) v =
  match c with
  | I.Beq -> Int64.equal v 0L
  | I.Bne -> not (Int64.equal v 0L)
  | I.Blt -> Int64.compare v 0L < 0
  | I.Ble -> Int64.compare v 0L <= 0
  | I.Bge -> Int64.compare v 0L >= 0
  | I.Bgt -> Int64.compare v 0L > 0
  | I.Blbc -> Int64.equal (Int64.logand v 1L) 0L
  | I.Blbs -> Int64.equal (Int64.logand v 1L) 1L

let run_reference ?(config = default_config) ?trace ?probe
    (image : Linker.Image.t) =
  match Isa.Decode.of_bytes_loc image.Linker.Image.text with
  | Error (off, _) ->
      Error (Undecodable (image.Linker.Image.text_base + off))
  | Ok code ->
    let m = create_machine config image in
    boot m image;
    let pc = ref image.Linker.Image.entry in
    let last_issue = ref (-1) in
    let last_pc = ref min_int in
    let last_pipe = ref None in
    let last_was_ctl = ref true in
    let finished = ref None in
    (try
       while Option.is_none !finished do
         if m.ninsns >= config.max_insns then
           raise (Fault Insn_limit_reached);
         let idx = (!pc - m.text_base) asr 2 in
         if idx < 0 || idx >= Array.length code then
           raise (Fault (Out_of_range_access !pc));
         let insn = code.(idx) in
         (match trace with Some f -> f ~pc:!pc insn | None -> ());
         m.ninsns <- m.ninsns + 1;
         if I.is_nop insn then m.nops <- m.nops + 1;
         let issue0 = !last_issue in
         let dmiss0 =
           match probe with Some _ -> Cache.misses m.dcache | None -> 0
         in
         (* --- timing --- *)
         let fetch_penalty =
           if Cache.access m.icache !pc then 0 else config.icache_miss_penalty
         in
         let operand_ready =
           List.fold_left (fun acc r -> max acc m.ready.(R.to_int r)) 0
             (I.uses insn)
         in
         let pipe = Isa.Latency.pipe_of insn in
         let pairable =
           config.dual_issue && fetch_penalty = 0
           && !pc = !last_pc + 4
           && !last_pc land 7 = 0
           && (not !last_was_ctl)
           && (match !last_pipe with Some p -> p <> pipe | None -> false)
           && operand_ready <= !last_issue
         in
         let issue =
           if pairable then !last_issue
           else max (!last_issue + 1) operand_ready + fetch_penalty
         in
         (* --- execute --- *)
         let next_pc = ref (!pc + 4) in
         let taken = ref false in
         let result_latency = ref (Isa.Latency.latency insn) in
         (match insn with
         | I.Lda { ra; rb; disp } ->
             rset m (R.to_int ra)
               (Int64.add (rget m (R.to_int rb)) (Int64.of_int disp))
         | I.Ldah { ra; rb; disp } ->
             rset m (R.to_int ra)
               (Int64.add (rget m (R.to_int rb)) (Int64.of_int (disp * 65536)))
         | I.Ldq { ra; rb; disp } ->
             let addr = Int64.to_int (rget m (R.to_int rb)) + disp in
             m.loads <- m.loads + 1;
             let hit = Cache.access m.dcache addr in
             if not hit then
               result_latency := !result_latency + config.dcache_miss_penalty;
             rset m (R.to_int ra) (read64 m addr)
         | I.Stq { ra; rb; disp } ->
             let addr = Int64.to_int (rget m (R.to_int rb)) + disp in
             m.stores <- m.stores + 1;
             ignore (Cache.access m.dcache addr);
             write64 m addr (rget m (R.to_int ra))
         | I.Br { ra; disp } | I.Bsr { ra; disp } ->
             rset m (R.to_int ra) (Int64.of_int (!pc + 4));
             next_pc := !pc + 4 + (4 * disp);
             taken := true
         | I.Bcond { cond; ra; disp } ->
             if cond_true cond (rget m (R.to_int ra)) then begin
               next_pc := !pc + 4 + (4 * disp);
               taken := true
             end
         | I.Jump { ra; rb; _ } ->
             let target = Int64.to_int (rget m (R.to_int rb)) land lnot 3 in
             rset m (R.to_int ra) (Int64.of_int (!pc + 4));
             next_pc := target;
             taken := true
         | I.Op { op; ra; rb; rc } -> rset m (R.to_int rc) (eval_op m op ra rb)
         | I.Call_pal 0x83 -> finished := syscall m
         | I.Call_pal code -> raise (Fault (Unknown_pal code)));
         (* --- writeback timing --- *)
         List.iter
           (fun r -> m.ready.(R.to_int r) <- issue + !result_latency)
           (I.defs insn);
         last_pc := !pc;
         last_pipe := Some pipe;
         let is_ctl =
           I.is_branch insn || (match insn with I.Call_pal _ -> true | _ -> false)
         in
         last_was_ctl := is_ctl && !taken
           || (match insn with I.Call_pal _ -> true | _ -> false);
         last_issue :=
           if !taken then issue + config.branch_penalty else issue;
         (match probe with
         | Some f ->
             f
               { ev_pc = !last_pc;
                 ev_insn = insn;
                 ev_cycles = !last_issue - issue0;
                 ev_icache_miss = fetch_penalty > 0;
                 ev_dcache_miss = Cache.misses m.dcache > dmiss0 }
         | None -> ());
         pc := !next_pc
       done;
       Ok
         (outcome_of m ~last_issue:!last_issue
            ~exit_code:(Option.get !finished))
     with Fault e -> Error e)
