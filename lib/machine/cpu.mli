(** The executing simulator: a first-order dual-issue in-order model of the
    21064-class implementation the paper measured on (DECstation 3000/400).

    Timing model:
    - up to two instructions issue per cycle when they sit in the same
      aligned quadword, go to different pipes and have no dependence
      (which is why the optimizer's quadword alignment of branch targets
      matters);
    - loads have a 3-cycle latency on a D-cache hit plus a miss penalty;
    - taken branches cost a fetch bubble;
    - 8KB direct-mapped split I/D caches.

    System calls go through [call_pal 0x83] with the code in [v0]:
    0 exit, 1 put integer, 2 put character, 3 put quad-string, 4 sbrk.

    Three interpreters implement the model, fastest first:
    - the fused superinstruction path ({!Blocks}, reached through
      {!run_decoded} when no [trace]/[probe] hook is given): basic blocks
      of the {!Decoded} form compile once into per-block executor arrays
      with dispatch, pairing preconditions and cache-line crossings
      resolved at fuse time;
    - {!run_decoded_unfused}, the per-instruction loop over {!Decoded} —
      the instrumentation path ([trace]/[probe] fire here);
    - {!run_reference}, the original symbolic-form interpreter, kept as
      the semantic oracle for differential testing.

    All three produce identical outcomes (stats, output, exit code,
    faults — including fault PCs) on every image; the test suite and the
    fuzzer enforce this. *)

type config = State.config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

val default_config : config

type stats = State.stats = {
  insns : int;              (** instructions executed *)
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = State.outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error = State.error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
      (** carries the PC of the first undecodable instruction word *)
  | Bad_syscall of int64
      (** a [call_pal 0x83] with an unknown code in [v0] *)
  | Unknown_pal of int
      (** a [call_pal] other than the 0x83 system-call gate *)
  | Heap_exhausted
  | Insn_limit_reached

val pp_error : Format.formatter -> error -> unit

type probe_event = {
  ev_pc : int;
  ev_insn : Isa.Insn.t;
  ev_cycles : int;
      (** cycles this instruction added to the critical path: issue-slot
          advance plus any taken-branch penalty. Summing [ev_cycles] over a
          run reproduces {!stats.cycles} exactly. *)
  ev_icache_miss : bool;
  ev_dcache_miss : bool;
}

val decode : Linker.Image.t -> (Decoded.t, error) result
(** Pre-decode an image for {!run_decoded}. [Error (Undecodable pc)]
    carries the PC of the offending word. *)

val run_decoded :
  ?config:config -> ?trace:(pc:int -> Isa.Insn.t -> unit) ->
  ?probe:(probe_event -> unit) -> ?blocks:Blocks.t -> Decoded.t ->
  (outcome, error) result
(** Boot and run a pre-decoded image ([pc] and [pv] at the entry point,
    [sp] near the stack top) until the exit system call.

    With neither [trace] nor [probe], execution goes through the fused
    block-superinstruction path: pass [blocks] (from {!Blocks.create} on
    the same decoded image and config) to reuse fused executors across
    runs — the big win for repeated simulation; without it a transient
    executor cache is built for the run. When a [trace] or [probe] hook
    is present the call transparently falls back to
    {!run_decoded_unfused} so per-instruction attribution stays exact.
    A [blocks] whose decoded image or config does not match is ignored
    (a fresh cache is used) rather than trusted. *)

val run_decoded_unfused :
  ?config:config -> ?trace:(pc:int -> Isa.Insn.t -> unit) ->
  ?probe:(probe_event -> unit) -> Decoded.t ->
  (outcome, error) result
(** The per-instruction interpreter over {!Decoded}: no block fusion,
    no per-instruction allocation. The instrumentation path behind
    [trace]/[probe], exposed directly for benchmarking the fused path's
    speedup and for differential tests. *)

val dispatch_counts : unit -> int * int
(** [(fused, fallback)] — process-wide counts of {!run_decoded} calls
    that took the fused path vs fell back to the unfused loop for
    instrumentation. Mirrored into [Obs.Metrics] by [Reports.Measure]. *)

val run :
  ?config:config -> ?trace:(pc:int -> Isa.Insn.t -> unit) ->
  ?probe:(probe_event -> unit) -> Linker.Image.t ->
  (outcome, error) result
(** [decode] then {!run_decoded}. [trace] is invoked before each
    instruction executes — the hook behind execution profiling and
    debugging tools. [probe] is invoked after each instruction retires with
    its timing attribution; when absent (the default) the timing loop is
    unchanged. *)

val run_reference :
  ?config:config -> ?trace:(pc:int -> Isa.Insn.t -> unit) ->
  ?probe:(probe_event -> unit) -> Linker.Image.t ->
  (outcome, error) result
(** The retained symbolic-form interpreter (re-derives uses/defs/pipe/
    latency from {!Isa.Insn} per retired instruction). Semantically
    identical to {!run}; exists as the oracle for differential tests and
    for measuring the fast paths' speedup. *)
