(* Pre-decoded executable images: the simulator's fast-path representation.

   Decoding an image's text once into flat integer arrays removes every
   per-instruction allocation the interpreter used to pay — no [Reg.t list]
   from [Insn.uses]/[defs], no variant dispatch through [Latency.pipe_of],
   no re-decode per simulation. All per-micro-op facts the timing loop
   needs are packed into parallel unboxed [int array]s indexed by the
   instruction's word index in the text segment. *)

module I = Isa.Insn

(* Kind encoding: a single flat integer the execute loop can jump-table on.
   Binary operates fold the operator and the operand form into the kind
   itself (register form at [k_op_base + op], literal form at
   [k_opi_base + op]); [Ldah] pre-scales its displacement so it shares the
   [Lda] kind. *)

let k_lda = 0 (* ra <- rb + imm   (Lda, and Ldah with imm pre-scaled) *)
let k_ldq = 1
let k_stq = 2
let k_br = 3 (* Br and Bsr: ra <- pc+4, goto precomputed target *)
let k_jump = 4 (* register-indirect; target from rb at run time *)
let k_bcond = 5 (* condition index in rc, precomputed target *)
let k_op_base = 6 (* 6..20: binop with register operand *)
let k_opi_base = 21 (* 21..35: binop with 8-bit literal in imm *)
let k_syscall = 36 (* Call_pal 0x83 *)
let k_pal = 37 (* any other Call_pal; code in imm *)

let binop_index = function
  | I.Addq -> 0
  | I.Subq -> 1
  | I.Mulq -> 2
  | I.Cmpeq -> 3
  | I.Cmplt -> 4
  | I.Cmple -> 5
  | I.Cmpult -> 6
  | I.Cmpule -> 7
  | I.And_ -> 8
  | I.Bis -> 9
  | I.Xor -> 10
  | I.Ornot -> 11
  | I.Sll -> 12
  | I.Srl -> 13
  | I.Sra -> 14

let cond_index = function
  | I.Beq -> 0
  | I.Bne -> 1
  | I.Blt -> 2
  | I.Ble -> 3
  | I.Bge -> 4
  | I.Bgt -> 5
  | I.Blbc -> 6
  | I.Blbs -> 7

(* flag bits *)
let flag_nop = 1
let flag_branch = 2
let flag_pal = 4

type t = {
  image : Linker.Image.t;
  insns : I.t array;  (** the symbolic form, for the trace/probe hooks *)
  kind : int array;
  ra : int array;  (** destination / value register *)
  rb : int array;  (** base / source register *)
  rc : int array;  (** operate destination, or condition index *)
  imm : int array;  (** displacement (Ldah pre-scaled), literal, or PAL code *)
  uses : int array;  (** register read-set bitmask *)
  defs : int array;  (** register write-set bitmask *)
  lat : int array;  (** result latency, cycles *)
  pipe : int array;  (** 0 = E, 1 = A *)
  flags : int array;
  target : int array;  (** absolute PC of a precomputed branch target *)
}

let image t = t.image
let length t = Array.length t.insns

let decode_insn ~pc insn =
  let r = Isa.Reg.to_int in
  let kind, ra, rb, rc, imm, target =
    match insn with
    | I.Lda { ra; rb; disp } -> (k_lda, r ra, r rb, 0, disp, 0)
    | I.Ldah { ra; rb; disp } -> (k_lda, r ra, r rb, 0, disp * 65536, 0)
    | I.Ldq { ra; rb; disp } -> (k_ldq, r ra, r rb, 0, disp, 0)
    | I.Stq { ra; rb; disp } -> (k_stq, r ra, r rb, 0, disp, 0)
    | I.Br { ra; disp } | I.Bsr { ra; disp } ->
        (k_br, r ra, 0, 0, disp, pc + 4 + (4 * disp))
    | I.Bcond { cond; ra; disp } ->
        (k_bcond, r ra, 0, cond_index cond, disp, pc + 4 + (4 * disp))
    | I.Jump { ra; rb; _ } -> (k_jump, r ra, r rb, 0, 0, 0)
    | I.Op { op; ra; rb = I.Rb rb; rc } ->
        (k_op_base + binop_index op, r ra, r rb, r rc, 0, 0)
    | I.Op { op; ra; rb = I.Imm n; rc } ->
        (k_opi_base + binop_index op, r ra, 0, r rc, n, 0)
    | I.Call_pal 0x83 -> (k_syscall, 0, 0, 0, 0x83, 0)
    | I.Call_pal code -> (k_pal, 0, 0, 0, code, 0)
  in
  let flags =
    (if I.is_nop insn then flag_nop else 0)
    lor (if I.is_branch insn then flag_branch else 0)
    lor (match insn with I.Call_pal _ -> flag_pal | _ -> 0)
  in
  (kind, ra, rb, rc, imm, target, flags)

let of_insns (image : Linker.Image.t) insns =
  let n = Array.length insns in
  let kind = Array.make n 0
  and ra = Array.make n 0
  and rb = Array.make n 0
  and rc = Array.make n 0
  and imm = Array.make n 0
  and uses = Array.make n 0
  and defs = Array.make n 0
  and lat = Array.make n 0
  and pipe = Array.make n 0
  and flags = Array.make n 0
  and target = Array.make n 0 in
  let base = image.Linker.Image.text_base in
  for i = 0 to n - 1 do
    let insn = insns.(i) in
    let k, a, b, c, im, tgt, fl = decode_insn ~pc:(base + (4 * i)) insn in
    kind.(i) <- k;
    ra.(i) <- a;
    rb.(i) <- b;
    rc.(i) <- c;
    imm.(i) <- im;
    target.(i) <- tgt;
    flags.(i) <- fl;
    uses.(i) <- I.uses_mask insn;
    defs.(i) <- I.defs_mask insn;
    lat.(i) <- Isa.Latency.latency insn;
    pipe.(i) <- (match Isa.Latency.pipe_of insn with Isa.Latency.E -> 0 | Isa.Latency.A -> 1)
  done;
  { image; insns; kind; ra; rb; rc; imm; uses; defs; lat; pipe; flags; target }

let of_image (image : Linker.Image.t) =
  match Isa.Decode.of_bytes_loc image.Linker.Image.text with
  | Ok insns -> Ok (of_insns image insns)
  | Error (off, e) -> Error (image.Linker.Image.text_base + off, e)
