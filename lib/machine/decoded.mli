(** Pre-decoded executable images: the simulator's fast-path
    representation.

    An image's text segment is decoded once into flat parallel [int]
    arrays — one slot per instruction word — carrying everything the
    timing loop needs: a jump-table-friendly kind code, register numbers,
    displacement (with [Ldah] pre-scaled by 65536), precomputed uses/defs
    {e register bitmasks} (replacing the [Reg.t list] allocations of
    {!Isa.Insn.uses}/[defs] in the hot loop), result latency, issue pipe,
    nop/branch/PAL flags, and the absolute target PC of PC-relative
    branches. {!Cpu.run_decoded} executes this form without allocating
    per retired instruction; callers that simulate an image repeatedly
    (the measurement harness, the profiler) decode once and reuse.

    The representation is exposed concretely so the interpreter in
    {!Cpu} can read the arrays directly; treat it as read-only. *)

(** {1 Kind codes}

    [k_lda] is [ra <- rb + imm] (covers [Lda], and [Ldah] with the
    displacement pre-scaled). [k_br] covers [Br] and [Bsr] (link, then
    jump to the precomputed [target]); [k_jump] is register-indirect via
    [rb]; [k_bcond] carries its condition index in [rc]. Binary operates
    live at [k_op_base + binop_index op] (register operand) and
    [k_opi_base + binop_index op] (8-bit literal in [imm]). [k_syscall]
    is [Call_pal 0x83]; [k_pal] is any other [Call_pal], code in
    [imm]. *)

val k_lda : int
val k_ldq : int
val k_stq : int
val k_br : int
val k_jump : int
val k_bcond : int
val k_op_base : int
val k_opi_base : int
val k_syscall : int
val k_pal : int

val binop_index : Isa.Insn.binop -> int
val cond_index : Isa.Insn.cond -> int

val flag_nop : int
val flag_branch : int
val flag_pal : int

type t = {
  image : Linker.Image.t;
  insns : Isa.Insn.t array;  (** symbolic form, for trace/probe hooks *)
  kind : int array;
  ra : int array;
  rb : int array;
  rc : int array;
  imm : int array;
  uses : int array;   (** register read-set bitmask (bit 31 never set) *)
  defs : int array;   (** register write-set bitmask *)
  lat : int array;    (** result latency in cycles *)
  pipe : int array;   (** 0 = pipe E, 1 = pipe A *)
  flags : int array;
  target : int array; (** absolute branch-target PC, 0 when inapplicable *)
}

val image : t -> Linker.Image.t
val length : t -> int

val of_image : Linker.Image.t -> (t, int * Isa.Decode.error) result
(** Decode the image's text. An error carries the absolute PC of the
    first undecodable instruction word. *)

val of_insns : Linker.Image.t -> Isa.Insn.t array -> t
(** Pre-decode an already-decoded instruction array (shared with callers
    that hold the symbolic text). *)
