(* The simulated machine's core state and semantics, shared by every
   interpreter: the symbolic reference ([Cpu.run_reference]), the
   per-instruction decoded loop ([Cpu.run_decoded_unfused]) and the
   block-fused superinstruction path ([Blocks.run]). Keeping it in its
   own module breaks the dependency cycle Blocks <-> Cpu would otherwise
   have. *)

type config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

let default_config =
  { icache_bytes = 8192;
    dcache_bytes = 8192;
    line_bytes = 32;
    icache_miss_penalty = 8;
    dcache_miss_penalty = 10;
    branch_penalty = 1;
    dual_issue = true;
    heap_max = 1 lsl 24;
    max_insns = 400_000_000 }

type stats = {
  insns : int;
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
  | Bad_syscall of int64
  | Unknown_pal of int
  | Heap_exhausted
  | Insn_limit_reached

let pp_error ppf = function
  | Unaligned_access a -> Format.fprintf ppf "unaligned access at %#x" a
  | Out_of_range_access a -> Format.fprintf ppf "access out of range at %#x" a
  | Undecodable a -> Format.fprintf ppf "undecodable instruction at %#x" a
  | Bad_syscall v -> Format.fprintf ppf "unknown system call %Ld" v
  | Unknown_pal c -> Format.fprintf ppf "unknown PALcode function %#x" c
  | Heap_exhausted -> Format.fprintf ppf "heap exhausted"
  | Insn_limit_reached -> Format.fprintf ppf "instruction limit reached"

exception Fault of error

module R = Isa.Reg

type machine = {
  cfg : config;
  text_base : int;
  data_base : int;
  data : Bytes.t;              (* data region + heap *)
  stack_base : int;
  stack : Bytes.t;
  regs : Bytes.t;
  mutable brk : int;
  heap_limit : int;
  out : Buffer.t;
  icache : Cache.t;
  dcache : Cache.t;
  ready : int array;           (* cycle at which each register is available *)
  mutable ninsns : int;
  mutable loads : int;
  mutable stores : int;
  mutable nops : int;
}

(* [ready] has 33 slots, not 32. Register 31 is never read or written
   through uses/defs masks (the masks exclude it), so [ready.(31)] is
   pinned at 0 and fused executors use it as the "no operands" read;
   slot 32 is a write sink for instructions with no destination. *)
let create_machine config (image : Linker.Image.t) =
  let data_len =
    image.Linker.Image.heap_base - image.Linker.Image.data_base
    + config.heap_max
  in
  let data = Bytes.make data_len '\000' in
  Bytes.blit image.Linker.Image.data 0 data 0
    (Bytes.length image.Linker.Image.data);
  { cfg = config;
    text_base = image.Linker.Image.text_base;
    data_base = image.Linker.Image.data_base;
    data;
    stack_base = Linker.Layout.stack_top - Linker.Layout.stack_bytes;
    stack = Bytes.make Linker.Layout.stack_bytes '\000';
    regs = Bytes.make 256 '\000';
    brk = image.Linker.Image.heap_base;
    heap_limit = image.Linker.Image.heap_base + config.heap_max - 16;
    out = Buffer.create 256;
    icache = Cache.create ~size_bytes:config.icache_bytes
               ~line_bytes:config.line_bytes;
    dcache = Cache.create ~size_bytes:config.dcache_bytes
               ~line_bytes:config.line_bytes;
    ready = Array.make 33 0;
    ninsns = 0;
    loads = 0;
    stores = 0;
    nops = 0 }

(* The register file is raw bytes, not an [int64 array]: boxed-pointer
   array stores would drag the GC write barrier ([caml_modify]) into
   every retired instruction, and the bytes primitives let the compiler
   keep whole read-op-write chains unboxed. Register numbers come from
   5-bit instruction fields, so the unchecked primitives stay in
   bounds by construction. Byte order inside the file is host-native —
   values only ever round-trip whole.

   NOTE: [Blocks] carries its own module-local copies of these
   primitives (and of [read64]/[write64]/[bool64]) — the build's
   [-opaque] flag makes cross-module calls indirect and boxes their
   int64 arguments, which is fatal in that hot loop. If the semantics
   here change, change blocks.ml to match. *)
external reg_read : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external reg_write : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Writes to register 31 are discarded, so r31 stays 0 forever and
   reads need no special case. *)
let[@inline] rget m r = reg_read m.regs (r lsl 3)
let[@inline] rset m r v = if r <> 31 then reg_write m.regs (r lsl 3) v

(* For fuse-time-specialized writers that already excluded r31. *)
let[@inline] rset_u m r v = reg_write m.regs (r lsl 3) v

let mem m addr =
  (* returns (bytes, offset) *)
  if addr >= m.data_base && addr < m.data_base + Bytes.length m.data then
    (m.data, addr - m.data_base)
  else if addr >= m.stack_base && addr < m.stack_base + Bytes.length m.stack
  then (m.stack, addr - m.stack_base)
  else raise (Fault (Out_of_range_access addr))

let read64 m addr =
  if addr land 7 <> 0 then raise (Fault (Unaligned_access addr));
  let b, off = mem m addr in
  Bytes.get_int64_le b off

let write64 m addr v =
  if addr land 7 <> 0 then raise (Fault (Unaligned_access addr));
  let b, off = mem m addr in
  Bytes.set_int64_le b off v

let bool64 c = if c then 1L else 0L

(* System calls; returns [Some code] when the program exits. *)
let syscall m =
  let v0 = rget m (R.to_int R.v0) in
  let a0 = rget m (R.to_int R.a0) in
  match v0 with
  | 0L -> Some a0
  | 1L ->
      Buffer.add_string m.out (Int64.to_string a0);
      None
  | 2L ->
      Buffer.add_char m.out (Char.chr (Int64.to_int a0 land 0xff));
      None
  | 3L ->
      let rec go addr =
        let q = read64 m (Int64.to_int addr) in
        if not (Int64.equal q 0L) then begin
          Buffer.add_char m.out (Char.chr (Int64.to_int q land 0xff));
          go (Int64.add addr 8L)
        end
      in
      go a0;
      None
  | 4L ->
      let n = (Int64.to_int a0 + 15) land lnot 15 in
      if m.brk + n > m.heap_limit then raise (Fault Heap_exhausted);
      rset m (R.to_int R.v0) (Int64.of_int m.brk);
      m.brk <- m.brk + n;
      None
  | v -> raise (Fault (Bad_syscall v))

let boot m (image : Linker.Image.t) =
  rset m (R.to_int R.sp) (Int64.of_int (Linker.Layout.stack_top - 64));
  rset m (R.to_int R.pv) (Int64.of_int image.Linker.Image.entry)

let outcome_of m ~last_issue ~exit_code =
  { exit_code;
    output = Buffer.contents m.out;
    stats =
      { insns = m.ninsns;
        cycles = last_issue + 1;
        loads = m.loads;
        stores = m.stores;
        icache_misses = Cache.misses m.icache;
        dcache_misses = Cache.misses m.dcache;
        nops_executed = m.nops } }

(* --- bitmask iteration helpers --- *)

(* number-of-trailing-zeros of an isolated bit below 2^32, by de Bruijn
   multiplication — the stdlib has no ctz intrinsic *)
let ntz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let[@inline] ntz b = Array.unsafe_get ntz_table ((b * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* max over [ready.(i)] for every bit [i] of [mask]; 0 on the empty mask *)
let[@inline] max_ready ready mask =
  if mask = 0 then 0
  else begin
    let acc = ref 0 and m = ref mask in
    while !m <> 0 do
      let b = !m land (- !m) in
      let r = Array.unsafe_get ready (ntz b) in
      if r > !acc then acc := r;
      m := !m land (!m - 1)
    done;
    !acc
  end

let[@inline] set_ready ready mask t =
  let m = ref mask in
  while !m <> 0 do
    let b = !m land (- !m) in
    Array.unsafe_set ready (ntz b) t;
    m := !m land (!m - 1)
  done
