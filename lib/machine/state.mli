(** The simulated machine's core state and semantics, shared by every
    interpreter: configuration, statistics, faults, the register file,
    the split memory map (data+heap / stack), system calls, and the
    register-scoreboard helpers the timing loops use.

    {!Cpu} re-exports the public record types ([config], [stats],
    [outcome], [error]) so external callers keep writing
    [Machine.Cpu.stats]; this module exists so {!Blocks} (the fused
    superinstruction executor) and {!Cpu} can share one implementation
    without a dependency cycle. Treat the [machine] record as internal
    to the [Machine] library. *)

type config = {
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  icache_miss_penalty : int;
  dcache_miss_penalty : int;
  branch_penalty : int;
  dual_issue : bool;
  heap_max : int;
  max_insns : int;
}

val default_config : config

type stats = {
  insns : int;
  cycles : int;
  loads : int;
  stores : int;
  icache_misses : int;
  dcache_misses : int;
  nops_executed : int;
}

type outcome = {
  exit_code : int64;
  output : string;
  stats : stats;
}

type error =
  | Unaligned_access of int
  | Out_of_range_access of int
  | Undecodable of int
  | Bad_syscall of int64
  | Unknown_pal of int
  | Heap_exhausted
  | Insn_limit_reached

val pp_error : Format.formatter -> error -> unit

exception Fault of error

type machine = {
  cfg : config;
  text_base : int;
  data_base : int;
  data : Bytes.t;
  stack_base : int;
  stack : Bytes.t;
  regs : Bytes.t;
      (** the 32 × 8-byte register file in host byte order; access only
          through {!rget}/{!rset} — raw bytes keep the GC write barrier
          out of the hot loop *)
  mutable brk : int;
  heap_limit : int;
  out : Buffer.t;
  icache : Cache.t;
  dcache : Cache.t;
  ready : int array;
      (** 33 slots: slot 31 is pinned at 0 (masks never touch it) and
          doubles as the "no operands" read for fused executors; slot 32
          is a write sink for instructions with no destination. *)
  mutable ninsns : int;
  mutable loads : int;
  mutable stores : int;
  mutable nops : int;
}

val create_machine : config -> Linker.Image.t -> machine
val boot : machine -> Linker.Image.t -> unit
val outcome_of : machine -> last_issue:int -> exit_code:int64 -> outcome

val rget : machine -> int -> int64
val rset : machine -> int -> int64 -> unit

val rset_u : machine -> int -> int64 -> unit
(** [rset] without the r31 guard, for fuse-time-specialized writers
    whose destination is statically known not to be r31. *)

val read64 : machine -> int -> int64
val write64 : machine -> int -> int64 -> unit
val bool64 : bool -> int64

val syscall : machine -> int64 option
(** Execute the [call_pal 0x83] system-call gate; [Some code] when the
    program exits. May raise {!Fault} ([Bad_syscall], [Heap_exhausted],
    or a memory fault from the string syscall). *)

val ntz : int -> int
(** Trailing zeros of an isolated bit below [2^32]. *)

val max_ready : int array -> int -> int
(** Max of [ready.(i)] over the bits of the mask; 0 on the empty mask. *)

val set_ready : int array -> int -> int -> unit
