module R = Isa.Reg
module I = Isa.Insn

type local_callee = { lc_postgp : Masm.label }

type ctx = {
  masm : Masm.t;
  o2 : bool;
  local_callees : (string, local_callee) Hashtbl.t;
  optimistic : string -> bool;
      (* which globals to address directly GP-relative (the -G bet) *)
}

let scratch_a = R.t10
let scratch_b = R.t11

let arg_regs = R.[ a0; a1; a2; a3; a4; a5 ]

(* Constants an LDAH/LDA pair can build: hi * 65536 + lo with both
   halves signed 16-bit. That span is NOT the signed 32-bit range — its
   top is 0x7fff7fff, because 0x7fff8000..0x7fffffff would need
   hi = 0x8000, which overflows ldah's displacement (the bottom extends
   a little past -2^31 for the mirror reason). Anything outside goes to
   the literal pool. [Isa.Insn.fits_disp32] is that exact span; asking it
   keeps this bet and the link-time split in one place. *)
let fits32_64 v =
  Int64.equal v (Int64.of_int (Int64.to_int v))
  && I.fits_disp32 (Int64.to_int v)

let fits16_64 v =
  Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

(* Does the function need the GAT / a GP value at all? *)
let func_uses_gp (fn : Ir.func) =
  List.exists
    (fun (b : Ir.block) ->
      List.exists
        (fun (i : Ir.instr) ->
          match i with
          | Ir.La _ | Ir.Call _ -> true
          | Ir.Li { value; _ } -> not (fits32_64 value)
          | _ -> false)
        b.body)
    fn.Ir.blocks

let func_is_leaf (fn : Ir.func) =
  not
    (List.exists
       (fun (b : Ir.block) ->
         List.exists
           (fun i -> match i with Ir.Call _ -> true | _ -> false)
           b.body)
       fn.Ir.blocks)

type frame = {
  size : int;
  ra_off : int option;
  callee_offs : (R.t * int) list;
  spill_base : int;
  slot_offs : int array;
}

let build_frame ~save_ra ~callee_saved ~nspills ~(slots : int array) =
  let off = ref 0 in
  let alloc n = let o = !off in off := o + n; o in
  let ra_off = if save_ra then Some (alloc 8) else None in
  let callee_offs = List.map (fun r -> (r, alloc 8)) callee_saved in
  let spill_base = alloc (8 * nspills) in
  let slot_offs = Array.map (fun sz -> alloc sz) slots in
  let size = (!off + 15) land lnot 15 in
  { size; ra_off; callee_offs; spill_base; slot_offs }

type gen = {
  ctx : ctx;
  fn : Ir.func;
  alloc : Regalloc.allocation;
  frame : frame;
  uses_gp : bool;
  entry_label : Masm.label;
  epilogue_label : Masm.label;
  block_label : (Ir.label, Masm.label) Hashtbl.t;
  mutable items : Masm.item list; (* reversed *)
  (* physical registers currently holding exactly the value of a GAT
     address load, for LITUSE link emission *)
  la_binding : (int, Masm.id) Hashtbl.t;
}

let emit g item = g.items <- item :: g.items

let invalidate g (r : R.t) = Hashtbl.remove g.la_binding (R.to_int r)

let invalidate_caller_saved g =
  List.iter (invalidate g) R.caller_saved;
  invalidate g R.gp

let emit_insn g insn =
  List.iter (invalidate g) (I.defs insn);
  emit g (Masm.Insn insn)

let emit_lituse g insn ~load ~jsr =
  List.iter (invalidate g) (I.defs insn);
  emit g (Masm.Lituse { insn; load; jsr })

let emit_gatload g ~ra entry =
  let id = Masm.fresh_id g.ctx.masm in
  invalidate g ra;
  emit g (Masm.Gatload { id; ra; entry });
  (match entry with
  | Objfile.Gat_entry.Addr _ -> Hashtbl.replace g.la_binding (R.to_int ra) id
  | Objfile.Gat_entry.Const _ -> ());
  id

let emit_gpsetup g ~base ~anchor =
  let lo = Masm.fresh_id g.ctx.masm in
  invalidate g R.gp;
  emit g (Masm.Gpsetup_hi { base; anchor; lo });
  emit g (Masm.Gpsetup_lo { id = lo })

let spill_off g s = g.frame.spill_base + (8 * s)

(* Load the value of vreg [v] into a register, reloading spills into
   [scratch]; returns the register holding the value. *)
let use_reg g v ~scratch =
  match g.alloc.Regalloc.loc.(v) with
  | Regalloc.Preg r -> r
  | Regalloc.Spill s ->
      emit_insn g (I.Ldq { ra = scratch; rb = R.sp; disp = spill_off g s });
      scratch

(* The register a definition of [v] should target. *)
let def_reg g v =
  match g.alloc.Regalloc.loc.(v) with
  | Regalloc.Preg r -> r
  | Regalloc.Spill _ -> scratch_a

(* Complete a definition of [v] computed into [def_reg g v]. *)
let finish_def g v =
  match g.alloc.Regalloc.loc.(v) with
  | Regalloc.Preg _ -> ()
  | Regalloc.Spill s ->
      emit_insn g (I.Stq { ra = scratch_a; rb = R.sp; disp = spill_off g s })

let emit_li g value dst =
  if fits16_64 value then
    emit_insn g (I.Lda { ra = dst; rb = R.zero; disp = Int64.to_int value })
  else if fits32_64 value then begin
    let hi, lo = I.split32 (Int64.to_int value) in
    emit_insn g (I.Ldah { ra = dst; rb = R.zero; disp = hi });
    emit_insn g (I.Lda { ra = dst; rb = dst; disp = lo })
  end
  else ignore (emit_gatload g ~ra:dst (Objfile.Gat_entry.Const value))

let op_of_binop : Ir.binop -> I.binop option = function
  | Ir.Add -> Some I.Addq
  | Ir.Sub -> Some I.Subq
  | Ir.Mul -> Some I.Mulq
  | Ir.And -> Some I.And_
  | Ir.Or -> Some I.Bis
  | Ir.Xor -> Some I.Xor
  | Ir.Shl -> Some I.Sll
  | Ir.Shr -> Some I.Sra
  | Ir.Div | Ir.Rem | Ir.Cmp _ -> None

(* Comparisons: the machine has cmpeq/cmplt/cmple only; the rest are
   synthesized by operand swap or by a trailing xor. *)
let gen_cmp g c ~ra ~(rb : I.operand) ~dst ~swap_reg =
  let swap () =
    (* materialize the literal so it can sit on the left *)
    match rb with
    | I.Rb r -> (r, I.Rb ra)
    | I.Imm n ->
        emit_insn g (I.Lda { ra = swap_reg; rb = R.zero; disp = n });
        (swap_reg, I.Rb ra)
  in
  match c with
  | Ir.Ceq -> emit_insn g (I.Op { op = I.Cmpeq; ra; rb; rc = dst })
  | Ir.Cne ->
      emit_insn g (I.Op { op = I.Cmpeq; ra; rb; rc = dst });
      emit_insn g (I.Op { op = I.Xor; ra = dst; rb = I.Imm 1; rc = dst })
  | Ir.Clt -> emit_insn g (I.Op { op = I.Cmplt; ra; rb; rc = dst })
  | Ir.Cle -> emit_insn g (I.Op { op = I.Cmple; ra; rb; rc = dst })
  | Ir.Cgt ->
      let ra', rb' = swap () in
      emit_insn g (I.Op { op = I.Cmplt; ra = ra'; rb = rb'; rc = dst })
  | Ir.Cge ->
      let ra', rb' = swap () in
      emit_insn g (I.Op { op = I.Cmple; ra = ra'; rb = rb'; rc = dst })

let gen_call g dst callee args =
  (* marshal arguments *)
  List.iteri
    (fun i v ->
      let areg = List.nth arg_regs i in
      match g.alloc.Regalloc.loc.(v) with
      | Regalloc.Preg r ->
          if not (R.equal r areg) then emit_insn g (I.mov r areg)
      | Regalloc.Spill s ->
          emit_insn g (I.Ldq { ra = areg; rb = R.sp; disp = spill_off g s }))
    args;
  (match callee with
  | Ir.Cdirect f when Hashtbl.mem g.ctx.local_callees f ->
      (* same-unit unexported callee: bsr skipping its GP setup; no PV
         load, no GP reset *)
      let { lc_postgp } = Hashtbl.find g.ctx.local_callees f in
      invalidate_caller_saved g;
      emit g
        (Masm.Branch { insn = I.Bsr { ra = R.ra; disp = 0 }; target = lc_postgp })
  | Ir.Cdirect f ->
      let gl =
        emit_gatload g ~ra:R.pv (Objfile.Gat_entry.addr f)
      in
      invalidate_caller_saved g;
      emit_lituse g
        (I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 })
        ~load:gl ~jsr:true;
      if g.uses_gp then begin
        let anchor = Masm.fresh_label g.ctx.masm in
        emit g (Masm.Label anchor);
        emit_gpsetup g ~base:R.ra ~anchor
      end
  | Ir.Cindirect v ->
      let r = use_reg g v ~scratch:R.pv in
      if not (R.equal r R.pv) then emit_insn g (I.mov r R.pv);
      invalidate_caller_saved g;
      emit_insn g (I.Jump { kind = I.Jsr; ra = R.ra; rb = R.pv; hint = 0 });
      if g.uses_gp then begin
        let anchor = Masm.fresh_label g.ctx.masm in
        emit g (Masm.Label anchor);
        emit_gpsetup g ~base:R.ra ~anchor
      end);
  match dst with
  | None -> ()
  | Some v -> (
      match g.alloc.Regalloc.loc.(v) with
      | Regalloc.Preg r ->
          if not (R.equal r R.v0) then emit_insn g (I.mov R.v0 r)
      | Regalloc.Spill s ->
          emit_insn g (I.Stq { ra = R.v0; rb = R.sp; disp = spill_off g s }))

let gen_instr g (instr : Ir.instr) =
  match instr with
  | Ir.Li { dst; value } ->
      emit_li g value (def_reg g dst);
      finish_def g dst
  | Ir.Bin { dst; op = Ir.Cmp c; a; b } ->
      let ra = use_reg g a ~scratch:scratch_a in
      let rb = use_reg g b ~scratch:scratch_b in
      gen_cmp g c ~ra ~rb:(I.Rb rb) ~dst:(def_reg g dst) ~swap_reg:scratch_b;
      finish_def g dst
  | Ir.Bin { dst; op; a; b } ->
      let ra = use_reg g a ~scratch:scratch_a in
      let rb = use_reg g b ~scratch:scratch_b in
      let op =
        match op_of_binop op with
        | Some o -> o
        | None -> invalid_arg "Codegen: Div/Rem must be lowered before codegen"
      in
      emit_insn g (I.Op { op; ra; rb = I.Rb rb; rc = def_reg g dst });
      finish_def g dst
  | Ir.Bini { dst; op = Ir.Cmp c; a; imm } ->
      let ra = use_reg g a ~scratch:scratch_a in
      gen_cmp g c ~ra ~rb:(I.Imm imm) ~dst:(def_reg g dst)
        ~swap_reg:scratch_b;
      finish_def g dst
  | Ir.Bini { dst; op; a; imm } ->
      let ra = use_reg g a ~scratch:scratch_a in
      let op =
        match op_of_binop op with
        | Some o -> o
        | None -> invalid_arg "Codegen: Div/Rem must be lowered before codegen"
      in
      emit_insn g (I.Op { op; ra; rb = I.Imm imm; rc = def_reg g dst });
      finish_def g dst
  | Ir.Ld { dst; base; off } ->
      let rb = use_reg g base ~scratch:scratch_b in
      let insn = I.Ldq { ra = def_reg g dst; rb; disp = off } in
      (match Hashtbl.find_opt g.la_binding (R.to_int rb) with
      | Some load -> emit_lituse g insn ~load ~jsr:false
      | None -> emit_insn g insn);
      finish_def g dst
  | Ir.St { src; base; off } ->
      let rs = use_reg g src ~scratch:scratch_a in
      let rb = use_reg g base ~scratch:scratch_b in
      let insn = I.Stq { ra = rs; rb; disp = off } in
      (match Hashtbl.find_opt g.la_binding (R.to_int rb) with
      | Some load -> emit_lituse g insn ~load ~jsr:false
      | None -> emit_insn g insn)
  | Ir.La { dst; sym; off } ->
      let r = def_reg g dst in
      if g.ctx.optimistic sym then begin
        invalidate g r;
        emit g
          (Masm.Gpref
             { insn = I.Lda { ra = r; rb = R.gp; disp = 0 };
               symbol = sym;
               addend = off })
      end
      else
        ignore (emit_gatload g ~ra:r (Objfile.Gat_entry.addr ~addend:off sym));
      finish_def g dst
  | Ir.Laslot { dst; slot } ->
      let r = def_reg g dst in
      emit_insn g
        (I.Lda { ra = r; rb = R.sp; disp = g.frame.slot_offs.(slot) });
      finish_def g dst
  | Ir.Call { dst; callee; args } -> gen_call g dst callee args

let gen_term g (term : Ir.term) ~next_block =
  let branch_to l =
    emit g
      (Masm.Branch
         { insn = I.Br { ra = R.zero; disp = 0 };
           target = Hashtbl.find g.block_label l })
  in
  match term with
  | Ir.Ret v ->
      (match v with
      | Some v -> (
          match g.alloc.Regalloc.loc.(v) with
          | Regalloc.Preg r ->
              if not (R.equal r R.v0) then emit_insn g (I.mov r R.v0)
          | Regalloc.Spill s ->
              emit_insn g
                (I.Ldq { ra = R.v0; rb = R.sp; disp = spill_off g s }))
      | None -> ());
      emit g
        (Masm.Branch
           { insn = I.Br { ra = R.zero; disp = 0 }; target = g.epilogue_label })
  | Ir.Jmp l ->
      if next_block <> Some l then branch_to l
  | Ir.Cbr { cond; ifso; ifnot } ->
      let rc = use_reg g cond ~scratch:scratch_a in
      emit g
        (Masm.Branch
           { insn = I.Bcond { cond = I.Bne; ra = rc; disp = 0 };
             target = Hashtbl.find g.block_label ifso });
      if next_block <> Some ifnot then branch_to ifnot

(* --- scheduling: reorder straight-line runs --- *)

let is_run_breaker (item : Masm.item) =
  match item with
  | Masm.Label _ | Masm.Branch _ -> true
  | Masm.Lituse { jsr = true; _ } -> true
  | Masm.Insn i -> Isa.Insn.is_branch i || (match i with I.Call_pal _ -> true | _ -> false)
  | _ -> false

let schedule_proc items =
  let out = ref [] in
  let run = ref [] in
  let flush () =
    if !run <> [] then begin
      let scheduled = Masm.schedule_items (List.rev !run) in
      out := List.rev_append scheduled !out;
      run := []
    end
  in
  List.iter
    (fun item ->
      if is_run_breaker item then begin
        flush ();
        out := item :: !out
      end
      else run := item :: !run)
    items;
  flush ();
  List.rev !out

(* --- whole function --- *)

let gen_func ctx (fn : Ir.func) alloc =
  let uses_gp = func_uses_gp fn in
  let leaf = func_is_leaf fn in
  let frame =
    build_frame ~save_ra:(not leaf)
      ~callee_saved:alloc.Regalloc.used_callee_saved
      ~nspills:alloc.Regalloc.nspills ~slots:fn.Ir.slots
  in
  let g =
    { ctx;
      fn;
      alloc;
      frame;
      uses_gp;
      entry_label = Masm.fresh_label ctx.masm;
      epilogue_label = Masm.fresh_label ctx.masm;
      block_label = Hashtbl.create 16;
      items = [];
      la_binding = Hashtbl.create 8 }
  in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace g.block_label b.label (Masm.fresh_label ctx.masm))
    fn.Ir.blocks;
  (* prologue *)
  emit g (Masm.Label g.entry_label);
  if uses_gp then emit_gpsetup g ~base:R.pv ~anchor:g.entry_label;
  (match Hashtbl.find_opt ctx.local_callees fn.Ir.fname with
  | Some { lc_postgp } ->
      (* pin the GP setup: callers branch here to skip it *)
      emit g (Masm.Label lc_postgp)
  | None -> ());
  if frame.size > 0 then
    emit_insn g (I.Lda { ra = R.sp; rb = R.sp; disp = -frame.size });
  (match frame.ra_off with
  | Some off -> emit_insn g (I.Stq { ra = R.ra; rb = R.sp; disp = off })
  | None -> ());
  List.iter
    (fun (r, off) -> emit_insn g (I.Stq { ra = r; rb = R.sp; disp = off }))
    frame.callee_offs;
  (* move incoming arguments into their allocated homes *)
  List.iteri
    (fun i v ->
      let areg = List.nth arg_regs i in
      match alloc.Regalloc.loc.(v) with
      | Regalloc.Preg r -> if not (R.equal r areg) then emit_insn g (I.mov areg r)
      | Regalloc.Spill s ->
          emit_insn g (I.Stq { ra = areg; rb = R.sp; disp = spill_off g s }))
    fn.Ir.params;
  (* body *)
  let rec blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
        Hashtbl.reset g.la_binding;
        emit g (Masm.Label (Hashtbl.find g.block_label b.label));
        List.iter (gen_instr g) b.body;
        let next_block =
          match rest with (nb : Ir.block) :: _ -> Some nb.label | [] -> None
        in
        gen_term g b.term ~next_block;
        blocks rest
  in
  blocks fn.Ir.blocks;
  (* epilogue *)
  emit g (Masm.Label g.epilogue_label);
  (match frame.ra_off with
  | Some off -> emit_insn g (I.Ldq { ra = R.ra; rb = R.sp; disp = off })
  | None -> ());
  List.iter
    (fun (r, off) -> emit_insn g (I.Ldq { ra = r; rb = R.sp; disp = off }))
    frame.callee_offs;
  if frame.size > 0 then
    emit_insn g (I.Lda { ra = R.sp; rb = R.sp; disp = frame.size });
  emit_insn g (I.Jump { kind = I.Ret; ra = R.zero; rb = R.ra; hint = 1 });
  let items = List.rev g.items in
  let items = if ctx.o2 then schedule_proc items else items in
  Masm.add_proc ctx.masm ~name:fn.Ir.fname ~static:fn.Ir.fstatic
    ~exported:
      (not (fn.Ir.fstatic || Hashtbl.mem ctx.local_callees fn.Ir.fname))
    items
