module I = Isa.Insn
module R = Isa.Reg

type category = Addr_load | Gp_setup | Pv_load | Other

let all_categories = [ Addr_load; Gp_setup; Pv_load; Other ]

let category_name = function
  | Addr_load -> "addr_load"
  | Gp_setup -> "gp_setup"
  | Pv_load -> "pv_load"
  | Other -> "other"

let category_index = function
  | Addr_load -> 0
  | Gp_setup -> 1
  | Pv_load -> 2
  | Other -> 3

let ncategories = 4

(* --- PC -> procedure --- *)

type pcmap = Linker.Image.proc_info array  (* sorted by entry *)

let pcmap (image : Linker.Image.t) =
  let a = Array.copy image.Linker.Image.procs in
  Array.sort
    (fun (x : Linker.Image.proc_info) y -> compare x.entry y.entry)
    a;
  a

let find_proc (map : pcmap) pc =
  let rec bs lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let p = map.(mid) in
      if pc < p.Linker.Image.entry then bs lo (mid - 1)
      else if pc >= p.Linker.Image.entry + p.Linker.Image.size then
        bs (mid + 1) hi
      else Some p
  in
  bs 0 (Array.length map - 1)

(* --- classification --- *)

let classify ~gat_base ~gat_bytes ~gp_value insn =
  if List.exists (R.equal R.gp) (I.defs insn) then Gp_setup
  else
    match insn with
    | I.Ldq { ra; _ } when R.equal ra R.pv -> Pv_load
    | I.Ldq { rb; disp; _ } when R.equal rb R.gp -> (
        match gp_value with
        | Some gp ->
            let target = gp + disp in
            if target >= gat_base && target < gat_base + gat_bytes then
              Addr_load
            else Other  (* GP-relative data access: already optimized *)
        | None -> Addr_load)
    | _ -> Other

(* --- profiles --- *)

type bucket = { mutable b_insns : int; mutable b_cycles : int }

type proc_profile = {
  pname : string;
  mutable p_insns : int;
  mutable p_cycles : int;
  mutable p_imiss : int;
  mutable p_dmiss : int;
  p_buckets : bucket array;
}

type t = {
  procs : proc_profile list;
  totals : proc_profile;
  cpu : Machine.Cpu.stats;
  output : string;
  exit_code : int64;
}

let fresh_profile pname =
  { pname;
    p_insns = 0;
    p_cycles = 0;
    p_imiss = 0;
    p_dmiss = 0;
    p_buckets = Array.init ncategories (fun _ -> { b_insns = 0; b_cycles = 0 }) }

let bucket p cat = p.p_buckets.(category_index cat)
let proc t name = List.find_opt (fun p -> String.equal p.pname name) t.procs

(* [simulate] abstracts over which interpreter entry point drives the
   probe: [run] decodes the image itself; [run_decoded] reuses a cached
   pre-decoded form. *)
let profile_with ~(image : Linker.Image.t) simulate =
  let map = pcmap image in
  let gat_base = image.Linker.Image.gat_base in
  let gat_bytes = image.Linker.Image.gat_bytes in
  let by_name : (string, proc_profile) Hashtbl.t = Hashtbl.create 64 in
  let totals = fresh_profile "TOTAL" in
  let get name =
    match Hashtbl.find_opt by_name name with
    | Some p -> p
    | None ->
        let p = fresh_profile name in
        Hashtbl.add by_name name p;
        p
  in
  (* consecutive PCs almost always stay in one procedure: memoize the last *)
  let last : (Linker.Image.proc_info option * proc_profile) option ref =
    ref None
  in
  let profile_of pc =
    match !last with
    | Some ((Some info, _) as hit)
      when pc >= info.Linker.Image.entry
           && pc < info.Linker.Image.entry + info.Linker.Image.size ->
        hit
    | _ ->
        let info = find_proc map pc in
        let p =
          match info with
          | Some i -> get i.Linker.Image.name
          | None -> get "?"
        in
        last := Some (info, p);
        (info, p)
  in
  let probe (ev : Machine.Cpu.probe_event) =
    let info, p = profile_of ev.Machine.Cpu.ev_pc in
    let gp_value =
      Option.map (fun (i : Linker.Image.proc_info) -> i.gp_value) info
    in
    let cat = classify ~gat_base ~gat_bytes ~gp_value ev.Machine.Cpu.ev_insn in
    let cycles = ev.Machine.Cpu.ev_cycles in
    p.p_insns <- p.p_insns + 1;
    p.p_cycles <- p.p_cycles + cycles;
    if ev.Machine.Cpu.ev_icache_miss then p.p_imiss <- p.p_imiss + 1;
    if ev.Machine.Cpu.ev_dcache_miss then p.p_dmiss <- p.p_dmiss + 1;
    let b = bucket p cat in
    b.b_insns <- b.b_insns + 1;
    b.b_cycles <- b.b_cycles + cycles;
    totals.p_insns <- totals.p_insns + 1;
    totals.p_cycles <- totals.p_cycles + cycles;
    if ev.Machine.Cpu.ev_icache_miss then totals.p_imiss <- totals.p_imiss + 1;
    if ev.Machine.Cpu.ev_dcache_miss then totals.p_dmiss <- totals.p_dmiss + 1;
    let tb = bucket totals cat in
    tb.b_insns <- tb.b_insns + 1;
    tb.b_cycles <- tb.b_cycles + cycles
  in
  match simulate ~probe with
  | Error _ as e -> e
  | Ok o ->
      let procs =
        Hashtbl.fold (fun _ p acc -> p :: acc) by_name []
        |> List.sort (fun a b -> compare (b.p_cycles, b.pname) (a.p_cycles, a.pname))
      in
      Ok
        { procs;
          totals;
          cpu = o.Machine.Cpu.stats;
          output = o.Machine.Cpu.output;
          exit_code = o.Machine.Cpu.exit_code }

let run ?config (image : Linker.Image.t) =
  profile_with ~image (fun ~probe -> Machine.Cpu.run ?config ~probe image)

let run_decoded ?config (d : Machine.Decoded.t) =
  profile_with ~image:(Machine.Decoded.image d) (fun ~probe ->
      Machine.Cpu.run_decoded ?config ~probe d)

let pp ?(top = 12) ppf t =
  let row ppf p =
    Format.fprintf ppf "%-16s %12d %11d %9d %9d %9d %9d %7d %7d" p.pname
      p.p_cycles p.p_insns
      (bucket p Addr_load).b_cycles (bucket p Gp_setup).b_cycles
      (bucket p Pv_load).b_cycles (bucket p Other).b_cycles p.p_imiss
      p.p_dmiss
  in
  Format.fprintf ppf "@[<v>%-16s %12s %11s %9s %9s %9s %9s %7s %7s@,"
    "procedure" "cycles" "insns" "addr" "gp-setup" "pv-load" "other"
    "i$miss" "d$miss";
  List.iteri
    (fun i p -> if i < top then Format.fprintf ppf "%a@," row p)
    t.procs;
  if List.length t.procs > top then
    Format.fprintf ppf "  (%d more procedures)@," (List.length t.procs - top);
  Format.fprintf ppf "%a@]" row t.totals

let profile_json p =
  Json.Obj
    [ ("name", Json.String p.pname);
      ("insns", Json.Int p.p_insns);
      ("cycles", Json.Int p.p_cycles);
      ("icache_misses", Json.Int p.p_imiss);
      ("dcache_misses", Json.Int p.p_dmiss);
      ( "categories",
        Json.Obj
          (List.map
             (fun c ->
               let b = bucket p c in
               ( category_name c,
                 Json.Obj
                   [ ("insns", Json.Int b.b_insns);
                     ("cycles", Json.Int b.b_cycles) ] ))
             all_categories) ) ]

let to_json t =
  Json.Obj
    [ ("total", profile_json t.totals);
      ("procs", Json.List (List.map profile_json t.procs)) ]
