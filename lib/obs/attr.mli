(** Cycle attribution: where a simulated run spends its time, and on what.

    This is the measurement layer behind the paper's §5 argument. A run of
    {!run} drives {!Machine.Cpu.run} through its probe hook and buckets
    every retired instruction — its count and its critical-path cycles —
    two ways at once:

    - {e by procedure}, mapping the PC through the image's procedure table
      (the binary search formerly hand-rolled in [examples/profile.ml]);
    - {e by address-calculation category}: GAT address loads, GP
      setup/reset code, PV loads, and everything else — the four
      mechanisms whose removal the optimizer is being graded on.

    I-cache and D-cache misses are attributed per procedure as well. *)

type category =
  | Addr_load  (** [ldq] off GP hitting the linked GAT *)
  | Gp_setup   (** any instruction writing GP: setups and resets *)
  | Pv_load    (** [ldq] into PV: materializing a callee's address *)
  | Other

val all_categories : category list
val category_name : category -> string
val category_index : category -> int

(** {1 PC → procedure} *)

type pcmap

val pcmap : Linker.Image.t -> pcmap
val find_proc : pcmap -> int -> Linker.Image.proc_info option
(** Binary search over entry-sorted procedure descriptors. *)

(** {1 Classification} *)

val classify :
  gat_base:int -> gat_bytes:int -> gp_value:int option -> Isa.Insn.t ->
  category
(** [gp_value] is the GP the enclosing procedure's code expects (from its
    {!Linker.Image.proc_info}); [None] when the PC maps to no known
    procedure, in which case any load off GP is conservatively counted as
    an address load. *)

(** {1 Profiles} *)

type bucket = { mutable b_insns : int; mutable b_cycles : int }

type proc_profile = {
  pname : string;
  mutable p_insns : int;
  mutable p_cycles : int;
  mutable p_imiss : int;
  mutable p_dmiss : int;
  p_buckets : bucket array;  (** indexed by {!category_index} *)
}

type t = {
  procs : proc_profile list;
      (** sorted by cycles, descending; instructions outside any known
          procedure appear under the name ["?"] *)
  totals : proc_profile;     (** named ["TOTAL"] *)
  cpu : Machine.Cpu.stats;
  output : string;
  exit_code : int64;
}

val bucket : proc_profile -> category -> bucket
val proc : t -> string -> proc_profile option

val run :
  ?config:Machine.Cpu.config -> Linker.Image.t ->
  (t, Machine.Cpu.error) result

val run_decoded :
  ?config:Machine.Cpu.config -> Machine.Decoded.t ->
  (t, Machine.Cpu.error) result
(** Like {!run} over a pre-decoded image — the path the measurement
    harness uses so attribution re-simulations never re-decode. *)

val pp : ?top:int -> Format.formatter -> t -> unit
(** Per-procedure table: cycles, instruction count, category cycles and
    cache misses. [top] limits the procedure rows (default 12); the totals
    row always prints. *)

val to_json : t -> Json.t
