(* Report-vs-report regression gate.

   Rows are matched across the two reports by (bench, build) and runs by
   level. Simulated cycle counts and improvement percentages are
   deterministic for a given source tree, so they gate hard by default;
   MIPS and relink wall-times depend on the host and only gate when a
   threshold is explicitly supplied — otherwise they surface as
   warnings. *)

type thresholds = {
  max_cycle_regress_pct : float;
  max_improvement_drop_pts : float;
  max_mips_drop_pct : float option;
  min_mips : float option;
  max_relink_regress_pct : float option;
  max_size_regress_pct : float;
}

let default_thresholds =
  { max_cycle_regress_pct = 0.5;
    max_improvement_drop_pts = 1.0;
    max_mips_drop_pct = None;
    min_mips = None;
    max_relink_regress_pct = None;
    max_size_regress_pct = 0.5 }

type finding = {
  subject : string;   (* "bench/build level" or similar *)
  metric : string;    (* "cycles", "improvement_pct", "mips", ... *)
  old_value : float;
  new_value : float;
  delta_pct : float;  (* positive = worse *)
}

type outcome = {
  regressions : finding list;
  warnings : finding list;
  improvements : finding list;
  missing : string list;   (* rows/runs present in OLD but absent in NEW *)
}

let ok outcome = outcome.regressions = []

let pct_change ~old_v ~new_v =
  if old_v = 0. then if new_v = 0. then 0. else 100.
  else (new_v -. old_v) /. Float.abs old_v *. 100.

let finding subject metric ~old_v ~new_v ~worse_pct =
  { subject; metric; old_value = old_v; new_value = new_v; delta_pct = worse_pct }

let run_key (r : Report.run) = r.Report.level
let bench_key (b : Report.bench) = (b.Report.bench, b.Report.build)

let subject_of (b : Report.bench) =
  Printf.sprintf "%s/%s" b.Report.bench b.Report.build

(* cycles: higher is worse *)
let compare_cycles subject t acc ~old_c ~new_c =
  let old_v = float_of_int old_c and new_v = float_of_int new_c in
  let worse = pct_change ~old_v ~new_v in
  let f = finding subject "cycles" ~old_v ~new_v ~worse_pct:worse in
  if worse > t.max_cycle_regress_pct then { acc with regressions = f :: acc.regressions }
  else if worse < 0. then { acc with improvements = f :: acc.improvements }
  else acc

(* improvement_pct: lower is worse; measured in points, not percent *)
let compare_improvement subject t acc ~old_i ~new_i =
  let drop = old_i -. new_i in
  let f = finding subject "improvement_pct" ~old_v:old_i ~new_v:new_i ~worse_pct:drop in
  if drop > t.max_improvement_drop_pts then
    { acc with regressions = f :: acc.regressions }
  else if drop < 0. then { acc with improvements = f :: acc.improvements }
  else acc

(* image sizes: byte counts are deterministic for a given tree, so they
   gate hard like cycles; each component gets its own finding *)
let compare_size subject t acc ~old_s ~new_s =
  match (old_s, new_s) with
  | Some (o : Report.size), Some (n : Report.size) ->
      List.fold_left
        (fun acc (metric, old_b, new_b) ->
          let old_v = float_of_int old_b and new_v = float_of_int new_b in
          let worse = pct_change ~old_v ~new_v in
          let f = finding subject metric ~old_v ~new_v ~worse_pct:worse in
          if worse > t.max_size_regress_pct then
            { acc with regressions = f :: acc.regressions }
          else if worse < 0. then
            { acc with improvements = f :: acc.improvements }
          else acc)
        acc
        [ ("text_bytes", o.Report.text_bytes, n.Report.text_bytes);
          ("data_bytes", o.Report.data_bytes, n.Report.data_bytes);
          ("gat_bytes", o.Report.gat_bytes, n.Report.gat_bytes) ]
  | _ -> acc

(* mips: lower is worse; warn unless a threshold was given *)
let compare_mips subject t acc ~old_m ~new_m =
  if old_m <= 0. || new_m <= 0. then acc
  else
    let drop = pct_change ~old_v:old_m ~new_v:new_m in
    let worse = -.drop in
    let f = finding subject "mips" ~old_v:old_m ~new_v:new_m ~worse_pct:worse in
    match t.max_mips_drop_pct with
    | Some limit when worse > limit -> { acc with regressions = f :: acc.regressions }
    | Some _ -> if worse < 0. then { acc with improvements = f :: acc.improvements } else acc
    | None ->
        if worse > 10. then { acc with warnings = f :: acc.warnings } else acc

(* mips floor: an absolute lower bound on the NEW report's throughput,
   independent of the old report — the gate against the fast path
   silently degenerating to interpreter speed. [old_value] carries the
   floor itself so the finding prints as "floor -> measured". *)
let check_mips_floor subject t acc ~new_m =
  match t.min_mips with
  | Some floor when new_m > 0. && new_m < floor ->
      let worse = pct_change ~old_v:floor ~new_v:new_m in
      let f =
        finding subject "mips_floor" ~old_v:floor ~new_v:new_m
          ~worse_pct:(-.worse)
      in
      { acc with regressions = f :: acc.regressions }
  | _ -> acc

(* relink cold/warm seconds: higher is worse; warn unless a threshold
   was given *)
let compare_relink subject t acc name ~old_s ~new_s =
  if old_s <= 0. || new_s <= 0. then acc
  else
    let worse = pct_change ~old_v:old_s ~new_v:new_s in
    let f = finding subject name ~old_v:old_s ~new_v:new_s ~worse_pct:worse in
    match t.max_relink_regress_pct with
    | Some limit when worse > limit -> { acc with regressions = f :: acc.regressions }
    | Some _ -> if worse < 0. then { acc with improvements = f :: acc.improvements } else acc
    | None ->
        if worse > 25. then { acc with warnings = f :: acc.warnings } else acc

let compare_run subject t acc (o : Report.run) (n : Report.run) =
  let acc =
    compare_cycles subject t acc ~old_c:o.Report.cycles ~new_c:n.Report.cycles
  in
  let acc =
    compare_improvement subject t acc ~old_i:o.Report.improvement_pct
      ~new_i:n.Report.improvement_pct
  in
  let acc =
    compare_size subject t acc ~old_s:o.Report.size ~new_s:n.Report.size
  in
  let acc =
    match (o.Report.host, n.Report.host) with
    | Some oh, Some nh ->
        compare_mips subject t acc ~old_m:oh.Report.mips ~new_m:nh.Report.mips
    | _ -> acc
  in
  match n.Report.host with
  | Some nh -> check_mips_floor subject t acc ~new_m:nh.Report.mips
  | None -> acc

let compare_bench t acc (o : Report.bench) (n : Report.bench) =
  let subject = subject_of o in
  let acc =
    compare_cycles (subject ^ " std") t acc ~old_c:o.Report.std_cycles
      ~new_c:n.Report.std_cycles
  in
  let acc =
    compare_size (subject ^ " std") t acc ~old_s:o.Report.std_size
      ~new_s:n.Report.std_size
  in
  let acc =
    match (o.Report.std_host, n.Report.std_host) with
    | Some oh, Some nh ->
        compare_mips (subject ^ " std") t acc ~old_m:oh.Report.mips
          ~new_m:nh.Report.mips
    | _ -> acc
  in
  let acc =
    match n.Report.std_host with
    | Some nh ->
        check_mips_floor (subject ^ " std") t acc ~new_m:nh.Report.mips
    | None -> acc
  in
  let acc =
    match (o.Report.relink, n.Report.relink) with
    | Some orel, Some nrel ->
        let acc =
          compare_relink (subject ^ " relink") t acc "relink_cold_s"
            ~old_s:orel.Report.cold_s ~new_s:nrel.Report.cold_s
        in
        compare_relink (subject ^ " relink") t acc "relink_warm_s"
          ~old_s:orel.Report.warm_s ~new_s:nrel.Report.warm_s
    | _ -> acc
  in
  List.fold_left
    (fun acc (orun : Report.run) ->
      match
        List.find_opt
          (fun (nr : Report.run) -> run_key nr = run_key orun)
          n.Report.runs
      with
      | None ->
          { acc with
            missing = Printf.sprintf "%s %s" subject orun.Report.level :: acc.missing }
      | Some nrun ->
          compare_run
            (Printf.sprintf "%s %s" subject orun.Report.level)
            t acc orun nrun)
    acc o.Report.runs

let compare ?(thresholds = default_thresholds) ~old_r ~new_r () =
  let empty = { regressions = []; warnings = []; improvements = []; missing = [] } in
  let acc =
    List.fold_left
      (fun acc (ob : Report.bench) ->
        match
          List.find_opt
            (fun (nb : Report.bench) -> bench_key nb = bench_key ob)
            new_r.Report.results
        with
        | None -> { acc with missing = subject_of ob :: acc.missing }
        | Some nb -> compare_bench thresholds acc ob nb)
      empty old_r.Report.results
  in
  { regressions = List.rev acc.regressions;
    warnings = List.rev acc.warnings;
    improvements = List.rev acc.improvements;
    missing = List.rev acc.missing }

let pp_finding ppf f =
  Format.fprintf ppf "%-40s %-18s %12.2f -> %12.2f  (%+.2f%s)" f.subject
    f.metric f.old_value f.new_value f.delta_pct
    (if f.metric = "improvement_pct" then " pts worse" else "% worse")

let pp_outcome ppf o =
  let section name items =
    if items <> [] then begin
      Format.fprintf ppf "@[<v>%s:@," name;
      List.iter (fun f -> Format.fprintf ppf "  %a@," pp_finding f) items;
      Format.fprintf ppf "@]"
    end
  in
  section "REGRESSIONS" o.regressions;
  section "warnings (host-dependent, not gating)" o.warnings;
  section "improvements" o.improvements;
  if o.missing <> [] then begin
    Format.fprintf ppf "@[<v>missing in new report:@,";
    List.iter (fun s -> Format.fprintf ppf "  %s@," s) o.missing;
    Format.fprintf ppf "@]"
  end;
  if o.regressions = [] && o.warnings = [] && o.missing = [] then
    Format.fprintf ppf "no regressions@."
