(** Report-vs-report perf-regression gate.

    Compares two {!Report.t} documents (typically a committed baseline
    vs a freshly generated report), matching benches by (bench, build)
    and runs by level. Simulated cycle counts and om improvement
    percentages are deterministic for a given tree, so they gate hard by
    default; simulated-MIPS and relink wall-times are host-dependent and
    only gate when their thresholds are set explicitly — otherwise large
    movements surface as non-gating warnings. *)

type thresholds = {
  max_cycle_regress_pct : float;
      (** max tolerated cycle-count growth, percent *)
  max_improvement_drop_pts : float;
      (** max tolerated drop in improvement_pct, in points *)
  max_mips_drop_pct : float option;
      (** gate MIPS drops when set; warn-only when [None] *)
  min_mips : float option;
      (** absolute floor on every host-MIPS figure in the NEW report
          (std and per-level), independent of the old report — the hard
          gate against the fused path silently degenerating to
          interpreter speed. Off when [None]. *)
  max_relink_regress_pct : float option;
      (** gate relink cold/warm growth when set; warn-only when [None] *)
  max_size_regress_pct : float;
      (** max tolerated growth in any of text/data/GAT bytes, percent.
          Byte counts are deterministic, so this gates hard — the guard
          for the om-gc size story. Runs or benches without size data
          (pre-v5 reports) are skipped. *)
}

val default_thresholds : thresholds
(** cycles 0.5%, improvement 1.0 pts, size 0.5%, MIPS and relink
    warn-only, no MIPS floor. *)

type finding = {
  subject : string;    (** e.g. ["fib/compile-each om-full"] *)
  metric : string;     (** ["cycles"], ["improvement_pct"], ["mips"], ... *)
  old_value : float;
  new_value : float;
  delta_pct : float;   (** positive = worse (points for improvement_pct) *)
}

type outcome = {
  regressions : finding list;   (** threshold-exceeding — gate on these *)
  warnings : finding list;      (** host-dependent movement, not gating *)
  improvements : finding list;
  missing : string list;        (** in the old report but not the new *)
}

val ok : outcome -> bool
(** True iff there are no regressions (warnings and missing rows do not
    fail the gate). *)

val compare :
  ?thresholds:thresholds -> old_r:Report.t -> new_r:Report.t -> unit -> outcome

val pp_finding : Format.formatter -> finding -> unit
val pp_outcome : Format.formatter -> outcome -> unit
