type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) x)
          xs;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            escape buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            go (indent + 2) v)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing --- *)

exception Bad of int * string

let utf8_of_code buf u =
  (* encode a Unicode scalar value as UTF-8 *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let u = hex4 () in
              let u =
                (* surrogate pair *)
                if u >= 0xd800 && u <= 0xdbff && !pos + 2 <= n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00)
                end
                else u
              in
              utf8_of_code buf u
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items (v :: acc)
            | Some ']' -> incr pos; List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields (f :: acc)
            | Some '}' -> incr pos; Obj (List.rev (f :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
        end
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json: at offset %d: %s" at msg)
  | exception Failure msg -> Error ("json: " ^ msg)

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let get_int = function Int n -> Some n | _ -> None

let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_list = function List xs -> Some xs | _ -> None
