(** A minimal JSON tree, printer and parser.

    The observability layer produces (and round-trips) three kinds of
    documents — Chrome trace-event files, suite reports, and profile
    dumps — and the toolchain has no external JSON dependency, so this
    module carries just enough of RFC 8259 for those: the full value
    grammar, string escapes including [\uXXXX] (decoded to UTF-8), and a
    printer whose output the parser reads back exactly. Numbers without a
    fraction or exponent parse as [Int]; everything else as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify] drops the two-space indentation (default [false]). *)

val parse : string -> (t, string) result
(** Errors carry a character offset and a short description. *)

(** {1 Accessors} — total, option-returning. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val get_int : t -> int option
val get_float : t -> float option
(** [get_float] accepts [Int] too (JSON does not distinguish them). *)

val get_bool : t -> bool option
val get_string : t -> string option
val get_list : t -> t list option
