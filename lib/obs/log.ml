(* Leveled structured logger: one minified JSON object per line on
   stderr. Disabled unless OMLT_LOG or set_level says otherwise, so
   library code can log unconditionally without polluting CLI output. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "off" | "none" | "" -> None
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* None = logging off. Initialized lazily from OMLT_LOG; set_level
   overrides. *)
let current : level option option ref = ref None
let lock = Mutex.create ()

let init_from_env () =
  match Sys.getenv_opt "OMLT_LOG" with
  | None -> None
  | Some s -> level_of_string s

let threshold () =
  Mutex.protect lock @@ fun () ->
  match !current with
  | Some t -> t
  | None ->
      let t = init_from_env () in
      current := Some t;
      t

let set_level l = Mutex.protect lock @@ fun () -> current := Some l

let enabled l =
  match threshold () with None -> false | Some t -> rank l >= rank t

let emit l event fields =
  let ts = Unix.gettimeofday () in
  let line =
    Json.to_string ~minify:true
      (Json.Obj
         (( "ts", Json.Float ts )
         :: ( "level", Json.String (level_to_string l) )
         :: ( "event", Json.String event )
         :: fields))
  in
  (* a single write keeps lines whole across domains *)
  Mutex.protect lock @@ fun () ->
  output_string stderr (line ^ "\n");
  flush stderr

let log l ?(fields = []) event = if enabled l then emit l event fields

let debug ?fields event = log Debug ?fields event
let info ?fields event = log Info ?fields event
let warn ?fields event = log Warn ?fields event
let error ?fields event = log Error ?fields event
