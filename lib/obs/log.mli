(** Structured JSON-lines logging to stderr.

    Disabled by default: nothing is emitted unless the [OMLT_LOG]
    environment variable names a level ([debug]/[info]/[warn]/[error])
    or {!set_level} is called (e.g. from a [--log-level] flag). Each
    record is one minified JSON object:
    [{"ts":<unix seconds>,"level":"info","event":"...",<fields...>}]. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> level option
(** Recognizes [debug]/[info]/[warn]/[warning]/[error]; [off]/[none]
    and unknown strings yield [None]. *)

val level_to_string : level -> string

val set_level : level option -> unit
(** [Some l] enables records at [l] and above; [None] disables
    logging. Overrides [OMLT_LOG]. *)

val enabled : level -> bool

val debug : ?fields:(string * Json.t) list -> string -> unit
val info : ?fields:(string * Json.t) list -> string -> unit
val warn : ?fields:(string * Json.t) list -> string -> unit
val error : ?fields:(string * Json.t) list -> string -> unit
