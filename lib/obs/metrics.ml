(* The live metrics registry.

   Three instrument kinds — counters, gauges, latency histograms — live
   in a registry keyed by (name, labels). Counters and gauges are
   [Atomic] cells; histograms take a per-histogram mutex on [observe]
   (the hot callers are request- and task-grained, not per-instruction,
   so a mutex is cheap and keeps the bucket array, count, sum, min and
   max mutually consistent). Registration is get-or-create under the
   registry lock, so any domain may mint the same instrument and they
   all share one cell. *)

module StringMap = Map.Make (String)

(* --- the log-linear bucket layout ---

   HdrHistogram-lite: values 0..sub-1 get unit-width buckets; above
   that, each power-of-two tier [sub*2^(t-1), sub*2^t) is split into
   sub/2 buckets of width 2^t. Relative quantile error is bounded by
   2/sub (< 1%), and every integer below [sub] — and every bucket lower
   bound — is represented exactly, which is what makes quantiles over a
   scripted sequence of small values *exact* rather than approximate. *)

let sub_bits = 8
let sub = 1 lsl sub_bits (* 256 *)

let value_bits v =
  let rec go v n = if v = 0 then n else go (v lsr 1) (n + 1) in
  go v 0

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let t = value_bits v - sub_bits in
    sub + ((t - 1) * (sub / 2)) + ((v - (sub lsl (t - 1))) lsr t)

let bucket_lower i =
  if i < sub then i
  else
    let i' = i - sub in
    let t = (i' / (sub / 2)) + 1 in
    let off = i' mod (sub / 2) in
    (sub lsl (t - 1)) + (off lsl t)

(* enough tiers to cover every non-negative OCaml int *)
let bucket_count = bucket_index max_int + 1

(* --- instruments --- *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  h_lock : Mutex.t;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type item = {
  i_name : string;
  i_labels : (string * string) list;
  i_help : string;
  i_inst : instrument;
}

type t = {
  lock : Mutex.t;
  mutable items : item list; (* reverse registration order *)
}

let create () = { lock = Mutex.create (); items = [] }

let default = create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let find_item t ~name ~labels =
  List.find_opt
    (fun i -> String.equal i.i_name name && i.i_labels = labels)
    t.items

let register t ~name ~labels ~help make =
  Mutex.protect t.lock @@ fun () ->
  match find_item t ~name ~labels with
  | Some i -> i.i_inst
  | None ->
      let inst = make () in
      t.items <-
        { i_name = name; i_labels = labels; i_help = help; i_inst = inst }
        :: t.items;
      inst

let counter ?(registry = default) ?(labels = []) ?(help = "") name =
  let labels = canon_labels labels in
  match
    register registry ~name ~labels ~help (fun () -> Counter (Atomic.make 0))
  with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "metric %S is not a counter" name)

let gauge ?(registry = default) ?(labels = []) ?(help = "") name =
  let labels = canon_labels labels in
  match
    register registry ~name ~labels ~help (fun () -> Gauge (Atomic.make 0.))
  with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "metric %S is not a gauge" name)

let histogram ?(registry = default) ?(labels = []) ?(help = "") name =
  let labels = canon_labels labels in
  match
    register registry ~name ~labels ~help (fun () ->
        Histogram
          { h_lock = Mutex.create ();
            h_buckets = Array.make bucket_count 0;
            h_count = 0;
            h_sum = 0;
            h_min = 0;
            h_max = 0 })
  with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "metric %S is not a histogram" name)

(* --- counter / gauge operations --- *)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let set_counter c v = Atomic.set c v
let counter_value c = Atomic.get c

let set_gauge g v = Atomic.set g v

let add_gauge g d =
  (* CAS loop: atomic read-modify-write on a boxed float *)
  let rec go () =
    let old = Atomic.get g in
    if not (Atomic.compare_and_set g old (old +. d)) then go ()
  in
  go ()

let gauge_value g = Atomic.get g

(* --- histogram operations --- *)

let observe h v =
  let v = if v < 0 then 0 else v in
  Mutex.protect h.h_lock @@ fun () ->
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if h.h_count = 1 || v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observe_s h seconds =
  observe h (int_of_float (Float.round (seconds *. 1e6)))

let time h f =
  let t0 = Unix.gettimeofday () in
  let finish () = observe_s h (Unix.gettimeofday () -. t0) in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
}

(* Rank-based: the q-quantile is the value of the sample at rank
   [ceil (q * count)] (1-based). Walking the cumulative bucket counts
   finds that sample's bucket; its lower bound is the reported value —
   exact whenever the sample landed on a bucket lower bound (in
   particular for any value below [sub]). The top rank reports the
   tracked maximum, which is always exact. *)
let quantile_locked h q =
  if h.h_count = 0 then 0
  else
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    if rank >= h.h_count then h.h_max
    else begin
      let n = Array.length h.h_buckets in
      let cum = ref 0 and i = ref 0 and res = ref h.h_max in
      (try
         while !i < n do
           cum := !cum + h.h_buckets.(!i);
           if !cum >= rank then begin
             res := bucket_lower !i;
             raise Exit
           end;
           Stdlib.incr i
         done
       with Exit -> ());
      !res
    end

let quantile h q = Mutex.protect h.h_lock @@ fun () -> quantile_locked h q

let summary h =
  Mutex.protect h.h_lock @@ fun () ->
  { count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = quantile_locked h 0.50;
    p95 = quantile_locked h 0.95;
    p99 = quantile_locked h 0.99 }

let buckets h =
  Mutex.protect h.h_lock @@ fun () ->
  let acc = ref [] in
  for i = Array.length h.h_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_lower i, h.h_buckets.(i)) :: !acc
  done;
  !acc

(* --- snapshots --- *)

let items t =
  Mutex.protect t.lock @@ fun () ->
  List.sort
    (fun a b -> compare (a.i_name, a.i_labels) (b.i_name, b.i_labels))
    t.items

let find_histogram ?(registry = default) ?(labels = []) name =
  let labels = canon_labels labels in
  Mutex.protect registry.lock @@ fun () ->
  match find_item registry ~name ~labels with
  | Some { i_inst = Histogram h; _ } -> Some h
  | _ -> None

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun i ->
      let base =
        [ ("name", Json.String i.i_name); ("labels", labels_json i.i_labels) ]
      in
      match i.i_inst with
      | Counter c ->
          counters := Json.Obj (base @ [ ("value", Json.Int (Atomic.get c)) ]) :: !counters
      | Gauge g ->
          gauges := Json.Obj (base @ [ ("value", Json.Float (Atomic.get g)) ]) :: !gauges
      | Histogram h ->
          let s = summary h in
          let bs = buckets h in
          hists :=
            Json.Obj
              (base
              @ [ ("count", Json.Int s.count);
                  ("sum", Json.Int s.sum);
                  ("min", Json.Int s.min);
                  ("max", Json.Int s.max);
                  ("p50", Json.Int s.p50);
                  ("p95", Json.Int s.p95);
                  ("p99", Json.Int s.p99);
                  ( "buckets",
                    Json.List
                      (List.map
                         (fun (lo, n) ->
                           Json.List [ Json.Int lo; Json.Int n ])
                         bs) ) ])
            :: !hists)
    (items t);
  Json.Obj
    [ ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !hists)) ]

(* --- Prometheus text exposition --- *)

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_prom ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let float_prom f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus t =
  let b = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun i ->
      match i.i_inst with
      | Counter c ->
          header i.i_name "counter" i.i_help;
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" i.i_name (labels_prom i.i_labels)
               (Atomic.get c))
      | Gauge g ->
          header i.i_name "gauge" i.i_help;
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" i.i_name (labels_prom i.i_labels)
               (float_prom (Atomic.get g)))
      | Histogram h ->
          header i.i_name "histogram" i.i_help;
          let s = summary h in
          let bs = buckets h in
          let cum = ref 0 in
          List.iter
            (fun (lo, n) ->
              cum := !cum + n;
              (* [le] is the bucket's lower bound: every sample in the
                 bucket is >= lo, and the exposition stays cumulative *)
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" i.i_name
                   (labels_prom ~extra:("le", string_of_int lo) i.i_labels)
                   !cum))
            bs;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" i.i_name
               (labels_prom ~extra:("le", "+Inf") i.i_labels)
               s.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" i.i_name (labels_prom i.i_labels)
               s.sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" i.i_name (labels_prom i.i_labels)
               s.count);
          List.iter
            (fun (q, v) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" i.i_name
                   (labels_prom ~extra:("quantile", q) i.i_labels)
                   v))
            [ ("0.5", s.p50); ("0.95", s.p95); ("0.99", s.p99) ])
    (items t);
  Buffer.contents b

let reset t =
  Mutex.protect t.lock @@ fun () ->
  t.items <- []
