(** Domain-safe live metrics registry.

    Instruments are registered by name + labels; re-registering the
    same (name, labels) pair returns the existing instrument, so any
    code path (or domain) can mint its handle independently. Counters
    and gauges are lock-free atomics; histograms serialize observations
    through a per-histogram mutex.

    Latency histograms use log-linear buckets (HdrHistogram style):
    every integer value below 256 has its own bucket, and above that
    the relative width is bounded by 2/256. Quantiles are extracted by
    exact rank over the bucket counts; for observations below 256 (and
    for the maximum, always) the reported quantile equals the true
    sample value. *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh, empty registry (for tests and isolated engines). *)

val default : t
(** The process-wide registry used by the daemon, pool and suite
    instrumentation. *)

val reset : t -> unit
(** Drop every instrument. Only intended for tests. *)

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter :
  ?registry:t -> ?labels:(string * string) list -> ?help:string -> string ->
  counter
(** Get or create a monotonic counter. Raises [Invalid_argument] if the
    name is already registered as a different instrument kind. *)

val gauge :
  ?registry:t -> ?labels:(string * string) list -> ?help:string -> string ->
  gauge

val histogram :
  ?registry:t -> ?labels:(string * string) list -> ?help:string -> string ->
  histogram

val incr : ?by:int -> counter -> unit

val set_counter : counter -> int -> unit
(** Overwrite the value; used to mirror externally-maintained monotonic
    counts (e.g. [Store.counters]) into the registry. *)

val counter_value : counter -> int
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record a non-negative integer sample (negative values clamp to 0). *)

val observe_s : histogram -> float -> unit
(** Record a duration given in seconds, as rounded microseconds. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall-clock duration (microseconds),
    whether it returns or raises. *)

(** {1 Reading} *)

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  p99 : int;
}

val quantile : histogram -> float -> int
val summary : histogram -> summary

val buckets : histogram -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)] pairs, ascending. *)

val find_histogram :
  ?registry:t -> ?labels:(string * string) list -> string -> histogram option
(** Look up an already-registered histogram without creating it. *)

(** {1 Exposition} *)

val to_json : t -> Json.t
(** Snapshot: [{"counters":[...],"gauges":[...],"histograms":[...]}],
    each item carrying name, labels and current values; histograms also
    carry count/sum/min/max/p50/p95/p99 and their non-empty buckets. *)

val to_prometheus : t -> string
(** Prometheus text exposition: HELP/TYPE headers, cumulative
    [_bucket{le=...}] rows over non-empty buckets, [_sum]/[_count], and
    p50/p95/p99 as [quantile] rows. *)

(** {1 Bucket layout (exposed for tests)} *)

val bucket_index : int -> int
val bucket_lower : int -> int
