(* v1: the original schema. v2 adds the optional host-throughput fields
   ([host] on each run, [std_host] on each bench); v3 adds the optional
   [relink] field on each bench (cold vs warm link-service timings); v4
   adds the optional top-level [latency] quantiles and a [metrics]
   registry snapshot; v5 adds the optional per-image size breakdown
   ([size] on each run, [std_size] on each bench) so the om-gc size story
   is measurable per level; v6 adds the optional top-level [load] record
   (the concurrent-service load-test result: throughput, latency
   quantiles, coalesce/shed counts). The reader accepts every version,
   mapping absent fields to [None]. *)
let schema_version = 6

let accepted_versions = [ 1; 2; 3; 4; 5; 6 ]

type bucket = { insns : int; cycles : int }
type attribution = (string * bucket) list

type host = { wall_s : float; mips : float }

type relink = { cold_s : float; warm_s : float }

type size = { text_bytes : int; data_bytes : int; gat_bytes : int }

type run = {
  level : string;
  cycles : int;
  insns : int;
  improvement_pct : float;
  counters : (string * int) list;
  attribution : attribution option;
  fault : string option;
  host : host option;
  size : size option;
}

type bench = {
  bench : string;
  build : string;
  std_cycles : int;
  std_insns : int;
  std_attribution : attribution option;
  std_fault : string option;
  outputs_agree : bool;
  runs : run list;
  std_host : host option;
  relink : relink option;
  std_size : size option;
}

type quantiles = {
  q_count : int;
  q_p50_us : int;
  q_p95_us : int;
  q_p99_us : int;
  q_max_us : int;
}

type load = {
  l_profile : string;
  l_level : string;
  l_clients : int;
  l_workers : int;
  l_requests : int;
  l_ok : int;
  l_failed : int;
  l_overloaded : int;
  l_timeouts : int;
  l_coalesced : int;
  l_mismatched : int;
  l_wall_s : float;
  l_throughput_rps : float;
  l_latency : quantiles;
}

type t = {
  version : int;
  tool : string;
  results : bench list;
  latency : quantiles option;
  metrics : Json.t option;
  load : load option;
}

let make ?(tool = "omlt") ?latency ?metrics ?load results =
  { version = schema_version; tool; results; latency; metrics; load }

let attribution_of_profile (p : Attr.t) =
  List.map
    (fun c ->
      let b = Attr.bucket p.Attr.totals c in
      (Attr.category_name c, { insns = b.Attr.b_insns; cycles = b.Attr.b_cycles }))
    Attr.all_categories

(* --- to json --- *)

let opt_string = function None -> Json.Null | Some s -> Json.String s

let attribution_json = function
  | None -> Json.Null
  | Some a ->
      Json.Obj
        (List.map
           (fun (name, (b : bucket)) ->
             ( name,
               Json.Obj
                 [ ("insns", Json.Int b.insns); ("cycles", Json.Int b.cycles) ]
             ))
           a)

let relink_json = function
  | None -> Json.Null
  | Some r ->
      Json.Obj
        [ ("cold_s", Json.Float r.cold_s); ("warm_s", Json.Float r.warm_s) ]

let host_json = function
  | None -> Json.Null
  | Some h ->
      Json.Obj
        [ ("wall_s", Json.Float h.wall_s); ("mips", Json.Float h.mips) ]

let size_json = function
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [ ("text_bytes", Json.Int s.text_bytes);
          ("data_bytes", Json.Int s.data_bytes);
          ("gat_bytes", Json.Int s.gat_bytes) ]

let run_json r =
  Json.Obj
    [ ("level", Json.String r.level);
      ("cycles", Json.Int r.cycles);
      ("insns", Json.Int r.insns);
      ("improvement_pct", Json.Float r.improvement_pct);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
      ("attribution", attribution_json r.attribution);
      ("fault", opt_string r.fault);
      ("host", host_json r.host);
      ("size", size_json r.size) ]

let bench_json b =
  Json.Obj
    [ ("bench", Json.String b.bench);
      ("build", Json.String b.build);
      ("std_cycles", Json.Int b.std_cycles);
      ("std_insns", Json.Int b.std_insns);
      ("std_attribution", attribution_json b.std_attribution);
      ("std_fault", opt_string b.std_fault);
      ("outputs_agree", Json.Bool b.outputs_agree);
      ("runs", Json.List (List.map run_json b.runs));
      ("std_host", host_json b.std_host);
      ("relink", relink_json b.relink);
      ("std_size", size_json b.std_size) ]

let quantiles_json = function
  | None -> Json.Null
  | Some q ->
      Json.Obj
        [ ("count", Json.Int q.q_count);
          ("p50_us", Json.Int q.q_p50_us);
          ("p95_us", Json.Int q.q_p95_us);
          ("p99_us", Json.Int q.q_p99_us);
          ("max_us", Json.Int q.q_max_us) ]

let load_json = function
  | None -> Json.Null
  | Some l ->
      Json.Obj
        [ ("profile", Json.String l.l_profile);
          ("level", Json.String l.l_level);
          ("clients", Json.Int l.l_clients);
          ("workers", Json.Int l.l_workers);
          ("requests", Json.Int l.l_requests);
          ("ok", Json.Int l.l_ok);
          ("failed", Json.Int l.l_failed);
          ("overloaded", Json.Int l.l_overloaded);
          ("timeouts", Json.Int l.l_timeouts);
          ("coalesced", Json.Int l.l_coalesced);
          ("mismatched", Json.Int l.l_mismatched);
          ("wall_s", Json.Float l.l_wall_s);
          ("throughput_rps", Json.Float l.l_throughput_rps);
          ("latency", quantiles_json (Some l.l_latency)) ]

let to_json t =
  Json.Obj
    [ ("schema_version", Json.Int t.version);
      ("tool", Json.String t.tool);
      ("results", Json.List (List.map bench_json t.results));
      ("latency", quantiles_json t.latency);
      ("metrics", (match t.metrics with None -> Json.Null | Some m -> m));
      ("load", load_json t.load) ]

(* --- from json --- *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let opt_string_of j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.get_string v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let attribution_of_json name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Obj fields) ->
      let* buckets =
        List.fold_left
          (fun acc (cat, v) ->
            let* acc = acc in
            let* insns = field "insns" Json.get_int v in
            let* cycles = field "cycles" Json.get_int v in
            Ok ((cat, { insns; cycles }) :: acc))
          (Ok []) fields
      in
      Ok (Some (List.rev buckets))
  | Some _ -> Error (Printf.sprintf "field %S has the wrong type" name)

let counters_of_json j =
  match Json.member "counters" j with
  | None -> Ok []
  | Some (Json.Obj fields) ->
      let* kv =
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Json.get_int v with
            | Some n -> Ok ((k, n) :: acc)
            | None -> Error (Printf.sprintf "counter %S is not an int" k))
          (Ok []) fields
      in
      Ok (List.rev kv)
  | Some _ -> Error "field \"counters\" has the wrong type"

(* Absent in v1 documents, so a missing field is [None], not an error. *)
let host_of_json name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* wall_s = field "wall_s" Json.get_float v in
      let* mips = field "mips" Json.get_float v in
      Ok (Some { wall_s; mips })

(* Absent before v5, so a missing field is [None], not an error. *)
let size_of_json name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* text_bytes = field "text_bytes" Json.get_int v in
      let* data_bytes = field "data_bytes" Json.get_int v in
      let* gat_bytes = field "gat_bytes" Json.get_int v in
      Ok (Some { text_bytes; data_bytes; gat_bytes })

(* Absent before v3, so a missing field is [None], not an error. *)
let relink_of_json j =
  match Json.member "relink" j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* cold_s = field "cold_s" Json.get_float v in
      let* warm_s = field "warm_s" Json.get_float v in
      Ok (Some { cold_s; warm_s })

let run_of_json j =
  let* level = field "level" Json.get_string j in
  let* cycles = field "cycles" Json.get_int j in
  let* insns = field "insns" Json.get_int j in
  let* improvement_pct = field "improvement_pct" Json.get_float j in
  let* counters = counters_of_json j in
  let* attribution = attribution_of_json "attribution" j in
  let* fault = opt_string_of j "fault" in
  let* host = host_of_json "host" j in
  let* size = size_of_json "size" j in
  Ok
    { level;
      cycles;
      insns;
      improvement_pct;
      counters;
      attribution;
      fault;
      host;
      size }

let bench_of_json j =
  let* bench = field "bench" Json.get_string j in
  let* build = field "build" Json.get_string j in
  let* std_cycles = field "std_cycles" Json.get_int j in
  let* std_insns = field "std_insns" Json.get_int j in
  let* std_attribution = attribution_of_json "std_attribution" j in
  let* std_fault = opt_string_of j "std_fault" in
  let* outputs_agree = field "outputs_agree" Json.get_bool j in
  let* run_list = field "runs" Json.get_list j in
  let* runs =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* r = run_of_json r in
        Ok (r :: acc))
      (Ok []) run_list
  in
  let* std_host = host_of_json "std_host" j in
  let* relink = relink_of_json j in
  let* std_size = size_of_json "std_size" j in
  Ok
    { bench;
      build;
      std_cycles;
      std_insns;
      std_attribution;
      std_fault;
      outputs_agree;
      runs = List.rev runs;
      std_host;
      relink;
      std_size }

let quantiles_fields v =
  let* q_count = field "count" Json.get_int v in
  let* q_p50_us = field "p50_us" Json.get_int v in
  let* q_p95_us = field "p95_us" Json.get_int v in
  let* q_p99_us = field "p99_us" Json.get_int v in
  let* q_max_us = field "max_us" Json.get_int v in
  Ok { q_count; q_p50_us; q_p95_us; q_p99_us; q_max_us }

(* Absent before v4, so a missing field is [None], not an error. *)
let quantiles_of_json j =
  match Json.member "latency" j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* q = quantiles_fields v in
      Ok (Some q)

(* Absent before v6, so a missing field is [None], not an error. *)
let load_of_json j =
  match Json.member "load" j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* l_profile = field "profile" Json.get_string v in
      let* l_level = field "level" Json.get_string v in
      let* l_clients = field "clients" Json.get_int v in
      let* l_workers = field "workers" Json.get_int v in
      let* l_requests = field "requests" Json.get_int v in
      let* l_ok = field "ok" Json.get_int v in
      let* l_failed = field "failed" Json.get_int v in
      let* l_overloaded = field "overloaded" Json.get_int v in
      let* l_timeouts = field "timeouts" Json.get_int v in
      let* l_coalesced = field "coalesced" Json.get_int v in
      let* l_mismatched = field "mismatched" Json.get_int v in
      let* l_wall_s = field "wall_s" Json.get_float v in
      let* l_throughput_rps = field "throughput_rps" Json.get_float v in
      let* l_latency =
        match Json.member "latency" v with
        | None | Some Json.Null -> Error "load record carries no latency"
        | Some q -> quantiles_fields q
      in
      Ok
        (Some
           { l_profile;
             l_level;
             l_clients;
             l_workers;
             l_requests;
             l_ok;
             l_failed;
             l_overloaded;
             l_timeouts;
             l_coalesced;
             l_mismatched;
             l_wall_s;
             l_throughput_rps;
             l_latency })

let of_json j =
  let* version = field "schema_version" Json.get_int j in
  if not (List.mem version accepted_versions) then
    Error
      (Printf.sprintf "unsupported schema_version %d (this reader speaks %d)"
         version schema_version)
  else
    let* tool = field "tool" Json.get_string j in
    let* result_list = field "results" Json.get_list j in
    let* results =
      List.fold_left
        (fun acc b ->
          let* acc = acc in
          let* b = bench_of_json b in
          Ok (b :: acc))
        (Ok []) result_list
    in
    let* latency = quantiles_of_json j in
    let metrics =
      match Json.member "metrics" j with
      | None | Some Json.Null -> None
      | Some m -> Some m
    in
    let* load = load_of_json j in
    Ok { version; tool; results = List.rev results; latency; metrics; load }

(* --- files --- *)

let write path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n'

let read path =
  let* text =
    try
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      Ok (really_input_string ic (in_channel_length ic))
    with Sys_error m -> Error m
  in
  let* j = Json.parse text in
  of_json j
