(** Machine-readable suite reports.

    A versioned JSON schema for benchmark-matrix results: per benchmark
    and build style, the standard link's cycle count plus one record per
    optimization level with cycles, static size, optimizer counters, and
    (optionally) the dynamic cycle-attribution buckets from {!Attr}. The
    bench harness writes [BENCH_report.json] in this schema and
    [omlink suite --json] prints it, so downstream tooling (and future
    PRs tracking the perf trajectory) parse one format.

    The schema is deliberately self-describing: {!of_json} refuses
    documents whose [schema_version] it does not understand, and
    {!to_json}/{!of_json} round-trip exactly. Version 2 added the
    optional host-throughput fields ([host], [std_host]); version 3
    added the optional cold-vs-warm link-service timings ([relink]);
    version 4 added the optional top-level [latency] quantiles (pool
    task latency over the whole matrix) and [metrics], a full
    {!Metrics.to_json} registry snapshot; version 5 added the optional
    per-image size breakdown ([size] on each run, [std_size] on each
    bench) so per-level text/data/GAT byte counts — the om-gc size
    story — live in the same document as the cycle counts; version 6
    added the optional top-level [load] record, the concurrent
    link-service load-test result (throughput, latency quantiles,
    coalesce/shed/failure counts vs worker count). The reader still
    accepts earlier documents, surfacing those fields as [None]. *)

val schema_version : int
(** The version {!make} stamps on new reports (currently 6). *)

val accepted_versions : int list
(** The versions {!of_json} understands. *)

type bucket = { insns : int; cycles : int }

type attribution = (string * bucket) list
(** category name (see {!Attr.category_name}) -> dynamic cost *)

type host = { wall_s : float; mips : float }
(** Host-side throughput of the simulation itself: wall-clock seconds
    and simulated millions of instructions per second. *)

type relink = { cold_s : float; warm_s : float }
(** Link-service timings for the same program: a cold link (empty
    artifact store) vs a warm incremental relink after a one-module
    edit (cached lifts for every unchanged module). *)

type size = { text_bytes : int; data_bytes : int; gat_bytes : int }
(** Static image size: text segment bytes, data segment bytes (including
    the zero-filled tail), and the linked GAT's extent (a sub-range of
    data, counted separately because GAT reduction is the paper's
    headline size effect). Measured identically for standard and
    optimized links. *)

type run = {
  level : string;            (** {!Om.level_name}, e.g. ["om-full"] *)
  cycles : int;
  insns : int;               (** static text instructions *)
  improvement_pct : float;   (** dynamic cycles vs the standard link *)
  counters : (string * int) list;  (** optimizer statistics, flat *)
  attribution : attribution option;
  fault : string option;     (** simulation fault, when the run died *)
  host : host option;        (** absent in v1 documents *)
  size : size option;        (** absent before v5 *)
}

type bench = {
  bench : string;
  build : string;
  std_cycles : int;
  std_insns : int;
  std_attribution : attribution option;
  std_fault : string option;
  outputs_agree : bool;
  runs : run list;
  std_host : host option;    (** absent in v1 documents *)
  relink : relink option;    (** absent before v3 *)
  std_size : size option;    (** absent before v5 *)
}

type quantiles = {
  q_count : int;             (** samples behind the quantiles *)
  q_p50_us : int;
  q_p95_us : int;
  q_p99_us : int;
  q_max_us : int;
}
(** Latency quantiles in microseconds (absent before v4). *)

type load = {
  l_profile : string;        (** request mix: ["cold"], ["dup"], ["mixed"] *)
  l_level : string;          (** link level the requests asked for *)
  l_clients : int;           (** concurrent client threads *)
  l_workers : int;           (** daemon worker domains *)
  l_requests : int;          (** requests offered *)
  l_ok : int;
  l_failed : int;            (** hard failures (not shed, not timed out) *)
  l_overloaded : int;        (** shed with a structured [overloaded] *)
  l_timeouts : int;
  l_coalesced : int;         (** replies marked deduplicated in-flight *)
  l_mismatched : int;        (** image bytes differing from the oracle *)
  l_wall_s : float;
  l_throughput_rps : float;  (** completed requests per wall second *)
  l_latency : quantiles;     (** per-request round-trip latency *)
}
(** One load-generator run against the concurrent daemon (absent
    before v6). *)

type t = {
  version : int;
  tool : string;
  results : bench list;
  latency : quantiles option;  (** absent before v4 *)
  metrics : Json.t option;     (** registry snapshot; absent before v4 *)
  load : load option;          (** absent before v6 *)
}

val make :
  ?tool:string -> ?latency:quantiles -> ?metrics:Json.t -> ?load:load ->
  bench list -> t
(** [tool] defaults to ["omlt"]. [version] is {!schema_version}. *)

val attribution_of_profile : Attr.t -> attribution
(** The whole-program category buckets of a profile. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val write : string -> t -> unit
val read : string -> (t, string) result
