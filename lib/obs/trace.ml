type span = {
  name : string;
  depth : int;
  start_us : float;
  dur_us : float;
  counters : (string * int) list;
}

type collector = {
  mutable recorded : span list;  (* reverse start order *)
  mutable depth : int;
  t0 : float;
}

let now_us () = Unix.gettimeofday () *. 1e6

let collector () = { recorded = []; depth = 0; t0 = now_us () }

let spans c =
  (* recorded holds spans in completion order; sort back to start order *)
  List.sort
    (fun a b -> compare (a.start_us, a.depth) (b.start_us, b.depth))
    (List.rev c.recorded)

let current : collector option ref = ref None
let install c = current := c
let active () = Option.is_some !current

let span ?counters name f =
  match !current with
  | None -> f ()
  | Some c ->
      let depth = c.depth in
      c.depth <- depth + 1;
      let start = now_us () in
      let finish () =
        let dur_us = now_us () -. start in
        c.depth <- depth;
        let counters =
          match counters with None -> [] | Some g -> ( try g () with _ -> [])
        in
        c.recorded <-
          { name; depth; start_us = start -. c.t0; dur_us; counters }
          :: c.recorded
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let with_collector f =
  let saved = !current in
  let c = collector () in
  current := Some c;
  Fun.protect ~finally:(fun () -> current := saved) @@ fun () ->
  let v = f () in
  (c, v)

let to_chrome_json c =
  Json.List
    (List.map
       (fun (s : span) ->
         let base =
           [ ("name", Json.String s.name);
             ("cat", Json.String "om");
             ("ph", Json.String "X");
             ("ts", Json.Float s.start_us);
             ("dur", Json.Float s.dur_us);
             ("pid", Json.Int 1);
             ("tid", Json.Int 1) ]
         in
         let args =
           match s.counters with
           | [] -> []
           | kv ->
               [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kv)) ]
         in
         Json.Obj (base @ args))
       (spans c))

let pp_summary ppf c =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%-*s %9.3f ms" (String.make (2 * s.depth) ' ')
        (max 1 (28 - (2 * s.depth)))
        s.name (s.dur_us /. 1000.);
      List.iter
        (fun (k, v) -> if v <> 0 then Format.fprintf ppf "  %s=%d" k v)
        s.counters;
      Format.fprintf ppf "@,")
    (spans c);
  Format.fprintf ppf "@]"
