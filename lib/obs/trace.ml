type span = {
  name : string;
  depth : int;
  start_us : float;
  dur_us : float;
  counters : (string * int) list;
  tid : int;
}

(* Completed spans from every domain funnel into one mutex-guarded
   sink; the per-domain state (nesting depth) lives in the collector,
   which is domain-local. *)
type sink = { s_lock : Mutex.t; mutable s_recorded : span list }

type collector = {
  sink : sink;
  mutable depth : int;
  t0 : float;
}

let now_us () = Unix.gettimeofday () *. 1e6

let collector () =
  { sink = { s_lock = Mutex.create (); s_recorded = [] };
    depth = 0;
    t0 = now_us () }

let worker c = { sink = c.sink; depth = 0; t0 = c.t0 }

let spans c =
  let recorded =
    Mutex.protect c.sink.s_lock @@ fun () -> c.sink.s_recorded
  in
  (* recorded holds spans in completion order; sort back to start order *)
  List.sort
    (fun a b -> compare (a.start_us, a.tid, a.depth) (b.start_us, b.tid, b.depth))
    (List.rev recorded)

(* The ambient collector is domain-local: installing one on the main
   domain does not leak into pool workers (each worker installs its own
   [worker] view over the shared sink). *)
let key : collector option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install c = Domain.DLS.set key c
let ambient () = Domain.DLS.get key
let active () = Option.is_some (ambient ())

let span ?counters name f =
  match ambient () with
  | None -> f ()
  | Some c ->
      let depth = c.depth in
      c.depth <- depth + 1;
      let tid = (Domain.self () :> int) in
      let start = now_us () in
      let finish () =
        let dur_us = now_us () -. start in
        c.depth <- depth;
        let counters =
          match counters with None -> [] | Some g -> ( try g () with _ -> [])
        in
        let s =
          { name; depth; start_us = start -. c.t0; dur_us; counters; tid }
        in
        Mutex.protect c.sink.s_lock @@ fun () ->
        c.sink.s_recorded <- s :: c.sink.s_recorded
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let with_collector f =
  let saved = ambient () in
  let c = collector () in
  install (Some c);
  Fun.protect ~finally:(fun () -> install saved) @@ fun () ->
  let v = f () in
  (c, v)

let to_chrome_json c =
  Json.List
    (List.map
       (fun (s : span) ->
         let base =
           [ ("name", Json.String s.name);
             ("cat", Json.String "om");
             ("ph", Json.String "X");
             ("ts", Json.Float s.start_us);
             ("dur", Json.Float s.dur_us);
             ("pid", Json.Int 1);
             ("tid", Json.Int s.tid) ]
         in
         let args =
           match s.counters with
           | [] -> []
           | kv ->
               [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kv)) ]
         in
         Json.Obj (base @ args))
       (spans c))

let pp_summary ppf c =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%-*s %9.3f ms" (String.make (2 * s.depth) ' ')
        (max 1 (28 - (2 * s.depth)))
        s.name (s.dur_us /. 1000.);
      List.iter
        (fun (k, v) -> if v <> 0 then Format.fprintf ppf "  %s=%d" k v)
        s.counters;
      Format.fprintf ppf "@,")
    (spans c);
  Format.fprintf ppf "@]"
