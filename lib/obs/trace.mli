(** Pass-level span tracing.

    The OM pipeline (and anything else that wants to) wraps each phase in
    {!span}. When no collector is installed — the default — a span is a
    single match on a global ref and the traced function runs undisturbed,
    so instrumented code pays nothing in production. When a collector is
    installed the span records wall time and an optional bag of integer
    counters (the optimizer attaches per-pass {!Om.Stats} deltas).

    Completed traces export two ways: {!to_chrome_json} produces the
    Chrome/Perfetto trace-event format (load it at [chrome://tracing]),
    and {!pp_summary} prints an indented ASCII profile. *)

type span = {
  name : string;
  depth : int;           (** nesting depth at the time the span opened *)
  start_us : float;      (** microseconds since the collector was created *)
  dur_us : float;
  counters : (string * int) list;
  tid : int;             (** id of the domain that recorded the span *)
}

type collector

val collector : unit -> collector
val spans : collector -> span list
(** Completed spans in start order — including spans recorded by worker
    collectors sharing this collector's sink. *)

val install : collector option -> unit
(** Set or clear the ambient collector {e for the current domain}.
    [None] is the default: spans become no-ops. Collectors are
    domain-local; installing one on the main domain does not make
    spawned domains trace. *)

val ambient : unit -> collector option
(** The collector installed on the current domain, if any. *)

val worker : collector -> collector
(** A fresh depth-0 collector feeding the same sink (and sharing the
    same time origin). Spawned domains install one of these so their
    spans merge into the parent trace without racing on its nesting
    depth. *)

val active : unit -> bool

val span : ?counters:(unit -> (string * int) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span around it when a collector is
    installed. [counters] is evaluated after [f] returns (or raises), so
    it can report deltas accumulated during the span. Exceptions
    propagate; the span is recorded either way. *)

val with_collector : (unit -> 'a) -> collector * 'a
(** Install a fresh collector for the duration of [f], restoring the
    previous one after — even on exceptions, which propagate. *)

val to_chrome_json : collector -> Json.t
(** Trace-event format: an array of complete ("ph":"X") events. *)

val pp_summary : Format.formatter -> collector -> unit
(** Indented ASCII profile: one line per span with duration and nonzero
    counters. *)
