module R = Isa.Reg
module I = Isa.Insn
module S = Symbolic

type use_status = All_marked of S.node list | Escapes

type call_kind =
  | Direct of { callee : int; via : [ `Jsr of S.node | `Bsr ] }
  | Indirect

type callsite = {
  cs_proc : int;
  cs_node : S.node;
  cs_kind : call_kind;
  cs_reset : (S.node * S.node) option;
}

type t = {
  program : S.program;
  callsites : callsite list;
  address_taken : bool array;
  gatload_status : (int, use_status) Hashtbl.t;
  live_out : (int, int) Hashtbl.t;
  label_home : (S.label, int * S.node) Hashtbl.t;
}

let reg_bit r = 1 lsl R.to_int r

let mask_of rs =
  List.fold_left (fun acc r -> acc lor reg_bit r) 0
    (List.filter (fun r -> not (R.equal r R.zero)) rs)

let caller_saved_mask = mask_of R.caller_saved lor reg_bit R.gp

(* Classification of nodes that transfer control or call. *)
type flow =
  | Fall                      (* ordinary instruction *)
  | Call                      (* jsr / cross-procedure bsr / pal *)
  | Cond of S.label           (* conditional branch *)
  | Goto of S.label           (* unconditional branch *)
  | Stop                      (* ret, indirect jmp *)

let flow_of ~same_proc_label (n : S.node) =
  match n.S.insn with
  | S.Branch { insn = I.Bcond _; target } -> Cond target
  | S.Branch { insn = I.Br _; target } ->
      if same_proc_label target then Goto target else Call (* tail-ish *)
  | S.Branch { insn = I.Bsr _; target } ->
      if same_proc_label target then Cond target (* local bsr: treat as call below *)
      else Call
  | S.Branch _ -> Stop
  | S.Raw (I.Jump { kind = I.Jsr; _ }) | S.Use { insn = I.Jump { kind = I.Jsr; _ }; _ }
    -> Call
  | S.Raw (I.Jump { kind = I.Ret | I.Jmp; _ }) -> Stop
  | S.Raw (I.Call_pal _) -> Call
  | _ -> Fall

let is_call_node (n : S.node) ~same_proc_label =
  match n.S.insn with
  | S.Raw (I.Jump { kind = I.Jsr; _ })
  | S.Use { insn = I.Jump { kind = I.Jsr; _ }; _ } -> true
  | S.Branch { insn = I.Bsr _; target } -> not (same_proc_label target)
  | _ -> false

(* Effective register effects, treating calls as clobbering/reading per the
   calling convention. *)
let eff_defs_uses ~same_proc_label (n : S.node) =
  if is_call_node n ~same_proc_label then
    let uses =
      mask_of R.[ a0; a1; a2; a3; a4; a5; sp; gp ]
      lor mask_of (S.uses n.S.insn)
    in
    (caller_saved_mask, uses)
  else
    match n.S.insn with
    | S.Raw (I.Call_pal _) ->
        (mask_of [ R.v0 ], mask_of R.[ v0; a0; a1; a2 ])
    | i -> (mask_of (S.defs i), mask_of (S.uses i))

(* exit liveness: result, stack, callee-saved, GP *)
let exit_mask =
  mask_of R.[ v0; sp; gp; s0; s1; s2; s3; s4; s5; fp ]

let run ?(local_only = false) ?(section_live = fun _ _ -> true)
    (program : S.program) =
  let world = program.S.world in
  (* label homes *)
  let label_home = Hashtbl.create 256 in
  Array.iteri
    (fun pi (proc : S.proc) ->
      List.iter
        (fun (n : S.node) ->
          List.iter (fun l -> Hashtbl.replace label_home l (pi, n)) n.S.labels)
        proc.S.body)
    program.S.procs;
  let live_out : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* --- per-procedure liveness --- *)
  Array.iteri
    (fun pi (proc : S.proc) ->
      let body = Array.of_list proc.S.body in
      let n = Array.length body in
      let proc_labels = Hashtbl.create 16 in
      Array.iteri
        (fun i (nd : S.node) ->
          List.iter (fun l -> Hashtbl.replace proc_labels l i) nd.S.labels)
        body;
      let same_proc_label l = Hashtbl.mem proc_labels l in
      (* block starts *)
      let starts = Array.make n false in
      if n > 0 then starts.(0) <- true;
      Array.iteri
        (fun i (nd : S.node) ->
          if nd.S.labels <> [] then starts.(i) <- true;
          match flow_of ~same_proc_label nd with
          | Cond _ | Goto _ | Stop ->
              if i + 1 < n then starts.(i + 1) <- true
          | Call | Fall -> ())
        body;
      (* block list: (first, last) inclusive *)
      let blocks = ref [] in
      let i = ref 0 in
      while !i < n do
        let first = !i in
        let j = ref first in
        while
          !j + 1 < n
          && not starts.(!j + 1)
        do
          incr j
        done;
        blocks := (first, !j) :: !blocks;
        i := !j + 1
      done;
      let blocks = Array.of_list (List.rev !blocks) in
      let nb = Array.length blocks in
      let block_of_index = Array.make n 0 in
      Array.iteri
        (fun b (first, last) ->
          for k = first to last do
            block_of_index.(k) <- b
          done)
        blocks;
      let succs b =
        let _, last = blocks.(b) in
        let fallthrough =
          if last + 1 < n then [ block_of_index.(last + 1) ] else []
        in
        match flow_of ~same_proc_label body.(last) with
        | Fall | Call -> fallthrough
        | Stop -> []
        | Goto l -> (
            match Hashtbl.find_opt proc_labels l with
            | Some k -> [ block_of_index.(k) ]
            | None -> [])
        | Cond l -> (
            match Hashtbl.find_opt proc_labels l with
            | Some k -> block_of_index.(k) :: fallthrough
            | None -> fallthrough)
      in
      (* iterate backward dataflow *)
      let live_in = Array.make nb 0 in
      let live_out_blk = Array.make nb 0 in
      let block_exit b =
        let _, last = blocks.(b) in
        match flow_of ~same_proc_label body.(last) with
        | Stop -> exit_mask
        | _ -> if last + 1 >= n then exit_mask else 0
      in
      let changed = ref true in
      while !changed do
        changed := false;
        for b = nb - 1 downto 0 do
          let out =
            List.fold_left (fun acc s -> acc lor live_in.(s)) (block_exit b)
              (succs b)
          in
          let first, last = blocks.(b) in
          let live = ref out in
          for k = last downto first do
            let d, u = eff_defs_uses ~same_proc_label body.(k) in
            live := !live land lnot d lor u
          done;
          if out <> live_out_blk.(b) || !live <> live_in.(b) then begin
            live_out_blk.(b) <- out;
            live_in.(b) <- !live;
            changed := true
          end
        done
      done;
      (* record per-node live-out *)
      Array.iteri
        (fun b (first, last) ->
          let live = ref live_out_blk.(b) in
          for k = last downto first do
            Hashtbl.replace live_out body.(k).S.nid !live;
            let d, u = eff_defs_uses ~same_proc_label body.(k) in
            live := !live land lnot d lor u
          done)
        blocks;
      ignore pi)
    program.S.procs;
  (* --- call sites --- *)
  let callsites = ref [] in
  Array.iteri
    (fun pi (proc : S.proc) ->
      let body = Array.of_list proc.S.body in
      let n = Array.length body in
      let proc_labels = Hashtbl.create 16 in
      Array.iteri
        (fun i (nd : S.node) ->
          List.iter (fun l -> Hashtbl.replace proc_labels l i) nd.S.labels)
        body;
      let same_proc_label l = Hashtbl.mem proc_labels l in
      let node_index = Hashtbl.create 64 in
      Array.iteri (fun i (nd : S.node) -> Hashtbl.replace node_index nd.S.nid i)
        body;
      (* resets: Gpsetup_hi anchored at the node right after a call *)
      let reset_of_call : (int, S.node * S.node) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun (nd : S.node) ->
          match nd.S.insn with
          | S.Gpsetup_hi { anchor = S.Alocal l; lo_id; _ } -> (
              match Hashtbl.find_opt proc_labels l with
              | Some k when k > 0 -> (
                  let call = body.(k - 1) in
                  match S.find_node proc lo_id with
                  | Some lo ->
                      Hashtbl.replace reset_of_call call.S.nid (nd, lo)
                  | None -> ())
              | _ -> ())
          | _ -> ())
        body;
      let find_load id =
        match S.find_node proc id with
        | Some ({ S.insn = S.Gatload _; _ } as nd) -> Some nd
        | _ -> None
      in
      for i = 0 to n - 1 do
        let nd = body.(i) in
        let mk kind =
          callsites :=
            { cs_proc = pi;
              cs_node = nd;
              cs_kind = kind;
              cs_reset = Hashtbl.find_opt reset_of_call nd.S.nid }
            :: !callsites
        in
        match nd.S.insn with
        | S.Use { insn = I.Jump { kind = I.Jsr; _ }; load_id; jsr = true } -> (
            match find_load load_id with
            | Some ({ S.insn = S.Gatload { key = S.Paddr (Linker.Resolve.Tproc p, 0); _ }; _ }
                    as load) ->
                mk (Direct { callee = p; via = `Jsr load })
            | _ -> mk Indirect)
        | S.Raw (I.Jump { kind = I.Jsr; _ }) -> mk Indirect
        | S.Branch { insn = I.Bsr _; target } when not (same_proc_label target)
          -> (
            match Hashtbl.find_opt label_home target with
            | Some (tpi, _) ->
                mk
                  (Direct
                     { callee = program.S.procs.(tpi).S.sp_index; via = `Bsr })
            | None -> mk Indirect)
        | S.Branch { insn = I.Bsr _; target } when same_proc_label target ->
            (* recursive bsr inside the same procedure *)
            mk (Direct { callee = proc.S.sp_index; via = `Bsr })
        | _ -> ()
      done)
    program.S.procs;
  (* --- gatload use chains --- *)
  let gatload_status : (int, use_status) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (proc : S.proc) ->
      let body = Array.of_list proc.S.body in
      let n = Array.length body in
      let proc_labels = Hashtbl.create 16 in
      Array.iteri
        (fun i (nd : S.node) ->
          List.iter (fun l -> Hashtbl.replace proc_labels l i) nd.S.labels)
        body;
      let same_proc_label l = Hashtbl.mem proc_labels l in
      for i = 0 to n - 1 do
        match body.(i).S.insn with
        | S.Gatload { ra; _ } ->
            let load = body.(i) in
            let bit = reg_bit ra in
            let rec scan k acc =
              if k >= n then
                (* fell off the procedure *)
                if exit_mask land bit <> 0 then Escapes else All_marked acc
              else begin
                let nd = body.(k) in
                if nd.S.labels <> [] then
                  (* control-flow join *)
                  if local_only then Escapes
                  else if
                    Hashtbl.find_opt live_out (body.(k - 1)).S.nid
                    |> Option.value ~default:bit
                    |> ( land ) bit <> 0
                  then Escapes
                  else All_marked acc
                else
                  let d, u = eff_defs_uses ~same_proc_label nd in
                  let marked =
                    match nd.S.insn with
                    | S.Use { load_id; _ } -> load_id = load.S.nid
                    | _ -> false
                  in
                  if marked then
                    let acc = nd :: acc in
                    if d land bit <> 0 then All_marked acc
                    else continue_scan k acc
                  else if u land bit <> 0 then Escapes
                  else if d land bit <> 0 then All_marked acc
                  else continue_scan k acc
              end
            and continue_scan k acc =
              let nd = body.(k) in
              match flow_of ~same_proc_label nd with
              | Fall | Call -> scan (k + 1) acc
              | Goto _ | Cond _ | Stop ->
                  (* end of block *)
                  if local_only then
                    (* a traditional linker stops at the first branch *)
                    Escapes
                  else if
                    Hashtbl.find_opt live_out nd.S.nid
                    |> Option.value ~default:bit
                    |> ( land ) bit <> 0
                  then Escapes
                  else All_marked acc
            in
            let status = scan (i + 1) [] in
            Hashtbl.replace gatload_status load.S.nid
              (match status with
              | All_marked acc -> All_marked (List.rev acc)
              | Escapes -> Escapes)
        | _ -> ()
      done)
    program.S.procs;
  (* --- address-taken procedures --- *)
  let address_taken = Array.make (Array.length world.Linker.Resolve.procs) false in
  address_taken.(world.Linker.Resolve.entry_proc) <- true;
  Array.iteri
    (fun m (u : Objfile.Cunit.t) ->
      List.iter
        (fun (r : Objfile.Reloc.t) ->
          match r.kind with
          (* a reference from GC'd data is no escape: the PV can still be
             devirtualized and its prologue setup deleted *)
          | Objfile.Reloc.Refquad { symbol; _ }
            when section_live m r.section -> (
              match Linker.Resolve.resolve world m symbol with
              | Some (Linker.Resolve.Tproc p) -> address_taken.(p) <- true
              | _ -> ())
          | _ -> ())
        u.Objfile.Cunit.relocs)
    world.Linker.Resolve.modules;
  S.iter_nodes program (fun _proc nd ->
      match nd.S.insn with
      | S.Gatload { key = S.Paddr (Linker.Resolve.Tproc p, addend); _ } -> (
          match Hashtbl.find_opt gatload_status nd.S.nid with
          | Some (All_marked uses)
            when addend = 0
                 && List.for_all
                      (fun (u : S.node) ->
                        match u.S.insn with
                        | S.Use { jsr = true; _ } -> true
                        | _ -> false)
                      uses
                 && uses <> [] -> ()
          | _ -> address_taken.(p) <- true)
      | _ -> ());
  { program;
    callsites = List.rev !callsites;
    address_taken;
    gatload_status;
    live_out;
    label_home }
