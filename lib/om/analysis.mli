(** Program analysis over the symbolic form.

    This is the "understanding of program structure that is thorough but
    not difficult at link-time" the paper relies on: basic-block recovery,
    register liveness, call-site discovery (with the PV address load and
    the GP-reset pair attached to each site), use-chains of address loads,
    and the set of procedures whose address escapes into data. *)

type use_status =
  | All_marked of Symbolic.node list
      (** every consumer of the loaded register before its death carries a
          LITUSE link; the listed nodes are those consumers *)
  | Escapes
      (** the register reaches an unmarked instruction, a control-flow
          join, or is live out of the block — the load's value cannot be
          reconstructed by rewriting its uses *)

type call_kind =
  | Direct of { callee : int; via : [ `Jsr of Symbolic.node | `Bsr ] }
      (** [callee] indexes {!Linker.Resolve.t}'s procs; [`Jsr n] carries
          the PV address-load node *)
  | Indirect
      (** through a procedure variable: the destination cannot be
          examined *)

type callsite = {
  cs_proc : int;                       (** index into [program.procs] *)
  cs_node : Symbolic.node;             (** the jsr/bsr itself *)
  cs_kind : call_kind;
  cs_reset : (Symbolic.node * Symbolic.node) option;
      (** the GP-reset [ldah]/[lda] pair anchored just after this call *)
}

type t = {
  program : Symbolic.program;
  callsites : callsite list;
  address_taken : bool array;
      (** per {!Linker.Resolve.t} proc index: address escapes into data or
          a register *)
  gatload_status : (int, use_status) Hashtbl.t;
      (** per [Gatload] node id, for non-jsr loads *)
  live_out : (int, int) Hashtbl.t;
      (** per node id: registers live after it, as a bitmask *)
  label_home : (Symbolic.label, int * Symbolic.node) Hashtbl.t;
      (** label -> (proc index, node carrying it) *)
}

val reg_bit : Isa.Reg.t -> int

val run :
  ?local_only:bool ->
  ?section_live:(int -> Objfile.Section.t -> bool) ->
  Symbolic.program -> t
(** [local_only:true] restricts the use-chain analysis to what a
    traditional linker could see (OM-simple): a load whose register is not
    provably dead {e within its basic block} escapes. The default uses
    liveness across the recovered control-flow graph (OM-full).

    [section_live] (default: everything) filters the data relocations
    that feed [address_taken]: om-gc passes {!Gc.section_live} so a
    procedure address held only by dead data no longer counts as
    escaping. *)
