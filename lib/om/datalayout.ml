module L = Linker.Layout

type liveness = {
  live_section : int -> Objfile.Section.t -> bool;
  live_target : Linker.Resolve.target -> bool;
}

let all_live =
  { live_section = (fun _ _ -> true); live_target = (fun _ -> true) }

type plan = {
  group_of_module : int array;
  ngroups : int;
  group_gat_off : int array;
  group_gat_bytes : int array;
  gp_of_group : int array;
  data_off : int array;
  sdata_off : int array;
  sbss_off : int array;
  bss_off : int array;
  common_off : (string * int) list;
  data_total : int;
  live : liveness;
}

let plan ?(live = all_live) (world : Linker.Resolve.t) ~group_of_module
    ~ngroups ~group_gat_bytes =
  let nmods = Array.length world.Linker.Resolve.modules in
  assert (Array.length group_of_module = nmods);
  assert (Array.length group_gat_bytes = ngroups);
  let cursor = ref 0 in
  let group_gat_off = Array.make ngroups 0 in
  for g = 0 to ngroups - 1 do
    cursor := L.align !cursor 16;
    group_gat_off.(g) <- !cursor;
    cursor := !cursor + group_gat_bytes.(g)
  done;
  (* dead sections get no space; the survivors renumber automatically
     because every downstream reference goes through these offsets *)
  let place section (per_module : int array) size_of =
    cursor := L.align !cursor L.section_alignment;
    Array.iteri
      (fun m u ->
        let sz =
          if live.live_section m section then L.align (size_of u) 8 else 0
        in
        per_module.(m) <- !cursor;
        cursor := !cursor + sz)
      world.Linker.Resolve.modules
  in
  let data_off = Array.make nmods 0 in
  let sdata_off = Array.make nmods 0 in
  let sbss_off = Array.make nmods 0 in
  let bss_off = Array.make nmods 0 in
  place Objfile.Section.Sdata sdata_off (fun u ->
      Bytes.length u.Objfile.Cunit.sdata);
  (* commons, smallest first, right after the small data; dead ones are
     dropped outright *)
  let commons =
    Array.to_list world.Linker.Resolve.objs
    |> List.mapi (fun i o -> (i, o))
    |> List.filter_map (fun (i, (o : Linker.Resolve.obj_rec)) ->
           match o.o_placement with
           | Linker.Resolve.Common
             when live.live_target (Linker.Resolve.Tobj i) ->
               Some (o.o_name, o.o_size)
           | _ -> None)
    |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
  in
  let common_off =
    List.map
      (fun (name, size) ->
        let off = !cursor in
        cursor := !cursor + L.align size 8;
        (name, off))
      commons
  in
  place Objfile.Section.Sbss sbss_off (fun u -> u.Objfile.Cunit.sbss_size);
  place Objfile.Section.Data data_off (fun u ->
      Bytes.length u.Objfile.Cunit.data);
  place Objfile.Section.Bss bss_off (fun u -> u.Objfile.Cunit.bss_size);
  let gp_of_group =
    Array.map (fun off -> L.data_base + off + L.gp_window_offset) group_gat_off
  in
  { group_of_module;
    ngroups;
    group_gat_off;
    group_gat_bytes;
    gp_of_group;
    data_off;
    sdata_off;
    sbss_off;
    bss_off;
    common_off;
    data_total = L.align !cursor 16;
    live }

let section_off plan m = function
  | Objfile.Section.Data -> plan.data_off.(m)
  | Objfile.Section.Sdata -> plan.sdata_off.(m)
  | Objfile.Section.Sbss -> plan.sbss_off.(m)
  | Objfile.Section.Bss -> plan.bss_off.(m)
  | Objfile.Section.Gat -> plan.group_gat_off.(plan.group_of_module.(m))
  | Objfile.Section.Text ->
      invalid_arg "Datalayout.section_off: text is not a data section"

let address_of (world : Linker.Resolve.t) plan = function
  | Linker.Resolve.Tproc _ ->
      invalid_arg
        "Datalayout.address_of: procedure addresses come from the text layout"
  | Linker.Resolve.Tobj i -> (
      let o = world.Linker.Resolve.objs.(i) in
      match o.o_placement with
      | Linker.Resolve.In_section { s_module; section; offset } ->
          L.data_base + section_off plan s_module section + offset
      | Linker.Resolve.Common ->
          L.data_base + List.assoc o.o_name plan.common_off)

let gp_of_proc plan ~sp_module =
  plan.gp_of_group.(plan.group_of_module.(sp_module))

let in_window plan ~group addr =
  Isa.Insn.fits_disp16 (addr - plan.gp_of_group.(group))
