(** The optimizer's data layout.

    Differences from the standard linker's layout:

    - the GAT groups come {e first} in the data region, so the GP window
      (GP sits [0x7ff0] above a group's base) extends past the table over
      the small-data sections;
    - common symbols are sorted by size and the small ones packed right
      after [.sdata], inside the window ("we sort the common symbols by
      size and place them with the small data sections near the GAT, and
      use a simple heuristic to pick a good value for the GP");
    - GAT space is only {e reserved} here: OM-full shrinks the reservation
      to the entries that must survive, which pulls far more data inside
      the window. *)

type liveness = {
  live_section : int -> Objfile.Section.t -> bool;
      (** per (module, section); [Text]/[Gat] queries must return true *)
  live_target : Linker.Resolve.target -> bool;
}
(** What {!Gc} found reachable. Dead sections are assigned no space (the
    survivors renumber and relocate automatically), dead commons are
    dropped from the layout, and {!Lower} skips dead bytes, relocations
    and symbols. *)

val all_live : liveness
(** Everything live — the behaviour of every level below om-gc. *)

type plan = {
  group_of_module : int array;
  ngroups : int;
  group_gat_off : int array;     (** region offset of each group's table *)
  group_gat_bytes : int array;   (** reserved bytes per group *)
  gp_of_group : int array;       (** absolute GP values *)
  data_off : int array;          (** per-module section offsets, as in
                                     {!Linker.Link.layout_info} *)
  sdata_off : int array;
  sbss_off : int array;
  bss_off : int array;
  common_off : (string * int) list;  (** live commons only *)
  data_total : int;
  live : liveness;               (** carried through to {!Lower} *)
}

val plan :
  ?live:liveness -> Linker.Resolve.t -> group_of_module:int array ->
  ngroups:int -> group_gat_bytes:int array -> plan
(** Region order: GAT groups, [.sdata], sorted commons, [.sbss], [.data],
    [.bss]. [live] defaults to {!all_live}. *)

val address_of : Linker.Resolve.t -> plan -> Linker.Resolve.target -> int

val gp_of_proc : plan -> sp_module:int -> int
(** The GP value procedures of a module use. *)

val in_window : plan -> group:int -> int -> bool
(** Whether an absolute address is within the signed 16-bit displacement
    window of a group's GP. *)
