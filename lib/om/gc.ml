(* Link-time garbage collection (the om-gc level).

   Working over the lifted symbolic program — before layout, so every
   freed GAT slot and data section shrinks the final table — this pass
   computes a whole-program liveness fixpoint over three domains:

   - procedures (world indices), reached through the call graph: direct
     branches/bsrs, GAT-mediated jsr sites, and procedure addresses
     loaded from the pool or referenced from live data;
   - named data objects, reached through pool keys, GP-relative operands
     and relocations in live data;
   - per-module data sections, at section granularity: a section is live
     as soon as one object homed in it is (code may address a neighbour
     through a symbol plus addend, so individual objects are never carved
     out of a surviving section).

   The root is the entry procedure. Unreached procedures are deleted from
   the program outright; dead sections and commons are reported to
   {!Datalayout} (which assigns them no space, renumbering the survivors)
   and to {!Lower} (which skips their bytes, relocations and symbols).
   The world itself is never mutated — it is shared across levels. *)

module S = Symbolic

type t = {
  live_proc : bool array;
  live_obj : bool array;
  live_sec : bool array array;
  procs_deleted : int;
  insns_deleted : int;
  data_bytes_deleted : int;
}

(* data sections only; text and the GAT are managed elsewhere *)
let sec_id = function
  | Objfile.Section.Data -> Some 0
  | Objfile.Section.Sdata -> Some 1
  | Objfile.Section.Sbss -> Some 2
  | Objfile.Section.Bss -> Some 3
  | Objfile.Section.Text | Objfile.Section.Gat -> None

let section_live t m s =
  match sec_id s with Some i -> t.live_sec.(m).(i) | None -> true

let liveness t =
  { Datalayout.live_section = section_live t;
    live_target =
      (function
      | Linker.Resolve.Tproc p -> t.live_proc.(p)
      | Linker.Resolve.Tobj o -> t.live_obj.(o)) }

let run (program : S.program) =
  let world = program.S.world in
  let nprocs = Array.length world.Linker.Resolve.procs in
  let nobjs = Array.length world.Linker.Resolve.objs in
  let nmods = Array.length world.Linker.Resolve.modules in
  let live_proc = Array.make nprocs false in
  let live_obj = Array.make nobjs false in
  let live_sec = Array.make_matrix nmods 4 false in
  let sym_of_world = Hashtbl.create (Array.length program.S.procs) in
  Array.iter
    (fun (proc : S.proc) -> Hashtbl.replace sym_of_world proc.S.sp_index proc)
    program.S.procs;
  (* a branch target identifies its home procedure *)
  let home_of_label = Hashtbl.create 1024 in
  Array.iter
    (fun (proc : S.proc) ->
      List.iter
        (fun (n : S.node) ->
          List.iter
            (fun l -> Hashtbl.replace home_of_label l proc.S.sp_index)
            n.S.labels)
        proc.S.body)
    program.S.procs;
  let work = Queue.create () in
  let mark_target = function
    | Linker.Resolve.Tproc p ->
        if not live_proc.(p) then begin
          live_proc.(p) <- true;
          Queue.add (`Proc p) work
        end
    | Linker.Resolve.Tobj o ->
        if not live_obj.(o) then begin
          live_obj.(o) <- true;
          Queue.add (`Obj o) work
        end
  in
  let mark_sec m s =
    match sec_id s with
    | Some i ->
        if not live_sec.(m).(i) then begin
          live_sec.(m).(i) <- true;
          Queue.add (`Sec (m, s)) work
        end
    | None -> ()
  in
  mark_target (Linker.Resolve.Tproc world.Linker.Resolve.entry_proc);
  while not (Queue.is_empty work) do
    match Queue.pop work with
    | `Proc p -> (
        match Hashtbl.find_opt sym_of_world p with
        | None -> () (* not lifted: nothing to scan *)
        | Some proc ->
            List.iter
              (fun (n : S.node) ->
                match n.S.insn with
                | S.Gatload { key = S.Paddr (t, _); _ } -> mark_target t
                | S.Gprel { target; _ } | S.Lea_wide { target; _ } ->
                    mark_target target
                | S.Branch { target; _ } -> (
                    match Hashtbl.find_opt home_of_label target with
                    | Some q when q <> p ->
                        mark_target (Linker.Resolve.Tproc q)
                    | _ -> ())
                | _ -> ())
              proc.S.body)
    | `Obj o -> (
        match world.Linker.Resolve.objs.(o).Linker.Resolve.o_placement with
        | Linker.Resolve.In_section { s_module; section; _ } ->
            mark_sec s_module section
        | Linker.Resolve.Common -> ())
    | `Sec (m, s) ->
        (* data in a live section may hold addresses of anything *)
        List.iter
          (fun (r : Objfile.Reloc.t) ->
            if Objfile.Section.equal r.Objfile.Reloc.section s then
              match r.Objfile.Reloc.kind with
              | Objfile.Reloc.Refquad { symbol; _ }
              | Objfile.Reloc.Gprel16 { symbol; _ } ->
                  mark_target (Linker.Resolve.resolve_exn world m symbol)
              | _ -> ())
          world.Linker.Resolve.modules.(m).Objfile.Cunit.relocs
  done;
  (* prune dead procedures from the program *)
  let procs_deleted = ref 0 and insns_deleted = ref 0 in
  program.S.procs <-
    Array.of_list
      (List.filter
         (fun (proc : S.proc) ->
           live_proc.(proc.S.sp_index)
           ||
           (incr procs_deleted;
            insns_deleted :=
              !insns_deleted
              + List.fold_left
                  (fun a (n : S.node) -> a + S.insn_of_width n.S.insn)
                  0 proc.S.body;
            false))
         (Array.to_list program.S.procs));
  (* tally the data the layout will not place *)
  let data_bytes_deleted = ref 0 in
  Array.iteri
    (fun m (u : Objfile.Cunit.t) ->
      let dead i size = if not live_sec.(m).(i) then
          data_bytes_deleted := !data_bytes_deleted + size
      in
      dead 0 (Bytes.length u.Objfile.Cunit.data);
      dead 1 (Bytes.length u.Objfile.Cunit.sdata);
      dead 2 u.Objfile.Cunit.sbss_size;
      dead 3 u.Objfile.Cunit.bss_size)
    world.Linker.Resolve.modules;
  Array.iteri
    (fun i (o : Linker.Resolve.obj_rec) ->
      match o.Linker.Resolve.o_placement with
      | Linker.Resolve.Common when not live_obj.(i) ->
          data_bytes_deleted := !data_bytes_deleted + o.Linker.Resolve.o_size
      | _ -> ())
    world.Linker.Resolve.objs;
  { live_proc;
    live_obj;
    live_sec;
    procs_deleted = !procs_deleted;
    insns_deleted = !insns_deleted;
    data_bytes_deleted = !data_bytes_deleted }
