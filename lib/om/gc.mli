(** Link-time dead-code elimination and data-section GC (om-gc).

    Both production LTO linkers the reproduction tracks treat
    unreachable-code stripping as table stakes; here it compounds with
    GAT reduction — every procedure or datum deleted frees pool slots,
    pulling more live data inside the GP window and unlocking further
    OM-full rewrites.

    The pass runs on the lifted symbolic program {e before} layout and
    transformation. It computes a whole-program liveness fixpoint rooted
    at the entry procedure:

    - a procedure is live when a live procedure branches or [bsr]s to it,
      loads its address from the GAT, or when live data holds its address
      (a relocation in a live section);
    - a data object is live when a live procedure loads its address from
      the pool, addresses it GP-relative, or live data references it;
    - sections are kept or dropped {e whole} (symbol-plus-addend
      arithmetic may address a neighbour, so one live object keeps its
      entire home section), and liveness of an object marks its section.

    Dead procedures are deleted from the program in place (the shared
    resolved world is never mutated). Dead sections and commons are
    reported as a {!Datalayout.liveness}: the layout assigns them no
    space — surviving sections renumber and relocate automatically, since
    every downstream reference is symbolic — and lowering skips their
    bytes, relocations and symbols.

    Invariants the level guarantees (and {!Verify} spot-checks on the
    bytes): the entry procedure survives; every surviving call or branch
    targets a surviving procedure; every surviving GAT address slot and
    relocation refers to surviving text or data; behaviour is identical
    to the standard link for any program that does not observe absolute
    addresses. *)

type t = {
  live_proc : bool array;  (** by {!Linker.Resolve.t} procedure index *)
  live_obj : bool array;   (** by {!Linker.Resolve.t} object index *)
  live_sec : bool array array;
      (** per module: Data, Sdata, Sbss, Bss (in that order) *)
  procs_deleted : int;
  insns_deleted : int;     (** static instructions in deleted procedures *)
  data_bytes_deleted : int;
      (** bytes of dead sections and commons the layout drops *)
}

val run : Symbolic.program -> t
(** Compute liveness and delete unreachable procedures from the program
    (in place). The resolved world is read, never written. *)

val liveness : t -> Datalayout.liveness
(** The summary {!Datalayout.plan} and {!Lower} consume. *)

val section_live : t -> int -> Objfile.Section.t -> bool
(** Section liveness by module index; [Text] and [Gat] always live. Feed
    this to {!Analysis.run}'s [section_live] so procedure addresses held
    only by dead data no longer count as escaping (the PV devirtualization
    refinement). *)
