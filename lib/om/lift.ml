module I = Isa.Insn
module S = Symbolic

exception Lift_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Lift_error m)) fmt

(* --- the module-local symbolic form ---

   Lifting splits in two so the expensive half can be cached across
   links (the artifact store keys it by the module's content digest):

   - [lift_module] sees ONE compilation unit and nothing else: it
     decodes the text, checks procedure coverage and folds the
     relocations into per-instruction symbolic operations. Symbols stay
     by name and labels are module-local, so the result is independent
     of whatever other modules end up in the program.
   - [instantiate] stitches cached module lifts into a program against a
     resolved world: names resolve to targets, module-local labels and
     instruction indices become program-wide labels and node ids.

   Everything in [module_sym] is plain immutable data (no closures, no
   world references), so [Marshal] round-trips it for the store. *)

type mkey =
  | Maddr of { symbol : string; addend : int }
  | Mconst of int64

type manchor = Mentry | Mlabel of int

type minsn =
  | Mraw of I.t
  | Mgatload of { ra : Isa.Reg.t; key : mkey }
  | Muse of { insn : I.t; load : int; jsr : bool }  (* instruction index *)
  | Mgpsetup_hi of { base : Isa.Reg.t; anchor : manchor; lo : int }
  | Mgpsetup_lo
  | Mbranch of { insn : I.t; target : int }         (* module-local label *)
  | Mgprel of { insn : I.t; symbol : string; addend : int }

type mproc = {
  mp_name : string;
  mp_offset : int;        (* byte offset of the entry in module text *)
  mp_first : int;         (* first instruction index *)
  mp_count : int;
  mp_entry_label : int;
}

type module_sym = {
  ms_module : string;
  ms_insns : minsn array;       (* one per text instruction, in order *)
  ms_nlabels : int;
  ms_label_insn : int array;    (* label id -> instruction index *)
  ms_procs : mproc array;       (* in text order *)
}

(* --- phase 1: per-module lift --- *)

let lift_module (u : Objfile.Cunit.t) =
  try
    let insns = Objfile.Cunit.insns u in
    let n = Array.length insns in
    let text_len = Bytes.length u.Objfile.Cunit.text in
    (* labels are addressed by text offset, allocated in first-use order *)
    let label_table : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let label_offsets = ref [] in
    let nlabels = ref 0 in
    let label_at off =
      match Hashtbl.find_opt label_table off with
      | Some l -> l
      | None ->
          let l = !nlabels in
          incr nlabels;
          Hashtbl.replace label_table off l;
          label_offsets := off :: !label_offsets;
          l
    in
    let minsns = Array.map (fun i -> Mraw i) insns in
    (* procedures from the unit's own symbol table, in text order *)
    let module_procs =
      List.filter_map
        (fun (s : Objfile.Symbol.t) ->
          match s.Objfile.Symbol.def with
          | Objfile.Symbol.Proc d -> Some (s.Objfile.Symbol.name, d)
          | _ -> None)
        u.Objfile.Cunit.symbols
      |> List.sort
           (fun (_, (a : Objfile.Symbol.proc_desc)) (_, b) ->
             compare a.Objfile.Symbol.offset b.Objfile.Symbol.offset)
    in
    (* coverage check *)
    let covered =
      List.fold_left
        (fun cursor (name, (d : Objfile.Symbol.proc_desc)) ->
          if d.Objfile.Symbol.offset <> cursor then
            fail "%s: text gap before %s (at %#x, expected %#x)"
              u.Objfile.Cunit.name name d.Objfile.Symbol.offset cursor;
          cursor + d.Objfile.Symbol.size)
        0 module_procs
    in
    if covered <> text_len then
      fail "%s: procedures cover %d of %d text bytes" u.Objfile.Cunit.name
        covered text_len;
    (* branches become label-relative, in text order (per procedure, as
       the procedures are contiguous) *)
    let procs =
      List.map
        (fun (name, (d : Objfile.Symbol.proc_desc)) ->
          let first = d.Objfile.Symbol.offset / 4 in
          let count = d.Objfile.Symbol.size / 4 in
          for k = 0 to count - 1 do
            let off = d.Objfile.Symbol.offset + (4 * k) in
            match insns.(first + k) with
            | (I.Br { disp; _ } | I.Bsr { disp; _ } | I.Bcond { disp; _ }) as
              insn ->
                let target_off = off + 4 + (4 * disp) in
                if target_off < 0 || target_off > text_len then
                  fail "%s+%#x: branch target %#x outside module text"
                    u.Objfile.Cunit.name off target_off;
                minsns.(first + k) <-
                  Mbranch { insn; target = label_at target_off }
            | _ -> ()
          done;
          { mp_name = name;
            mp_offset = d.Objfile.Symbol.offset;
            mp_first = first;
            mp_count = count;
            mp_entry_label = label_at d.Objfile.Symbol.offset })
        module_procs
    in
    let proc_containing off =
      List.find_opt
        (fun p -> p.mp_offset <= off && off < p.mp_offset + (4 * p.mp_count))
        procs
    in
    let index_of what off =
      if off < 0 || off mod 4 <> 0 || off / 4 >= n then
        fail "%s+%#x: %s" u.Objfile.Cunit.name off what
      else off / 4
    in
    (* fold relocations into the instructions *)
    List.iter
      (fun (r : Objfile.Reloc.t) ->
        if Objfile.Section.equal r.section Objfile.Section.Text then begin
          let at =
            if r.offset < 0 || r.offset mod 4 <> 0 || r.offset / 4 >= n then
              fail "%s: relocation at %#x hits no instruction"
                u.Objfile.Cunit.name r.offset
            else r.offset / 4
          in
          match r.kind with
          | Objfile.Reloc.Literal { gat_index } -> (
              let entry = u.Objfile.Cunit.gat.(gat_index) in
              let key =
                match entry with
                | Objfile.Gat_entry.Addr { symbol; addend } ->
                    Maddr { symbol; addend }
                | Objfile.Gat_entry.Const c -> Mconst c
              in
              match minsns.(at) with
              | Mraw (I.Ldq { ra; _ }) -> minsns.(at) <- Mgatload { ra; key }
              | _ ->
                  fail "%s+%#x: LITERAL not on an address load"
                    u.Objfile.Cunit.name r.offset)
          | Objfile.Reloc.Lituse_base { load_offset }
          | Objfile.Reloc.Lituse_jsr { load_offset } -> (
              let jsr =
                match r.kind with
                | Objfile.Reloc.Lituse_jsr _ -> true
                | _ -> false
              in
              let load = index_of "dangling LITUSE" load_offset in
              match minsns.(at) with
              | Mraw insn -> minsns.(at) <- Muse { insn; load; jsr }
              | _ ->
                  fail "%s+%#x: LITUSE on a non-plain instruction"
                    u.Objfile.Cunit.name r.offset)
          | Objfile.Reloc.Gpdisp { anchor; pair } -> (
              let lo = index_of "dangling GPDISP pair" pair in
              (* is the anchor this instruction's enclosing procedure
                 entry? *)
              let is_entry =
                match proc_containing r.offset with
                | Some p -> p.mp_offset = anchor
                | None -> false
              in
              let a = if is_entry then Mentry else Mlabel (label_at anchor) in
              match (minsns.(at), minsns.(lo)) with
              | Mraw (I.Ldah { rb; _ }), Mraw (I.Lda _) ->
                  minsns.(at) <- Mgpsetup_hi { base = rb; anchor = a; lo };
                  minsns.(lo) <- Mgpsetup_lo
              | _ ->
                  fail "%s+%#x: GPDISP not on an ldah/lda pair"
                    u.Objfile.Cunit.name r.offset)
          | Objfile.Reloc.Refquad _ ->
              fail "%s+%#x: REFQUAD in text" u.Objfile.Cunit.name r.offset
          | Objfile.Reloc.Gprel16 { symbol; addend } -> (
              (* optimistically-compiled direct GP-relative access *)
              match minsns.(at) with
              | Mraw
                  (( I.Lda { rb; _ } | I.Ldq { rb; _ } | I.Stq { rb; _ } ) as
                   insn)
                when Isa.Reg.equal rb Isa.Reg.gp ->
                  minsns.(at) <- Mgprel { insn; symbol; addend }
              | _ ->
                  fail "%s+%#x: GPREL16 not on a gp-based memory op"
                    u.Objfile.Cunit.name r.offset)
        end)
      u.Objfile.Cunit.relocs;
    (* every label must land on an instruction *)
    let label_insn = Array.make !nlabels 0 in
    List.iter
      (fun off ->
        let l = Hashtbl.find label_table off in
        if off < 0 || off mod 4 <> 0 || off / 4 >= n then
          fail "label target %#x in module %s hits no instruction" off
            u.Objfile.Cunit.name
        else label_insn.(l) <- off / 4)
      !label_offsets;
    Ok
      { ms_module = u.Objfile.Cunit.name;
        ms_insns = minsns;
        ms_nlabels = !nlabels;
        ms_label_insn = label_insn;
        ms_procs = Array.of_list procs }
  with
  | Lift_error m -> Error m
  | Invalid_argument m -> Error m

(* --- phase 2: instantiation against a resolved world --- *)

let instantiate (world : Linker.Resolve.t) (msyms : module_sym array) =
  try
    let nmodules = Array.length world.Linker.Resolve.modules in
    if Array.length msyms <> nmodules then
      fail "instantiate: %d lifted modules for %d world modules"
        (Array.length msyms) nmodules;
    let program =
      { S.world;
        procs = [||];
        next_label = 0;
        next_node = 0;
        entry_name =
          world.Linker.Resolve.procs.(world.Linker.Resolve.entry_proc).p_name }
    in
    (* world procedure index by (module, entry offset) *)
    let proc_idx : (int * int, int) Hashtbl.t =
      Hashtbl.create (Array.length world.Linker.Resolve.procs)
    in
    Array.iteri
      (fun i (p : Linker.Resolve.proc_rec) ->
        Hashtbl.replace proc_idx (p.p_module, p.p_offset) i)
      world.Linker.Resolve.procs;
    let all_procs = ref [] in
    Array.iteri
      (fun m ms ->
        let u = world.Linker.Resolve.modules.(m) in
        let n = Array.length ms.ms_insns in
        if
          (not (String.equal ms.ms_module u.Objfile.Cunit.name))
          || n * 4 <> Bytes.length u.Objfile.Cunit.text
        then
          fail "instantiate: lifted module %s does not match world module %s"
            ms.ms_module u.Objfile.Cunit.name;
        let glabel = Array.make (max 1 ms.ms_nlabels) 0 in
        for l = 0 to ms.ms_nlabels - 1 do
          glabel.(l) <- S.fresh_label program
        done;
        let key_of = function
          | Maddr { symbol; addend } ->
              S.Paddr (Linker.Resolve.resolve_exn world m symbol, addend)
          | Mconst c -> S.Pconst c
        in
        (* nodes are created in text order, so the node id of instruction
           [k] is [first_nid + k] and intra-module back-links need no
           second pass *)
        let first_nid = program.S.next_node in
        let nodes = Array.make n None in
        for k = 0 to n - 1 do
          let sinsn =
            match ms.ms_insns.(k) with
            | Mraw insn -> S.Raw insn
            | Mgatload { ra; key } -> S.Gatload { ra; key = key_of key }
            | Muse { insn; load; jsr } ->
                S.Use { insn; load_id = first_nid + load; jsr }
            | Mgpsetup_hi { base; anchor; lo } ->
                let anchor =
                  match anchor with
                  | Mentry -> S.Aentry
                  | Mlabel l -> S.Alocal glabel.(l)
                in
                S.Gpsetup_hi { base; anchor; lo_id = first_nid + lo }
            | Mgpsetup_lo -> S.Gpsetup_lo
            | Mbranch { insn; target } ->
                S.Branch { insn; target = glabel.(target) }
            | Mgprel { insn; symbol; addend } ->
                S.Gprel
                  { insn;
                    target = Linker.Resolve.resolve_exn world m symbol;
                    addend;
                    part = S.Pfull }
          in
          nodes.(k) <- Some (S.make_node program sinsn)
        done;
        let node k = Option.get nodes.(k) in
        for l = 0 to ms.ms_nlabels - 1 do
          let nd = node ms.ms_label_insn.(l) in
          nd.S.labels <- glabel.(l) :: nd.S.labels
        done;
        Array.iter
          (fun mp ->
            let sp_index =
              match Hashtbl.find_opt proc_idx (m, mp.mp_offset) with
              | Some i -> i
              | None ->
                  fail "instantiate: procedure %s of %s unknown to the world"
                    mp.mp_name u.Objfile.Cunit.name
            in
            let body =
              List.init mp.mp_count (fun k -> node (mp.mp_first + k))
            in
            all_procs :=
              { S.sp_index;
                sp_name = mp.mp_name;
                sp_module = m;
                entry_label = glabel.(mp.mp_entry_label);
                body;
                sp_gp_group = 0 }
              :: !all_procs)
          ms.ms_procs)
      msyms;
    program.S.procs <- Array.of_list (List.rev !all_procs);
    Ok program
  with
  | Lift_error m -> Error m
  | Invalid_argument m -> Error m

let lift_world (world : Linker.Resolve.t) =
  let n = Array.length world.Linker.Resolve.modules in
  let rec go m acc =
    if m = n then Ok (Array.of_list (List.rev acc))
    else
      match lift_module world.Linker.Resolve.modules.(m) with
      | Ok ms -> go (m + 1) (ms :: acc)
      | Error m -> Error m
  in
  go 0 []

let run world =
  match lift_world world with
  | Error m -> Error m
  | Ok msyms -> instantiate world msyms
