(** Translating linked object code into the symbolic form.

    The lifter leans on exactly the loader hints the paper names: LITERAL
    relocations mark the address loads, LITUSE relocations link each use
    back to its address load, GPDISP relocations identify the GP-setup
    pairs and their anchor addresses, and procedure descriptors give
    boundaries. Everything else decodes to concrete instructions, with
    PC-relative branches re-expressed against labels so that code can move
    without breaking displacements.

    Lifting runs in two phases so that the expensive half can be reused
    across links. {!lift_module} sees a single compilation unit: it
    decodes the text, checks procedure coverage, and folds relocations
    into a module-local symbolic form in which symbols are still names and
    labels are module-local — the result depends only on the unit's
    content, so the artifact store caches it under the unit's digest.
    {!instantiate} stitches such module lifts into a {!Symbolic.program}
    against a resolved world, resolving names to targets and renumbering
    labels and nodes program-wide. An incremental relink therefore
    re-lifts only the modules whose content changed. *)

type module_sym
(** The module-local symbolic form of one compilation unit. Plain
    immutable data, independent of the rest of the program; serializable
    with [Marshal]. *)

val lift_module : Objfile.Cunit.t -> (module_sym, string) result
(** Lift one unit in isolation. Fails if the module's text is not fully
    covered by procedure symbols, a relocation is inconsistent, or a
    branch leaves the module text. *)

val instantiate :
  Linker.Resolve.t -> module_sym array -> (Symbolic.program, string) result
(** Build the program form from per-module lifts, one per world module in
    order. Fails if a lifted module does not match the corresponding
    world module (e.g. a stale cache entry) or a symbol fails to
    resolve. *)

val lift_world : Linker.Resolve.t -> (module_sym array, string) result
(** {!lift_module} over every module of the world, in order. *)

val run : Linker.Resolve.t -> (Symbolic.program, string) result
(** Lift every procedure of the resolved program:
    [lift_world |> instantiate]. *)
