module S = Symbolic
module I = Isa.Insn
module R = Isa.Reg
module L = Linker.Layout

type options = { align_branch_targets : bool }

let default_options = { align_branch_targets = false }

exception Lower_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Lower_error m)) fmt

(* A placement: every node gets an offset; padding no-ops are recorded
   separately as offsets where a nop must be emitted. *)
type placement = {
  node_off : (int, int) Hashtbl.t;    (* nid -> text offset *)
  proc_off : int array;               (* per program proc *)
  proc_end : int array;
  pad_offsets : int list;
  text_size : int;
}

let assign_offsets (program : S.program) ~align ~(aligned_labels : (S.label, unit) Hashtbl.t) =
  let node_off = Hashtbl.create 4096 in
  let nprocs = Array.length program.S.procs in
  let proc_off = Array.make nprocs 0 in
  let proc_end = Array.make nprocs 0 in
  let pads = ref [] in
  let off = ref 0 in
  Array.iteri
    (fun pi (proc : S.proc) ->
      let first = ref true in
      (* a pad for the procedure's first instruction belongs to the gap
         before the procedure, not inside it *)
      (match proc.S.body with
      | n :: _
        when align
             && List.exists (Hashtbl.mem aligned_labels) n.S.labels
             && !off land 7 <> 0 ->
          pads := !off :: !pads;
          off := !off + 4
      | _ -> ());
      proc_off.(pi) <- !off;
      List.iter
        (fun (n : S.node) ->
          if
            align
            && (not !first)
            && List.exists (Hashtbl.mem aligned_labels) n.S.labels
            && !off land 7 <> 0
          then begin
            pads := !off :: !pads;
            off := !off + 4
          end;
          first := false;
          Hashtbl.replace node_off n.S.nid !off;
          off := !off + (4 * S.insn_of_width n.S.insn))
        proc.S.body;
      proc_end.(pi) <- !off)
    program.S.procs;
  { node_off;
    proc_off;
    proc_end;
    pad_offsets = List.rev !pads;
    text_size = !off }

let label_offsets (program : S.program) placement =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (proc : S.proc) ->
      List.iter
        (fun (n : S.node) ->
          match Hashtbl.find_opt placement.node_off n.S.nid with
          | Some o -> List.iter (fun l -> Hashtbl.replace tbl l o) n.S.labels
          | None -> ())
        proc.S.body)
    program.S.procs;
  tbl

(* Full placement, shared with {!Relax}: labels that are targets of
   backward branches (tentative placement without padding decides
   direction) get quadword-aligned when the options ask for it. *)
let place ?(options = default_options) (program : S.program) =
  let aligned_labels : (S.label, unit) Hashtbl.t = Hashtbl.create 64 in
  if options.align_branch_targets then begin
    let tentative =
      assign_offsets program ~align:false ~aligned_labels:(Hashtbl.create 0)
    in
    let t_labels = label_offsets program tentative in
    S.iter_nodes program (fun _proc n ->
        match n.S.insn with
        | S.Branch { target; _ } -> (
            match
              ( Hashtbl.find_opt tentative.node_off n.S.nid,
                Hashtbl.find_opt t_labels target )
            with
            | Some bo, Some to_ when to_ <= bo ->
                Hashtbl.replace aligned_labels target ()
            | _ -> ())
        | _ -> ());
    (* never pad at a GPDISP anchor: the anchor must stay exactly at the
       call's return point *)
    S.iter_nodes program (fun _proc n ->
        match n.S.insn with
        | S.Gpsetup_hi { anchor = S.Alocal l; _ } ->
            Hashtbl.remove aligned_labels l
        | _ -> ())
  end;
  assign_offsets program ~align:options.align_branch_targets ~aligned_labels

(* GAT slot allocation: first-reference order over the whole program, per
   group. Deterministic, so {!Relax} can precompute the very addresses
   [run] will patch in. *)
type gat_alloc = {
  ga_tables : (S.pool_key, int) Hashtbl.t array;  (* per group: key -> slot *)
  ga_counts : int array;
}

let alloc_gat_exn (program : S.program) (plan : Datalayout.plan) =
  let tables =
    Array.init plan.Datalayout.ngroups (fun _ -> Hashtbl.create 32)
  in
  let counts = Array.make plan.Datalayout.ngroups 0 in
  Array.iter
    (fun (proc : S.proc) ->
      let group = plan.Datalayout.group_of_module.(proc.S.sp_module) in
      List.iter
        (fun (n : S.node) ->
          match n.S.insn with
          | S.Gatload { key; _ } | S.Gatload_wide { key; _ } ->
              let tbl = tables.(group) in
              if not (Hashtbl.mem tbl key) then begin
                let s = counts.(group) in
                if (s + 1) * 8 > plan.Datalayout.group_gat_bytes.(group) then
                  fail "GAT group %d overflows its reservation (%d bytes)"
                    group
                    plan.Datalayout.group_gat_bytes.(group);
                counts.(group) <- s + 1;
                Hashtbl.replace tbl key s
              end
          | _ -> ())
        proc.S.body)
    program.S.procs;
  { ga_tables = tables; ga_counts = counts }

let alloc_gat program plan =
  match alloc_gat_exn program plan with
  | ga -> Ok ga
  | exception Lower_error m -> Error m

let gat_slot_addr (plan : Datalayout.plan) ga ~group key =
  match Hashtbl.find_opt ga.ga_tables.(group) key with
  | Some s -> L.data_base + plan.Datalayout.group_gat_off.(group) + (8 * s)
  | None -> fail "GAT key was never allocated a slot"

let invert_cond = function
  | I.Beq -> I.Bne | I.Bne -> I.Beq
  | I.Blt -> I.Bge | I.Bge -> I.Blt
  | I.Ble -> I.Bgt | I.Bgt -> I.Ble
  | I.Blbc -> I.Blbs | I.Blbs -> I.Blbc

let run ?(options = default_options) (program : S.program)
    (plan : Datalayout.plan) =
  try
    let world = program.S.world in
    let placement = place ~options program in
    let label_addr =
      let tbl = label_offsets program placement in
      fun l ->
        match Hashtbl.find_opt tbl l with
        | Some o -> L.text_base + o
        | None -> fail "undefined label L%d" l
    in
    (* procedure addresses (for pool values and symbols) *)
    let proc_addr = Array.make (Array.length world.Linker.Resolve.procs) 0 in
    Array.iteri
      (fun pi (proc : S.proc) ->
        proc_addr.(proc.S.sp_index) <- L.text_base + placement.proc_off.(pi))
      program.S.procs;
    let address_of_target = function
      | Linker.Resolve.Tproc p -> proc_addr.(p)
      | Linker.Resolve.Tobj _ as t -> Datalayout.address_of world plan t
    in
    let ga = alloc_gat_exn program plan in
    let slot_addr ~group key = gat_slot_addr plan ga ~group key in
    let split32 what rel =
      match I.split32_opt rel with
      | Some pair -> pair
      | None -> fail "%s: displacement %d exceeds the 32-bit split" what rel
    in
    (* encode text *)
    let text = Bytes.make placement.text_size '\000' in
    let emit off insn =
      Bytes.set_int32_le text off (Int32.of_int (Isa.Encode.insn insn))
    in
    List.iter (fun off -> emit off I.nop) placement.pad_offsets;
    let lo_values : (int, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun pi (proc : S.proc) ->
        let group = plan.Datalayout.group_of_module.(proc.S.sp_module) in
        let gp = plan.Datalayout.gp_of_group.(group) in
        List.iter
          (fun (n : S.node) ->
            let off = Hashtbl.find placement.node_off n.S.nid in
            let addr = L.text_base + off in
            match n.S.insn with
            | S.Raw i -> emit off i
            | S.Use { insn; _ } -> emit off insn
            | S.Gatload { ra; key } ->
                let sa = slot_addr ~group key in
                let disp = sa - gp in
                if not (I.fits_disp16 disp) then
                  fail "%s: GAT slot out of GP range (disp %d)" proc.S.sp_name
                    disp;
                emit off (I.Ldq { ra; rb = R.gp; disp })
            | S.Gatload_wide { ra; key } ->
                let sa = slot_addr ~group key in
                let hi, lo = split32 proc.S.sp_name (sa - gp) in
                emit off (I.Ldah { ra; rb = R.gp; disp = hi });
                emit (off + 4) (I.Ldq { ra; rb = ra; disp = lo })
            | S.Gpsetup_hi { base; anchor; lo_id } ->
                let anchor_addr =
                  match anchor with
                  | S.Aentry -> L.text_base + placement.proc_off.(pi)
                  | S.Alocal l -> label_addr l
                in
                let hi, lo = split32 proc.S.sp_name (gp - anchor_addr) in
                Hashtbl.replace lo_values lo_id lo;
                emit off (I.Ldah { ra = R.gp; rb = base; disp = hi })
            | S.Gpsetup_lo ->
                let lo =
                  match Hashtbl.find_opt lo_values n.S.nid with
                  | Some v -> v
                  | None ->
                      fail "%s: orphan GP-setup low half (n%d)" proc.S.sp_name
                        n.S.nid
                in
                emit off (I.Lda { ra = R.gp; rb = R.gp; disp = lo })
            | S.Branch { insn; target } ->
                let disp = (label_addr target - (addr + 4)) asr 2 in
                if not (I.fits_disp21 disp) then
                  fail "%s: branch displacement %d out of range" proc.S.sp_name
                    disp;
                emit off (I.with_branch_disp insn disp)
            | S.Gprel { insn; target; addend; part } -> (
                let rel = address_of_target target + addend - gp in
                let rebuild disp =
                  match insn with
                  | I.Ldq { ra; _ } -> I.Ldq { ra; rb = R.gp; disp }
                  | I.Stq { ra; _ } -> I.Stq { ra; rb = R.gp; disp }
                  | I.Lda { ra; _ } -> I.Lda { ra; rb = R.gp; disp }
                  | I.Ldah { ra; _ } -> I.Ldah { ra; rb = R.gp; disp }
                  | _ -> fail "%s: bad gp-relative template" proc.S.sp_name
                in
                let keep_base disp =
                  match insn with
                  | I.Ldq { ra; rb; _ } -> I.Ldq { ra; rb; disp }
                  | I.Stq { ra; rb; _ } -> I.Stq { ra; rb; disp }
                  | I.Lda { ra; rb; _ } -> I.Lda { ra; rb; disp }
                  | _ -> fail "%s: bad low-half template" proc.S.sp_name
                in
                match part with
                | S.Pfull ->
                    if not (I.fits_disp16 rel) then
                      fail "%s: gp-relative displacement %d does not fit"
                        proc.S.sp_name rel;
                    emit off (rebuild rel)
                | S.Phi ->
                    let hi, _ = split32 proc.S.sp_name rel in
                    emit off (rebuild hi)
                | S.Plo extra ->
                    let _, lo = split32 proc.S.sp_name rel in
                    if not (I.fits_disp16 (lo + extra)) then
                      fail "%s: low half %d does not fit" proc.S.sp_name
                        (lo + extra);
                    emit off (keep_base (lo + extra)))
            | S.Lea_wide { ra; target; addend } ->
                let rel = address_of_target target + addend - gp in
                let hi, lo = split32 proc.S.sp_name rel in
                emit off (I.Ldah { ra; rb = R.gp; disp = hi });
                emit (off + 4) (I.Lda { ra; rb = ra; disp = lo })
            (* far branch forms: the scratch register picks up its own
               address ([br scratch, 0] writes PC+4 and falls through),
               then an ldah/lda pair turns it into the absolute target —
               reaching anywhere within +-2GB of the site with no GP
               dependence. A call keeps the callee address in [pv], which
               is exactly what the callee's entry GP setup requires. *)
            | S.Bsr_far { ra; target } ->
                let anchor = addr + 4 in
                let hi, lo =
                  split32 proc.S.sp_name (label_addr target - anchor)
                in
                emit off (I.Br { ra = R.pv; disp = 0 });
                emit (off + 4) (I.Ldah { ra = R.pv; rb = R.pv; disp = hi });
                emit (off + 8) (I.Lda { ra = R.pv; rb = R.pv; disp = lo });
                emit (off + 12)
                  (I.Jump { kind = I.Jsr; ra; rb = R.pv; hint = 0 })
            | S.Br_far { ra; target } ->
                let anchor = addr + 4 in
                let hi, lo =
                  split32 proc.S.sp_name (label_addr target - anchor)
                in
                emit off (I.Br { ra = R.at; disp = 0 });
                emit (off + 4) (I.Ldah { ra = R.at; rb = R.at; disp = hi });
                emit (off + 8) (I.Lda { ra = R.at; rb = R.at; disp = lo });
                emit (off + 12)
                  (I.Jump { kind = I.Jmp; ra; rb = R.at; hint = 0 })
            | S.Bcond_far { cond; ra; target } ->
                let anchor = addr + 8 in
                let hi, lo =
                  split32 proc.S.sp_name (label_addr target - anchor)
                in
                emit off (I.Bcond { cond = invert_cond cond; ra; disp = 4 });
                emit (off + 4) (I.Br { ra = R.at; disp = 0 });
                emit (off + 8) (I.Ldah { ra = R.at; rb = R.at; disp = hi });
                emit (off + 12) (I.Lda { ra = R.at; rb = R.at; disp = lo });
                emit (off + 16)
                  (I.Jump { kind = I.Jmp; ra = R.zero; rb = R.at; hint = 0 })
            | S.Elided _ -> ())
          proc.S.body)
      program.S.procs;
    (* data region; sections om-gc found dead were given no space and
       must not be blitted over their live successors *)
    let live = plan.Datalayout.live in
    let data = Bytes.make plan.Datalayout.data_total '\000' in
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        if live.Datalayout.live_section m Objfile.Section.Data then
          Bytes.blit u.data 0 data plan.Datalayout.data_off.(m)
            (Bytes.length u.data);
        if live.Datalayout.live_section m Objfile.Section.Sdata then
          Bytes.blit u.sdata 0 data plan.Datalayout.sdata_off.(m)
            (Bytes.length u.sdata))
      world.Linker.Resolve.modules;
    (* pool contents *)
    Array.iteri
      (fun g tbl ->
        Hashtbl.iter
          (fun key slot ->
            let v =
              match key with
              | S.Paddr (t, a) -> Int64.of_int (address_of_target t + a)
              | S.Pconst c -> c
            in
            Bytes.set_int64_le data
              (plan.Datalayout.group_gat_off.(g) + (8 * slot))
              v)
          tbl)
      ga.ga_tables;
    (* refquads; ones homed in dead sections go with their section (their
       targets may be deleted procedures or dropped commons) *)
    Array.iteri
      (fun m (u : Objfile.Cunit.t) ->
        List.iter
          (fun (r : Objfile.Reloc.t) ->
            match r.kind with
            | Objfile.Reloc.Refquad { symbol; addend }
              when live.Datalayout.live_section m r.section ->
                let addr =
                  address_of_target (Linker.Resolve.resolve_exn world m symbol)
                  + addend
                in
                let sec_off =
                  match r.section with
                  | Objfile.Section.Data -> plan.Datalayout.data_off.(m)
                  | Objfile.Section.Sdata -> plan.Datalayout.sdata_off.(m)
                  | s ->
                      fail
                        "refquad for symbol %s (module %s, offset %d) in \
                         unsupported section %s"
                        symbol u.Objfile.Cunit.name r.offset
                        (Objfile.Section.name s)
                in
                Bytes.set_int64_le data (sec_off + r.offset) (Int64.of_int addr)
            | _ -> ())
          u.Objfile.Cunit.relocs)
      world.Linker.Resolve.modules;
    (* metadata *)
    let procs_meta =
      Array.mapi
        (fun pi (proc : S.proc) ->
          let w = world.Linker.Resolve.procs.(proc.S.sp_index) in
          let group = plan.Datalayout.group_of_module.(proc.S.sp_module) in
          let uses_gp =
            List.exists
              (fun (n : S.node) ->
                match n.S.insn with
                | S.Gatload _ | S.Gatload_wide _ | S.Gpsetup_hi _
                | S.Gpsetup_lo | S.Gprel _ | S.Lea_wide _ -> true
                | _ -> false)
              proc.S.body
          in
          { Linker.Image.name = proc.S.sp_name;
            entry = L.text_base + placement.proc_off.(pi);
            size = placement.proc_end.(pi) - placement.proc_off.(pi);
            gp_value = plan.Datalayout.gp_of_group.(group);
            module_name =
              world.Linker.Resolve.modules.(proc.S.sp_module).Objfile.Cunit.name;
            exported = w.p_exported;
            uses_gp;
            gp_setup_at_entry =
              Option.is_some (Transform.setup_at_entry proc) })
        program.S.procs
    in
    (* GC'd targets get no symbol: a deleted procedure has no address and
       a dropped common no storage *)
    let symbols =
      Hashtbl.fold
        (fun name tgt acc ->
          if not (live.Datalayout.live_target tgt) then acc
          else
            match tgt with
            | Linker.Resolve.Tproc p -> (name, proc_addr.(p)) :: acc
            | Linker.Resolve.Tobj _ as t -> (name, address_of_target t) :: acc)
        world.Linker.Resolve.globals []
      |> List.sort compare
    in
    let entry_idx = world.Linker.Resolve.entry_proc in
    let gat_used =
      Array.fold_left (fun acc n -> acc + (8 * n)) 0 ga.ga_counts
    in
    let image =
      { Linker.Image.text_base = L.text_base;
        text;
        data_base = L.data_base;
        data;
        entry = proc_addr.(entry_idx);
        procs = procs_meta;
        symbols;
        heap_base = L.align (L.data_base + plan.Datalayout.data_total) 4096;
        gat_base = L.data_base + plan.Datalayout.group_gat_off.(0);
        gat_bytes =
          (let last = plan.Datalayout.ngroups - 1 in
           plan.Datalayout.group_gat_off.(last)
           + plan.Datalayout.group_gat_bytes.(last)
           - plan.Datalayout.group_gat_off.(0));
        ngroups = plan.Datalayout.ngroups }
    in
    (match Linker.Image.validate image with
    | Ok () -> ()
    | Error m -> fail "invalid image: %s" m);
    Ok (image, gat_used)
  with Lower_error m -> Error m
