(** Generating an executable image from the (transformed) symbolic form.

    Lowering assigns final text offsets (optionally quadword-aligning
    instructions that are the targets of backward branches, which helps the
    dual-issue hardware), allocates the final GAT from the address loads
    that actually survive (GAT reduction becomes visible here), patches
    every symbolic operand, lays out the data region per the
    {!Datalayout.plan}, and fills in the loader metadata. *)

type options = { align_branch_targets : bool }

val default_options : options

type placement = {
  node_off : (int, int) Hashtbl.t;  (** nid -> text offset *)
  proc_off : int array;             (** per program proc *)
  proc_end : int array;
  pad_offsets : int list;           (** offsets where an alignment no-op goes *)
  text_size : int;
}
(** Where every node lands in text. [Relax] iterates this to decide which
    span-dependent sites fit; [run] recomputes the identical placement when
    it finally encodes. *)

val place : ?options:options -> Symbolic.program -> placement
(** Assign final text offsets (with branch-target alignment padding when
    the options ask for it), honouring each node's current
    {!Symbolic.insn_of_width}. *)

val label_offsets :
  Symbolic.program -> placement -> (Symbolic.label, int) Hashtbl.t

type gat_alloc = {
  ga_tables : (Symbolic.pool_key, int) Hashtbl.t array;
      (** per group: key -> slot index *)
  ga_counts : int array;
}

val alloc_gat :
  Symbolic.program -> Datalayout.plan -> (gat_alloc, string) result
(** Allocate GAT slots in first-reference program order — deterministic,
    so a relaxation pass sees the same slot addresses [run] will encode.
    Fails if a group outgrows its reservation. *)

val run :
  ?options:options -> Symbolic.program -> Datalayout.plan ->
  (Linker.Image.t * int, string) result
(** Returns the image and the final GAT size in bytes (the number of slots
    actually allocated, before padding to the plan's reservation). *)
