(* Re-exports: [om.ml] is the library's root module. *)
module Symbolic = Symbolic
module Lift = Lift
module Analysis = Analysis
module Datalayout = Datalayout
module Transform = Transform
module Gc = Gc
module Sched = Sched
module Relax = Relax
module Lower = Lower
module Stats = Stats
module Verify = Verify

module S = Symbolic

type level = No_opt | Simple | Full | Full_sched | Gc

let level_name = function
  | No_opt -> "om-noopt"
  | Simple -> "om-simple"
  | Full -> "om-full"
  | Full_sched -> "om-full+sched"
  | Gc -> "om-gc"

let all_levels = [ No_opt; Simple; Full; Full_sched; Gc ]

(* One parser for every CLI/daemon surface: short aliases and the full
   level_name forms both work, so plumbing can never drift per-frontend. *)
let level_of_string = function
  | "noopt" | "om-noopt" -> Some No_opt
  | "simple" | "om-simple" -> Some Simple
  | "full" | "om-full" -> Some Full
  | "sched" | "full+sched" | "om-full+sched" -> Some Full_sched
  | "gc" | "om-gc" -> Some Gc
  | _ -> None

type output = {
  image : Linker.Image.t;
  stats : Stats.t;
}

(* Reserved GAT for the Full levels: a superset of what can survive the
   transformations — literal constants and procedure-address entries. Data
   addresses never survive OM-full (each becomes GP-relative or an
   ldah/lda pair). *)
let planned_full_gat ~addr_opt (program : S.program) =
  let keys = Hashtbl.create 32 in
  S.iter_nodes program (fun _proc n ->
      match n.S.insn with
      | S.Gatload { key = S.Pconst _ as k; _ }
      | S.Gatload { key = S.Paddr (Linker.Resolve.Tproc _, _) as k; _ } ->
          Hashtbl.replace keys k ()
      | S.Gatload { key = k; _ } when not addr_opt ->
          (* address optimization ablated: data entries survive too *)
          Hashtbl.replace keys k ()
      | _ -> ());
  Hashtbl.length keys

(* Trace counters: the delta a pass left in [stats] since the last
   snapshot. Nonzero entries only — most passes touch a few fields. *)
let stats_delta stats snapshot () =
  let now = Stats.to_alist stats in
  let delta =
    List.map2 (fun (k, before) (_, after) -> (k, after - before)) !snapshot now
    |> List.filter (fun (_, d) -> d <> 0)
  in
  snapshot := now;
  delta

(* The back half of the pipeline: everything after lifting. Callers that
   lift incrementally (the link service reuses cached per-module lifts)
   enter here with a freshly instantiated program; note the transform
   mutates it, so a program instance is good for one optimization only. *)
let optimize_program ?transform_options level (program : S.program) =
  let world = program.S.world in
  let topts =
    Option.value transform_options ~default:Transform.default_options
  in
  (
      let stats = Stats.create () in
      (* om-gc prunes the symbolic program before any layout decision is
         made: the shrunken GAT reservation and dead-section holes both
         depend on the post-GC program. *)
      let gc =
        match level with
        | Gc ->
            let gc = Obs.Trace.span "gc" (fun () -> Gc.run program) in
            stats.Stats.procs_deleted <- gc.Gc.procs_deleted;
            stats.Stats.gc_insns_deleted <- gc.Gc.insns_deleted;
            stats.Stats.data_bytes_deleted <- gc.Gc.data_bytes_deleted;
            Some gc
        | No_opt | Simple | Full | Full_sched -> None
      in
      let live =
        match gc with
        | Some gc -> Gc.liveness gc
        | None -> Datalayout.all_live
      in
      let merged = Obs.Trace.span "gat-merge" (fun () -> Linker.Gat.merge world) in
      let merged_group_bytes =
        Array.init merged.Linker.Gat.ngroups (fun g ->
            let first = merged.Linker.Gat.group_first_slot.(g) in
            let next =
              if g + 1 < merged.Linker.Gat.ngroups then
                merged.Linker.Gat.group_first_slot.(g + 1)
              else Array.length merged.Linker.Gat.slots
            in
            8 * (next - first))
      in
      let plan =
        Obs.Trace.span "datalayout" @@ fun () ->
        match level with
        | No_opt | Simple ->
            Datalayout.plan world
              ~group_of_module:merged.Linker.Gat.group_of_module
              ~ngroups:merged.Linker.Gat.ngroups
              ~group_gat_bytes:merged_group_bytes
        | Full | Full_sched | Gc ->
            (* the count runs over the (possibly GC-pruned) program, so
               freed PV and constant slots shrink the reservation *)
            let planned =
              planned_full_gat ~addr_opt:topts.Transform.opt_addr program
            in
            if planned <= Linker.Layout.gat_group_capacity then
              Datalayout.plan ~live world
                ~group_of_module:
                  (Array.map (fun _ -> 0) merged.Linker.Gat.group_of_module)
                ~ngroups:1
                ~group_gat_bytes:[| max 16 (8 * planned) |]
            else
              (* degenerate huge program: fall back to the merged grouping *)
              Datalayout.plan ~live world
                ~group_of_module:merged.Linker.Gat.group_of_module
                ~ngroups:merged.Linker.Gat.ngroups
                ~group_gat_bytes:merged_group_bytes
      in
      stats.Stats.gat_bytes_before <- Linker.Gat.size_bytes merged;
      let snapshot = ref (Stats.to_alist stats) in
      let counters = stats_delta stats snapshot in
      (match level with
      | No_opt ->
          stats.Stats.insns_before <- S.static_insn_count program;
          stats.Stats.insns_after <- stats.Stats.insns_before
      | Simple ->
          Obs.Trace.span ~counters "transform:simple" (fun () ->
              ignore
                (Transform.run ~options:topts Transform.Simple program plan
                   stats))
      | Full ->
          Obs.Trace.span ~counters "transform:full" (fun () ->
              ignore
                (Transform.run ~options:topts Transform.Full program plan
                   stats))
      | Full_sched ->
          Obs.Trace.span ~counters "transform:full" (fun () ->
              ignore
                (Transform.run ~options:topts Transform.Full program plan
                   stats));
          Obs.Trace.span "sched" (fun () -> Sched.run program)
      | Gc ->
          let section_live = Gc.section_live (Option.get gc) in
          Obs.Trace.span ~counters "transform:full" (fun () ->
              ignore
                (Transform.run ~options:topts ~section_live Transform.Full
                   program plan stats));
          Obs.Trace.span "sched" (fun () -> Sched.run program));
      (* om-gc schedules but keeps branch-target alignment off: the pads
         would cost text bytes, and om-gc's contract is never to be larger
         than om-full on any axis. *)
      let options =
        { Lower.align_branch_targets = (level = Full_sched) }
      in
      (* the Full levels made optimistic span choices; the relaxation
         fixed point grows only what provably doesn't fit (and elides
         branches to the next instruction, re-plans the data region
         around the exact surviving GAT). The conservative levels keep
         the one-shot emission and double as relaxation's oracle. *)
      let relaxed =
        match level with
        | Full | Full_sched | Gc ->
            Obs.Trace.span ~counters "relax" (fun () ->
                Relax.run ~options program plan stats)
        | No_opt | Simple -> Ok plan
      in
      match relaxed with
      | Error m -> Error ("om: relax: " ^ m)
      | Ok plan -> (
          (match level with
          | No_opt -> ()
          | _ -> stats.Stats.insns_after <- S.static_insn_count program);
          match
            Obs.Trace.span "lower" (fun () -> Lower.run ~options program plan)
          with
          | Error m -> Error ("om: lower: " ^ m)
          | Ok (image, gat_used) -> (
              stats.Stats.gat_bytes_after <- gat_used;
              (* a second pair of eyes over the rewritten bytes *)
              match Obs.Trace.span "verify" (fun () -> Verify.check image) with
              | Ok () -> Ok { image; stats }
              | Error m -> Error ("om: verify: " ^ m))))

let optimize_resolved ?transform_options level (world : Linker.Resolve.t) =
  Obs.Trace.span ("om:" ^ level_name level) @@ fun () ->
  match Obs.Trace.span "lift" (fun () -> Lift.run world) with
  | Error m -> Error ("om: lift: " ^ m)
  | Ok program -> optimize_program ?transform_options level program

let link ?(level = Full) ?entry units ~archives =
  Result.bind
    (Obs.Trace.span "resolve" (fun () ->
         Linker.Resolve.run ?entry units ~archives))
    (fun world -> optimize_resolved level world)
