(** Submodules of the optimizer, re-exported. *)

module Symbolic : module type of Symbolic
module Lift : module type of Lift
module Analysis : module type of Analysis
module Datalayout : module type of Datalayout
module Transform : module type of Transform
module Gc : module type of Gc
module Sched : module type of Sched
module Relax : module type of Relax
module Lower : module type of Lower
module Stats : module type of Stats
module Verify : module type of Verify

(** OM, the optimizing linker: the paper's system, end to end.

    [link] resolves the input modules exactly as the standard linker does,
    then translates the whole program to symbolic form, optimizes at the
    requested level, and generates the executable:

    - [No_opt] — translate and regenerate with no transformation (the
      "OM, no optimization" column of the paper's build-time table; also
      the reference point that must behave identically to a standard
      link);
    - [Simple] — OM-simple: local analysis, no code motion, removals
      become no-ops;
    - [Full] — OM-full: code motion, deletion, GAT reduction;
    - [Full_sched] — OM-full plus per-block rescheduling and quadword
      alignment of backward-branch targets;
    - [Gc] — om-gc: whole-program garbage collection on top of OM-full.
      Unreachable procedures are deleted from the call graph rooted at the
      entry point; data/sdata/sbss/bss sections and commons referenced by
      no live code or data vanish from the layout (survivors renumber and
      relocate automatically); PVs whose address escapes only through dead
      data are devirtualized. GAT reduction then runs over the pruned
      program, so freed slots shrink the table. Scheduling runs as in
      [Full_sched] but branch-target alignment stays off, keeping om-gc
      no larger than om-full in text, data and GAT bytes on every input.

    Per-level invariants — what each level may do to the program:
    - [No_opt]: nothing moved, deleted or devirtualized; byte-for-byte
      behavioral identity with a standard link.
    - [Simple]: instructions may be nullified (become no-ops) in place;
      nothing moves, nothing is deleted, layout keeps the merged
      per-module GAT groups.
    - [Full]/[Full_sched]: instructions may move (GP-setup restoration,
      scheduling) and be deleted; the GAT shrinks to the surviving
      entries; no procedure or data is ever removed.
    - [Gc]: additionally, whole procedures and whole data sections may be
      deleted, and GAT-mediated calls to non-escaping PVs may be
      devirtualized to direct branches. Live code and data keep their
      observable behavior: every level produces the same program outputs. *)

type level = No_opt | Simple | Full | Full_sched | Gc

val level_name : level -> string
val all_levels : level list

val level_of_string : string -> level option
(** Parses both the short CLI aliases ("noopt", "simple", "full", "sched",
    "full+sched", "gc") and the full {!level_name} forms ("om-gc", ...).
    Every frontend (omlink flags, daemon protocol) goes through this one
    parser. *)

type output = {
  image : Linker.Image.t;
  stats : Stats.t;
}

val link :
  ?level:level -> ?entry:string -> Objfile.Cunit.t list ->
  archives:Objfile.Archive.t list -> (output, string) result
(** Default level is [Full]. *)

val optimize_resolved :
  ?transform_options:Transform.options -> level -> Linker.Resolve.t ->
  (output, string) result
(** The back half of {!link}, for callers that already resolved the
    program (shared with the measurement harness, which resolves once and
    links many ways). *)

val optimize_program :
  ?transform_options:Transform.options -> level -> Symbolic.program ->
  (output, string) result
(** The back half of {!optimize_resolved}, for callers that already
    lifted (the link service instantiates cached per-module lifts and
    enters here). The transform mutates the program in place, so each
    program instance is good for a single optimization. *)
