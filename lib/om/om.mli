(** Submodules of the optimizer, re-exported. *)

module Symbolic : module type of Symbolic
module Lift : module type of Lift
module Analysis : module type of Analysis
module Datalayout : module type of Datalayout
module Transform : module type of Transform
module Sched : module type of Sched
module Lower : module type of Lower
module Stats : module type of Stats
module Verify : module type of Verify

(** OM, the optimizing linker: the paper's system, end to end.

    [link] resolves the input modules exactly as the standard linker does,
    then translates the whole program to symbolic form, optimizes at the
    requested level, and generates the executable:

    - [No_opt] — translate and regenerate with no transformation (the
      "OM, no optimization" column of the paper's build-time table; also
      the reference point that must behave identically to a standard
      link);
    - [Simple] — OM-simple: local analysis, no code motion, removals
      become no-ops;
    - [Full] — OM-full: code motion, deletion, GAT reduction;
    - [Full_sched] — OM-full plus per-block rescheduling and quadword
      alignment of backward-branch targets. *)

type level = No_opt | Simple | Full | Full_sched

val level_name : level -> string
val all_levels : level list

type output = {
  image : Linker.Image.t;
  stats : Stats.t;
}

val link :
  ?level:level -> ?entry:string -> Objfile.Cunit.t list ->
  archives:Objfile.Archive.t list -> (output, string) result
(** Default level is [Full]. *)

val optimize_resolved :
  ?transform_options:Transform.options -> level -> Linker.Resolve.t ->
  (output, string) result
(** The back half of {!link}, for callers that already resolved the
    program (shared with the measurement harness, which resolves once and
    links many ways). *)

val optimize_program :
  ?transform_options:Transform.options -> level -> Symbolic.program ->
  (output, string) result
(** The back half of {!optimize_resolved}, for callers that already
    lifted (the link service instantiates cached per-module lifts and
    enters here). The transform mutates the program in place, so each
    program instance is good for a single optimization. *)
