(* Span-dependent instruction relaxation (Dickson's linear-time fixed
   point over the whole linked image).

   The transform picks the short form of every span-dependent site
   optimistically; this pass is what makes that safe. It re-plans the
   data region around the GAT that actually survived, validates every
   data-relative site under the tighter plan (reverting wholesale if any
   would break — the conservative plan is always a correct upper bound),
   narrows sites the tighter plan brought into range, and then runs a
   placement fixed point over the text: branches to the very next
   instruction are elided, and only sites that provably do not fit are
   grown to their long form. Sizes move monotonically after the one-time
   narrowing step — a site never shrinks again once the loop starts — so
   each pass either changes at least one site permanently or terminates:
   at most one pass per span-dependent site, each linear in the program. *)

module S = Symbolic
module I = Isa.Insn
module R = Isa.Reg
module L = Linker.Layout

exception Relax_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Relax_error m)) fmt

(* Procedure text addresses under a placement, indexed like
   [world.procs]. *)
let proc_addrs (program : S.program) (placement : Lower.placement) =
  let world = program.S.world in
  let addrs = Array.make (Array.length world.Linker.Resolve.procs) 0 in
  Array.iteri
    (fun pi (proc : S.proc) ->
      addrs.(proc.S.sp_index) <- L.text_base + placement.Lower.proc_off.(pi))
    program.S.procs;
  addrs

(* Would every data-relative site the transform already committed to
   still fit if [candidate] replaced the current plan? Text addresses are
   taken from the entry placement: later branch relaxation moves them by
   at most a few words, while the checks here have ~2GB of margin for
   text targets, so the answer cannot flip. *)
let plan_fits (program : S.program) candidate ~addr_of =
  let ok = ref true in
  Array.iter
    (fun (proc : S.proc) ->
      let gp =
        Datalayout.gp_of_proc candidate ~sp_module:proc.S.sp_module
      in
      List.iter
        (fun (n : S.node) ->
          match n.S.insn with
          | S.Gprel { target; addend; part; _ } -> (
              let rel = addr_of candidate target + addend - gp in
              match part with
              | S.Pfull -> if not (I.fits_disp16 rel) then ok := false
              | S.Phi -> if not (I.fits_disp32 rel) then ok := false
              | S.Plo extra -> (
                  match I.split32_opt rel with
                  | Some (_, lo) ->
                      if not (I.fits_disp16 (lo + extra)) then ok := false
                  | None -> ok := false))
          | S.Lea_wide { target; addend; _ } ->
              let rel = addr_of candidate target + addend - gp in
              if not (I.fits_disp32 rel) then ok := false
          | _ -> ())
        proc.S.body)
    program.S.procs;
  !ok

let sum = Array.fold_left ( + ) 0

let run ?(options = Lower.default_options) (program : S.program)
    (plan : Datalayout.plan) (stats : Stats.t) =
  try
    let world = program.S.world in
    let alloc plan =
      match Lower.alloc_gat program plan with
      | Ok ga -> ga
      | Error m -> fail "%s" m
    in
    (* -- exact-GAT replanning: the reservation was a pre-transform
       superset; shrink it to the keys that survived, pulling the rest of
       the data region toward GP (group 0's GP itself never moves, its
       table starts the region) -- *)
    let exact_bytes =
      Array.map (fun n -> max 16 (8 * n)) (alloc plan).Lower.ga_counts
    in
    let plan =
      if exact_bytes = plan.Datalayout.group_gat_bytes then plan
      else begin
        let candidate =
          Datalayout.plan ~live:plan.Datalayout.live world
            ~group_of_module:plan.Datalayout.group_of_module
            ~ngroups:plan.Datalayout.ngroups ~group_gat_bytes:exact_bytes
        in
        let paddrs = proc_addrs program (Lower.place ~options program) in
        let addr_of p t =
          match t with
          | Linker.Resolve.Tproc q -> paddrs.(q)
          | Linker.Resolve.Tobj _ -> Datalayout.address_of world p t
        in
        if plan_fits program candidate ~addr_of then begin
          stats.Stats.relax_gat_bytes_freed <-
            stats.Stats.relax_gat_bytes_freed
            + sum plan.Datalayout.group_gat_bytes
            - sum exact_bytes;
          candidate
        end
        else plan
      end
    in
    (* -- one-time narrowing and GAT-window growth under the final plan.
       Only data objects can narrow: a procedure address is ~0.5GB from
       GP and can never fit the 16-bit form. -- *)
    let ga = alloc plan in
    Array.iter
      (fun (proc : S.proc) ->
        let group = plan.Datalayout.group_of_module.(proc.S.sp_module) in
        let gp = plan.Datalayout.gp_of_group.(group) in
        List.iter
          (fun (n : S.node) ->
            match n.S.insn with
            | S.Lea_wide
                { ra; target = Linker.Resolve.Tobj _ as target; addend } ->
                let rel =
                  Datalayout.address_of world plan target + addend - gp
                in
                if I.fits_disp16 rel then begin
                  n.S.insn <-
                    S.Gprel
                      { insn = I.Lda { ra; rb = R.gp; disp = 0 };
                        target;
                        addend;
                        part = S.Pfull };
                  stats.Stats.sites_narrowed <- stats.Stats.sites_narrowed + 1
                end
            | S.Gatload { ra; key } -> (
                match Hashtbl.find_opt ga.Lower.ga_tables.(group) key with
                | Some slot ->
                    let sa =
                      L.data_base
                      + plan.Datalayout.group_gat_off.(group)
                      + (8 * slot)
                    in
                    if not (I.fits_disp16 (sa - gp)) then begin
                      n.S.insn <- S.Gatload_wide { ra; key };
                      stats.Stats.sites_grown <- stats.Stats.sites_grown + 1
                    end
                | None -> ())
            | _ -> ())
          proc.S.body)
      program.S.procs;
    (* -- the branch fixed point: sizes only grow (or drop to zero by
       elision, which is equally permanent), so each pass that changes
       anything retires at least one site for good — Dickson's linear
       termination argument -- *)
    let nsites =
      let c = ref 0 in
      S.iter_nodes program (fun _ n ->
          match n.S.insn with S.Branch _ -> incr c | _ -> ());
      !c
    in
    let max_iter = nsites + 8 in
    let rec iterate () =
      stats.Stats.relax_iterations <- stats.Stats.relax_iterations + 1;
      let placement = Lower.place ~options program in
      let labels = Lower.label_offsets program placement in
      let changed = ref false in
      S.iter_nodes program (fun proc n ->
          match n.S.insn with
          | S.Branch { insn; target } -> (
              match
                ( Hashtbl.find_opt placement.Lower.node_off n.S.nid,
                  Hashtbl.find_opt labels target )
              with
              | Some off, Some toff -> (
                  match insn with
                  | I.Br { ra; _ }
                    when R.equal ra R.zero && toff = off + 4 ->
                      (* branch to the very next instruction: a pure
                         control no-op. Everything between the node and
                         its target is already width 0 and stays that
                         way, so the elision can never be invalidated. *)
                      n.S.insn <- S.Elided n.S.insn;
                      stats.Stats.branches_elided <-
                        stats.Stats.branches_elided + 1;
                      changed := true
                  | _ ->
                      let disp = (toff - (off + 4)) asr 2 in
                      if not (I.fits_disp21 disp) then begin
                        (match insn with
                        | I.Bsr { ra; _ } ->
                            n.S.insn <- S.Bsr_far { ra; target }
                        | I.Br { ra; _ } ->
                            n.S.insn <- S.Br_far { ra; target }
                        | I.Bcond { cond; ra; _ } ->
                            n.S.insn <- S.Bcond_far { cond; ra; target }
                        | _ ->
                            fail "%s: branch node n%d wraps a non-branch"
                              proc.S.sp_name n.S.nid);
                        stats.Stats.sites_grown <-
                          stats.Stats.sites_grown + 1;
                        changed := true
                      end)
              | _ -> () (* undefined label: lowering reports it *))
          | _ -> ());
      if !changed then
        if stats.Stats.relax_iterations >= max_iter then
          fail "relaxation did not converge after %d passes"
            stats.Stats.relax_iterations
        else iterate ()
    in
    iterate ();
    Ok plan
  with Relax_error m -> Error m
