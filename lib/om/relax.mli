(** Span-dependent instruction relaxation.

    Runs between scheduling and lowering at the Full levels. Three steps,
    all driven by the same placement logic {!Lower} will use to encode:

    - {b exact-GAT replanning}: the layout plan reserved a pre-transform
      superset of GAT entries; re-plan the data region around the entries
      that actually survived, validating every committed gp-relative site
      under the tighter plan and reverting wholesale if any would break
      (the conservative plan is always a correct upper bound);
    - {b narrowing}: sites the tighter plan brought into range take their
      short form (an [ldah]/[lda] pair becomes one gp-relative [lda]);
    - {b the fixed point}: branches to the very next instruction are
      elided, and branches or GAT loads that provably do not fit grow to
      their long forms ({!Symbolic.Bsr_far} etc.). Site sizes move
      monotonically, so the loop terminates after at most one pass per
      site — Dickson's linear-time argument for the branch-displacement
      problem.

    The pass mutates the program's nodes and returns the (possibly
    re-planned) layout the caller must hand to {!Lower.run}. Counters for
    elided/narrowed/grown sites, passes, and freed GAT bytes land in the
    given {!Stats.t}. *)

val run :
  ?options:Lower.options ->
  Symbolic.program ->
  Datalayout.plan ->
  Stats.t ->
  (Datalayout.plan, string) result
