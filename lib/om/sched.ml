module S = Symbolic
module I = Isa.Insn
module R = Isa.Reg

let node_of_sinsn (si : S.sinsn) : Isa.Schedule.node =
  match si with
  | S.Raw i -> Isa.Schedule.node_of_insn i
  | S.Use { insn; _ } -> Isa.Schedule.node_of_insn insn
  | S.Gatload { ra; _ } ->
      Isa.Schedule.node_of_insn (I.Ldq { ra; rb = R.gp; disp = 0 })
  | S.Gpsetup_hi { base; _ } ->
      Isa.Schedule.node_of_insn (I.Ldah { ra = R.gp; rb = base; disp = 0 })
  | S.Gpsetup_lo ->
      Isa.Schedule.node_of_insn (I.Lda { ra = R.gp; rb = R.gp; disp = 0 })
  | S.Branch { insn; _ } -> Isa.Schedule.node_of_insn ~barrier:true insn
  | S.Gprel { insn; part; _ } -> (
      match part with
      | S.Pfull | S.Phi ->
          (* model the lowered shape: base register becomes gp *)
          let rebuilt =
            match insn with
            | I.Ldq { ra; _ } -> I.Ldq { ra; rb = R.gp; disp = 0 }
            | I.Stq { ra; _ } -> I.Stq { ra; rb = R.gp; disp = 0 }
            | I.Lda { ra; _ } -> I.Lda { ra; rb = R.gp; disp = 0 }
            | I.Ldah { ra; _ } -> I.Ldah { ra; rb = R.gp; disp = 0 }
            | other -> other
          in
          Isa.Schedule.node_of_insn rebuilt
      | S.Plo _ -> Isa.Schedule.node_of_insn insn)
  | S.Lea_wide { ra; _ } ->
      { (Isa.Schedule.node_of_insn (I.Lda { ra; rb = R.gp; disp = 0 })) with
        latency = 2 }
  | S.Gatload_wide { ra; _ } ->
      { (Isa.Schedule.node_of_insn (I.Ldq { ra; rb = R.gp; disp = 0 })) with
        latency = 2 }
  (* relaxation-introduced forms only exist after scheduling; treat them
     as barriers so a stray one is never reordered *)
  | S.Bsr_far { ra; _ } ->
      Isa.Schedule.node_of_insn ~barrier:true (I.Bsr { ra; disp = 0 })
  | S.Br_far { ra; _ } ->
      Isa.Schedule.node_of_insn ~barrier:true (I.Br { ra; disp = 0 })
  | S.Bcond_far { cond; ra; _ } ->
      Isa.Schedule.node_of_insn ~barrier:true (I.Bcond { cond; ra; disp = 0 })
  | S.Elided _ ->
      Isa.Schedule.node_of_insn ~barrier:true I.nop

let is_barrier (n : S.node) =
  match n.S.insn with
  | S.Branch _ | S.Bsr_far _ | S.Br_far _ | S.Bcond_far _ | S.Elided _ -> true
  | S.Raw i -> I.is_branch i || (match i with I.Call_pal _ -> true | _ -> false)
  | S.Use { insn; _ } -> I.is_branch insn
  | _ -> false

let schedule_run (nodes : S.node list) =
  match nodes with
  | [] | [ _ ] -> nodes
  | _ ->
      let arr = Array.of_list nodes in
      let descs =
        Array.mapi
          (fun i (n : S.node) ->
            let d = node_of_sinsn n.S.insn in
            (* a labelled node leads the run and cannot move *)
            if i = 0 && n.S.labels <> [] then { d with Isa.Schedule.barrier = true }
            else d)
          arr
      in
      let perm = Isa.Schedule.order descs in
      assert (Isa.Schedule.is_valid_order descs perm);
      Array.to_list (Array.map (fun i -> arr.(i)) perm)

let run (program : S.program) =
  Array.iter
    (fun (proc : S.proc) ->
      let out = ref [] in
      let cur = ref [] in
      let flush () =
        if !cur <> [] then begin
          out := List.rev_append (schedule_run (List.rev !cur)) !out;
          cur := []
        end
      in
      List.iter
        (fun (n : S.node) ->
          if n.S.labels <> [] then begin
            (* a labelled node starts a new run (and leads it) *)
            flush ();
            if is_barrier n then out := n :: !out else cur := [ n ]
          end
          else if is_barrier n then begin
            flush ();
            out := n :: !out
          end
          else cur := n :: !cur)
        proc.S.body;
      flush ();
      proc.S.body <- List.rev !out)
    program.S.procs
