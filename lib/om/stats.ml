type t = {
  mutable insns_before : int;
  mutable insns_after : int;
  mutable nops_added : int;
  mutable insns_deleted : int;
  mutable addr_loads : int;
  mutable addr_converted : int;
  mutable addr_nullified : int;
  mutable const_loads : int;
  mutable calls : int;
  mutable calls_pv_before : int;
  mutable calls_pv_after : int;
  mutable calls_reset_before : int;
  mutable calls_reset_after : int;
  mutable jsr_before : int;
  mutable jsr_after : int;
  mutable gp_setups_deleted : int;
  mutable gat_bytes_before : int;
  mutable gat_bytes_after : int;
  mutable pvs_devirtualized : int;
  mutable procs_deleted : int;
  mutable gc_insns_deleted : int;
  mutable data_bytes_deleted : int;
  mutable branches_elided : int;
  mutable sites_narrowed : int;
  mutable sites_grown : int;
  mutable relax_iterations : int;
  mutable relax_gat_bytes_freed : int;
}

let create () =
  { insns_before = 0;
    insns_after = 0;
    nops_added = 0;
    insns_deleted = 0;
    addr_loads = 0;
    addr_converted = 0;
    addr_nullified = 0;
    const_loads = 0;
    calls = 0;
    calls_pv_before = 0;
    calls_pv_after = 0;
    calls_reset_before = 0;
    calls_reset_after = 0;
    jsr_before = 0;
    jsr_after = 0;
    gp_setups_deleted = 0;
    gat_bytes_before = 0;
    gat_bytes_after = 0;
    pvs_devirtualized = 0;
    procs_deleted = 0;
    gc_insns_deleted = 0;
    data_bytes_deleted = 0;
    branches_elided = 0;
    sites_narrowed = 0;
    sites_grown = 0;
    relax_iterations = 0;
    relax_gat_bytes_freed = 0 }

let measure_before (program : Symbolic.program) (als : Analysis.t) t =
  t.insns_before <- Symbolic.static_insn_count program;
  Symbolic.iter_nodes program (fun _proc n ->
      match n.Symbolic.insn with
      | Symbolic.Gatload { key = Symbolic.Paddr _; _ } ->
          t.addr_loads <- t.addr_loads + 1
      | Symbolic.Gatload { key = Symbolic.Pconst _; _ } ->
          t.const_loads <- t.const_loads + 1
      | _ -> ());
  List.iter
    (fun (cs : Analysis.callsite) ->
      t.calls <- t.calls + 1;
      (match cs.cs_kind with
      | Analysis.Direct { via = `Jsr _; _ } ->
          t.calls_pv_before <- t.calls_pv_before + 1;
          t.jsr_before <- t.jsr_before + 1
      | Analysis.Indirect ->
          t.calls_pv_before <- t.calls_pv_before + 1;
          t.jsr_before <- t.jsr_before + 1
      | Analysis.Direct { via = `Bsr; _ } -> ());
      if Option.is_some cs.cs_reset then
        t.calls_reset_before <- t.calls_reset_before + 1)
    als.Analysis.callsites

let frac_addr_removed t =
  if t.addr_loads = 0 then (0., 0.)
  else
    ( float_of_int t.addr_converted /. float_of_int t.addr_loads,
      float_of_int t.addr_nullified /. float_of_int t.addr_loads )

let frac_insns_nullified t =
  if t.insns_before = 0 then 0.
  else
    float_of_int (t.nops_added + t.insns_deleted)
    /. float_of_int t.insns_before

let to_alist t =
  [ ("insns_before", t.insns_before);
    ("insns_after", t.insns_after);
    ("nops_added", t.nops_added);
    ("insns_deleted", t.insns_deleted);
    ("addr_loads", t.addr_loads);
    ("addr_converted", t.addr_converted);
    ("addr_nullified", t.addr_nullified);
    ("const_loads", t.const_loads);
    ("calls", t.calls);
    ("calls_pv_before", t.calls_pv_before);
    ("calls_pv_after", t.calls_pv_after);
    ("calls_reset_before", t.calls_reset_before);
    ("calls_reset_after", t.calls_reset_after);
    ("jsr_before", t.jsr_before);
    ("jsr_after", t.jsr_after);
    ("gp_setups_deleted", t.gp_setups_deleted);
    ("gat_bytes_before", t.gat_bytes_before);
    ("gat_bytes_after", t.gat_bytes_after);
    ("pvs_devirtualized", t.pvs_devirtualized);
    ("procs_deleted", t.procs_deleted);
    ("gc_insns_deleted", t.gc_insns_deleted);
    ("data_bytes_deleted", t.data_bytes_deleted);
    ("branches_elided", t.branches_elided);
    ("sites_narrowed", t.sites_narrowed);
    ("sites_grown", t.sites_grown);
    ("relax_iterations", t.relax_iterations);
    ("relax_gat_bytes_freed", t.relax_gat_bytes_freed) ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>insns: %d -> %d (%d nop'd, %d deleted)@,\
     address loads: %d (%d converted, %d nullified); %d constant loads@,\
     calls: %d (pv %d -> %d, reset %d -> %d, jsr %d -> %d)@,\
     gp setups deleted: %d; pvs devirtualized: %d@,\
     GAT bytes: %d -> %d@]"
    t.insns_before t.insns_after t.nops_added t.insns_deleted t.addr_loads
    t.addr_converted t.addr_nullified t.const_loads t.calls
    t.calls_pv_before t.calls_pv_after t.calls_reset_before
    t.calls_reset_after t.jsr_before t.jsr_after t.gp_setups_deleted
    t.pvs_devirtualized t.gat_bytes_before t.gat_bytes_after;
  if t.procs_deleted > 0 || t.data_bytes_deleted > 0 then
    Format.fprintf ppf
      "@,gc: %d procedure(s) deleted (%d insns), %d data bytes dropped"
      t.procs_deleted t.gc_insns_deleted t.data_bytes_deleted;
  if t.relax_iterations > 0 then
    Format.fprintf ppf
      "@,relax: %d pass(es); %d branch(es) elided, %d site(s) narrowed, %d \
       grown; %d GAT bytes freed"
      t.relax_iterations t.branches_elided t.sites_narrowed t.sites_grown
      t.relax_gat_bytes_freed
