(** Optimization statistics — the raw material for every figure of the
    paper's §5.1.

    "Address loads" are [Gatload]s whose pool entry is an address (constant
    pool loads are tallied separately). A load is {e converted} when it
    becomes a load-address operation ([lda]/[ldah] forms), {e nullified}
    when it becomes a no-op or is deleted outright. *)

type t = {
  mutable insns_before : int;
  mutable insns_after : int;
  mutable nops_added : int;
  mutable insns_deleted : int;
  mutable addr_loads : int;
  mutable addr_converted : int;
  mutable addr_nullified : int;
  mutable const_loads : int;
  mutable calls : int;
  mutable calls_pv_before : int;
  mutable calls_pv_after : int;
  mutable calls_reset_before : int;
  mutable calls_reset_after : int;
  mutable jsr_before : int;
  mutable jsr_after : int;
  mutable gp_setups_deleted : int;
  mutable gat_bytes_before : int;
  mutable gat_bytes_after : int;
  mutable pvs_devirtualized : int;
      (** GAT-mediated [jsr]s converted to direct [bsr]s {e with} their PV
          address load (and so its GAT slot) removed *)
  mutable procs_deleted : int;        (** unreachable procedures (om-gc) *)
  mutable gc_insns_deleted : int;
      (** static instructions inside deleted procedures (om-gc) *)
  mutable data_bytes_deleted : int;
      (** bytes of dead data sections and commons dropped (om-gc) *)
  mutable branches_elided : int;
      (** branch-to-next instructions relaxation removed outright *)
  mutable sites_narrowed : int;
      (** span-dependent sites rewritten to a shorter form (e.g. an
          [ldah]/[lda] pair to a single gp-relative [lda]) *)
  mutable sites_grown : int;
      (** sites that provably did not fit and took the long form *)
  mutable relax_iterations : int;
      (** placement fixed-point passes until no site changed size *)
  mutable relax_gat_bytes_freed : int;
      (** reservation bytes returned when the exact post-transform GAT
          replaced the pre-transform superset plan *)
}

val create : unit -> t

val measure_before : Symbolic.program -> Analysis.t -> t -> unit
(** Fill the [*_before], [addr_loads], [const_loads] and [calls] fields
    from the untransformed program. A call site "requires a PV load" when
    it is a GAT-mediated [jsr] or an indirect call; it "requires GP-reset
    code" when a GPDISP-linked pair is anchored at its return point. *)

val frac_addr_removed : t -> float * float
(** (converted, nullified) as fractions of [addr_loads]. *)

val frac_insns_nullified : t -> float
(** (nops added + deleted) / static instructions before. *)

val to_alist : t -> (string * int) list
(** Every field, in declaration order, under stable snake_case names —
    the flat form trace counters and JSON reports carry. *)

val pp : Format.formatter -> t -> unit
