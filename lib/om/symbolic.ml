module R = Isa.Reg
module I = Isa.Insn

type label = int

type pool_key =
  | Paddr of Linker.Resolve.target * int
  | Pconst of int64

type anchor = Aentry | Alocal of label

type sinsn =
  | Raw of I.t
  | Gatload of { ra : R.t; key : pool_key }
  | Use of { insn : I.t; load_id : int; jsr : bool }
  | Gpsetup_hi of { base : R.t; anchor : anchor; lo_id : int }
  | Gpsetup_lo
  | Branch of { insn : I.t; target : label }
  | Gprel of {
      insn : I.t;
      target : Linker.Resolve.target;
      addend : int;
      part : part;
    }
  | Lea_wide of { ra : R.t; target : Linker.Resolve.target; addend : int }
  | Gatload_wide of { ra : R.t; key : pool_key }
  | Bsr_far of { ra : R.t; target : label }
  | Br_far of { ra : R.t; target : label }
  | Bcond_far of { cond : I.cond; ra : R.t; target : label }
  | Elided of sinsn

and part = Pfull | Phi | Plo of int

type node = {
  nid : int;
  mutable labels : label list;
  mutable insn : sinsn;
}

type proc = {
  sp_index : int;
  sp_name : string;
  sp_module : int;
  entry_label : label;
  mutable body : node list;
  mutable sp_gp_group : int;
}

type program = {
  world : Linker.Resolve.t;
  mutable procs : proc array;
  mutable next_label : int;
  mutable next_node : int;
  entry_name : string;
}

let fresh_label p =
  let l = p.next_label in
  p.next_label <- l + 1;
  l

let make_node p insn =
  let nid = p.next_node in
  p.next_node <- nid + 1;
  { nid; labels = []; insn }

let insn_of_width = function
  | Lea_wide _ | Gatload_wide _ -> 2
  | Bsr_far _ | Br_far _ -> 4
  | Bcond_far _ -> 5
  | Elided _ -> 0
  | _ -> 1

let find_node proc id = List.find_opt (fun n -> n.nid = id) proc.body

let iter_nodes p f =
  Array.iter (fun proc -> List.iter (f proc) proc.body) p.procs

let defs = function
  | Raw i -> I.defs i
  | Gatload { ra; _ } -> [ ra ]
  | Use { insn; _ } -> I.defs insn
  | Gpsetup_hi _ | Gpsetup_lo -> [ R.gp ]
  | Branch { insn; _ } -> I.defs insn
  | Gprel { insn; _ } -> I.defs insn
  | Lea_wide { ra; _ } -> [ ra ]
  | Gatload_wide { ra; _ } -> [ ra ]
  | Bsr_far { ra; _ } -> List.filter (fun r -> not (R.equal r R.zero)) [ ra; R.pv ]
  | Br_far { ra; _ } -> List.filter (fun r -> not (R.equal r R.zero)) [ ra; R.at ]
  | Bcond_far _ -> [ R.at ]
  | Elided _ -> []

let uses = function
  | Raw i -> I.uses i
  | Gatload _ -> [ R.gp ]
  | Use { insn; _ } -> I.uses insn
  | Gpsetup_hi { base; _ } -> [ base ]
  | Gpsetup_lo -> [ R.gp ]
  | Branch { insn; _ } -> I.uses insn
  | Gprel { insn; part; _ } -> (
      (* for the full/high parts the base register is replaced by gp at
         lowering, but a folded store still reads its data register *)
      match part with
      | Pfull | Phi -> (
          R.gp
          ::
          (match insn with
          | I.Stq { ra; _ } when not (R.equal ra R.zero) -> [ ra ]
          | _ -> []))
      | Plo _ -> I.uses insn)
  | Lea_wide _ -> [ R.gp ]
  | Gatload_wide _ -> [ R.gp ]
  | Bsr_far _ | Br_far _ -> []
  | Bcond_far { ra; _ } -> List.filter (fun r -> not (R.equal r R.zero)) [ ra ]
  | Elided _ -> []

let static_insn_count p =
  Array.fold_left
    (fun acc proc ->
      List.fold_left (fun acc n -> acc + insn_of_width n.insn) acc proc.body)
    0 p.procs

let cond_name = function
  | I.Beq -> "beq" | I.Bne -> "bne" | I.Blt -> "blt" | I.Ble -> "ble"
  | I.Bge -> "bge" | I.Bgt -> "bgt" | I.Blbc -> "blbc" | I.Blbs -> "blbs"

let rec pp_sinsn world ppf = function
  | Raw i -> I.pp ppf i
  | Gatload { ra; key } -> (
      match key with
      | Paddr (t, 0) ->
          Format.fprintf ppf "ldq %a, lit[&%s](gp)" R.pp ra
            (Linker.Resolve.target_name world t)
      | Paddr (t, a) ->
          Format.fprintf ppf "ldq %a, lit[&%s%+d](gp)" R.pp ra
            (Linker.Resolve.target_name world t)
            a
      | Pconst c -> Format.fprintf ppf "ldq %a, lit[%#Lx](gp)" R.pp ra c)
  | Use { insn; load_id; jsr } ->
      Format.fprintf ppf "%a  !lituse%s(n%d)" I.pp insn
        (if jsr then "_jsr" else "")
        load_id
  | Gpsetup_hi { base; anchor; _ } ->
      Format.fprintf ppf "ldah gp, hi(%a)  !gpdisp%s" R.pp base
        (match anchor with Aentry -> "[entry]" | Alocal l -> Printf.sprintf "[L%d]" l)
  | Gpsetup_lo -> Format.fprintf ppf "lda gp, lo(gp)"
  | Branch { insn; target } ->
      let name =
        match insn with
        | I.Br _ -> "br"
        | I.Bsr _ -> "bsr"
        | I.Bcond { cond; _ } -> cond_name cond
        | _ -> "?"
      in
      Format.fprintf ppf "%s L%d" name target
  | Gprel { insn; target; addend; part } ->
      let p =
        match part with Pfull -> "" | Phi -> ".hi" | Plo e ->
          Printf.sprintf ".lo%+d" e
      in
      Format.fprintf ppf "%a  [gp-rel%s &%s%+d]" I.pp insn p
        (Linker.Resolve.target_name world target)
        addend
  | Lea_wide { ra; target; addend } ->
      Format.fprintf ppf "lea32 %a, &%s%+d(gp)" R.pp ra
        (Linker.Resolve.target_name world target)
        addend
  | Gatload_wide { ra; key } -> (
      match key with
      | Paddr (t, a) ->
          Format.fprintf ppf "ldq.w %a, lit[&%s%+d](gp)" R.pp ra
            (Linker.Resolve.target_name world t)
            a
      | Pconst c -> Format.fprintf ppf "ldq.w %a, lit[%#Lx](gp)" R.pp ra c)
  | Bsr_far { ra; target } ->
      Format.fprintf ppf "bsr.far %a, L%d" R.pp ra target
  | Br_far { ra; target } ->
      Format.fprintf ppf "br.far %a, L%d" R.pp ra target
  | Bcond_far { cond; ra; target } ->
      Format.fprintf ppf "%s.far %a, L%d" (cond_name cond) R.pp ra target
  | Elided inner ->
      Format.fprintf ppf "(elided %a)" (pp_sinsn world) inner

let pp_proc world ppf proc =
  Format.fprintf ppf "@[<v>%s (module %d, group %d):@," proc.sp_name
    proc.sp_module proc.sp_gp_group;
  List.iter
    (fun n ->
      List.iter (fun l -> Format.fprintf ppf "L%d:@," l) n.labels;
      Format.fprintf ppf "  n%-4d %a@," n.nid (pp_sinsn world) n.insn)
    proc.body;
  Format.fprintf ppf "@]"
