(** The symbolic program form at the heart of OM.

    The optimizer translates the object code of the entire program into
    this form, transforms it, and generates executable code from the
    result. Because operands that depend on final addresses stay symbolic
    ({!sinsn} constructors other than [Raw]), instructions can be deleted,
    inserted and reordered freely without invalidating address constants or
    branch displacements — the key idea of the paper's §4. *)

type label = int

type pool_key =
  | Paddr of Linker.Resolve.target * int
      (** address of a program object plus addend *)
  | Pconst of int64
      (** a 64-bit literal constant *)

type anchor =
  | Aentry
      (** the base register holds the enclosing procedure's entry address
          ([pv] at procedure entry) *)
  | Alocal of label
      (** the base register holds the address of the labelled position
          ([ra] at a post-call return point) *)

type sinsn =
  | Raw of Isa.Insn.t
      (** concrete instruction; PC-relative branches never appear here *)
  | Gatload of { ra : Isa.Reg.t; key : pool_key }
      (** [ldq ra, slot(gp)] — an address load (or literal-pool load); the
          slot is assigned at lowering *)
  | Use of { insn : Isa.Insn.t; load_id : int; jsr : bool }
      (** an instruction consuming the register produced by the [Gatload]
          node with id [load_id] (the LITUSE link) *)
  | Gpsetup_hi of { base : Isa.Reg.t; anchor : anchor; lo_id : int }
  | Gpsetup_lo
      (** the [ldah]/[lda] pair computing GP; displacements assigned at
          lowering from the procedure's final GP value *)
  | Branch of { insn : Isa.Insn.t; target : label }
      (** PC-relative branch; displacement assigned at lowering *)
  | Gprel of {
      insn : Isa.Insn.t;
      target : Linker.Resolve.target;
      addend : int;
      part : part;
    }
      (** optimizer-introduced: a memory-format instruction whose
          displacement is derived from [address(target) + addend - GP] at
          lowering. [Pfull] is the whole 16-bit displacement (base register
          is [gp]); [Phi]/[Plo] are the halves of the 32-bit split (the
          paper's LDAH trick: an [ldah] over [gp] plus the use instruction
          carrying the low half, same instruction count as the indirect
          sequence). [Plo extra] adds the use's original displacement. *)
  | Lea_wide of { ra : Isa.Reg.t; target : Linker.Resolve.target; addend : int }
      (** optimizer-introduced: load a 32-bit-reachable address in two
          instructions, [ldah ra, hi(gp); lda ra, lo(ra)] *)
  | Gatload_wide of { ra : Isa.Reg.t; key : pool_key }
      (** relaxation-introduced long form of {!Gatload} for a slot outside
          the 16-bit GP window: [ldah ra, hi(gp); ldq ra, lo(ra)] *)
  | Bsr_far of { ra : Isa.Reg.t; target : label }
      (** relaxation-introduced long form of a [bsr] out of 21-bit span:
          [br pv, 0; ldah pv, hi(pv); lda pv, lo(pv); jsr ra, (pv)] — the
          callee address lands in [pv] exactly as the calling convention's
          GP setup expects *)
  | Br_far of { ra : Isa.Reg.t; target : label }
      (** long form of [br]: same shape through the assembler temporary
          [at], with [ra] still receiving the return address *)
  | Bcond_far of { cond : Isa.Insn.cond; ra : Isa.Reg.t; target : label }
      (** long form of a conditional branch: the inverted condition skips
          a {!Br_far}-shaped sequence *)
  | Elided of sinsn
      (** relaxation deleted this branch-to-next; width 0, labels (and so
          branch targets) on the node stay valid *)

and part = Pfull | Phi | Plo of int

type node = {
  nid : int;                    (** unique within the program *)
  mutable labels : label list;  (** labels bound to this position *)
  mutable insn : sinsn;
}

type proc = {
  sp_index : int;               (** index in {!Linker.Resolve.t}'s procs *)
  sp_name : string;
  sp_module : int;
  entry_label : label;
  mutable body : node list;
  mutable sp_gp_group : int;    (** GAT group, assigned before lowering *)
}

type program = {
  world : Linker.Resolve.t;
  mutable procs : proc array;   (** in original text order *)
  mutable next_label : int;
  mutable next_node : int;
  entry_name : string;
}

val fresh_label : program -> label
val make_node : program -> sinsn -> node

val insn_of_width : sinsn -> int
(** Instructions a node expands to at lowering: 2 for [Lea_wide] and
    [Gatload_wide], 4 for [Bsr_far]/[Br_far], 5 for [Bcond_far], 0 for
    [Elided], 1 otherwise. *)

val find_node : proc -> int -> node option
(** Find a node of the procedure by id. *)

val iter_nodes : program -> (proc -> node -> unit) -> unit

val defs : sinsn -> Isa.Reg.t list
val uses : sinsn -> Isa.Reg.t list
(** Register effects, GP included where applicable. *)

val static_insn_count : program -> int

val pp_proc : Linker.Resolve.t -> Format.formatter -> proc -> unit
(** Readable dump for debugging and the [dis] command. *)
