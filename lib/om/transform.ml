module S = Symbolic
module I = Isa.Insn
module R = Isa.Reg

type level = Simple | Full

type options = {
  opt_calls : bool;
  opt_addr : bool;
  opt_setup_motion : bool;
  opt_setup_deletion : bool;
}

let default_options =
  { opt_calls = true;
    opt_addr = true;
    opt_setup_motion = true;
    opt_setup_deletion = true }

(* Remove a node, handing its labels to the following instruction so that
   branch targets stay meaningful. *)
let delete_node (proc : S.proc) (dead : S.node) =
  let rec go = function
    | [] -> []
    | n :: rest when n == dead -> (
        match rest with
        | next :: _ ->
            next.S.labels <- dead.S.labels @ next.S.labels;
            rest
        | [] ->
            (* deleting the final instruction would orphan its labels;
               degrade to a no-op instead (does not arise in practice) *)
            dead.S.insn <- S.Raw I.nop;
            [ dead ])
    | n :: rest -> n :: go rest
  in
  proc.S.body <- go proc.S.body

let setup_at_entry (proc : S.proc) =
  match proc.S.body with
  | ({ S.insn = S.Gpsetup_hi { anchor = S.Aentry; lo_id; _ }; _ } as hi)
    :: ({ S.insn = S.Gpsetup_lo; _ } as lo)
    :: _
    when lo.S.nid = lo_id -> Some (hi, lo)
  | _ -> None

let move_setups_to_entry (program : S.program) =
  Array.iter
    (fun (proc : S.proc) ->
      if Option.is_none (setup_at_entry proc) then
        let hi_lo =
          List.find_map
            (fun (n : S.node) ->
              match n.S.insn with
              | S.Gpsetup_hi { anchor = S.Aentry; lo_id; _ } -> (
                  match S.find_node proc lo_id with
                  | Some lo -> Some (n, lo)
                  | None -> None)
              | _ -> None)
            proc.S.body
        in
        match hi_lo with
        | Some (hi, lo)
          when lo.S.labels = []
               && (hi.S.labels = []
                  ||
                  match proc.S.body with
                  | first :: _ -> first == hi
                  | [] -> false) ->
            let rest =
              List.filter (fun n -> n != hi && n != lo) proc.S.body
            in
            (* the entry label must stay at offset 0 *)
            let entry = proc.S.entry_label in
            (match rest with
            | f :: _ when List.mem entry f.S.labels ->
                f.S.labels <- List.filter (fun l -> l <> entry) f.S.labels;
                hi.S.labels <- entry :: hi.S.labels
            | _ -> ());
            proc.S.body <- hi :: lo :: rest
        | _ -> ())
    program.S.procs

(* Per-procedure node positions (analysis-time order), for the locality
   restriction OM-simple puts on GP-reset nullification. *)
let positions (program : S.program) =
  let pos = Hashtbl.create 1024 in
  Array.iter
    (fun (proc : S.proc) ->
      List.iteri (fun i (n : S.node) -> Hashtbl.replace pos n.S.nid i)
        proc.S.body)
    program.S.procs;
  pos

let run ?(options = default_options) ?section_live level
    (program : S.program) (plan : Datalayout.plan) (stats : Stats.t) =
  if level = Full && options.opt_setup_motion then move_setups_to_entry program;
  let als = Analysis.run ~local_only:(level = Simple) ?section_live program in
  Stats.measure_before program als stats;
  let world = program.S.world in
  let pos = positions program in
  let sym_of_world = Hashtbl.create 64 in
  Array.iter
    (fun (proc : S.proc) -> Hashtbl.replace sym_of_world proc.S.sp_index proc)
    program.S.procs;
  let group_of (proc : S.proc) = plan.Datalayout.group_of_module.(proc.S.sp_module) in
  let nullify (proc : S.proc) (n : S.node) =
    match level with
    | Simple ->
        n.S.insn <- S.Raw I.nop;
        stats.Stats.nops_added <- stats.Stats.nops_added + 1
    | Full ->
        delete_node proc n;
        stats.Stats.insns_deleted <- stats.Stats.insns_deleted + 1
  in
  (* skip labels: branch target just past a callee's entry GP setup *)
  let skip_labels = Hashtbl.create 16 in
  let proc_skip_point (callee : S.proc) =
    match callee.S.body with
    | _hi :: _lo :: next :: _ -> Some next
    | _ -> None
  in
  let skip_label (callee : S.proc) =
    match Hashtbl.find_opt skip_labels callee.S.sp_index with
    | Some l -> l
    | None -> (
        match proc_skip_point callee with
        | Some node ->
            let l = S.fresh_label program in
            node.S.labels <- l :: node.S.labels;
            Hashtbl.replace skip_labels callee.S.sp_index l;
            l
        | None -> callee.S.entry_label)
  in
  (* --- call sites --- *)
  let nprocs = Array.length world.Linker.Resolve.procs in
  let entered_at_entry = Array.make nprocs false in
  let handled_loads = Hashtbl.create 64 in
  List.iter
    (fun (cs : Analysis.callsite) ->
      let caller = program.S.procs.(cs.cs_proc) in
      let keep_reset () =
        match cs.cs_reset with
        | Some _ ->
            stats.Stats.calls_reset_after <- stats.Stats.calls_reset_after + 1
        | None -> ()
      in
      let handle_reset ~same_group ~callee_no_gp =
        match cs.cs_reset with
        | None -> ()
        | Some (hi, lo) ->
            let local_enough =
              level = Full
              ||
              let p n = Hashtbl.find_opt pos n.S.nid in
              match (p cs.cs_node, p hi, p lo) with
              | Some c, Some ph, Some pl -> ph - c <= 4 && pl - c <= 4
              | _ -> false
            in
            if (same_group || callee_no_gp) && local_enough then begin
              nullify caller hi;
              nullify caller lo
            end
            else
              stats.Stats.calls_reset_after <- stats.Stats.calls_reset_after + 1
      in
      if not options.opt_calls then begin
        (* ablated: count everything as untouched *)
        (match cs.cs_kind with
        | Analysis.Direct { via = `Jsr _; _ } | Analysis.Indirect ->
            stats.Stats.calls_pv_after <- stats.Stats.calls_pv_after + 1;
            stats.Stats.jsr_after <- stats.Stats.jsr_after + 1
        | Analysis.Direct { via = `Bsr; _ } -> ());
        (match cs.cs_kind with
        | Analysis.Direct { callee; _ } -> entered_at_entry.(callee) <- true
        | Analysis.Indirect -> ());
        keep_reset ()
      end
      else
      match cs.cs_kind with
      | Analysis.Indirect ->
          stats.Stats.calls_pv_after <- stats.Stats.calls_pv_after + 1;
          stats.Stats.jsr_after <- stats.Stats.jsr_after + 1;
          keep_reset ()
      | Analysis.Direct { callee; via = `Bsr } ->
          (* compiled as an optimized local call already *)
          (match cs.cs_node.S.insn with
          | S.Branch { target; _ } -> (
              match Hashtbl.find_opt als.Analysis.label_home target with
              | Some (tpi, tnode) ->
                  let tproc = program.S.procs.(tpi) in
                  let enters_entry =
                    match tproc.S.body with
                    | first :: _ -> first == tnode
                    | [] -> false
                  in
                  if
                    enters_entry
                    && world.Linker.Resolve.procs.(callee).p_uses_gp
                  then entered_at_entry.(callee) <- true
              | None -> ())
          | _ -> ());
          keep_reset ()
      | Analysis.Direct { callee; via = `Jsr load } -> (
          match Hashtbl.find_opt sym_of_world callee with
          | None ->
              (* callee not lifted: leave the site untouched *)
              stats.Stats.calls_pv_after <- stats.Stats.calls_pv_after + 1;
              stats.Stats.jsr_after <- stats.Stats.jsr_after + 1;
              entered_at_entry.(callee) <- true;
              keep_reset ()
          | Some callee_sym ->
              let callee_w = world.Linker.Resolve.procs.(callee) in
              let same_group = group_of caller = group_of callee_sym in
              let target, pv_removable =
                if not callee_w.p_uses_gp then (callee_sym.S.entry_label, true)
                else if same_group && Option.is_some (setup_at_entry callee_sym)
                then (skip_label callee_sym, true)
                else (callee_sym.S.entry_label, false)
              in
              let pv_clean =
                match Hashtbl.find_opt als.Analysis.gatload_status load.S.nid with
                | Some (Analysis.All_marked us) ->
                    us <> [] && List.for_all (fun u -> u == cs.cs_node) us
                | _ -> false
              in
              (* the jsr becomes a bsr in either case *)
              cs.cs_node.S.insn <-
                S.Branch { insn = I.Bsr { ra = R.ra; disp = 0 }; target };
              Hashtbl.replace handled_loads load.S.nid ();
              if pv_removable && pv_clean then begin
                nullify caller load;
                stats.Stats.addr_nullified <- stats.Stats.addr_nullified + 1;
                stats.Stats.pvs_devirtualized <-
                  stats.Stats.pvs_devirtualized + 1
              end
              else begin
                stats.Stats.calls_pv_after <- stats.Stats.calls_pv_after + 1;
                if target = callee_sym.S.entry_label && callee_w.p_uses_gp then
                  entered_at_entry.(callee) <- true
              end;
              handle_reset ~same_group ~callee_no_gp:(not callee_w.p_uses_gp)))
    als.Analysis.callsites;
  (* --- address loads --- *)
  if options.opt_addr then
  Array.iter
    (fun (proc : S.proc) ->
      let gp = Datalayout.gp_of_proc plan ~sp_module:proc.S.sp_module in
      List.iter
        (fun (load : S.node) ->
          match load.S.insn with
          | S.Gatload { ra; key = S.Paddr ((Linker.Resolve.Tobj _ as target), key_addend) }
            when not (Hashtbl.mem handled_loads load.S.nid) -> (
              let addr = Datalayout.address_of world plan target + key_addend in
              let status =
                Hashtbl.find_opt als.Analysis.gatload_status load.S.nid
              in
              (* a use is foldable when its base really is the loaded value
                 and the resulting displacement fits *)
              let use_mem_parts (u : S.node) =
                match u.S.insn with
                | S.Use { insn = I.Ldq { ra = dst; rb = base; disp }; _ } ->
                    if R.equal base ra then Some (`Ld dst, disp) else None
                | S.Use { insn = I.Stq { ra = src; rb = base; disp }; _ } ->
                    if R.equal base ra && not (R.equal src ra) then
                      Some (`St src, disp)
                    else None
                | _ -> None
              in
              let fold_ok d = I.fits_disp16 (addr + d - gp) in
              let lo_ok d =
                I.fits_disp32 (addr - gp)
                &&
                let _, lo = I.split32 (addr - gp) in
                I.fits_disp16 (lo + d)
              in
              match status with
              | Some (Analysis.All_marked uses)
                when List.for_all
                       (fun u ->
                         match use_mem_parts u with
                         | Some (_, d) -> fold_ok d
                         | None -> false)
                       uses ->
                  (* every consumer reaches its datum GP-relative: fold
                     each use (its own displacement goes into the addend)
                     and nullify the address load *)
                  List.iter
                    (fun (u : S.node) ->
                      match (u.S.insn, use_mem_parts u) with
                      | S.Use { insn; _ }, Some (_, d) ->
                          u.S.insn <-
                            S.Gprel
                              { insn;
                                target;
                                addend = key_addend + d;
                                part = S.Pfull }
                      | _ -> assert false)
                    uses;
                  nullify proc load;
                  stats.Stats.addr_nullified <- stats.Stats.addr_nullified + 1
              | _ when I.fits_disp16 (addr - gp) ->
                  load.S.insn <-
                    S.Gprel
                      { insn = I.Lda { ra; rb = R.gp; disp = 0 };
                        target;
                        addend = key_addend;
                        part = S.Pfull };
                  stats.Stats.addr_converted <- stats.Stats.addr_converted + 1
              | Some (Analysis.All_marked uses)
                when uses <> []
                     && List.for_all
                          (fun u ->
                            match use_mem_parts u with
                            | Some (_, d) -> lo_ok d
                            | None -> false)
                          uses ->
                  (* the LDAH trick: same instruction count *)
                  load.S.insn <-
                    S.Gprel
                      { insn = I.Ldah { ra; rb = R.gp; disp = 0 };
                        target;
                        addend = key_addend;
                        part = S.Phi };
                  List.iter
                    (fun (u : S.node) ->
                      match (u.S.insn, use_mem_parts u) with
                      | S.Use { insn; _ }, Some (_, d) ->
                          u.S.insn <-
                            S.Gprel
                              { insn; target; addend = key_addend; part = S.Plo d }
                      | _ -> assert false)
                    uses;
                  stats.Stats.addr_converted <- stats.Stats.addr_converted + 1
              | _ when level = Full ->
                  load.S.insn <- S.Lea_wide { ra; target; addend = key_addend };
                  stats.Stats.addr_converted <- stats.Stats.addr_converted + 1
              | _ -> (* OM-simple keeps the GAT load *) ())
          | _ -> ())
        proc.S.body)
    program.S.procs;
  (* --- prologue GP-setup deletion (Full) --- *)
  if level = Full && options.opt_setup_deletion then
    Array.iter
      (fun (proc : S.proc) ->
        let p = proc.S.sp_index in
        if
          (not als.Analysis.address_taken.(p))
          && p <> world.Linker.Resolve.entry_proc
          && not entered_at_entry.(p)
        then
          match setup_at_entry proc with
          | Some (hi, lo) ->
              delete_node proc hi;
              delete_node proc lo;
              stats.Stats.insns_deleted <- stats.Stats.insns_deleted + 2;
              stats.Stats.gp_setups_deleted <- stats.Stats.gp_setups_deleted + 1
          | None -> ())
      program.S.procs;
  stats.Stats.insns_after <- S.static_insn_count program;
  als
