(** The address-calculation optimizations (the paper's §3).

    [Simple] is what a traditional linker could do — purely local analysis,
    no code motion, unneeded instructions become no-ops:
    - GAT loads of data within the GP window fold into their LITUSE-linked
      uses (nullified) or become a single GP-relative [lda] (converted);
    - data reachable only via a 32-bit displacement uses the LDAH trick
      when every use can absorb the low half — same instruction count;
    - [jsr]s to destinations found in the GAT become [bsr]s; the PV load
      is nullified only when the callee's GP setup is still the first two
      instructions (compile-time scheduling usually moved it) or the
      callee needs no GP at all;
    - GP-reset pairs after same-GAT calls are nullified when both halves
      sit within a small window after the call.

    [Full] understands the control structure and may move, insert and
    delete code:
    - GP setups are restored to their logical place at procedure entry, so
      every same-group call can branch past them;
    - liveness over the recovered CFG widens the set of foldable loads;
    - escaping far references become two-instruction [Lea_wide] sequences;
    - unneeded instructions are deleted, not nullified;
    - prologue GP setups of procedures whose every entry skips them are
      deleted ({e GAT reduction}: the surviving loads determine the final,
      much smaller table). *)

type level = Simple | Full

type options = {
  opt_calls : bool;
      (** jsr-to-bsr conversion, PV-load and GP-reset removal *)
  opt_addr : bool;
      (** address-load folding and conversion *)
  opt_setup_motion : bool;
      (** restore GP setups to procedure entry ([Full] only) *)
  opt_setup_deletion : bool;
      (** delete prologue GP setups that every entry skips ([Full] only) *)
}

val default_options : options
(** Everything enabled — what {!Om.link} uses. The ablation benchmarks
    switch features off one at a time to price each one. *)

val run :
  ?options:options ->
  ?section_live:(int -> Objfile.Section.t -> bool) ->
  level -> Symbolic.program -> Datalayout.plan ->
  Stats.t -> Analysis.t
(** Transform the program in place. Returns the analysis that was used
    (computed after [Full]'s setup motion), mainly for tests.
    [section_live] is forwarded to {!Analysis.run} — om-gc's refinement
    of the PV escape facts. *)

val move_setups_to_entry : Symbolic.program -> unit
(** The [Full]-mode code motion, exposed for testing. *)

val setup_at_entry :
  Symbolic.proc -> (Symbolic.node * Symbolic.node) option
(** The procedure's GP-setup pair when it consists of the first two
    instructions. *)
