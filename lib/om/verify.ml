module I = Isa.Insn
module R = Isa.Reg

type issue = { at : int; what : string }

let pp_issue ppf i = Format.fprintf ppf "%#x: %s" i.at i.what

let image (img : Linker.Image.t) =
  let issues = ref [] in
  let problem at fmt =
    Format.kasprintf (fun what -> issues := { at; what } :: !issues) fmt
  in
  match Isa.Decode.of_bytes img.Linker.Image.text with
  | Error e ->
      [ { at = img.text_base;
          what = Format.asprintf "text does not decode: %a" Isa.Decode.pp_error e } ]
  | Ok insns_list ->
      let insns = Array.of_list insns_list in
      let text_end = img.text_base + (4 * Array.length insns) in
      let data_end = img.data_base + Bytes.length img.Linker.Image.data in
      let proc_of addr = Linker.Image.proc_containing img addr in
      (* entry *)
      (match proc_of img.entry with
      | Some p when p.entry = img.entry -> ()
      | _ -> problem img.entry "entry point is not a procedure entry");
      (* legitimate cross-procedure entry points: the entry itself, or the
         instruction just past an entry GP-setup pair — in either case
         possibly preceded by alignment no-ops *)
      let only_nops_between a b =
        let rec go addr =
          addr >= b
          || (I.is_nop insns.((addr - img.text_base) / 4) && go (addr + 4))
        in
        a <= b && go a
      in
      let valid_cross_target (p : Linker.Image.proc_info) target =
        only_nops_between p.entry target
        || (p.gp_setup_at_entry && only_nops_between (p.entry + 8) target)
      in
      Array.iter
        (fun (p : Linker.Image.proc_info) ->
          let first = (p.entry - img.text_base) / 4 in
          let count = p.size / 4 in
          let check_code_target addr what target =
            if target < img.text_base || target >= text_end then
              problem addr "%s target %#x outside text" what target
            else if target land 3 <> 0 then
              problem addr "%s target %#x is not instruction-aligned" what
                target
            else
              match proc_of target with
              | Some tp when String.equal tp.name p.name -> ()
              | Some tp ->
                  if not (valid_cross_target tp target) then
                    problem addr
                      "%s into the middle of %s (target %#x, entry %#x)" what
                      tp.name target tp.entry
              | None -> problem addr "%s target %#x in no procedure" what target
          in
          (* the gp_setup_at_entry flag must match the bytes *)
          (if p.gp_setup_at_entry then
             match (insns.(first), insns.(first + 1)) with
             | I.Ldah { ra = r1; _ }, I.Lda { ra = r2; rb; _ }
               when R.equal r1 R.gp && R.equal r2 R.gp && R.equal rb R.gp -> ()
             | _ ->
                 problem p.entry "%s: gp_setup_at_entry but no pair at entry"
                   p.name);
          for k = first to first + count - 1 do
            let addr = img.text_base + (4 * k) in
            match insns.(k) with
            | I.Br { ra = r; disp = 0 }
              when (not (R.equal r R.zero)) && k + 3 < first + count -> (
                match (insns.(k + 1), insns.(k + 2), insns.(k + 3)) with
                | ( I.Ldah { ra = a1; rb = b1; disp = hi },
                    I.Lda { ra = a2; rb = b2; disp = lo },
                    I.Jump { rb = j; _ } )
                  when R.equal a1 r && R.equal b1 r && R.equal a2 r
                       && R.equal b2 r && R.equal j r ->
                    (* a relaxed far branch: [br r, 0] captures the ldah's
                       address, the ldah/lda pair adds a 32-bit
                       displacement, and the jump transfers. Recompute the
                       target from the bytes and hold it to the same rules
                       as a direct branch. *)
                    check_code_target addr "far branch"
                      (addr + 4 + (hi * 65536) + lo)
                | _ -> check_code_target addr "branch" (addr + 4))
            | I.Br { disp; _ } | I.Bsr { disp; _ } | I.Bcond { disp; _ } ->
                check_code_target addr "branch" (addr + 4 + (4 * disp))
            | I.Ldq { ra = rdest; rb; disp } when R.equal rb R.gp ->
                let a = p.gp_value + disp in
                if a < img.data_base || a + 8 > data_end then
                  problem addr "gp-relative load from %#x outside data" a
                else if
                  a >= img.gat_base
                  && a + 8 <= img.gat_base + img.gat_bytes
                  && not (R.equal rdest R.gp)
                then begin
                  (* A GAT slot load: follow the loaded value to its first
                     uses. An indirect jump through it must land on a
                     procedure entry; a memory access based on it must stay
                     inside the data segment. This is what catches a
                     dangling slot left behind by a bad GC: the procedure
                     or datum it named is gone but the code still loads and
                     uses it. The scan is conservative — it stops at the
                     first redefinition or control transfer. *)
                  let value =
                    Int64.to_int
                      (Bytes.get_int64_le img.data (a - img.data_base))
                  in
                  let rec follow j =
                    if j < first + count then
                      let jaddr = img.text_base + (4 * j) in
                      match insns.(j) with
                      | I.Jump { rb; _ } when R.equal rb rdest -> (
                          match proc_of value with
                          | Some tp when valid_cross_target tp value -> ()
                          | _ ->
                              problem jaddr
                                "indirect jump via GAT slot %#x: %#x is not \
                                 a procedure entry"
                                a value)
                      | (I.Ldq { rb; disp; _ } | I.Stq { rb; disp; _ }) as i
                        when R.equal rb rdest ->
                          let ea = value + disp in
                          if ea < img.data_base || ea + 8 > data_end then
                            problem jaddr
                              "memory access via GAT slot %#x: address %#x \
                               outside data"
                              a ea;
                          if List.exists (R.equal rdest) (I.defs i) then ()
                          else follow (j + 1)
                      | i ->
                          if
                            I.is_branch i
                            || List.exists (R.equal rdest) (I.defs i)
                          then ()
                          else follow (j + 1)
                  in
                  follow (k + 1)
                end
            | I.Stq { rb; disp; _ } when R.equal rb R.gp ->
                let a = p.gp_value + disp in
                if a < img.data_base || a + 8 > data_end then
                  problem addr "gp-relative store to %#x outside data" a
            | I.Lda { ra; rb; disp } when R.equal rb R.gp && not (R.equal ra R.gp)
              ->
                let a = p.gp_value + disp in
                if a < img.data_base || a >= data_end then
                  problem addr "gp-relative address %#x outside data" a
            | I.Ldah { ra; rb; disp = hi }
              when R.equal rb R.gp && not (R.equal ra R.gp) ->
                (* the hi half of a two-instruction GP-relative address
                   (lea-wide, wide GAT load, or the LDAH trick): whatever
                   lo lands later can move it by at most 32K, so the hi
                   part alone must already point within 32K of the data
                   segment *)
                let a = p.gp_value + (hi * 65536) in
                if a < img.data_base - 0x8000 || a > data_end + 0x8000 then
                  problem addr "ldah off gp reaches %#x, far outside data" a
            | I.Ldah { ra; rb; disp = hi } when R.equal ra R.gp && R.equal rb R.pv
              -> (
                (* a prologue GP setup: its pair must recompute gp_value *)
                let rec find_lo j =
                  if j >= first + count then None
                  else
                    match insns.(j) with
                    | I.Lda { ra; rb; disp }
                      when R.equal ra R.gp && R.equal rb R.gp -> Some disp
                    | _ -> find_lo (j + 1)
                in
                match find_lo (k + 1) with
                | Some lo ->
                    let computed = p.entry + (hi * 65536) + lo in
                    if computed <> p.gp_value then
                      problem addr
                        "%s: GP setup computes %#x but descriptor says %#x"
                        p.name computed p.gp_value
                | None -> problem addr "%s: ldah gp,(pv) without its lda" p.name)
            | _ -> ()
          done)
        img.procs;
      List.rev !issues

let check img =
  match image img with
  | [] -> Ok ()
  | issues ->
      let head = List.filteri (fun i _ -> i < 5) issues in
      Error
        (Format.asprintf "%d issue(s): %a"
           (List.length issues)
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              pp_issue)
           head)
