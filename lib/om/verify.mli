(** An independent checker for linked images.

    The optimizer rewrites machine code wholesale, so a second pair of eyes
    is cheap insurance: [Verify.image] re-derives structural facts from the
    {e bytes} of a linked image (standard or optimized) and checks them
    against the loader metadata, with no access to the symbolic form that
    produced them. The tests run every link configuration through it.

    Checks:
    - the text decodes, and every PC-relative branch lands on an
      instruction boundary inside the same procedure or on a procedure
      entry / post-GP-setup point of another one;
    - relaxed far-branch sequences ([br r, 0]; [ldah r, hi(r)];
      [lda r, lo(r)]; [jmp/jsr (r)]) are recomputed from the bytes and
      their synthesized target held to the same rules as a direct branch;
    - every [ldah rX, hi(gp)] with [rX <> gp] (the hi half of a
      two-instruction GP-relative address) points within 32K of the data
      segment — the most a lo part could still correct;
    - every GP-relative quadword load ([ldq rX, d(gp)]) falls inside the
      image's data region;
    - when such a load reads a GAT slot, the slot's {e value} is checked
      against its first uses: an indirect [Jump] through the loaded
      register must target a procedure entry (or a post-GP-setup point),
      and a quadword access based on it must stay inside the data segment.
      This is the check that catches images corrupted by a bad garbage
      collection — a call into a deleted procedure, a GAT slot naming
      GC'd data, or a dangling relocation — while holding on standard
      images, whose slots are always valid;
    - each procedure's GPDISP-style setup (an [ldah gp, hi(pv)] followed
      somewhere by [lda gp, lo(gp)]) computes exactly the procedure's
      recorded GP value — checked for prologues anchored on [pv];
    - procedures marked [gp_setup_at_entry] really begin with the pair;
    - the entry point is a known procedure. *)

type issue = { at : int; what : string }

val pp_issue : Format.formatter -> issue -> unit

val image : Linker.Image.t -> issue list
(** All problems found; the empty list means the image passed. *)

val check : Linker.Image.t -> (unit, string) result
(** [image] with the first few issues formatted into a message. *)
