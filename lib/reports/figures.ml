type matrix = Measure.result list

let find matrix ~bench ~build =
  List.find_opt
    (fun (r : Measure.result) ->
      String.equal r.bench bench && r.build = build)
    matrix

let benches matrix =
  List.sort_uniq compare (List.map (fun (r : Measure.result) -> r.bench) matrix)

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let pct x = 100. *. x

let render ppf ~title ~headers ~rows =
  (* rows: (label, float list list) — one float list per build *)
  Format.fprintf ppf "@[<v>%s@," title;
  let ncols = List.length headers in
  let seg_width = (ncols * 8) + 1 in
  Format.fprintf ppf "%-10s" "";
  List.iter
    (fun b ->
      Format.fprintf ppf "| %-*s" seg_width (Workloads.Suite.build_name b))
    Workloads.Suite.all_builds;
  Format.fprintf ppf "@,%-10s" "program";
  List.iter
    (fun _ ->
      Format.fprintf ppf "|";
      List.iter (fun h -> Format.fprintf ppf " %7s" h) headers;
      Format.fprintf ppf "  ")
    Workloads.Suite.all_builds;
  Format.fprintf ppf "@,";
  List.iter
    (fun (label, per_build) ->
      Format.fprintf ppf "%-10s" label;
      List.iter
        (fun cells ->
          Format.fprintf ppf "|";
          List.iter (fun v -> Format.fprintf ppf " %7.1f" v) cells;
          Format.fprintf ppf "  ")
        per_build;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

let rows_of matrix (cells : Measure.result -> float list) ~ncols =
  let names = benches matrix in
  let row name =
    ( name,
      List.map
        (fun build ->
          match find matrix ~bench:name ~build with
          | Some r -> cells r
          | None -> List.init ncols (fun _ -> nan))
        Workloads.Suite.all_builds )
  in
  let data_rows = List.map row names in
  let mean_row =
    ( "MEAN",
      List.mapi
        (fun bi _ ->
          List.init ncols (fun ci ->
              mean
                (List.filter_map
                   (fun (_, per_build) ->
                     let cells = List.nth per_build bi in
                     let v = List.nth cells ci in
                     if Float.is_nan v then None else Some v)
                   data_rows)))
        Workloads.Suite.all_builds )
  in
  data_rows @ [ mean_row ]

let get_stats (r : Measure.result) level =
  match Measure.stats_of r level with
  | Some s -> s
  | None -> Om.Stats.create ()

let fig3 ppf matrix =
  let cells (r : Measure.result) =
    let s = get_stats r Om.Simple in
    let f = get_stats r Om.Full in
    let sc, sn = Om.Stats.frac_addr_removed s in
    let fc, fn = Om.Stats.frac_addr_removed f in
    [ pct sc; pct sn; pct fc; pct fn ]
  in
  render ppf
    ~title:
      "Figure 3: static % of address loads removed (conv = changed to a \
       load-address op, null = no-op'd or deleted)"
    ~headers:[ "s-conv"; "s-null"; "f-conv"; "f-null" ]
    ~rows:(rows_of matrix cells ~ncols:4)

let fig4 ppf matrix =
  let frac n d = if d = 0 then 0. else float_of_int n /. float_of_int d in
  let pv_cells (r : Measure.result) =
    let s = get_stats r Om.Simple in
    let f = get_stats r Om.Full in
    [ pct (frac s.Om.Stats.calls_pv_before s.Om.Stats.calls);
      pct (frac s.Om.Stats.calls_pv_after s.Om.Stats.calls);
      pct (frac f.Om.Stats.calls_pv_after f.Om.Stats.calls) ]
  in
  let reset_cells (r : Measure.result) =
    let s = get_stats r Om.Simple in
    let f = get_stats r Om.Full in
    [ pct (frac s.Om.Stats.calls_reset_before s.Om.Stats.calls);
      pct (frac s.Om.Stats.calls_reset_after s.Om.Stats.calls);
      pct (frac f.Om.Stats.calls_reset_after f.Om.Stats.calls) ]
  in
  render ppf
    ~title:"Figure 4 (top): static % of calls requiring a PV load"
    ~headers:[ "no-OM"; "simple"; "full" ]
    ~rows:(rows_of matrix pv_cells ~ncols:3);
  Format.fprintf ppf "@.";
  render ppf
    ~title:"Figure 4 (bottom): static % of calls requiring GP-reset code"
    ~headers:[ "no-OM"; "simple"; "full" ]
    ~rows:(rows_of matrix reset_cells ~ncols:3)

let fig5 ppf matrix =
  let cells (r : Measure.result) =
    [ pct (Om.Stats.frac_insns_nullified (get_stats r Om.Simple));
      pct (Om.Stats.frac_insns_nullified (get_stats r Om.Full)) ]
  in
  render ppf
    ~title:"Figure 5: static % of instructions nullified (simple) or deleted (full)"
    ~headers:[ "simple"; "full" ]
    ~rows:(rows_of matrix cells ~ncols:2)

let fig6 ppf matrix =
  let cells (r : Measure.result) =
    [ Measure.improvement r Om.Simple;
      Measure.improvement r Om.Full;
      Measure.improvement r Om.Full_sched ]
  in
  render ppf
    ~title:
      "Figure 6: dynamic % improvement in simulated cycles over a program \
       without link-time optimization"
    ~headers:[ "simple"; "full"; "f+sched" ]
    ~rows:(rows_of matrix cells ~ncols:3)

let gat_table ppf matrix =
  let cells (r : Measure.result) =
    let f = get_stats r Om.Full in
    [ float_of_int f.Om.Stats.gat_bytes_before;
      float_of_int f.Om.Stats.gat_bytes_after;
      (if f.Om.Stats.gat_bytes_before = 0 then 0.
       else
         pct
           (float_of_int f.Om.Stats.gat_bytes_after
           /. float_of_int f.Om.Stats.gat_bytes_before)) ]
  in
  render ppf
    ~title:"GAT size under OM-full (bytes before, after, % remaining)"
    ~headers:[ "before"; "after"; "%left" ]
    ~rows:(rows_of matrix cells ~ncols:3)

let fig7 ppf timings =
  (* columns derive from [Om.all_levels]: a new level shows up here with
     no figure edit *)
  let levels = Om.all_levels in
  let short l =
    let n = Om.level_name l in
    if String.length n <= 9 then n else String.sub n 0 9
  in
  Format.fprintf ppf
    "@[<v>Figure 7: build times in milliseconds (standard link from \
     objects; compile-all from source; OM from objects)@,";
  Format.fprintf ppf "%-10s %9s %9s" "program" "std-link" "interproc";
  List.iter (fun l -> Format.fprintf ppf " %9s" (short l)) levels;
  Format.fprintf ppf "@,";
  let ms t = 1000. *. t in
  let totals = Array.make (2 + List.length levels) 0. in
  List.iter
    (fun (name, (t : Measure.timing)) ->
      let cols =
        t.t_std_link :: t.t_interproc
        :: List.map
             (fun l -> Option.value (List.assoc_opt l t.t_om) ~default:0.)
             levels
      in
      List.iteri (fun i v -> totals.(i) <- totals.(i) +. v) cols;
      Format.fprintf ppf "%-10s" name;
      List.iter (fun v -> Format.fprintf ppf " %9.2f" (ms v)) cols;
      Format.fprintf ppf "@,")
    timings;
  let n = max 1 (List.length timings) in
  Format.fprintf ppf "%-10s" "MEAN";
  Array.iter
    (fun v -> Format.fprintf ppf " %9.2f" (ms v /. float_of_int n))
    totals;
  Format.fprintf ppf "@,@]"

let summary ppf matrix =
  let avg build level =
    mean
      (List.filter_map
         (fun (r : Measure.result) ->
           if r.build = build then Some (Measure.improvement r level)
           else None)
         matrix)
  in
  let e = Workloads.Suite.Compile_each and a = Workloads.Suite.Compile_all in
  let gat_left =
    mean
      (List.filter_map
         (fun (r : Measure.result) ->
           if r.build = e then
             let f = get_stats r Om.Full in
             if f.Om.Stats.gat_bytes_before = 0 then None
             else
               Some
                 (pct
                    (float_of_int f.Om.Stats.gat_bytes_after
                    /. float_of_int f.Om.Stats.gat_bytes_before))
           else None)
         matrix)
  in
  Format.fprintf ppf
    "@[<v>Headline comparison (paper's number in parentheses):@,\
     compile-each: OM-simple %+.2f%% (1.5%%)   OM-full %+.2f%% (3.8%%)   \
     OM-full+sched %+.2f%% (4.2%%)@,\
     compile-all:  OM-simple %+.2f%% (1.35%%)  OM-full %+.2f%% (3.4%%)   \
     OM-full+sched %+.2f%% (3.6%%)@,\
     mean GAT remaining under OM-full: %.1f%% (3%%-15%%)@,\
     outputs identical across all configurations: %b@]"
    (avg e Om.Simple) (avg e Om.Full) (avg e Om.Full_sched)
    (avg a Om.Simple) (avg a Om.Full) (avg a Om.Full_sched)
    gat_left
    (List.for_all (fun (r : Measure.result) -> r.outputs_agree) matrix)
