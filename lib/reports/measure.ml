type run = {
  level : Om.level;
  stats : Om.Stats.t;
  cycles : int;
  insns : int;
  output : string;
  image : Linker.Image.t;
  wall_s : float;
  mips : float;
}

type result = {
  bench : string;
  build : Workloads.Suite.build;
  std_cycles : int;
  std_insns : int;
  std_output : string;
  std_image : Linker.Image.t;
  runs : run list;
  outputs_agree : bool;
  std_wall_s : float;
  std_mips : float;
}

(* One decode per distinct image, shared across the suite/profile/bench
   harnesses and across domains. Keyed by the image's content digest
   (the store's digest function): identical images (e.g. the same
   benchmark re-measured) hit the same entry, and a lookup hashes the
   image's serialized bytes once instead of structurally traversing the
   whole [Linker.Image.t]. *)
let decoded : (string, Machine.Decoded.t * Machine.Blocks.t) Hashtbl.t =
  Hashtbl.create 64

let decoded_lock = Mutex.create ()

(* The fused-executor cache rides in the same table, under the same
   digest: any suite re-measuring an identical image reuses not just its
   decode but every block superinstruction already fused for it.
   [Machine.Blocks.t] is safe to share across pool domains — executor
   fills are racy but idempotent — so one entry serves the whole
   matrix. *)
let decode_cached image =
  let key = Store.Codec.image_digest image in
  let cached =
    Mutex.protect decoded_lock (fun () -> Hashtbl.find_opt decoded key)
  in
  match cached with
  | Some db -> Ok db
  | None -> (
      match Machine.Cpu.decode image with
      | Ok d ->
          let db = (d, Machine.Blocks.create d) in
          Mutex.protect decoded_lock (fun () -> Hashtbl.replace decoded key db);
          Ok db
      | Error e -> Error e)

let mips_of ~insns ~wall_s =
  if wall_s > 0. then float_of_int insns /. wall_s /. 1e6 else 0.

let sim_mips_gauge =
  lazy
    (Obs.Metrics.gauge ~help:"Simulated MIPS of the most recent simulation"
       "omlt_sim_mips")

let sim_insns_counter =
  lazy
    (Obs.Metrics.counter ~help:"Instructions simulated" "omlt_sim_insns_total")

let sim_runs_counter =
  lazy (Obs.Metrics.counter ~help:"Simulations run" "omlt_sim_runs_total")

(* Fused-path observability: the process-wide totals live in [Machine]
   (atomics updated by [Blocks.run] / [Cpu.run_decoded]); mirror them
   into the registry after every simulation so report snapshots and the
   daemon's exposition carry them. *)
let blocks_hits_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"Block dispatches served by an already-fused executor"
       "omlt_blocks_cache_hits_total")

let blocks_misses_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"Block dispatches that had to fuse an executor"
       "omlt_blocks_cache_misses_total")

let blocks_built_counter =
  lazy
    (Obs.Metrics.counter ~help:"Block superinstruction executors fused"
       "omlt_blocks_built_total")

let fused_runs_counter =
  lazy
    (Obs.Metrics.counter ~help:"run_decoded calls on the fused path"
       "omlt_sim_fused_total")

let fallback_runs_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"run_decoded calls that fell back to the unfused loop"
       "omlt_sim_fallback_total")

let note_simulation ~insns ~mips =
  Obs.Metrics.set_gauge (Lazy.force sim_mips_gauge) mips;
  Obs.Metrics.incr ~by:insns (Lazy.force sim_insns_counter);
  Obs.Metrics.incr (Lazy.force sim_runs_counter);
  let c = Machine.Blocks.counters () in
  Obs.Metrics.set_counter (Lazy.force blocks_hits_counter)
    c.Machine.Blocks.hits;
  Obs.Metrics.set_counter (Lazy.force blocks_misses_counter)
    c.Machine.Blocks.misses;
  Obs.Metrics.set_counter (Lazy.force blocks_built_counter)
    c.Machine.Blocks.built;
  let fused, fallback = Machine.Cpu.dispatch_counts () in
  Obs.Metrics.set_counter (Lazy.force fused_runs_counter) fused;
  Obs.Metrics.set_counter (Lazy.force fallback_runs_counter) fallback

let run_image image =
  let ( let* ) = Result.bind in
  let fault e =
    Format.asprintf "simulation fault: %a" Machine.Cpu.pp_error e
  in
  let* d, blocks = Result.map_error fault (decode_cached image) in
  let t0 = Unix.gettimeofday () in
  match Machine.Cpu.run_decoded ~blocks d with
  | Ok o ->
      let wall_s = Unix.gettimeofday () -. t0 in
      let insns = o.Machine.Cpu.stats.Machine.Cpu.insns in
      let mips = mips_of ~insns ~wall_s in
      note_simulation ~insns ~mips;
      Ok
        ( o.Machine.Cpu.stats.Machine.Cpu.cycles,
          insns,
          o.Machine.Cpu.output,
          wall_s,
          mips )
  | Error e -> Error (fault e)

let run_benchmark ?(levels = Om.all_levels) build (b : Workloads.Programs.benchmark) =
  let ( let* ) = Result.bind in
  let* world = Workloads.Suite.resolve build b in
  let* std = Linker.Link.link_resolved world in
  let* std_cycles, std_insns, std_output, std_wall_s, std_mips =
    run_image std
  in
  let* runs =
    List.fold_left
      (fun acc level ->
        let* acc = acc in
        let* { Om.image; stats } = Om.optimize_resolved level world in
        let* cycles, insns, output, wall_s, mips = run_image image in
        Ok ({ level; stats; cycles; insns; output; image; wall_s; mips } :: acc))
      (Ok []) levels
  in
  let runs = List.rev runs in
  Ok
    { bench = b.Workloads.Programs.name;
      build;
      std_cycles;
      std_insns;
      std_output;
      std_image = std;
      runs;
      outputs_agree =
        List.for_all (fun r -> String.equal r.output std_output) runs;
      std_wall_s;
      std_mips }

let improvement result level =
  match List.find_opt (fun r -> r.level = level) result.runs with
  | Some r ->
      100.
      *. float_of_int (result.std_cycles - r.cycles)
      /. float_of_int result.std_cycles
  | None -> 0.

let stats_of result level =
  Option.map (fun r -> r.stats)
    (List.find_opt (fun r -> r.level = level) result.runs)

(* One [t_om] entry per level in [Om.all_levels], in that order — a new
   level gets timed (and plotted by fig7) without touching this record. *)
type timing = {
  t_std_link : float;
  t_interproc : float;
  t_om : (Om.level * float) list;
}

(* Wall clock, not [Sys.time]: under parallel domains process CPU time
   aggregates every core and would overstate each path. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Best of three, to damp GC noise. The timed path returns a [result]
   rather than exiting through [failwith]: a broken build must surface
   as this benchmark's error through the callers' result plumbing (the
   [Term.term_result'] seam in the CLI, an error row in bench), not as a
   process abort. *)
let time3 f =
  let failed = ref None in
  let once () =
    time_once (fun () ->
        match f () with
        | Ok () -> ()
        | Error m -> if !failed = None then failed := Some m)
  in
  let t = min (once ()) (min (once ()) (once ())) in
  match !failed with None -> Ok t | Some m -> Error m

let time_builds (b : Workloads.Programs.benchmark) =
  let ( let* ) = Result.bind in
  let* units =
    try Ok (Workloads.Suite.compile Workloads.Suite.Compile_each b)
    with Minic.Driver.Error m ->
      Error (Printf.sprintf "%s: compile: %s" b.Workloads.Programs.name m)
  in
  let archives = [ Runtime.libstd () ] in
  let om_time level =
    time3 (fun () -> Result.map ignore (Om.link ~level units ~archives))
  in
  let* t_std_link =
    time3 (fun () -> Result.map ignore (Linker.Link.link units ~archives))
  in
  let* t_interproc =
    time3 (fun () ->
        try
          let merged =
            Minic.Driver.compile_merged ~opt:Minic.Driver.O2
              ~prelude:Runtime.prelude
              ~name:(b.Workloads.Programs.name ^ "_all.o")
              b.Workloads.Programs.sources
          in
          Result.map ignore (Linker.Link.link [ merged ] ~archives)
        with Minic.Driver.Error m -> Error m)
  in
  let* t_om =
    List.fold_left
      (fun acc level ->
        let* acc = acc in
        let* t = om_time level in
        Ok ((level, t) :: acc))
      (Ok []) Om.all_levels
  in
  Ok { t_std_link; t_interproc; t_om = List.rev t_om }
