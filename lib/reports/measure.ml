type run = {
  level : Om.level;
  stats : Om.Stats.t;
  cycles : int;
  insns : int;
  output : string;
  image : Linker.Image.t;
}

type result = {
  bench : string;
  build : Workloads.Suite.build;
  std_cycles : int;
  std_insns : int;
  std_output : string;
  std_image : Linker.Image.t;
  runs : run list;
  outputs_agree : bool;
}

let run_image image =
  match Machine.Cpu.run image with
  | Ok o ->
      Ok
        ( o.Machine.Cpu.stats.Machine.Cpu.cycles,
          o.Machine.Cpu.stats.Machine.Cpu.insns,
          o.Machine.Cpu.output )
  | Error e -> Error (Format.asprintf "simulation fault: %a" Machine.Cpu.pp_error e)

let run_benchmark ?(levels = Om.all_levels) build (b : Workloads.Programs.benchmark) =
  let ( let* ) = Result.bind in
  let* world = Workloads.Suite.resolve build b in
  let* std = Linker.Link.link_resolved world in
  let* std_cycles, std_insns, std_output = run_image std in
  let* runs =
    List.fold_left
      (fun acc level ->
        let* acc = acc in
        let* { Om.image; stats } = Om.optimize_resolved level world in
        let* cycles, insns, output = run_image image in
        Ok ({ level; stats; cycles; insns; output; image } :: acc))
      (Ok []) levels
  in
  let runs = List.rev runs in
  Ok
    { bench = b.Workloads.Programs.name;
      build;
      std_cycles;
      std_insns;
      std_output;
      std_image = std;
      runs;
      outputs_agree =
        List.for_all (fun r -> String.equal r.output std_output) runs }

let improvement result level =
  match List.find_opt (fun r -> r.level = level) result.runs with
  | Some r ->
      100.
      *. float_of_int (result.std_cycles - r.cycles)
      /. float_of_int result.std_cycles
  | None -> 0.

let stats_of result level =
  Option.map (fun r -> r.stats)
    (List.find_opt (fun r -> r.level = level) result.runs)

type timing = {
  t_std_link : float;
  t_interproc : float;
  t_noopt : float;
  t_simple : float;
  t_full : float;
  t_full_sched : float;
}

let time_once f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

(* best of three, to damp GC noise *)
let time3 f = min (time_once f) (min (time_once f) (time_once f))

let time_builds (b : Workloads.Programs.benchmark) =
  let units = Workloads.Suite.compile Workloads.Suite.Compile_each b in
  let archives = [ Runtime.libstd () ] in
  let om_time level =
    time3 (fun () ->
        match Om.link ~level units ~archives with
        | Ok _ -> ()
        | Error m -> failwith m)
  in
  { t_std_link =
      time3 (fun () ->
          match Linker.Link.link units ~archives with
          | Ok _ -> ()
          | Error m -> failwith m);
    t_interproc =
      time3 (fun () ->
          let merged =
            Minic.Driver.compile_merged ~opt:Minic.Driver.O2
              ~prelude:Runtime.prelude
              ~name:(b.Workloads.Programs.name ^ "_all.o")
              b.Workloads.Programs.sources
          in
          match Linker.Link.link [ merged ] ~archives with
          | Ok _ -> ()
          | Error m -> failwith m);
    t_noopt = om_time Om.No_opt;
    t_simple = om_time Om.Simple;
    t_full = om_time Om.Full;
    t_full_sched = om_time Om.Full_sched }
