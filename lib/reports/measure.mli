(** Running the paper's measurement matrix.

    For one benchmark and build style this produces, per optimization
    level: the optimizer's static statistics, the simulated dynamic cycle
    count, and a check that the program output is bit-identical to the
    standard link's. *)

type run = {
  level : Om.level;
  stats : Om.Stats.t;
  cycles : int;
  insns : int;
  output : string;
  image : Linker.Image.t;   (** kept for post-hoc profiling/attribution *)
  wall_s : float;           (** host wall-clock seconds of the simulation *)
  mips : float;             (** simulated million instructions / second *)
}

type result = {
  bench : string;
  build : Workloads.Suite.build;
  std_cycles : int;
  std_insns : int;
  std_output : string;
  std_image : Linker.Image.t;
  runs : run list;          (** one per {!Om.all_levels} *)
  outputs_agree : bool;
  std_wall_s : float;
  std_mips : float;
}

val decode_cached :
  Linker.Image.t ->
  (Machine.Decoded.t * Machine.Blocks.t, Machine.Cpu.error) Stdlib.result
(** Pre-decode an image for {!Machine.Cpu.run_decoded}, memoized (with
    its fused-executor cache) by the image's content digest so
    suite/profile/bench runs never decode the same image twice — and
    never re-fuse a block superinstruction already fused for it. Safe to
    call from multiple domains concurrently; the returned [Blocks.t] may
    be shared across domains. *)

val run_benchmark :
  ?levels:Om.level list -> Workloads.Suite.build -> Workloads.Programs.benchmark ->
  (result, string) Stdlib.result

val improvement : result -> Om.level -> float
(** Percent cycle improvement of a level over the standard link. *)

val stats_of : result -> Om.level -> Om.Stats.t option

type timing = {
  t_std_link : float;       (** standard link, seconds *)
  t_interproc : float;      (** compile-all from source + standard link *)
  t_om : (Om.level * float) list;
      (** one entry per {!Om.all_levels}, in that order *)
}

val time_builds :
  Workloads.Programs.benchmark -> (timing, string) Stdlib.result
(** Wall-clock the build paths of the paper's Figure 7: standard link,
    interprocedural build, and one OM link per level in {!Om.all_levels}
    (objects are pre-compiled for every column except the
    interprocedural build, which compiles from source). Uses wall time,
    so the numbers stay meaningful when other domains are busy. A build
    path that fails surfaces as [Error] (not [failwith]) so callers can
    fail one benchmark's row. *)
