let default_jobs () =
  match Sys.getenv_opt "OMLT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

exception Worker_failed of exn

let task_us =
  lazy
    (Obs.Metrics.histogram ~help:"Pool task latency in microseconds"
       "omlt_pool_task_us")

let busy_gauge slot =
  Obs.Metrics.gauge
    ~labels:[ ("worker", string_of_int slot) ]
    ~help:"Seconds the pool worker spent running tasks" "omlt_pool_busy_s"

let tasks_counter =
  lazy (Obs.Metrics.counter ~help:"Pool tasks completed" "omlt_pool_tasks_total")

let map ?jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs =
    max 1 (min n (match jobs with Some j -> max 1 j | None -> default_jobs ()))
  in
  let task_us = Lazy.force task_us in
  let tasks = Lazy.force tasks_counter in
  let run_one x =
    let r = Obs.Metrics.time task_us (fun () -> f x) in
    Obs.Metrics.incr tasks;
    r
  in
  if jobs = 1 || n <= 1 then List.map run_one xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    (* captured before spawning: workers feed their spans into the
       caller's trace sink instead of silently dropping them *)
    let parent_trace = Obs.Trace.ambient () in
    let worker slot () =
      let busy = busy_gauge slot in
      let saved = Obs.Trace.ambient () in
      Obs.Trace.install (Option.map Obs.Trace.worker parent_trace);
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          let t0 = Unix.gettimeofday () in
          (try results.(i) <- Some (run_one items.(i))
           with e ->
             (* first failure wins; the rest of the queue is abandoned *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          Obs.Metrics.add_gauge busy (Unix.gettimeofday () -. t0);
          loop ()
        end
      in
      Fun.protect ~finally:(fun () -> Obs.Trace.install saved) loop
    in
    let domains =
      List.init (jobs - 1) (fun slot -> Domain.spawn (worker (slot + 1)))
    in
    worker 0 ();
    List.iter Domain.join domains;
    match Atomic.get failure with
    | Some e -> raise (Worker_failed e)
    | None ->
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)
  end
