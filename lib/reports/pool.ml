let default_jobs () =
  match Sys.getenv_opt "OMLT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

exception Worker_failed of exn

let map ?jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs =
    max 1 (min n (match jobs with Some j -> max 1 j | None -> default_jobs ()))
  in
  if jobs = 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f items.(i))
           with e ->
             (* first failure wins; the rest of the queue is abandoned *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with
    | Some e -> raise (Worker_failed e)
    | None ->
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)
  end
