(** A small work-stealing domain pool for the measurement harness.

    The benchmark × build × level matrix is embarrassingly parallel:
    every task is a pure (compile, link, optimize, simulate) pipeline.
    {!map} fans a task list over OCaml 5 domains, preserving input
    order in the results regardless of completion order, so parallel
    runs are bit-identical to serial ones. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], overridable with the
    [OMLT_JOBS] environment variable (values < 1 are ignored). *)

exception Worker_failed of exn
(** Raised by {!map} after all domains have joined, wrapping the first
    exception any task raised. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] using up to
    [jobs] domains (default {!default_jobs}; clamped to the list
    length), returning results in input order. [f] must be safe to run
    concurrently with itself. With [jobs = 1] (or on lists of length
    ≤ 1) no domain is spawned. *)
