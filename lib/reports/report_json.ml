(* Attribution re-simulates the image with the probe on; going through
   the decoded cache means that second pass never re-decodes. *)
let profile_buckets image =
  match Measure.decode_cached image with
  | Error _ -> None
  | Ok (d, _blocks) -> (
      match Obs.Attr.run_decoded d with
      | Ok p -> Some (Obs.Report.attribution_of_profile p)
      | Error _ -> None)

let size_of_image (image : Linker.Image.t) =
  Some
    { Obs.Report.text_bytes = Bytes.length image.Linker.Image.text;
      data_bytes = Bytes.length image.Linker.Image.data;
      gat_bytes = image.Linker.Image.gat_bytes }

let of_result ?(attribution = false) (r : Measure.result) =
  let attr image = if attribution then profile_buckets image else None in
  let host ~wall_s ~mips = Some { Obs.Report.wall_s; mips } in
  { Obs.Report.bench = r.Measure.bench;
    build = Workloads.Suite.build_name r.Measure.build;
    std_cycles = r.Measure.std_cycles;
    std_insns = r.Measure.std_insns;
    std_attribution = attr r.Measure.std_image;
    std_fault = None;
    outputs_agree = r.Measure.outputs_agree;
    runs =
      List.map
        (fun (run : Measure.run) ->
          { Obs.Report.level = Om.level_name run.Measure.level;
            cycles = run.Measure.cycles;
            insns = run.Measure.insns;
            improvement_pct = Measure.improvement r run.Measure.level;
            counters = Om.Stats.to_alist run.Measure.stats;
            attribution = attr run.Measure.image;
            fault = None;
            host = host ~wall_s:run.Measure.wall_s ~mips:run.Measure.mips;
            size = size_of_image run.Measure.image })
        r.Measure.runs;
    std_host = host ~wall_s:r.Measure.std_wall_s ~mips:r.Measure.std_mips;
    relink = None;
    std_size = size_of_image r.Measure.std_image }

let of_matrix ?attribution ?tool results =
  Obs.Report.make ?tool (List.map (of_result ?attribution) results)
