(** Bridging measured results into the {!Obs.Report} schema.

    {!Measure} produces rich in-memory results (with live images);
    {!Obs.Report} is the flat, versioned wire format. This module folds
    one into the other, optionally re-running each image under the
    {!Obs.Attr} profiler to fill in the dynamic attribution buckets. *)

val of_result : ?attribution:bool -> Measure.result -> Obs.Report.bench
(** [attribution] (default [false]) profiles the standard image and every
    level's image — one extra simulation each. *)

val of_matrix :
  ?attribution:bool -> ?tool:string -> Measure.result list -> Obs.Report.t
