type progress = {
  on_start : Workloads.Programs.benchmark -> Workloads.Suite.build -> unit;
  on_done :
    Workloads.Programs.benchmark ->
    Workloads.Suite.build ->
    (Measure.result, string) Stdlib.result ->
    unit;
}

let silent = { on_start = (fun _ _ -> ()); on_done = (fun _ _ _ -> ()) }

let tasks benches =
  List.concat_map
    (fun b ->
      List.map (fun build -> (b, build)) Workloads.Suite.all_builds)
    benches

(* Anything lazily initialized that every worker touches must be forced
   before the first [Domain.spawn]; [Runtime.libstd] is the one such
   value (a toplevel [lazy]). *)
let warm_up () = ignore (Runtime.libstd ())

let matrix ?jobs ?levels ?(progress = silent) benches =
  warm_up ();
  let lock = Mutex.create () in
  let measure (b, build) =
    Mutex.protect lock (fun () -> progress.on_start b build);
    (* An exception escaping a task would poison the whole pool
       ([Pool.Worker_failed] abandons the remaining queue); convert it to
       this row's error so one bad build fails one row. *)
    let r =
      try Measure.run_benchmark ?levels build b with
      | Minic.Driver.Error m -> Error (Printf.sprintf "compile: %s" m)
      | Failure m -> Error m
      | e -> Error (Printexc.to_string e)
    in
    Mutex.protect lock (fun () -> progress.on_done b build r);
    (b, build, r)
  in
  Pool.map ?jobs measure (tasks benches)

let results rows =
  List.filter_map (fun (_, _, r) -> Result.to_option r) rows

let report ?jobs ?attribution ?tool rows =
  warm_up ();
  let benches =
    Pool.map ?jobs (Report_json.of_result ?attribution) (results rows)
  in
  (* v4 payload: pool task-latency quantiles for the whole matrix plus a
     full registry snapshot, both read from the default registry the
     pool/measure instrumentation feeds. *)
  let latency =
    match Obs.Metrics.find_histogram "omlt_pool_task_us" with
    | Some h when (Obs.Metrics.summary h).Obs.Metrics.count > 0 ->
        let s = Obs.Metrics.summary h in
        Some
          { Obs.Report.q_count = s.Obs.Metrics.count;
            q_p50_us = s.Obs.Metrics.p50;
            q_p95_us = s.Obs.Metrics.p95;
            q_p99_us = s.Obs.Metrics.p99;
            q_max_us = s.Obs.Metrics.max }
    | _ -> None
  in
  let metrics = Obs.Metrics.to_json Obs.Metrics.default in
  Obs.Report.make ?tool ?latency ~metrics benches
