(** The parallel measurement-matrix runner.

    Fans the benchmark × build matrix over a {!Pool} of domains. Each
    task is an independent (compile, link, optimize, simulate) pipeline;
    results come back in task order, so a parallel run produces the same
    rows — bit-identical cycle counts and attribution — as a serial one,
    just faster. *)

type progress = {
  on_start : Workloads.Programs.benchmark -> Workloads.Suite.build -> unit;
  on_done :
    Workloads.Programs.benchmark ->
    Workloads.Suite.build ->
    (Measure.result, string) Stdlib.result ->
    unit;
}
(** Progress callbacks, invoked under a runner-internal mutex so
    terminal output from concurrent tasks never interleaves. *)

val silent : progress

val tasks :
  Workloads.Programs.benchmark list ->
  (Workloads.Programs.benchmark * Workloads.Suite.build) list
(** The (bench, build) task list: every benchmark crossed with
    {!Workloads.Suite.all_builds}, in deterministic order. *)

val matrix :
  ?jobs:int ->
  ?levels:Om.level list ->
  ?progress:progress ->
  Workloads.Programs.benchmark list ->
  (Workloads.Programs.benchmark
  * Workloads.Suite.build
  * (Measure.result, string) Stdlib.result)
  list
(** Measure every task of {!tasks} using up to [jobs] domains (default
    {!Pool.default_jobs}). One row per task, in task order. *)

val results :
  (Workloads.Programs.benchmark
  * Workloads.Suite.build
  * (Measure.result, string) Stdlib.result)
  list ->
  Measure.result list
(** The successful rows, in order. *)

val report :
  ?jobs:int ->
  ?attribution:bool ->
  ?tool:string ->
  (Workloads.Programs.benchmark
  * Workloads.Suite.build
  * (Measure.result, string) Stdlib.result)
  list ->
  Obs.Report.t
(** {!Report_json.of_matrix} over the successful rows, with the per-image
    attribution re-simulations themselves fanned over the pool. *)
