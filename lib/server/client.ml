(* The client side of the wire: connect, one request/one reply, and a
   typed helper for the common link call. *)

module P = Protocol
module Json = Obs.Json

let connect ?socket () =
  let path = match socket with Some s -> s | None -> Daemon.default_socket () in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "%s: %s (is omlinkd running? start it with `omlink serve`)"
           path (Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_connection ?socket f =
  match connect ?socket () with
  | Error m -> Error m
  | Ok fd -> Fun.protect ~finally:(fun () -> close fd) (fun () -> Ok (f fd))

let roundtrip fd (env : P.envelope) =
  match P.send fd (P.request_to_json env) with
  | () -> (
      match P.recv fd with
      | P.Frame j -> P.response_result j
      | P.Eof ->
          Error { P.code = "connection"; message = "server closed the connection" }
      | P.Bad m -> Error { P.code = "protocol"; message = m })
  | exception Unix.Unix_error (e, _, _) ->
      Error { P.code = "connection"; message = Unix.error_message e }

let field name fields = List.assoc_opt name fields

(* Link [files] through the daemon and return the raw serialized image
   bytes alongside the full reply fields. *)
let link fd ?deadline_ms ?trace ?entry ~level files =
  let env =
    P.request ?deadline_ms ?trace (P.Link { files; level; entry })
  in
  match roundtrip fd env with
  | Error e -> Error e
  | Ok fields -> (
      match Option.bind (field "image" fields) Json.get_string with
      | None ->
          Error { P.code = "protocol"; message = "link reply carries no image" }
      | Some hex -> (
          match P.hex_decode hex with
          | Error m ->
              Error { P.code = "protocol"; message = "bad image hex: " ^ m }
          | Ok bytes -> Ok (bytes, fields)))

let ping fd ?deadline_ms ?(delay_ms = 0) () =
  roundtrip fd (P.request ?deadline_ms (P.Ping { delay_ms }))

let stats fd = roundtrip fd (P.request P.Stats)

let metrics fd = roundtrip fd (P.request P.Metrics)

let shutdown fd = roundtrip fd (P.request P.Shutdown)
