(* The client side of the wire: connect, one request/one reply, typed
   helpers for the common calls, and an opt-in retry policy for flaky
   moments (daemon restarting, queue full). *)

module P = Protocol
module Json = Obs.Json

let connect ?socket () =
  let path = match socket with Some s -> s | None -> Daemon.default_socket () in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "%s: %s (is omlinkd running? start it with `omlink serve`)"
           path (Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_connection ?socket f =
  match connect ?socket () with
  | Error m -> Error m
  | Ok fd -> Fun.protect ~finally:(fun () -> close fd) (fun () -> Ok (f fd))

let roundtrip fd (env : P.envelope) =
  match P.send fd (P.request_to_json env) with
  | () -> (
      match P.recv fd with
      | P.Frame j -> P.response_result j
      | P.Eof -> Error (P.err "connection" "server closed the connection")
      | P.Bad m -> Error (P.err "protocol" m))
  | exception Unix.Unix_error (e, _, _) ->
      Error (P.err "connection" (Unix.error_message e))

let field name fields = List.assoc_opt name fields

(* Link through the daemon and return the raw serialized image bytes
   alongside the full reply fields. *)
let link fd ?deadline_ms ?trace ?entry ?(sources = []) ~level files =
  let env =
    P.request ?deadline_ms ?trace (P.Link { files; sources; level; entry })
  in
  match roundtrip fd env with
  | Error e -> Error e
  | Ok fields -> (
      match Option.bind (field "image" fields) Json.get_string with
      | None -> Error (P.err "protocol" "link reply carries no image")
      | Some hex -> (
          match P.hex_decode hex with
          | Error m -> Error (P.err "protocol" ("bad image hex: " ^ m))
          | Ok bytes -> Ok (bytes, fields)))

let ping fd ?deadline_ms ?(delay_ms = 0) () =
  roundtrip fd (P.request ?deadline_ms (P.Ping { delay_ms }))

let stats fd = roundtrip fd (P.request P.Stats)

let metrics fd = roundtrip fd (P.request P.Metrics)

let shutdown fd = roundtrip fd (P.request P.Shutdown)

(* --- bounded retry with jittered exponential backoff ---

   Two failures are worth retrying: the daemon isn't there (connection
   refused — it may be restarting) and the daemon shed us (overloaded —
   it told us when to come back). Everything else returns immediately.
   Each attempt reconnects from scratch; the sleep is the larger of the
   jittered exponential backoff and the server's own [retry_after_ms]
   hint. Off unless [retries > 0]. *)

let retryable (e : P.err) = e.P.code = "connection" || e.P.code = "overloaded"

let with_retries ?(retries = 0) ?(base_ms = 50) ?(max_ms = 2000) ?seed ?socket f
    =
  let rng =
    (* deterministic when seeded (tests); self-init otherwise *)
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  let backoff_ms attempt hint =
    let exp = float_of_int base_ms *. (2. ** float_of_int attempt) in
    let capped = min (float_of_int max_ms) exp in
    (* full jitter: uniform in [capped/2, capped] *)
    let jittered =
      (capped /. 2.) +. Random.State.float rng (capped /. 2.)
    in
    max (int_of_float jittered) (Option.value hint ~default:0)
  in
  let attempt () =
    match connect ?socket () with
    | Error m -> Error (P.err "connection" m)
    | Ok fd -> Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd)
  in
  let rec go n =
    match attempt () with
    | Ok _ as ok -> ok
    | Error e when n < retries && retryable e ->
        let ms = backoff_ms n e.P.retry_after_ms in
        Obs.Log.debug "client_retry"
          ~fields:
            [ ("attempt", Json.Int (n + 1));
              ("code", Json.String e.P.code);
              ("sleep_ms", Json.Int ms) ];
        Unix.sleepf (float_of_int ms /. 1000.);
        go (n + 1)
    | Error _ as err -> err
  in
  go 0
