(** The client side of the omlinkd wire protocol. *)

val connect : ?socket:string -> unit -> (Unix.file_descr, string) result
(** Connect to the daemon's socket (default {!Daemon.default_socket}). *)

val close : Unix.file_descr -> unit

val with_connection :
  ?socket:string -> (Unix.file_descr -> 'a) -> ('a, string) result

val roundtrip :
  Unix.file_descr -> Protocol.envelope ->
  ((string * Obs.Json.t) list, Protocol.err) result
(** Send one request and read its reply; [Ok] carries the reply's fields
    (minus the [ok] marker). *)

val field : string -> (string * Obs.Json.t) list -> Obs.Json.t option

val link :
  Unix.file_descr -> ?deadline_ms:int -> ?trace:bool -> ?entry:string ->
  ?sources:Protocol.source list -> level:string -> string list ->
  (string * (string * Obs.Json.t) list, Protocol.err) result
(** Link through the daemon; [Ok (bytes, fields)] carries the serialized
    image (decode with {!Store.Codec.image_of_string}) plus the reply
    fields. [sources] travel inline in the request (no daemon-side file
    reads); the string list names daemon-side paths as before. *)

val ping :
  Unix.file_descr -> ?deadline_ms:int -> ?delay_ms:int -> unit ->
  ((string * Obs.Json.t) list, Protocol.err) result

val stats :
  Unix.file_descr -> ((string * Obs.Json.t) list, Protocol.err) result

val metrics :
  Unix.file_descr -> ((string * Obs.Json.t) list, Protocol.err) result
(** Live registry snapshot: the reply carries [metrics] (JSON) and
    [prometheus] (text) fields. *)

val shutdown :
  Unix.file_descr -> ((string * Obs.Json.t) list, Protocol.err) result

val with_retries :
  ?retries:int -> ?base_ms:int -> ?max_ms:int -> ?seed:int -> ?socket:string ->
  (Unix.file_descr -> ('a, Protocol.err) result) ->
  ('a, Protocol.err) result
(** Run [f] over a fresh connection, retrying up to [retries] times
    (default 0 — off) when the connection is refused or the daemon
    answers [overloaded]. Sleeps the larger of a jittered exponential
    backoff ([base_ms] doubling up to [max_ms]) and the server's
    [retry_after_ms] hint between attempts. [seed] makes the jitter
    deterministic. *)
