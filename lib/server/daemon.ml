(* omlinkd: the persistent link service.

   One process owns an {!Engine.t} (and through it the artifact store)
   and serves length-framed JSON requests over a Unix-domain socket.
   Because the store outlives individual requests, the second link of a
   program is warm: unchanged modules hit the lift cache and an
   unchanged program hits the image cache outright.

   Concurrency model: connections are served one at a time (the linker
   itself parallelizes internally via [Reports.Pool]); each request with
   a deadline runs in a worker domain so the accept loop can time it out
   and answer with a structured error instead of hanging the client. *)

module P = Protocol
module Json = Obs.Json

let default_socket () =
  match Sys.getenv_opt "OMLT_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> "omlinkd.sock"

(* --- request handlers --- *)

let counters_json c =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Store.counters_to_alist c))

let stats_json engine ~requests =
  let store = Engine.store engine in
  P.ok_response
    [ ("uptime_s", Json.Float (Engine.uptime_s engine));
      ("requests", Json.Int requests);
      ( "store",
        Json.Obj
          ([ ( "dir",
               match Store.dir store with
               | None -> Json.Null
               | Some d -> Json.String d );
             ("mem_entries", Json.Int (Store.mem_entries store));
             ("mem_bytes", Json.Int (Store.mem_bytes store)) ]
          @ List.map
              (fun k -> (Store.kind_name k, counters_json (Store.counters store k)))
              Store.all_kinds
          @ [ ("total", counters_json (Store.counters_total store)) ]) ) ]

let compile_reply engine files =
  let compiled =
    Reports.Pool.map
      (fun f ->
        match Engine.input_of_file f with
        | Error m -> Error (f, m)
        | Ok input -> (
            match Engine.compile_unit engine input with
            | Ok (u, cached) -> Ok (f, u, cached)
            | Error m -> Error (f, m)))
      files
  in
  match
    List.find_map (function Error e -> Some e | Ok _ -> None) compiled
  with
  | Some (f, m) -> P.error_response ~code:"compile" (Printf.sprintf "%s: %s" f m)
  | None ->
      P.ok_response
        [ ( "units",
            Json.List
              (List.filter_map
                 (function
                   | Error _ -> None
                   | Ok (f, (u : Objfile.Cunit.t), cached) ->
                       let bytes = Store.Codec.cunit_to_string u in
                       Some
                         (Json.Obj
                            [ ("file", Json.String f);
                              ("name", Json.String u.Objfile.Cunit.name);
                              ("digest", Json.String (Store.digest_string bytes));
                              ( "insns",
                                Json.Int (Objfile.Cunit.insn_count u) );
                              ("cached", Json.Bool cached);
                              ("object", Json.String (P.hex_encode bytes)) ]))
                 compiled) ) ]

let link_reply engine ~files ~level ~entry =
  match Engine.link_files engine ?entry ~level files with
  | Error m -> P.error_response ~code:"link" m
  | Ok (image, stats, info) ->
      P.ok_response
        ([ ("level", Json.String info.Engine.li_level);
           ("image_digest", Json.String info.Engine.li_image_digest);
           ("insns", Json.Int info.Engine.li_insns);
           ("elapsed_s", Json.Float info.Engine.li_elapsed_s);
           ("image_hit", Json.Bool info.Engine.li_image_hit);
           ("store", Engine.info_counters_json info);
           ( "image",
             Json.String (P.hex_encode (Store.Codec.image_to_string image)) ) ]
        @
        match stats with
        | None -> []
        | Some s ->
            [ ( "stats",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.Int v))
                     (Om.Stats.to_alist s)) ) ])

let suite_reply ~bench ~jobs =
  let benches =
    match bench with
    | None -> Ok Workloads.Programs.all
    | Some n -> (
        match Workloads.Programs.find n with
        | Some b -> Ok [ b ]
        | None ->
            Error
              (Printf.sprintf "unknown benchmark %s (know: %s)" n
                 (String.concat ", " Workloads.Programs.names)))
  in
  match benches with
  | Error m -> P.error_response ~code:"suite" m
  | Ok benches ->
      let rows = Reports.Runner.matrix ?jobs benches in
      let report = Reports.Runner.report ?jobs rows in
      (* stamp each bench row with its cold-vs-warm link-service timing *)
      let report =
        { report with
          Obs.Report.results =
            List.map
              (fun (row : Obs.Report.bench) ->
                match
                  Option.bind
                    (Workloads.Programs.find row.Obs.Report.bench)
                    (fun b -> Result.to_option (Engine.relink_timings b))
                with
                | Some r -> { row with Obs.Report.relink = Some r }
                | None -> row)
              report.Obs.Report.results }
      in
      let failures =
        List.filter_map
          (fun ((b : Workloads.Programs.benchmark), build, r) ->
            match r with
            | Ok _ -> None
            | Error m ->
                Some
                  (Json.String
                     (Printf.sprintf "%s/%s: %s" b.Workloads.Programs.name
                        (Workloads.Suite.build_name build) m)))
          rows
      in
      P.ok_response
        [ ("report", Obs.Report.to_json report);
          ("failures", Json.List failures) ]

let metrics_reply engine =
  Engine.sync_store_metrics engine;
  let reg = Engine.metrics engine in
  P.ok_response
    [ ("metrics", Obs.Metrics.to_json reg);
      ("prometheus", Json.String (Obs.Metrics.to_prometheus reg)) ]

let spans_json spans =
  Json.List
    (List.map
       (fun (s : Obs.Trace.span) ->
         Json.Obj
           [ ("name", Json.String s.Obs.Trace.name);
             ("depth", Json.Int s.Obs.Trace.depth);
             ("dur_us", Json.Float s.Obs.Trace.dur_us) ])
       spans)

let handle engine ~requests (e : P.envelope) =
  let respond () =
    match e.P.req with
    | P.Ping { delay_ms } ->
        if delay_ms > 0 then Unix.sleepf (float_of_int delay_ms /. 1000.);
        P.ok_response [ ("pong", Json.Bool true) ]
    | P.Compile { files } -> compile_reply engine files
    | P.Link { files; level; entry } -> link_reply engine ~files ~level ~entry
    | P.Stats -> stats_json engine ~requests
    | P.Metrics -> metrics_reply engine
    | P.Suite { bench; jobs } -> suite_reply ~bench ~jobs
    | P.Shutdown -> P.ok_response [ ("stopping", Json.Bool true) ]
  in
  if not e.P.trace then respond ()
  else
    let c, reply = Obs.Trace.with_collector respond in
    match reply with
    | Json.Obj fields ->
        Json.Obj (fields @ [ ("trace", spans_json (Obs.Trace.spans c)) ])
    | j -> j

(* --- deadlines ---

   A request with a deadline runs in its own domain, which signals
   completion by writing one byte to a pipe; the accept loop selects on
   the pipe with the deadline as timeout. On expiry the client gets a
   structured [timeout] error immediately and the worker domain is
   abandoned — it finishes (or dies) on its own and is joined lazily the
   next time the loop is idle, so an abandoned link can't accumulate
   into a zombie pile. *)

type outcome = Reply of Json.t | Crashed of string | Timed_out

type abandoned = {
  a_domain : unit Domain.t;
  a_done : outcome option Atomic.t;
  a_read : Unix.file_descr;
}

let reap abandoned =
  List.filter
    (fun a ->
      if Atomic.get a.a_done = None then true
      else begin
        Domain.join a.a_domain;
        (try Unix.close a.a_read with Unix.Unix_error _ -> ());
        false
      end)
    abandoned

let run_with_deadline ~deadline_ms f =
  match deadline_ms with
  | None -> (
      (try Reply (f ()) with exn -> Crashed (Printexc.to_string exn)), None)
  | Some ms ->
      let result = Atomic.make None in
      let r, w = Unix.pipe ~cloexec:true () in
      let dom =
        Domain.spawn (fun () ->
            let out =
              try Reply (f ()) with exn -> Crashed (Printexc.to_string exn)
            in
            Atomic.set result (Some out);
            try
              ignore (Unix.write_substring w "x" 0 1);
              Unix.close w
            with Unix.Unix_error _ -> ())
      in
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then []
        else
          match Unix.select [ r ] [] [] remaining with
          | readable, _, _ -> readable
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      if wait () = [] then (Timed_out, Some { a_domain = dom; a_done = result; a_read = r })
      else begin
        Domain.join dom;
        (try Unix.close r with Unix.Unix_error _ -> ());
        match Atomic.get result with
        | Some out -> (out, None)
        | None -> (Crashed "worker vanished without a result", None)
      end

(* --- the socket and the serve loop --- *)

let bind_socket path =
  let ( let* ) = Result.bind in
  let* () =
    if not (Sys.file_exists path) then Ok ()
    else begin
      (* stale-socket detection: a connect that is refused means no
         daemon is behind the file, so it is safe to take over *)
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        try
          Unix.connect probe (Unix.ADDR_UNIX path);
          true
        with Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        Error (Printf.sprintf "%s: an omlinkd is already listening" path)
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
      end
    end
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 8
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

type conn_verdict = Conn_closed | Stop_server

let error_code_of reply =
  match Json.member "ok" reply with
  | Some (Json.Bool false) ->
      Option.bind (Json.member "error" reply) (fun e ->
          Option.bind (Json.member "code" e) Json.get_string)
  | _ -> None

let serve_conn engine ~default_deadline_ms ~abandoned fd =
  let reg = Engine.metrics engine in
  let inflight =
    Obs.Metrics.gauge ~registry:reg ~help:"Requests currently being served"
      "omlinkd_inflight"
  in
  let send_safe j = try P.send fd j; true with Unix.Unix_error _ -> false in
  let rec loop () =
    abandoned := reap !abandoned;
    match P.recv fd with
    | P.Eof -> Conn_closed
    | P.Bad m ->
        (* framing is gone; answer if we can and drop the connection *)
        ignore (send_safe (P.error_response ~code:"protocol" m));
        Conn_closed
    | P.Frame j -> (
        let requests = Engine.count_request engine in
        match P.request_of_json j with
        | Error m ->
            if send_safe (P.error_response ~code:"protocol" m) then loop ()
            else Conn_closed
        | Ok env ->
            let kind = P.kind_of_request env.P.req in
            Obs.Log.debug "request"
              ~fields:
                [ ("id", Json.Int requests); ("kind", Json.String kind) ];
            let deadline_ms =
              match env.P.deadline_ms with
              | Some _ as d -> d
              | None -> default_deadline_ms
            in
            Obs.Metrics.add_gauge inflight 1.;
            let t0 = Unix.gettimeofday () in
            let outcome, orphan =
              run_with_deadline ~deadline_ms (fun () ->
                  handle engine ~requests env)
            in
            let elapsed_s = Unix.gettimeofday () -. t0 in
            Obs.Metrics.add_gauge inflight (-1.);
            Obs.Metrics.observe_s
              (Obs.Metrics.histogram ~registry:reg
                 ~labels:[ ("kind", kind) ]
                 ~help:"Request latency in microseconds" "omlinkd_request_us")
              elapsed_s;
            Obs.Metrics.incr
              (Obs.Metrics.counter ~registry:reg
                 ~labels:[ ("kind", kind) ]
                 ~help:"Requests served" "omlinkd_requests_total");
            (match orphan with
            | Some a -> abandoned := a :: !abandoned
            | None -> ());
            let reply =
              match outcome with
              | Reply r -> r
              | Crashed m -> P.error_response ~code:"internal" m
              | Timed_out ->
                  P.error_response ~code:"timeout"
                    (Printf.sprintf "deadline of %d ms exceeded"
                       (Option.value deadline_ms ~default:0))
            in
            (match error_code_of reply with
            | Some code ->
                Obs.Metrics.incr
                  (Obs.Metrics.counter ~registry:reg
                     ~labels:[ ("code", code) ]
                     ~help:"Error replies by code" "omlinkd_errors_total");
                Obs.Log.warn "request_error"
                  ~fields:
                    [ ("id", Json.Int requests);
                      ("kind", Json.String kind);
                      ("code", Json.String code);
                      ("elapsed_s", Json.Float elapsed_s) ]
            | None ->
                Obs.Log.debug "request_done"
                  ~fields:
                    [ ("id", Json.Int requests);
                      ("kind", Json.String kind);
                      ("elapsed_s", Json.Float elapsed_s) ]);
            let sent = send_safe reply in
            if env.P.req = P.Shutdown && outcome <> Timed_out then Stop_server
            else if sent then loop ()
            else Conn_closed)
  in
  loop ()

let serve ?engine ?socket ?default_deadline_ms () =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  let path = match socket with Some s -> s | None -> default_socket () in
  match bind_socket path with
  | Error m ->
      Obs.Log.error "bind_failed"
        ~fields:[ ("socket", Json.String path); ("message", Json.String m) ];
      Error m
  | Ok listen_fd ->
      Obs.Log.info "listening"
        ~fields:
          [ ("socket", Json.String path);
            ( "store",
              match Store.dir (Engine.store engine) with
              | Some d -> Json.String d
              | None -> Json.String "memory" ) ];
      let abandoned = ref [] in
      let rec accept_loop () =
        match Unix.accept ~cloexec:true listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | conn, _ ->
            let verdict =
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close conn with Unix.Unix_error _ -> ())
                (fun () ->
                  serve_conn engine ~default_deadline_ms ~abandoned conn)
            in
            (match verdict with
            | Conn_closed -> accept_loop ()
            | Stop_server -> Obs.Log.info "shutdown")
      in
      let finally () =
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ());
        (* give straggler workers a moment, then join the finished ones *)
        abandoned := reap !abandoned
      in
      Fun.protect ~finally (fun () ->
          match accept_loop () with
          | () -> Ok ()
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "omlinkd: %s: %s" fn (Unix.error_message e)))
