(* omlinkd: the persistent link service.

   One process owns an {!Engine.t} (and through it the artifact store)
   and serves length-framed JSON requests over a Unix-domain socket.
   Because the store outlives individual requests, the second link of a
   program is warm: unchanged modules hit the lift cache and an
   unchanged program hits the image cache outright.

   Concurrency model: the main thread multiplexes accepts; every
   connection gets a reader thread and a replier thread joined by a
   bounded queue (the per-connection in-flight cap, and the reason
   replies stay ordered even though requests pipeline). Real work —
   compile, link, suite, even ping sleeps — flows through {!Sched}'s
   worker-domain pool, which coalesces identical in-flight requests and
   sheds load with a structured [overloaded] error when its queue is
   full. Readers resolve all request inputs to in-memory values before
   submitting, so a warm request never touches the filesystem.

   Shutdown (a [shutdown] request or SIGTERM) is a graceful drain:
   stop accepting, let queued and in-flight work finish up to the drain
   deadline, flush replies, then tear the connections down. *)

module P = Protocol
module Json = Obs.Json

let default_socket () =
  match Sys.getenv_opt "OMLT_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> "omlinkd.sock"

(* --- a bounded blocking queue: the per-connection pipeline --- *)

module Bq = struct
  type 'a t = {
    m : Mutex.t;
    nonfull : Condition.t;
    nonempty : Condition.t;
    q : 'a Queue.t;
    cap : int;
  }

  let create cap =
    { m = Mutex.create ();
      nonfull = Condition.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      cap = max 1 cap }

  let push t x =
    Mutex.lock t.m;
    while Queue.length t.q >= t.cap do
      Condition.wait t.nonfull t.m
    done;
    Queue.add x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.nonempty t.m
    done;
    let x = Queue.take t.q in
    Condition.signal t.nonfull;
    Mutex.unlock t.m;
    x
end

(* --- request handlers --- *)

let counters_json c =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Store.counters_to_alist c))

let sched_stats_json sched =
  let s = Sched.stats sched in
  Json.Obj
    [ ("workers", Json.Int s.Sched.st_workers);
      ("queue_limit", Json.Int (Sched.queue_limit sched));
      ("queue_depth", Json.Int s.Sched.st_queue_depth);
      ("busy", Json.Int s.Sched.st_busy);
      ("submitted", Json.Int s.Sched.st_submitted);
      ("completed", Json.Int s.Sched.st_completed);
      ("coalesced", Json.Int s.Sched.st_coalesced);
      ("shed", Json.Int s.Sched.st_shed);
      ("abandoned", Json.Int s.Sched.st_abandoned) ]

let stats_json engine sched ~requests =
  let store = Engine.store engine in
  P.ok_response
    [ ("uptime_s", Json.Float (Engine.uptime_s engine));
      ("requests", Json.Int requests);
      ("sched", sched_stats_json sched);
      ( "store",
        Json.Obj
          ([ ( "dir",
               match Store.dir store with
               | None -> Json.Null
               | Some d -> Json.String d );
             ("mem_entries", Json.Int (Store.mem_entries store));
             ("mem_bytes", Json.Int (Store.mem_bytes store));
             ("disk_ops", Json.Int (Store.disk_ops store)) ]
          @ List.map
              (fun k -> (Store.kind_name k, counters_json (Store.counters store k)))
              Store.all_kinds
          @ [ ("total", counters_json (Store.counters_total store)) ]) ) ]

let compile_reply engine inputs =
  let compiled =
    Reports.Pool.map
      (fun (input : Engine.input) ->
        let name =
          match input with
          | Engine.Source { name; _ } | Engine.Object { name; _ } -> name
        in
        match Engine.compile_unit engine input with
        | Ok (u, cached) -> Ok (name, u, cached)
        | Error m -> Error (name, m))
      inputs
  in
  match
    List.find_map (function Error e -> Some e | Ok _ -> None) compiled
  with
  | Some (f, m) -> P.error_response ~code:"compile" (Printf.sprintf "%s: %s" f m)
  | None ->
      P.ok_response
        [ ( "units",
            Json.List
              (List.filter_map
                 (function
                   | Error _ -> None
                   | Ok (f, (u : Objfile.Cunit.t), cached) ->
                       let bytes = Store.Codec.cunit_to_string u in
                       Some
                         (Json.Obj
                            [ ("file", Json.String f);
                              ("name", Json.String u.Objfile.Cunit.name);
                              ("digest", Json.String (Store.digest_string bytes));
                              ( "insns",
                                Json.Int (Objfile.Cunit.insn_count u) );
                              ("cached", Json.Bool cached);
                              ("object", Json.String (P.hex_encode bytes)) ]))
                 compiled) ) ]

let link_reply engine ~inputs ~level ~entry =
  match Engine.link engine ?entry ~level inputs with
  | Error m -> P.error_response ~code:"link" m
  | Ok (image, stats, info) ->
      P.ok_response
        ([ ("level", Json.String info.Engine.li_level);
           ("image_digest", Json.String info.Engine.li_image_digest);
           ("insns", Json.Int info.Engine.li_insns);
           ("elapsed_s", Json.Float info.Engine.li_elapsed_s);
           ("image_hit", Json.Bool info.Engine.li_image_hit);
           ("store", Engine.info_counters_json info);
           ( "image",
             Json.String (P.hex_encode (Store.Codec.image_to_string image)) ) ]
        @
        match stats with
        | None -> []
        | Some s ->
            [ ( "stats",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.Int v))
                     (Om.Stats.to_alist s)) ) ])

let suite_reply ~bench ~jobs =
  let benches =
    match bench with
    | None -> Ok Workloads.Programs.all
    | Some n -> (
        match Workloads.Programs.find n with
        | Some b -> Ok [ b ]
        | None ->
            Error
              (Printf.sprintf "unknown benchmark %s (know: %s)" n
                 (String.concat ", " Workloads.Programs.names)))
  in
  match benches with
  | Error m -> P.error_response ~code:"suite" m
  | Ok benches ->
      let rows = Reports.Runner.matrix ?jobs benches in
      let report = Reports.Runner.report ?jobs rows in
      (* stamp each bench row with its cold-vs-warm link-service timing *)
      let report =
        { report with
          Obs.Report.results =
            List.map
              (fun (row : Obs.Report.bench) ->
                match
                  Option.bind
                    (Workloads.Programs.find row.Obs.Report.bench)
                    (fun b -> Result.to_option (Engine.relink_timings b))
                with
                | Some r -> { row with Obs.Report.relink = Some r }
                | None -> row)
              report.Obs.Report.results }
      in
      let failures =
        List.filter_map
          (fun ((b : Workloads.Programs.benchmark), build, r) ->
            match r with
            | Ok _ -> None
            | Error m ->
                Some
                  (Json.String
                     (Printf.sprintf "%s/%s: %s" b.Workloads.Programs.name
                        (Workloads.Suite.build_name build) m)))
          rows
      in
      P.ok_response
        [ ("report", Obs.Report.to_json report);
          ("failures", Json.List failures) ]

let metrics_reply engine =
  Engine.sync_store_metrics engine;
  let reg = Engine.metrics engine in
  P.ok_response
    [ ("metrics", Obs.Metrics.to_json reg);
      ("prometheus", Json.String (Obs.Metrics.to_prometheus reg)) ]

let spans_json spans =
  Json.List
    (List.map
       (fun (s : Obs.Trace.span) ->
         Json.Obj
           [ ("name", Json.String s.Obs.Trace.name);
             ("depth", Json.Int s.Obs.Trace.depth);
             ("dur_us", Json.Float s.Obs.Trace.dur_us) ])
       spans)

let with_trace ~trace respond =
  if not trace then respond ()
  else
    let c, reply = Obs.Trace.with_collector respond in
    match reply with
    | Json.Obj fields ->
        Json.Obj (fields @ [ ("trace", spans_json (Obs.Trace.spans c)) ])
    | j -> j

(* --- turning an envelope into scheduler work ---

   The reader thread resolves every input to an in-memory value before
   submitting, so worker jobs are pure computation: file reads happen
   here (and only for file-path requests — inline [sources] never touch
   the filesystem). The coalesce key covers everything the reply depends
   on; traced requests are never coalesced because their reply embeds
   the spans of their own run. *)

let input_digest = function
  | Engine.Source { name; text } ->
      Store.digest_string (Printf.sprintf "s:%s\x00%s" name text)
  | Engine.Object { name; bytes } ->
      Store.digest_string (Printf.sprintf "o:%s\x00%s" name bytes)

let resolve_inputs ~files ~sources =
  let ( let* ) = Result.bind in
  let rec resolve_files acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match Engine.input_of_file f with
        | Ok i -> resolve_files (i :: acc) rest
        | Error m -> Error (Printf.sprintf "%s: %s" f m))
  in
  let* from_files = resolve_files [] files in
  Ok
    (from_files
    @ List.map
        (fun (s : P.source) ->
          Engine.Source { name = s.src_name; text = s.src_text })
        sources)

type work =
  | Now of Json.t  (* answered inline by the reader *)
  | Job of string option * (unit -> Json.t)  (* coalesce key + job *)

let work_of_request engine sched ~requests (env : P.envelope) =
  let trace = env.P.trace in
  let keyed k = if trace then None else Some k in
  match env.P.req with
  | P.Stats -> Now (stats_json engine sched ~requests)
  | P.Metrics -> Now (metrics_reply engine)
  | P.Shutdown -> Now (P.ok_response [ ("stopping", Json.Bool true) ])
  | P.Ping { delay_ms } ->
      Job
        ( None,
          fun () ->
            with_trace ~trace (fun () ->
                if delay_ms > 0 then Unix.sleepf (float_of_int delay_ms /. 1000.);
                P.ok_response [ ("pong", Json.Bool true) ]) )
  | P.Compile { files; sources } -> (
      match resolve_inputs ~files ~sources with
      | Error m -> Now (P.error_response ~code:"compile" m)
      | Ok inputs ->
          let key =
            keyed
              (Store.digest_string
                 (String.concat "\x00"
                    ("compile" :: List.map input_digest inputs)))
          in
          Job
            (key, fun () -> with_trace ~trace (fun () -> compile_reply engine inputs))
      )
  | P.Link { files; sources; level; entry } -> (
      match resolve_inputs ~files ~sources with
      | Error m -> Now (P.error_response ~code:"link" m)
      | Ok inputs ->
          let key =
            keyed
              (Store.digest_string
                 (String.concat "\x00"
                    ([ "link"; level; Option.value entry ~default:"" ]
                    @ List.map input_digest inputs)))
          in
          Job
            ( key,
              fun () ->
                with_trace ~trace (fun () -> link_reply engine ~inputs ~level ~entry)
            ))
  | P.Suite { bench; jobs } ->
      (* a suite spins up its own domain pool; run it but never coalesce
         (two suites racing one pool is exactly what we don't want) *)
      Job (None, fun () -> with_trace ~trace (fun () -> suite_reply ~bench ~jobs))

(* --- the socket --- *)

let bind_socket path =
  let ( let* ) = Result.bind in
  let* () =
    if not (Sys.file_exists path) then Ok ()
    else begin
      (* stale-socket detection: a connect that is refused means no
         daemon is behind the file, so it is safe to take over *)
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        try
          Unix.connect probe (Unix.ADDR_UNIX path);
          true
        with Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        Error (Printf.sprintf "%s: an omlinkd is already listening" path)
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
      end
    end
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let error_code_of reply =
  match Json.member "ok" reply with
  | Some (Json.Bool false) ->
      Option.bind (Json.member "error" reply) (fun e ->
          Option.bind (Json.member "code" e) Json.get_string)
  | _ -> None

(* --- per-connection plumbing --- *)

type item = {
  i_id : int;  (* the engine's request counter *)
  i_kind : string;
  i_t0 : float;
  i_deadline : float option;
  i_work : work_handle;
  i_shutdown : bool;  (* after a successful send, stop the daemon *)
}

and work_handle = H_now of Json.t | H_wait of Sched.handle

type pending = Item of item | Close_conn

type conn = {
  c_fd : Unix.file_descr;
  mutable c_reader : Thread.t option;
  mutable c_replier : Thread.t option;
  mutable c_done : bool;  (* both threads have exited *)
}

type state = {
  engine : Engine.t;
  sched : Sched.t;
  default_deadline_ms : int option;
  conn_inflight : int;
  conns : conn list ref;
  conns_lock : Mutex.t;
  stop_w : Unix.file_descr;  (* write a byte to request shutdown *)
  stop_flag : bool Atomic.t;
}

let request_stop st =
  if not (Atomic.exchange st.stop_flag true) then
    try ignore (Unix.write_substring st.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let reader_loop st conn pq =
  let submit_frame j =
    let requests = Engine.count_request st.engine in
    let t0 = Unix.gettimeofday () in
    match P.request_of_json j with
    | Error m ->
        Item
          { i_id = requests;
            i_kind = "?";
            i_t0 = t0;
            i_deadline = None;
            i_work = H_now (P.error_response ~code:"protocol" m);
            i_shutdown = false }
    | Ok env ->
        let kind = P.kind_of_request env.P.req in
        Obs.Log.debug "request"
          ~fields:[ ("id", Json.Int requests); ("kind", Json.String kind) ];
        let deadline_ms =
          match env.P.deadline_ms with
          | Some _ as d -> d
          | None -> st.default_deadline_ms
        in
        let deadline =
          Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.)) deadline_ms
        in
        let work =
          match work_of_request st.engine st.sched ~requests env with
          | Now j -> H_now j
          | Job (key, job) -> (
              match Sched.submit st.sched ?key job with
              | Sched.Accepted h -> H_wait h
              | Sched.Shed { queue_depth; retry_after_ms } ->
                  H_now
                    (P.error_response ~code:"overloaded" ~retry_after_ms
                       (Printf.sprintf
                          "request queue is full (%d deep); retry in %d ms"
                          queue_depth retry_after_ms))
              | Sched.Closed ->
                  H_now
                    (P.error_response ~code:"shutting_down"
                       "the daemon is draining and accepts no new work"))
        in
        Item
          { i_id = requests;
            i_kind = kind;
            i_t0 = t0;
            i_deadline = deadline;
            i_work = work;
            i_shutdown = env.P.req = P.Shutdown }
  in
  let rec loop () =
    match P.recv conn.c_fd with
    | P.Eof -> Bq.push pq Close_conn
    | P.Bad m ->
        (* framing is gone; answer if we can and drop the connection *)
        Bq.push pq
          (Item
             { i_id = 0;
               i_kind = "?";
               i_t0 = Unix.gettimeofday ();
               i_deadline = None;
               i_work = H_now (P.error_response ~code:"protocol" m);
               i_shutdown = false });
        Bq.push pq Close_conn
    | P.Frame j ->
        Bq.push pq (submit_frame j);
        loop ()
    | exception Unix.Unix_error _ -> Bq.push pq Close_conn
  in
  loop ()

let replier_loop st conn pq =
  let reg = Engine.metrics st.engine in
  let inflight =
    Obs.Metrics.gauge ~registry:reg ~help:"Requests currently being served"
      "omlinkd_inflight"
  in
  let send_safe j =
    try P.send conn.c_fd j; true with Unix.Unix_error _ -> false
  in
  let rec loop () =
    match Bq.pop pq with
    | Close_conn -> ()
    | Item it ->
        Obs.Metrics.add_gauge inflight 1.;
        let coalesced =
          match it.i_work with
          | H_wait h -> Sched.was_coalesced h
          | H_now _ -> false
        in
        let reply =
          match it.i_work with
          | H_now j -> j
          | H_wait h -> (
              match Sched.wait st.sched ?deadline:it.i_deadline h with
              | Sched.Reply r -> r
              | Sched.Crashed m -> P.error_response ~code:"internal" m
              | Sched.Timed_out ->
                  let ms =
                    match it.i_deadline with
                    | Some dl ->
                        int_of_float (1000. *. (dl -. it.i_t0) +. 0.5)
                    | None -> 0
                  in
                  P.error_response ~code:"timeout"
                    (Printf.sprintf "deadline of %d ms exceeded" ms)
              | Sched.Aborted m -> P.error_response ~code:"shutting_down" m)
        in
        let reply =
          (* tell the client its request was deduplicated onto another *)
          match reply with
          | Json.Obj (("ok", Json.Bool true) :: _ as fields) when coalesced ->
              Json.Obj (fields @ [ ("coalesced", Json.Bool true) ])
          | j -> j
        in
        let elapsed_s = Unix.gettimeofday () -. it.i_t0 in
        Obs.Metrics.add_gauge inflight (-1.);
        Obs.Metrics.observe_s
          (Obs.Metrics.histogram ~registry:reg
             ~labels:[ ("kind", it.i_kind) ]
             ~help:"Request latency in microseconds" "omlinkd_request_us")
          elapsed_s;
        Obs.Metrics.incr
          (Obs.Metrics.counter ~registry:reg
             ~labels:[ ("kind", it.i_kind) ]
             ~help:"Requests served" "omlinkd_requests_total");
        (match error_code_of reply with
        | Some code ->
            Obs.Metrics.incr
              (Obs.Metrics.counter ~registry:reg
                 ~labels:[ ("code", code) ]
                 ~help:"Error replies by code" "omlinkd_errors_total");
            Obs.Log.warn "request_error"
              ~fields:
                [ ("id", Json.Int it.i_id);
                  ("kind", Json.String it.i_kind);
                  ("code", Json.String code);
                  ("elapsed_s", Json.Float elapsed_s) ]
        | None ->
            Obs.Log.debug "request_done"
              ~fields:
                [ ("id", Json.Int it.i_id);
                  ("kind", Json.String it.i_kind);
                  ("elapsed_s", Json.Float elapsed_s) ]);
        let sent = send_safe reply in
        if it.i_shutdown then begin
          request_stop st;
          loop ()
        end
        else if sent then loop ()
        else loop ()
        (* on a failed send keep draining the queue so the reader can't
           deadlock pushing into it; recv will hit EOF shortly *)
  in
  loop ()

let start_conn st fd =
  let conn = { c_fd = fd; c_reader = None; c_replier = None; c_done = false } in
  let pq = Bq.create st.conn_inflight in
  let reader =
    Thread.create
      (fun () ->
        (try reader_loop st conn pq
         with _ -> (try Bq.push pq Close_conn with _ -> ())))
      ()
  in
  let replier =
    Thread.create
      (fun () ->
        (try replier_loop st conn pq with _ -> ());
        conn.c_done <- true)
      ()
  in
  conn.c_reader <- Some reader;
  conn.c_replier <- Some replier;
  Mutex.protect st.conns_lock (fun () -> st.conns := conn :: !(st.conns))

let join_conn conn =
  Option.iter Thread.join conn.c_reader;
  Option.iter Thread.join conn.c_replier;
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())

(* join and close finished connections; keep the live ones *)
let prune_conns st =
  let done_, live =
    Mutex.protect st.conns_lock (fun () ->
        let done_, live = List.partition (fun c -> c.c_done) !(st.conns) in
        st.conns := live;
        (done_, live))
  in
  List.iter join_conn done_;
  ignore live

(* --- the serve loop --- *)

let serve ?engine ?socket ?default_deadline_ms ?workers ?queue_limit
    ?(conn_inflight = 8) ?(drain_ms = 2000) () =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  let path = match socket with Some s -> s | None -> default_socket () in
  match bind_socket path with
  | Error m ->
      Obs.Log.error "bind_failed"
        ~fields:[ ("socket", Json.String path); ("message", Json.String m) ];
      Error m
  | Ok listen_fd ->
      (* libstd's lazies must be forced before worker domains share them *)
      Engine.warmup engine;
      let sched =
        Sched.create ?workers ?queue_limit ~registry:(Engine.metrics engine) ()
      in
      let stop_r, stop_w = Unix.pipe ~cloexec:true () in
      let st =
        { engine;
          sched;
          default_deadline_ms;
          conn_inflight;
          conns = ref [];
          conns_lock = Mutex.create ();
          stop_w;
          stop_flag = Atomic.make false }
      in
      (* a client vanishing mid-send must not kill the daemon *)
      let old_pipe =
        try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
        with Invalid_argument _ | Sys_error _ -> None
      in
      let old_term =
        try
          Some
            (Sys.signal Sys.sigterm
               (Sys.Signal_handle (fun _ -> request_stop st)))
        with Invalid_argument _ | Sys_error _ -> None
      in
      Obs.Log.info "listening"
        ~fields:
          [ ("socket", Json.String path);
            ("workers", Json.Int (Sched.workers sched));
            ("queue_limit", Json.Int (Sched.queue_limit sched));
            ( "store",
              match Store.dir (Engine.store engine) with
              | Some d -> Json.String d
              | None -> Json.String "memory" ) ];
      let rec accept_loop () =
        match Unix.select [ listen_fd; stop_r ] [] [] 1.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | readable, _, _ ->
            if List.mem stop_r readable then ()
            else begin
              prune_conns st;
              if List.mem listen_fd readable then begin
                match Unix.accept ~cloexec:true listen_fd with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | conn_fd, _ -> start_conn st conn_fd
              end;
              accept_loop ()
            end
      in
      let graceful_stop () =
        (* 1. no new connections *)
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (* 2. no new work; queued + in-flight may still finish *)
        Sched.seal sched;
        let deadline =
          Unix.gettimeofday () +. (float_of_int drain_ms /. 1000.)
        in
        let drained = Sched.drain sched ~deadline in
        Obs.Log.info "drained"
          ~fields:
            [ ("complete", Json.Bool drained);
              ("drain_ms", Json.Int drain_ms) ];
        (* 3. unblock readers; repliers flush whatever is pending *)
        Mutex.protect st.conns_lock (fun () -> !(st.conns))
        |> List.iter (fun c ->
               try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
               with Unix.Unix_error _ -> ());
        (* 4. abort any post-deadline stragglers so repliers can't hang *)
        Sched.stop sched;
        Mutex.protect st.conns_lock (fun () ->
            let cs = !(st.conns) in
            st.conns := [];
            cs)
        |> List.iter join_conn;
        (try Unix.close stop_r with Unix.Unix_error _ -> ());
        (try Unix.close stop_w with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ());
        (match old_pipe with
        | Some b -> ( try ignore (Sys.signal Sys.sigpipe b) with _ -> ())
        | None -> ());
        (match old_term with
        | Some b -> ( try ignore (Sys.signal Sys.sigterm b) with _ -> ())
        | None -> ());
        Obs.Log.info "shutdown"
      in
      Fun.protect ~finally:graceful_stop (fun () ->
          match accept_loop () with
          | () -> Ok ()
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "omlinkd: %s: %s" fn (Unix.error_message e)))
