(** omlinkd: the persistent link service.

    Serves {!Protocol} requests over a Unix-domain socket from a single
    long-lived {!Engine.t}, so artifact caches persist across requests
    and a relink after a one-module edit only redoes that module's work.

    Requests carrying a deadline run in a worker domain; on expiry the
    client receives a structured [timeout] error and the worker is
    joined lazily once it finishes. *)

val default_socket : unit -> string
(** [$OMLT_SOCKET], defaulting to ["omlinkd.sock"]. *)

val serve :
  ?engine:Engine.t ->
  ?socket:string ->
  ?default_deadline_ms:int ->
  unit ->
  (unit, string) result
(** Bind the socket and serve until a [shutdown] request. A leftover
    socket file with no listener behind it (a crashed daemon) is
    removed and taken over; a live listener is an error. Returns after
    shutdown with the socket file removed. Progress and failure
    diagnostics are {!Obs.Log} events (enable with [OMLT_LOG] or
    {!Obs.Log.set_level}); request latency, in-flight and error
    counters land in the engine's metrics registry. *)

val handle : Engine.t -> requests:int -> Protocol.envelope -> Obs.Json.t
(** One request, in-process — the dispatch the daemon runs behind the
    socket, exposed for tests. [requests] is echoed by [stats]. *)
