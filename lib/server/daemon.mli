(** omlinkd: the persistent link service.

    Serves {!Protocol} requests over a Unix-domain socket from a single
    long-lived {!Engine.t}, so artifact caches persist across requests
    and a relink after a one-module edit only redoes that module's work.

    Connections are served concurrently: each gets a reader and a
    replier thread, and every piece of real work flows through a
    {!Sched} worker-domain pool that coalesces identical in-flight
    requests by content digest and sheds load with a structured
    [overloaded] error (carrying [retry_after_ms]) when its bounded
    queue is full. Deadlines are honored while a request is queued: on
    expiry the client receives a structured [timeout] error. Replies on
    one connection always come back in request order; up to
    [conn_inflight] requests per connection pipeline through the pool at
    once. *)

val default_socket : unit -> string
(** [$OMLT_SOCKET], defaulting to ["omlinkd.sock"]. *)

val serve :
  ?engine:Engine.t ->
  ?socket:string ->
  ?default_deadline_ms:int ->
  ?workers:int ->
  ?queue_limit:int ->
  ?conn_inflight:int ->
  ?drain_ms:int ->
  unit ->
  (unit, string) result
(** Bind the socket and serve until a [shutdown] request or SIGTERM,
    then drain gracefully: stop accepting, finish queued and in-flight
    work for up to [drain_ms] (default 2000), flush replies, and tear
    down. A leftover socket file with no listener behind it (a crashed
    daemon) is removed and taken over; a live listener is an error.
    Returns after shutdown with the socket file removed.

    [workers] and [queue_limit] configure the {!Sched} pool (defaults:
    [max 2 (Reports.Pool.default_jobs ())] — so [OMLT_JOBS] is honoured
    — and 64); [conn_inflight] caps pipelined requests per connection
    (default 8). Progress and failure diagnostics are {!Obs.Log} events
    (enable with [OMLT_LOG] or {!Obs.Log.set_level}); request latency,
    in-flight, queue-depth, coalesce/shed and error counters land in
    the engine's metrics registry. *)
