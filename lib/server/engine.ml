(* The incremental link engine: the daemon's brain, usable in-process
   too (the bench harness and tests drive it directly).

   Every expensive artifact on the compile→lift→optimize→link pipeline
   is keyed by content digest in the store:

   - compiled units, keyed by their source text (and compile options);
   - per-module symbolic lifts, keyed by the unit's serialized bytes;
   - linked images, keyed by the digests of every participating unit
     plus the level and entry.

   A one-module edit therefore recompiles and re-lifts exactly one
   module: every unchanged module — including every libstd member — is a
   lift-cache hit, and only resolution, instantiation and the
   whole-program transform run again. Relinking with nothing changed is
   a single image-cache hit. *)

module Json = Obs.Json

type t = {
  store : Store.t;
  libstd : Objfile.Archive.t lazy_t;
  libstd_digest : string lazy_t;
  created_at : float;
  lock : Mutex.t;
  mutable requests : int;
  metrics : Obs.Metrics.t;
}

let create ?store ?(metrics = Obs.Metrics.default) () =
  let store = match store with Some s -> s | None -> Store.create () in
  let libstd = lazy (Runtime.libstd ()) in
  { store;
    libstd;
    libstd_digest = lazy (Store.Codec.archive_digest (Lazy.force libstd));
    created_at = Unix.gettimeofday ();
    lock = Mutex.create ();
    requests = 0;
    metrics }

let store t = t.store
let metrics t = t.metrics

(* Forcing the same lazy from two domains at once raises
   [CamlinternalLazy.Undefined]; the daemon warms libstd eagerly before
   its worker pool exists so every later [Lazy.force] is a cheap read. *)
let warmup t =
  ignore (Lazy.force t.libstd : Objfile.Archive.t);
  ignore (Lazy.force t.libstd_digest : string)

(* Store counters are maintained by [Store] itself; mirror them into the
   registry on demand so every exposition path (daemon metrics reply,
   [omlink metrics], report snapshots) sees fresh values without the
   store taking a registry dependency. *)
let sync_store_metrics t =
  List.iter
    (fun kind ->
      let label = [ ("kind", Store.kind_name kind) ] in
      let c = Store.counters t.store kind in
      List.iter
        (fun (field, v) ->
          Obs.Metrics.set_counter
            (Obs.Metrics.counter ~registry:t.metrics ~labels:label
               ~help:"Store counters mirrored from Store.counters"
               ("omlt_store_" ^ field))
            v)
        (Store.counters_to_alist c))
    [ Store.Cunit; Store.Lifted; Store.Image ];
  Obs.Metrics.set_counter
    (Obs.Metrics.counter ~registry:t.metrics
       ~help:"Attempted store filesystem operations"
       "omlt_store_disk_ops_total")
    (Store.disk_ops t.store)

let count_request t =
  Mutex.protect t.lock (fun () ->
      t.requests <- t.requests + 1;
      t.requests)

let uptime_s t = Unix.gettimeofday () -. t.created_at

(* --- levels --- *)

type level = Std | Om of Om.level

let level_of_string = function
  | "std" -> Ok Std
  | s -> (
      (* OM levels share one parser with the CLI, so a level added there
         is automatically speakable over the daemon protocol *)
      match Om.level_of_string s with
      | Some l -> Ok (Om l)
      | None -> Error (Printf.sprintf "unknown level %S" s))

let level_name = function Std -> "std" | Om l -> Om.level_name l

(* --- inputs --- *)

type input =
  | Source of { name : string; text : string }
  | Object of { name : string; bytes : string }

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    Ok (really_input_string ic (in_channel_length ic))
  with Sys_error m -> Error m

let input_of_file path =
  match read_file path with
  | Error m -> Error m
  | Ok contents ->
      let base = Filename.basename path in
      if Filename.check_suffix path ".mc" then
        Ok (Source { name = Filename.remove_extension base ^ ".o"; text = contents })
      else Ok (Object { name = base; bytes = contents })

(* --- cached compilation --- *)

let compile_unit t (input : input) =
  match input with
  | Object { name; bytes } -> (
      match Store.Codec.cunit_of_string bytes with
      | Ok u -> Ok (u, false)
      | Error m -> Error (Printf.sprintf "%s: %s" name m))
  | Source { name; text } -> (
      let key = Store.digest_string (Printf.sprintf "mc:O2:%s\x00%s" name text) in
      match Store.get t.store Store.Cunit ~key with
      | Some payload -> (
          match Store.Codec.cunit_of_string payload with
          | Ok u -> Ok (u, true)
          | Error _ ->
              (* undecodable cache entry: fall through to a fresh compile *)
              (match
                 try
                   Ok
                     (Minic.Driver.compile_module ~prelude:Runtime.prelude
                        ~name text)
                 with Minic.Driver.Error m -> Error m
               with
              | Ok u ->
                  Store.put t.store Store.Cunit ~key (Store.Codec.cunit_to_string u);
                  Ok (u, false)
              | Error m -> Error m))
      | None -> (
          match
            try
              Ok (Minic.Driver.compile_module ~prelude:Runtime.prelude ~name text)
            with Minic.Driver.Error m -> Error m
          with
          | Ok u ->
              Store.put t.store Store.Cunit ~key (Store.Codec.cunit_to_string u);
              Ok (u, false)
          | Error m -> Error m))

(* --- cached lifting --- *)

let lift_cached t (u : Objfile.Cunit.t) =
  let key = Store.Codec.cunit_digest u in
  match
    Option.bind
      (Store.get t.store Store.Lifted ~key)
      (fun payload -> Result.to_option (Store.Codec.lifted_of_string payload))
  with
  | Some ms -> Ok ms
  | None -> (
      match Om.Lift.lift_module u with
      | Ok ms ->
          Store.put t.store Store.Lifted ~key (Store.Codec.lifted_to_string ms);
          Ok ms
      | Error m -> Error m)

(* --- linking --- *)

type link_info = {
  li_level : string;
  li_image_digest : string;
  li_insns : int;
  li_elapsed_s : float;
  li_image_hit : bool;
  li_cunit : Store.counters;   (* per-request store counter deltas *)
  li_lifted : Store.counters;
  li_image : Store.counters;
  li_disk_ops : int;           (* filesystem ops this request caused *)
}

let info_counters_json (i : link_info) =
  Json.Obj
    (List.map
       (fun (name, c) ->
         (name, Json.Obj (List.map (fun (k, v) -> (k, Json.Int v))
                            (Store.counters_to_alist c))))
       [ ("cunit", i.li_cunit); ("lifted", i.li_lifted); ("image", i.li_image) ]
    @ [ ("disk_ops", Json.Int i.li_disk_ops) ])

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let link t ?entry ~level inputs =
  let t0 = Unix.gettimeofday () in
  let c0 k = Store.counters t.store k in
  let cunit0 = c0 Store.Cunit
  and lifted0 = c0 Store.Lifted
  and image0 = c0 Store.Image
  and disk0 = Store.disk_ops t.store in
  let* level = level_of_string level in
  let* units =
    Obs.Trace.span "engine:units" @@ fun () ->
    collect (fun i -> Result.map fst (compile_unit t i)) inputs
  in
  (* the image key covers everything the produced bytes depend on *)
  let image_key =
    Store.digest_string
      (String.concat "\x00"
         ([ "image"; level_name level; Option.value entry ~default:"__start";
            Lazy.force t.libstd_digest ]
         @ List.map Store.Codec.cunit_digest units))
  in
  let finish ~image_hit image stats =
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Obs.Metrics.observe_s
      (Obs.Metrics.histogram ~registry:t.metrics
         ~labels:[ ("level", level_name level) ]
         ~help:"Engine link latency in microseconds" "engine_link_us")
      elapsed_s;
    Obs.Metrics.incr
      (Obs.Metrics.counter ~registry:t.metrics
         ~labels:[ ("result", if image_hit then "hit" else "miss") ]
         ~help:"Whole-image cache outcomes" "engine_image_cache_total");
    let info =
      { li_level = level_name level;
        li_image_digest = Store.Codec.image_digest image;
        li_insns = Linker.Image.insn_count image;
        li_elapsed_s = elapsed_s;
        li_image_hit = image_hit;
        li_cunit = Store.counters_diff (c0 Store.Cunit) cunit0;
        li_lifted = Store.counters_diff (c0 Store.Lifted) lifted0;
        li_image = Store.counters_diff (c0 Store.Image) image0;
        li_disk_ops = Store.disk_ops t.store - disk0 }
    in
    Ok (image, stats, info)
  in
  match
    Option.bind
      (Store.get t.store Store.Image ~key:image_key)
      (fun payload -> Result.to_option (Store.Codec.image_of_string payload))
  with
  | Some image -> finish ~image_hit:true image None
  | None -> (
      let* world =
        Obs.Trace.span "resolve" @@ fun () ->
        Linker.Resolve.run ?entry units ~archives:[ Lazy.force t.libstd ]
      in
      let* image, stats =
        match level with
        | Std ->
            let* image =
              Obs.Trace.span "link:std" @@ fun () ->
              Linker.Link.link_resolved world
            in
            Ok (image, None)
        | Om om_level ->
            Obs.Trace.span ("om:" ^ Om.level_name om_level) @@ fun () ->
            (* the incremental heart: per-module lifts come from the
               store; only modules whose content changed are re-lifted *)
            let* msyms =
              Obs.Trace.span "lift" @@ fun () ->
              collect (lift_cached t)
                (Array.to_list world.Linker.Resolve.modules)
            in
            let* program =
              Obs.Trace.span "instantiate" @@ fun () ->
              Om.Lift.instantiate world (Array.of_list msyms)
            in
            let* { Om.image; stats } =
              Om.optimize_program om_level program
            in
            Ok (image, Some stats)
      in
      Store.put t.store Store.Image ~key:image_key
        (Store.Codec.image_to_string image);
      finish ~image_hit:false image stats)

let link_files t ?entry ~level files =
  let* inputs = collect input_of_file files in
  link t ?entry ~level inputs

(* --- cold vs warm relink timing (the schema-v3 [relink] field) --- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let relink_timings ?(level = "full") (b : Workloads.Programs.benchmark) =
  (* hermetic: neither the store nor the metrics of the timing probe
     belong in the process-wide registry *)
  let engine =
    create ~store:(Store.in_memory ()) ~metrics:(Obs.Metrics.create ()) ()
  in
  let inputs srcs =
    List.map (fun (name, text) -> Source { name; text }) srcs
  in
  let srcs = b.Workloads.Programs.sources in
  let cold, cold_s = time (fun () -> link engine ~level (inputs srcs)) in
  let* _ = cold in
  (* a one-module edit: the first module's digest changes, every other
     lift (user modules and libstd members alike) stays warm *)
  let edited =
    match srcs with
    | (n, t) :: rest -> (n, t ^ "\n// relink probe\n") :: rest
    | [] -> []
  in
  let warm, warm_s = time (fun () -> link engine ~level (inputs edited)) in
  let* _ = warm in
  Ok { Obs.Report.cold_s; warm_s }
