(** The incremental link engine.

    A long-lived value owning a {!Store.t} and the standard library
    archive; every compile/lift/link artifact it produces is cached by
    content digest, so repeated links only redo the work whose inputs
    changed. The daemon wraps one engine; tests and the bench harness
    drive it in-process. *)

type t

val create : ?store:Store.t -> ?metrics:Obs.Metrics.t -> unit -> t
(** A fresh engine. [store] defaults to [Store.create ()] (which honours
    [$OMLT_STORE]); pass [Store.in_memory ()] for a hermetic engine.
    [metrics] defaults to {!Obs.Metrics.default}; pass a fresh registry
    to keep an engine's instruments isolated (tests do). *)

val store : t -> Store.t
val metrics : t -> Obs.Metrics.t

val warmup : t -> unit
(** Force the lazily-loaded standard library (and its digest) now.
    Forcing the same lazy concurrently from two domains raises, so
    anything about to share an engine across a worker pool — the daemon,
    the load harness — warms it first. *)

val sync_store_metrics : t -> unit
(** Mirror the store's per-kind counters into the metrics registry as
    [omlt_store_*{kind=...}] counters. Exposition paths call this just
    before snapshotting. *)

val uptime_s : t -> float

val count_request : t -> int
(** Bump and return the served-request counter (the daemon calls this
    once per request; [stats] reports it). *)

type input =
  | Source of { name : string; text : string }
      (** minic source; compiled (and the result cached) by the engine *)
  | Object of { name : string; bytes : string }
      (** an already-serialized object module *)

val input_of_file : string -> (input, string) result
(** Classify by extension: [.mc] is source, anything else must hold a
    serialized object module. *)

type level = Std | Om of Om.level

val level_of_string : string -> (level, string) result
val level_name : level -> string

type link_info = {
  li_level : string;
  li_image_digest : string;
  li_insns : int;
  li_elapsed_s : float;
  li_image_hit : bool;  (** the whole link was served from the image cache *)
  li_cunit : Store.counters;
  li_lifted : Store.counters;
  li_image : Store.counters;
      (** the three counter fields are per-request deltas, not totals *)
  li_disk_ops : int;
      (** filesystem operations this link caused; 0 proves the request
          was served entirely from memory *)
}

val info_counters_json : link_info -> Obs.Json.t

val link :
  t -> ?entry:string -> level:string -> input list ->
  (Linker.Image.t * Om.Stats.t option * link_info, string) result
(** Link the inputs at [level] (["std"], ["noopt"], ["simple"], ["full"]
    or ["sched"]) against the standard library. [Om.Stats.t] is [None]
    for std links and for image-cache hits. *)

val link_files :
  t -> ?entry:string -> level:string -> string list ->
  (Linker.Image.t * Om.Stats.t option * link_info, string) result

val compile_unit : t -> input -> (Objfile.Cunit.t * bool, string) result
(** Compile (or fetch) one input; the boolean reports a cache hit. *)

val relink_timings :
  ?level:string -> Workloads.Programs.benchmark ->
  (Obs.Report.relink, string) result
(** Measure a benchmark's cold link (fresh in-memory store) against the
    warm relink after a one-module edit — the schema-v3 [relink] report
    field. *)
